// Fixture (should PASS): src/volume owns the raw layout and may index it.
#include <vector>

float peek(const std::vector<float>& voxels) { return voxels.data()[3]; }
