// Training-set container and the iterative trainer.
//
// The paper trains "iteratively in the system's idle loop" (Sec 4.2.2): the
// user keeps interacting while epochs run in the background and can add new
// key frames / paint strokes at any point. Trainer mirrors that contract —
// run_epochs()/run_for() advance training incrementally on a mutable
// TrainingSet, and the network is usable (forward passes) between calls.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace ifet {

/// A supervised sample: input feature vector and desired outputs.
struct Sample {
  std::vector<double> input;
  std::vector<double> target;
};

/// Growable set of samples; the visualization interface appends to it as
/// the user paints or adds key frames.
class TrainingSet {
 public:
  void add(std::vector<double> input, std::vector<double> target);
  void add(const Sample& sample) { samples_.push_back(sample); }
  void clear() { samples_.clear(); }

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](std::size_t i) const { return samples_[i]; }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Input dimensionality (0 when empty).
  std::size_t input_width() const {
    return samples_.empty() ? 0 : samples_.front().input.size();
  }

 private:
  std::vector<Sample> samples_;
};

/// Epoch-based stochastic trainer with shuffling and convergence tracking.
class Trainer {
 public:
  Trainer(Mlp& network, BackpropConfig config, std::uint64_t seed = 7);

  /// Run `epochs` full passes over `set` in shuffled order.
  /// Returns the mean squared error of the final epoch.
  double run_epochs(const TrainingSet& set, int epochs);

  /// Run whole epochs until `budget_ms` wall-clock milliseconds elapse or
  /// `max_epochs` epochs complete (the idle-loop form). Returns last MSE.
  double run_for(const TrainingSet& set, double budget_ms,
                 int max_epochs = 1 << 20);

  /// Epochs completed since construction.
  int epochs_run() const { return epochs_run_; }

  /// MSE of the most recent epoch (pre-update errors averaged).
  double last_mse() const { return last_mse_; }

 private:
  double run_one_epoch(const TrainingSet& set);

  Mlp& network_;
  BackpropConfig config_;
  Rng rng_;
  std::vector<std::size_t> order_;
  int epochs_run_ = 0;
  double last_mse_ = 0.0;
};

/// Finite-difference gradient check: returns the maximum relative error
/// between back-propagated and numeric gradients for one sample. Used by
/// the property tests to pin the backprop implementation.
double gradient_check(const Mlp& network, const Sample& sample,
                      double epsilon = 1e-6);

}  // namespace ifet
