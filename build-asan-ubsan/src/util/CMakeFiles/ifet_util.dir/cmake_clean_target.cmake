file(REMOVE_RECURSE
  "libifet_util.a"
)
