// ifet_lint — multi-pass static analyzer for the ifet source tree.
//
// Registered as a ctest (see tools/CMakeLists.txt) so CI fails when a
// convention regresses; docs/STATIC_ANALYSIS.md documents every pass and
// docs/CORRECTNESS.md the per-file convention rules. Suppress a finding
// with `// ifet-lint: allow(<rule>)` on the offending line or the line
// above (file-wide: `// ifet-lint: allow-file(<rule>)`).
//
// Passes (each with its own exit-code bit, so CI logs show at a glance
// which family regressed):
//   conventions (bit 1)  per-file repo-convention rules: voxel-raw-access,
//                        extent-unchecked, iostream-in-header, raw-rand,
//                        catch-all, direct-volume-load,
//                        scalar-forward-in-hot-loop.
//   lock-order  (bit 2)  cross-TU mutex-acquisition graph; fails on
//                        cycles, re-entrant acquisitions, and MutexRank
//                        inversions (rule lock-order-cycle).
//   layering    (bit 4)  include-layer DAG (rule layer-violation) and
//                        header-dependency cycles (rule include-cycle).
//   callgraph   (bit 8)  cross-TU hot-path escape analysis from IFET_HOT
//                        roots (rules hot-path-alloc, hot-path-throw,
//                        hot-path-io, hot-path-lock).
// I/O or usage errors exit 64.
//
// Usage: ifet_lint [--format=text|json] [--only=rule,rule...]
//                  [--baseline=<file>] <dir-or-file>...
//   (typically: ifet_lint --baseline=tools/lint_baseline.txt <repo>/src)
//
// --only accepts rule families: `--only=hot-path` selects every
// hot-path-* rule. --baseline points at a suppression list of known
// findings, one `rule|module/file|symbol` triple per line (# comments
// allowed); baselined findings are dropped before the exit code is
// computed, so a new pass can land strict while existing debt is paid
// down incrementally.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "lint/callgraph_pass.hpp"
#include "lint/conventions_pass.hpp"
#include "lint/layering_pass.hpp"
#include "lint/lock_order_pass.hpp"
#include "lint/tokenizer.hpp"

namespace {

using ifet_lint::Finding;
using ifet_lint::SourceFile;
namespace fs = std::filesystem;

constexpr int kExitConventions = 1;
constexpr int kExitLockOrder = 2;
constexpr int kExitLayering = 4;
constexpr int kExitHotPath = 8;
constexpr int kExitError = 64;

int exit_bit_for(const std::string& rule) {
  if (rule == "lock-order-cycle") return kExitLockOrder;
  if (rule == "layer-violation" || rule == "include-cycle") {
    return kExitLayering;
  }
  if (rule.rfind("hot-path-", 0) == 0) return kExitHotPath;
  if (rule == "io-error") return kExitError;
  return kExitConventions;
}

/// --only match: exact rule name, or a family prefix (`hot-path` selects
/// `hot-path-alloc` etc.).
bool only_selects(const std::set<std::string>& only, const std::string& rule) {
  if (only.count(rule) != 0) return true;
  for (const auto& sel : only) {
    if (rule.rfind(sel + "-", 0) == 0) return true;
  }
  return false;
}

/// Baseline key: rule + module-relative path + symbol. The module-level
/// path (layering's include_key) keeps entries stable across checkouts.
std::string baseline_key(const Finding& f) {
  return f.rule + "|" + ifet_lint::include_key(fs::path(f.path)) + "|" +
         f.symbol;
}

bool load_baseline(const fs::path& path, std::set<std::string>& entries) {
  std::ifstream in(path);
  if (!in) return false;
  for (std::string line; std::getline(in, line);) {
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const auto end = line.find_last_not_of(" \t\r");
    entries.insert(line.substr(start, end - start + 1));
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const std::vector<Finding>& findings,
                std::size_t files_scanned, std::size_t baseline_suppressed,
                int exit_code) {
  std::cout << "{\n  \"files_scanned\": " << files_scanned
            << ",\n  \"baseline_suppressed\": " << baseline_suppressed
            << ",\n  \"exit_code\": " << exit_code << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "    {\"path\": \"" << json_escape(f.path)
              << "\", \"line\": " << f.line << ", \"rule\": \""
              << json_escape(f.rule) << "\", \"symbol\": \""
              << json_escape(f.symbol) << "\", \"message\": \""
              << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::set<std::string> only;
  std::string baseline_path;
  std::vector<fs::path> roots;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--baseline") {
      if (a + 1 >= argc) {
        std::cerr << "ifet_lint: --baseline needs a file argument\n";
        return kExitError;
      }
      baseline_path = argv[++a];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "ifet_lint: unknown format '" << format << "'\n";
        return kExitError;
      }
    } else if (arg.rfind("--only=", 0) == 0) {
      std::string rules = arg.substr(7);
      std::size_t start = 0;
      while (start <= rules.size()) {
        const auto comma = rules.find(',', start);
        const auto len =
            (comma == std::string::npos ? rules.size() : comma) - start;
        if (len > 0) only.insert(rules.substr(start, len));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (only.empty()) {
        std::cerr << "ifet_lint: --only needs at least one rule\n";
        return kExitError;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "ifet_lint: unknown option '" << arg << "'\n";
      return kExitError;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: ifet_lint [--format=text|json] "
                 "[--only=rule,rule...] [--baseline=<file>] "
                 "<dir-or-file>...\n";
    return kExitError;
  }
  std::set<std::string> baseline;
  if (!baseline_path.empty() &&
      !load_baseline(baseline_path, baseline)) {
    std::cerr << "ifet_lint: cannot read baseline file '" << baseline_path
              << "'\n";
    return kExitError;
  }

  std::vector<SourceFile> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(ifet_lint::load_file(root));
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::cerr << "ifet_lint: no such file or directory: " << root << "\n";
      return kExitError;
    }
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file() || !ifet_lint::is_source_file(it->path())) {
        continue;
      }
      paths.push_back(it->path());
    }
    // Directory iteration order is filesystem-dependent; sort so findings
    // and include-graph traversal are stable across machines.
    std::sort(paths.begin(), paths.end());
    for (const auto& p : paths) files.push_back(ifet_lint::load_file(p));
  }

  std::vector<Finding> findings;
  for (const auto& f : files) {
    if (!f.ok) {
      findings.push_back({f.path.string(), 0, "io-error", "cannot read file"});
      continue;
    }
    ifet_lint::run_conventions_pass(f, findings);
  }
  ifet_lint::run_lock_order_pass(files, findings);
  ifet_lint::run_layering_pass(files, findings);
  ifet_lint::run_callgraph_pass(files, findings);

  std::size_t baseline_suppressed = 0;
  if (!baseline.empty()) {
    std::vector<Finding> kept;
    for (auto& f : findings) {
      if (baseline.count(baseline_key(f)) != 0) {
        ++baseline_suppressed;
      } else {
        kept.push_back(std::move(f));
      }
    }
    findings.swap(kept);
  }

  if (!only.empty()) {
    std::vector<Finding> kept;
    for (auto& f : findings) {
      if (only_selects(only, f.rule) || f.rule == "io-error") {
        kept.push_back(std::move(f));
      }
    }
    findings.swap(kept);
  }

  int exit_code = 0;
  for (const auto& f : findings) exit_code |= exit_bit_for(f.rule);

  if (format == "json") {
    print_json(findings, files.size(), baseline_suppressed, exit_code);
    return exit_code;
  }
  for (const auto& f : findings) {
    std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "ifet_lint: " << findings.size() << " finding(s) in "
              << files.size() << " file(s)";
    if (baseline_suppressed > 0) {
      std::cerr << " (+" << baseline_suppressed << " baselined)";
    }
    std::cerr << "\n";
  } else {
    std::cout << "ifet_lint: OK (" << files.size() << " files scanned";
    if (baseline_suppressed > 0) {
      std::cout << ", " << baseline_suppressed << " baselined";
    }
    std::cout << ")\n";
  }
  return exit_code;
}
