// Feature tracking demo (paper Sec 5 / Fig 9): follow a vortex that moves,
// deforms, and splits, using 4D region growing, then render the tracked
// feature highlighted in red over the context volume — the paper's
// feature-tracking display.
//
// Run:  ./track_vortex [--out=DIR] [--size=48]
#include <filesystem>
#include <iostream>

#include "core/track_events.hpp"
#include "core/tracking.hpp"
#include "flowsim/datasets.hpp"
#include "io/image_io.hpp"
#include "render/raycaster.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ifet;
  CliArgs args(argc, argv);
  const std::string out_dir = args.get("out", "example_out");
  const int size = args.get_int("size", 48);
  std::filesystem::create_directories(out_dir);

  TurbulentVortexConfig config;
  config.dims = Dims{size, size, size};
  config.num_steps = 25;
  config.split_step = 18;
  auto source = std::make_shared<TurbulentVortexSource>(config);
  CachedSequence sequence(source, 6);

  // Track from a seed inside the vortex at the first step.
  FixedRangeCriterion criterion(0.48, 1.0);
  Tracker tracker(sequence, criterion);
  Vec3 c = source->lobe_centers(0)[0];
  Index3 seed{static_cast<int>(c.x * size), static_cast<int>(c.y * size),
              static_cast<int>(c.z * size)};
  std::cout << "seeding 4D region growing at (" << seed.x << "," << seed.y
            << "," << seed.z << ") t=0\n";
  TrackResult track = tracker.track(seed, 0);
  FeatureHistory history = build_feature_history(track);

  std::cout << "tracked steps " << track.first_step() << ".."
            << track.last_step() << "\nfeature tree:\n"
            << format_feature_tree(history);
  for (const auto& event : history.events) {
    if (event.type != EventType::kContinuation) {
      std::cout << "event: " << event_name(event.type) << " at t="
                << event.step << "\n";
    }
  }

  // Render six frames (as in Fig 9) with the tracked feature in red.
  TransferFunction1D context_tf(0.0, 1.0);
  context_tf.add_band(0.3, 1.0, 0.08);  // faint context
  TransferFunction1D highlight_tf(0.0, 1.0);
  highlight_tf.add_band(0.48, 1.0, 0.9);
  RenderSettings settings;
  settings.width = 220;
  settings.height = 220;
  Raycaster caster(settings);
  Camera camera(0.7, 0.4, 2.4);
  for (int t : {0, 5, 10, 15, 20, 24}) {
    HighlightLayer layer;
    Mask empty(sequence.dims());
    layer.mask = track.reached(t) ? &track.masks.at(t) : &empty;
    layer.tf = &highlight_tf;
    ImageRgb8 image = caster.render(sequence.step(t), context_tf, ColorMap(),
                                    camera, &layer);
    std::string path =
        out_dir + "/track_vortex_t" + std::to_string(50 + t) + ".ppm";
    write_ppm(image, path);
    std::cout << "t=" << 50 + t << ": " << track.voxels_at(t)
              << " tracked voxels, " << history.component_count(t)
              << " component(s) -> " << path << "\n";
  }
  return 0;
}
