# Empty dependencies file for paint_session.
# This may be replaced when dependencies are built.
