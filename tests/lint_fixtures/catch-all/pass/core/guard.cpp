// Fixture (should PASS): a concrete exception type is caught.
#include <exception>

int guarded(int (*f)()) {
  try {
    return f();
  } catch (const std::exception&) {
    return -1;
  }
}
