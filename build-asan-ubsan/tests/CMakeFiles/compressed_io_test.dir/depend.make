# Empty dependencies file for compressed_io_test.
# This may be replaced when dependencies are built.
