#include "nn/normalizer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ifet {

InputNormalizer::InputNormalizer(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  IFET_REQUIRE(lo_.size() == hi_.size(), "InputNormalizer: lo/hi mismatch");
}

InputNormalizer InputNormalizer::fit(
    const std::vector<std::vector<double>>& inputs) {
  IFET_REQUIRE(!inputs.empty(), "InputNormalizer::fit: no samples");
  const std::size_t width = inputs.front().size();
  std::vector<double> lo(width, 0.0);
  std::vector<double> hi(width, 0.0);
  for (std::size_t f = 0; f < width; ++f) {
    lo[f] = hi[f] = inputs.front()[f];
  }
  for (const auto& row : inputs) {
    IFET_REQUIRE(row.size() == width, "InputNormalizer::fit: ragged inputs");
    for (std::size_t f = 0; f < width; ++f) {
      lo[f] = std::min(lo[f], row[f]);
      hi[f] = std::max(hi[f], row[f]);
    }
  }
  return InputNormalizer(std::move(lo), std::move(hi));
}

std::vector<double> InputNormalizer::apply(std::span<const double> raw) const {
  std::vector<double> out(raw.size());
  apply_into(raw, out.data());
  return out;
}

void InputNormalizer::apply_into(std::span<const double> raw,
                                 double* out) const {
  IFET_REQUIRE(raw.size() == lo_.size(),
               "InputNormalizer::apply: width mismatch");
  for (std::size_t f = 0; f < raw.size(); ++f) {
    double span = hi_[f] - lo_[f];
    out[f] = span > 0.0
                 ? std::clamp((raw[f] - lo_[f]) / span, 0.0, 1.0)
                 : 0.5;
  }
}

}  // namespace ifet
