#include "core/track_events.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"

namespace ifet {

const char* event_name(EventType type) {
  switch (type) {
    case EventType::kBirth: return "birth";
    case EventType::kDeath: return "death";
    case EventType::kContinuation: return "continuation";
    case EventType::kSplit: return "split";
    case EventType::kMerge: return "merge";
  }
  return "?";
}

std::vector<int> FeatureHistory::nodes_at(int step) const {
  std::vector<int> out;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    if (nodes[n].step == step) out.push_back(static_cast<int>(n));
  }
  return out;
}

int FeatureHistory::component_count(int step) const {
  return static_cast<int>(nodes_at(step).size());
}

std::vector<FeatureEvent> FeatureHistory::events_of(EventType type) const {
  std::vector<FeatureEvent> out;
  for (const auto& e : events) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::vector<int> FeatureHistory::steps() const {
  std::vector<int> out;
  for (const auto& n : nodes) out.push_back(n.step);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

FeatureHistory build_feature_history(const TrackResult& track,
                                     std::size_t min_overlap) {
  IFET_REQUIRE(min_overlap >= 1, "build_feature_history: min_overlap >= 1");
  FeatureHistory history;
  if (track.masks.empty()) return history;

  // Label each step and remember node index per (step, label).
  std::map<int, Labeling> labelings;
  std::map<std::pair<int, std::int32_t>, int> node_of;
  for (const auto& [step, mask] : track.masks) {
    Labeling labeling = label_components(mask);
    for (const auto& comp : labeling.components) {
      FeatureNode node;
      node.step = step;
      node.label = comp.label;
      node.info = comp;
      node_of[{step, comp.label}] = static_cast<int>(history.nodes.size());
      history.nodes.push_back(std::move(node));
    }
    labelings.emplace(step, std::move(labeling));
  }

  // Connect consecutive steps by voxel overlap.
  for (auto it = labelings.begin(); it != labelings.end(); ++it) {
    auto next = std::next(it);
    if (next == labelings.end() || next->first != it->first + 1) continue;
    const Labeling& a = it->second;
    const Labeling& b = next->second;
    std::map<std::pair<std::int32_t, std::int32_t>, std::size_t> overlap;
    for (std::size_t v = 0; v < a.labels.size(); ++v) {
      std::int32_t la = a.labels[v];
      std::int32_t lb = b.labels[v];
      if (la > 0 && lb > 0) ++overlap[{la, lb}];
    }
    for (const auto& [pair, count] : overlap) {
      if (count < min_overlap) continue;
      int na = node_of.at({it->first, pair.first});
      int nb = node_of.at({next->first, pair.second});
      history.nodes[static_cast<std::size_t>(na)].children.push_back(nb);
      history.nodes[static_cast<std::size_t>(nb)].parents.push_back(na);
    }
  }

  // Classify events.
  const int first = track.masks.begin()->first;
  const int last = track.masks.rbegin()->first;
  for (std::size_t n = 0; n < history.nodes.size(); ++n) {
    const FeatureNode& node = history.nodes[n];
    if (node.parents.empty() && node.step != first) {
      history.events.push_back(
          {EventType::kBirth, node.step, static_cast<int>(n)});
    }
    if (node.children.empty() && node.step != last) {
      history.events.push_back(
          {EventType::kDeath, node.step, static_cast<int>(n)});
    }
    if (node.children.size() >= 2) {
      history.events.push_back(
          {EventType::kSplit, node.step, static_cast<int>(n)});
    }
    if (node.parents.size() >= 2) {
      history.events.push_back(
          {EventType::kMerge, node.step, static_cast<int>(n)});
    }
    if (node.parents.size() == 1 && node.children.size() == 1) {
      history.events.push_back(
          {EventType::kContinuation, node.step, static_cast<int>(n)});
    }
  }
  return history;
}

std::string format_feature_tree(const FeatureHistory& history) {
  std::ostringstream os;
  for (int step : history.steps()) {
    os << "t=" << step << ":";
    for (int n : history.nodes_at(step)) {
      const FeatureNode& node = history.nodes[static_cast<std::size_t>(n)];
      os << "  [#" << n << " size=" << node.info.voxel_count << " c=("
         << static_cast<int>(node.info.centroid.x) << ","
         << static_cast<int>(node.info.centroid.y) << ","
         << static_cast<int>(node.info.centroid.z) << ")";
      if (!node.children.empty()) {
        os << " ->";
        for (int c : node.children) os << " #" << c;
      }
      os << "]";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ifet
