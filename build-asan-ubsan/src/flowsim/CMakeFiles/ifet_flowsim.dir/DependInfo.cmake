
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowsim/argon_bubble.cpp" "src/flowsim/CMakeFiles/ifet_flowsim.dir/argon_bubble.cpp.o" "gcc" "src/flowsim/CMakeFiles/ifet_flowsim.dir/argon_bubble.cpp.o.d"
  "/root/repo/src/flowsim/combustion_jet.cpp" "src/flowsim/CMakeFiles/ifet_flowsim.dir/combustion_jet.cpp.o" "gcc" "src/flowsim/CMakeFiles/ifet_flowsim.dir/combustion_jet.cpp.o.d"
  "/root/repo/src/flowsim/fluid_solver.cpp" "src/flowsim/CMakeFiles/ifet_flowsim.dir/fluid_solver.cpp.o" "gcc" "src/flowsim/CMakeFiles/ifet_flowsim.dir/fluid_solver.cpp.o.d"
  "/root/repo/src/flowsim/noise.cpp" "src/flowsim/CMakeFiles/ifet_flowsim.dir/noise.cpp.o" "gcc" "src/flowsim/CMakeFiles/ifet_flowsim.dir/noise.cpp.o.d"
  "/root/repo/src/flowsim/reionization.cpp" "src/flowsim/CMakeFiles/ifet_flowsim.dir/reionization.cpp.o" "gcc" "src/flowsim/CMakeFiles/ifet_flowsim.dir/reionization.cpp.o.d"
  "/root/repo/src/flowsim/streamline.cpp" "src/flowsim/CMakeFiles/ifet_flowsim.dir/streamline.cpp.o" "gcc" "src/flowsim/CMakeFiles/ifet_flowsim.dir/streamline.cpp.o.d"
  "/root/repo/src/flowsim/swirling_flow.cpp" "src/flowsim/CMakeFiles/ifet_flowsim.dir/swirling_flow.cpp.o" "gcc" "src/flowsim/CMakeFiles/ifet_flowsim.dir/swirling_flow.cpp.o.d"
  "/root/repo/src/flowsim/turbulent_vortex.cpp" "src/flowsim/CMakeFiles/ifet_flowsim.dir/turbulent_vortex.cpp.o" "gcc" "src/flowsim/CMakeFiles/ifet_flowsim.dir/turbulent_vortex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan-ubsan/src/volume/CMakeFiles/ifet_volume.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/math/CMakeFiles/ifet_math.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/parallel/CMakeFiles/ifet_parallel.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/tf/CMakeFiles/ifet_tf.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
