#include "stream/cache_manager.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hot_path.hpp"

namespace ifet {

CacheManager::CacheManager(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

bool CacheManager::pinned_locked(int step, const Entry& e) const {
  return e.pin_count > 0 || (step >= window_lo_ && step <= window_hi_);
}

IFET_HOT std::shared_ptr<const VolumeF> CacheManager::lookup(int step) {
  OrderedMutexLock lock(mutex_);
  auto it = entries_.find(step);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  if (it->second.prefetched) {
    it->second.prefetched = false;
    ++stats_.prefetch_hits;
  }
  // splice, not erase+push_front: refreshing the LRU position relinks the
  // existing node, so a cache hit never touches the allocator (and the
  // entry's stored iterator stays valid).
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.volume;
}

IFET_HOT std::shared_ptr<const VolumeF> CacheManager::lookup_quiet(int step) {
  OrderedMutexLock lock(mutex_);
  auto it = entries_.find(step);
  if (it == entries_.end()) return nullptr;
  if (it->second.prefetched) {
    it->second.prefetched = false;
    ++stats_.prefetch_hits;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.volume;
}

bool CacheManager::resident(int step) const {
  OrderedMutexLock lock(mutex_);
  return entries_.count(step) != 0;
}

std::shared_ptr<const VolumeF> CacheManager::insert(int step, VolumeF volume,
                                                    bool from_prefetch) {
  IFET_REQUIRE(!volume.empty(), "CacheManager::insert: empty volume");
  EvictedPayloads evicted;  // declared before the lock: destroyed after it
  OrderedMutexLock lock(mutex_);
  auto it = entries_.find(step);
  if (it != entries_.end()) {
    // Lost a benign load race; keep the resident entry.
    return it->second.volume;
  }
  Entry entry;
  entry.bytes = volume.size() * sizeof(float);
  entry.volume = std::make_shared<const VolumeF>(std::move(volume));
  entry.prefetched = from_prefetch;
  auto pending = pending_pins_.find(step);
  if (pending != pending_pins_.end()) {
    entry.pin_count = pending->second;
    pending_pins_.erase(pending);
  }
  lru_.push_front(step);
  entry.lru_it = lru_.begin();
  resident_bytes_ += entry.bytes;
  ++stats_.inserts;
  auto stored = entries_.emplace(step, std::move(entry)).first->second.volume;
  evict_over_budget_locked(evicted);
  stats_.peak_bytes_resident =
      std::max(stats_.peak_bytes_resident, resident_bytes_);
  return stored;
}

void CacheManager::evict_over_budget_locked(EvictedPayloads& evicted) {
  if (budget_bytes_ == 0) return;
  auto it = lru_.end();
  while (resident_bytes_ > budget_bytes_ && it != lru_.begin()) {
    --it;
    const int victim = *it;
    auto e = entries_.find(victim);
    IFET_REQUIRE(e != entries_.end(), "CacheManager: LRU/entry desync");
    if (pinned_locked(victim, e->second)) continue;  // skip, try next-older
    resident_bytes_ -= e->second.bytes;
    ++stats_.evictions;
    // Hand the payload to the caller's frame: if this was the last
    // reference, the VolumeF deallocation must not run under the mutex.
    evicted.push_back(std::move(e->second.volume));
    it = lru_.erase(it);
    entries_.erase(e);
  }
}

void CacheManager::pin(int step) {
  OrderedMutexLock lock(mutex_);
  auto it = entries_.find(step);
  if (it != entries_.end()) {
    ++it->second.pin_count;
  } else {
    ++pending_pins_[step];
  }
}

void CacheManager::unpin(int step) {
  OrderedMutexLock lock(mutex_);
  auto it = entries_.find(step);
  if (it != entries_.end()) {
    IFET_REQUIRE(it->second.pin_count > 0,
                 "CacheManager::unpin: step is not pinned");
    --it->second.pin_count;
    return;
  }
  auto pending = pending_pins_.find(step);
  IFET_REQUIRE(pending != pending_pins_.end(),
               "CacheManager::unpin: step is not pinned");
  if (--pending->second == 0) pending_pins_.erase(pending);
}

void CacheManager::pin_window(int lo, int hi) {
  EvictedPayloads evicted;
  OrderedMutexLock lock(mutex_);
  window_lo_ = lo;
  window_hi_ = hi;
  // Entries that just left the window may now push the cache over budget.
  evict_over_budget_locked(evicted);
}

std::pair<int, int> CacheManager::pinned_window() const {
  OrderedMutexLock lock(mutex_);
  return {window_lo_, window_hi_};
}

void CacheManager::set_budget(std::size_t budget_bytes) {
  EvictedPayloads evicted;
  OrderedMutexLock lock(mutex_);
  budget_bytes_ = budget_bytes;
  evict_over_budget_locked(evicted);
}

std::size_t CacheManager::budget_bytes() const {
  OrderedMutexLock lock(mutex_);
  return budget_bytes_;
}

std::size_t CacheManager::resident_bytes() const {
  OrderedMutexLock lock(mutex_);
  return resident_bytes_;
}

std::size_t CacheManager::resident_steps() const {
  OrderedMutexLock lock(mutex_);
  return entries_.size();
}

std::vector<int> CacheManager::lru_order() const {
  OrderedMutexLock lock(mutex_);
  return {lru_.begin(), lru_.end()};
}

void CacheManager::clear() {
  EvictedPayloads evicted;
  OrderedMutexLock lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    auto e = entries_.find(*it);
    IFET_REQUIRE(e != entries_.end(), "CacheManager: LRU/entry desync");
    if (pinned_locked(*it, e->second)) {
      ++it;
      continue;
    }
    resident_bytes_ -= e->second.bytes;
    ++stats_.evictions;
    evicted.push_back(std::move(e->second.volume));
    entries_.erase(e);
    it = lru_.erase(it);
  }
}

IFET_DETERMINISTIC StreamStats CacheManager::stats() const {
  OrderedMutexLock lock(mutex_);
  StreamStats out = stats_;
  out.budget_bytes = budget_bytes_;
  out.bytes_resident = resident_bytes_;
  out.steps_resident = entries_.size();
  // Walk the LRU list, not the hash map: the pinned count is
  // order-independent, but stats() feeds StreamStats summaries the
  // determinism contract covers, and the list iterates in a defined
  // (recency) order at zero extra cost.
  std::size_t pinned = 0;
  for (const int step : lru_) {
    const auto e = entries_.find(step);
    if (e != entries_.end() && pinned_locked(step, e->second)) ++pinned;
  }
  out.pinned_steps = pinned;
  return out;
}

}  // namespace ifet
