// Error handling primitives for the ifet library.
//
// Following the C++ Core Guidelines (E.2, I.10) we report errors that cannot
// be handled locally by throwing; precondition violations use IFET_REQUIRE
// which throws ifet::Error with file/line context so library misuse is
// diagnosable in release builds too (the data sets processed here are large
// and rebuilding in debug mode to find a bad extent is not acceptable).
#pragma once

#include <stdexcept>
#include <string>

namespace ifet {

/// Exception type thrown for all recoverable errors raised by ifet libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace detail

}  // namespace ifet

/// Precondition / invariant check that stays on in release builds.
/// Throws ifet::Error with source location on failure.
#define IFET_REQUIRE(expr, message)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::ifet::detail::throw_error(__FILE__, __LINE__, #expr, (message));  \
    }                                                                     \
  } while (false)
