// Fixture (should PASS): a loop-free single-voxel probe may use the
// scalar path; batched passes go through forward_batch outside any loop.
double probe(Mlp& mlp, double x) { return mlp.forward(x); }

void classify(FlatMlp& engine, const double* in, double* out, int n,
              Scratch& scratch) {
  engine.forward_batch(in, n, out, scratch);
}
