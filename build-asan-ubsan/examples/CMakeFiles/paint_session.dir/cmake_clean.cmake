file(REMOVE_RECURSE
  "CMakeFiles/paint_session.dir/paint_session.cpp.o"
  "CMakeFiles/paint_session.dir/paint_session.cpp.o.d"
  "paint_session"
  "paint_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paint_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
