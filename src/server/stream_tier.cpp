#include "server/stream_tier.hpp"

#include "util/error.hpp"
#include "util/hashing.hpp"

namespace ifet {

namespace {
VolumeStoreConfig store_config(const StreamTierConfig& c) {
  VolumeStoreConfig out;
  out.budget_bytes = c.budget_bytes;
  out.lookahead = c.lookahead;
  out.async_prefetch = c.async_prefetch;
  out.max_retries = c.max_retries;
  out.retry_backoff_ms = c.retry_backoff_ms;
  // Mechanism, not policy: the shared store only ever reports "no data"
  // for a quarantined step; each ClientSequenceView layers its own
  // FailPolicy on top (see the header comment).
  out.fail_policy = FailPolicy::kSkipStep;
  return out;
}

std::size_t payload_bytes(const Dims& d) {
  return static_cast<std::size_t>(d.x) * static_cast<std::size_t>(d.y) *
         static_cast<std::size_t>(d.z) * sizeof(float);
}
}  // namespace

StreamTier::StreamTier(std::shared_ptr<const VolumeSource> source,
                       const StreamTierConfig& config)
    : config_(config),
      store_(std::make_unique<VolumeStore>(std::move(source),
                                           store_config(config))),
      admission_(payload_bytes(store_->dims()), config.pin_quota_bytes,
                 store_->num_steps()) {
  IFET_REQUIRE(config_.histogram_bins > 0, "StreamTier: need histogram bins");
  auto [lo, hi] = store_->value_range();
  hist_params_ = hash_combine(
      hash_combine(static_cast<std::uint64_t>(config_.histogram_bins),
                   hash_double(lo)),
      hash_double(hi));
  pressure_ = std::make_unique<PressureMonitor>(
      store_->cache(), admission_, derived_, aggregate_, hist_params_,
      config_.budget_bytes, step_bytes(), config_.pressure);
}

std::size_t StreamTier::step_bytes() const {
  return payload_bytes(store_->dims());
}

StreamStats StreamTier::stats() const {
  StreamStats out = store_->stats();
  out.merge(derived_.stats());
  // The overload counters live ONLY in the manager-side aggregate (views
  // and the store never count them). The aggregate's access counters stay
  // out: they mirror the per-view layer and would double-count the
  // store's own hits/misses.
  const StreamStats agg = aggregate_.snapshot();
  out.commands_rejected += agg.commands_rejected;
  out.commands_shed += agg.commands_shed;
  out.deadline_exceeded += agg.deadline_exceeded;
  out.pressure_transitions += agg.pressure_transitions;
  return out;
}

}  // namespace ifet
