// ifet_tool — command-line front end to the library.
//
//   ifet_tool gen      --dataset=argon|jet|reionization|vortex|swirl
//                      --out=PREFIX [--size=N] [--steps=a,b,c]
//                      [--cvol=FILE]          generate .vol files (or one
//                                             compressed .cvol sequence)
//   ifet_tool info     FILE.vol|FILE.cvol     print dims / range / histogram
//   ifet_tool render   FILE.vol --out=IMG.ppm [--band=lo:hi] [--image=N]
//                      [--azimuth=R] [--elevation=R]
//   ifet_tool track    FILE.cvol --seed=x,y,z [--step=S] [--band=lo:hi]
//                      [--budget-mb=N] [--lookahead=K]
//                      [--max-retries=N] [--backoff-ms=MS]
//                      [--fail-policy=throw|skip|nearest]
//                      [--inject-faults=kind@step[:count],...]
//                      [--out=PREFIX]         4D region growing over the
//                                             out-of-core sequence; prints
//                                             the feature tree, per-step
//                                             counts, and streaming stats
//                                             (fault flags exercise the
//                                             robustness layer — see
//                                             docs/ROBUSTNESS.md)
//
// The tool works on the library's self-describing formats so a user can
// run the full extract-and-track pipeline on their own converted data.
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/track_events.hpp"
#include "core/tracking.hpp"
#include "flowsim/datasets.hpp"
#include "io/compressed.hpp"
#include "stream/fault_injection.hpp"
#include "stream/streamed_sequence.hpp"
#include "io/image_io.hpp"
#include "io/volume_io.hpp"
#include "render/raycaster.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "volume/histogram.hpp"
#include "volume/ops.hpp"

namespace {

using namespace ifet;

int usage() {
  std::cerr << "usage: ifet_tool <gen|info|render|track> [options]\n"
               "see the header of tools/ifet_tool.cpp for details\n";
  return 2;
}

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

std::pair<double, double> parse_band(const std::string& text, double lo,
                                     double hi) {
  auto colon = text.find(':');
  if (colon == std::string::npos) return {lo, hi};
  return {std::stod(text.substr(0, colon)), std::stod(text.substr(colon + 1))};
}

std::shared_ptr<VolumeSource> make_dataset(const std::string& name,
                                           int size) {
  if (name == "argon") {
    ArgonBubbleConfig cfg;
    cfg.dims = Dims{size, size, size};
    cfg.num_steps = 360;
    return std::make_shared<ArgonBubbleSource>(cfg);
  }
  if (name == "jet") {
    CombustionJetConfig cfg;
    cfg.dims = Dims{size, size + size / 2, size / 2};
    cfg.num_steps = 21;
    return std::make_shared<CombustionJetSource>(cfg);
  }
  if (name == "reionization") {
    ReionizationConfig cfg;
    cfg.dims = Dims{size, size, size};
    cfg.num_steps = 400;
    return std::make_shared<ReionizationSource>(cfg);
  }
  if (name == "vortex") {
    TurbulentVortexConfig cfg;
    cfg.dims = Dims{size, size, size};
    return std::make_shared<TurbulentVortexSource>(cfg);
  }
  if (name == "swirl") {
    SwirlingFlowConfig cfg;
    cfg.dims = Dims{size, size, size};
    return std::make_shared<SwirlingFlowSource>(cfg);
  }
  throw Error("unknown dataset: " + name +
              " (expected argon|jet|reionization|vortex|swirl)");
}

int cmd_gen(const CliArgs& args) {
  const std::string dataset = args.get("dataset", "argon");
  const int size = args.get_int("size", 48);
  auto source = make_dataset(dataset, size);

  if (args.has("cvol")) {
    const std::string path = args.get("cvol", "out.cvol");
    write_compressed_sequence(*source, path);
    CompressedFileSource reader(path);
    std::cout << "wrote " << path << ": " << source->num_steps()
              << " steps, " << reader.total_payload_bytes()
              << " compressed payload bytes\n";
    return 0;
  }
  const std::string prefix = args.get("out", dataset);
  std::vector<int> steps = parse_int_list(args.get("steps", "0"));
  for (int s : steps) {
    VolumeF v = source->generate(s);
    std::string path = prefix + "_t" + std::to_string(s) + ".vol";
    write_vol(v, path);
    std::cout << "wrote " << path << "\n";
  }
  return 0;
}

int cmd_info(const CliArgs& args) {
  if (args.positional().size() < 2) return usage();
  const std::string& path = args.positional()[1];
  if (path.size() > 5 && path.substr(path.size() - 5) == ".cvol") {
    CompressedFileSource source(path);
    std::cout << path << ": compressed sequence, "
              << source.dims().x << "x" << source.dims().y << "x"
              << source.dims().z << ", " << source.num_steps()
              << " steps, range [" << source.value_range().first << ", "
              << source.value_range().second << "], "
              << source.total_payload_bytes() << " payload bytes\n";
    return 0;
  }
  VolumeF v = read_vol(path);
  auto [lo, hi] = value_range(v);
  std::cout << path << ": " << v.dims().x << "x" << v.dims().y << "x"
            << v.dims().z << ", range [" << lo << ", " << hi << "]\n";
  Histogram h = Histogram::of(v, 16, lo, hi + 1e-6f);
  Table table({"bin_center", "count"});
  for (int b = 0; b < h.bins(); ++b) {
    table.add_row({Table::num(h.bin_center(b)), std::to_string(h.count(b))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_render(const CliArgs& args) {
  if (args.positional().size() < 2) return usage();
  VolumeF v = read_vol(args.positional()[1]);
  auto [vlo, vhi] = value_range(v);
  auto [blo, bhi] =
      parse_band(args.get("band", ""), lerp(vlo, vhi, 0.5), vhi);
  TransferFunction1D tf(vlo, vhi + 1e-6f);
  tf.add_band(blo, bhi, 0.9, 0.05 * (vhi - vlo));

  RenderSettings settings;
  settings.width = args.get_int("image", 256);
  settings.height = settings.width;
  Raycaster caster(settings);
  Camera camera(args.get_double("azimuth", 0.6),
                args.get_double("elevation", 0.35), 2.4);
  RenderStats stats;
  ImageRgb8 image = caster.render(v, tf, ColorMap(), camera, nullptr,
                                  &stats);
  const std::string out = args.get("out", "render.ppm");
  write_ppm(image, out);
  std::cout << "rendered band [" << blo << ", " << bhi << "] in "
            << stats.seconds << " s -> " << out << "\n";
  return 0;
}

int cmd_track(const CliArgs& args) {
  if (args.positional().size() < 2) return usage();
  StreamConfig stream_config;
  // 0 (the default) keeps the whole sequence resident; a tight budget
  // tracks out-of-core with the same results.
  stream_config.budget_bytes =
      static_cast<std::size_t>(args.get_int("budget-mb", 0)) * 1024 * 1024;
  stream_config.lookahead = args.get_int("lookahead", 2);
  stream_config.max_retries = args.get_int("max-retries", 2);
  stream_config.retry_backoff_ms = args.get_double("backoff-ms", 0.0);
  stream_config.fail_policy = parse_fail_policy(args.get("fail-policy",
                                                         "throw"));
  std::shared_ptr<const VolumeSource> source =
      std::make_shared<CompressedFileSource>(args.positional()[1]);
  if (args.has("inject-faults")) {
    source = std::make_shared<FaultInjectingSource>(
        source, parse_fault_schedule(args.get("inject-faults", "")));
  }
  StreamedSequence sequence(std::move(source), stream_config);
  auto [vlo, vhi] = sequence.value_range();
  auto [blo, bhi] = parse_band(args.get("band", ""),
                               lerp(vlo, vhi, 0.5), vhi);
  auto seed_coords = parse_int_list(args.get("seed", ""));
  IFET_REQUIRE(seed_coords.size() == 3,
               "track: --seed=x,y,z is required");
  Index3 seed{seed_coords[0], seed_coords[1], seed_coords[2]};
  const int seed_step = args.get_int("step", 0);

  FixedRangeCriterion criterion(blo, bhi);
  Tracker tracker(sequence, criterion);
  TrackResult track = tracker.track(seed, seed_step);
  if (track.masks.empty()) {
    std::cout << "seed does not satisfy the criterion; nothing tracked\n";
    return 1;
  }
  FeatureHistory history = build_feature_history(track);
  std::cout << "tracked steps " << track.first_step() << ".."
            << track.last_step() << " with band [" << blo << ", " << bhi
            << "]\n"
            << format_feature_tree(history);
  for (const auto& event : history.events) {
    if (event.type != EventType::kContinuation) {
      std::cout << "event: " << event_name(event.type)
                << " at t=" << event.step << "\n";
    }
  }
  std::cout << sequence.stats().summary() << "\n";
  if (sequence.stats().quarantined_steps != 0) {
    std::cout << sequence.store().step_health().summary() << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ifet::CliArgs args(argc, argv);
    if (args.positional().empty()) return usage();
    const std::string& command = args.positional()[0];
    if (command == "gen") return cmd_gen(args);
    if (command == "info") return cmd_info(args);
    if (command == "render") return cmd_render(args);
    if (command == "track") return cmd_track(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "ifet_tool: " << e.what() << "\n";
    return 1;
  }
}
