#include "volume/ops.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"
#include "util/hot_path.hpp"

namespace ifet {

std::pair<float, float> value_range(const VolumeF& volume) {
  IFET_REQUIRE(!volume.empty(), "value_range of empty volume");
  auto [mn, mx] =
      std::minmax_element(volume.data().begin(), volume.data().end());
  return {*mn, *mx};
}

VolumeF normalized(const VolumeF& volume) {
  auto [lo, hi] = value_range(volume);
  VolumeF out(volume.dims());
  if (hi <= lo) return out;
  const float scale = 1.0f / (hi - lo);
  for (std::size_t i = 0; i < volume.size(); ++i) {
    out[i] = (volume[i] - lo) * scale;
  }
  return out;
}

IFET_HOT Vec3 gradient_at(const VolumeF& volume, int i, int j, int k) {
  double gx = 0.5 * (volume.clamped(i + 1, j, k) - volume.clamped(i - 1, j, k));
  double gy = 0.5 * (volume.clamped(i, j + 1, k) - volume.clamped(i, j - 1, k));
  double gz = 0.5 * (volume.clamped(i, j, k + 1) - volume.clamped(i, j, k - 1));
  return {gx, gy, gz};
}

VolumeF gradient_magnitude(const VolumeF& volume) {
  VolumeF out(volume.dims());
  const Dims d = volume.dims();
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        out[out.linear_index(i, j, k)] =
            static_cast<float>(gradient_at(volume, i, j, k).norm());
      }
    }
  });
  return out;
}

Mask threshold_mask(const VolumeF& volume, float lo, float hi) {
  Mask out(volume.dims());
  for (std::size_t i = 0; i < volume.size(); ++i) {
    out[i] = (volume[i] >= lo && volume[i] <= hi) ? 1 : 0;
  }
  return out;
}

VolumeF blend(const VolumeF& a, const VolumeF& b, double t) {
  IFET_REQUIRE(a.dims() == b.dims(), "blend: dimension mismatch");
  VolumeF out(a.dims());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = static_cast<float>(lerp(a[i], b[i], t));
  }
  return out;
}

double mean_abs_difference(const VolumeF& a, const VolumeF& b) {
  IFET_REQUIRE(a.dims() == b.dims(), "mean_abs_difference: dimension mismatch");
  if (a.size() == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return s / static_cast<double>(a.size());
}

}  // namespace ifet
