file(REMOVE_RECURSE
  "libifet_render.a"
)
