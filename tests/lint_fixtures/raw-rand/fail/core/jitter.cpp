// Fixture (should FAIL): rand() breaks run reproducibility.
#include <cstdlib>

int jitter() { return rand() % 7; }
