// Fixed-size brick decomposition with per-brick value ranges — the
// renderer's empty-space-skipping metadata (docs/PERFORMANCE.md).
//
// A BrickIndex partitions a volume into brick_size^3 cells (ragged at the
// high faces when an extent is not a multiple) and records the min/max
// voxel value of each cell. Built once at ingest, it answers the question
// the ray caster asks per frame: "can ANY sample inside this brick have
// nonzero opacity under the current transfer function?" — a brick whose
// dilated value range maps to zero opacity everywhere is provably
// invisible, so rays clip it out analytically instead of marching it.
//
// NaN guarantee: stored ranges are never NaN. A brick containing a NaN
// voxel gets the range [-inf, +inf], which no transfer function maps to
// "provably transparent", so NaN-contaminated data is always marched the
// same way the scalar renderer marches it.
//
// The index serializes into the .cvol container's versioned brick section
// (io/compressed) so the streaming layer can serve it without decoding
// payloads; legacy files and raw .vol sets fall back to building it from
// the decoded volume (stream/volume_store).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "volume/volume.hpp"

namespace ifet {

class TransferFunction1D;

class BrickIndex {
 public:
  /// Default brick edge (8^3 = 512 voxels/brick): small enough that thin
  /// features keep most bricks empty, large enough that the per-brick
  /// metadata stays ~0.2% of the volume.
  static constexpr int kDefaultBrickSize = 8;

  /// Inclusive value range of one brick's voxels.
  struct Range {
    float lo = 0.0f;
    float hi = 0.0f;
  };

  BrickIndex() = default;

  /// One pass over `volume`: min/max per brick_size^3 cell. Bricks at the
  /// high faces cover the remainder when an extent is not a multiple of
  /// brick_size. A brick containing NaN gets [-inf, +inf].
  static BrickIndex build(const VolumeF& volume,
                          int brick_size = kDefaultBrickSize);

  bool empty() const { return ranges_.empty(); }
  int brick_size() const { return brick_size_; }
  const Dims& volume_dims() const { return dims_; }
  /// Brick-grid extents (ceil-division of the volume extents).
  const Dims& grid() const { return grid_; }
  std::size_t num_bricks() const { return ranges_.size(); }

  std::size_t brick_linear(int bx, int by, int bz) const {
    IFET_DEBUG_ASSERT(grid_.contains(bx, by, bz),
                      "BrickIndex::brick_linear out of range");
    return static_cast<std::size_t>(bx) +
           static_cast<std::size_t>(grid_.x) *
               (static_cast<std::size_t>(by) +
                static_cast<std::size_t>(grid_.y) *
                    static_cast<std::size_t>(bz));
  }

  const Range& range(int bx, int by, int bz) const {
    return ranges_[brick_linear(bx, by, bz)];
  }
  const std::vector<Range>& ranges() const { return ranges_; }

  /// Per-brick activity flags under a transfer function: flag[b] == 0 iff
  /// every sample whose trilinear support can touch brick b is provably
  /// transparent under `tf`. The decision range of each brick is the union
  /// of the value ranges of its full 3x3x3 brick neighbourhood — one brick
  /// (>= 1 voxel) of conservative margin, covering the +1-voxel trilinear
  /// tap reach, the nearest-voxel highlight/gradient lookups, and any
  /// boundary-ULP disagreement between the ray marcher's analytic brick
  /// clipping and the exact per-sample addressing. `out` is resized to
  /// num_bricks().
  void classify(const TransferFunction1D& tf,
                std::vector<std::uint8_t>& out) const;

  /// classify() with a second chance through a highlight transfer
  /// function: bricks whose 3x3x3 neighbourhood contains a set mask voxel
  /// are also kept active when `highlight_tf` has nonzero opacity over the
  /// decision range (the tracked-feature overlay re-colors masked samples
  /// through the adaptive TF, so the main TF alone cannot prove them
  /// transparent). `mask` must match volume_dims().
  void classify_with_highlight(const TransferFunction1D& tf,
                               const Mask& mask,
                               const TransferFunction1D& highlight_tf,
                               std::vector<std::uint8_t>& out) const;

  /// Serialized ranges (little-endian f32 lo/hi pairs, brick-linear
  /// order) — the payload of the .cvol brick section. Geometry (dims,
  /// brick size) travels in the container header, not here.
  std::vector<std::uint8_t> serialize() const;

  /// Inverse of serialize(). Throws CorruptDataError when `size` does not
  /// match the brick count implied by (volume_dims, brick_size) or a
  /// stored range is NaN.
  static BrickIndex deserialize(Dims volume_dims, int brick_size,
                                const std::uint8_t* bytes, std::size_t size);

  /// Serialized byte size of an index over (volume_dims, brick_size).
  static std::size_t serialized_bytes(Dims volume_dims, int brick_size);

 private:
  /// Union of the 3x3x3 neighbourhood ranges around brick (bx,by,bz).
  Range dilated_range(int bx, int by, int bz) const;

  Dims dims_{};
  Dims grid_{};
  int brick_size_ = 0;
  std::vector<Range> ranges_;
};

}  // namespace ifet
