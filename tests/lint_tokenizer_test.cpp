// Unit tests of the lint tokenizer's code view (tools/lint/tokenizer.hpp
// strip_to_code): comments and literals blanked position-preserving, plus
// the hardening cases — digit separators, encoding-prefixed char/string
// literals, prefixed raw strings, and [[attribute]] sequences. These are
// the lexer-level regressions behind the fixture suite; each mis-lex here
// corrupts call-graph edges or plants phantom findings downstream.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/tokenizer.hpp"

namespace {

std::vector<std::string> strip(std::vector<std::string> lines) {
  return ifet_lint::strip_to_code(lines);
}

TEST(LintTokenizer, PreservesPlainCodeAndPositions) {
  const auto code = strip({"int f(int x) { return x + 1; }"});
  ASSERT_EQ(code.size(), 1u);
  EXPECT_EQ(code[0], "int f(int x) { return x + 1; }");
}

TEST(LintTokenizer, BlanksCommentsAndStrings) {
  const auto code = strip({"call(\"push_back(\"); // push_back(",
                           "/* new Thing */ int y = 0;"});
  EXPECT_EQ(code[0].find("push_back"), std::string::npos);
  EXPECT_EQ(code[1].find("new"), std::string::npos);
  // Positions survive blanking: `int y` is where it was in the raw line.
  EXPECT_EQ(code[1].find("int y"), std::string{"/* new Thing */ "}.size());
}

TEST(LintTokenizer, BlockCommentSpansLines) {
  const auto code = strip({"a(); /* begin", "  new X;", "end */ b();"});
  EXPECT_NE(code[0].find("a()"), std::string::npos);
  EXPECT_EQ(code[1].find("new"), std::string::npos);
  EXPECT_NE(code[2].find("b()"), std::string::npos);
}

TEST(LintTokenizer, DigitSeparatorIsNotACharLiteral) {
  // Mis-lexing 1'000'000 as a char open used to swallow `foo.resize(`.
  const auto code = strip({"int n = 1'000'000; foo.resize(n);"});
  EXPECT_NE(code[0].find("1'000'000"), std::string::npos);
  EXPECT_NE(code[0].find("foo.resize(n)"), std::string::npos);
}

TEST(LintTokenizer, HexAndBinaryDigitSeparators) {
  const auto code = strip({"auto m = 0xFF'FF'FFu; auto b = 0b1010'0101;"});
  EXPECT_NE(code[0].find("0xFF'FF'FFu"), std::string::npos);
  EXPECT_NE(code[0].find("0b1010'0101"), std::string::npos);
}

TEST(LintTokenizer, WideAndUnicodeCharLiteralsAreBlanked) {
  // L'x' / u8'x': the prefix letter must not make the quote look like a
  // digit separator; the literal body is blanked like any char literal.
  const auto code = strip({"wchar_t w = L'x'; char8_t c = u8'y'; g(w, c);"});
  EXPECT_EQ(code[0].find('x'), std::string::npos);
  EXPECT_EQ(code[0].find('y'), std::string::npos);
  EXPECT_NE(code[0].find("g(w, c)"), std::string::npos);
}

TEST(LintTokenizer, EncodingPrefixedStringsAreBlanked) {
  const auto code = strip({"auto s = u8\"emplace(\"; h();",
                           "auto t = L\"resize(\"; k();"});
  EXPECT_EQ(code[0].find("emplace"), std::string::npos);
  EXPECT_NE(code[0].find("h()"), std::string::npos);
  EXPECT_EQ(code[1].find("resize"), std::string::npos);
  EXPECT_NE(code[1].find("k()"), std::string::npos);
}

TEST(LintTokenizer, RawStringsAreBlanked) {
  const auto code = strip({"auto re = R\"(push_back\\()\"; q();"});
  EXPECT_EQ(code[0].find("push_back"), std::string::npos);
  EXPECT_NE(code[0].find("q()"), std::string::npos);
}

TEST(LintTokenizer, PrefixedRawStringsAreBlanked) {
  const auto code = strip({"auto re = u8R\"(new Widget)\"; r();"});
  EXPECT_EQ(code[0].find("Widget"), std::string::npos);
  EXPECT_NE(code[0].find("r()"), std::string::npos);
}

TEST(LintTokenizer, DelimitedRawStringSpansLines) {
  const auto code =
      strip({"auto s = R\"x(first )\" not the end", "new Y;", ")x\"; s2();"});
  EXPECT_EQ(code[1].find("new"), std::string::npos);
  EXPECT_NE(code[2].find("s2()"), std::string::npos);
}

TEST(LintTokenizer, IdentifierEndingInRIsNotARawString) {
  const auto code = strip({"int var = calibR\"zzz\";"});
  // `calibR` is an identifier followed by a normal string literal.
  EXPECT_NE(code[0].find("calibR"), std::string::npos);
  EXPECT_EQ(code[0].find("zzz"), std::string::npos);
}

TEST(LintTokenizer, AttributesAreBlanked) {
  // `[[deprecated("use v2")]]` must not look like a call to `deprecated`.
  const auto code =
      strip({"[[deprecated(\"use v2\")]] void old_api();",
             "[[nodiscard]] [[gnu::cold]] int f();"});
  EXPECT_EQ(code[0].find("deprecated"), std::string::npos);
  EXPECT_NE(code[0].find("void old_api()"), std::string::npos);
  EXPECT_EQ(code[1].find("nodiscard"), std::string::npos);
  EXPECT_EQ(code[1].find("gnu::cold"), std::string::npos);
  EXPECT_NE(code[1].find("int f()"), std::string::npos);
}

TEST(LintTokenizer, SubscriptsSurviveAttributeBlanking) {
  // Adjacent subscripts are not `[[`: nothing here may be blanked.
  const auto code = strip({"m[a][b] = grid[i][j];"});
  EXPECT_EQ(code[0], "m[a][b] = grid[i][j];");
}

TEST(LintTokenizer, EscapedQuotesInsideStrings) {
  const auto code = strip({"p(\"a\\\"new\\\" b\"); tail();"});
  EXPECT_EQ(code[0].find("new"), std::string::npos);
  EXPECT_NE(code[0].find("tail()"), std::string::npos);
}

}  // namespace
