// Small dense linear-algebra types used by the renderer and the data
// generators. Header-only, constexpr-friendly; only what the library needs
// (no expression templates — 3/4-component vectors and a 4x4 matrix).
#pragma once

#include <cmath>
#include <ostream>

namespace ifet {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }

  /// Unit vector in this direction; returns the zero vector unchanged.
  Vec3 normalized() const {
    double n = norm();
    return n > 0.0 ? *this / n : *this;
  }
};

inline constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

struct Vec4 {
  double x = 0.0, y = 0.0, z = 0.0, w = 0.0;

  constexpr Vec4() = default;
  constexpr Vec4(double x_, double y_, double z_, double w_)
      : x(x_), y(y_), z(z_), w(w_) {}
  constexpr Vec4(const Vec3& v, double w_) : x(v.x), y(v.y), z(v.z), w(w_) {}

  constexpr Vec3 xyz() const { return {x, y, z}; }
  constexpr Vec4 operator+(const Vec4& o) const {
    return {x + o.x, y + o.y, z + o.z, w + o.w};
  }
  constexpr Vec4 operator*(double s) const {
    return {x * s, y * s, z * s, w * s};
  }
};

/// Component range [lo, hi] clamp.
inline constexpr double clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Linear interpolation a + t*(b-a).
inline constexpr double lerp(double a, double b, double t) {
  return a + t * (b - a);
}

inline constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
  return a + (b - a) * t;
}

/// Smoothstep: 0 below e0, 1 above e1, C1 ramp in between.
inline double smoothstep(double e0, double e1, double v) {
  double t = clamp((v - e0) / (e1 - e0), 0.0, 1.0);
  return t * t * (3.0 - 2.0 * t);
}

}  // namespace ifet
