# Empty dependencies file for bench_ablation_shell.
# This may be replaced when dependencies are built.
