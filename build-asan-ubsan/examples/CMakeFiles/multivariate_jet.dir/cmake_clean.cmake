file(REMOVE_RECURSE
  "CMakeFiles/multivariate_jet.dir/multivariate_jet.cpp.o"
  "CMakeFiles/multivariate_jet.dir/multivariate_jet.cpp.o.d"
  "multivariate_jet"
  "multivariate_jet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multivariate_jet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
