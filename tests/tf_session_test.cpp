#include <gtest/gtest.h>

#include <memory>

#include "session/tf_session.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

/// Linear-drift sequence (band moves 0.3 over the run).
std::shared_ptr<CallbackSource> drift_source(int steps) {
  Dims d{12, 12, 12};
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d, steps](int step) {
        double off = 0.3 * step / std::max(1, steps - 1);
        VolumeF v(d);
        for (int k = 0; k < d.z; ++k) {
          for (int j = 0; j < d.y; ++j) {
            for (int i = 0; i < d.x; ++i) {
              bool feature = i >= 4 && i < 8 && j >= 4 && j < 8 && k >= 4 &&
                             k < 8;
              v.at(i, j, k) =
                  static_cast<float>((feature ? 0.4 : 0.1) + off);
            }
          }
        }
        return v;
      });
}

TransferFunction1D band(double lo, double hi) {
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(lo, hi, 1.0, 0.02);
  return tf;
}

TEST(TfSession, RequiresKeyFrameBeforeUse) {
  CachedSequence seq(drift_source(8), 4);
  TfSession session(seq);
  EXPECT_THROW(session.idle(1.0), Error);
  EXPECT_THROW(session.advise(), Error);
  EXPECT_NO_THROW(session.current_tf(0));  // untrained net is still usable
}

TEST(TfSession, LearnsAndAdaptsAcrossTheLoop) {
  const int steps = 9;
  CachedSequence seq(drift_source(steps), 6, 512);
  TfSession session(seq);
  session.set_key_frame(0, band(0.35, 0.45));
  session.set_key_frame(8, band(0.65, 0.75));
  // A few idle slots stand in for the interactive loop; the deterministic
  // epoch top-up keeps the quality assertion independent of machine speed
  // (a wall-clock idle budget trains far fewer epochs under sanitizers).
  for (int slot = 0; slot < 6; ++slot) session.idle(5.0);
  session.train_epochs(2000);
  TransferFunction1D mid = session.current_tf(4);
  EXPECT_GT(mid.opacity(0.55), 0.4);  // drifted band at the midpoint
  EXPECT_LT(mid.opacity(0.15), 0.3);  // background stays closed
}

TEST(TfSession, ReviseKeyFrameChangesResult) {
  CachedSequence seq(drift_source(4), 4);
  TfSession session(seq);
  session.set_key_frame(0, band(0.2, 0.3));
  session.train_epochs(600);
  double before = session.current_tf(0).opacity(0.7);
  session.set_key_frame(0, band(0.65, 0.75));  // user changes their mind
  session.train_epochs(6000);
  double after = session.current_tf(0).opacity(0.7);
  EXPECT_GT(after, before + 0.3);
  EXPECT_EQ(session.key_frame_count(), 1u);
}

TEST(TfSession, RemoveKeyFrame) {
  CachedSequence seq(drift_source(4), 4);
  TfSession session(seq);
  session.set_key_frame(0, band(0.3, 0.4));
  session.set_key_frame(3, band(0.5, 0.6));
  EXPECT_EQ(session.key_frame_count(), 2u);
  EXPECT_TRUE(session.remove_key_frame(3));
  EXPECT_FALSE(session.remove_key_frame(3));
  EXPECT_EQ(session.key_frame_count(), 1u);
}

TEST(TfSession, AdviseCoversTheDrift) {
  const int steps = 11;
  CachedSequence seq(drift_source(steps), 12, 512);
  TfSessionConfig cfg;
  cfg.advisor_threshold = 0.01;
  TfSession session(seq, cfg);
  session.set_key_frame(0, band(0.35, 0.45));
  KeyFrameSuggestion advice = session.advise();
  // Only the first step is keyed; the far end is the least covered.
  EXPECT_GE(advice.step, steps / 2);
  session.set_key_frame(advice.step, band(0.35, 0.45));
  KeyFrameSuggestion next = session.advise();
  if (next.step >= 0) {
    EXPECT_LT(next.distance, advice.distance);
  }
}

TEST(TfSession, PreviewRendersThroughAdaptiveTf) {
  CachedSequence seq(drift_source(4), 4);
  TfSession session(seq);
  session.set_key_frame(0, band(0.35, 0.45));
  session.train_epochs(400);
  RenderSettings settings;
  settings.width = 32;
  settings.height = 32;
  settings.shading = false;
  ImageRgb8 image = session.preview(0, Camera(0.5, 0.3, 2.5), settings);
  EXPECT_EQ(image.width, 32);
  int nonblack = 0;
  for (std::uint8_t p : image.pixels) nonblack += (p != 0);
  EXPECT_GT(nonblack, 0);  // the keyed feature is visible
}

}  // namespace
}  // namespace ifet
