file(REMOVE_RECURSE
  "libifet_flowsim.a"
)
