// Histograms and cumulative histograms (paper Sec 4.2.1).
//
// The cumulative histogram is the backbone of the Intelligent Adaptive
// Transfer Function: "for a given data set, the value of a voxel's
// cumulative histogram is the number of voxels in the data set that have
// scalar value less than or equal to that voxel". When the temporal change
// of a volume is a positional move or a global intensity shift, a feature's
// *cumulative* coordinate is stable even though its raw value drifts — so
// <value, cumhist(value), t> is the IATF input vector.
#pragma once

#include <cstddef>
#include <vector>

#include "volume/volume.hpp"

namespace ifet {

/// Fixed-range binned histogram over scalar values.
class Histogram {
 public:
  /// Builds `bins` equal-width bins over [lo, hi]; values outside the range
  /// clamp into the first/last bin (matches 8-bit texture quantization in
  /// the paper's renderer).
  Histogram(int bins, double lo, double hi);

  /// Convenience: histogram of every voxel of `volume`.
  static Histogram of(const VolumeF& volume, int bins, double lo, double hi);

  void add(double value);

  int bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t total() const { return total_; }

  /// Bin index of a value (clamped).
  int bin_of(double value) const;
  /// Center value of a bin. `bin` must be in [0, bins()) (checked under
  /// IFET_CHECKED_ITERATORS).
  double bin_center(int bin) const;
  std::size_t count(int bin) const {
    IFET_DEBUG_ASSERT(bin >= 0 && bin < bins(),
                      "Histogram::count bin out of range");
    return counts_[static_cast<size_t>(bin)];
  }
  const std::vector<std::size_t>& counts() const { return counts_; }

  /// Bin with the largest count inside [bin_lo, bin_hi] (inclusive).
  int peak_bin(int bin_lo, int bin_hi) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Normalized cumulative histogram: value -> fraction of voxels <= value.
class CumulativeHistogram {
 public:
  /// Builds from a histogram (the usual path: one histogram per time step).
  explicit CumulativeHistogram(const Histogram& histogram);

  /// Convenience: build directly from a volume.
  static CumulativeHistogram of(const VolumeF& volume, int bins, double lo,
                                double hi);

  /// Fraction of voxels with value <= `value`, in [0, 1].
  double fraction_at(double value) const;

  /// Inverse lookup: smallest value whose cumulative fraction >= `fraction`.
  double value_at_fraction(double fraction) const;

  int bins() const { return static_cast<int>(cumulative_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_, hi_;
  double bin_width_;
  std::vector<double> cumulative_;  // cumulative_[b] = P(value <= center_b)
};

}  // namespace ifet
