#include "server/client_view.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"
#include "util/io_error.hpp"

namespace ifet {

ClientSequenceView::ClientSequenceView(StreamTier& tier,
                                       const ClientViewConfig& config)
    : tier_(tier), config_(config) {
  IFET_REQUIRE(config_.pin_radius >= 0,
               "ClientSequenceView: pin_radius must be >= 0");
  client_ = tier_.admission().register_client();
}

ClientSequenceView::~ClientSequenceView() {
  // Give back everything this client pinned; the counted cache pins
  // compose, so a step another client also pinned stays pinned.
  std::vector<int> unpin = tier_.admission().release_client(client_);
  CacheManager& cache = tier_.store().cache();
  for (int s : unpin) cache.unpin(s);
}

std::shared_ptr<const VolumeF> ClientSequenceView::fetch_with_policy(
    int step) const {
  auto volume = tier_.store().fetch(step);  // tier policy: skip => nullptr
  if (volume) return volume;
  switch (config_.fail_policy) {
    case FailPolicy::kThrow:
      throw CorruptDataError(
          "ClientSequenceView: step " + std::to_string(step) +
          " is quarantined (this client's fail policy is kThrow)");
    case FailPolicy::kSkipStep:
      stats_.count_skipped_fetch();
      tier_.aggregate().count_skipped_fetch();
      return nullptr;
    case FailPolicy::kNearestGood:
      break;
  }
  // kNearestGood: widen outward until a neighbour answers.
  for (int d = 1; d < num_steps(); ++d) {
    const int candidates[2] = {step - d, step + d};
    for (int candidate : candidates) {
      if (candidate < 0 || candidate >= num_steps()) continue;
      auto neighbour = tier_.store().fetch(candidate);
      if (neighbour) {
        stats_.count_substitution();
        tier_.aggregate().count_substitution();
        return neighbour;
      }
    }
  }
  throw CorruptDataError("ClientSequenceView: no loadable step near " +
                         std::to_string(step));
}

std::shared_ptr<const VolumeF> ClientSequenceView::fetch_or_substitute(
    int step) const {
  auto volume = tier_.store().fetch(step);
  if (volume) return volume;
  for (int d = 1; d < num_steps(); ++d) {
    const int candidates[2] = {step - d, step + d};
    for (int candidate : candidates) {
      if (candidate < 0 || candidate >= num_steps()) continue;
      auto neighbour = tier_.store().fetch(candidate);
      if (neighbour) return neighbour;
    }
  }
  throw CorruptDataError("ClientSequenceView: no loadable step near " +
                         std::to_string(step));
}

std::pair<int, int> ClientSequenceView::set_window_locked(
    int lo, int hi,
    std::vector<std::shared_ptr<const VolumeF>>& dropped) const {
  lo = std::max(lo, 0);
  hi = std::min(hi, num_steps() - 1);
  window_lo_ = lo;
  window_hi_ = hi;
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->first < lo || it->first > hi) {
      dropped.push_back(std::move(it->second));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  return {lo, hi};
}

void ClientSequenceView::apply_window(int lo, int hi, int center) const {
  WindowDelta delta = tier_.admission().set_window(client_, lo, hi, center);
  CacheManager& cache = tier_.store().cache();
  for (int s : delta.unpin) cache.unpin(s);
  for (int s : delta.pin) {
    cache.pin(s);
    // Warm the newly pinned slot; the center is what triggered the move
    // and is being fetched by the caller already.
    if (s != center) tier_.store().prefetch(s);
  }
}

const VolumeF& ClientSequenceView::step(int step) const {
  const VolumeF* volume = try_step(step);
  if (volume == nullptr) {
    throw CorruptDataError(
        "ClientSequenceView: step " + std::to_string(step) +
        " is quarantined and this client's fail policy skips it (consumers "
        "that can bridge gaps use try_step)");
  }
  return *volume;
}

const VolumeF* ClientSequenceView::try_step(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "ClientSequenceView: step out of range");
  // Attribution first: residency is probed without stat side effects so a
  // fetch never double-counts in the shared cache's own counters. The
  // probe can race an eviction — it feeds stats, not correctness.
  const bool resident = tier_.store().cache().resident(step);
  stats_.count_access(resident);
  tier_.aggregate().count_access(resident);
  tier_.admission().note_access(client_, step, resident);

  auto volume = fetch_with_policy(step);
  if (!volume) return nullptr;  // this client's policy is kSkipStep

  bool moved = false;
  std::pair<int, int> window{0, -1};
  const VolumeF* ref = nullptr;
  std::vector<std::shared_ptr<const VolumeF>> dropped;
  {
    OrderedMutexLock lock(mutex_);
    if (step < window_lo_ || step > window_hi_) {
      window = set_window_locked(step - config_.pin_radius,
                                 step + config_.pin_radius, dropped);
      moved = true;
    }
    auto& slot = held_[step];
    slot = std::move(volume);
    ref = slot.get();
  }
  // Admission + pinning run with mutex_ released: both are call-outs
  // (admission is a leaf lock, cache pins trigger loads). held_ keeps the
  // returned reference alive whatever order racing window moves land in.
  if (moved) apply_window(window.first, window.second, step);
  return ref;
}

const CumulativeHistogram& ClientSequenceView::cumulative_histogram(
    int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "ClientSequenceView: step out of range");
  {
    OrderedMutexLock lock(mutex_);
    auto it = cumhists_.find(step);
    if (it != cumhists_.end()) return *it->second;
  }
  auto [lo, hi] = tier_.value_range();
  auto cumhist = tier_.derived().cumulative_histogram(
      step, tier_.hist_params(),
      [&]() -> CumulativeHistogram {
        auto volume = fetch_or_substitute(step);
        return CumulativeHistogram(
            Histogram::of(*volume, tier_.histogram_bins(), lo, hi));
      },
      &stats_);
  OrderedMutexLock lock(mutex_);
  auto [it, inserted] = cumhists_.emplace(step, std::move(cumhist));
  (void)inserted;  // a racing caller may have memoized the same entry
  return *it->second;
}

Histogram ClientSequenceView::histogram(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "ClientSequenceView: step out of range");
  auto [lo, hi] = tier_.value_range();
  auto hist = tier_.derived().histogram(
      step, tier_.hist_params(),
      [&]() -> Histogram {
        auto volume = fetch_or_substitute(step);
        return Histogram::of(*volume, tier_.histogram_bins(), lo, hi);
      },
      &stats_);
  return *hist;
}

void ClientSequenceView::hint_window(int lo, int hi) const {
  IFET_REQUIRE(lo <= hi, "ClientSequenceView::hint_window: inverted window");
  std::pair<int, int> window;
  std::vector<std::shared_ptr<const VolumeF>> dropped;
  {
    OrderedMutexLock lock(mutex_);
    window = set_window_locked(lo, hi, dropped);
  }
  apply_window(window.first, window.second,
               window.first + (window.second - window.first) / 2);
}

}  // namespace ifet
