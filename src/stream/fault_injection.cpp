#include "stream/fault_injection.hpp"

#include <chrono>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/error.hpp"
#include "util/io_error.hpp"
#include "util/rng.hpp"

namespace ifet {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransient:
      return "transient";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kNotFound:
      return "notfound";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kSlow:
      return "slow";
  }
  return "?";
}

namespace {

FaultKind parse_fault_kind(const std::string& name) {
  if (name == "transient") return FaultKind::kTransient;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "notfound" || name == "not-found") return FaultKind::kNotFound;
  if (name == "delay") return FaultKind::kDelay;
  if (name == "bitflip" || name == "bit-flip") return FaultKind::kBitFlip;
  if (name == "slow") return FaultKind::kSlow;
  throw Error("unknown fault kind '" + name +
              "' (expected transient, corrupt, notfound, delay, bitflip, "
              "or slow)");
}

int parse_spec_int(const std::string& text, const std::string& what) {
  try {
    std::size_t used = 0;
    const int value = std::stoi(text, &used);
    IFET_REQUIRE(used == text.size(), "trailing characters");
    return value;
  } catch (const Error&) {
    throw Error("fault spec: bad " + what + " '" + text + "'");
  } catch (const std::invalid_argument&) {
    throw Error("fault spec: bad " + what + " '" + text + "'");
  } catch (const std::out_of_range&) {
    throw Error("fault spec: bad " + what + " '" + text + "'");
  }
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& text) {
  const std::size_t at = text.find('@');
  IFET_REQUIRE(at != std::string::npos,
               "fault spec '" + text + "' must be kind@step[:count]");
  FaultSpec spec;
  spec.kind = parse_fault_kind(text.substr(0, at));
  std::string rest = text.substr(at + 1);
  const std::size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    spec.count = parse_spec_int(rest.substr(colon + 1), "count");
    IFET_REQUIRE(spec.count > 0, "fault spec: count must be > 0");
    rest = rest.substr(0, colon);
  }
  if (rest == "all") {
    spec.step = FaultSpec::kAllSteps;
  } else {
    spec.step = parse_spec_int(rest, "step");
    IFET_REQUIRE(spec.step >= 0, "fault spec: step must be >= 0 or 'all'");
  }
  return spec;
}

std::vector<FaultSpec> parse_fault_schedule(const std::string& text) {
  std::vector<FaultSpec> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(start, comma - start);
    if (!item.empty()) out.push_back(parse_fault_spec(item));
    start = comma + 1;
  }
  IFET_REQUIRE(!out.empty(), "empty fault schedule");
  return out;
}

FaultInjectingSource::FaultInjectingSource(
    std::shared_ptr<const VolumeSource> inner, std::vector<FaultSpec> schedule,
    std::uint64_t seed)
    : inner_(std::move(inner)), seed_(seed), schedule_(std::move(schedule)) {
  IFET_REQUIRE(inner_ != nullptr, "FaultInjectingSource: no inner source");
  MutexLock lock(mutex_);
  remaining_.resize(schedule_.size());
}

VolumeF FaultInjectingSource::generate(int step) const {
  // Decide the fault under the lock (the per-spec count is mutable state
  // shared between prefetch workers), then act on it lock-free — a kDelay
  // sleep or the inner decode must not serialize the whole stack.
  FaultKind kind = FaultKind::kTransient;
  int slow_ms = 0;
  bool fire = false;
  {
    MutexLock lock(mutex_);
    for (std::size_t s = 0; s < schedule_.size(); ++s) {
      const FaultSpec& spec = schedule_[s];
      if (spec.step != FaultSpec::kAllSteps && spec.step != step) continue;
      const bool counted =
          spec.kind == FaultKind::kTransient || spec.kind == FaultKind::kDelay;
      if (counted) {
        auto [it, fresh] = remaining_[s].try_emplace(step, spec.count);
        if (it->second <= 0) continue;  // this step has healed
        --it->second;
        (void)fresh;
      }
      kind = spec.kind;
      // kSlow repurposes count as a per-load latency (never decremented —
      // the device is slow on every load).
      slow_ms = spec.count;
      fire = true;
      ++fired_;
      break;
    }
  }
  if (!fire) return inner_->generate(step);

  const std::string where = " (injected at step " + std::to_string(step) + ")";
  switch (kind) {
    case FaultKind::kTransient:
      throw TransientIoError("simulated transient I/O failure" + where);
    case FaultKind::kCorrupt:
      throw CorruptDataError("simulated payload corruption" + where);
    case FaultKind::kNotFound:
      throw NotFoundError("simulated missing file" + where);
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return inner_->generate(step);
    case FaultKind::kSlow:
      // The sleep runs lock-free (see above): concurrent loads of a slow
      // device overlap, they do not serialize behind the schedule lock.
      std::this_thread::sleep_for(std::chrono::milliseconds(slow_ms));
      return inner_->generate(step);
    case FaultKind::kBitFlip:
      break;
  }
  // Silent corruption: flip every bit of one voxel chosen by the seeded
  // stream for this step — repeatable, and independent of call order.
  VolumeF volume = inner_->generate(step);
  SplitMix64 rng(seed_ ^ (0x9e3779b97f4a7c15ULL *
                          static_cast<std::uint64_t>(step + 1)));
  const std::size_t count = volume.dims().count();
  IFET_REQUIRE(count > 0, "FaultInjectingSource: empty volume");
  const std::size_t index = static_cast<std::size_t>(rng.next() % count);
  std::span<float> voxels = volume.data();
  float& voxel = voxels[index];
  std::uint32_t bits = 0;
  std::memcpy(&bits, &voxel, sizeof(bits));
  bits = ~bits;
  std::memcpy(&voxel, &bits, sizeof(bits));
  return volume;
}

std::uint64_t FaultInjectingSource::faults_fired() const {
  MutexLock lock(mutex_);
  return fired_;
}

}  // namespace ifet
