// Figure 5 reproduction: DNS turbulent reacting plane jet, vorticity
// magnitude, across time steps (paper shows t = 8, 36, 64, 92, 128).
//
// Paper claim: the vorticity range changes so much over the run that a TF
// specified for any single key frame "fails to capture most of the
// features" at other steps, while the IATF "can always [be] extracted from
// the volume". Our substrate is the FluidSolver-driven jet whose vorticity
// range grows as turbulence develops; the feature of interest is the
// strong-vorticity structure (top 2% of each step). We map the paper's
// t = 8..128 onto the recorded snapshots.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/iatf.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace ifet;
  std::cout << "=== Fig 5: combustion jet vorticity, static TFs vs IATF ===\n"
            << "(running the fluid solver; this takes a little while)\n";

  CombustionJetConfig cfg;
  cfg.dims = Dims{32, 48, 16};
  cfg.num_steps = 31;  // snapshot s maps to paper t = 8 + 4*s -> 8..128
  cfg.solver_steps_per_snapshot = 3;
  auto source = std::make_shared<CombustionJetSource>(cfg);
  CachedSequence seq(source, 8, 256);
  auto [vlo, vhi] = seq.value_range();
  auto paper_t = [](int snapshot) { return 8 + 4 * snapshot; };

  // A key-frame TF captures that step's strong-vorticity band: from the
  // step's feature threshold to the top of the range (what a user would
  // draw seeing that frame).
  auto key_tf = [&](int snapshot) {
    TransferFunction1D tf(vlo, vhi);
    const double lo = source->feature_threshold(snapshot);
    tf.add_band(lo, source->max_vorticity(snapshot) * 1.02, 1.0,
                0.1 * lo);
    return tf;
  };

  const std::vector<int> keys = {0, 14, 30};  // paper t = 8, 64, 128
  Iatf iatf(seq);
  for (int k : keys) iatf.add_key_frame(k, key_tf(k));
  iatf.train(3000);

  Table table({"paper_t", "max_vorticity", "tf@8_recall", "tf@64_recall",
               "tf@128_recall", "iatf_recall"});
  CsvWriter csv(bench::output_dir() + "/fig5_combustion.csv",
                {"paper_t", "max_vort", "tf8", "tf64", "tf128", "iatf"});

  const std::vector<int> eval_steps = {0, 7, 14, 21, 30};  // 8,36,64,92,128
  double worst_iatf = 1.0;
  double worst_static_best = 1.0;  // per-step best static recall, minimized
  for (int s : eval_steps) {
    const VolumeF& volume = seq.step(s);
    Mask truth = source->feature_mask(s);
    std::vector<double> recalls;
    for (int k : keys) {
      recalls.push_back(
          score_mask(bench::tf_extract(volume, key_tf(k)), truth).recall());
    }
    double iatf_recall =
        score_mask(bench::tf_extract(volume, iatf.evaluate(s)), truth)
            .recall();
    worst_iatf = std::min(worst_iatf, iatf_recall);
    table.add_row({std::to_string(paper_t(s)),
                   Table::num(source->max_vorticity(s)),
                   Table::num(recalls[0]), Table::num(recalls[1]),
                   Table::num(recalls[2]), Table::num(iatf_recall)});
    csv.row(paper_t(s), source->max_vorticity(s), recalls[0], recalls[1],
            recalls[2], iatf_recall);
  }
  table.print(std::cout);

  // Quantify each static TF at its farthest step.
  double tf8_at_end =
      score_mask(bench::tf_extract(seq.step(30), key_tf(0)),
                 source->feature_mask(30))
          .recall();
  double tf128_at_start =
      score_mask(bench::tf_extract(seq.step(0), key_tf(30)),
                 source->feature_mask(0))
          .recall();
  (void)worst_static_best;
  std::cout << "\nTF@t=8 recall at t=128:   " << tf8_at_end
            << "\nTF@t=128 recall at t=8:   " << tf128_at_start
            << "\nworst IATF recall:        " << worst_iatf << "\n\n";

  bench::ShapeCheck check;
  check.expect(source->max_vorticity(30) > source->max_vorticity(0) * 1.3,
               "vorticity range grows as the jet becomes turbulent");
  check.expect(worst_iatf > 0.55,
               "IATF extracts the vortex structure at every shown step");
  check.expect(worst_iatf > tf8_at_end + 0.2,
               "IATF beats the early key-frame TF at the late steps");
  return check.exit_code();
}
