// ifet_lint — repo-convention static checks for the ifet source tree.
//
// Registered as a ctest (see tools/CMakeLists.txt) so CI fails when a
// convention regresses. Each rule exists because the violation it catches
// has silently corrupted results in systems like this one before it ever
// crashed; docs/CORRECTNESS.md explains every rule and how to suppress a
// finding with a `// ifet-lint: allow(<rule>)` marker on the offending
// line or the line above (file-wide: `// ifet-lint: allow-file(<rule>)`).
//
// Rules:
//   voxel-raw-access   `.data()[` / `data_[` raw voxel indexing outside
//                      src/volume — everything else must use at(),
//                      operator[] (debug-checked), clamped(), or sample().
//   extent-unchecked   a .cpp file takes Dims extent parameters but never
//                      validates anything with IFET_REQUIRE /
//                      IFET_DEBUG_ASSERT.
//   iostream-in-header `#include <iostream>` in a header (drags static
//                      init of the standard streams into every TU; use
//                      <iosfwd> in headers, <iostream> in .cpp files).
//   raw-rand           rand()/srand()/time(NULL) randomness — every
//                      stochastic component must take an explicit
//                      ifet::Rng seed so runs are reproducible.
//   catch-all          `catch (...)` swallows sanitizer-unfriendly
//                      unknown state; catch concrete types (allowed with
//                      a marker when capturing to rethrow).
//   direct-volume-load read_vol()/read_raw() calls outside src/io and
//                      src/stream — pipelines must go through the
//                      streaming layer (VolumeStore / StreamedSequence)
//                      so every decoded byte is budgeted and accounted.
//   scalar-forward-in-hot-loop
//                      Mlp::forward()/forward_scalar() called inside a
//                      loop body in src/core or src/render — per-voxel
//                      passes must batch through FlatMlp::forward_batch
//                      (nn/flat_mlp.hpp); the scalar path allocates per
//                      call. Single-voxel probes (classify_voxel) are
//                      loop-free and remain fine.
//
// Usage: ifet_lint <dir-or-file>...   (typically: ifet_lint <repo>/src)

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;
  std::size_t line = 0;  // 1-based; 0 = whole file
  std::string rule;
  std::string message;
};

bool is_header(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".hpp" || ext == ".h";
}

bool is_source_file(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

bool in_volume_dir(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "volume") return true;
  }
  return false;
}

/// Directories whose files may call the raw volume-load functions: the I/O
/// layer defines them, the streaming layer is the one sanctioned caller.
bool may_load_volumes(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "io" || part == "stream") return true;
  }
  return false;
}

/// Directories whose per-voxel passes must use the flat batched inference
/// engine (the scalar-forward-in-hot-loop rule's scope).
bool in_hot_dir(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "core" || part == "render") return true;
  }
  return false;
}

bool is_comment_line(const std::string& line) {
  const auto pos = line.find_first_not_of(" \t");
  return pos != std::string::npos && line.compare(pos, 2, "//") == 0;
}

/// True when `lines[i]` or the line above carries an allow marker for
/// `rule`, e.g. `// ifet-lint: allow(catch-all)`.
bool suppressed(const std::vector<std::string>& lines, std::size_t i,
                const std::string& rule) {
  const std::string marker = "ifet-lint: allow(" + rule + ")";
  if (lines[i].find(marker) != std::string::npos) return true;
  return i > 0 && lines[i - 1].find(marker) != std::string::npos;
}

bool file_suppressed(const std::vector<std::string>& lines,
                     const std::string& rule) {
  const std::string marker = "ifet-lint: allow-file(" + rule + ")";
  for (const auto& l : lines) {
    if (l.find(marker) != std::string::npos) return true;
  }
  return false;
}

void scan_file(const fs::path& path, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    findings.push_back({path.string(), 0, "io-error", "cannot read file"});
    return;
  }
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  static const std::regex raw_rand_re(R"(\b(rand|srand)\s*\()");
  static const std::regex raw_time_re(R"(\btime\s*\(\s*(NULL|nullptr|0)\s*\))");
  static const std::regex catch_all_re(R"(catch\s*\(\s*\.\.\.\s*\))");
  static const std::regex data_member_re(R"(\bdata_\s*\[)");
  static const std::regex volume_load_re(R"(\b(read_vol|read_raw)\s*\()");
  static const std::regex dims_param_re(
      R"([(,]\s*(const\s+)?(ifet::)?Dims\s*[&)\s,])");
  // Longest alternatives first: std::regex picks the leftmost alternative,
  // and `parallel_for` followed by `_ranges` must not stop the match.
  static const std::regex loop_re(
      R"(\b(parallel_for_ranges|parallel_for_dynamic|parallel_for_static|parallel_for|for|while)\s*\()");
  static const std::regex scalar_forward_re(
      R"((\.|->)\s*forward(_scalar)?\s*\()");

  const bool header = is_header(path);
  const bool volume_dir = in_volume_dir(path);
  const bool loader_dir = may_load_volumes(path);
  const bool hot_dir = in_hot_dir(path);
  bool has_contract_check = false;
  bool has_dims_param = false;
  std::size_t first_dims_line = 0;
  // Loop-body tracking for scalar-forward-in-hot-loop: brace depth plus the
  // depths at which a loop (or parallel_for lambda) body opened. A pending
  // loop header adopts the next `{` as its body.
  int depth = 0;
  std::vector<int> loop_body_depths;
  bool pending_loop = false;

  auto report = [&](std::size_t i, const char* rule, const char* message) {
    if (suppressed(lines, i, rule)) return;
    findings.push_back({path.string(), i + 1, rule, message});
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.find("IFET_REQUIRE") != std::string::npos ||
        line.find("IFET_DEBUG_ASSERT") != std::string::npos) {
      has_contract_check = true;
    }
    if (!has_dims_param && !is_comment_line(line) &&
        std::regex_search(line, dims_param_re)) {
      has_dims_param = true;
      first_dims_line = i + 1;
    }
    if (is_comment_line(line)) continue;

    if (header && line.find("#include <iostream>") != std::string::npos) {
      report(i, "iostream-in-header",
             "headers must use <iosfwd>; include <iostream> in the .cpp");
    }
    if (std::regex_search(line, raw_rand_re) ||
        std::regex_search(line, raw_time_re)) {
      report(i, "raw-rand",
             "use an explicitly seeded ifet::Rng (util/rng.hpp); "
             "rand()/time() seeding breaks reproducibility");
    }
    if (std::regex_search(line, catch_all_re)) {
      report(i, "catch-all",
             "catch concrete exception types; a bare catch (...) hides "
             "corruption the sanitizers would otherwise surface");
    }
    if (!volume_dir && (line.find(".data()[") != std::string::npos ||
                        std::regex_search(line, data_member_re))) {
      report(i, "voxel-raw-access",
             "raw voxel indexing outside src/volume; use at(), the "
             "debug-checked operator[], clamped(), or sample()");
    }
    if (!loader_dir && std::regex_search(line, volume_load_re)) {
      report(i, "direct-volume-load",
             "load volumes through the streaming layer (VolumeStore / "
             "StreamedSequence) so the bytes are budgeted; direct "
             "read_vol()/read_raw() is reserved for src/io and src/stream");
    }
    if (hot_dir) {
      std::ptrdiff_t call_pos = -1;
      std::smatch m;
      if (std::regex_search(line, m, scalar_forward_re)) {
        call_pos = m.position(0);
      }
      if (std::regex_search(line, loop_re)) pending_loop = true;
      for (std::size_t c = 0; c < line.size(); ++c) {
        if (call_pos == static_cast<std::ptrdiff_t>(c) &&
            !loop_body_depths.empty()) {
          report(i, "scalar-forward-in-hot-loop",
                 "scalar Mlp forward inside a loop body; per-voxel passes "
                 "must batch through FlatMlp::forward_batch "
                 "(nn/flat_mlp.hpp) — the scalar path allocates per call");
        }
        if (line[c] == '/' && c + 1 < line.size() && line[c + 1] == '/') {
          break;  // trailing comment: braces in prose must not count
        }
        if (line[c] == '{') {
          ++depth;
          if (pending_loop) {
            loop_body_depths.push_back(depth);
            pending_loop = false;
          }
        } else if (line[c] == '}') {
          if (!loop_body_depths.empty() && loop_body_depths.back() == depth) {
            loop_body_depths.pop_back();
          }
          --depth;
        }
      }
    }
  }

  const auto ext = path.extension().string();
  if ((ext == ".cpp" || ext == ".cc") && has_dims_param &&
      !has_contract_check && !file_suppressed(lines, "extent-unchecked")) {
    findings.push_back(
        {path.string(), first_dims_line, "extent-unchecked",
         "file handles Dims extents but contains no IFET_REQUIRE / "
         "IFET_DEBUG_ASSERT validating them"});
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: ifet_lint <dir-or-file>...\n";
    return 2;
  }
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  for (int a = 1; a < argc; ++a) {
    fs::path root(argv[a]);
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      ++files_scanned;
      scan_file(root, findings);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::cerr << "ifet_lint: no such file or directory: " << root << "\n";
      return 2;
    }
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file() || !is_source_file(it->path())) continue;
      ++files_scanned;
      scan_file(it->path(), findings);
    }
  }
  for (const auto& f : findings) {
    std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "ifet_lint: " << findings.size() << " finding(s) in "
              << files_scanned << " file(s)\n";
    return 1;
  }
  std::cout << "ifet_lint: OK (" << files_scanned << " files scanned)\n";
  return 0;
}
