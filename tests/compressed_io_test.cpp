#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "io/checksum.hpp"
#include "io/compressed.hpp"
#include "io/volume_io.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/io_error.hpp"
#include "util/rng.hpp"
#include "volume/brick_index.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

using testing::random_volume;

double max_abs_error(const VolumeF& a, const VolumeF& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(static_cast<double>(a[i]) -
                                      static_cast<double>(b[i])));
  }
  return worst;
}

TEST(CompressVolume, RoundTripWithinQuantizationBound) {
  VolumeF v = random_volume(Dims{16, 16, 16}, 5, -2.0, 3.0);
  for (QuantBits bits : {QuantBits::k8, QuantBits::k16}) {
    CompressedVolume c = compress_volume(v, bits);
    VolumeF back = decompress_volume(c);
    ASSERT_EQ(back.dims(), v.dims());
    EXPECT_LE(max_abs_error(v, back),
              quantization_error_bound(c) + 1e-6);
  }
}

TEST(CompressVolume, SixteenBitsAreMorePrecise) {
  VolumeF v = random_volume(Dims{12, 12, 12}, 6, 0.0, 1.0);
  CompressedVolume c8 = compress_volume(v, QuantBits::k8);
  CompressedVolume c16 = compress_volume(v, QuantBits::k16);
  EXPECT_LT(max_abs_error(v, decompress_volume(c16)),
            max_abs_error(v, decompress_volume(c8)) + 1e-9);
  EXPECT_LT(quantization_error_bound(c16),
            quantization_error_bound(c8));
}

TEST(CompressVolume, ConstantVolumeCompressesExtremely) {
  VolumeF v(Dims{32, 32, 32}, 1.25f);
  CompressedVolume c = compress_volume(v);
  EXPECT_GT(c.compression_ratio(), 100.0);
  VolumeF back = decompress_volume(c);
  for (float x : back.data()) EXPECT_FLOAT_EQ(x, 1.25f);
}

TEST(CompressVolume, SmoothFieldBeatsRandomNoise) {
  VolumeF noise = random_volume(Dims{24, 24, 24}, 7);
  VolumeF smooth(Dims{24, 24, 24});
  for (int k = 0; k < 24; ++k) {
    for (int j = 0; j < 24; ++j) {
      for (int i = 0; i < 24; ++i) {
        smooth.at(i, j, k) = static_cast<float>(i / 6);  // plateaus
      }
    }
  }
  double smooth_ratio = compress_volume(smooth).compression_ratio();
  double noise_ratio = compress_volume(noise).compression_ratio();
  EXPECT_GT(smooth_ratio, 2.0 * noise_ratio);
}

TEST(CompressVolume, LongRunsSplitCorrectly) {
  // A run longer than 255 must be split across RLE chunks and still decode.
  VolumeF v(Dims{16, 16, 16}, 0.5f);  // 4096-voxel run
  v.at(15, 15, 15) = 1.0f;
  CompressedVolume c = compress_volume(v);
  VolumeF back = decompress_volume(c);
  EXPECT_FLOAT_EQ(back.at(0, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(back.at(15, 15, 15), 1.0f);
}

TEST(CompressVolume, TruncatedPayloadRejected) {
  VolumeF v = random_volume(Dims{8, 8, 8}, 9);
  CompressedVolume c = compress_volume(v);
  c.payload.resize(c.payload.size() / 2);
  EXPECT_THROW(decompress_volume(c), Error);
}

TEST(CompressedSequence, FileRoundTripAllSteps) {
  const std::string path = "/tmp/ifet_cseq_test.cvol";
  Dims d{12, 10, 8};
  const int steps = 5;
  CallbackSource source(d, steps, {0.0, 1.0}, [d](int step) {
    return testing::random_volume(d, 100 + static_cast<unsigned>(step));
  });
  write_compressed_sequence(source, path);

  CompressedFileSource reader(path);
  EXPECT_EQ(reader.dims(), d);
  EXPECT_EQ(reader.num_steps(), steps);
  EXPECT_GT(reader.total_payload_bytes(), 0u);
  for (int s = 0; s < steps; ++s) {
    VolumeF original = source.generate(s);
    VolumeF decoded = reader.generate(s);
    EXPECT_LE(max_abs_error(original, decoded), 1.0 / 255.0)
        << "step " << s;
  }
  EXPECT_THROW(reader.generate(steps), Error);
  std::remove(path.c_str());
}

TEST(CompressedSequence, RandomAccessOrderIndependent) {
  const std::string path = "/tmp/ifet_cseq_random.cvol";
  Dims d{8, 8, 8};
  CallbackSource source(d, 4, {0.0, 1.0}, [d](int step) {
    return VolumeF(d, 0.1f * static_cast<float>(step + 1));
  });
  write_compressed_sequence(source, path);
  CompressedFileSource reader(path);
  EXPECT_NEAR(reader.generate(3).at(0, 0, 0), 0.4f, 1e-2);
  EXPECT_NEAR(reader.generate(0).at(0, 0, 0), 0.1f, 1e-2);
  EXPECT_NEAR(reader.generate(2).at(0, 0, 0), 0.3f, 1e-2);
  std::remove(path.c_str());
}

TEST(CompressedSequence, PlugsIntoVolumeSequence) {
  const std::string path = "/tmp/ifet_cseq_stream.cvol";
  Dims d{10, 10, 10};
  CallbackSource source(d, 6, {0.0, 1.0}, [d](int step) {
    return VolumeF(d, 0.05f * static_cast<float>(step));
  });
  write_compressed_sequence(source, path);

  auto disk_source = std::make_shared<CompressedFileSource>(path);
  CachedSequence seq(disk_source, 2);  // streams with a 2-step window
  EXPECT_NEAR(seq.step(5).at(3, 3, 3), 0.25f, 1e-2);
  EXPECT_NEAR(seq.step(0).at(3, 3, 3), 0.0f, 1e-2);
  EXPECT_NEAR(seq.step(1).at(3, 3, 3), 0.05f, 1e-2);  // evicts step 5
  EXPECT_NEAR(seq.step(5).at(3, 3, 3), 0.25f, 1e-2);  // re-decoded after LRU
  EXPECT_EQ(seq.generation_count(), 4u);
  std::remove(path.c_str());
}

TEST(CompressedSequence, WriterValidatesUsage) {
  const std::string path = "/tmp/ifet_cseq_bad.cvol";
  Dims d{4, 4, 4};
  {
    CompressedSequenceWriter writer(path, d, 2, {0.0, 1.0});
    writer.append(compress_volume(VolumeF(d, 0.5f)));
    EXPECT_THROW(writer.close(), Error);  // one step missing
    writer.append(compress_volume(VolumeF(d, 0.6f)));
    EXPECT_THROW(writer.append(compress_volume(VolumeF(d, 0.7f))), Error);
    writer.close();
  }
  CompressedFileSource reader(path);
  EXPECT_EQ(reader.num_steps(), 2);
  std::remove(path.c_str());
}

TEST(CompressedSequence, UnfinalizedFileRejected) {
  const std::string path = "/tmp/ifet_cseq_unfinal.cvol";
  Dims d{4, 4, 4};
  {
    CompressedSequenceWriter writer(path, d, 3, {0.0, 1.0});
    writer.append(compress_volume(VolumeF(d, 0.5f)));
    // Destructor must not throw; the file keeps a zeroed index.
  }
  EXPECT_THROW(CompressedFileSource reader(path), Error);
  std::remove(path.c_str());
}

TEST(CompressedSequence, SixteenBitContainerRoundTrips) {
  const std::string path = "/tmp/ifet_cseq16.cvol";
  Dims d{10, 10, 10};
  CallbackSource source(d, 3, {0.0, 1.0}, [d](int step) {
    return testing::random_volume(d, 300 + static_cast<unsigned>(step));
  });
  write_compressed_sequence(source, path, QuantBits::k16);
  CompressedFileSource reader(path);
  for (int s = 0; s < 3; ++s) {
    VolumeF original = source.generate(s);
    VolumeF decoded = reader.generate(s);
    EXPECT_LE(max_abs_error(original, decoded), 1.0 / 65535.0 + 1e-7)
        << "step " << s;
  }
  std::remove(path.c_str());
}

TEST(CompressedSequence, MissingFileRejected) {
  EXPECT_THROW(CompressedFileSource("/tmp/ifet_no_such.cvol"), Error);
  // The typed taxonomy (docs/ROBUSTNESS.md): a missing file is
  // NotFoundError specifically, so the retry loop can fail fast on it.
  EXPECT_THROW(CompressedFileSource("/tmp/ifet_no_such.cvol"), NotFoundError);
}

// ---------------------------------------------------------------------------
// Payload checksums (docs/ROBUSTNESS.md)

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(PayloadChecksums, BitFlippedCvolPayloadRejected) {
  const std::string path = "/tmp/ifet_cseq_flip.cvol";
  const Dims d{8, 8, 8};
  CallbackSource source(d, 1, {0.0, 1.0}, [d](int step) {
    return testing::random_volume(d, 400 + static_cast<unsigned>(step));
  });
  write_compressed_sequence(source, path);

  std::string bytes = slurp(path);
  // v2 layout: text header line, 32-byte index entry, the single record
  // `bits u8 | lo f32 | hi f32 | payload_size u64 | payload | crc`, then
  // the brick record (one 8^3 brick for these dims: 8 bytes + crc).
  const std::size_t header_end = bytes.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::size_t payload_begin = header_end + 1 + 32 + 17;
  const std::size_t payload_end = bytes.size() - 12 - 4;
  ASSERT_GT(payload_end, payload_begin);
  Rng rng(2026);
  const std::size_t offset =
      payload_begin + static_cast<std::size_t>(rng.next_u64() %
                                               (payload_end - payload_begin));
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x10);
  dump(path, bytes);

  CompressedFileSource reader(path);  // header + index are intact
  const std::uint64_t before = checksum_counters().mismatches;
  EXPECT_THROW(reader.generate(0), CorruptDataError);
  EXPECT_EQ(checksum_counters().mismatches, before + 1);
  std::remove(path.c_str());
}

TEST(PayloadChecksums, ChecksumLessCvolStillLoadsAsUnverified) {
  const std::string path = "/tmp/ifet_cseq_legacy.cvol";
  const Dims d{8, 8, 8};
  CallbackSource source(d, 2, {0.0, 1.0}, [d](int step) {
    return testing::random_volume(d, 500 + static_cast<unsigned>(step));
  });
  write_compressed_sequence(source, path, QuantBits::k8,
                            /*with_checksum=*/false);
  CompressedFileSource reader(path);
  const ChecksumCounters before = checksum_counters();
  for (int s = 0; s < 2; ++s) {
    VolumeF decoded = reader.generate(s);
    EXPECT_LE(max_abs_error(source.generate(s), decoded), 1.0 / 255.0);
  }
  // Old files keep loading, but the reads are flagged, not silently
  // trusted.
  EXPECT_EQ(checksum_counters().unverified, before.unverified + 2);
  EXPECT_EQ(checksum_counters().verified, before.verified);
  std::remove(path.c_str());
}

TEST(PayloadChecksums, CleanCvolReadsCountAsVerified) {
  const std::string path = "/tmp/ifet_cseq_verified.cvol";
  const Dims d{6, 6, 6};
  CallbackSource source(d, 2, {0.0, 1.0}, [d](int step) {
    return testing::random_volume(d, 600 + static_cast<unsigned>(step));
  });
  write_compressed_sequence(source, path);
  CompressedFileSource reader(path);
  const ChecksumCounters before = checksum_counters();
  (void)reader.generate(0);
  (void)reader.generate(1);
  EXPECT_EQ(checksum_counters().verified, before.verified + 2);
  EXPECT_EQ(checksum_counters().mismatches, before.mismatches);
  std::remove(path.c_str());
}

TEST(PayloadChecksums, BitFlippedVolPayloadRejected) {
  const std::string path = "/tmp/ifet_vol_flip.vol";
  VolumeF v = random_volume(Dims{6, 6, 6}, 11);
  write_vol(v, path);
  EXPECT_EQ(max_abs_error(v, read_vol(path)), 0.0);  // clean round trip

  std::string bytes = slurp(path);
  const std::size_t header_end = bytes.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  Rng rng(4711);
  const std::size_t offset =
      header_end + 1 +
      static_cast<std::size_t>(rng.next_u64() %
                               (bytes.size() - header_end - 1));
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x01);
  dump(path, bytes);
  EXPECT_THROW(read_vol(path), CorruptDataError);
  std::remove(path.c_str());
}

TEST(PayloadChecksums, ChecksumLessVolStillLoads) {
  const std::string path = "/tmp/ifet_vol_legacy.vol";
  VolumeF v = random_volume(Dims{5, 5, 5}, 12);
  write_vol(v, path, /*with_checksum=*/false);
  const ChecksumCounters before = checksum_counters();
  VolumeF back = read_vol(path);
  EXPECT_EQ(max_abs_error(v, back), 0.0);
  EXPECT_EQ(checksum_counters().unverified, before.unverified + 1);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// v2 brick-index section (ingest-time min/max bricks; docs/STREAMING.md)

TEST(BrickSection, V2RoundTripMatchesRebuiltIndex) {
  const std::string path = "/tmp/ifet_cseq_v2.cvol";
  const Dims d{13, 10, 9};  // ragged against the default 8^3 bricks
  CallbackSource source(d, 3, {0.0, 1.0}, [d](int step) {
    return testing::random_volume(d, 700 + static_cast<unsigned>(step));
  });
  write_compressed_sequence(source, path);

  CompressedFileSource reader(path);
  EXPECT_EQ(reader.container_brick_size(), BrickIndex::kDefaultBrickSize);
  for (int s = 0; s < 3; ++s) {
    const auto stored = reader.brick_metadata(s);
    ASSERT_NE(stored, nullptr) << "step " << s;
    // The stored ranges must describe the RECONSTRUCTED voxels the
    // renderer actually samples, i.e. match a rebuild from the decoded
    // step bit for bit.
    const BrickIndex rebuilt =
        BrickIndex::build(reader.generate(s), reader.container_brick_size());
    ASSERT_EQ(stored->num_bricks(), rebuilt.num_bricks());
    for (std::size_t b = 0; b < rebuilt.num_bricks(); ++b) {
      EXPECT_EQ(stored->ranges()[b].lo, rebuilt.ranges()[b].lo);
      EXPECT_EQ(stored->ranges()[b].hi, rebuilt.ranges()[b].hi);
    }
  }
  std::remove(path.c_str());
}

TEST(BrickSection, LegacyV1FilesStillLoadWithoutBrickMetadata) {
  const std::string path = "/tmp/ifet_cseq_v1.cvol";
  const Dims d{9, 9, 9};
  CallbackSource source(d, 2, {0.0, 1.0}, [d](int step) {
    return testing::random_volume(d, 800 + static_cast<unsigned>(step));
  });
  // brick_size = 0 writes the pre-brick v1 container byte for byte.
  write_compressed_sequence(source, path, QuantBits::k8,
                            /*with_checksum=*/true, /*brick_size=*/0);
  EXPECT_EQ(slurp(path).rfind("ifet-cseq ", 0), 0u);  // v1 magic, not v2

  CompressedFileSource reader(path);
  EXPECT_EQ(reader.container_brick_size(), 0);
  EXPECT_EQ(reader.brick_metadata(0), nullptr);
  EXPECT_EQ(reader.brick_metadata(1), nullptr);
  for (int s = 0; s < 2; ++s) {
    EXPECT_LE(max_abs_error(source.generate(s), reader.generate(s)),
              1.0 / 255.0);
  }
  std::remove(path.c_str());
}

TEST(BrickSection, BrickMetadataNeverDecodesPayloads) {
  const std::string path = "/tmp/ifet_cseq_nodecode.cvol";
  const Dims d{12, 12, 12};
  CallbackSource source(d, 4, {0.0, 1.0}, [d](int step) {
    return testing::random_volume(d, 900 + static_cast<unsigned>(step));
  });
  write_compressed_sequence(source, path);

  auto disk_source = std::make_shared<CompressedFileSource>(path);
  CachedSequence seq(disk_source, 2);
  const ChecksumCounters before = checksum_counters();
  const auto bricks = seq.brick_index(2);
  ASSERT_NE(bricks, nullptr);
  // Served from the container's brick section: zero payloads were decoded
  // and exactly one (brick) record was checksum-verified.
  EXPECT_EQ(seq.generation_count(), 0u);
  EXPECT_EQ(checksum_counters().verified, before.verified + 1);
  // Memoized: the second lookup returns the same index, no second read.
  EXPECT_EQ(seq.brick_index(2).get(), bricks.get());
  EXPECT_EQ(checksum_counters().verified, before.verified + 1);
  std::remove(path.c_str());
}

TEST(BrickSection, BitFlippedBrickRecordRejected) {
  const std::string path = "/tmp/ifet_cseq_brickflip.cvol";
  const Dims d{8, 8, 8};
  CallbackSource source(d, 1, {0.0, 1.0}, [d](int step) {
    return testing::random_volume(d, 950 + static_cast<unsigned>(step));
  });
  write_compressed_sequence(source, path);

  // The single 8^3 brick's record is the final 12 bytes (8 range bytes +
  // crc32); flip one of the range bytes.
  std::string bytes = slurp(path);
  bytes[bytes.size() - 10] = static_cast<char>(bytes[bytes.size() - 10] ^ 0x40);
  dump(path, bytes);

  CompressedFileSource reader(path);
  const std::uint64_t before = checksum_counters().mismatches;
  EXPECT_THROW(reader.brick_metadata(0), CorruptDataError);
  EXPECT_EQ(checksum_counters().mismatches, before + 1);
  // The payload section is untouched: the step still decodes cleanly.
  EXPECT_LE(max_abs_error(source.generate(0), reader.generate(0)),
            1.0 / 255.0);
  std::remove(path.c_str());
}

TEST(PayloadChecksums, TruncationNamesTheMissingStep) {
  // The writer's destructor finalizes a partial index, so an interrupted
  // run is rejected with a message naming exactly where the file ends.
  const std::string path = "/tmp/ifet_cseq_partial.cvol";
  const Dims d{4, 4, 4};
  {
    CompressedSequenceWriter writer(path, d, 3, {0.0, 1.0});
    writer.append(compress_volume(VolumeF(d, 0.5f)));
    // No close(): simulates a writer killed mid-sequence.
  }
  try {
    CompressedFileSource reader(path);
    FAIL() << "partial file must be rejected";
  } catch (const CorruptDataError& e) {
    EXPECT_NE(std::string(e.what()).find("truncates at step 1"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ifet
