#include "nn/mlp.hpp"

#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "math/fastexp.hpp"
#include "util/error.hpp"
#include "util/hashing.hpp"

namespace ifet {

Mlp::Mlp(std::vector<int> layer_sizes, Rng& rng, Activation hidden)
    : layer_sizes_(std::move(layer_sizes)), hidden_activation_(hidden) {
  IFET_REQUIRE(layer_sizes_.size() >= 2,
               "Mlp requires at least input and output layers");
  for (int s : layer_sizes_) {
    IFET_REQUIRE(s > 0, "Mlp layer sizes must be positive");
  }
  const std::size_t num_links = layer_sizes_.size() - 1;
  weights_.resize(num_links);
  biases_.resize(num_links);
  weight_velocity_.resize(num_links);
  bias_velocity_.resize(num_links);
  for (std::size_t l = 0; l < num_links; ++l) {
    const int fan_in = layer_sizes_[l];
    const int fan_out = layer_sizes_[l + 1];
    const double r = 1.0 / std::sqrt(static_cast<double>(fan_in));
    weights_[l].assign(static_cast<std::size_t>(fan_out),
                       std::vector<double>(static_cast<std::size_t>(fan_in)));
    weight_velocity_[l].assign(
        static_cast<std::size_t>(fan_out),
        std::vector<double>(static_cast<std::size_t>(fan_in), 0.0));
    biases_[l].assign(static_cast<std::size_t>(fan_out), 0.0);
    bias_velocity_[l].assign(static_cast<std::size_t>(fan_out), 0.0);
    for (auto& row : weights_[l]) {
      for (auto& w : row) w = rng.uniform(-r, r);
    }
  }
}

int Mlp::num_inputs() const {
  IFET_REQUIRE(!layer_sizes_.empty(), "Mlp is uninitialized");
  return layer_sizes_.front();
}

int Mlp::num_outputs() const {
  IFET_REQUIRE(!layer_sizes_.empty(), "Mlp is uninitialized");
  return layer_sizes_.back();
}

double Mlp::activate(double x, Activation a) const {
  switch (a) {
    case Activation::kSigmoid:
      // Shared with FlatMlp: both paths evaluate the identical IEEE op
      // sequence (math/fastexp.hpp), which keeps batched classification
      // bitwise equal to this scalar reference.
      return fast_sigmoid(x);
    case Activation::kTanh:
      return std::tanh(x);
  }
  return 0.0;
}

double Mlp::activate_derivative(double fx, Activation a) const {
  // Expressed in terms of the activation value fx = f(x).
  switch (a) {
    case Activation::kSigmoid:
      return fx * (1.0 - fx);
    case Activation::kTanh:
      return 1.0 - fx * fx;
  }
  return 0.0;
}

Mlp::ForwardState Mlp::run_forward(std::span<const double> input) const {
  ForwardState state;
  run_forward_into(input, state);
  return state;
}

void Mlp::run_forward_into(std::span<const double> input,
                           ForwardState& state) const {
  IFET_REQUIRE(static_cast<int>(input.size()) == num_inputs(),
               "Mlp::forward: input size mismatch");
  // Layer-shape invariants: one weight matrix and bias vector per link,
  // with fan-out rows of fan-in columns. Guards against external mutation
  // through mutable_weights()/mutable_biases() corrupting the topology.
  IFET_DEBUG_ASSERT(weights_.size() + 1 == layer_sizes_.size() &&
                        biases_.size() == weights_.size(),
                    "Mlp: weight/bias layer count mismatch");
  for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    IFET_DEBUG_ASSERT(
        weights_[l].size() == static_cast<std::size_t>(layer_sizes_[l + 1]) &&
            biases_[l].size() == weights_[l].size(),
        "Mlp: layer fan-out does not match layer_sizes()");
    IFET_DEBUG_ASSERT(
        weights_[l].empty() ||
            weights_[l].front().size() ==
                static_cast<std::size_t>(layer_sizes_[l]),
        "Mlp: layer fan-in does not match layer_sizes()");
  }
  state.activations.resize(layer_sizes_.size());
  state.activations[0].assign(input.begin(), input.end());
  for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    const bool output_layer = (l + 2 == layer_sizes_.size());
    const Activation act =
        output_layer ? Activation::kSigmoid : hidden_activation_;
    const auto& prev = state.activations[l];
    auto& next = state.activations[l + 1];
    next.resize(static_cast<std::size_t>(layer_sizes_[l + 1]));
    for (std::size_t j = 0; j < next.size(); ++j) {
      double z = biases_[l][j];
      const auto& row = weights_[l][j];
      for (std::size_t i = 0; i < prev.size(); ++i) z += row[i] * prev[i];
      next[j] = activate(z, act);
    }
  }
}

std::vector<double> Mlp::forward(std::span<const double> input) const {
  return run_forward(input).activations.back();
}

double Mlp::forward_scalar(std::span<const double> input) const {
  IFET_REQUIRE(num_outputs() == 1,
               "forward_scalar requires a single-output network");
  return forward(input)[0];
}

double Mlp::train_sample(std::span<const double> input,
                         std::span<const double> target,
                         const BackpropConfig& config) {
  IFET_REQUIRE(static_cast<int>(target.size()) == num_outputs(),
               "Mlp::train_sample: target size mismatch");
  ForwardState state = run_forward(input);

  // delta[l][j] = dE/dz for unit j of layer l+1 (z = pre-activation).
  std::vector<std::vector<double>> delta(weights_.size());
  const auto& out = state.activations.back();
  double sq_error = 0.0;
  delta.back().resize(out.size());
  for (std::size_t j = 0; j < out.size(); ++j) {
    double err = out[j] - target[j];
    sq_error += err * err;
    delta.back()[j] = err * activate_derivative(out[j], Activation::kSigmoid);
  }
  for (std::size_t l = weights_.size() - 1; l-- > 0;) {
    const auto& act = state.activations[l + 1];
    delta[l].assign(act.size(), 0.0);
    for (std::size_t i = 0; i < act.size(); ++i) {
      double back = 0.0;
      for (std::size_t j = 0; j < delta[l + 1].size(); ++j) {
        back += weights_[l + 1][j][i] * delta[l + 1][j];
      }
      delta[l][i] = back * activate_derivative(act[i], hidden_activation_);
    }
  }

  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const auto& prev = state.activations[l];
    for (std::size_t j = 0; j < weights_[l].size(); ++j) {
      double dj = delta[l][j];
      auto& vel_row = weight_velocity_[l][j];
      auto& w_row = weights_[l][j];
      for (std::size_t i = 0; i < w_row.size(); ++i) {
        vel_row[i] = config.momentum * vel_row[i] -
                     config.learning_rate * dj * prev[i];
        w_row[i] += vel_row[i];
      }
      bias_velocity_[l][j] =
          config.momentum * bias_velocity_[l][j] - config.learning_rate * dj;
      biases_[l][j] += bias_velocity_[l][j];
    }
  }
  return sq_error;
}

double Mlp::evaluate_mse(const std::vector<std::vector<double>>& inputs,
                         const std::vector<std::vector<double>>& targets) const {
  IFET_REQUIRE(inputs.size() == targets.size(),
               "evaluate_mse: input/target count mismatch");
  if (inputs.empty()) return 0.0;
  double total = 0.0;
  std::size_t terms = 0;
  ForwardState state;  // one scratch reused by every sample
  for (std::size_t s = 0; s < inputs.size(); ++s) {
    run_forward_into(inputs[s], state);
    const auto& out = state.activations.back();
    for (std::size_t j = 0; j < out.size(); ++j) {
      double err = out[j] - targets[s][j];
      total += err * err;
      ++terms;
    }
  }
  return total / static_cast<double>(terms);
}

std::uint64_t Mlp::params_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = hash_combine(h, static_cast<std::uint64_t>(hidden_activation_));
  for (int s : layer_sizes_) {
    h = hash_combine(h, static_cast<std::uint64_t>(s));
  }
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    for (std::size_t j = 0; j < weights_[l].size(); ++j) {
      for (double w : weights_[l][j]) h = hash_combine(h, hash_double(w));
      h = hash_combine(h, hash_double(biases_[l][j]));
    }
  }
  return h;
}

Mlp Mlp::resized_inputs(const std::vector<int>& kept_inputs, Rng& rng) const {
  IFET_REQUIRE(!kept_inputs.empty(), "resized_inputs: empty input mapping");
  for (int old_index : kept_inputs) {
    IFET_REQUIRE(old_index < num_inputs(),
                 "resized_inputs: mapping references nonexistent old input");
  }
  std::vector<int> new_sizes = layer_sizes_;
  new_sizes.front() = static_cast<int>(kept_inputs.size());
  Mlp out(new_sizes, rng, hidden_activation_);
  // Copy everything beyond the first weight matrix verbatim.
  for (std::size_t l = 1; l < weights_.size(); ++l) {
    out.weights_[l] = weights_[l];
    out.biases_[l] = biases_[l];
  }
  out.biases_[0] = biases_[0];
  // First matrix: keep columns of surviving inputs; new inputs (-1) retain
  // the fresh random initialization.
  for (std::size_t j = 0; j < out.weights_[0].size(); ++j) {
    for (std::size_t i = 0; i < kept_inputs.size(); ++i) {
      int old_index = kept_inputs[i];
      if (old_index >= 0) {
        out.weights_[0][j][i] =
            weights_[0][j][static_cast<std::size_t>(old_index)];
      }
    }
  }
  return out;
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    n += biases_[l].size();
    for (const auto& row : weights_[l]) n += row.size();
  }
  return n;
}

void Mlp::save(std::ostream& os) const {
  os << "ifet-mlp 1\n";
  os << layer_sizes_.size();
  for (int s : layer_sizes_) os << ' ' << s;
  os << '\n' << static_cast<int>(hidden_activation_) << '\n';
  // max_digits10 round-trips IEEE doubles exactly through decimal text.
  os << std::setprecision(17);
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    for (std::size_t j = 0; j < weights_[l].size(); ++j) {
      for (double w : weights_[l][j]) os << w << ' ';
      os << biases_[l][j] << '\n';
    }
  }
}

Mlp Mlp::load(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  IFET_REQUIRE(magic == "ifet-mlp" && version == 1,
               "Mlp::load: not an ifet-mlp v1 stream");
  std::size_t num_layers = 0;
  is >> num_layers;
  IFET_REQUIRE(num_layers >= 2 && num_layers < 64,
               "Mlp::load: implausible layer count");
  std::vector<int> sizes(num_layers);
  for (auto& s : sizes) is >> s;
  int act = 0;
  is >> act;
  IFET_REQUIRE(act >= 0 && act <= static_cast<int>(Activation::kTanh),
               "Mlp::load: unknown activation id");
  Rng dummy(0);
  Mlp mlp(sizes, dummy, static_cast<Activation>(act));
  for (std::size_t l = 0; l < mlp.weights_.size(); ++l) {
    for (std::size_t j = 0; j < mlp.weights_[l].size(); ++j) {
      for (auto& w : mlp.weights_[l][j]) is >> w;
      is >> mlp.biases_[l][j];
    }
  }
  IFET_REQUIRE(static_cast<bool>(is), "Mlp::load: truncated stream");
  return mlp;
}

}  // namespace ifet
