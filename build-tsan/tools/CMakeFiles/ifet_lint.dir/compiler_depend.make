# Empty compiler generated dependencies file for ifet_lint.
# This may be replaced when dependencies are built.
