#include "math/mat4.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ifet {

Mat4 Mat4::identity() {
  Mat4 r;
  for (int i = 0; i < 4; ++i) r.m[i][i] = 1.0;
  return r;
}

Mat4 Mat4::translation(const Vec3& t) {
  Mat4 r = identity();
  r.m[0][3] = t.x;
  r.m[1][3] = t.y;
  r.m[2][3] = t.z;
  return r;
}

Mat4 Mat4::scaling(const Vec3& s) {
  Mat4 r;
  r.m[0][0] = s.x;
  r.m[1][1] = s.y;
  r.m[2][2] = s.z;
  r.m[3][3] = 1.0;
  return r;
}

Mat4 Mat4::rotation_x(double a) {
  Mat4 r = identity();
  r.m[1][1] = std::cos(a);
  r.m[1][2] = -std::sin(a);
  r.m[2][1] = std::sin(a);
  r.m[2][2] = std::cos(a);
  return r;
}

Mat4 Mat4::rotation_y(double a) {
  Mat4 r = identity();
  r.m[0][0] = std::cos(a);
  r.m[0][2] = std::sin(a);
  r.m[2][0] = -std::sin(a);
  r.m[2][2] = std::cos(a);
  return r;
}

Mat4 Mat4::rotation_z(double a) {
  Mat4 r = identity();
  r.m[0][0] = std::cos(a);
  r.m[0][1] = -std::sin(a);
  r.m[1][0] = std::sin(a);
  r.m[1][1] = std::cos(a);
  return r;
}

Mat4 Mat4::look_at(const Vec3& eye, const Vec3& target, const Vec3& up) {
  Vec3 forward = (target - eye).normalized();
  Vec3 right = forward.cross(up).normalized();
  Vec3 true_up = right.cross(forward);
  Mat4 r = identity();
  // Columns are the camera basis in world space; translation is the eye.
  r.m[0][0] = right.x;
  r.m[1][0] = right.y;
  r.m[2][0] = right.z;
  r.m[0][1] = true_up.x;
  r.m[1][1] = true_up.y;
  r.m[2][1] = true_up.z;
  r.m[0][2] = -forward.x;
  r.m[1][2] = -forward.y;
  r.m[2][2] = -forward.z;
  r.m[0][3] = eye.x;
  r.m[1][3] = eye.y;
  r.m[2][3] = eye.z;
  return r;
}

Mat4 Mat4::operator*(const Mat4& o) const {
  Mat4 r;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double s = 0.0;
      for (int k = 0; k < 4; ++k) s += m[i][k] * o.m[k][j];
      r.m[i][j] = s;
    }
  }
  return r;
}

Vec3 Mat4::transform_point(const Vec3& p) const {
  double x = m[0][0] * p.x + m[0][1] * p.y + m[0][2] * p.z + m[0][3];
  double y = m[1][0] * p.x + m[1][1] * p.y + m[1][2] * p.z + m[1][3];
  double z = m[2][0] * p.x + m[2][1] * p.y + m[2][2] * p.z + m[2][3];
  double w = m[3][0] * p.x + m[3][1] * p.y + m[3][2] * p.z + m[3][3];
  if (w != 0.0 && w != 1.0) {
    x /= w;
    y /= w;
    z /= w;
  }
  return {x, y, z};
}

Vec3 Mat4::transform_vector(const Vec3& v) const {
  return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
          m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
          m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
}

Mat4 Mat4::inverse() const {
  // Gauss–Jordan with partial pivoting on an augmented [A | I] system.
  std::array<std::array<double, 8>, 4> a{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) a[i][j] = m[i][j];
    a[i][4 + i] = 1.0;
  }
  for (int col = 0; col < 4; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 4; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    IFET_REQUIRE(std::fabs(a[pivot][col]) > 1e-12,
                 "Mat4::inverse: singular matrix");
    std::swap(a[pivot], a[col]);
    double inv = 1.0 / a[col][col];
    for (int j = 0; j < 8; ++j) a[col][j] *= inv;
    for (int r = 0; r < 4; ++r) {
      if (r == col) continue;
      double f = a[r][col];
      if (f == 0.0) continue;
      for (int j = 0; j < 8; ++j) a[r][j] -= f * a[col][j];
    }
  }
  Mat4 out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) out.m[i][j] = a[i][4 + j];
  }
  return out;
}

}  // namespace ifet
