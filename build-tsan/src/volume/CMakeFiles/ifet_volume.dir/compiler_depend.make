# Empty compiler generated dependencies file for ifet_volume.
# This may be replaced when dependencies are built.
