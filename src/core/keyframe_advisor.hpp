// Key-frame selection advice.
//
// The paper's workflow leaves key-frame placement to the user: "the user
// can visualize the rendered results using the adaptive transfer function
// and add new key frames when needed" (Sec 4.2). This module automates the
// "when needed": the data-driven signal for a missing key frame is a time
// step whose value distribution is far from every key frame's — exactly
// the situation where the IATF must extrapolate. Distribution distance is
// the area between cumulative histograms (the 1D Wasserstein distance,
// computed on the per-step cumulative histograms the sequence already
// maintains), so the advisor costs one pass over the steps and no network
// evaluation.
//
// (Jankun-Kelly & Ma, cited in Sec 2, generate minimal transfer-function
// sets for time-varying data by clustering step behavior; this advisor is
// the same idea specialized to the IATF's key-frame mechanism.)
#pragma once

#include <vector>

#include "volume/histogram.hpp"
#include "volume/sequence.hpp"

namespace ifet {

/// Area between two cumulative histograms over their shared value range —
/// the (normalized) 1D Wasserstein distance between the distributions.
/// Both must be built over the same range and bin count.
double cumulative_histogram_distance(const CumulativeHistogram& a,
                                     const CumulativeHistogram& b);

/// Distance of `step`'s distribution to the nearest existing key frame.
double distance_to_nearest_key(const VolumeSequence& sequence, int step,
                               const std::vector<int>& key_steps);

struct KeyFrameSuggestion {
  int step = -1;        ///< Suggested new key frame (-1 when none needed).
  double distance = 0;  ///< Its distance to the nearest existing key.
};

/// Scan steps [first, last] with the given stride and return the step
/// whose distribution is farthest from all existing key frames. Returns
/// step = -1 when every scanned step is within `threshold` of a key (the
/// current key set already covers the sequence). `stride` > 1 trades
/// precision for scan cost on long sequences.
///
/// `time_weight` > 0 adds a temporal-coverage term: a step's score against
/// key k becomes W(step, k) + time_weight * |step - k| / (last - first).
/// With a sigmoid network the IATF's confidence sags in long key-free time
/// gaps even when the distributions barely move, so purely distributional
/// advice can leave such gaps uncovered; a small time weight (~0.1) makes
/// the advisor close them.
KeyFrameSuggestion suggest_key_frame(const VolumeSequence& sequence,
                                     const std::vector<int>& key_steps,
                                     int first, int last, int stride = 1,
                                     double threshold = 0.0,
                                     double time_weight = 0.0);

}  // namespace ifet
