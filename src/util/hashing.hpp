// Small hash combiners shared across layers.
//
// Originally private to the streaming DerivedCache; hoisted to util so
// lower layers (nn: Mlp::params_hash) can build params hashes without
// depending on the streaming subsystem. The combiner style is FNV-1a-like
// mixing, good enough for cache keys — these hashes gate memoization and
// rebuild checks, not security.
#pragma once

#include <cstdint>
#include <cstring>

namespace ifet {

/// FNV-1a style combiner for building params hashes.
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  return seed;
}

inline std::uint64_t hash_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace ifet
