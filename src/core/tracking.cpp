#include "core/tracking.hpp"

#include <deque>
#include <string>

#include "util/error.hpp"

namespace ifet {

AdaptiveTfCriterion::AdaptiveTfCriterion(const Iatf& iatf, double opacity_cut,
                                         DerivedCache* derived)
    : iatf_(iatf), opacity_cut_(opacity_cut), derived_(derived) {}

const TransferFunction1D& AdaptiveTfCriterion::tf_for(int step) const {
  auto it = tf_cache_.find(step);
  if (it == tf_cache_.end()) {
    std::shared_ptr<const TransferFunction1D> tf;
    if (derived_ != nullptr) {
      tf = derived_->transfer_function(step, iatf_.params_hash(),
                                       [&] { return iatf_.evaluate(step); });
    } else {
      tf = std::make_shared<const TransferFunction1D>(iatf_.evaluate(step));
    }
    it = tf_cache_.emplace(step, std::move(tf)).first;
  }
  return *it->second;
}

bool AdaptiveTfCriterion::accept(int step, double value) const {
  return tf_for(step).opacity(value) >= opacity_cut_;
}

std::size_t TrackResult::voxels_at(int step) const {
  auto it = masks.find(step);
  return it == masks.end() ? 0 : mask_count(it->second);
}

int TrackResult::first_step() const {
  IFET_REQUIRE(!masks.empty(), "TrackResult: empty track");
  return masks.begin()->first;
}

int TrackResult::last_step() const {
  IFET_REQUIRE(!masks.empty(), "TrackResult: empty track");
  return masks.rbegin()->first;
}

Tracker::Tracker(const VolumeSequence& sequence,
                 const TrackingCriterion& criterion,
                 const TrackerConfig& config)
    : sequence_(sequence), criterion_(criterion), config_(config) {
  IFET_REQUIRE(config_.min_step < 0 || config_.max_step < 0 ||
                   config_.min_step <= config_.max_step,
               "Tracker: min_step must not exceed max_step");
}

TrackResult Tracker::track(Index3 seed, int seed_step) const {
  Mask seeds(sequence_.dims());
  IFET_REQUIRE(seeds.dims().contains(seed), "Tracker: seed out of range");
  seeds.at(seed) = 1;
  return track_from_mask(seeds, seed_step);
}

TrackResult Tracker::track_from_mask(const Mask& seeds, int seed_step) const {
  IFET_REQUIRE(seeds.dims() == sequence_.dims(),
               "Tracker: seed mask dimension mismatch");
  const int lo_step = config_.min_step >= 0 ? config_.min_step : 0;
  const int hi_step =
      config_.max_step >= 0 ? config_.max_step : sequence_.num_steps() - 1;
  IFET_REQUIRE(seed_step >= lo_step && seed_step <= hi_step,
               "Tracker: seed step outside tracking window");

  TrackResult result;
  // Per-step worklists of candidate voxels (unfiltered; filtered when the
  // step is processed so each candidate costs one criterion check).
  std::map<int, std::vector<Index3>> pending;
  {
    std::vector<Index3> initial;
    for (std::size_t v = 0; v < seeds.size(); ++v) {
      if (seeds[v]) initial.push_back(seeds.coord_of(v));
    }
    pending.emplace(seed_step, std::move(initial));
  }

  const Dims d = sequence_.dims();
  GrowState grow;

  while (!pending.empty()) {
    // Process the step closest to the seed step first; this keeps the
    // sequence's LRU cache working on a contiguous window.
    auto chosen = pending.begin();
    for (auto it = pending.begin(); it != pending.end(); ++it) {
      if (std::abs(it->first - seed_step) <
          std::abs(chosen->first - seed_step)) {
        chosen = it;
      }
    }
    const int step = chosen->first;
    std::vector<Index3> candidates = std::move(chosen->second);
    pending.erase(chosen);

    // Out-of-core: pin {t-1, t, t+1} so the reference below stays valid
    // and the temporal neighbors this step will seed are already loading
    // while we grow within the step.
    sequence_.hint_window(step - 1, step + 1);
    const VolumeF* volume_ptr = sequence_.try_step(step);
    if (volume_ptr == nullptr) {
      // Quarantined data under FailPolicy::kSkipStep: the step contributes
      // zero overlap and no mask. Forward the candidates one step further
      // from the seed so the region re-seeds on the far side of the gap
      // (consecutive bad steps keep forwarding; docs/ROBUSTNESS.md).
      IFET_REQUIRE(step != seed_step,
                   "Tracker: seed step " + std::to_string(step) +
                       " is unavailable");
      const int dt = step >= seed_step ? 1 : -1;
      const int next = step + dt;
      if (next >= lo_step && next <= hi_step) {
        auto visited = result.masks.find(next);
        std::vector<Index3>& out = pending[next];
        for (const Index3& p : candidates) {
          if (visited != result.masks.end() &&
              visited->second[visited->second.linear_index(p.x, p.y, p.z)]) {
            continue;
          }
          out.push_back(p);
        }
        if (out.empty()) pending.erase(next);
      }
      continue;
    }
    const VolumeF& volume = *volume_ptr;
    auto [mask_it, inserted] = result.masks.try_emplace(step, d);
    (void)inserted;
    Mask& mask = mask_it->second;

    // 3D BFS within this step from all accepted candidates. The worklists
    // live in `grow` and are reused across steps (constructing a fresh
    // newly_added vector per step churned the allocator once per step).
    grow.frontier.clear();
    grow.newly_added.clear();
    grow_step(step, volume, candidates, mask, grow);

    // Temporal propagation: every voxel newly added at this step seeds the
    // same position at t-1 and t+1 (the 4D connectivity).
    for (int dt : {-1, 1}) {
      const int next = step + dt;
      if (next < lo_step || next > hi_step) continue;
      auto visited = result.masks.find(next);
      std::vector<Index3>& out = pending[next];
      for (const Index3& p : grow.newly_added) {
        if (visited != result.masks.end() &&
            visited->second[visited->second.linear_index(p.x, p.y, p.z)]) {
          continue;
        }
        out.push_back(p);
      }
      if (out.empty()) pending.erase(next);
    }
    if (config_.max_voxels != 0 && grow.total_voxels >= config_.max_voxels) {
      break;
    }
  }

  // Drop steps the region never actually reached.
  for (auto it = result.masks.begin(); it != result.masks.end();) {
    if (mask_count(it->second) == 0) {
      it = result.masks.erase(it);
    } else {
      ++it;
    }
  }
  return result;
}

IFET_HOT void Tracker::try_add_voxel(int step, const Index3& p,
                                     const VolumeF& volume, Mask& mask,
                                     GrowState& state) const {
  std::size_t li = mask.linear_index(p.x, p.y, p.z);
  if (mask[li]) return;
  if (!criterion_.accept(step, volume[li])) return;
  mask[li] = 1;
  IFET_HOT_ALLOW("amortized growth of BFS worklists reused across steps");
  state.frontier.push_back(p);
  IFET_HOT_ALLOW("amortized growth of BFS worklists reused across steps");
  state.newly_added.push_back(p);
  ++state.total_voxels;
}

IFET_HOT IFET_DETERMINISTIC void Tracker::grow_step(int step, const VolumeF& volume,
                                 const std::vector<Index3>& candidates,
                                 Mask& mask, GrowState& state) const {
  static constexpr int kNeighborhood[6][3] = {{1, 0, 0},  {-1, 0, 0},
                                              {0, 1, 0},  {0, -1, 0},
                                              {0, 0, 1},  {0, 0, -1}};
  const Dims d = sequence_.dims();
  for (const Index3& p : candidates) try_add_voxel(step, p, volume, mask, state);
  while (!state.frontier.empty()) {
    if (config_.max_voxels != 0 && state.total_voxels >= config_.max_voxels) {
      break;
    }
    Index3 p = state.frontier.front();
    state.frontier.pop_front();
    for (const auto& n : kNeighborhood) {
      Index3 q{p.x + n[0], p.y + n[1], p.z + n[2]};
      if (d.contains(q)) try_add_voxel(step, q, volume, mask, state);
    }
  }
}

}  // namespace ifet
