// Fixture (should PASS): headers forward-declare streams via <iosfwd>.
#pragma once
#include <iosfwd>

void log_line(std::ostream& out, const char* msg);
