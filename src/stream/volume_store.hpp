// Paged, lazily-loading backend over the volume I/O layer.
//
// VolumeStore is the single choke point between the 4D pipelines and the
// disk: it owns a VolumeSource (a compressed .cvol sequence, a set of .vol
// files, or any procedural source), a CacheManager enforcing the byte
// budget, and a Prefetcher overlapping decode with compute. Consumers must
// not call io read functions directly (enforced by the ifet_lint
// `direct-volume-load` rule) — fetch() is the only way to a decoded step,
// so every byte that enters memory is accounted, evictable, and
// prefetchable.
#pragma once

#include <exception>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "stream/cache_manager.hpp"
#include "stream/prefetcher.hpp"
#include "stream/step_health.hpp"
#include "util/ordered_mutex.hpp"
#include "volume/sequence.hpp"

namespace ifet {

/// VolumeSource over one self-describing .vol file per timestep (the
/// layout the public flow data sets ship in). The global value range is
/// scanned once at open time unless supplied.
class VolFileSetSource final : public VolumeSource {
 public:
  /// `paths[t]` is the file of step t. When `value_range` is not supplied
  /// every file is read once to establish the sequence-global range (one
  /// full pass — pass the range explicitly for terascale inputs).
  explicit VolFileSetSource(std::vector<std::string> paths);
  VolFileSetSource(std::vector<std::string> paths,
                   std::pair<double, double> value_range);

  Dims dims() const override { return dims_; }
  int num_steps() const override {
    return static_cast<int>(paths_.size());
  }
  std::pair<double, double> value_range() const override { return range_; }
  VolumeF generate(int step) const override;

 private:
  std::vector<std::string> paths_;
  Dims dims_{};
  std::pair<double, double> range_{0.0, 1.0};
};

struct VolumeStoreConfig {
  /// Byte budget for decoded steps; 0 = unlimited (fully resident).
  std::size_t budget_bytes = 0;
  /// Steps scheduled ahead of each fetch in the scan direction; 0 disables
  /// prefetch.
  int lookahead = 2;
  /// Run lookahead asynchronously on the shared thread pool. When false,
  /// lookahead steps are loaded synchronously on the calling thread
  /// (deterministic; used by tests).
  bool async_prefetch = true;
  /// Extra load attempts after a retryable IoError (TransientIoError or
  /// CorruptDataError; NotFoundError never retries). 0 disables retry.
  int max_retries = 2;
  /// Base delay before the first retry; doubles per attempt (deterministic,
  /// jitterless — see docs/ROBUSTNESS.md). 0 retries immediately.
  double retry_backoff_ms = 0.0;
  /// What fetch() does for a step whose load exhausted its retries.
  FailPolicy fail_policy = FailPolicy::kThrow;
};

class VolumeStore {
 public:
  VolumeStore(std::shared_ptr<const VolumeSource> source,
              const VolumeStoreConfig& config = {});

  /// Open a compressed sequence container (io/compressed).
  static std::unique_ptr<VolumeStore> open_cvol(
      const std::string& path, const VolumeStoreConfig& config = {});

  /// Open a set of per-step .vol files (io/volume_io).
  static std::unique_ptr<VolumeStore> open_vol_files(
      std::vector<std::string> paths, const VolumeStoreConfig& config = {});

  const VolumeSource& source() const { return *source_; }
  Dims dims() const { return source_->dims(); }
  int num_steps() const { return source_->num_steps(); }
  std::pair<double, double> value_range() const {
    return source_->value_range();
  }
  const VolumeStoreConfig& config() const { return config_; }

  /// Decoded volume for `step`: cache hit, wait on an in-flight prefetch,
  /// or demand-load — then schedule lookahead in the current scan
  /// direction. The returned data stays valid while the shared_ptr is
  /// held, independent of eviction.
  ///
  /// Loads that throw a retryable IoError are retried (config.max_retries,
  /// exponential backoff); a step that exhausts its retries is quarantined
  /// and config.fail_policy decides the outcome — rethrow the original
  /// error (kThrow), return nullptr (kSkipStep), or return the nearest
  /// loadable step's volume (kNearestGood).
  std::shared_ptr<const VolumeF> fetch(int step);

  /// Schedule an async load of `step` without blocking (bounds-clamped
  /// no-op outside the sequence).
  void prefetch(int step);

  /// Pin [lo, hi] (clamped) as the active window and start loading any
  /// non-resident window step in the background.
  void pin_window(int lo, int hi);

  CacheManager& cache() { return cache_; }
  const CacheManager& cache() const { return cache_; }

  /// Brick min/max metadata for `step` (renderer empty-space skipping):
  /// served from the container's ingest-time brick section when the source
  /// carries one (a seek + read of a few KB — the payload is never
  /// decoded), else built once from the decoded step via fetch(). Memoized
  /// for the store's lifetime (indices are ~0.2% of a volume, so they are
  /// not budget-accounted or evictable). Under FailPolicy::kSkipStep a
  /// quarantined legacy step yields nullptr, like fetch().
  std::shared_ptr<const BrickIndex> brick_index(int step)
      IFET_EXCLUDES(mutex_);

  /// How brick_index() answers were produced — container metadata reads
  /// (no payload decode) vs fallback builds from a decoded volume. Memo
  /// hits bump neither. For tests and the render stats report.
  std::uint64_t brick_metadata_reads() const IFET_EXCLUDES(mutex_);
  std::uint64_t brick_builds() const IFET_EXCLUDES(mutex_);

  /// Total source loads (demand + prefetch); the out-of-core analogue of
  /// CachedSequence::generation_count.
  std::size_t load_count() const IFET_EXCLUDES(mutex_);

  /// Combined snapshot: cache + prefetcher + robustness counters.
  StreamStats stats() const IFET_EXCLUDES(mutex_);

  /// Per-step verified/unverified/quarantined report.
  StepHealth step_health() const IFET_EXCLUDES(mutex_);

  /// Whether `step` exhausted its retries and is fenced off.
  bool is_quarantined(int step) const IFET_EXCLUDES(mutex_);

 private:
  /// Decodes one step via the source (mutex_ is only taken AFTER the
  /// decode, to bump the counters — the source call is user code and runs
  /// lock-free).
  VolumeF timed_load(int step, bool prefetch_context) IFET_EXCLUDES(mutex_);

  /// timed_load wrapped in the retry/backoff policy. Exhaustion (or a
  /// NotFoundError) quarantines the step and rethrows the final error.
  VolumeF load_with_retry(int step, bool prefetch_context)
      IFET_EXCLUDES(mutex_);

  /// The pre-policy fetch path: cache hit, await prefetch, demand load.
  std::shared_ptr<const VolumeF> fetch_resident(int step)
      IFET_EXCLUDES(mutex_);

  /// Apply config.fail_policy to a step whose load failed for good.
  std::shared_ptr<const VolumeF> resolve_unavailable(int step,
                                                     std::exception_ptr error)
      IFET_EXCLUDES(mutex_);

  void note_failure(int step, std::exception_ptr error) IFET_EXCLUDES(mutex_);

  std::shared_ptr<const VolumeSource> source_;
  VolumeStoreConfig config_;
  CacheManager cache_;

  mutable OrderedMutex mutex_{MutexRank::kVolumeStore};
  int last_fetched_step_ IFET_GUARDED_BY(mutex_) = -1;
  std::uint64_t demand_loads_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t total_loads_ IFET_GUARDED_BY(mutex_) = 0;
  double demand_decode_seconds_ IFET_GUARDED_BY(mutex_) = 0.0;
  /// Original load error per quarantined step (kThrow rethrows it).
  std::unordered_map<int, std::exception_ptr> quarantine_
      IFET_GUARDED_BY(mutex_);
  std::vector<StepState> step_states_ IFET_GUARDED_BY(mutex_);
  std::unordered_map<int, std::shared_ptr<const BrickIndex>> bricks_
      IFET_GUARDED_BY(mutex_);
  std::uint64_t brick_metadata_reads_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t brick_builds_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t retries_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t load_failures_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t checksum_verified_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t checksum_unverified_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t checksum_failures_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t skipped_fetches_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t nearest_good_substitutions_ IFET_GUARDED_BY(mutex_) = 0;

  /// Declared LAST on purpose: its destructor drains every in-flight
  /// async load, and those loads (load_with_retry on worker threads) take
  /// mutex_ and write step_states_/counters above — so the prefetcher
  /// must be destroyed before any state its tasks touch.
  Prefetcher prefetcher_;
};

}  // namespace ifet
