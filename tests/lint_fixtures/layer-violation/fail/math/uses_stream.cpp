// Fixture (should FAIL): math (layer 1) reaching up into stream (layer 5).
#include "stream/window.hpp"

int clamp_to_window(int x) { return x; }
