
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tf/transfer_function.cpp" "src/tf/CMakeFiles/ifet_tf.dir/transfer_function.cpp.o" "gcc" "src/tf/CMakeFiles/ifet_tf.dir/transfer_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan-ubsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/math/CMakeFiles/ifet_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
