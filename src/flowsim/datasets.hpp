// Synthetic stand-ins for the paper's five evaluation data sets.
//
// The originals (argon-bubble shock simulation, Sandia DNS combustion jet,
// Princeton reionization run, NCAR turbulent vortex, swirling flow) are not
// redistributable; each generator below reproduces the *statistical property
// the corresponding experiment depends on* and — unlike the originals —
// carries analytic ground truth, which lets the benches score extraction
// quality quantitatively instead of by eyeballing renderings. See DESIGN.md
// Sec 2 for the substitution arguments.
//
// All generators are deterministic functions of (seed, step): a
// VolumeSequence can evict and regenerate any step bit-identically.
#pragma once

#include <memory>
#include <vector>

#include "flowsim/fluid_solver.hpp"
#include "flowsim/noise.hpp"
#include "volume/sequence.hpp"
#include "volume/volume.hpp"

namespace ifet {

/// A VolumeSource that also knows where its feature of interest is.
class LabeledSource : public VolumeSource {
 public:
  /// Ground-truth mask of the primary feature of interest at `step`.
  virtual Mask feature_mask(int step) const = 0;
};

// ---------------------------------------------------------------------------
// Argon bubble (Figs 2-4): a torus-shaped "smoke ring" plus smaller
// turbulence structures. The whole field undergoes a global monotonic value
// drift over time, so the ring's raw-value band moves while its cumulative-
// histogram coordinate stays nearly constant — the exact regime that
// motivates the IATF input vector.
// ---------------------------------------------------------------------------
struct ArgonBubbleConfig {
  Dims dims{64, 64, 64};
  int num_steps = 360;          ///< Steps indexed 0..num_steps-1 ("t").
  std::uint64_t seed = 42;
  double ring_major_radius0 = 0.18;  ///< Major radius at t=0 (domain units).
  double ring_growth = 0.00045;      ///< Major radius growth per step.
  double ring_tube_radius = 0.06;    ///< Tube radius of the torus.
  double drift_per_step = 0.0011;    ///< Global additive value drift per step.
  double turbulence_amplitude = 0.38;
};

class ArgonBubbleSource final : public LabeledSource {
 public:
  explicit ArgonBubbleSource(const ArgonBubbleConfig& config = {});

  Dims dims() const override { return config_.dims; }
  int num_steps() const override { return config_.num_steps; }
  std::pair<double, double> value_range() const override;
  VolumeF generate(int step) const override;
  Mask feature_mask(int step) const override;

  const ArgonBubbleConfig& config() const { return config_; }

  /// Raw value at the *center* of the ring band at `step` (analytic; used
  /// by Fig 2 to place the feature peak and by tests).
  double ring_band_center(int step) const;
  /// Half-width of the ring's raw-value band.
  double ring_band_half_width() const;

 private:
  /// Distance to the torus surface axis at normalized point p, step t.
  double torus_distance(const Vec3& p, int step) const;
  /// Pre-drift field value at normalized point p.
  double base_value(const Vec3& p, int step) const;
  /// The global monotonic drift applied to every voxel.
  double drift(double value, int step) const;

  ArgonBubbleConfig config_;
  ValueNoise noise_;
};

// ---------------------------------------------------------------------------
// Combustion jet (Fig 5): fuel flows between two counter-flowing air
// streams; turbulence distorts the mixing layer. Driven by the real
// FluidSolver; the produced scalar is vorticity magnitude whose value range
// *grows* as turbulence develops, which is why a static TF fails. The
// feature of interest is the strong-vorticity structure: ground truth is the
// top `feature_fraction` of each step's vorticity distribution.
// ---------------------------------------------------------------------------
struct CombustionJetConfig {
  Dims dims{48, 64, 24};        ///< Aspect follows the paper's 480x720x120.
  int num_steps = 33;           ///< Recorded snapshots.
  int solver_steps_per_snapshot = 4;
  std::uint64_t seed = 7;
  double inflow_speed = 2.2;    ///< Fuel jet speed (+y).
  double counterflow_speed = 1.1;  ///< Air streams (-y).
  double inflow_ramp = 0.015;   ///< Fractional speed growth per solver step.
  double feature_fraction = 0.02;  ///< Top-vorticity fraction = "the vortex".
};

class CombustionJetSource final : public LabeledSource {
 public:
  /// Runs the solver for num_steps * solver_steps_per_snapshot steps up
  /// front and stores the vorticity-magnitude snapshots.
  explicit CombustionJetSource(const CombustionJetConfig& config = {});

  Dims dims() const override { return config_.dims; }
  int num_steps() const override { return config_.num_steps; }
  std::pair<double, double> value_range() const override;
  VolumeF generate(int step) const override;
  Mask feature_mask(int step) const override;

  const CombustionJetConfig& config() const { return config_; }

  /// Vorticity value such that `feature_fraction` of step's voxels exceed
  /// it (the ground-truth adaptive criterion).
  double feature_threshold(int step) const;

  /// Max vorticity of a step (tests assert the range grows over time).
  double max_vorticity(int step) const;

  /// The simulation's second variable: the advected fuel (mixture
  /// fraction) field of a snapshot, in [0, 1]. The paper's DNS data is
  /// multivariate; the reacting mixing layer is where fuel meets strong
  /// vorticity — a joint condition only a multivariate classifier can
  /// express (see core/multivariate.hpp).
  const VolumeF& fuel_snapshot(int step) const;

 private:
  CombustionJetConfig config_;
  std::vector<VolumeF> snapshots_;
  std::vector<VolumeF> fuel_snapshots_;
  std::vector<double> thresholds_;
  std::vector<double> maxima_;
  double global_max_ = 0.0;
};

// ---------------------------------------------------------------------------
// Reionization (Figs 7-8): a few large filamentary structures with fine
// surface detail plus hundreds of tiny blobs whose *values overlap* the
// large structures — so a 1D TF cannot remove them and smoothing destroys
// the detail. Ground truth distinguishes large and small features.
// ---------------------------------------------------------------------------
struct ReionizationConfig {
  Dims dims{64, 64, 64};
  int num_steps = 400;
  std::uint64_t seed = 99;
  int num_small_features = 160;
  double small_radius = 0.018;     ///< Radius of tiny blobs (domain units).
  double filament_width0 = 0.085;  ///< Large-structure width at t=0.
  double filament_growth = 5e-5;   ///< Width growth per step (reionization).
  double detail_amplitude = 0.30;  ///< Fine fbm detail on large structures.
};

class ReionizationSource final : public LabeledSource {
 public:
  explicit ReionizationSource(const ReionizationConfig& config = {});

  Dims dims() const override { return config_.dims; }
  int num_steps() const override { return config_.num_steps; }
  std::pair<double, double> value_range() const override;
  VolumeF generate(int step) const override;

  /// Primary feature = the large structures.
  Mask feature_mask(int step) const override { return large_mask(step); }

  Mask large_mask(int step) const;
  Mask small_mask(int step) const;

  const ReionizationConfig& config() const { return config_; }

 private:
  double large_contribution(const Vec3& p, int step) const;
  double small_contribution(const Vec3& p, int step) const;

  ReionizationConfig config_;
  ValueNoise noise_;
  std::vector<Vec3> small_centers_;
  std::vector<double> small_amplitudes_;
};

// ---------------------------------------------------------------------------
// Turbulent vortex (Fig 9): a single feature that moves, deforms, and
// *splits in two* near the end of the sequence, embedded among distractor
// structures of a different value band.
// ---------------------------------------------------------------------------
struct TurbulentVortexConfig {
  Dims dims{64, 64, 64};
  int num_steps = 25;           ///< Matches the paper's t = 50..74 window.
  int split_step = 18;          ///< The feature is split for t >= this step.
  std::uint64_t seed = 11;
  double feature_value = 0.82;  ///< Peak value of the tracked feature.
  double feature_radius = 0.11;
};

class TurbulentVortexSource final : public LabeledSource {
 public:
  explicit TurbulentVortexSource(const TurbulentVortexConfig& config = {});

  Dims dims() const override { return config_.dims; }
  int num_steps() const override { return config_.num_steps; }
  std::pair<double, double> value_range() const override;
  VolumeF generate(int step) const override;
  Mask feature_mask(int step) const override;

  const TurbulentVortexConfig& config() const { return config_; }

  /// Ground truth: number of connected pieces the feature has at `step`.
  int expected_components(int step) const;
  /// Center(s) of the feature lobes at `step`.
  std::vector<Vec3> lobe_centers(int step) const;

 private:
  double feature_contribution(const Vec3& p, int step) const;

  TurbulentVortexConfig config_;
  ValueNoise noise_;
};

// ---------------------------------------------------------------------------
// Swirling flow (Fig 10): the tracked feature's data values *decay* over
// time. A fixed tracking criterion loses it mid-sequence; the adaptive
// criterion must follow it to the last step.
// ---------------------------------------------------------------------------
struct SwirlingFlowConfig {
  Dims dims{64, 64, 64};
  int num_steps = 63;           ///< Paper shows t = 23, 41, 62.
  std::uint64_t seed = 5;
  double peak_value0 = 0.92;    ///< Feature peak value at t=0 ...
  double peak_decay = 0.0085;   ///< ... decaying linearly per step.
  double feature_radius = 0.10;
  double swirl_rate = 0.035;    ///< Radians per step around the volume axis.
};

class SwirlingFlowSource final : public LabeledSource {
 public:
  explicit SwirlingFlowSource(const SwirlingFlowConfig& config = {});

  Dims dims() const override { return config_.dims; }
  int num_steps() const override { return config_.num_steps; }
  std::pair<double, double> value_range() const override;
  VolumeF generate(int step) const override;
  Mask feature_mask(int step) const override;

  const SwirlingFlowConfig& config() const { return config_; }

  /// Peak value of the feature at `step` (decays linearly).
  double peak_value(int step) const;
  /// Feature center at `step` (rotates about the volume axis).
  Vec3 feature_center(int step) const;

 private:
  double feature_contribution(const Vec3& p, int step) const;

  SwirlingFlowConfig config_;
  ValueNoise noise_;
};

/// Convenience: wrap any source in a cached sequence.
CachedSequence make_sequence(std::shared_ptr<const VolumeSource> source,
                             std::size_t cache_capacity = 4,
                             int histogram_bins = 256);

}  // namespace ifet
