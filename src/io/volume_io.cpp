#include "io/volume_io.hpp"

#include <fstream>
#include <sstream>

#include "io/checksum.hpp"
#include "util/io_error.hpp"

namespace ifet {

namespace {

std::size_t payload_bytes(const VolumeF& volume) {
  return volume.size() * sizeof(float);
}

std::uint32_t payload_crc(const VolumeF& volume) {
  return crc32(volume.data().data(), payload_bytes(volume));
}

}  // namespace

void write_raw(const VolumeF& volume, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) throw NotFoundError("write_raw: cannot open " + path);
  out.write(reinterpret_cast<const char*>(volume.data().data()),
            static_cast<std::streamsize>(payload_bytes(volume)));
  if (!out.good()) throw IoError("write_raw: write failed for " + path);
}

VolumeF read_raw(const std::string& path, Dims dims) {
  IFET_REQUIRE(dims.count() > 0, "read_raw: empty dims for " + path);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw NotFoundError("read_raw: cannot open " + path);
  VolumeF volume(dims);
  in.read(reinterpret_cast<char*>(volume.data().data()),
          static_cast<std::streamsize>(payload_bytes(volume)));
  if (in.gcount() != static_cast<std::streamsize>(payload_bytes(volume))) {
    throw CorruptDataError("read_raw: file shorter than dims require: " +
                           path);
  }
  ++checksum_counters().unverified;  // headerless: nothing to verify
  return volume;
}

void write_vol(const VolumeF& volume, const std::string& path,
               bool with_checksum) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) throw NotFoundError("write_vol: cannot open " + path);
  out << "ifet-vol " << volume.dims().x << ' ' << volume.dims().y << ' '
      << volume.dims().z;
  if (with_checksum) out << " crc32 " << payload_crc(volume);
  out << '\n';
  out.write(reinterpret_cast<const char*>(volume.data().data()),
            static_cast<std::streamsize>(payload_bytes(volume)));
  if (!out.good()) throw IoError("write_vol: write failed for " + path);
}

VolumeF read_vol(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw NotFoundError("read_vol: cannot open " + path);
  std::string line;
  std::getline(in, line);
  std::istringstream header(line);
  std::string magic;
  Dims dims;
  header >> magic >> dims.x >> dims.y >> dims.z;
  if (magic != "ifet-vol" || !header) {
    throw CorruptDataError("read_vol: bad header in " + path);
  }
  // Optional trailing "crc32 <sum>" (absent in legacy files).
  bool has_crc = false;
  std::uint32_t expected_crc = 0;
  std::string crc_tag;
  if (header >> crc_tag) {
    if (crc_tag != "crc32" || !(header >> expected_crc)) {
      throw CorruptDataError("read_vol: malformed checksum field in " + path);
    }
    has_crc = true;
  }
  VolumeF volume(dims);
  in.read(reinterpret_cast<char*>(volume.data().data()),
          static_cast<std::streamsize>(payload_bytes(volume)));
  if (in.gcount() != static_cast<std::streamsize>(payload_bytes(volume))) {
    throw CorruptDataError("read_vol: truncated payload in " + path);
  }
  if (!has_crc) {
    ++checksum_counters().unverified;
    return volume;
  }
  if (payload_crc(volume) != expected_crc) {
    ++checksum_counters().mismatches;
    throw CorruptDataError("read_vol: checksum mismatch in " + path +
                           " (payload corrupted on disk or in transit)");
  }
  ++checksum_counters().verified;
  return volume;
}

}  // namespace ifet
