file(REMOVE_RECURSE
  "CMakeFiles/octree_resample_test.dir/octree_resample_test.cpp.o"
  "CMakeFiles/octree_resample_test.dir/octree_resample_test.cpp.o.d"
  "octree_resample_test"
  "octree_resample_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/octree_resample_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
