#include "stream/peer_a.hpp"

void PeerA::poke() {
  std::lock_guard<std::mutex> lock(mutex_);
  peer_->touch();
}

void PeerA::touch() {
  std::lock_guard<std::mutex> lock(mutex_);
}
