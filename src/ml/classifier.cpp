#include "ml/classifier.hpp"

#include "ml/naive_bayes.hpp"
#include "ml/svm.hpp"
#include "nn/mlp.hpp"
#include "util/error.hpp"

namespace ifet {

namespace {

/// The paper's engine behind the common interface.
class MlpClassifier final : public BinaryClassifier {
 public:
  MlpClassifier(int input_width, std::uint64_t seed) : seed_(seed) {
    Rng rng(seed);
    network_ = Mlp({input_width, 12, 1}, rng);
  }

  void fit(const TrainingSet& set, int budget) override {
    IFET_REQUIRE(budget > 0, "MlpClassifier::fit: epoch budget must be > 0");
    Trainer trainer(network_, BackpropConfig{0.3, 0.7}, seed_ ^ 0x99ULL);
    trainer.run_epochs(set, budget);
  }

  double predict(std::span<const double> input) const override {
    return network_.forward_scalar(input);
  }

  std::string name() const override { return "mlp-bpn"; }

 private:
  std::uint64_t seed_;
  Mlp network_;
};

}  // namespace

std::unique_ptr<BinaryClassifier> make_classifier(EngineKind kind,
                                                  int input_width,
                                                  std::uint64_t seed) {
  switch (kind) {
    case EngineKind::kMlp:
      return std::make_unique<MlpClassifier>(input_width, seed);
    case EngineKind::kSvm:
      return std::make_unique<SvmClassifier>(input_width, seed);
    case EngineKind::kNaiveBayes:
      return std::make_unique<NaiveBayesClassifier>(input_width);
  }
  throw Error("make_classifier: unknown engine kind");
}

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kMlp: return "mlp-bpn";
    case EngineKind::kSvm: return "svm-rbf";
    case EngineKind::kNaiveBayes: return "gaussian-nb";
  }
  return "?";
}

}  // namespace ifet
