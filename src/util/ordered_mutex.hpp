// Runtime lock-order validation (docs/STATIC_ANALYSIS.md).
//
// The static lock-order pass of ifet_lint proves there is no cycle in the
// repo's mutex-acquisition graph, but it is a syntactic analysis — it
// cannot see acquisitions hidden behind type-erased callbacks. OrderedMutex
// closes that gap from the runtime side: every concurrency-bearing mutex
// in the tree carries a rank from the table below, and in checked builds
// (IFET_CHECKED_ITERATORS, on in the asan-ubsan and tsan presets) each
// thread keeps a stack of the ranks it holds. Acquiring a mutex whose rank
// is not strictly greater than every held rank throws ifet::Error at the
// site of the inversion — so the existing TSan stress suite doubles as a
// lock-order fuzzer, and a deadlock that would need an unlucky schedule to
// bite becomes a deterministic failure on ANY schedule that merely reaches
// the second acquisition.
//
// Rank discipline (see docs/STATIC_ANALYSIS.md for the full table): ranks
// strictly increase along every legal acquisition chain, and equal ranks
// never nest — which also makes any re-entrant acquisition of the same
// mutex (self-deadlock with std::mutex) a loud error instead of a hang.
// After the PR-4 call-out fixes, every mutex below is a leaf: no ifet
// mutex is held while user callbacks, loaders, or another class's locking
// methods run. The distinct ranks keep the validator meaningful anyway —
// if a future change reintroduces nesting it must follow the table's
// order or fail immediately in checked builds.
#pragma once

#include <mutex>
#include <string>

#include "util/error.hpp"
#include "util/thread_annotations.hpp"

namespace ifet {

/// Acquisition ranks, outermost (lowest) to innermost (highest). Gaps are
/// room for future locks; a new mutex must pick a rank consistent with
/// every acquisition chain it joins and add itself to the table in
/// docs/STATIC_ANALYSIS.md.
enum class MutexRank : int {
  kSessionManager = 4,     ///< SessionManager session registry + hash refs
  kServerStrand = 6,       ///< Per-session command queue (strand) mutex
  kStreamedSequence = 10,  ///< StreamedSequence window/held-refs mutex
  kClientView = 12,        ///< ClientSequenceView window/held-refs mutex
  kPressure = 15,          ///< PressureMonitor transition state (held across
                           ///< admission/cache/derived calls, all ranked
                           ///< higher, while a pressure transition applies)
  kVolumeStore = 20,       ///< VolumeStore load counters
  kCacheManager = 30,      ///< CacheManager residency state
  kAdmission = 35,         ///< AdmissionController per-client pin ledger
  kPrefetcher = 40,        ///< Prefetcher in-flight set
  kDerivedCache = 50,      ///< DerivedCache memo maps
  kFlatMlpCache = 60,      ///< FlatMlpCache rebuild slot
  kWatchdog = 70,          ///< SessionManager watchdog report state (leaf;
                           ///< never held while sampling session atomics)
  kThreadPool = 90,        ///< ThreadPool queue (innermost leaf)
};

namespace detail {
/// Per-thread stack of held OrderedMutex ranks (checked builds only).
/// Deliberately a trivially-destructible POD, not a std::vector: a vector
/// registers a TLS destructor, which runs BEFORE atexit-time static
/// destructors — and the global ThreadPool locks its OrderedMutex from
/// exactly such a destructor. A POD thread_local has no destructor, so
/// its storage stays valid through program teardown. Capacity 16 is far
/// above the deepest legal chain (ranks strictly increase and the rank
/// table has 7 entries).
struct HeldRanks {
  static constexpr int kCapacity = 16;
  int ranks[kCapacity];
  int size;

  bool empty() const { return size == 0; }
  int back() const { return ranks[size - 1]; }
  void push(int rank) {
    IFET_REQUIRE(size < kCapacity,
                 "OrderedMutex: held-rank stack overflow (deeper than any "
                 "legal acquisition chain)");
    ranks[size++] = rank;
  }
  void pop() { --size; }
};

inline HeldRanks& held_mutex_ranks() {
  thread_local HeldRanks held{};
  return held;
}
}  // namespace detail

/// std::mutex + capability annotations + debug rank validation. Drop-in
/// for ifet::Mutex wherever the mutex participates in a documented
/// acquisition order; BasicLockable, so condition_variable_any works.
class IFET_CAPABILITY("mutex") OrderedMutex {
 public:
  explicit OrderedMutex(MutexRank rank) : rank_(static_cast<int>(rank)) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() IFET_ACQUIRE() {
#if defined(IFET_CHECKED_ITERATORS) && IFET_CHECKED_ITERATORS
    // Validate BEFORE blocking: an inversion must report even on the
    // schedules where it would not happen to deadlock.
    auto& held = detail::held_mutex_ranks();
    IFET_REQUIRE(held.empty() || held.back() < rank_,
                 "OrderedMutex: rank inversion — acquiring rank " +
                     std::to_string(rank_) + " while holding rank " +
                     std::to_string(held.empty() ? -1 : held.back()) +
                     " (see the mutex rank table in "
                     "docs/STATIC_ANALYSIS.md)");
    m_.lock();
    held.push(rank_);
#else
    m_.lock();
#endif
  }

  void unlock() IFET_RELEASE() {
#if defined(IFET_CHECKED_ITERATORS) && IFET_CHECKED_ITERATORS
    auto& held = detail::held_mutex_ranks();
    IFET_REQUIRE(!held.empty() && held.back() == rank_,
                 "OrderedMutex: non-LIFO unlock of rank " +
                     std::to_string(rank_));
    held.pop();
#endif
    m_.unlock();
  }

  MutexRank rank() const { return static_cast<MutexRank>(rank_); }

 private:
  std::mutex m_;
  const int rank_;
};

using OrderedMutexLock = GenericMutexLock<OrderedMutex>;

}  // namespace ifet
