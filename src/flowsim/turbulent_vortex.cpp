#include <cmath>

#include "flowsim/datasets.hpp"
#include "parallel/thread_pool.hpp"

namespace ifet {

namespace {
/// Mask threshold on the feature contribution; chosen together with the
/// post-split lobe separation so the two lobes are disconnected at the mask
/// level from the split step onwards (see lobe_centers()).
constexpr double kMaskThreshold = 0.4;
}  // namespace

TurbulentVortexSource::TurbulentVortexSource(
    const TurbulentVortexConfig& config)
    : config_(config), noise_(config.seed) {
  IFET_REQUIRE(config_.num_steps > 0, "TurbulentVortex: need steps");
  IFET_REQUIRE(config_.split_step > 0 &&
                   config_.split_step < config_.num_steps,
               "TurbulentVortex: split_step must fall inside the sequence");
}

std::vector<Vec3> TurbulentVortexSource::lobe_centers(int step) const {
  // The vortex core translates and meanders.
  Vec3 c{0.30 + 0.012 * step, 0.5 + 0.08 * std::sin(step * 0.35),
         0.55 - 0.006 * step};
  if (step < config_.split_step) return {c};
  // After the split the two lobes separate along a fixed direction fast
  // enough that their masks are immediately disconnected: the contribution
  // midway between lobes is below kMaskThreshold from the first split step.
  const Vec3 dir = Vec3{0.1, 0.9, 0.35}.normalized();
  // 0.125 makes the mid-point contribution < kMaskThreshold even when the
  // deformation stretches the lobes along the separation direction, while
  // each lobe still overlaps the parent's previous-step mask.
  double sep = 0.125 + 0.008 * (step - config_.split_step);
  return {c + dir * sep, c - dir * sep};
}

double TurbulentVortexSource::feature_contribution(const Vec3& p,
                                                   int step) const {
  const double r = config_.feature_radius;
  // Deformation: the radius breathes anisotropically over time.
  const double rx = r * (1.0 + 0.25 * std::sin(step * 0.3));
  const double ry = r * (1.0 + 0.25 * std::sin(step * 0.3 + 2.0));
  const double rz = r;
  double best = 0.0;
  for (const Vec3& c : lobe_centers(step)) {
    Vec3 d = p - c;
    double q = (d.x * d.x) / (rx * rx) + (d.y * d.y) / (ry * ry) +
               (d.z * d.z) / (rz * rz);
    best = std::max(best, config_.feature_value * std::exp(-q));
  }
  return best;
}

VolumeF TurbulentVortexSource::generate(int step) const {
  IFET_REQUIRE(step >= 0 && step < config_.num_steps,
               "TurbulentVortex: step out of range");
  const Dims d = config_.dims;
  VolumeF out(d);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 p{(i + 0.5) / d.x, (j + 0.5) / d.y, (k + 0.5) / d.z};
        double feature = feature_contribution(p, step);
        // Distractor structures in a *lower* value band plus background
        // noise: context the tracked feature must be separated from.
        Vec3 d1 = p - Vec3{0.75, 0.25, 0.3};
        Vec3 d2 = p - Vec3{0.2, 0.8, 0.7};
        double distractor =
            0.5 * std::max(std::exp(-d1.norm2() / 0.01),
                           std::exp(-d2.norm2() / 0.014));
        double background =
            0.12 *
            std::fabs(noise_.fbm(p.x * 5.0, p.y * 5.0, p.z * 5.0,
                                 step * 0.08, 3));
        out[out.linear_index(i, j, k)] =
            static_cast<float>(std::max({feature, distractor, background}));
      }
    }
  });
  return out;
}

Mask TurbulentVortexSource::feature_mask(int step) const {
  const Dims d = config_.dims;
  Mask out(d);
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 p{(i + 0.5) / d.x, (j + 0.5) / d.y, (k + 0.5) / d.z};
        out[out.linear_index(i, j, k)] =
            feature_contribution(p, step) > kMaskThreshold ? 1 : 0;
      }
    }
  }
  return out;
}

int TurbulentVortexSource::expected_components(int step) const {
  return step < config_.split_step ? 1 : 2;
}

std::pair<double, double> TurbulentVortexSource::value_range() const {
  return {0.0, 1.0};
}

}  // namespace ifet
