// Systematic validation of extraction and tracking results.
//
// Paper Sec 8: "We are presently seeking a systematic way for the
// scientists to validate the feature extraction and tracking results."
// This module provides the quantitative half of that: internal-consistency
// checks that need no ground truth, so they apply to real data.
//
//  * Track validation — a correctly tracked feature evolves continuously:
//    voxel counts change smoothly and consecutive masks overlap strongly
//    (the paper's own temporal-sampling assumption). Violations flag the
//    steps where tracking likely jumped to a different structure or the
//    criterion collapsed.
//  * Extraction validation — a trustworthy classifier is *decisive*: high
//    certainty inside the extraction, low outside, few voxels riding the
//    decision boundary. A large boundary fraction means the painted
//    training set under-determines the feature and more strokes are
//    needed (the feedback loop of Sec 6).
#pragma once

#include <cstddef>
#include <vector>

#include "core/tracking.hpp"
#include "volume/volume.hpp"

namespace ifet {

struct TrackStepReport {
  int step = 0;
  std::size_t voxels = 0;
  /// |count(t) - count(t-1)| / max(count(t-1), 1); 0 for the first step.
  double count_jump = 0.0;
  /// |mask(t) ∩ mask(t-1)| / min(|mask(t)|, |mask(t-1)|); 1 for the first.
  double overlap_ratio = 1.0;
};

struct TrackValidation {
  std::vector<TrackStepReport> steps;
  /// Steps whose count jump or overlap ratio violated the thresholds.
  std::vector<int> suspicious_steps;
  /// Steps missing from the track inside [first, last] (gaps).
  std::vector<int> gap_steps;

  bool clean() const {
    return suspicious_steps.empty() && gap_steps.empty();
  }
};

/// Validate temporal consistency of a tracking result.
TrackValidation validate_track(const TrackResult& track,
                               double max_count_jump = 0.6,
                               double min_overlap_ratio = 0.25);

struct ExtractionValidation {
  double mean_certainty_inside = 0.0;   ///< Mean certainty of kept voxels.
  double mean_certainty_outside = 0.0;  ///< Mean certainty of dropped ones.
  /// Fraction of voxels within `band` of the decision cut.
  double boundary_fraction = 0.0;

  /// Decisiveness: inside minus outside mean certainty (1 = ideal).
  double separation() const {
    return mean_certainty_inside - mean_certainty_outside;
  }
};

/// Validate a classifier's certainty volume against its own decision cut.
ExtractionValidation validate_extraction(const VolumeF& certainty,
                                         double cut = 0.5,
                                         double band = 0.15);

}  // namespace ifet
