// Regression fixtures for every ifet_lint rule (docs/STATIC_ANALYSIS.md).
//
// Each rule has a should-fail and a should-pass tree under
// tests/lint_fixtures/<rule>/{fail,pass}; the trees mimic the src/ layer
// directories because several rules are path-scoped (voxel-raw-access is
// legal in volume/, direct-volume-load in stream/, ...). The linter runs
// with --only=<rule> so a fixture crafted for one rule cannot fail the
// suite through another rule's finding, and with --format=json so the
// rule id is asserted structurally rather than by scraping prose.
//
// This pins three contracts at once: the rule still fires on its minimal
// violation, it stays quiet on the corrected form, and the per-pass exit
// bit (conventions=1, lock-order=2, layering=4, hot-path=8,
// determinism=16) is stable for CI scripts.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;
};

LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(IFET_LINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << cmd;
  LintRun run;
  if (pipe == nullptr) return run;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    run.output.append(buf, n);
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

struct RuleCase {
  const char* rule;
  int exit_bit;
};

class LintFixturesTest : public ::testing::TestWithParam<RuleCase> {};

TEST_P(LintFixturesTest, FailFixtureTripsExactlyThisRule) {
  const RuleCase& rc = GetParam();
  const std::string dir =
      std::string(IFET_LINT_FIXTURES) + "/" + rc.rule + "/fail";
  const LintRun run =
      run_lint("--format=json --only=" + std::string(rc.rule) + " " + dir);
  EXPECT_EQ(run.exit_code, rc.exit_bit) << run.output;
  EXPECT_NE(run.output.find("\"rule\": \"" + std::string(rc.rule) + "\""),
            std::string::npos)
      << run.output;
}

TEST_P(LintFixturesTest, PassFixtureIsClean) {
  const RuleCase& rc = GetParam();
  const std::string dir =
      std::string(IFET_LINT_FIXTURES) + "/" + rc.rule + "/pass";
  const LintRun run =
      run_lint("--format=json --only=" + std::string(rc.rule) + " " + dir);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"findings\": []"), std::string::npos)
      << run.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixturesTest,
    ::testing::Values(RuleCase{"voxel-raw-access", 1},
                      RuleCase{"extent-unchecked", 1},
                      RuleCase{"iostream-in-header", 1},
                      RuleCase{"raw-rand", 1},
                      RuleCase{"catch-all", 1},
                      RuleCase{"broad-catch-io", 1},
                      RuleCase{"direct-volume-load", 1},
                      RuleCase{"scalar-forward-in-hot-loop", 1},
                      RuleCase{"lock-order-cycle", 2},
                      RuleCase{"layer-violation", 4},
                      RuleCase{"include-cycle", 4},
                      RuleCase{"hot-path-alloc", 8},
                      RuleCase{"hot-path-throw", 8},
                      RuleCase{"det-unordered-iter", 16},
                      RuleCase{"det-rand-time", 16},
                      RuleCase{"det-pointer-order", 16},
                      RuleCase{"det-float-reduce", 16},
                      RuleCase{"det-env", 16}),
    [](const ::testing::TestParamInfo<RuleCase>& info) {
      std::string name = info.param.rule;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(LintCliTest, ExitBitsCompose) {
  // A fail tree tripping a conventions rule AND a layering rule at once
  // must OR the bits; --only is dropped so both families report.
  const std::string dirs =
      std::string(IFET_LINT_FIXTURES) + "/raw-rand/fail " +
      std::string(IFET_LINT_FIXTURES) + "/layer-violation/fail";
  const LintRun run = run_lint("--format=json " + dirs);
  EXPECT_EQ(run.exit_code, 1 | 4) << run.output;
}

TEST(LintCliTest, UsageErrorsExit64) {
  EXPECT_EQ(run_lint("").exit_code, 64);
  EXPECT_EQ(run_lint("--format=yaml .").exit_code, 64);
  EXPECT_EQ(run_lint("/no/such/path/anywhere").exit_code, 64);
}

TEST(LintCliTest, FamilyOnlySelectsAllHotPathRules) {
  // --only=hot-path (the family prefix) must still trip hot-path-alloc.
  const std::string dir =
      std::string(IFET_LINT_FIXTURES) + "/hot-path-alloc/fail";
  const LintRun run = run_lint("--format=json --only=hot-path " + dir);
  EXPECT_EQ(run.exit_code, 8) << run.output;
  EXPECT_NE(run.output.find("\"rule\": \"hot-path-alloc\""),
            std::string::npos)
      << run.output;
}

TEST(LintCliTest, BaselineSuppressesKnownFindings) {
  const std::string base = std::string(IFET_LINT_FIXTURES) + "/hot-path-alloc";
  const LintRun run = run_lint("--format=json --baseline=" + base +
                               "/baseline.txt --only=hot-path " + base +
                               "/fail");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"baseline_suppressed\": 2"), std::string::npos)
      << run.output;
  // Suppressed findings stay in the JSON list (flagged per-finding) so the
  // artifact records the debt, but contribute nothing to the exit code.
  EXPECT_NE(run.output.find("\"baseline_suppressed\": true"),
            std::string::npos)
      << run.output;
  EXPECT_EQ(run.output.find("\"baseline_suppressed\": false"),
            std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"exit_code\": 0"), std::string::npos)
      << run.output;
}

TEST(LintCliTest, ParallelScanOutputMatchesSerial) {
  // --jobs only parallelizes the per-file scan; findings merge in path
  // order, so any width must produce byte-identical output (this is the
  // linter holding itself to the determinism contract it enforces).
  const std::string dirs =
      std::string(IFET_LINT_FIXTURES) + "/raw-rand/fail " +
      std::string(IFET_LINT_FIXTURES) + "/det-rand-time/fail " +
      std::string(IFET_LINT_FIXTURES) + "/layer-violation/fail";
  const LintRun serial = run_lint("--format=json --jobs=1 " + dirs);
  const LintRun wide = run_lint("--format=json --jobs=4 " + dirs);
  const LintRun hw = run_lint("--format=json --jobs=0 " + dirs);
  EXPECT_EQ(serial.exit_code, wide.exit_code);
  EXPECT_EQ(serial.output, wide.output);
  EXPECT_EQ(serial.exit_code, hw.exit_code);
  EXPECT_EQ(serial.output, hw.output);
}

TEST(LintCliTest, DetFamilySelectorCoversAllDetRules) {
  // --only=det (the family prefix) must still trip det-rand-time with the
  // determinism exit bit.
  const std::string dir =
      std::string(IFET_LINT_FIXTURES) + "/det-rand-time/fail";
  const LintRun run = run_lint("--format=json --only=det " + dir);
  EXPECT_EQ(run.exit_code, 16) << run.output;
  EXPECT_NE(run.output.find("\"rule\": \"det-rand-time\""),
            std::string::npos)
      << run.output;
}

TEST(LintCliTest, DetFindingsCarryTheCallChain) {
  // The transitive fixture escapes through an unannotated helper: the
  // finding must name the root and the full chain to it.
  const std::string dir =
      std::string(IFET_LINT_FIXTURES) + "/det-rand-time/fail";
  const LintRun run = run_lint("--format=json --only=det " + dir);
  EXPECT_EQ(run.exit_code, 16) << run.output;
  EXPECT_NE(run.output.find("\"chain\": \""), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find(" -> "), std::string::npos) << run.output;
}

TEST(LintCliTest, UnreadableBaselineExits64) {
  const std::string dir =
      std::string(IFET_LINT_FIXTURES) + "/catch-all/pass";
  EXPECT_EQ(run_lint("--baseline=/no/such/baseline.txt " + dir).exit_code,
            64);
}

TEST(LintCliTest, FindingsCarryTheEnclosingSymbol) {
  const std::string dir =
      std::string(IFET_LINT_FIXTURES) + "/hot-path-throw/fail";
  const LintRun run = run_lint("--format=json --only=hot-path " + dir);
  EXPECT_EQ(run.exit_code, 8) << run.output;
  EXPECT_NE(run.output.find("\"symbol\": \""), std::string::npos)
      << run.output;
}

TEST(LintCliTest, JsonReportsScanCountAndExitCode) {
  const std::string dir =
      std::string(IFET_LINT_FIXTURES) + "/catch-all/pass";
  const LintRun run = run_lint("--format=json " + dir);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_NE(run.output.find("\"files_scanned\": 1"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("\"exit_code\": 0"), std::string::npos)
      << run.output;
}

}  // namespace
