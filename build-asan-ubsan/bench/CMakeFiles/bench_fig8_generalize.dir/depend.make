# Empty dependencies file for bench_fig8_generalize.
# This may be replaced when dependencies are built.
