#include "volume/sequence.hpp"

#include <algorithm>

namespace ifet {

CachedSequence::CachedSequence(std::shared_ptr<const VolumeSource> source,
                               std::size_t cache_capacity, int histogram_bins)
    : source_(std::move(source)),
      capacity_(std::max<std::size_t>(1, cache_capacity)),
      histogram_bins_(histogram_bins) {
  IFET_REQUIRE(source_ != nullptr, "CachedSequence requires a source");
  IFET_REQUIRE(source_->num_steps() > 0, "CachedSequence: empty source");
  IFET_REQUIRE(histogram_bins_ > 0, "CachedSequence: need histogram bins");
}

CachedSequence::Entry& CachedSequence::fetch(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "CachedSequence: step out of range");
  // Serializes cache bookkeeping AND generation: simple and safe; see the
  // class comment for the concurrent-reader sizing contract.
  MutexLock lock(mutex_);
  auto it = cache_.find(step);
  if (it != cache_.end()) {
    lru_.remove(step);
    lru_.push_front(step);
    return it->second;
  }
  // Evict least-recently used entries beyond capacity before inserting.
  while (cache_.size() >= capacity_) {
    int victim = lru_.back();
    lru_.pop_back();
    cache_.erase(victim);
  }
  Entry entry;
  entry.volume = source_->generate(step);
  ++generations_;
  IFET_REQUIRE(entry.volume.dims() == source_->dims(),
               "CachedSequence: source produced wrong dimensions");
  auto [lo, hi] = source_->value_range();
  entry.cumhist = std::make_unique<CumulativeHistogram>(
      Histogram::of(entry.volume, histogram_bins_, lo, hi));
  auto [pos, inserted] = cache_.emplace(step, std::move(entry));
  (void)inserted;
  lru_.push_front(step);
  return pos->second;
}

const VolumeF& CachedSequence::step(int step) const {
  return fetch(step).volume;
}

const CumulativeHistogram& CachedSequence::cumulative_histogram(
    int step) const {
  return *fetch(step).cumhist;
}

Histogram CachedSequence::histogram(int step) const {
  auto [lo, hi] = source_->value_range();
  return Histogram::of(fetch(step).volume, histogram_bins_, lo, hi);
}

std::shared_ptr<const BrickIndex> CachedSequence::brick_index(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "CachedSequence: step out of range");
  {
    MutexLock lock(mutex_);
    auto it = bricks_.find(step);
    if (it != bricks_.end()) return it->second;
  }
  // Ingest-time metadata needs no payload decode; only the fallback pays
  // for the volume. Either way the result is immutable and memoized (a
  // racing builder for the same step just wins-first into the map).
  std::shared_ptr<const BrickIndex> index = source_->brick_metadata(step);
  if (index == nullptr) {
    index = std::make_shared<const BrickIndex>(BrickIndex::build(fetch(step).volume));
  }
  MutexLock lock(mutex_);
  auto [pos, inserted] = bricks_.emplace(step, std::move(index));
  (void)inserted;
  return pos->second;
}

}  // namespace ifet
