#include "nn/training.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace ifet {

void TrainingSet::add(std::vector<double> input, std::vector<double> target) {
  if (!samples_.empty()) {
    IFET_REQUIRE(input.size() == samples_.front().input.size(),
                 "TrainingSet: inconsistent input width");
    IFET_REQUIRE(target.size() == samples_.front().target.size(),
                 "TrainingSet: inconsistent target width");
  }
  samples_.push_back(Sample{std::move(input), std::move(target)});
}

Trainer::Trainer(Mlp& network, BackpropConfig config, std::uint64_t seed)
    : network_(network), config_(config), rng_(seed) {}

double Trainer::run_one_epoch(const TrainingSet& set) {
  if (set.empty()) return 0.0;
  if (order_.size() != set.size()) {
    order_.resize(set.size());
    for (std::size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  }
  // Fisher–Yates shuffle with the trainer's own deterministic stream.
  for (std::size_t i = order_.size(); i > 1; --i) {
    std::swap(order_[i - 1], order_[rng_.uniform_index(i)]);
  }
  double total = 0.0;
  for (std::size_t idx : order_) {
    const Sample& s = set[idx];
    total += network_.train_sample(s.input, s.target, config_);
  }
  ++epochs_run_;
  last_mse_ = total / static_cast<double>(set.size());
  return last_mse_;
}

double Trainer::run_epochs(const TrainingSet& set, int epochs) {
  IFET_REQUIRE(epochs >= 0, "Trainer::run_epochs: negative epoch count");
  double mse = last_mse_;
  for (int e = 0; e < epochs; ++e) mse = run_one_epoch(set);
  return mse;
}

double Trainer::run_for(const TrainingSet& set, double budget_ms,
                        int max_epochs) {
  Stopwatch watch;
  double mse = last_mse_;
  int done = 0;
  while (done < max_epochs) {
    mse = run_one_epoch(set);
    ++done;
    if (watch.milliseconds() >= budget_ms) break;
  }
  return mse;
}

double gradient_check(const Mlp& network, const Sample& sample,
                      double epsilon) {
  // Analytic gradient: replay train_sample on a copy with lr=1, momentum=0;
  // the weight deltas are then exactly -gradient.
  Mlp analytic = network;
  BackpropConfig unit{1.0, 0.0};
  analytic.train_sample(sample.input, sample.target, unit);

  auto loss_of = [&](const Mlp& net) {
    auto out = net.forward(sample.input);
    double e = 0.0;
    for (std::size_t j = 0; j < out.size(); ++j) {
      double d = out[j] - sample.target[j];
      e += d * d;
    }
    // train_sample minimizes 1/2 * sum of squares (delta = err * f').
    return 0.5 * e;
  };

  double max_rel_err = 0.0;
  const auto& w0 = network.weights();
  const auto& w1 = analytic.weights();
  Mlp probe = network;
  for (std::size_t l = 0; l < w0.size(); ++l) {
    for (std::size_t j = 0; j < w0[l].size(); ++j) {
      for (std::size_t i = 0; i < w0[l][j].size(); ++i) {
        double backprop_grad = w0[l][j][i] - w1[l][j][i];
        double& slot = probe.mutable_weights()[l][j][i];
        double saved = slot;
        slot = saved + epsilon;
        double up = loss_of(probe);
        slot = saved - epsilon;
        double down = loss_of(probe);
        slot = saved;
        double numeric_grad = (up - down) / (2.0 * epsilon);
        double scale = std::max({std::fabs(backprop_grad),
                                 std::fabs(numeric_grad), 1e-8});
        max_rel_err = std::max(
            max_rel_err, std::fabs(backprop_grad - numeric_grad) / scale);
      }
    }
  }
  return max_rel_err;
}

}  // namespace ifet
