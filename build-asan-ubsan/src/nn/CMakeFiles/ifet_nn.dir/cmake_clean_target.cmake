file(REMOVE_RECURSE
  "libifet_nn.a"
)
