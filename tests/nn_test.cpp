#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/normalizer.hpp"
#include "nn/training.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

TEST(Mlp, ConstructionValidatesTopology) {
  Rng rng(1);
  EXPECT_THROW(Mlp({3}, rng), Error);
  EXPECT_THROW(Mlp({3, 0, 1}, rng), Error);
  Mlp net({3, 8, 1}, rng);
  EXPECT_EQ(net.num_inputs(), 3);
  EXPECT_EQ(net.num_outputs(), 1);
  // 3*8 + 8 + 8*1 + 1 parameters.
  EXPECT_EQ(net.parameter_count(), 41u);
}

TEST(Mlp, OutputsAreSigmoidBounded) {
  Rng rng(2);
  Mlp net({4, 6, 2}, rng);
  std::vector<double> in{0.1, -5.0, 3.0, 0.7};
  auto out = net.forward(in);
  ASSERT_EQ(out.size(), 2u);
  for (double o : out) {
    EXPECT_GT(o, 0.0);
    EXPECT_LT(o, 1.0);
  }
}

TEST(Mlp, ForwardRejectsWrongWidth) {
  Rng rng(3);
  Mlp net({3, 4, 1}, rng);
  std::vector<double> in{0.1, 0.2};
  EXPECT_THROW(net.forward(in), Error);
}

TEST(Mlp, ForwardScalarRequiresSingleOutput) {
  Rng rng(4);
  Mlp net({2, 4, 2}, rng);
  std::vector<double> in{0.1, 0.2};
  EXPECT_THROW(net.forward_scalar(in), Error);
}

TEST(Mlp, DeterministicForSeed) {
  Rng rng1(9), rng2(9);
  Mlp a({3, 5, 1}, rng1);
  Mlp b({3, 5, 1}, rng2);
  std::vector<double> in{0.3, 0.6, 0.9};
  EXPECT_DOUBLE_EQ(a.forward_scalar(in), b.forward_scalar(in));
}

TEST(Mlp, TrainSampleReducesErrorOnRepeat) {
  Rng rng(5);
  Mlp net({2, 6, 1}, rng);
  std::vector<double> in{0.2, 0.8};
  std::vector<double> target{0.9};
  BackpropConfig cfg{0.5, 0.0};
  double first = net.train_sample(in, target, cfg);
  double last = first;
  for (int i = 0; i < 200; ++i) last = net.train_sample(in, target, cfg);
  EXPECT_LT(last, first * 0.1);
}

// Gradient check across topologies and activations: backprop must agree
// with finite differences (the canonical property test for NN code).
struct GradCase {
  std::vector<int> sizes;
  Activation hidden;
};

class GradientCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradientCheckTest, BackpropMatchesNumericGradient) {
  const auto& param = GetParam();
  Rng rng(17);
  Mlp net(param.sizes, rng, param.hidden);
  Sample sample;
  Rng srng(18);
  for (int i = 0; i < param.sizes.front(); ++i) {
    sample.input.push_back(srng.uniform());
  }
  for (int i = 0; i < param.sizes.back(); ++i) {
    sample.target.push_back(srng.uniform());
  }
  EXPECT_LT(gradient_check(net, sample), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, GradientCheckTest,
    ::testing::Values(GradCase{{2, 4, 1}, Activation::kSigmoid},
                      GradCase{{3, 8, 1}, Activation::kSigmoid},
                      GradCase{{3, 8, 1}, Activation::kTanh},
                      GradCase{{5, 7, 3}, Activation::kSigmoid},
                      GradCase{{4, 6, 5, 2}, Activation::kSigmoid},
                      GradCase{{1, 3, 1}, Activation::kTanh}));

TEST(Trainer, LearnsXor) {
  Rng rng(21);
  Mlp net({2, 8, 1}, rng);
  TrainingSet set;
  set.add({0, 0}, {0});
  set.add({0, 1}, {1});
  set.add({1, 0}, {1});
  set.add({1, 1}, {0});
  Trainer trainer(net, BackpropConfig{0.6, 0.8}, 22);
  trainer.run_epochs(set, 4000);
  EXPECT_LT(net.forward_scalar(std::vector<double>{0.0, 0.0}), 0.2);
  EXPECT_GT(net.forward_scalar(std::vector<double>{0.0, 1.0}), 0.8);
  EXPECT_GT(net.forward_scalar(std::vector<double>{1.0, 0.0}), 0.8);
  EXPECT_LT(net.forward_scalar(std::vector<double>{1.0, 1.0}), 0.2);
}

TEST(Trainer, RunForRespectsEpochCap) {
  Rng rng(23);
  Mlp net({2, 4, 1}, rng);
  TrainingSet set;
  set.add({0.5, 0.5}, {0.5});
  Trainer trainer(net, BackpropConfig{}, 24);
  trainer.run_for(set, 1e9, 5);  // huge budget, capped at 5 epochs
  EXPECT_EQ(trainer.epochs_run(), 5);
}

TEST(Trainer, MseDecreasesOnLearnableProblem) {
  Rng rng(25);
  Mlp net({1, 6, 1}, rng);
  TrainingSet set;
  for (int i = 0; i <= 10; ++i) {
    double x = i / 10.0;
    set.add({x}, {x > 0.5 ? 0.9 : 0.1});
  }
  Trainer trainer(net, BackpropConfig{0.4, 0.7}, 26);
  double early = trainer.run_epochs(set, 5);
  double late = trainer.run_epochs(set, 500);
  EXPECT_LT(late, early);
}

TEST(TrainingSet, RejectsInconsistentWidths) {
  TrainingSet set;
  set.add({1.0, 2.0}, {0.5});
  EXPECT_THROW(set.add({1.0}, {0.5}), Error);
  EXPECT_THROW(set.add({1.0, 2.0}, {0.5, 0.5}), Error);
  EXPECT_EQ(set.input_width(), 2u);
}

TEST(Mlp, SaveLoadRoundTripsExactly) {
  Rng rng(31);
  Mlp net({3, 7, 2}, rng, Activation::kTanh);
  // Perturb with some training so weights are not just initialization.
  BackpropConfig cfg{0.3, 0.5};
  std::vector<double> in{0.1, 0.5, 0.9};
  std::vector<double> tgt{0.2, 0.7};
  for (int i = 0; i < 50; ++i) net.train_sample(in, tgt, cfg);

  std::stringstream stream;
  net.save(stream);
  Mlp loaded = Mlp::load(stream);
  EXPECT_EQ(loaded.layer_sizes(), net.layer_sizes());
  EXPECT_EQ(loaded.hidden_activation(), net.hidden_activation());
  auto a = net.forward(in);
  auto b = loaded.forward(in);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(Mlp, LoadRejectsGarbage) {
  std::stringstream bad("not-a-network 1\n");
  EXPECT_THROW(Mlp::load(bad), Error);
}

TEST(Mlp, ResizedInputsTransfersSurvivingWeights) {
  Rng rng(41);
  Mlp net({3, 5, 1}, rng);
  // Map: new input 0 <- old input 2, new input 1 <- old input 0.
  Rng rng2(42);
  Mlp small = net.resized_inputs({2, 0}, rng2);
  EXPECT_EQ(small.num_inputs(), 2);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_DOUBLE_EQ(small.weights()[0][j][0], net.weights()[0][j][2]);
    EXPECT_DOUBLE_EQ(small.weights()[0][j][1], net.weights()[0][j][0]);
  }
  // Deeper layers copied verbatim.
  EXPECT_EQ(small.weights()[1], net.weights()[1]);
  EXPECT_EQ(small.biases()[1], net.biases()[1]);
}

TEST(Mlp, ResizedInputsEquivalentWhenDroppedInputWasIgnorable) {
  // If the dropped input fed only zero weights, the resized network must
  // produce identical outputs on the surviving inputs.
  Rng rng(43);
  Mlp net({2, 4, 1}, rng);
  for (std::size_t j = 0; j < 4; ++j) net.mutable_weights()[0][j][1] = 0.0;
  Rng rng2(44);
  Mlp one = net.resized_inputs({0}, rng2);
  std::vector<double> full{0.37, 0.99};
  std::vector<double> kept{0.37};
  EXPECT_NEAR(one.forward_scalar(kept), net.forward_scalar(full), 1e-12);
}

TEST(Mlp, ResizedInputsValidatesMapping) {
  Rng rng(45);
  Mlp net({2, 3, 1}, rng);
  EXPECT_THROW(net.resized_inputs({5}, rng), Error);
  EXPECT_THROW(net.resized_inputs({}, rng), Error);
}

TEST(Mlp, EvaluateMseMatchesManualComputation) {
  Rng rng(46);
  Mlp net({1, 3, 1}, rng);
  std::vector<std::vector<double>> ins{{0.2}, {0.8}};
  std::vector<std::vector<double>> tgts{{0.0}, {1.0}};
  double mse = net.evaluate_mse(ins, tgts);
  double manual = 0.0;
  for (int s = 0; s < 2; ++s) {
    double o = net.forward_scalar(ins[static_cast<size_t>(s)]);
    double e = o - tgts[static_cast<size_t>(s)][0];
    manual += e * e;
  }
  manual /= 2.0;
  EXPECT_NEAR(mse, manual, 1e-12);
}

TEST(InputNormalizer, MapsKnownRanges) {
  InputNormalizer norm({0.0, -1.0}, {10.0, 1.0});
  auto out = norm.apply(std::vector<double>{5.0, 0.0});
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  auto clamped = norm.apply(std::vector<double>{-5.0, 9.0});
  EXPECT_DOUBLE_EQ(clamped[0], 0.0);
  EXPECT_DOUBLE_EQ(clamped[1], 1.0);
}

TEST(InputNormalizer, FitLearnsRanges) {
  std::vector<std::vector<double>> inputs{{1.0, 5.0}, {3.0, 5.0}, {2.0, 5.0}};
  InputNormalizer norm = InputNormalizer::fit(inputs);
  auto out = norm.apply(std::vector<double>{2.0, 5.0});
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.5);  // degenerate feature maps to center
}

TEST(InputNormalizer, WidthMismatchThrows) {
  InputNormalizer norm({0.0}, {1.0});
  EXPECT_THROW(norm.apply(std::vector<double>{1.0, 2.0}), Error);
}

}  // namespace
}  // namespace ifet
