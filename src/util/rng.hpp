// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (weight initialization, training
// sample shuffling, procedural data generators) takes an explicit seed so
// experiments are exactly reproducible run to run. We implement
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64; both are tiny,
// fast, and have well-understood statistical quality — and unlike
// std::mt19937 the stream for a given seed is fixed by this header rather
// than by the standard library vendor.
#pragma once

#include <cstdint>

namespace ifet {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234abcdULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached pair).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Split off an independent generator (for per-thread streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ifet
