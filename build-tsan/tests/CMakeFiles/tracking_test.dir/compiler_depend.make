# Empty compiler generated dependencies file for tracking_test.
# This may be replaced when dependencies are built.
