// The process-wide shared streaming tier of the multi-tenant server.
//
// One StreamTier serves every client session (docs/SERVER.md): a single
// VolumeStore + CacheManager own the byte budget and the disk choke
// point, a single DerivedCache memoizes histograms / cumulative
// histograms / synthesized transfer functions keyed by (step, params
// hash) — so two clients at the same training state deduplicate each
// other's work — and the AdmissionController meters how much of the
// shared cache each client may pin.
//
// The store is always configured with FailPolicy::kSkipStep. That is the
// MECHANISM level: a quarantined step answers nullptr and never throws
// past the retry machinery, so the tier itself takes no position on what
// a missing step means. POLICY is per client: each ClientSequenceView
// applies its own FailPolicy on top (throw / skip / nearest-good), which
// is how one client choosing `skip` can never alter another client's
// `nearest-good` view of the same quarantined step.
#pragma once

#include <cstdint>
#include <memory>

#include "server/admission.hpp"
#include "server/pressure.hpp"
#include "stream/derived_cache.hpp"
#include "stream/stream_stats.hpp"
#include "stream/volume_store.hpp"

namespace ifet {

struct StreamTierConfig {
  /// Byte budget of the shared cache; 0 = unlimited (fully resident).
  std::size_t budget_bytes = 0;
  /// Per-client pinned-bytes ceiling; 0 = unlimited. Sized so that
  /// N * pin_quota_bytes <= budget_bytes leaves eviction headroom.
  std::size_t pin_quota_bytes = 0;
  /// Steps prefetched ahead of each fetch in the scan direction.
  int lookahead = 2;
  /// Overlap prefetch decode with compute on the shared thread pool.
  bool async_prefetch = true;
  int max_retries = 2;
  double retry_backoff_ms = 0.0;
  int histogram_bins = 256;
  /// Memory-pressure renegotiation (server/pressure.hpp); disabled by
  /// default — enabling it changes residency shape, never bytes.
  PressureConfig pressure;
};

class StreamTier {
 public:
  explicit StreamTier(std::shared_ptr<const VolumeSource> source,
                      const StreamTierConfig& config = {});

  StreamTier(const StreamTier&) = delete;
  StreamTier& operator=(const StreamTier&) = delete;

  Dims dims() const { return store_->dims(); }
  int num_steps() const { return store_->num_steps(); }
  std::pair<double, double> value_range() const {
    return store_->value_range();
  }
  int histogram_bins() const { return config_.histogram_bins; }
  const StreamTierConfig& config() const { return config_; }

  /// Decoded payload bytes of one step (uniform across the sequence).
  std::size_t step_bytes() const;

  VolumeStore& store() { return *store_; }
  const VolumeStore& store() const { return *store_; }
  DerivedCache& derived() { return derived_; }
  AdmissionController& admission() { return admission_; }
  PressureMonitor& pressure() { return *pressure_; }

  /// One pressure check + any indicated transition; the SessionManager
  /// drain loop calls this after every command (cheap no-op when the
  /// monitor is disabled or the state is steady).
  void poll_pressure() { pressure_->poll(); }

  /// Process-wide concurrently-mutable aggregate of the per-view access
  /// counters (the per-client views each keep their own SharedStreamStats).
  SharedStreamStats& aggregate() { return aggregate_; }

  /// Params hash of the tier's histogram products — shared by every
  /// client (bins and value range are tier-global), hence the one hash
  /// the SessionManager must never retire from the DerivedCache.
  std::uint64_t hist_params() const { return hist_params_; }

  /// Combined store + derived counter snapshot (process-wide view).
  StreamStats stats() const;

 private:
  StreamTierConfig config_;
  std::unique_ptr<VolumeStore> store_;
  DerivedCache derived_;
  AdmissionController admission_;
  SharedStreamStats aggregate_;
  std::uint64_t hist_params_ = 0;
  /// Constructed last (needs hist_params_ and references every sibling);
  /// unique_ptr because the monitor is immovable and hist_params_ is only
  /// known after the store opens.
  std::unique_ptr<PressureMonitor> pressure_;
};

}  // namespace ifet
