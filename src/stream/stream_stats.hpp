// Counters surfaced by the out-of-core streaming subsystem.
//
// Every layer of src/stream/ feeds one shared StreamStats snapshot so a
// single struct answers "is the budget sized right, is prefetch hiding the
// decode latency, and how much is resident right now". ifet_tool prints
// the summary() line after streamed runs; bench_perf_stream reports the
// fields as benchmark counters. docs/STREAMING.md explains how to read
// each field.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ifet {

struct StreamStats {
  // Cache traffic.
  std::uint64_t hits = 0;        ///< Accesses served from resident entries.
  std::uint64_t misses = 0;      ///< Accesses that required a load (demand
                                 ///< or waiting on an in-flight prefetch).
  std::uint64_t inserts = 0;     ///< Entries admitted into the cache.
  std::uint64_t evictions = 0;   ///< Entries dropped to respect the budget.

  // Prefetch effectiveness.
  std::uint64_t prefetch_issued = 0;  ///< Async loads scheduled.
  std::uint64_t prefetch_hits = 0;    ///< Misses covered by a prefetch
                                      ///< (completed or awaited in flight).
  std::uint64_t demand_loads = 0;     ///< Misses the caller decoded itself.

  // Derived-product memoization (histograms, cumulative histograms,
  // synthesized transfer functions).
  std::uint64_t derived_hits = 0;
  std::uint64_t derived_misses = 0;

  // Residency (bytes of decoded volume payload).
  std::size_t budget_bytes = 0;         ///< 0 = unlimited.
  std::size_t bytes_resident = 0;
  std::size_t peak_bytes_resident = 0;
  std::size_t steps_resident = 0;
  std::size_t pinned_steps = 0;

  // Decode latency (seconds spent in VolumeSource::generate / decompress).
  double demand_decode_seconds = 0.0;
  double prefetch_decode_seconds = 0.0;

  // Robustness (docs/ROBUSTNESS.md).
  std::uint64_t retries = 0;            ///< Load attempts repeated after a
                                        ///< retryable IoError.
  std::uint64_t load_failures = 0;      ///< Loads that exhausted retries
                                        ///< (each quarantines its step).
  std::uint64_t prefetch_failures = 0;  ///< Async loads whose error was
                                        ///< captured for the next fetch.
  std::uint64_t checksum_verified = 0;    ///< Payloads with a matching CRC.
  std::uint64_t checksum_unverified = 0;  ///< Legacy checksum-less payloads.
  std::uint64_t checksum_failures = 0;    ///< CRC mismatches observed.
  std::size_t quarantined_steps = 0;      ///< Steps currently quarantined.
  std::uint64_t skipped_fetches = 0;    ///< Quarantined fetches answered with
                                        ///< "no data" (FailPolicy::kSkipStep).
  std::uint64_t nearest_good_substitutions = 0;  ///< Quarantined fetches
                                        ///< served by a healthy neighbour.

  // Overload resilience (docs/ROBUSTNESS.md, "Overload and deadlines").
  std::uint64_t commands_rejected = 0;  ///< Submits refused at a full strand
                                        ///< queue (typed Overloaded).
  std::uint64_t commands_shed = 0;      ///< Queued sheddable commands dropped
                                        ///< to admit newer work (kShedOldest).
  std::uint64_t deadline_exceeded = 0;  ///< Commands that ran out of budget
                                        ///< (typed DeadlineExceeded).
  std::uint64_t pressure_transitions = 0;  ///< PressureMonitor enter+exit
                                           ///< transitions applied.

  /// Fraction of accesses served without any load.
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }

  /// Fraction of non-resident accesses that a prefetch covered — the
  /// headline "is lookahead working" number (acceptance target >= 0.5 for
  /// a sequential scan with lookahead >= 2).
  double prefetch_hit_rate() const {
    const std::uint64_t loads = prefetch_hits + demand_loads;
    return loads == 0 ? 0.0
                      : static_cast<double>(prefetch_hits) /
                            static_cast<double>(loads);
  }

  /// One-line human-readable summary (ifet_tool).
  std::string summary() const;

  /// Merge counters from another snapshot (residency fields take the
  /// other's values only when nonzero; used to combine cache + derived
  /// layers into one report).
  StreamStats& merge(const StreamStats& other);
};

/// Concurrently-mutable StreamStats counters for the multi-session server
/// tier (docs/SERVER.md).
///
/// The per-layer StreamStats snapshots above are copied under their owning
/// class's mutex, which is correct but gives every reader a lock
/// dependency on every writer. The server keeps one SharedStreamStats per
/// client session plus one process-wide aggregate, and command threads
/// bump them lock-free: every counter is an independent relaxed atomic, so
/// readers calling snapshot() (and summary(), which is snapshot-based)
/// never observe a torn half-written counter no matter how many server
/// threads are mutating concurrently. Counters are monotonic totals;
/// cross-counter exactness (hits+misses == accesses at one instant) is
/// deliberately not promised — each field is exact, the set is a snapshot
/// of independently-advancing totals.
class SharedStreamStats {
 public:
  SharedStreamStats() = default;
  SharedStreamStats(const SharedStreamStats&) = delete;
  SharedStreamStats& operator=(const SharedStreamStats&) = delete;

  /// One sequence access: resident (hit) or loaded/awaited (miss).
  void count_access(bool hit) {
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  }
  /// One derived-product request: memoized (hit) or computed (miss).
  void count_derived(bool hit) {
    (hit ? derived_hits_ : derived_misses_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  /// Quarantined fetch answered with "no data" (FailPolicy::kSkipStep).
  void count_skipped_fetch() {
    skipped_fetches_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Quarantined fetch served by a healthy neighbour (kNearestGood).
  void count_substitution() {
    nearest_good_substitutions_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Submit refused at a full strand queue (typed Overloaded response).
  void count_rejected() {
    commands_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Queued sheddable command dropped to admit newer work (kShedOldest).
  void count_shed() {
    commands_shed_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Command failed with the typed DeadlineExceeded.
  void count_deadline_exceeded() {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One pressure enter or exit transition applied (process aggregate).
  void count_pressure_transition() {
    pressure_transitions_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Fold a whole counter delta in (e.g. re-publishing a per-layer
  /// snapshot difference into the aggregate).
  void add(const StreamStats& delta);

  /// Consistent value-copy of the counters; safe to call while any number
  /// of server threads mutate.
  StreamStats snapshot() const;

  /// Snapshot-based one-liner: never reads a live counter twice.
  std::string summary() const { return snapshot().summary(); }

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> derived_hits_{0};
  std::atomic<std::uint64_t> derived_misses_{0};
  std::atomic<std::uint64_t> skipped_fetches_{0};
  std::atomic<std::uint64_t> nearest_good_substitutions_{0};
  std::atomic<std::uint64_t> commands_rejected_{0};
  std::atomic<std::uint64_t> commands_shed_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> pressure_transitions_{0};
};

}  // namespace ifet
