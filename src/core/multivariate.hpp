// Multivariate data-space classification.
//
// The paper's conclusion singles this capability out: "that the system can
// take multivariate data as input opens a new dimension for scientific
// discovery" (Sec 8), and Sec 4 lists "the relationship between two or
// more variables" among the properties features may be defined by —
// without the scientist ever specifying that relationship explicitly
// (Sec 1). The DNS combustion data the paper uses carries "multiple
// variables" per step.
//
// A MultivariateClassifier consumes several aligned scalar fields per time
// step; its feature vector concatenates each variable's value (and shell
// neighborhood) with the shared position/time components, and the network
// learns joint conditions like "high vorticity AND fuel present" that no
// single-variable classifier or transfer function can express.
#pragma once

#include <vector>

#include "core/dataspace.hpp"  // PaintedVoxel
#include "core/feature_vector.hpp"
#include "nn/flat_mlp.hpp"
#include "nn/mlp.hpp"
#include "nn/training.hpp"
#include "volume/volume.hpp"

namespace ifet {

struct MultivariateSpec {
  int num_variables = 2;
  bool use_value = true;     ///< Per variable.
  bool use_shell = true;     ///< Per variable.
  double shell_radius = 3.0;
  int shell_samples = 6;
  bool use_position = true;  ///< Shared across variables.
  bool use_time = true;      ///< Shared across variables.

  int width() const;
};

/// One time step's aligned variables plus their normalization ranges.
struct MultiFeatureContext {
  std::vector<const VolumeF*> variables;
  std::vector<std::pair<double, double>> ranges;  ///< Per-variable lo/hi.
  int step = 0;
  int num_steps = 1;
};

/// Assemble the normalized multivariate feature vector of voxel (i, j, k).
std::vector<double> assemble_multivariate_vector(
    const MultivariateSpec& spec, const MultiFeatureContext& context, int i,
    int j, int k);

/// Batched multivariate feature assembly — FeatureBlockAssembler's
/// multivariate sibling. Construction hoists the shell-direction table and
/// the per-variable normalization lo/span out of the voxel loop; each row
/// written by assemble_feature_block is bitwise identical to
/// assemble_multivariate_vector for the same voxel. Borrows the context's
/// volumes; they must outlive the assembler. Const and thread-sharable.
class MultivariateBlockAssembler {
 public:
  MultivariateBlockAssembler(const MultivariateSpec& spec,
                             const MultiFeatureContext& context);

  int width() const { return width_; }

  /// Assemble `count` voxels into `out`, a count x width() row-major block.
  void assemble_feature_block(const Index3* voxels, int count,
                              double* out) const;

 private:
  MultivariateSpec spec_;
  MultiFeatureContext context_;
  std::vector<Vec3> shell_dirs_;       ///< hoisted quantized shell offsets
  std::vector<double> lo_, span_;      ///< per-variable normalization
  int width_ = 0;
  double den_x_ = 1.0, den_y_ = 1.0, den_z_ = 1.0;
  double time_value_ = 0.0;
};

struct MultivariateConfig {
  MultivariateSpec spec;
  int hidden_units = 14;
  BackpropConfig backprop{0.3, 0.7};
  std::uint64_t seed = 24680;
};

class MultivariateClassifier {
 public:
  /// `ranges[v]` is variable v's global value range across the sequence.
  MultivariateClassifier(int num_steps,
                         std::vector<std::pair<double, double>> ranges,
                         const MultivariateConfig& config = {});

  const MultivariateSpec& spec() const { return config_.spec; }

  /// Add painted voxels; `variables` are the step's aligned fields.
  void add_samples(const std::vector<const VolumeF*>& variables, int step,
                   const std::vector<PaintedVoxel>& painted);

  double train(int epochs);
  std::size_t training_samples() const { return training_set_.size(); }

  double classify_voxel(const std::vector<const VolumeF*>& variables,
                        int step, int i, int j, int k) const;

  /// Per-voxel certainty volume (thread-parallel).
  VolumeF classify(const std::vector<const VolumeF*>& variables,
                   int step) const;

  Mask classify_mask(const std::vector<const VolumeF*>& variables, int step,
                     double cut = 0.5) const;

 private:
  MultiFeatureContext context_for(
      const std::vector<const VolumeF*>& variables, int step) const;

  MultivariateConfig config_;
  int num_steps_;
  std::vector<std::pair<double, double>> ranges_;
  Mlp network_;
  TrainingSet training_set_;
  Trainer trainer_;
  // Flat inference engine rebuilt from network_ on weight change.
  FlatMlpCache flat_cache_;
};

}  // namespace ifet
