// Compressed volume storage and out-of-core streaming.
//
// Paper Sec 7 names the next bottleneck: "one potential bottleneck for
// large data sets is the need to transmit data between the disk and the
// video memory. We will explore this option [fast data decompression] in
// the future." This module is that exploration: volumes are quantized to
// 8 or 16 bits (the paper's renderer samples 8-bit 3D textures anyway) and
// run-length encoded — flow fields are smooth, so RLE on quantized bytes
// bites. A CompressedSequenceFile stores a whole time series with a random-
// access index; CompressedFileSource plugs it into VolumeSequence as a
// disk-backed out-of-core source, so the LRU cache streams decoded steps
// on demand.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "volume/sequence.hpp"
#include "volume/volume.hpp"

namespace ifet {

/// Quantization width for compressed payloads.
enum class QuantBits : std::uint8_t { k8 = 8, k16 = 16 };

/// An encoded volume: quantization range + RLE payload.
struct CompressedVolume {
  Dims dims{};
  QuantBits bits = QuantBits::k8;
  float value_lo = 0.0f;
  float value_hi = 0.0f;
  std::vector<std::uint8_t> payload;  ///< RLE stream of quantized samples.

  /// Encoded bytes (payload + fixed header fields).
  std::size_t byte_size() const { return payload.size() + 24; }
  /// Raw float32 bytes of the same volume.
  std::size_t raw_bytes() const { return dims.count() * sizeof(float); }
  double compression_ratio() const {
    return static_cast<double>(raw_bytes()) /
           static_cast<double>(byte_size());
  }
};

/// Quantize + RLE-encode. Reconstruction error is bounded by half a
/// quantization step: (hi-lo) / (2^bits - 1) / 2.
CompressedVolume compress_volume(const VolumeF& volume,
                                 QuantBits bits = QuantBits::k8);

/// Decode back to float32.
VolumeF decompress_volume(const CompressedVolume& compressed);

/// Maximum absolute reconstruction error guaranteed by the quantization.
double quantization_error_bound(const CompressedVolume& compressed);

/// Multi-step compressed container with a random-access index.
///
/// v2 layout ("ifet-cseq2"): text header line (now carrying the brick
/// size), 32-byte index entries (payload offset/size + brick-record
/// offset/size per step), then per-step payload records interleaved with
/// brick records. A brick record is the step's serialized BrickIndex
/// (built from the *decoded* reconstruction, so ranges stay valid under
/// quantization) followed by a CRC32 — the renderer's empty-space-skip
/// metadata, readable without decoding the payload.
///
/// v1 layout ("ifet-cseq", written with brick_size = 0): text header,
/// 16-byte index entries, payload records only. Readers accept both;
/// v1 files report "no brick metadata" and consumers rebuild it lazily.
/// Each per-step frame carries a trailing CRC32 (verified on read; legacy
/// checksum-less frames still load, counted as unverified — see
/// io/checksum.hpp and docs/ROBUSTNESS.md).
class CompressedSequenceWriter {
 public:
  /// `num_steps` payloads must then be appended in order.
  /// `with_checksum = false` writes legacy checksum-less frames (tests pin
  /// the backward-compatibility path with it). `brick_size = 0` writes the
  /// legacy v1 container without brick metadata.
  CompressedSequenceWriter(const std::string& path, Dims dims, int num_steps,
                           std::pair<double, double> value_range,
                           bool with_checksum = true,
                           int brick_size = BrickIndex::kDefaultBrickSize);
  ~CompressedSequenceWriter();

  void append(const CompressedVolume& volume);

  /// Steps appended so far.
  int steps_written() const { return steps_written_; }
  /// Finalize the index; called automatically by the destructor.
  void close();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int steps_written_ = 0;
};

/// Disk-backed VolumeSource decoding steps on demand.
class CompressedFileSource final : public VolumeSource {
 public:
  explicit CompressedFileSource(const std::string& path);

  Dims dims() const override { return dims_; }
  int num_steps() const override { return num_steps_; }
  std::pair<double, double> value_range() const override { return range_; }
  VolumeF generate(int step) const override;

  /// Ingest-time brick metadata from the v2 brick section: a seek + read
  /// + CRC check of the small brick record only — the compressed payload
  /// is never touched. Returns nullptr for v1 files (no brick section).
  std::shared_ptr<const BrickIndex> brick_metadata(int step) const override;

  /// Brick edge carried by the container header; 0 for legacy v1 files.
  int container_brick_size() const { return brick_size_; }

  /// Total compressed payload bytes (for the I/O accounting bench).
  std::size_t total_payload_bytes() const;

 private:
  std::string path_;
  Dims dims_{};
  int num_steps_ = 0;
  int brick_size_ = 0;  // 0 = v1 container, no brick section
  std::pair<double, double> range_{0.0, 1.0};
  struct IndexEntry {
    std::uint64_t offset;
    std::uint64_t size;
    std::uint64_t brick_offset;  // 0 when absent (v1)
    std::uint64_t brick_size;    // bytes incl. CRC; 0 when absent (v1)
  };
  std::vector<IndexEntry> index_;
};

/// Convenience: compress every step of `source` into `path`.
/// `brick_size = 0` writes the legacy v1 container without brick metadata.
void write_compressed_sequence(const VolumeSource& source,
                               const std::string& path,
                               QuantBits bits = QuantBits::k8,
                               bool with_checksum = true,
                               int brick_size = BrickIndex::kDefaultBrickSize);

}  // namespace ifet
