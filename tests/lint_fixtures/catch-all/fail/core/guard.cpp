// Fixture (should FAIL): catch (...) hides corruption from sanitizers.
int guarded(int (*f)()) {
  try {
    return f();
  } catch (...) {
    return -1;
  }
}
