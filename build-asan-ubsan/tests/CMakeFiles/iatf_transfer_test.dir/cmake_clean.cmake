file(REMOVE_RECURSE
  "CMakeFiles/iatf_transfer_test.dir/iatf_transfer_test.cpp.o"
  "CMakeFiles/iatf_transfer_test.dir/iatf_transfer_test.cpp.o.d"
  "iatf_transfer_test"
  "iatf_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iatf_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
