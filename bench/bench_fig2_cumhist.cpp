// Figure 2 reproduction: histograms vs cumulative histograms of the argon
// bubble data set at t = 200, 250, 300.
//
// Paper claim: "A feature's data value and histogram can change over time,
// however, the cumulative histogram value remains similar." We locate the
// ring's value band analytically per step and report (a) the raw band
// center, which drifts substantially, and (b) its cumulative-histogram
// coordinate, which stays nearly constant.
#include <iostream>

#include "bench_util.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "volume/histogram.hpp"

int main() {
  using namespace ifet;
  std::cout << "=== Fig 2: histogram vs cumulative histogram stability "
               "(argon bubble) ===\n";

  ArgonBubbleConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 360;
  auto source = std::make_shared<ArgonBubbleSource>(cfg);
  CachedSequence seq(source, 4, 256);

  const int steps[] = {200, 250, 300};
  Table table({"t", "ring_value_center", "ring_cumhist", "hist_peak_bin",
               "hist_peak_value"});
  CsvWriter csv(bench::output_dir() + "/fig2_cumhist.csv",
                {"t", "ring_value_center", "ring_cumhist", "hist_peak_value"});

  double values[3], fractions[3];
  int idx = 0;
  for (int t : steps) {
    const double center = source->ring_band_center(t);
    const CumulativeHistogram& ch = seq.cumulative_histogram(t);
    const double fraction = ch.fraction_at(center);

    // The feature peak in the plain histogram: search near the ring band.
    Histogram hist = seq.histogram(t);
    int lo_bin = hist.bin_of(center - source->ring_band_half_width());
    int hi_bin = hist.bin_of(center + source->ring_band_half_width());
    int peak = hist.peak_bin(lo_bin, hi_bin);

    values[idx] = center;
    fractions[idx] = fraction;
    ++idx;
    table.add_row({std::to_string(t), Table::num(center, 4),
                   Table::num(fraction, 4), std::to_string(peak),
                   Table::num(hist.bin_center(peak), 4)});
    csv.row(t, center, fraction, hist.bin_center(peak));
  }
  table.print(std::cout);

  const double value_drift =
      std::max({values[0], values[1], values[2]}) -
      std::min({values[0], values[1], values[2]});
  const double fraction_drift =
      std::max({fractions[0], fractions[1], fractions[2]}) -
      std::min({fractions[0], fractions[1], fractions[2]});

  std::cout << "\nraw value drift over t=200..300:      " << value_drift
            << "\ncumulative coordinate drift:          " << fraction_drift
            << "\n\n";

  bench::ShapeCheck check;
  check.expect(value_drift > 0.05,
               "feature's raw value band moves substantially over time");
  check.expect(fraction_drift < 0.1,
               "feature's cumulative-histogram coordinate stays similar");
  check.expect(fraction_drift < value_drift * 0.5,
               "cumulative coordinate is far more stable than raw value");
  return check.exit_code();
}
