// Tracking-method comparison: the paper's 4D region growing (Sec 5)
// against the cited prediction–verification scheme (Reinders et al.) and
// octree-compressed mask storage (Silver & Wang), all on the Fig 9
// turbulent-vortex sequence.
//
// What should hold: both methods follow the feature while it exists;
// region growing absorbs the split into its voxel set (two components
// afterwards) whereas prediction-verification follows a single component
// and can only *flag* the split; region growing pays the 4D voxel cost but
// returns exact voxel sets, whose octree form is a fraction of the dense
// bytes.
#include <iostream>

#include "bench_util.hpp"
#include "core/predictive_tracker.hpp"
#include "core/track_events.hpp"
#include "core/tracking.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "volume/octree.hpp"

int main() {
  using namespace ifet;
  std::cout << "=== Tracking methods: 4D region growing vs "
               "prediction-verification ===\n";

  TurbulentVortexConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 25;
  cfg.split_step = 18;
  auto source = std::make_shared<TurbulentVortexSource>(cfg);
  CachedSequence seq(source, 26);  // hold everything: time both fairly
  FixedRangeCriterion criterion(0.48, 1.0);
  Vec3 c = source->lobe_centers(0)[0];
  Index3 seed{static_cast<int>(c.x * 48), static_cast<int>(c.y * 48),
              static_cast<int>(c.z * 48)};
  // Warm the sequence cache so neither method pays generation cost.
  for (int s = 0; s < cfg.num_steps; ++s) seq.step(s);

  Stopwatch rg_watch;
  Tracker region_tracker(seq, criterion);
  TrackResult region_track = region_tracker.track(seed, 0);
  double rg_seconds = rg_watch.seconds();
  FeatureHistory history = build_feature_history(region_track);

  Stopwatch pv_watch;
  PredictiveTrackerConfig pv_config;
  pv_config.centroid_tolerance = 10.0;
  PredictiveTracker predictive_tracker(seq, criterion, pv_config);
  PredictiveTrack predictive_track =
      predictive_tracker.track(seed, 0, cfg.num_steps - 1);
  double pv_seconds = pv_watch.seconds();

  // Octree storage of the region-growing result.
  std::size_t dense_bytes = 0, octree_bytes = 0, overlap_checked = 0;
  const MaskOctree* previous = nullptr;
  std::vector<MaskOctree> trees;
  trees.reserve(region_track.masks.size());
  for (const auto& [step, mask] : region_track.masks) {
    trees.emplace_back(mask);
    dense_bytes += trees.back().dense_bytes();
    octree_bytes += trees.back().memory_bytes();
    if (previous != nullptr) {
      overlap_checked += MaskOctree::overlap(*previous, trees.back());
    }
    previous = &trees.back();
  }

  Table table({"metric", "region-growing", "prediction-verification"});
  CsvWriter csv(bench::output_dir() + "/tracking_methods.csv",
                {"metric", "region_growing", "predictive"});
  auto row = [&](const std::string& metric, const std::string& a,
                 const std::string& b) {
    table.add_row({metric, a, b});
    csv.row(metric, a, b);
  };
  int rg_steps = static_cast<int>(region_track.masks.size());
  int pv_steps = static_cast<int>(predictive_track.steps.size());
  row("steps tracked", std::to_string(rg_steps), std::to_string(pv_steps));
  row("wall seconds", Table::num(rg_seconds, 3), Table::num(pv_seconds, 3));
  row("components after split",
      std::to_string(history.component_count(cfg.num_steps - 1)),
      "1 (follows one)");
  row("split handling",
      history.events_of(EventType::kSplit).size() == 1 ? "event detected"
                                                       : "MISSED",
      predictive_track.ambiguous_steps().empty() ? "not flagged"
                                                 : "ambiguity flagged");
  row("voxel-exact masks", "yes", "no (attributes only)");
  table.print(std::cout);

  std::cout << "\nmask storage (region growing): dense " << dense_bytes
            << " B vs octree " << octree_bytes << " B ("
            << Table::num(100.0 * octree_bytes / dense_bytes, 1)
            << "% of dense; cross-step overlap computed on octrees: "
            << overlap_checked << " voxels)\n\n";

  bench::ShapeCheck check;
  check.expect(rg_steps == cfg.num_steps,
               "region growing tracks every step");
  check.expect(predictive_track.reached_end(cfg.num_steps - 1) ||
                   predictive_track.lost_at >= cfg.split_step,
               "prediction-verification follows the feature at least until "
               "the split");
  check.expect(history.component_count(cfg.num_steps - 1) == 2,
               "region growing captures both post-split lobes");
  check.expect(octree_bytes < dense_bytes / 5,
               "octree storage is a small fraction of dense masks "
               "(Silver-Wang)");
  return check.exit_code();
}
