#include "volume/components.hpp"

#include <algorithm>
#include <deque>

#include "util/hot_path.hpp"

namespace ifet {

const ComponentInfo& Labeling::info(std::int32_t label) const {
  for (const auto& c : components) {
    if (c.label == label) return c;
  }
  throw Error("Labeling::info: unknown label " + std::to_string(label));
}

Mask Labeling::component_mask(std::int32_t label) const {
  Mask out(labels.dims());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out[i] = labels[i] == label ? 1 : 0;
  }
  return out;
}

IFET_DETERMINISTIC Labeling label_components(const Mask& mask,
                                             const VolumeF* values) {
  if (values != nullptr) {
    IFET_REQUIRE(values->dims() == mask.dims(),
                 "label_components: value volume dimension mismatch");
  }
  const Dims d = mask.dims();
  Labeling result;
  result.labels = Volume<std::int32_t>(d, 0);

  static constexpr int kNeighborhood[6][3] = {{1, 0, 0},  {-1, 0, 0},
                                              {0, 1, 0},  {0, -1, 0},
                                              {0, 0, 1},  {0, 0, -1}};
  std::int32_t next_label = 1;
  std::deque<Index3> frontier;

  for (std::size_t start = 0; start < mask.size(); ++start) {
    if (mask[start] == 0 || result.labels[start] != 0) continue;
    const std::int32_t label = next_label++;
    ComponentInfo info;
    info.label = label;
    Index3 seed = mask.coord_of(start);
    info.bbox_min = seed;
    info.bbox_max = seed;

    result.labels[start] = label;
    frontier.clear();
    frontier.push_back(seed);
    double cx = 0.0, cy = 0.0, cz = 0.0;
    while (!frontier.empty()) {
      Index3 p = frontier.front();
      frontier.pop_front();
      // Frontier bookkeeping invariants: every queued voxel is in bounds,
      // set in the input mask, and was claimed for this component when it
      // was enqueued (so no voxel is ever counted twice).
      IFET_DEBUG_ASSERT(d.contains(p), "label_components: frontier voxel "
                                       "out of bounds");
      IFET_DEBUG_ASSERT(mask[mask.linear_index(p.x, p.y, p.z)] != 0,
                        "label_components: frontier voxel not in mask");
      IFET_DEBUG_ASSERT(
          result.labels[mask.linear_index(p.x, p.y, p.z)] == label,
          "label_components: frontier voxel not claimed by this component");
      ++info.voxel_count;
      cx += p.x;
      cy += p.y;
      cz += p.z;
      info.bbox_min.x = std::min(info.bbox_min.x, p.x);
      info.bbox_min.y = std::min(info.bbox_min.y, p.y);
      info.bbox_min.z = std::min(info.bbox_min.z, p.z);
      info.bbox_max.x = std::max(info.bbox_max.x, p.x);
      info.bbox_max.y = std::max(info.bbox_max.y, p.y);
      info.bbox_max.z = std::max(info.bbox_max.z, p.z);
      if (values != nullptr) {
        info.value_sum += (*values)[values->linear_index(p.x, p.y, p.z)];
      }
      for (const auto& n : kNeighborhood) {
        Index3 q{p.x + n[0], p.y + n[1], p.z + n[2]};
        if (!d.contains(q)) continue;
        std::size_t qi = mask.linear_index(q.x, q.y, q.z);
        if (mask[qi] == 0 || result.labels[qi] != 0) continue;
        result.labels[qi] = label;
        frontier.push_back(q);
      }
    }
    double n = static_cast<double>(info.voxel_count);
    IFET_DEBUG_ASSERT(info.voxel_count > 0,
                      "label_components: component with no voxels");
    info.centroid = Vec3{cx / n, cy / n, cz / n};
    result.components.push_back(info);
  }

  std::sort(result.components.begin(), result.components.end(),
            [](const ComponentInfo& a, const ComponentInfo& b) {
              return a.voxel_count > b.voxel_count;
            });
  return result;
}

Mask remove_small_components(const Mask& mask, std::size_t min_voxels) {
  Labeling labeling = label_components(mask);
  std::vector<std::uint8_t> keep(labeling.components.size() + 1, 0);
  for (const auto& c : labeling.components) {
    if (c.voxel_count >= min_voxels) {
      keep[static_cast<std::size_t>(c.label)] = 1;
    }
  }
  Mask out(mask.dims());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    std::int32_t label = labeling.labels[i];
    out[i] = (label > 0 && keep[static_cast<std::size_t>(label)]) ? 1 : 0;
  }
  return out;
}

}  // namespace ifet
