#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

TEST(ThreadPool, RunsAllIndicesExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, StaticRangesCoverWithoutOverlap) {
  ThreadPool pool(4);
  const std::size_t n = 1003;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_static(0, n, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DynamicChunksCoverWithoutOverlap) {
  ThreadPool pool(3);
  const std::size_t n = 777;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_dynamic(0, n, 10, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(hi - lo, 10u);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DynamicRejectsZeroChunk) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_dynamic(0, 10, 0, [](std::size_t, std::size_t) {}),
      Error);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_static(0, 100,
                                        [&](std::size_t lo, std::size_t) {
                                          if (lo == 0) {
                                            throw Error("worker failure");
                                          }
                                        }),
               Error);
}

TEST(ThreadPool, NestedParallelismDoesNotDeadlock) {
  std::atomic<int> total{0};
  parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 50, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 200);
}

TEST(ParallelReduce, SumsCorrectly) {
  const std::size_t n = 100000;
  auto result = parallel_reduce<long long>(
      0, n, 0LL,
      [](long long acc, std::size_t i) {
        return acc + static_cast<long long>(i);
      },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(result, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeGivesIdentity) {
  auto result = parallel_reduce<int>(
      10, 10, 42, [](int acc, std::size_t) { return acc + 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(ParallelReduce, MaxReduction) {
  std::vector<double> values(5000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 2654435761u) % 10007);
  }
  auto result = parallel_reduce<double>(
      0, values.size(), -1.0,
      [&](double acc, std::size_t i) { return std::max(acc, values[i]); },
      [](double a, double b) { return std::max(a, b); });
  EXPECT_EQ(result, *std::max_element(values.begin(), values.end()));
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

}  // namespace
}  // namespace ifet
