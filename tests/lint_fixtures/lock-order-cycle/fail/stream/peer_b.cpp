#include "stream/peer_b.hpp"

void PeerB::poke() {
  std::lock_guard<std::mutex> lock(mutex_);
  peer_->touch();
}

void PeerB::touch() {
  std::lock_guard<std::mutex> lock(mutex_);
}
