// PASS fixture: the hot path asserts with IFET_DEBUG_ASSERT (compiled
// away outside checked builds — the sanctioned hot-path assert) while
// the throwing validation lives in a cold, unannotated entry point.
#define IFET_HOT __attribute__((hot))
#define IFET_DEBUG_ASSERT(expr, message) ((void)sizeof(expr))

namespace fixture {

class Sampler {
 public:
  void validate(int n) const {
    if (n < 0 || n > 8) {
      throw_out_of_range();  // cold: not reachable from the hot root
    }
  }

  IFET_HOT double sample(int i) const {
    IFET_DEBUG_ASSERT(i >= 0 && i < 8, "sample index out of range");
    return values_[i];
  }

 private:
  [[noreturn]] void throw_out_of_range() const;

  double values_[8] = {};
};

}  // namespace fixture
