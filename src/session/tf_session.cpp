#include "session/tf_session.hpp"

#include "util/error.hpp"

namespace ifet {

TfSession::TfSession(const VolumeSequence& sequence,
                     const TfSessionConfig& config)
    : sequence_(sequence), config_(config), iatf_(sequence, config.iatf) {}

void TfSession::set_key_frame(int step, const TransferFunction1D& tf) {
  iatf_.set_key_frame(step, tf);
}

bool TfSession::remove_key_frame(int step) {
  return iatf_.remove_key_frame(step);
}

double TfSession::idle(double budget_ms) {
  IFET_REQUIRE(key_frame_count() > 0,
               "TfSession::idle: set a key frame first");
  return iatf_.train_for(budget_ms);
}

double TfSession::train_epochs(int epochs) {
  IFET_REQUIRE(key_frame_count() > 0,
               "TfSession::train_epochs: set a key frame first");
  return iatf_.train(epochs);
}

KeyFrameSuggestion TfSession::advise() const {
  IFET_REQUIRE(key_frame_count() > 0,
               "TfSession::advise: set a key frame first");
  std::vector<int> keys;
  for (const auto& frame : iatf_.key_frames().frames()) {
    keys.push_back(frame.step);
  }
  return suggest_key_frame(sequence_, keys, 0, sequence_.num_steps() - 1,
                           config_.advisor_stride, config_.advisor_threshold,
                           config_.advisor_time_weight);
}

ImageRgb8 TfSession::preview(int step, const Camera& camera,
                             const RenderSettings& settings,
                             const ColorMap& colors,
                             RenderStats* stats) const {
  Raycaster caster(settings);
  // render_step pulls the sequence's brick metadata (served without
  // payload decode on v2 containers); no prefetch hint — the preview is a
  // point lookup, not a scan.
  return caster.render_step(sequence_, step, iatf_.evaluate(step), colors,
                            camera, nullptr, stats, /*prefetch_next=*/false);
}

}  // namespace ifet
