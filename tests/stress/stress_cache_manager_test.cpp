// CacheManager stress tests, written for ThreadSanitizer (the tsan
// preset).
//
// The schedules are chosen to maximize contention on the cache mutex and
// the LRU list: many client threads doing mixed lookup/insert/pin traffic
// over a key space several times larger than the byte budget, plus a
// VolumeStore hammered through concurrent fetches so the prefetcher's
// worker threads race the demand path. Under TSan any unsynchronized
// access fails the test; in plain builds these are fast invariant checks.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "stream/cache_manager.hpp"
#include "stream/volume_store.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

constexpr Dims kDims{4, 4, 4};
constexpr std::size_t kStepBytes = 64 * sizeof(float);

VolumeF step_volume(int step) {
  VolumeF v(kDims);
  v.fill(static_cast<float>(step));
  return v;
}

TEST(CacheManagerStress, MixedTrafficFromManyThreads) {
  CacheManager cache(4 * kStepBytes);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 3000;
  constexpr int kKeySpace = 16;
  std::atomic<int> bad_values{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&cache, &bad_values, t] {
      // Deterministic per-thread op mix; no shared RNG.
      std::uint64_t state = 0x9e3779b9u * static_cast<std::uint64_t>(t + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const int step = static_cast<int>((state >> 33) % kKeySpace);
        switch ((state >> 13) % 4) {
          case 0:
            cache.insert(step, step_volume(step));
            break;
          case 1: {
            auto v = cache.lookup(step);
            // A hit must always carry the step's own content even while
            // other threads evict and re-insert around us.
            if (v != nullptr &&
                v->at(0, 0, 0) != static_cast<float>(step)) {
              bad_values.fetch_add(1);
            }
            break;
          }
          case 2:
            cache.pin(step);
            cache.unpin(step);
            break;
          default:
            cache.pin_window(step, step + 2);
            break;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(bad_values.load(), 0);

  // Invariants after the storm: accounting matches the entry set.
  cache.pin_window(1, 0);  // clear the window
  EXPECT_EQ(cache.resident_bytes(), cache.resident_steps() * kStepBytes);
  EXPECT_LE(cache.resident_bytes(), 4 * kStepBytes);
}

TEST(CacheManagerStress, PinnedEntriesSurviveConcurrentEvictionPressure) {
  CacheManager cache(2 * kStepBytes);
  cache.insert(100, step_volume(100));
  cache.pin(100);
  constexpr int kThreads = 6;
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&cache, t] {
      for (int op = 0; op < 2000; ++op) {
        const int step = (t * 2000 + op) % 32;
        cache.insert(step, step_volume(step));
        cache.lookup(step);
      }
    });
  }
  for (auto& c : clients) c.join();
  ASSERT_TRUE(cache.resident(100));
  auto v = cache.lookup(100);
  ASSERT_NE(v, nullptr);
  EXPECT_FLOAT_EQ(v->at(0, 0, 0), 100.0f);
}

TEST(CacheManagerStress, ConcurrentFetchesThroughVolumeStore) {
  // Demand fetches from many threads race the async prefetcher's inserts;
  // every fetch must return the right step's content regardless of who
  // loaded it.
  auto source = std::make_shared<CallbackSource>(
      kDims, 24, std::pair<double, double>{0.0, 24.0},
      [](int step) { return step_volume(step); });
  VolumeStoreConfig cfg;
  cfg.budget_bytes = 4 * kStepBytes;
  cfg.lookahead = 2;
  cfg.async_prefetch = true;
  VolumeStore store(source, cfg);

  constexpr int kThreads = 6;
  std::atomic<int> bad_values{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&store, &bad_values, t] {
      for (int pass = 0; pass < 40; ++pass) {
        for (int s = 0; s < 24; ++s) {
          const int step = (t % 2 == 0) ? s : 23 - s;  // mixed directions
          auto v = store.fetch(step);
          if (v == nullptr ||
              v->at(0, 0, 0) != static_cast<float>(step)) {
            bad_values.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(bad_values.load(), 0);
  EXPECT_GT(store.stats().evictions, 0u);
}

}  // namespace
}  // namespace ifet
