#include <gtest/gtest.h>

#include <memory>

#include "core/iatf.hpp"
#include "flowsim/datasets.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

/// A two-step sequence whose feature band shifts from [0.3,0.4] (step 0) to
/// [0.6,0.7] (last step) via a global value offset — the canonical drift.
std::shared_ptr<CallbackSource> drifting_source(int steps) {
  Dims d{16, 16, 16};
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d, steps](int step) {
        VolumeF v(d);
        double offset = 0.3 * step / std::max(1, steps - 1);
        // Background 0.1, feature cube at 0.35, both drifting upward.
        for (int k = 0; k < d.z; ++k) {
          for (int j = 0; j < d.y; ++j) {
            for (int i = 0; i < d.x; ++i) {
              bool feature = (i >= 4 && i < 10 && j >= 4 && j < 10 &&
                              k >= 4 && k < 10);
              v.at(i, j, k) =
                  static_cast<float>((feature ? 0.35 : 0.1) + offset);
            }
          }
        }
        return v;
      });
}

TransferFunction1D band_tf(double lo, double hi) {
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(lo, hi, 1.0, 0.02);
  return tf;
}

TEST(Iatf, RequiresKeyFramesBeforeTraining) {
  CachedSequence seq(drifting_source(10), 4);
  Iatf iatf(seq);
  EXPECT_THROW(iatf.train(1), Error);
}

TEST(Iatf, KeyFrameMustMatchValueRange) {
  CachedSequence seq(drifting_source(10), 4);
  Iatf iatf(seq);
  TransferFunction1D wrong(0.0, 2.0);
  EXPECT_THROW(iatf.add_key_frame(0, wrong), Error);
  EXPECT_THROW(iatf.add_key_frame(99, band_tf(0.3, 0.4)), Error);
}

TEST(Iatf, TrainingSetGrowsPerKeyFrame) {
  CachedSequence seq(drifting_source(10), 4);
  Iatf iatf(seq);
  iatf.add_key_frame(0, band_tf(0.3, 0.4));
  EXPECT_EQ(iatf.training_samples(),
            static_cast<std::size_t>(TransferFunction1D::kEntries));
  iatf.add_key_frame(9, band_tf(0.6, 0.7));
  EXPECT_EQ(iatf.training_samples(),
            static_cast<std::size_t>(2 * TransferFunction1D::kEntries));
}

TEST(Iatf, ReproducesKeyFrameTransferFunctions) {
  CachedSequence seq(drifting_source(10), 4);
  IatfConfig cfg;
  cfg.hidden_units = 12;
  Iatf iatf(seq, cfg);
  iatf.add_key_frame(0, band_tf(0.30, 0.40));
  iatf.add_key_frame(9, band_tf(0.60, 0.70));
  iatf.train(1500);

  TransferFunction1D at0 = iatf.evaluate(0);
  EXPECT_GT(at0.opacity(0.35), 0.6);  // inside the step-0 band
  EXPECT_LT(at0.opacity(0.65), 0.4);  // step-9 band must stay closed at t=0

  TransferFunction1D at9 = iatf.evaluate(9);
  EXPECT_GT(at9.opacity(0.65), 0.6);
  EXPECT_LT(at9.opacity(0.35), 0.4);
}

TEST(Iatf, AdaptsBetterThanLinearInterpolationUnderDrift) {
  // The Fig 3 comparison in miniature: at the midpoint step the feature sits
  // at 0.35 + 0.15 = 0.50. The IATF (via the cumulative histogram) should
  // open near 0.50; lerp of the two key-frame TFs opens at 0.35 and 0.65
  // instead.
  const int steps = 11;
  CachedSequence seq(drifting_source(steps), 6);
  IatfConfig cfg;
  cfg.hidden_units = 12;
  Iatf iatf(seq, cfg);
  iatf.add_key_frame(0, band_tf(0.30, 0.40));
  iatf.add_key_frame(10, band_tf(0.60, 0.70));
  iatf.train(2500);

  TransferFunction1D adaptive = iatf.evaluate(5);
  TransferFunction1D lerped = TransferFunction1D::interpolate(
      band_tf(0.30, 0.40), band_tf(0.60, 0.70), 0.5);

  // The true feature band at the midpoint.
  double feature_value = 0.50;
  EXPECT_GT(adaptive.opacity(feature_value), lerped.opacity(feature_value));
  EXPECT_GT(adaptive.opacity(feature_value), 0.5);
  EXPECT_LT(lerped.opacity(feature_value), 0.05);
}

TEST(Iatf, TrainForAdvancesEpochs) {
  CachedSequence seq(drifting_source(5), 4);
  Iatf iatf(seq);
  iatf.add_key_frame(0, band_tf(0.3, 0.4));
  iatf.train_for(5.0);
  EXPECT_GT(iatf.epochs_run(), 0);
}

TEST(Iatf, OpacityAgreesWithEvaluatedTf) {
  CachedSequence seq(drifting_source(5), 4);
  Iatf iatf(seq);
  iatf.add_key_frame(0, band_tf(0.3, 0.4));
  iatf.train(100);
  TransferFunction1D tf = iatf.evaluate(2);
  for (double v : {0.1, 0.35, 0.62, 0.9}) {
    // evaluate() samples at entry centers; opacity() uses the exact value —
    // they agree when probed exactly at entry centers.
    int e = tf.entry_of(v);
    double entry_center = tf.entry_value(e);
    EXPECT_NEAR(tf.opacity(entry_center), iatf.opacity(entry_center, 2),
                1e-9);
  }
}

TEST(Iatf, InputAblationChangesNetworkWidth) {
  CachedSequence seq(drifting_source(5), 4);
  IatfConfig value_only;
  value_only.use_cumulative_histogram = false;
  value_only.use_time = false;
  Iatf iatf(seq, value_only);
  iatf.add_key_frame(0, band_tf(0.3, 0.4));
  EXPECT_NO_THROW(iatf.train(10));
  EXPECT_NO_THROW(iatf.evaluate(4));
}

TEST(Iatf, AllInputsDisabledThrows) {
  CachedSequence seq(drifting_source(5), 4);
  IatfConfig none;
  none.use_value = false;
  none.use_cumulative_histogram = false;
  none.use_time = false;
  EXPECT_THROW(Iatf(seq, none), Error);
}

TEST(Iatf, ValueOnlyCannotFollowDrift) {
  // Ablation (bench_ablation_inputs in miniature): without the cumulative
  // histogram and time, one network cannot open different value bands at
  // different steps — it averages the two key frames.
  const int steps = 11;
  CachedSequence seq(drifting_source(steps), 6);
  IatfConfig value_only;
  value_only.use_cumulative_histogram = false;
  value_only.use_time = false;
  Iatf ablated(seq, value_only);
  ablated.add_key_frame(0, band_tf(0.30, 0.40));
  ablated.add_key_frame(10, band_tf(0.60, 0.70));
  ablated.train(1500);

  // A value-only network must give the *same* TF at every step...
  TransferFunction1D a = ablated.evaluate(0);
  TransferFunction1D b = ablated.evaluate(10);
  double max_diff = 0.0;
  for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
    max_diff = std::max(
        max_diff, std::fabs(a.opacity_entry(e) - b.opacity_entry(e)));
  }
  EXPECT_LT(max_diff, 1e-9);
  // ...so it cannot simultaneously exclude 0.65 at t=0 and include it at
  // t=10 the way the full IATF does (see ReproducesKeyFrameTransferFunctions).
}

}  // namespace
}  // namespace ifet
