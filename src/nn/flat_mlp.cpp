#include "nn/flat_mlp.hpp"

#include <algorithm>
#include <cmath>

#include "math/fastexp.hpp"
#include "util/error.hpp"

namespace ifet {

namespace {

/// Same formulas as Mlp::activate — the sigmoid goes through the shared
/// branch-free fast_sigmoid (math/fastexp.hpp) so flat and scalar paths
/// produce the same doubles while this batched loop can vectorize it.
inline double activate(double x, Activation a) {
  switch (a) {
    case Activation::kSigmoid:
      return fast_sigmoid(x);
    case Activation::kTanh:
      return std::tanh(x);
  }
  return 0.0;
}

}  // namespace

FlatMlp::FlatMlp(const Mlp& source) {
  layer_sizes_ = source.layer_sizes();
  IFET_REQUIRE(layer_sizes_.size() >= 2,
               "FlatMlp: source Mlp is uninitialized");
  const auto& weights = source.weights();
  const auto& biases = source.biases();
  IFET_REQUIRE(weights.size() + 1 == layer_sizes_.size() &&
                   biases.size() == weights.size(),
               "FlatMlp: source weight/bias layer count mismatch");
  layers_.resize(weights.size());
  max_width_ = *std::max_element(layer_sizes_.begin(), layer_sizes_.end());
  for (std::size_t l = 0; l < weights.size(); ++l) {
    Layer& layer = layers_[l];
    layer.fan_in = layer_sizes_[l];
    layer.fan_out = layer_sizes_[l + 1];
    const bool output_layer = (l + 1 == weights.size());
    layer.activation =
        output_layer ? Activation::kSigmoid : source.hidden_activation();
    IFET_REQUIRE(weights[l].size() == static_cast<std::size_t>(layer.fan_out),
                 "FlatMlp: fan-out mismatch in source layer");
    const std::size_t stride = static_cast<std::size_t>(layer.fan_in) + 1;
    layer.weights.resize(static_cast<std::size_t>(layer.fan_out) * stride);
    for (int j = 0; j < layer.fan_out; ++j) {
      const auto& row = weights[l][static_cast<std::size_t>(j)];
      IFET_REQUIRE(row.size() == static_cast<std::size_t>(layer.fan_in),
                   "FlatMlp: fan-in mismatch in source layer");
      double* dst = layer.weights.data() + static_cast<std::size_t>(j) * stride;
      std::copy(row.begin(), row.end(), dst);
      dst[layer.fan_in] = biases[l][static_cast<std::size_t>(j)];
    }
  }
  source_hash_ = source.params_hash();
}

int FlatMlp::num_inputs() const {
  IFET_REQUIRE(valid(), "FlatMlp is uninitialized");
  return layer_sizes_.front();
}

int FlatMlp::num_outputs() const {
  IFET_REQUIRE(valid(), "FlatMlp is uninitialized");
  return layer_sizes_.back();
}

IFET_HOT void FlatMlp::run_tile(const double* cols, std::size_t col_stride,
                                int rows, double* dst,
                                Scratch& scratch) const {
  // Layer 0 reads the caller's columns (arbitrary stride: the raw
  // column-major feature buffer, or the transpose staged in scratch.a);
  // every later layer reads the previous kTileRows-stride scratch tile.
  // Outputs alternate b, a, b, ... so the input tile — which may alias
  // scratch.a — is only overwritten after layer 0 consumed it.
  const double* act = cols;
  std::size_t act_stride = col_stride;
  double* bufs[2] = {scratch.b.data(), scratch.a.data()};
  int which = 0;

  for (const Layer& layer : layers_) {
    double* next = bufs[which];
    const std::size_t stride = static_cast<std::size_t>(layer.fan_in) + 1;
    for (int j = 0; j < layer.fan_out; ++j) {
      const double* wrow =
          layer.weights.data() + static_cast<std::size_t>(j) * stride;
      // Bias first, then inputs in ascending order: the exact
      // accumulation chain of Mlp::run_forward, one independent chain
      // per batch row (the vectorizable dimension).
      double acc[kTileRows];
      const double bias = wrow[layer.fan_in];
      for (int r = 0; r < rows; ++r) acc[r] = bias;
      for (int i = 0; i < layer.fan_in; ++i) {
        const double w = wrow[i];
        const double* col = act + static_cast<std::size_t>(i) * act_stride;
        for (int r = 0; r < rows; ++r) acc[r] += w * col[r];
      }
      double* outcol = next + static_cast<std::size_t>(j) * kTileRows;
      if (layer.activation == Activation::kSigmoid) {
        // Dedicated branch-free loop: fast_sigmoid is a fixed IEEE op
        // sequence, so this vectorizes lane-parallel and still matches
        // the scalar path bit for bit.
        for (int r = 0; r < rows; ++r) outcol[r] = fast_sigmoid(acc[r]);
      } else {
        for (int r = 0; r < rows; ++r) {
          outcol[r] = activate(acc[r], layer.activation);
        }
      }
    }
    act = next;
    act_stride = kTileRows;
    which ^= 1;
  }

  // `act` now holds the output layer column-major; scatter it back to
  // the caller's row-major layout.
  const int out_w = layer_sizes_.back();
  for (int j = 0; j < out_w; ++j) {
    const double* col = act + static_cast<std::size_t>(j) * kTileRows;
    for (int r = 0; r < rows; ++r) {
      dst[static_cast<std::size_t>(r) * out_w + j] = col[r];
    }
  }
}

IFET_HOT IFET_DETERMINISTIC void FlatMlp::forward_batch(const double* in, int n, double* out,
                                     Scratch& scratch) const {
  IFET_HOT_ALLOW("batch-entry precondition, once per batch before the tiles");
  IFET_REQUIRE(valid() && n >= 0, "FlatMlp::forward_batch: invalid engine or "
                                  "negative batch size");
  if (n == 0) return;
  IFET_HOT_ALLOW("batch-entry precondition, once per batch before the tiles");
  IFET_REQUIRE(in != nullptr && out != nullptr,
               "FlatMlp::forward_batch: null batch buffer");
  const std::size_t tile_doubles =
      static_cast<std::size_t>(max_width_) * kTileRows;
  scratch.ensure(tile_doubles);

  const int in_w = layer_sizes_.front();
  const int out_w = layer_sizes_.back();
  for (int r0 = 0; r0 < n; r0 += kTileRows) {
    const int rows = std::min(kTileRows, n - r0);

    // Transpose the input tile to column-major [feature][row] so every
    // accumulation loop in run_tile runs unit-stride across rows.
    double* staged = scratch.a.data();
    const double* src = in + static_cast<std::size_t>(r0) * in_w;
    for (int i = 0; i < in_w; ++i) {
      double* col = staged + static_cast<std::size_t>(i) * kTileRows;
      for (int r = 0; r < rows; ++r) {
        col[r] = src[static_cast<std::size_t>(r) * in_w + i];
      }
    }

    run_tile(staged, kTileRows, rows,
             out + static_cast<std::size_t>(r0) * out_w, scratch);
  }
}

IFET_HOT IFET_DETERMINISTIC void FlatMlp::forward_batch_cols(const double* in, int ld, int n,
                                          double* out,
                                          Scratch& scratch) const {
  IFET_HOT_ALLOW("batch-entry precondition, once per batch before the tiles");
  IFET_REQUIRE(valid() && n >= 0,
               "FlatMlp::forward_batch_cols: invalid engine or negative "
               "batch size");
  if (n == 0) return;
  IFET_HOT_ALLOW("batch-entry precondition, once per batch before the tiles");
  IFET_REQUIRE(in != nullptr && out != nullptr && ld >= n,
               "FlatMlp::forward_batch_cols: null batch buffer or ld "
               "shorter than batch");
  const std::size_t tile_doubles =
      static_cast<std::size_t>(max_width_) * kTileRows;
  scratch.ensure(tile_doubles);

  // The input already IS column-major, so each tile's columns are just
  // offset views at stride ld — no transpose pass at all.
  const int out_w = layer_sizes_.back();
  for (int r0 = 0; r0 < n; r0 += kTileRows) {
    const int rows = std::min(kTileRows, n - r0);
    run_tile(in + r0, static_cast<std::size_t>(ld), rows,
             out + static_cast<std::size_t>(r0) * out_w, scratch);
  }
}

std::shared_ptr<const FlatMlp> FlatMlpCache::get(const Mlp& network) const {
  const std::uint64_t h = network.params_hash();
  {
    OrderedMutexLock lock(mutex_);
    if (flat_ != nullptr && hash_ == h) return flat_;
  }
  // Snapshot outside the lock (see the header comment): the weight copy
  // reads caller-owned state and can be milliseconds for a wide network.
  auto built = std::make_shared<const FlatMlp>(network);
  OrderedMutexLock lock(mutex_);
  if (flat_ == nullptr || hash_ != h) {
    flat_ = std::move(built);
    hash_ = h;
    ++rebuilds_;
  }
  return flat_;
}

std::size_t FlatMlpCache::rebuilds() const {
  OrderedMutexLock lock(mutex_);
  return rebuilds_;
}

}  // namespace ifet
