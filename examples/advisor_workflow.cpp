// The intelligent key-framing workflow, end to end: start from a single
// key frame, let the key-frame advisor point at the least-covered step,
// key it, retrain, and repeat until the advisor is satisfied — the
// automated form of the paper's "add new key frames when needed"
// (Sec 4.2), built on TfSession.
//
// Run:  ./advisor_workflow [--out=DIR]
#include <filesystem>
#include <iostream>

#include "eval/metrics.hpp"
#include "flowsim/datasets.hpp"
#include "session/tf_session.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ifet;
  CliArgs args(argc, argv);
  const std::string out_dir = args.get("out", "example_out");
  std::filesystem::create_directories(out_dir);

  ArgonBubbleConfig cfg;
  cfg.dims = Dims{40, 40, 40};
  cfg.num_steps = 360;
  cfg.drift_per_step = 0.004;  // the fast-drift regime of Figs 3-4
  auto argon = std::make_shared<ArgonBubbleSource>(cfg);
  // Window the sequence onto the studied interval t = 195..255 (the
  // advisor scans the whole sequence it is given).
  const int first = 195, last = 255;
  auto source = std::make_shared<CallbackSource>(
      argon->dims(), last - first + 1, argon->value_range(),
      [argon, first](int step) { return argon->generate(first + step); });
  CachedSequence sequence(source, 16);
  auto [vlo, vhi] = sequence.value_range();

  auto ring_tf = [&](int step) {
    TransferFunction1D tf(vlo, vhi);
    double c = argon->ring_band_center(first + step);
    double h = argon->ring_band_half_width();
    tf.add_band(c - h, c + h, 1.0, 0.5 * h);
    return tf;
  };
  auto ring_f1 = [&](const TfSession& session, int step) {
    TransferFunction1D tf = session.current_tf(step);
    const VolumeF& volume = sequence.step(step);
    Mask extracted(volume.dims());
    for (std::size_t i = 0; i < volume.size(); ++i) {
      extracted[i] = tf.opacity(volume[i]) >= 0.25 ? 1 : 0;
    }
    return score_mask(extracted, argon->feature_mask(first + step)).f1();
  };

  TfSessionConfig scfg;
  scfg.advisor_stride = 5;        // scan every 5th step of the window
  scfg.advisor_threshold = 0.015;
  TfSession session(sequence, scfg);

  std::cout << "keying t=195 only, then following the advisor...\n";
  session.set_key_frame(0, ring_tf(0));  // window step 0 == paper t=195
  session.train_epochs(1200);
  std::cout << "  coverage with 1 key: F1@t=225=" << ring_f1(session, 30)
            << " F1@t=255=" << ring_f1(session, 60) << "\n";

  for (int round = 0; round < 4; ++round) {
    KeyFrameSuggestion advice = session.advise();
    if (advice.step < 0) {
      std::cout << "advisor: sequence covered after "
                << session.key_frame_count() << " key frames\n";
      break;
    }
    std::cout << "advisor: add a key frame at t=" << (first + advice.step)
              << " (distance " << advice.distance << ")\n";
    session.set_key_frame(advice.step, ring_tf(advice.step));
    session.train_epochs(1500);
  }

  std::cout << "final coverage:";
  for (int step = 0; step <= 60; step += 15) {
    std::cout << "  F1@t=" << (first + step) << "=" << ring_f1(session, step);
  }
  std::cout << "\n";
  return 0;
}
