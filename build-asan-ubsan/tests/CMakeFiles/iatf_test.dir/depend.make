# Empty dependencies file for iatf_test.
# This may be replaced when dependencies are built.
