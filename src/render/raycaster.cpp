#include "render/raycaster.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/hot_path.hpp"
#include "util/timer.hpp"
#include "volume/ops.hpp"

namespace ifet {

namespace {

/// World-space box of a volume: largest axis spans [-0.5, 0.5].
struct WorldBox {
  Vec3 lo, hi;
  Vec3 scale;   ///< world -> voxel scale per axis
  Vec3 offset;  ///< voxel = (world - lo) * scale (then -0.5 voxel centering)

  explicit WorldBox(const Dims& d) {
    const double m = std::max({d.x, d.y, d.z});
    Vec3 half{0.5 * d.x / m, 0.5 * d.y / m, 0.5 * d.z / m};
    lo = -half;
    hi = half;
    scale = Vec3{d.x / (hi.x - lo.x), d.y / (hi.y - lo.y),
                 d.z / (hi.z - lo.z)};
  }

  Vec3 to_voxel(const Vec3& world) const {
    // Voxel centers at integer coordinates: voxel i covers
    // [i-0.5, i+0.5) in sample space.
    return Vec3{(world.x - lo.x) * scale.x - 0.5,
                (world.y - lo.y) * scale.y - 0.5,
                (world.z - lo.z) * scale.z - 0.5};
  }
};

inline std::uint8_t to_byte(double v) {
  return static_cast<std::uint8_t>(clamp(v, 0.0, 1.0) * 255.0 + 0.5);
}

}  // namespace

ImageRgb8 Raycaster::render_step(const VolumeSequence& sequence, int step,
                                 const TransferFunction1D& tf,
                                 const ColorMap& colors, const Camera& camera,
                                 const HighlightLayer* highlight,
                                 RenderStats* stats,
                                 bool prefetch_next) const {
  if (prefetch_next) sequence.prefetch_hint(step + 1);
  return render(sequence.step(step), tf, colors, camera, highlight, stats);
}

Raycaster::Raycaster(const RenderSettings& settings) : settings_(settings) {
  IFET_REQUIRE(settings_.width > 0 && settings_.height > 0,
               "Raycaster: image dimensions must be positive");
  IFET_REQUIRE(settings_.step_voxels > 0.0,
               "Raycaster: step size must be positive");
}

ImageRgb8 Raycaster::render(const VolumeF& volume,
                            const TransferFunction1D& tf,
                            const ColorMap& colors, const Camera& camera,
                            const HighlightLayer* highlight,
                            RenderStats* stats) const {
  return render_impl(volume, tf, colors, camera, highlight, nullptr, stats);
}

ImageRgb8 Raycaster::render_classified(const VolumeF& volume,
                                       const VolumeF& certainty,
                                       const TransferFunction1D& tf,
                                       const ColorMap& colors,
                                       const Camera& camera,
                                       RenderStats* stats) const {
  IFET_REQUIRE(certainty.dims() == volume.dims(),
               "Raycaster: certainty volume dimension mismatch");
  IFET_REQUIRE(settings_.mode == CompositingMode::kFrontToBack,
               "Raycaster: the pre-classified render requires "
               "emission-absorption compositing");
  return render_impl(volume, tf, colors, camera, nullptr, &certainty, stats);
}

Raycaster::Plan Raycaster::prepare_plan(const VolumeF& volume,
                                        const TransferFunction1D& tf,
                                        const ColorMap& colors,
                                        const Camera& camera,
                                        const HighlightLayer* highlight,
                                        const VolumeF* certainty) const {
  if (highlight != nullptr) {
    IFET_REQUIRE(highlight->mask != nullptr && highlight->tf != nullptr,
                 "Raycaster: highlight layer needs mask and TF");
    IFET_REQUIRE(highlight->mask->dims() == volume.dims(),
                 "Raycaster: highlight mask dimension mismatch");
    IFET_REQUIRE(settings_.mode == CompositingMode::kFrontToBack,
                 "Raycaster: the tracked-feature highlight requires "
                 "emission-absorption compositing (MIP has no ordering to "
                 "overlay into)");
  }
  if (certainty != nullptr) {
    IFET_REQUIRE(certainty->dims() == volume.dims(),
                 "Raycaster: certainty volume dimension mismatch");
  }
  const Dims d = volume.dims();
  const WorldBox box(d);
  Plan plan;
  plan.volume = &volume;
  plan.tf = &tf;
  plan.colors = &colors;
  plan.camera = &camera;
  plan.highlight = highlight;
  plan.certainty = certainty;
  plan.box_lo = box.lo;
  plan.box_hi = box.hi;
  plan.box_scale = box.scale;
  // Step length in world units: step_voxels voxels of the largest axis.
  const double max_dim = std::max({d.x, d.y, d.z});
  plan.dt = settings_.step_voxels / max_dim;
  plan.value_span = tf.value_hi() - tf.value_lo();
  plan.light_dir = (camera.position() - Vec3{0, 0, 0}).normalized();
  return plan;
}

IFET_HOT void Raycaster::render_rows(const Plan& plan, int row0, int row1,
                                     ImageRgb8& image,
                                     RenderRowCounters& counters) const {
  const VolumeF& volume = *plan.volume;
  const TransferFunction1D& tf = *plan.tf;
  const ColorMap& colors = *plan.colors;
  const Camera& camera = *plan.camera;
  const HighlightLayer* highlight = plan.highlight;
  const VolumeF* certainty = plan.certainty;
  const double dt = plan.dt;
  const double value_span = plan.value_span;
  const Vec3 light_dir = plan.light_dir;

  std::size_t local_samples = 0;
  std::size_t local_early = 0;
  for (int y = row0; y < row1; ++y) {
    for (int x = 0; x < settings_.width; ++x) {
      Ray ray = camera.pixel_ray(x, y, settings_.width, settings_.height);
      double t0, t1;
      Rgb accum = {0, 0, 0};
      double alpha = 0.0;
      if (settings_.mode == CompositingMode::kMaximumIntensity) {
        // MIP: the brightest sample the TF makes visible wins the
        // pixel; no ordering-dependent accumulation.
        double best_value = 0.0;
        bool any = false;
        if (intersect_box(ray, plan.box_lo, plan.box_hi, t0, t1)) {
          for (double t = t0; t <= t1; t += dt) {
            Vec3 vox = plan.to_voxel(ray.origin + ray.direction * t);
            double value = volume.sample(vox);
            ++local_samples;
            if (tf.opacity(value) <= 0.0) continue;
            if (!any || value > best_value) {
              best_value = value;
              any = true;
            }
          }
        }
        if (any) {
          double norm =
              value_span > 0.0
                  ? clamp((best_value - tf.value_lo()) / value_span, 0.0, 1.0)
                  : 0.0;
          Rgb c = colors.at(norm);
          image.set(x, y, to_byte(c.r), to_byte(c.g), to_byte(c.b));
        } else {
          image.set(x, y, to_byte(settings_.background.r),
                    to_byte(settings_.background.g),
                    to_byte(settings_.background.b));
        }
        continue;
      }
      if (intersect_box(ray, plan.box_lo, plan.box_hi, t0, t1)) {
        for (double t = t0; t <= t1; t += dt) {
          Vec3 world = ray.origin + ray.direction * t;
          Vec3 vox = plan.to_voxel(world);
          double value = volume.sample(vox);
          ++local_samples;

          double a;
          Rgb color;
          bool highlighted = false;
          if (highlight != nullptr) {
            // Nearest-voxel lookup in the region-growing texture.
            int hi_i = static_cast<int>(std::lround(vox.x));
            int hi_j = static_cast<int>(std::lround(vox.y));
            int hi_k = static_cast<int>(std::lround(vox.z));
            highlighted = highlight->mask->clamped(hi_i, hi_j, hi_k) != 0;
          }
          if (highlighted) {
            a = highlight->tf->opacity(value);
            color = highlight->color;
          } else {
            a = tf.opacity(value);
            if (certainty != nullptr) {
              // Pre-classified pass: the network's certainty gates
              // the opacity, color stays tied to the data value.
              a *= certainty->sample(vox);
            }
            double norm =
                value_span > 0.0
                    ? clamp((value - tf.value_lo()) / value_span, 0.0, 1.0)
                    : 0.0;
            color = colors.at(norm);
          }
          if (a <= 0.0) continue;
          if (settings_.opacity_correction) {
            a = 1.0 - std::pow(1.0 - a, settings_.step_voxels);
          }

          if (settings_.shading) {
            int gi = static_cast<int>(std::lround(vox.x));
            int gj = static_cast<int>(std::lround(vox.y));
            int gk = static_cast<int>(std::lround(vox.z));
            Vec3 g = gradient_at(volume, gi, gj, gk);
            double gn = g.norm();
            double shade = settings_.ambient;
            if (gn > 1e-9) {
              Vec3 normal = g / gn;
              double ndotl = std::fabs(normal.dot(light_dir));
              shade += settings_.diffuse * ndotl;
              // Headlight specular (view == light direction).
              double spec = std::pow(ndotl, settings_.specular_power);
              shade += settings_.specular * spec;
            } else {
              shade += settings_.diffuse * 0.5;
            }
            color.r *= shade;
            color.g *= shade;
            color.b *= shade;
          }

          const double w = (1.0 - alpha) * a;
          accum.r += w * color.r;
          accum.g += w * color.g;
          accum.b += w * color.b;
          alpha += w;
          if (alpha >= settings_.early_termination_alpha) {
            ++local_early;
            break;
          }
        }
      }
      accum.r += (1.0 - alpha) * settings_.background.r;
      accum.g += (1.0 - alpha) * settings_.background.g;
      accum.b += (1.0 - alpha) * settings_.background.b;
      image.set(x, y, to_byte(accum.r), to_byte(accum.g), to_byte(accum.b));
    }
  }
  counters.samples += local_samples;
  counters.terminated_early += local_early;
}

ImageRgb8 Raycaster::render_impl(const VolumeF& volume,
                                 const TransferFunction1D& tf,
                                 const ColorMap& colors, const Camera& camera,
                                 const HighlightLayer* highlight,
                                 const VolumeF* certainty,
                                 RenderStats* stats) const {
  Stopwatch watch;
  const Plan plan =
      prepare_plan(volume, tf, colors, camera, highlight, certainty);
  ImageRgb8 image(settings_.width, settings_.height);

  std::atomic<std::size_t> total_samples{0};
  std::atomic<std::size_t> early{0};

  parallel_for_ranges(
      0, static_cast<std::size_t>(settings_.height),
      [&](std::size_t row0, std::size_t row1) {
        RenderRowCounters counters;
        render_rows(plan, static_cast<int>(row0), static_cast<int>(row1),
                    image, counters);
        total_samples += counters.samples;
        early += counters.terminated_early;
      });

  if (stats != nullptr) {
    stats->rays = static_cast<std::size_t>(settings_.width) *
                  static_cast<std::size_t>(settings_.height);
    stats->samples = total_samples.load();
    stats->terminated_early = early.load();
    stats->seconds = watch.seconds();
  }
  return image;
}

ImageRgb8 render_slice(const VolumeF& volume, int axis, int slice,
                       const TransferFunction1D& tf, const ColorMap& colors) {
  IFET_REQUIRE(axis >= 0 && axis <= 2, "render_slice: axis must be 0..2");
  const Dims d = volume.dims();
  int width = 0, height = 0, extent = 0;
  switch (axis) {
    case 0: width = d.y; height = d.z; extent = d.x; break;
    case 1: width = d.x; height = d.z; extent = d.y; break;
    default: width = d.x; height = d.y; extent = d.z; break;
  }
  // Validate once up front: every (i,j,k) below is then in bounds by
  // construction, so the pixel loop uses the unchecked accessor instead of
  // re-proving the same containment width*height times.
  IFET_REQUIRE(slice >= 0 && slice < extent,
               "render_slice: slice out of range");
  ImageRgb8 image(width, height);
  const double span = tf.value_hi() - tf.value_lo();
  for (int row = 0; row < height; ++row) {
    for (int col = 0; col < width; ++col) {
      int i = 0, j = 0, k = 0;
      switch (axis) {
        case 0: i = slice; j = col; k = row; break;
        case 1: i = col; j = slice; k = row; break;
        default: i = col; j = row; k = slice; break;
      }
      double value = volume[volume.linear_index(i, j, k)];
      double a = tf.opacity(value);
      double norm = span > 0.0
                        ? clamp((value - tf.value_lo()) / span, 0.0, 1.0)
                        : 0.0;
      Rgb c = colors.at(norm);
      image.set(col, row, to_byte(c.r * a), to_byte(c.g * a),
                to_byte(c.b * a));
    }
  }
  return image;
}

}  // namespace ifet
