file(REMOVE_RECURSE
  "libifet_math.a"
)
