file(REMOVE_RECURSE
  "CMakeFiles/denoise_reionization.dir/denoise_reionization.cpp.o"
  "CMakeFiles/denoise_reionization.dir/denoise_reionization.cpp.o.d"
  "denoise_reionization"
  "denoise_reionization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denoise_reionization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
