#include "tf/transfer_function.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ifet {

ColorMap::ColorMap()
    : ColorMap({{0.0, Rgb{0.05, 0.05, 0.6}},
                {0.35, Rgb{0.0, 0.8, 0.9}},
                {0.65, Rgb{0.95, 0.9, 0.1}},
                {1.0, Rgb{0.9, 0.1, 0.05}}}) {}

ColorMap::ColorMap(std::vector<std::pair<double, Rgb>> stops)
    : stops_(std::move(stops)) {
  IFET_REQUIRE(!stops_.empty(), "ColorMap requires at least one stop");
  IFET_REQUIRE(std::is_sorted(stops_.begin(), stops_.end(),
                              [](const auto& a, const auto& b) {
                                return a.first < b.first;
                              }),
               "ColorMap stops must be sorted by position");
}

Rgb ColorMap::at(double t) const {
  t = clamp(t, 0.0, 1.0);
  if (t <= stops_.front().first) return stops_.front().second;
  if (t >= stops_.back().first) return stops_.back().second;
  for (std::size_t i = 1; i < stops_.size(); ++i) {
    if (t <= stops_[i].first) {
      double span = stops_[i].first - stops_[i - 1].first;
      double u = span > 0.0 ? (t - stops_[i - 1].first) / span : 0.0;
      const Rgb& a = stops_[i - 1].second;
      const Rgb& b = stops_[i].second;
      return Rgb{lerp(a.r, b.r, u), lerp(a.g, b.g, u), lerp(a.b, b.b, u)};
    }
  }
  return stops_.back().second;
}

TransferFunction1D::TransferFunction1D(double value_lo, double value_hi)
    : lo_(value_lo), hi_(value_hi) {
  IFET_REQUIRE(value_hi > value_lo,
               "TransferFunction1D requires hi > lo value range");
}

double TransferFunction1D::entry_value(int i) const {
  IFET_REQUIRE(i >= 0 && i < kEntries, "entry_value: index out of range");
  return lo_ + (i + 0.5) * (hi_ - lo_) / kEntries;
}

int TransferFunction1D::entry_of(double value) const {
  double t = (value - lo_) / (hi_ - lo_);
  double e = std::floor(t * kEntries);
  // Clamp in double space: casting out-of-int-range doubles (notably the
  // +/-inf bounds of NaN-contaminated brick ranges) to int is undefined
  // and on x86 collapses +inf to INT_MIN, which would clamp to entry 0
  // instead of the last entry. NaN takes the !(e > 0) branch, so NaN
  // values deterministically read entry 0.
  if (!(e > 0.0)) return 0;
  if (e >= static_cast<double>(kEntries)) return kEntries - 1;
  return static_cast<int>(e);
}

void TransferFunction1D::set_opacity_entry(int i, double alpha) {
  IFET_REQUIRE(i >= 0 && i < kEntries, "set_opacity_entry: index range");
  opacity_[static_cast<std::size_t>(i)] = clamp(alpha, 0.0, 1.0);
}

double TransferFunction1D::opacity(double value) const {
  return opacity_[static_cast<std::size_t>(entry_of(value))];
}

void TransferFunction1D::add_trapezoid(double v0, double v1, double v2,
                                       double v3, double peak) {
  IFET_REQUIRE(v0 <= v1 && v1 <= v2 && v2 <= v3,
               "add_trapezoid: corners must be ordered");
  for (int i = 0; i < kEntries; ++i) {
    double v = entry_value(i);
    double a = 0.0;
    if (v >= v0 && v <= v3) {
      if (v < v1) {
        a = v1 > v0 ? peak * (v - v0) / (v1 - v0) : peak;
      } else if (v <= v2) {
        a = peak;
      } else {
        a = v3 > v2 ? peak * (v3 - v) / (v3 - v2) : peak;
      }
    }
    if (a > opacity_[static_cast<std::size_t>(i)]) {
      opacity_[static_cast<std::size_t>(i)] = clamp(a, 0.0, 1.0);
    }
  }
}

void TransferFunction1D::add_band(double lo, double hi, double peak,
                                  double skirt) {
  add_trapezoid(lo - skirt, lo, hi, hi + skirt, peak);
}

void TransferFunction1D::scale_opacity(double s) {
  for (auto& a : opacity_) a = clamp(a * s, 0.0, 1.0);
}

std::vector<std::pair<double, double>> TransferFunction1D::opaque_intervals(
    double threshold) const {
  std::vector<std::pair<double, double>> intervals;
  int start = -1;
  for (int i = 0; i < kEntries; ++i) {
    bool on = opacity_[static_cast<std::size_t>(i)] > threshold;
    if (on && start < 0) start = i;
    if ((!on || i == kEntries - 1) && start >= 0) {
      int end = on ? i : i - 1;
      intervals.emplace_back(entry_value(start), entry_value(end));
      start = -1;
    }
  }
  return intervals;
}

TransferFunction1D TransferFunction1D::interpolate(
    const TransferFunction1D& a, const TransferFunction1D& b, double t) {
  IFET_REQUIRE(a.value_lo() == b.value_lo() && a.value_hi() == b.value_hi(),
               "TF interpolation requires matching value ranges");
  TransferFunction1D out(a.value_lo(), a.value_hi());
  for (int i = 0; i < kEntries; ++i) {
    out.set_opacity_entry(i,
                          lerp(a.opacity_entry(i), b.opacity_entry(i), t));
  }
  return out;
}

void KeyFrameSet::add(int step, TransferFunction1D tf) {
  if (!frames_.empty()) {
    IFET_REQUIRE(tf.value_lo() == frames_.front().tf.value_lo() &&
                     tf.value_hi() == frames_.front().tf.value_hi(),
                 "KeyFrameSet: all key frames must share a value range");
    for (const auto& f : frames_) {
      IFET_REQUIRE(f.step != step, "KeyFrameSet: duplicate key frame step");
    }
  }
  frames_.push_back(KeyFrameTf{step, std::move(tf)});
  std::sort(frames_.begin(), frames_.end(),
            [](const KeyFrameTf& x, const KeyFrameTf& y) {
              return x.step < y.step;
            });
}

void KeyFrameSet::set(int step, TransferFunction1D tf) {
  for (auto& frame : frames_) {
    if (frame.step == step) {
      IFET_REQUIRE(tf.value_lo() == frame.tf.value_lo() &&
                       tf.value_hi() == frame.tf.value_hi(),
                   "KeyFrameSet::set: value range mismatch");
      frame.tf = std::move(tf);
      return;
    }
  }
  add(step, std::move(tf));
}

bool KeyFrameSet::remove(int step) {
  for (auto it = frames_.begin(); it != frames_.end(); ++it) {
    if (it->step == step) {
      frames_.erase(it);
      return true;
    }
  }
  return false;
}

TransferFunction1D KeyFrameSet::interpolate_at(int step) const {
  IFET_REQUIRE(!frames_.empty(), "KeyFrameSet::interpolate_at: no frames");
  if (step <= frames_.front().step) return frames_.front().tf;
  if (step >= frames_.back().step) return frames_.back().tf;
  for (std::size_t i = 1; i < frames_.size(); ++i) {
    if (step <= frames_[i].step) {
      double span = frames_[i].step - frames_[i - 1].step;
      double t = span > 0.0 ? (step - frames_[i - 1].step) / span : 0.0;
      return TransferFunction1D::interpolate(frames_[i - 1].tf, frames_[i].tf,
                                             t);
    }
  }
  return frames_.back().tf;
}

}  // namespace ifet
