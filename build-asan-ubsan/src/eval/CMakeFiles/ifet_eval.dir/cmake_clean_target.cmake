file(REMOVE_RECURSE
  "libifet_eval.a"
)
