# Empty dependencies file for eval_io_batch_test.
# This may be replaced when dependencies are built.
