// Compile-time thread-safety annotations (docs/STATIC_ANALYSIS.md).
//
// Thin macro layer over Clang's capability analysis: when compiled with
// clang and -Wthread-safety (the IFET_THREAD_SAFETY CMake option), the
// compiler proves that every IFET_GUARDED_BY field is only touched with
// its mutex held, that IFET_REQUIRES contracts hold at every call site,
// and that locks acquired by an IFET_SCOPED_CAPABILITY guard are released
// on every path. Under GCC (which has no such analysis) every macro
// expands to nothing, so annotated code stays portable.
//
// libstdc++'s std::mutex carries no capability attributes, so annotating
// a std::mutex member would teach the analysis nothing — lock sites go
// through the annotated wrappers below instead:
//
//   * ifet::Mutex      — std::mutex with ACQUIRE/RELEASE-annotated
//                        lock()/unlock(); the capability GUARDED_BY names.
//   * ifet::MutexLock  — scoped RAII guard (the std::lock_guard shape).
//   * condition-variable waits use std::condition_variable_any directly
//     on the Mutex (it is BasicLockable); the analysis treats the lock as
//     held across the wait, which matches the invariant at every
//     statement a waiter can observe.
//
// The streaming classes use the rank-checked ifet::OrderedMutex
// (util/ordered_mutex.hpp), which layers the runtime lock-order validator
// on top of the same annotations.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define IFET_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef IFET_THREAD_ANNOTATION
#define IFET_THREAD_ANNOTATION(x)  // no-op: GCC and pre-capability clang
#endif

/// Class attribute: instances are capabilities (lockable resources).
#define IFET_CAPABILITY(name) IFET_THREAD_ANNOTATION(capability(name))

/// Class attribute: RAII guard that acquires at construction and releases
/// at destruction.
#define IFET_SCOPED_CAPABILITY IFET_THREAD_ANNOTATION(scoped_lockable)

/// Field attribute: reads/writes require holding `mutex`.
#define IFET_GUARDED_BY(mutex) IFET_THREAD_ANNOTATION(guarded_by(mutex))

/// Field attribute (pointer): the *pointee* is protected by `mutex`.
#define IFET_PT_GUARDED_BY(mutex) IFET_THREAD_ANNOTATION(pt_guarded_by(mutex))

/// Function attribute: caller must hold the listed capabilities.
#define IFET_REQUIRES(...) \
  IFET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: caller must NOT hold the listed capabilities
/// (marks public entry points of internally-synchronized classes, so a
/// re-entrant call that would self-deadlock is a compile error).
#define IFET_EXCLUDES(...) \
  IFET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: acquires the listed capabilities (held on return).
#define IFET_ACQUIRE(...) \
  IFET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: releases the listed capabilities.
#define IFET_RELEASE(...) \
  IFET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: acquires on a `ret`-valued return (try_lock shape).
#define IFET_TRY_ACQUIRE(ret, ...) \
  IFET_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function attribute: returns a reference to the named capability.
#define IFET_RETURN_CAPABILITY(x) IFET_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — use only with a comment explaining why the analysis
/// cannot see the invariant (docs/STATIC_ANALYSIS.md lists the accepted
/// reasons).
#define IFET_NO_THREAD_SAFETY_ANALYSIS \
  IFET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ifet {

/// std::mutex with capability annotations: the lockable type every
/// IFET_GUARDED_BY in the tree names. BasicLockable, so it works directly
/// with std::condition_variable_any.
class IFET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IFET_ACQUIRE() { m_.lock(); }
  void unlock() IFET_RELEASE() { m_.unlock(); }
  bool try_lock() IFET_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII scoped guard over any annotated mutex type (Mutex/OrderedMutex).
/// The std::lock_guard shape, but carrying the scoped-capability
/// attributes the analysis needs to know the lock is held until `}`.
template <typename MutexT>
class IFET_SCOPED_CAPABILITY GenericMutexLock {
 public:
  explicit GenericMutexLock(MutexT& mutex) IFET_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~GenericMutexLock() IFET_RELEASE() { mutex_.unlock(); }

  GenericMutexLock(const GenericMutexLock&) = delete;
  GenericMutexLock& operator=(const GenericMutexLock&) = delete;

 private:
  MutexT& mutex_;
};

using MutexLock = GenericMutexLock<Mutex>;

}  // namespace ifet
