
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/camera.cpp" "src/render/CMakeFiles/ifet_render.dir/camera.cpp.o" "gcc" "src/render/CMakeFiles/ifet_render.dir/camera.cpp.o.d"
  "/root/repo/src/render/raycaster.cpp" "src/render/CMakeFiles/ifet_render.dir/raycaster.cpp.o" "gcc" "src/render/CMakeFiles/ifet_render.dir/raycaster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/volume/CMakeFiles/ifet_volume.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tf/CMakeFiles/ifet_tf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/ifet_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/math/CMakeFiles/ifet_math.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/ifet_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
