// Region-growing / mask-op stress tests for the tsan preset.
//
// label_components is read-only on its inputs, so running it from many
// threads against one shared mask must be race-free and deterministic;
// the disjoint-write test validates the documented Mask contract that
// uint8_t voxels are independently addressable (the reason Mask is not
// vector<bool>).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "volume/components.hpp"
#include "volume/volume.hpp"

namespace ifet {
namespace {

Mask blobby_mask() {
  // Three separated axis-aligned blobs plus scattered single voxels.
  Mask mask(Dims{24, 20, 16}, 0);
  auto box = [&](Index3 lo, Index3 hi) {
    for (int k = lo.z; k <= hi.z; ++k)
      for (int j = lo.y; j <= hi.y; ++j)
        for (int i = lo.x; i <= hi.x; ++i) mask.at(i, j, k) = 1;
  };
  box({1, 1, 1}, {6, 5, 4});
  box({10, 8, 6}, {16, 14, 10});
  box({19, 2, 11}, {22, 5, 14});
  mask.at(8, 18, 2) = 1;
  mask.at(0, 19, 15) = 1;
  return mask;
}

TEST(RegionGrowStress, ConcurrentLabelingOfSharedMaskIsDeterministic) {
  const Mask mask = blobby_mask();
  const VolumeF values(mask.dims(), 2.5f);
  const Labeling reference = label_components(mask, &values);

  constexpr int kThreads = 6;
  std::vector<Labeling> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[static_cast<std::size_t>(t)] =
                     label_components(mask, &values); });
  }
  for (auto& th : threads) th.join();

  for (const Labeling& r : results) {
    ASSERT_EQ(r.components.size(), reference.components.size());
    for (std::size_t c = 0; c < r.components.size(); ++c) {
      EXPECT_EQ(r.components[c].label, reference.components[c].label);
      EXPECT_EQ(r.components[c].voxel_count,
                reference.components[c].voxel_count);
    }
    for (std::size_t i = 0; i < r.labels.size(); ++i) {
      ASSERT_EQ(r.labels[i], reference.labels[i]) << "voxel " << i;
    }
  }
}

TEST(RegionGrowStress, ConcurrentSmallComponentRemoval) {
  const Mask mask = blobby_mask();
  const Mask reference = remove_small_components(mask, 10);
  constexpr int kThreads = 4;
  std::vector<Mask> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = remove_small_components(mask, 10);
    });
  }
  for (auto& th : threads) th.join();
  for (const Mask& r : results) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      ASSERT_EQ(r[i], reference[i]);
    }
  }
}

TEST(RegionGrowStress, DisjointMaskVoxelWritesAreRaceFree) {
  // The Mask contract: writing disjoint uint8 voxels from many threads is
  // well-defined. Flip every voxel through the pool with chunk size 1 and
  // verify the result (TSan validates the claim itself).
  Mask mask(Dims{32, 32, 8}, 0);
  ThreadPool pool(4);
  pool.parallel_for_dynamic(0, mask.size(), 1,
                            [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i) {
                                mask[i] = static_cast<std::uint8_t>(i % 2);
                              }
                            });
  std::size_t expected = mask.size() / 2;
  EXPECT_EQ(mask_count(mask), expected);
}

TEST(RegionGrowStress, ParallelMaskOpsAgainstSharedInputs) {
  const Mask a = blobby_mask();
  Mask b(a.dims(), 0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>((i / 3) % 2);
  }
  const Mask ref_and = mask_and(a, b);
  const Mask ref_or = mask_or(a, b);
  const Mask ref_sub = mask_subtract(a, b);

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      const Mask out = (t % 3 == 0)   ? mask_and(a, b)
                       : (t % 3 == 1) ? mask_or(a, b)
                                      : mask_subtract(a, b);
      const Mask& ref = (t % 3 == 0) ? ref_and : (t % 3 == 1) ? ref_or : ref_sub;
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i] != ref[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ifet
