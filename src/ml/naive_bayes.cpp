#include "ml/naive_bayes.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ifet {

namespace {
// Variance floor: degenerate (constant) features must not produce infinite
// likelihoods.
constexpr double kMinVariance = 1e-6;
}  // namespace

NaiveBayesClassifier::NaiveBayesClassifier(int input_width)
    : input_width_(input_width) {
  IFET_REQUIRE(input_width > 0, "NaiveBayes: input width must be > 0");
}

void NaiveBayesClassifier::fit(const TrainingSet& set, int /*budget*/) {
  IFET_REQUIRE(!set.empty(), "NaiveBayes::fit: empty training set");
  IFET_REQUIRE(static_cast<int>(set.input_width()) == input_width_,
               "NaiveBayes::fit: input width mismatch");
  const auto width = static_cast<std::size_t>(input_width_);
  ClassModel models[2];
  std::size_t counts[2] = {0, 0};
  for (auto& m : models) {
    m.mean.assign(width, 0.0);
    m.variance.assign(width, 0.0);
  }
  for (std::size_t s = 0; s < set.size(); ++s) {
    IFET_REQUIRE(set[s].target.size() == 1,
                 "NaiveBayes::fit: scalar targets required");
    int cls = set[s].target[0] >= 0.5 ? 1 : 0;
    ++counts[cls];
    for (std::size_t f = 0; f < width; ++f) {
      models[cls].mean[f] += set[s].input[f];
    }
  }
  IFET_REQUIRE(counts[0] > 0 && counts[1] > 0,
               "NaiveBayes::fit: need samples of both classes");
  for (int cls = 0; cls < 2; ++cls) {
    for (std::size_t f = 0; f < width; ++f) {
      models[cls].mean[f] /= static_cast<double>(counts[cls]);
    }
  }
  for (std::size_t s = 0; s < set.size(); ++s) {
    int cls = set[s].target[0] >= 0.5 ? 1 : 0;
    for (std::size_t f = 0; f < width; ++f) {
      double d = set[s].input[f] - models[cls].mean[f];
      models[cls].variance[f] += d * d;
    }
  }
  for (int cls = 0; cls < 2; ++cls) {
    for (std::size_t f = 0; f < width; ++f) {
      models[cls].variance[f] = std::max(
          kMinVariance,
          models[cls].variance[f] / static_cast<double>(counts[cls]));
    }
    models[cls].log_prior = std::log(static_cast<double>(counts[cls]) /
                                     static_cast<double>(set.size()));
  }
  negative_ = std::move(models[0]);
  positive_ = std::move(models[1]);
  fitted_ = true;
}

double NaiveBayesClassifier::log_likelihood(
    const ClassModel& model, std::span<const double> input) const {
  double ll = model.log_prior;
  for (std::size_t f = 0; f < input.size(); ++f) {
    double var = model.variance[f];
    double d = input[f] - model.mean[f];
    ll += -0.5 * std::log(2.0 * std::numbers::pi * var) -
          0.5 * d * d / var;
  }
  return ll;
}

double NaiveBayesClassifier::predict(std::span<const double> input) const {
  IFET_REQUIRE(fitted_, "NaiveBayes::predict before fit");
  IFET_REQUIRE(static_cast<int>(input.size()) == input_width_,
               "NaiveBayes::predict: input width mismatch");
  double lp = log_likelihood(positive_, input);
  double ln = log_likelihood(negative_, input);
  // Posterior via the stable logistic of the log-odds.
  return 1.0 / (1.0 + std::exp(ln - lp));
}

}  // namespace ifet
