// Sec 8 contribution claim, quantified: "that the system can take
// multivariate data as input opens a new dimension for scientific
// discovery." On the solver's two-variable combustion jet the feature of
// interest is the entrainment side of the mixing layer — strong vorticity
// in fuel-free air (the vortices stirring ambient fluid into the jet).
// No single variable expresses that conjunction: most strong vorticity
// rides the fuel stream, and most fuel-free air is quiescent: we sweep the best
// possible single-variable thresholds as baselines, add the univariate
// learned classifier, and show the multivariate classifier is the only
// method that extracts the joint feature.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "core/dataspace.hpp"
#include "core/multivariate.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "volume/ops.hpp"

int main() {
  using namespace ifet;
  std::cout << "=== Multivariate extraction: entrainment vortices "
               "(strong vorticity AND fuel-free) ===\n"
            << "(running the fluid solver)\n";

  CombustionJetConfig cfg;
  cfg.dims = Dims{24, 36, 16};
  cfg.num_steps = 12;
  cfg.solver_steps_per_snapshot = 3;
  CombustionJetSource source(cfg);
  const int step = 11;
  VolumeF vorticity = source.generate(step);
  const VolumeF& fuel = source.fuel_snapshot(step);
  std::vector<const VolumeF*> vars{&vorticity, &fuel};
  auto [vlo, vhi] = source.value_range();

  // Ground truth: top-quartile vorticity AND fuel-free (< 0.2).
  std::vector<float> sorted(vorticity.data().begin(),
                            vorticity.data().end());
  auto nth = sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size()) * 3 / 4;
  std::nth_element(sorted.begin(), nth, sorted.end());
  const float vcut = *nth;
  Mask truth(vorticity.dims());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth[i] = (vorticity[i] >= vcut && fuel[i] < 0.2f) ? 1 : 0;
  }
  std::cout << mask_count(truth) << " joint-feature voxels of "
            << truth.size() << "\n\n";

  Table table({"method", "f1", "recall", "precision"});
  CsvWriter csv(bench::output_dir() + "/multivariate.csv",
                {"method", "f1", "recall", "precision"});
  auto report = [&](const std::string& name, const Mask& extracted) {
    MaskScore s = score_mask(extracted, truth);
    table.add_row({name, Table::num(s.f1()), Table::num(s.recall()),
                   Table::num(s.precision())});
    csv.row(name, s.f1(), s.recall(), s.precision());
    return s.f1();
  };

  // (a)/(b) Best-possible single-variable thresholds (oracle sweeps).
  auto best_threshold = [&](const VolumeF& field, float lo, float hi) {
    double best_f1 = -1.0;
    Mask best(field.dims());
    for (int t = 0; t <= 40; ++t) {
      float cut = lo + (hi - lo) * t / 40.0f;
      Mask m = threshold_mask(field, cut, hi + 1.0f);
      double f1 = score_mask(m, truth).f1();
      if (f1 > best_f1) {
        best_f1 = f1;
        best = m;
      }
    }
    return best;
  };
  double f1_vort = report("best vorticity threshold",
                          best_threshold(vorticity, static_cast<float>(vlo),
                                         static_cast<float>(vhi)));
  double f1_fuel = report("best fuel threshold",
                          best_threshold(fuel, 0.0f, 1.0f));

  // Painted samples shared by the learned methods.
  Rng rng(55);
  std::vector<PaintedVoxel> painted;
  int positives = 0, negatives = 0;
  while (positives < 250 || negatives < 250) {
    std::size_t pick = rng.uniform_index(truth.size());
    Index3 p = truth.coord_of(pick);
    if (truth[pick] && positives < 250) {
      painted.push_back({p, step, 1.0});
      ++positives;
    } else if (!truth[pick] && negatives < 250) {
      painted.push_back({p, step, 0.0});
      ++negatives;
    }
  }

  // (c) Univariate learned classifier on vorticity only.
  DataSpaceConfig ucfg;
  ucfg.spec.use_position = false;
  ucfg.spec.use_time = false;
  ucfg.spec.shell_samples = 6;
  DataSpaceClassifier univariate(cfg.num_steps, vlo, vhi, ucfg);
  univariate.add_samples(vorticity, step, painted);
  univariate.train(400);
  double f1_uni = report("learned, vorticity only",
                         univariate.classify_mask(vorticity, step, 0.5));

  // (d) Multivariate learned classifier on both variables.
  MultivariateConfig mcfg;
  mcfg.spec.use_position = false;
  mcfg.spec.use_time = false;
  mcfg.spec.shell_samples = 6;
  MultivariateClassifier multivariate(cfg.num_steps,
                                      {{vlo, vhi}, {0.0, 1.0}}, mcfg);
  multivariate.add_samples(vars, step, painted);
  multivariate.train(400);
  double f1_multi =
      report("learned, vorticity+fuel", multivariate.classify_mask(vars,
                                                                   step,
                                                                   0.5));
  table.print(std::cout);
  std::cout << '\n';

  bench::ShapeCheck check;
  // The exact conjunction has a hard quantile boundary a smooth network
  // can only approximate, so the absolute bar is moderate; the decisive
  // margins over every single-variable method are the claim.
  check.expect(f1_multi > 0.6,
               "the multivariate classifier extracts the joint feature");
  check.expect(f1_multi > std::max(f1_vort, f1_fuel) + 0.1,
               "no single-variable threshold can express the conjunction");
  check.expect(f1_multi > f1_uni + 0.05,
               "the second variable adds information beyond the univariate "
               "learned classifier");
  return check.exit_code();
}
