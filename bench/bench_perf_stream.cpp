// Out-of-core streaming bench: scan, track, and synthesize TFs over a
// sequence whose decoded size exceeds the cache budget, and verify the
// streamed results are bit-identical to the fully-resident path.
//
// Shape claims (exit nonzero on failure):
//   - a warm CacheManager hit performs zero heap allocations (the shared
//     AllocGuard pins the splice-based LRU refresh);
//   - a sequential scan under a 3-step budget returns exactly the volumes
//     the source decodes, with nonzero evictions and peak residency within
//     the budget;
//   - with lookahead 2 the prefetcher covers every step after the first,
//     so the prefetch hit rate is >= 50%;
//   - IATF transfer functions and 4D region-growing masks are identical
//     between an unlimited-budget CachedSequence and a tight-budget
//     StreamedSequence;
//   - perturbed replay (util/determinism.hpp): Tracker region growing on
//     the argon-bubble sequence digests bitwise identically across pool
//     widths {1, 4, hardware}, cold and warm caches (fresh vs reused
//     tight-budget sequence), and repeated runs — the dynamic half of the
//     IFET_DETERMINISTIC contract on Tracker::grow_step;
//   - fault mode: with every step failing once transiently, the retry
//     layer makes the scan bit-identical to the clean run (with nonzero
//     retries in the stats), and a permanently corrupt step under
//     --fail-policy=skip degrades to a gap instead of an abort.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <thread>

#include "bench_util.hpp"
#include "core/iatf.hpp"
#include "core/tracking.hpp"
#include "flowsim/datasets.hpp"
#include "io/compressed.hpp"
#include "math/vec.hpp"
#include "parallel/thread_pool.hpp"
#include "stream/cache_manager.hpp"
#include "stream/fault_injection.hpp"
#include "stream/streamed_sequence.hpp"
#include "util/alloc_guard.hpp"
#include "util/csv.hpp"
#include "util/determinism.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

// Counting operator new/delete for this binary: the warm-hit section below
// asserts the IFET_HOT cache lookup never allocates (the LRU refresh is a
// list splice, not erase+push_front; docs/STATIC_ANALYSIS.md).
IFET_ALLOC_GUARD_INSTALL();

namespace {

using namespace ifet;

bool volumes_equal(const VolumeF& a, const VolumeF& b) {
  if (!(a.dims() == b.dims())) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

bool masks_equal(const TrackResult& a, const TrackResult& b) {
  if (a.masks.size() != b.masks.size()) return false;
  for (const auto& [step, mask] : a.masks) {
    auto it = b.masks.find(step);
    if (it == b.masks.end()) return false;
    if (!(mask.dims() == it->second.dims())) return false;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] != it->second[i]) return false;
    }
  }
  return true;
}

TransferFunction1D train_iatf_tf(const VolumeSequence& sequence,
                                 int eval_step) {
  Iatf iatf(sequence);
  auto [vlo, vhi] = sequence.value_range();
  TransferFunction1D key(vlo, vhi);
  key.add_band(lerp(vlo, vhi, 0.6), vhi, 0.9, 0.05 * (vhi - vlo));
  iatf.add_key_frame(0, key);
  iatf.add_key_frame(sequence.num_steps() - 1, key);
  iatf.train(40);
  return iatf.evaluate(eval_step);
}

}  // namespace

int main() {
  std::cout << "=== perf: out-of-core streaming vs fully resident ===\n";

  SwirlingFlowConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 16;
  auto source = std::make_shared<SwirlingFlowSource>(cfg);
  const std::string cvol_path = "/tmp/ifet_bench_stream.cvol";
  write_compressed_sequence(*source, cvol_path);
  auto reader = std::make_shared<CompressedFileSource>(cvol_path);

  const std::size_t step_bytes =
      static_cast<std::size_t>(cfg.dims.count()) * sizeof(float);
  const std::size_t budget = 3 * step_bytes;  // sequence is 16 steps

  bench::ShapeCheck check;

  // --- Steady-state allocation contract on the cache hit path. Run before
  // any StreamedSequence spins up its prefetcher thread, so the only code
  // that could allocate inside the guard is the lookup itself.
  {
    CacheManager cache(budget);
    for (int t = 0; t < 3; ++t) {
      cache.insert(t, reader->generate(t), false);
    }
    (void)cache.lookup(0);  // warm: first hit clears the prefetched flag
    DenyAllocScope guard;
    std::size_t hits = 0;
    for (int pass = 0; pass < 64; ++pass) {
      for (int t = 0; t < 3; ++t) {
        if (cache.lookup(t) != nullptr) ++hits;
      }
    }
    // Snapshot before expect(): its message strings allocate.
    const std::uint64_t hit_allocs = guard.allocations();
    check.expect(hits == 64 * 3, "every warm lookup is a hit");
    check.expect(hit_allocs == 0,
                 "warm CacheManager hits perform zero heap allocations");
  }

  // --- Sequential scan under budget: correctness + eviction + prefetch.
  StreamConfig stream_cfg;
  stream_cfg.budget_bytes = budget;
  stream_cfg.lookahead = 2;
  StreamedSequence streamed(reader, stream_cfg);

  Stopwatch scan_watch;
  bool scan_correct = true;
  for (int t = 0; t < cfg.num_steps; ++t) {
    if (!volumes_equal(streamed.step(t), reader->generate(t))) {
      scan_correct = false;
    }
  }
  const double scan_seconds = scan_watch.seconds();
  const StreamStats scan_stats = streamed.stats();

  Table table({"metric", "value"});
  table.add_row({"budget_steps", "3"});
  table.add_row({"lookahead", "2"});
  table.add_row({"scan_seconds", Table::num(scan_seconds, 4)});
  table.add_row({"evictions", std::to_string(scan_stats.evictions)});
  table.add_row({"prefetch_hit_rate",
                 Table::num(scan_stats.prefetch_hit_rate(), 3)});
  table.add_row({"peak_resident_bytes",
                 std::to_string(scan_stats.peak_bytes_resident)});
  table.print(std::cout);
  std::cout << scan_stats.summary() << "\n\n";

  CsvWriter csv(bench::output_dir() + "/perf_stream.csv",
                {"scan_seconds", "evictions", "prefetch_hit_rate"});
  csv.row(scan_seconds, scan_stats.evictions,
          scan_stats.prefetch_hit_rate());

  check.expect(scan_correct,
               "streamed scan returns the exact volumes the source decodes");
  check.expect(scan_stats.evictions > 0,
               "scanning 16 steps through a 3-step budget evicts");
  check.expect(scan_stats.peak_bytes_resident <= budget,
               "peak residency stays within the byte budget");
  check.expect(scan_stats.prefetch_hit_rate() >= 0.5,
               "prefetch hit rate >= 50% with lookahead 2");

  // --- Equivalence: IATF synthesis and 4D tracking, resident vs streamed.
  CachedSequence resident(reader, cfg.num_steps);
  StreamConfig tight_cfg;
  tight_cfg.budget_bytes = budget;
  StreamedSequence tight(reader, tight_cfg);

  const int eval_step = cfg.num_steps / 2;
  TransferFunction1D tf_resident = train_iatf_tf(resident, eval_step);
  TransferFunction1D tf_streamed = train_iatf_tf(tight, eval_step);
  bool tf_equal = true;
  for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
    if (tf_resident.opacity_entry(e) != tf_streamed.opacity_entry(e)) {
      tf_equal = false;
    }
  }
  check.expect(tf_equal,
               "IATF TF is identical under unlimited and 3-step budgets");

  FixedRangeCriterion criterion(0.5, 1.0);
  Mask seeds = source->feature_mask(eval_step);
  TrackResult track_resident =
      Tracker(resident, criterion).track_from_mask(seeds, eval_step);
  TrackResult track_streamed =
      Tracker(tight, criterion).track_from_mask(seeds, eval_step);
  check.expect(!track_resident.masks.empty(),
               "tracking from the labeled feature mask reaches some steps");
  check.expect(masks_equal(track_resident, track_streamed),
               "4D region growing is identical under a 3-step budget");
  std::cout << "tracking: " << tight.stats().summary() << "\n";

  // --- Perturbed-replay determinism check on Tracker::grow_step
  // (IFET_DETERMINISTIC): region growing over the argon-bubble sequence,
  // replayed across pool widths, cache temperatures, and repeated runs.
  {
    ArgonBubbleConfig argon_cfg;
    argon_cfg.dims = Dims{32, 32, 32};
    argon_cfg.num_steps = 12;
    auto argon = std::make_shared<ArgonBubbleSource>(argon_cfg);
    const int grow_step = argon_cfg.num_steps / 2;
    const double band_c = argon->ring_band_center(grow_step);
    const double band_h = argon->ring_band_half_width();
    FixedRangeCriterion argon_criterion(band_c - band_h, band_c + band_h);
    const Mask argon_seeds = argon->feature_mask(grow_step);
    const std::size_t argon_budget =
        3 * static_cast<std::size_t>(argon_cfg.dims.count()) * sizeof(float);

    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    ReplayCheck replay("tracker_grow_argon", {1, 4, hw});
    ReplayReport report = replay.run([&](const ReplayTrial& trial) {
      ThreadPool::ScopedGlobalWidth width(trial.threads);
      // A fresh tight-budget sequence per trial starts cold; warm trials
      // track twice through the same cache and digest the second result.
      StreamConfig replay_cfg;
      replay_cfg.budget_bytes = argon_budget;
      StreamedSequence argon_seq(argon, replay_cfg);
      Tracker tracker(argon_seq, argon_criterion);
      TrackResult grown = tracker.track_from_mask(argon_seeds, grow_step);
      if (trial.warm) {
        grown = tracker.track_from_mask(argon_seeds, grow_step);
      }
      DigestSink sink;
      for (const auto& [step, mask] : grown.masks) {  // std::map: sorted
        sink.pod(step);
        sink.span(mask.data().data(), mask.size());
      }
      return sink.value();
    });
    std::cout << report.summary();
    check.expect(report.ok,
                 "tracker grow on argon bubble digests identically across "
                 "pool widths and cache temperatures");
  }

  // --- Fault mode: transient faults are invisible behind the retry layer.
  auto flaky = std::make_shared<FaultInjectingSource>(
      reader, std::vector<FaultSpec>{
                  {FaultSpec::kAllSteps, FaultKind::kTransient, 1}});
  StreamConfig fault_cfg;
  fault_cfg.budget_bytes = budget;
  fault_cfg.lookahead = 2;
  fault_cfg.max_retries = 2;
  StreamedSequence faulted(flaky, fault_cfg);
  bool fault_correct = true;
  for (int t = 0; t < cfg.num_steps; ++t) {
    if (!volumes_equal(faulted.step(t), reader->generate(t))) {
      fault_correct = false;
    }
  }
  const StreamStats fault_stats = faulted.stats();
  std::cout << "faulted scan: " << fault_stats.summary() << "\n";
  check.expect(fault_correct,
               "scan with one transient fault per step is bit-identical");
  check.expect(fault_stats.retries >= static_cast<std::uint64_t>(
                                          cfg.num_steps),
               "every step's transient fault shows up as a retry");
  check.expect(fault_stats.load_failures == 0,
               "no step exhausts its retry budget");

  // --- Fault mode: a permanently corrupt step degrades, not aborts.
  auto corrupt = std::make_shared<FaultInjectingSource>(
      reader, std::vector<FaultSpec>{
                  {cfg.num_steps / 2, FaultKind::kCorrupt, 1}});
  StreamConfig skip_cfg;
  skip_cfg.budget_bytes = budget;
  skip_cfg.lookahead = 2;
  skip_cfg.max_retries = 1;
  skip_cfg.fail_policy = FailPolicy::kSkipStep;
  StreamedSequence degraded(corrupt, skip_cfg);
  bool skip_correct = true;
  int gaps = 0;
  for (int t = 0; t < cfg.num_steps; ++t) {
    const VolumeF* v = degraded.try_step(t);
    if (v == nullptr) {
      ++gaps;
    } else if (!volumes_equal(*v, reader->generate(t))) {
      skip_correct = false;
    }
  }
  const StreamStats skip_stats = degraded.stats();
  std::cout << "degraded scan: " << skip_stats.summary() << "\n";
  std::cout << "degraded scan: " << degraded.store().step_health().summary()
            << "\n";
  check.expect(skip_correct && gaps == 1,
               "skip policy yields exactly one gap, all other steps exact");
  check.expect(skip_stats.quarantined_steps == 1,
               "the corrupt step is quarantined");

  std::remove(cvol_path.c_str());
  return check.exit_code();
}
