// Ablation: where IATF training samples come from (paper Sec 4.2.2).
//
// The paper rejects random-voxel sampling: "when the feature of interest is
// small, more likely data values of non-interested features are selected.
// This not only wastes the time for training unimportant data, but might
// lead to poor results due to the lack of generalized training samples,"
// and instead samples the key-frame *transfer-function entries*, so "each
// entry in the IATF has the same amount of training."
//
// We train two networks with identical budgets on the argon-bubble data:
// (a) TF-entry sampling (the library's Iatf) and (b) random-voxel sampling
// (a baseline built here on the same inputs <value, cumhist, t>). The ring
// occupies ~1% of the volume, so random sampling rarely sees ring values.
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/iatf.hpp"
#include "flowsim/datasets.hpp"
#include "nn/normalizer.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ifet;

/// Baseline: the same <value, cumhist, t> -> opacity network, trained from
/// randomly sampled voxels of the key-frame volumes (targets looked up in
/// the key-frame TFs).
class RandomVoxelIatf {
 public:
  RandomVoxelIatf(const VolumeSequence& seq, std::uint64_t seed)
      : seq_(seq), rng_(seed), network_({3, 12, 1}, rng_) {
    auto [vlo, vhi] = seq.value_range();
    normalizer_ = InputNormalizer(
        {vlo, 0.0, 0.0},
        {vhi, 1.0, static_cast<double>(seq.num_steps() - 1)});
  }

  void add_key_frame(int step, const TransferFunction1D& tf,
                     std::size_t samples) {
    const VolumeF& volume = seq_.step(step);
    const CumulativeHistogram& ch = seq_.cumulative_histogram(step);
    for (std::size_t s = 0; s < samples; ++s) {
      std::size_t v = rng_.uniform_index(volume.size());
      double value = volume[v];
      set_.add(normalizer_.apply(std::vector<double>{
                   value, ch.fraction_at(value), static_cast<double>(step)}),
               {tf.opacity(value)});
    }
  }

  void train(int epochs) {
    Trainer trainer(network_, BackpropConfig{0.25, 0.8}, 99);
    trainer.run_epochs(set_, epochs);
  }

  TransferFunction1D evaluate(int step) const {
    auto [vlo, vhi] = seq_.value_range();
    TransferFunction1D tf(vlo, vhi);
    const CumulativeHistogram& ch = seq_.cumulative_histogram(step);
    for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
      double value = tf.entry_value(e);
      tf.set_opacity_entry(
          e, network_.forward_scalar(normalizer_.apply(std::vector<double>{
                 value, ch.fraction_at(value),
                 static_cast<double>(step)})));
    }
    return tf;
  }

 private:
  const VolumeSequence& seq_;
  Rng rng_;
  Mlp network_;
  InputNormalizer normalizer_;
  TrainingSet set_;
};

}  // namespace

int main() {
  using namespace ifet;
  std::cout << "=== Ablation: IATF training-sample source (Sec 4.2.2) ===\n";

  ArgonBubbleConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 360;
  auto source = std::make_shared<ArgonBubbleSource>(cfg);
  CachedSequence seq(source, 8, 256);
  auto [vlo, vhi] = seq.value_range();

  auto ring_tf = [&](int step) {
    TransferFunction1D tf(vlo, vhi);
    const double c = source->ring_band_center(step);
    const double h = source->ring_band_half_width();
    tf.add_band(c - h, c + h, 1.0, 0.5 * h);
    return tf;
  };

  const int keys[] = {195, 255};
  const int epochs = 2500;
  // Equal budget: the Iatf gets 256 samples per key frame, so the random
  // baseline gets 256 random voxels per key frame too.
  Iatf entry_sampled(seq);
  RandomVoxelIatf random_sampled(seq, 31337);
  for (int k : keys) {
    entry_sampled.add_key_frame(k, ring_tf(k));
    random_sampled.add_key_frame(k, ring_tf(k), 256);
  }
  entry_sampled.train(epochs);
  random_sampled.train(epochs);

  Table table({"t", "tf_entry_sampling_f1", "random_voxel_sampling_f1"});
  CsvWriter csv(bench::output_dir() + "/ablation_training.csv",
                {"t", "entry", "random"});
  double entry_mean = 0.0, random_mean = 0.0;
  int count = 0;
  for (int t = 195; t <= 255; t += 15) {
    const VolumeF& volume = seq.step(t);
    Mask truth = source->feature_mask(t);
    double fe = score_mask(
                    bench::tf_extract(volume, entry_sampled.evaluate(t)),
                    truth)
                    .f1();
    double fr = score_mask(
                    bench::tf_extract(volume, random_sampled.evaluate(t)),
                    truth)
                    .f1();
    entry_mean += fe;
    random_mean += fr;
    ++count;
    table.add_row({std::to_string(t), Table::num(fe), Table::num(fr)});
    csv.row(t, fe, fr);
  }
  entry_mean /= count;
  random_mean /= count;
  table.print(std::cout);
  std::cout << "\nmean F1: entry-sampling " << entry_mean
            << "  random-voxel " << random_mean << "\n\n";

  bench::ShapeCheck check;
  check.expect(entry_mean > 0.6,
               "TF-entry sampling extracts the ring across the interval");
  check.expect(entry_mean > random_mean + 0.1,
               "TF-entry sampling beats random-voxel sampling at equal "
               "budget (the ring is a small feature)");
  return check.exit_code();
}
