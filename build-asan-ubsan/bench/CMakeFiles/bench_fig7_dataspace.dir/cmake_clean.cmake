file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_dataspace.dir/bench_fig7_dataspace.cpp.o"
  "CMakeFiles/bench_fig7_dataspace.dir/bench_fig7_dataspace.cpp.o.d"
  "bench_fig7_dataspace"
  "bench_fig7_dataspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_dataspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
