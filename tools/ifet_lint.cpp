// ifet_lint — multi-pass static analyzer for the ifet source tree.
//
// Registered as a ctest (see tools/CMakeLists.txt) so CI fails when a
// convention regresses; docs/STATIC_ANALYSIS.md documents every pass and
// docs/CORRECTNESS.md the per-file convention rules. Suppress a finding
// with `// ifet-lint: allow(<rule>)` on the offending line or the line
// above (file-wide: `// ifet-lint: allow-file(<rule>)`).
//
// Passes (each with its own exit-code bit, so CI logs show at a glance
// which family regressed):
//   conventions (bit 1)  per-file repo-convention rules: voxel-raw-access,
//                        extent-unchecked, iostream-in-header, raw-rand,
//                        catch-all, direct-volume-load,
//                        scalar-forward-in-hot-loop.
//   lock-order  (bit 2)  cross-TU mutex-acquisition graph; fails on
//                        cycles, re-entrant acquisitions, and MutexRank
//                        inversions (rule lock-order-cycle).
//   layering    (bit 4)  include-layer DAG (rule layer-violation) and
//                        header-dependency cycles (rule include-cycle).
//   callgraph   (bit 8)  cross-TU hot-path escape analysis from IFET_HOT
//                        roots (rules hot-path-alloc, hot-path-throw,
//                        hot-path-io, hot-path-lock).
//   determinism (bit 16) cross-TU reproducibility escape analysis from
//                        IFET_DETERMINISTIC roots (rules
//                        det-unordered-iter, det-rand-time,
//                        det-pointer-order, det-float-reduce, det-env);
//                        shares the callgraph pass's graph.
// I/O or usage errors exit 64.
//
// Usage: ifet_lint [--format=text|json] [--only=rule,rule...]
//                  [--baseline=<file>] [--jobs=N] <dir-or-file>...
//   (typically: ifet_lint --baseline=tools/lint_baseline.txt <repo>/src)
//
// --only accepts rule families: `--only=hot-path` selects every
// hot-path-* rule, `--only=det` the determinism family. --baseline points
// at a suppression list of known findings, one `rule|module/file|symbol`
// triple per line (# comments allowed); baselined findings are excluded
// from the exit code (and the text report) but still listed in JSON with
// "baseline_suppressed": true, so a new pass can land strict while
// existing debt is paid down incrementally. --jobs=N fans the per-file
// load/tokenize/conventions scan over N threads (0 = hardware
// concurrency); findings merge in path order so the output is identical
// at any width.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lint/callgraph_pass.hpp"
#include "lint/conventions_pass.hpp"
#include "lint/determinism_pass.hpp"
#include "lint/layering_pass.hpp"
#include "lint/lock_order_pass.hpp"
#include "lint/tokenizer.hpp"

namespace {

using ifet_lint::Finding;
using ifet_lint::SourceFile;
namespace fs = std::filesystem;

constexpr int kExitConventions = 1;
constexpr int kExitLockOrder = 2;
constexpr int kExitLayering = 4;
constexpr int kExitHotPath = 8;
constexpr int kExitDeterminism = 16;
constexpr int kExitError = 64;

int exit_bit_for(const std::string& rule) {
  if (rule == "lock-order-cycle") return kExitLockOrder;
  if (rule == "layer-violation" || rule == "include-cycle") {
    return kExitLayering;
  }
  if (rule.rfind("hot-path-", 0) == 0) return kExitHotPath;
  if (rule.rfind("det-", 0) == 0) return kExitDeterminism;
  if (rule == "io-error") return kExitError;
  return kExitConventions;
}

/// --only match: exact rule name, or a family prefix (`hot-path` selects
/// `hot-path-alloc` etc.).
bool only_selects(const std::set<std::string>& only, const std::string& rule) {
  if (only.count(rule) != 0) return true;
  for (const auto& sel : only) {
    if (rule.rfind(sel + "-", 0) == 0) return true;
  }
  return false;
}

/// Baseline key: rule + module-relative path + symbol. The module-level
/// path (layering's include_key) keeps entries stable across checkouts.
std::string baseline_key(const Finding& f) {
  return f.rule + "|" + ifet_lint::include_key(fs::path(f.path)) + "|" +
         f.symbol;
}

bool load_baseline(const fs::path& path, std::set<std::string>& entries) {
  std::ifstream in(path);
  if (!in) return false;
  for (std::string line; std::getline(in, line);) {
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const auto end = line.find_last_not_of(" \t\r");
    entries.insert(line.substr(start, end - start + 1));
  }
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Golden JSON schema (tests/lint_json_schema_test.cpp pins it): every
// finding object carries {rule, file, line, symbol, chain,
// baseline_suppressed, message}; baselined findings stay in the list
// (flagged true) so artifact consumers can audit the debt, while the
// top-level "baseline_suppressed" count and "exit_code" reflect only the
// live findings.
void print_json(const std::vector<Finding>& findings,
                std::size_t files_scanned, std::size_t baseline_suppressed,
                int exit_code) {
  std::cout << "{\n  \"files_scanned\": " << files_scanned
            << ",\n  \"baseline_suppressed\": " << baseline_suppressed
            << ",\n  \"exit_code\": " << exit_code << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::cout << (i == 0 ? "\n" : ",\n")
              << "    {\"rule\": \"" << json_escape(f.rule)
              << "\", \"file\": \"" << json_escape(f.path)
              << "\", \"line\": " << f.line << ", \"symbol\": \""
              << json_escape(f.symbol) << "\", \"chain\": \""
              << json_escape(f.chain) << "\", \"baseline_suppressed\": "
              << (f.baseline_suppressed ? "true" : "false")
              << ", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  std::cout << (findings.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::set<std::string> only;
  std::string baseline_path;
  std::vector<fs::path> roots;
  std::size_t jobs = 1;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      char* end = nullptr;
      const long n = std::strtol(arg.c_str() + 7, &end, 10);
      if (end == nullptr || *end != '\0' || n < 0) {
        std::cerr << "ifet_lint: --jobs needs a non-negative integer\n";
        return kExitError;
      }
      jobs = n == 0 ? std::max(1u, std::thread::hardware_concurrency())
                    : static_cast<std::size_t>(n);
    } else if (arg == "--baseline") {
      if (a + 1 >= argc) {
        std::cerr << "ifet_lint: --baseline needs a file argument\n";
        return kExitError;
      }
      baseline_path = argv[++a];
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") {
        std::cerr << "ifet_lint: unknown format '" << format << "'\n";
        return kExitError;
      }
    } else if (arg.rfind("--only=", 0) == 0) {
      std::string rules = arg.substr(7);
      std::size_t start = 0;
      while (start <= rules.size()) {
        const auto comma = rules.find(',', start);
        const auto len =
            (comma == std::string::npos ? rules.size() : comma) - start;
        if (len > 0) only.insert(rules.substr(start, len));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (only.empty()) {
        std::cerr << "ifet_lint: --only needs at least one rule\n";
        return kExitError;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "ifet_lint: unknown option '" << arg << "'\n";
      return kExitError;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: ifet_lint [--format=text|json] "
                 "[--only=rule,rule...] [--baseline=<file>] [--jobs=N] "
                 "<dir-or-file>...\n";
    return kExitError;
  }
  std::set<std::string> baseline;
  if (!baseline_path.empty() &&
      !load_baseline(baseline_path, baseline)) {
    std::cerr << "ifet_lint: cannot read baseline file '" << baseline_path
              << "'\n";
    return kExitError;
  }

  std::vector<fs::path> all_paths;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      all_paths.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::cerr << "ifet_lint: no such file or directory: " << root << "\n";
      return kExitError;
    }
    std::vector<fs::path> paths;
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file() || !ifet_lint::is_source_file(it->path())) {
        continue;
      }
      paths.push_back(it->path());
    }
    // Directory iteration order is filesystem-dependent; sort so findings
    // and include-graph traversal are stable across machines.
    std::sort(paths.begin(), paths.end());
    all_paths.insert(all_paths.end(), paths.begin(), paths.end());
  }

  // Per-file work (load, tokenize, conventions scan) fans out over
  // --jobs threads; each file's findings land in its own slot and merge
  // in path order below, so the report is byte-identical at any width.
  // The cross-TU passes stay serial — they consume the whole file set.
  std::vector<SourceFile> files(all_paths.size());
  std::vector<std::vector<Finding>> per_file(all_paths.size());
  {
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1); i < all_paths.size();
           i = next.fetch_add(1)) {
        files[i] = ifet_lint::load_file(all_paths[i]);
        if (!files[i].ok) {
          per_file[i].push_back(
              {files[i].path.string(), 0, "io-error", "cannot read file"});
          continue;
        }
        ifet_lint::run_conventions_pass(files[i], per_file[i]);
      }
    };
    const std::size_t width =
        std::min<std::size_t>(std::max<std::size_t>(jobs, 1),
                              all_paths.empty() ? 1 : all_paths.size());
    if (width <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      for (std::size_t t = 0; t < width; ++t) threads.emplace_back(worker);
      for (auto& t : threads) t.join();
    }
  }
  std::vector<Finding> findings;
  for (auto& pf : per_file) {
    for (auto& f : pf) findings.push_back(std::move(f));
  }

  ifet_lint::run_lock_order_pass(files, findings);
  ifet_lint::run_layering_pass(files, findings);
  const auto analysis = ifet_lint::build_callgraph_analysis(files);
  ifet_lint::run_callgraph_pass(files, analysis, findings);
  ifet_lint::run_determinism_pass(files, analysis, findings);

  std::size_t baseline_suppressed = 0;
  if (!baseline.empty()) {
    for (auto& f : findings) {
      if (baseline.count(baseline_key(f)) != 0) {
        f.baseline_suppressed = true;
        ++baseline_suppressed;
      }
    }
  }

  if (!only.empty()) {
    std::vector<Finding> kept;
    for (auto& f : findings) {
      if (only_selects(only, f.rule) || f.rule == "io-error") {
        kept.push_back(std::move(f));
      }
    }
    findings.swap(kept);
  }

  int exit_code = 0;
  for (const auto& f : findings) {
    if (!f.baseline_suppressed) exit_code |= exit_bit_for(f.rule);
  }

  if (format == "json") {
    print_json(findings, files.size(), baseline_suppressed, exit_code);
    return exit_code;
  }
  std::size_t live = 0;
  for (const auto& f : findings) {
    if (f.baseline_suppressed) continue;
    ++live;
    std::cerr << f.path << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (live != 0) {
    std::cerr << "ifet_lint: " << live << " finding(s) in "
              << files.size() << " file(s)";
    if (baseline_suppressed > 0) {
      std::cerr << " (+" << baseline_suppressed << " baselined)";
    }
    std::cerr << "\n";
  } else {
    std::cout << "ifet_lint: OK (" << files.size() << " files scanned";
    if (baseline_suppressed > 0) {
      std::cout << ", " << baseline_suppressed << " baselined";
    }
    std::cout << ")\n";
  }
  return exit_code;
}
