# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan-ubsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("parallel")
subdirs("math")
subdirs("volume")
subdirs("nn")
subdirs("ml")
subdirs("tf")
subdirs("io")
subdirs("flowsim")
subdirs("core")
subdirs("render")
subdirs("session")
subdirs("eval")
