file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_io.dir/bench_perf_io.cpp.o"
  "CMakeFiles/bench_perf_io.dir/bench_perf_io.cpp.o.d"
  "bench_perf_io"
  "bench_perf_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
