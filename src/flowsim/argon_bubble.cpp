#include <cmath>
#include <numbers>

#include "flowsim/datasets.hpp"
#include "parallel/thread_pool.hpp"

namespace ifet {

namespace {
// Pre-drift ring amplitude: the ring band sits *inside* the value range,
// below the turbulence blobs, so its cumulative-histogram coordinate is a
// nontrivial interior point (Fig 2's circled peak).
constexpr double kRingAmplitude = 0.75;
// Ground-truth ring voxels are those within this fraction of the tube
// radius; at the corresponding Gaussian falloff the ring contribution is
// kRingAmplitude * exp(-0.6^2) ~= 0.52.
constexpr double kRingCoreFraction = 0.6;
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

ArgonBubbleSource::ArgonBubbleSource(const ArgonBubbleConfig& config)
    : config_(config), noise_(config.seed) {
  IFET_REQUIRE(config_.num_steps > 0, "ArgonBubble: need at least one step");
  IFET_REQUIRE(config_.ring_tube_radius > 0.0,
               "ArgonBubble: tube radius must be positive");
}

double ArgonBubbleSource::torus_distance(const Vec3& p, int step) const {
  const double major =
      config_.ring_major_radius0 + config_.ring_growth * step;
  // Ring drifts slowly along +z as the shocked bubble convects downstream.
  const double zc = clamp(0.35 + 0.0004 * step, 0.0, 0.75);
  const double qx = p.x - 0.5;
  const double qy = p.y - 0.5;
  const double q = std::sqrt(qx * qx + qy * qy);
  const double dz = p.z - zc;
  const double dr = q - major;
  return std::sqrt(dr * dr + dz * dz);
}

double ArgonBubbleSource::base_value(const Vec3& p, int step) const {
  const double d = torus_distance(p, step);
  const double r = config_.ring_tube_radius;
  const double ring = kRingAmplitude * std::exp(-(d * d) / (r * r));

  // Smaller turbulence structures trail below/behind the ring; they carry
  // higher peak values than the ring so the ring is an interior band.
  const double t4 = step * 0.05;
  double turb = noise_.fbm(p.x * 6.0, p.y * 6.0, p.z * 6.0, t4, 4);
  const double zc = clamp(0.35 + 0.0004 * step, 0.0, 0.75);
  const double wake = smoothstep(zc, zc - 0.3, p.z);  // 1 below ring, 0 above
  turb = std::max(0.0, turb) * (0.6 + config_.turbulence_amplitude) * wake;

  const double ambient =
      0.08 * std::fabs(noise_.fbm(p.x * 3.0, p.y * 3.0, p.z * 3.0, 3));

  return std::max({ring, turb, ambient});
}

double ArgonBubbleSource::drift(double value, int step) const {
  // Global monotonic transform: gain oscillates slowly, offset walks up.
  // Monotonicity in `value` means the cumulative-histogram coordinate of
  // every structure is invariant under this drift — the Fig 2 property.
  const double gain = 0.8 + 0.15 * std::sin(kTwoPi * step / 240.0);
  const double offset = config_.drift_per_step * step;
  return gain * value + offset;
}

VolumeF ArgonBubbleSource::generate(int step) const {
  IFET_REQUIRE(step >= 0 && step < config_.num_steps,
               "ArgonBubble: step out of range");
  const Dims d = config_.dims;
  VolumeF out(d);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 p{(i + 0.5) / d.x, (j + 0.5) / d.y, (k + 0.5) / d.z};
        out[out.linear_index(i, j, k)] =
            static_cast<float>(drift(base_value(p, step), step));
      }
    }
  });
  return out;
}

Mask ArgonBubbleSource::feature_mask(int step) const {
  const Dims d = config_.dims;
  Mask out(d);
  const double cutoff = kRingCoreFraction * config_.ring_tube_radius;
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 p{(i + 0.5) / d.x, (j + 0.5) / d.y, (k + 0.5) / d.z};
        out[out.linear_index(i, j, k)] =
            torus_distance(p, step) <= cutoff ? 1 : 0;
      }
    }
  }
  return out;
}

std::pair<double, double> ArgonBubbleSource::value_range() const {
  // Max base value is ~1.0 (turbulence), max gain 0.95, max offset at the
  // final step; keep a small safety margin.
  double max_offset = config_.drift_per_step * (config_.num_steps - 1);
  return {0.0, 0.95 * 1.05 + max_offset + 0.05};
}

double ArgonBubbleSource::ring_band_center(int step) const {
  const double lo =
      kRingAmplitude * std::exp(-(kRingCoreFraction * kRingCoreFraction));
  const double hi = kRingAmplitude;
  return 0.5 * (drift(lo, step) + drift(hi, step));
}

double ArgonBubbleSource::ring_band_half_width() const {
  const double lo =
      kRingAmplitude * std::exp(-(kRingCoreFraction * kRingCoreFraction));
  const double hi = kRingAmplitude;
  // Gain is at most 0.95; use the nominal gain 0.8 for the half width.
  return 0.5 * (hi - lo) * 0.95;
}

CachedSequence make_sequence(std::shared_ptr<const VolumeSource> source,
                             std::size_t cache_capacity, int histogram_bins) {
  return CachedSequence(std::move(source), cache_capacity, histogram_bins);
}

}  // namespace ifet
