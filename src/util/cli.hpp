// Tiny command-line option parser for the examples and bench binaries.
// Accepts "--key=value" and bare "--flag" arguments; anything else is kept
// as a positional argument. No external dependency, deliberately minimal.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace ifet {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if "--name" or "--name=..." was passed.
  bool has(const std::string& name) const;

  /// Value of "--name=value", or `fallback` if absent.
  std::string get(const std::string& name, const std::string& fallback) const;
  int get_int(const std::string& name, int fallback) const;
  double get_double(const std::string& name, double fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace ifet
