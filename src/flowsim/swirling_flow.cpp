#include <cmath>

#include "flowsim/datasets.hpp"
#include "parallel/thread_pool.hpp"

namespace ifet {

SwirlingFlowSource::SwirlingFlowSource(const SwirlingFlowConfig& config)
    : config_(config), noise_(config.seed) {
  IFET_REQUIRE(config_.num_steps > 0, "SwirlingFlow: need steps");
  IFET_REQUIRE(config_.peak_value0 > 0.0, "SwirlingFlow: peak must be > 0");
}

double SwirlingFlowSource::peak_value(int step) const {
  return std::max(0.05, config_.peak_value0 - config_.peak_decay * step);
}

Vec3 SwirlingFlowSource::feature_center(int step) const {
  // The feature rides the swirl: it orbits the volume axis at a fixed
  // radius, so consecutive steps overlap spatially (the paper's tracking
  // assumption) while the data value decays.
  const double angle = config_.swirl_rate * step;
  return Vec3{0.5 + 0.25 * std::cos(angle), 0.5 + 0.25 * std::sin(angle),
              0.5 + 0.05 * std::sin(angle * 0.5)};
}

double SwirlingFlowSource::feature_contribution(const Vec3& p,
                                                int step) const {
  Vec3 d = p - feature_center(step);
  const double r = config_.feature_radius;
  return peak_value(step) * std::exp(-d.norm2() / (r * r));
}

VolumeF SwirlingFlowSource::generate(int step) const {
  IFET_REQUIRE(step >= 0 && step < config_.num_steps,
               "SwirlingFlow: step out of range");
  const Dims d = config_.dims;
  VolumeF out(d);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 p{(i + 0.5) / d.x, (j + 0.5) / d.y, (k + 0.5) / d.z};
        // Swirled background: rotate the noise-lookup frame with time so
        // the context field visibly swirls but stays in a low value band.
        double angle = config_.swirl_rate * step;
        double cx = p.x - 0.5, cy = p.y - 0.5;
        double rx = cx * std::cos(angle) - cy * std::sin(angle);
        double ry = cx * std::sin(angle) + cy * std::cos(angle);
        double background =
            0.22 * std::fabs(noise_.fbm((rx + 0.5) * 4.0, (ry + 0.5) * 4.0,
                                        p.z * 4.0, 3));
        out[out.linear_index(i, j, k)] = static_cast<float>(
            std::max(feature_contribution(p, step), background));
      }
    }
  });
  return out;
}

Mask SwirlingFlowSource::feature_mask(int step) const {
  // Ground truth uses a threshold *relative to the decayed peak*: the
  // feature's spatial support is constant; only its values fade. This is
  // exactly the Fig 10 semantics — the feature "still exists" even after
  // its values fall below any fixed criterion.
  const Dims d = config_.dims;
  Mask out(d);
  const double cut = 0.5 * peak_value(step);
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 p{(i + 0.5) / d.x, (j + 0.5) / d.y, (k + 0.5) / d.z};
        out[out.linear_index(i, j, k)] =
            feature_contribution(p, step) >= cut ? 1 : 0;
      }
    }
  }
  return out;
}

std::pair<double, double> SwirlingFlowSource::value_range() const {
  return {0.0, 1.0};
}

}  // namespace ifet
