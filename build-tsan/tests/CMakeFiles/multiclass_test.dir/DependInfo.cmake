
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/multiclass_test.cpp" "tests/CMakeFiles/multiclass_test.dir/multiclass_test.cpp.o" "gcc" "tests/CMakeFiles/multiclass_test.dir/multiclass_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ml/CMakeFiles/ifet_ml.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/ifet_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/flowsim/CMakeFiles/ifet_flowsim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/render/CMakeFiles/ifet_render.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/session/CMakeFiles/ifet_session.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/eval/CMakeFiles/ifet_eval.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/ifet_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/ifet_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tf/CMakeFiles/ifet_tf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/volume/CMakeFiles/ifet_volume.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/math/CMakeFiles/ifet_math.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/ifet_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
