// Asynchronous lookahead scheduler for the streaming subsystem.
//
// Overlaps timestep decode with the caller's compute: schedule(step) posts
// a load to the shared ThreadPool and returns immediately; the decoded
// volume lands in the CacheManager marked `from_prefetch` so its first
// consumer counts a prefetch hit. A synchronous fetch that finds its step
// in flight waits for that load instead of issuing a duplicate — the
// latency is partially hidden, and it still counts as a prefetch hit.
//
// Load errors are not thrown from worker threads (ThreadPool::post tasks
// must not throw): the failure is captured as an exception_ptr keyed by
// step, the step leaves the in-flight set (so nothing deadlocks and no
// partial volume is cached), and the next synchronous fetch collects it
// via take_failure() — the error surfaces on the caller's thread where
// the store's retry/quarantine machinery can act on it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "parallel/thread_pool.hpp"
#include "stream/cache_manager.hpp"
#include "util/deadline.hpp"
#include "util/ordered_mutex.hpp"

namespace ifet {

class Prefetcher {
 public:
  /// `load` decodes one timestep (called on worker threads; must be
  /// thread-safe). Decoded steps are inserted into `cache`; both must
  /// outlive the Prefetcher.
  Prefetcher(ThreadPool& pool, CacheManager& cache,
             std::function<VolumeF(int)> load);

  /// Drains: blocks until every in-flight load has completed.
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Schedule an async load of `step`; no-op when the step is already
  /// resident or in flight, or when the pool is shutting down.
  void schedule(int step) IFET_EXCLUDES(mutex_);

  /// Block until `step` is no longer in flight. Returns true when the call
  /// actually waited on (or raced with) a scheduled load — the caller
  /// should re-check the cache before loading itself.
  bool wait(int step) IFET_EXCLUDES(mutex_);

  /// Deadline-bounded variant: gives up with a typed DeadlineExceeded when
  /// `deadline` runs out while the step is still in flight. The async load
  /// itself keeps running (workers carry no deadline) and lands in the
  /// cache as usual, so a later fetch with a fresh budget hits. This is
  /// what keeps a stuck or slow decode from blocking a server strand
  /// forever (docs/ROBUSTNESS.md, "Overload and deadlines").
  bool wait(int step, const Deadline& deadline) IFET_EXCLUDES(mutex_);

  bool in_flight(int step) const IFET_EXCLUDES(mutex_);

  /// Error captured by a failed async load of `step`, if any; clears the
  /// record so a later retry starts clean. Returns nullptr when the step
  /// never failed (or its failure was already taken).
  std::exception_ptr take_failure(int step) IFET_EXCLUDES(mutex_);

  /// Counter snapshot (prefetch_issued / failures / decode latency).
  StreamStats stats() const IFET_EXCLUDES(mutex_);

 private:
  ThreadPool& pool_;
  CacheManager& cache_;
  /// User callback; always invoked with mutex_ released (it performs disk
  /// decode and may call back into the cache or the pool).
  std::function<VolumeF(int)> load_;

  mutable OrderedMutex mutex_{MutexRank::kPrefetcher};
  std::condition_variable_any done_cv_;
  std::unordered_set<int> in_flight_ IFET_GUARDED_BY(mutex_);
  std::unordered_map<int, std::exception_ptr> failed_ IFET_GUARDED_BY(mutex_);
  std::uint64_t issued_ IFET_GUARDED_BY(mutex_) = 0;
  std::uint64_t failures_ IFET_GUARDED_BY(mutex_) = 0;
  double decode_seconds_ IFET_GUARDED_BY(mutex_) = 0.0;
};

}  // namespace ifet
