// PASS fixture: a fixed-seed mt19937 is reproducible and must NOT be
// flagged; a reviewed diagnostic wall-clock read is waived with
// IFET_DET_ALLOW (the waiver marker on the line above the escape).
#include <ctime>
#include <random>

#define IFET_DETERMINISTIC
#define IFET_DET_ALLOW(reason) \
  do {                         \
    (void)sizeof(reason);      \
  } while (false)

namespace fixture {

class Jitter {
 public:
  IFET_DETERMINISTIC double sample(double x) {
    std::mt19937 engine(1234);  // fixed seed: reproducible, not flagged
    trace();
    return x + static_cast<double>(engine()) / 4294967295.0;
  }

 private:
  void trace() {
    IFET_DET_ALLOW("diagnostic timestamp never feeds the result");
    last_stamp_ = clock();
  }

  long last_stamp_ = 0;
};

}  // namespace fixture
