file(REMOVE_RECURSE
  "CMakeFiles/ifet_tool.dir/ifet_tool.cpp.o"
  "CMakeFiles/ifet_tool.dir/ifet_tool.cpp.o.d"
  "ifet_tool"
  "ifet_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
