// FAIL fixture: an IFET_DETERMINISTIC root reaches rand() through an
// unannotated helper — the transitive-callee escape. Only reachability
// from the root flags it; the helper carries no annotation of its own,
// and the finding must name the full call chain.
#include <cstdlib>

#define IFET_DETERMINISTIC

namespace fixture {

class Jitter {
 public:
  IFET_DETERMINISTIC double sample(double x) { return x + noise(); }

 private:
  double noise() {
    return static_cast<double>(rand()) / RAND_MAX;  // transitive escape
  }
};

}  // namespace fixture
