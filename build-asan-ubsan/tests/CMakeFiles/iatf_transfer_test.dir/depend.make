# Empty dependencies file for iatf_transfer_test.
# This may be replaced when dependencies are built.
