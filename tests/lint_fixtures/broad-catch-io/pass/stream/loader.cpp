// Fixture (should PASS): src/stream is the sanctioned place to field load
// failures broadly — it retries, quarantines, and reattributes them.
#include <exception>
#include <string>

int warm(const std::string& path) {
  try {
    auto v = read_vol(path);
    return 0;
  } catch (const std::exception&) {
    return -1;
  }
}
