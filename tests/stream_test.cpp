#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dataspace.hpp"
#include "core/iatf.hpp"
#include "io/compressed.hpp"
#include "core/tracking.hpp"
#include "math/vec.hpp"
#include "stream/cache_manager.hpp"
#include "stream/derived_cache.hpp"
#include "stream/streamed_sequence.hpp"
#include "stream/volume_store.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

constexpr Dims kDims{4, 4, 4};
constexpr std::size_t kStepBytes = 64 * sizeof(float);  // 4*4*4 floats

VolumeF step_volume(int step) {
  VolumeF v(kDims);
  v.fill(static_cast<float>(step) / 100.0f);
  return v;
}

std::shared_ptr<CallbackSource> counter_source(int steps) {
  return std::make_shared<CallbackSource>(
      kDims, steps, std::pair<double, double>{0.0, 1.0},
      [](int step) { return step_volume(step); });
}

/// A source with spatial structure: a blob drifting +x by one voxel per
/// step, so IATF / classification / tracking all have something to find.
std::shared_ptr<CallbackSource> blob_source(Dims d, int steps) {
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d](int step) {
        VolumeF v(d);
        for (int k = 0; k < d.z; ++k) {
          for (int j = 0; j < d.y; ++j) {
            for (int i = 0; i < d.x; ++i) {
              const double dx = i - (d.x / 4 + step);
              const double dy = j - d.y / 2;
              const double dz = k - d.z / 2;
              const double r2 = dx * dx + dy * dy + dz * dz;
              v.at(i, j, k) = static_cast<float>(
                  clamp(1.0 - r2 / 9.0, 0.0, 1.0));
            }
          }
        }
        return v;
      });
}

// ---------------------------------------------------------------------------
// CacheManager

TEST(CacheManager, LruEvictionOrder) {
  CacheManager cache(3 * kStepBytes);
  cache.insert(0, step_volume(0));
  cache.insert(1, step_volume(1));
  cache.insert(2, step_volume(2));
  EXPECT_EQ(cache.lru_order(), (std::vector<int>{2, 1, 0}));

  // A hit moves the step to the front.
  EXPECT_NE(cache.lookup(0), nullptr);
  EXPECT_EQ(cache.lru_order(), (std::vector<int>{0, 2, 1}));

  // Over budget: the least recently used unpinned step (1) goes.
  cache.insert(3, step_volume(3));
  EXPECT_EQ(cache.lru_order(), (std::vector<int>{3, 0, 2}));
  EXPECT_FALSE(cache.resident(1));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheManager, ByteAccounting) {
  CacheManager cache(3 * kStepBytes);
  for (int s = 0; s < 8; ++s) cache.insert(s, step_volume(s));
  EXPECT_EQ(cache.resident_steps(), 3u);
  EXPECT_EQ(cache.resident_bytes(), 3 * kStepBytes);
  EXPECT_LE(cache.stats().peak_bytes_resident, 3 * kStepBytes);
  EXPECT_EQ(cache.stats().evictions, 5u);
}

TEST(CacheManager, UnlimitedBudgetNeverEvicts) {
  CacheManager cache(0);
  for (int s = 0; s < 32; ++s) cache.insert(s, step_volume(s));
  EXPECT_EQ(cache.resident_steps(), 32u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(CacheManager, PinnedEntrySurvivesEviction) {
  CacheManager cache(2 * kStepBytes);
  cache.insert(0, step_volume(0));
  cache.pin(0);
  cache.insert(1, step_volume(1));
  cache.insert(2, step_volume(2));  // would evict 0 (LRU) were it unpinned
  EXPECT_TRUE(cache.resident(0));
  EXPECT_FALSE(cache.resident(1));

  cache.unpin(0);
  cache.insert(3, step_volume(3));  // now 0 is evictable again
  EXPECT_FALSE(cache.resident(0));
}

TEST(CacheManager, PinOnNonResidentStepAppliesAtInsert) {
  CacheManager cache(2 * kStepBytes);
  cache.pin(5);
  for (int s = 0; s < 8; ++s) cache.insert(s, step_volume(s));
  EXPECT_TRUE(cache.resident(5));
}

TEST(CacheManager, WindowPinningProtectsTheWindow) {
  CacheManager cache(3 * kStepBytes);
  cache.pin_window(1, 3);
  for (int s = 0; s < 6; ++s) cache.insert(s, step_volume(s));
  EXPECT_TRUE(cache.resident(1));
  EXPECT_TRUE(cache.resident(2));
  EXPECT_TRUE(cache.resident(3));
  EXPECT_EQ(cache.pinned_window(), (std::pair<int, int>{1, 3}));

  // Moving the window releases the old steps to the LRU policy...
  cache.pin_window(4, 5);
  cache.insert(6, step_volume(6));
  cache.insert(7, step_volume(7));
  EXPECT_FALSE(cache.resident(1));

  // ... and protects the new window steps once they are (re)inserted.
  cache.insert(4, step_volume(4));
  cache.insert(5, step_volume(5));
  cache.insert(8, step_volume(8));
  EXPECT_TRUE(cache.resident(4));
  EXPECT_TRUE(cache.resident(5));
}

TEST(CacheManager, EvictionKeepsReaderReferencesAlive) {
  CacheManager cache(1 * kStepBytes);
  auto held = cache.insert(0, step_volume(0));
  cache.insert(1, step_volume(1));  // evicts 0
  EXPECT_FALSE(cache.resident(0));
  ASSERT_NE(held, nullptr);
  EXPECT_FLOAT_EQ(held->at(0, 0, 0), 0.0f);  // still readable
}

// ---------------------------------------------------------------------------
// VolumeStore

TEST(VolumeStore, EvictedStepReloadsWithIdenticalContent) {
  auto source = counter_source(8);
  VolumeStoreConfig cfg;
  cfg.budget_bytes = 2 * kStepBytes;
  cfg.lookahead = 0;
  cfg.async_prefetch = false;
  VolumeStore store(source, cfg);

  auto first = store.fetch(0);
  store.fetch(1);
  store.fetch(2);  // evicts 0
  auto reloaded = store.fetch(0);
  ASSERT_NE(reloaded, nullptr);
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i], (*reloaded)[i]);
  }
  EXPECT_GT(store.stats().evictions, 0u);
}

TEST(VolumeStore, SequentialScanPrefetchHitRate) {
  auto source = counter_source(8);
  VolumeStoreConfig cfg;
  cfg.budget_bytes = 3 * kStepBytes;
  cfg.lookahead = 2;
  cfg.async_prefetch = false;  // deterministic synchronous lookahead
  VolumeStore store(source, cfg);

  for (int s = 0; s < 8; ++s) {
    EXPECT_FLOAT_EQ(store.fetch(s)->at(0, 0, 0),
                    static_cast<float>(s) / 100.0f);
  }
  const StreamStats stats = store.stats();
  // Only step 0 is a demand load; lookahead 2 covers every later step.
  EXPECT_EQ(stats.demand_loads, 1u);
  EXPECT_EQ(stats.prefetch_hits, 7u);
  EXPECT_DOUBLE_EQ(stats.prefetch_hit_rate(), 7.0 / 8.0);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(VolumeStore, AsyncPrefetchScanIsCorrectAndCovered) {
  auto source = counter_source(12);
  VolumeStoreConfig cfg;
  cfg.budget_bytes = 3 * kStepBytes;
  cfg.lookahead = 2;
  cfg.async_prefetch = true;
  VolumeStore store(source, cfg);

  for (int s = 0; s < 12; ++s) {
    EXPECT_FLOAT_EQ(store.fetch(s)->at(0, 0, 0),
                    static_cast<float>(s) / 100.0f);
  }
  // fetch() waits on in-flight prefetches, so coverage is deterministic
  // even with the decodes running on the pool.
  const StreamStats stats = store.stats();
  EXPECT_EQ(stats.demand_loads, 1u);
  EXPECT_GE(stats.prefetch_hit_rate(), 0.5);
}

TEST(VolumeStore, PinWindowKeepsStepsResident) {
  auto source = counter_source(8);
  VolumeStoreConfig cfg;
  cfg.budget_bytes = 3 * kStepBytes;
  cfg.lookahead = 0;
  cfg.async_prefetch = false;
  VolumeStore store(source, cfg);

  store.pin_window(2, 4);  // prefetches the window synchronously
  for (int s : {2, 3, 4}) EXPECT_TRUE(store.cache().resident(s));
  store.fetch(6);
  store.fetch(7);
  for (int s : {2, 3, 4}) EXPECT_TRUE(store.cache().resident(s));
}

TEST(VolumeStore, BrickIndexServedFromContainerWithoutDecode) {
  const std::string path = "/tmp/ifet_stream_bricks.cvol";
  auto generator = counter_source(5);
  write_compressed_sequence(*generator, path);

  VolumeStoreConfig cfg;
  cfg.lookahead = 0;
  cfg.async_prefetch = false;
  auto store = VolumeStore::open_cvol(path, cfg);
  const auto bricks = store->brick_index(3);
  ASSERT_NE(bricks, nullptr);
  EXPECT_EQ(bricks->volume_dims(), kDims);
  // The v2 container serves the index from its brick section: no payload
  // was decoded, and the memo absorbs repeat lookups.
  EXPECT_EQ(store->load_count(), 0u);
  EXPECT_EQ(store->brick_metadata_reads(), 1u);
  EXPECT_EQ(store->brick_builds(), 0u);
  EXPECT_EQ(store->brick_index(3).get(), bricks.get());
  EXPECT_EQ(store->brick_metadata_reads(), 1u);
  std::remove(path.c_str());
}

TEST(VolumeStore, BrickIndexFallbackBuildsFromDecodedStep) {
  // A procedural source has no container metadata; the store must build
  // the index from the fetched step — once.
  auto source = counter_source(4);
  VolumeStoreConfig cfg;
  cfg.lookahead = 0;
  cfg.async_prefetch = false;
  VolumeStore store(source, cfg);
  const auto bricks = store.brick_index(1);
  ASSERT_NE(bricks, nullptr);
  EXPECT_EQ(store.brick_metadata_reads(), 0u);
  EXPECT_EQ(store.brick_builds(), 1u);
  EXPECT_EQ(store.load_count(), 1u);
  EXPECT_EQ(store.brick_index(1).get(), bricks.get());
  EXPECT_EQ(store.brick_builds(), 1u);

  // StreamedSequence exposes the same index to the renderer.
  StreamedSequence seq(source, {});
  const auto via_seq = seq.brick_index(1);
  ASSERT_NE(via_seq, nullptr);
  EXPECT_EQ(via_seq->volume_dims(), kDims);
}

// ---------------------------------------------------------------------------
// DerivedCache

TEST(DerivedCache, MemoizesPerStepAndParams) {
  DerivedCache cache;
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return Histogram::of(step_volume(1), 16, 0.0, 1.0);
  };
  auto a = cache.histogram(1, 42, compute);
  auto b = cache.histogram(1, 42, compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(a.get(), b.get());

  cache.histogram(2, 42, compute);   // different step
  cache.histogram(1, 43, compute);   // different params hash
  EXPECT_EQ(computes, 3);
  EXPECT_EQ(cache.stats().derived_hits, 1u);
  EXPECT_EQ(cache.stats().derived_misses, 3u);
}

TEST(DerivedCache, TransferFunctionsShareAcrossCriteria) {
  auto source = blob_source(Dims{8, 8, 8}, 4);
  CachedSequence sequence(source, 4);
  Iatf iatf(sequence);
  TransferFunction1D key(0.0, 1.0);
  key.add_band(0.5, 1.0, 0.9, 0.05);
  iatf.add_key_frame(0, key);
  iatf.train(5);

  DerivedCache derived;
  AdaptiveTfCriterion a(iatf, 0.25, &derived);
  AdaptiveTfCriterion b(iatf, 0.25, &derived);
  a.accept(1, 0.7);
  b.accept(1, 0.7);  // second criterion reuses the memoized TF
  EXPECT_EQ(derived.stats().derived_hits, 1u);
}

TEST(Iatf, ParamsHashChangesWithTraining) {
  auto source = blob_source(Dims{8, 8, 8}, 4);
  CachedSequence sequence(source, 4);
  Iatf iatf(sequence);
  TransferFunction1D key(0.0, 1.0);
  key.add_band(0.5, 1.0, 0.9, 0.05);
  iatf.add_key_frame(0, key);
  const std::uint64_t before = iatf.params_hash();
  iatf.train(3);
  EXPECT_NE(iatf.params_hash(), before);
  iatf.add_key_frame(3, key);
  EXPECT_NE(iatf.params_hash(), before);
}

// ---------------------------------------------------------------------------
// StreamedSequence

TEST(StreamedSequence, MatchesSourceUnderTightBudget) {
  const int steps = 10;
  auto source = counter_source(steps);
  StreamConfig cfg;
  cfg.budget_bytes = 3 * kStepBytes;
  cfg.async_prefetch = false;
  StreamedSequence seq(source, cfg);

  for (int s = 0; s < steps; ++s) {
    EXPECT_FLOAT_EQ(seq.step(s).at(1, 2, 3), static_cast<float>(s) / 100.0f);
  }
  EXPECT_GT(seq.stats().evictions, 0u);
}

TEST(StreamedSequence, WindowReferencesStayValid) {
  auto source = counter_source(10);
  StreamConfig cfg;
  cfg.budget_bytes = 2 * kStepBytes;  // tighter than the pinned window
  cfg.pin_radius = 1;
  cfg.async_prefetch = false;
  StreamedSequence seq(source, cfg);

  seq.hint_window(3, 5);
  const VolumeF& a = seq.step(3);
  const VolumeF& b = seq.step(4);
  const VolumeF& c = seq.step(5);
  // All three window references remain readable together.
  EXPECT_FLOAT_EQ(a.at(0, 0, 0), 0.03f);
  EXPECT_FLOAT_EQ(b.at(0, 0, 0), 0.04f);
  EXPECT_FLOAT_EQ(c.at(0, 0, 0), 0.05f);
}

TEST(StreamedSequence, HistogramsMemoizedAcrossEviction) {
  auto source = counter_source(8);
  StreamConfig cfg;
  cfg.budget_bytes = 2 * kStepBytes;
  cfg.async_prefetch = false;
  StreamedSequence seq(source, cfg);

  const CumulativeHistogram& ch = seq.cumulative_histogram(0);
  const double f = ch.fraction_at(0.5);
  for (int s = 0; s < 8; ++s) seq.step(s);  // evicts step 0's voxels
  const std::size_t loads = seq.generation_count();
  // Asking again must hit the derived cache, not reload the volume.
  EXPECT_DOUBLE_EQ(seq.cumulative_histogram(0).fraction_at(0.5), f);
  EXPECT_EQ(seq.generation_count(), loads);
  EXPECT_GT(seq.stats().derived_hits, 0u);
}

TEST(StreamedSequence, RejectsInvertedWindowHint) {
  auto source = counter_source(4);
  StreamedSequence seq(source);
  EXPECT_THROW(seq.hint_window(3, 1), Error);
}

/// The acceptance bar: IATF, classification, and tracking produce
/// bit-identical results with budget = unlimited and budget = 3 steps.
class StreamedEquivalence : public ::testing::Test {
 protected:
  static constexpr int kSteps = 6;
  Dims dims_{8, 8, 8};

  void SetUp() override {
    source_ = blob_source(dims_, kSteps);
    resident_ = std::make_unique<CachedSequence>(source_, kSteps);
    StreamConfig cfg;
    cfg.budget_bytes = 3 * dims_.count() * sizeof(float);
    cfg.async_prefetch = false;
    streamed_ = std::make_unique<StreamedSequence>(source_, cfg);
  }

  std::shared_ptr<CallbackSource> source_;
  std::unique_ptr<CachedSequence> resident_;
  std::unique_ptr<StreamedSequence> streamed_;
};

TEST_F(StreamedEquivalence, IatfTransferFunctionsIdentical) {
  auto train = [&](const VolumeSequence& seq) {
    Iatf iatf(seq);
    TransferFunction1D key(0.0, 1.0);
    key.add_band(0.5, 1.0, 0.9, 0.05);
    iatf.add_key_frame(0, key);
    iatf.add_key_frame(kSteps - 1, key);
    iatf.train(30);
    return iatf.evaluate(kSteps / 2);
  };
  TransferFunction1D a = train(*resident_);
  TransferFunction1D b = train(*streamed_);
  for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
    ASSERT_EQ(a.opacity_entry(e), b.opacity_entry(e)) << "entry " << e;
  }
}

TEST_F(StreamedEquivalence, ClassifierCertaintyIdentical) {
  auto classify = [&](const VolumeSequence& seq) {
    DataSpaceClassifier c(seq.num_steps(), 0.0, 1.0);
    std::vector<PaintedVoxel> painted;
    painted.push_back({Index3{2, 4, 4}, 0, 1.0});  // on the blob
    painted.push_back({Index3{7, 0, 0}, 0, 0.0});  // background
    c.add_samples(seq, 0, painted);
    c.train(20);
    return c.classify(seq, 1);
  };
  VolumeF a = classify(*resident_);
  VolumeF b = classify(*streamed_);
  ASSERT_TRUE(a.dims() == b.dims());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST_F(StreamedEquivalence, TrackingMasksIdentical) {
  FixedRangeCriterion criterion(0.5, 1.0);
  const Index3 seed{2, 4, 4};
  TrackResult a = Tracker(*resident_, criterion).track(seed, 0);
  TrackResult b = Tracker(*streamed_, criterion).track(seed, 0);
  ASSERT_FALSE(a.masks.empty());
  ASSERT_EQ(a.masks.size(), b.masks.size());
  for (const auto& [step, mask] : a.masks) {
    auto it = b.masks.find(step);
    ASSERT_NE(it, b.masks.end()) << "step " << step;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      ASSERT_EQ(mask[i], it->second[i]) << "step " << step << " voxel " << i;
    }
  }
}

}  // namespace
}  // namespace ifet
