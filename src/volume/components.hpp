// 3D connected-component labeling and per-component attributes.
//
// Components are the paper's "features": connected sets of voxels
// satisfying a criterion (Sec 2, Sec 5). Attributes (voxel count, centroid,
// bounding box) follow Reinders et al.'s basic-attribute scheme the paper
// cites, and drive the event detection in core/track_events.
#pragma once

#include <cstdint>
#include <vector>

#include "math/vec.hpp"
#include "volume/volume.hpp"

namespace ifet {

/// Per-component summary attributes.
struct ComponentInfo {
  std::int32_t label = 0;       ///< Label >= 1 in the label volume.
  std::size_t voxel_count = 0;  ///< Size in voxels.
  Vec3 centroid;                ///< Mean voxel coordinate.
  Index3 bbox_min;              ///< Inclusive bounding box corner.
  Index3 bbox_max;              ///< Inclusive bounding box corner.
  double value_sum = 0.0;       ///< Sum of the scalar field over the component
                                ///< (0 when labeling a bare mask).
};

/// Result of a labeling pass: per-voxel labels (0 = background) plus sorted
/// (largest-first) component attributes.
struct Labeling {
  Volume<std::int32_t> labels;
  std::vector<ComponentInfo> components;

  /// Info for a given label; throws if the label does not exist.
  const ComponentInfo& info(std::int32_t label) const;

  /// Mask selecting exactly one component.
  Mask component_mask(std::int32_t label) const;
};

/// 6-connected component labeling of a binary mask (BFS flood fill).
/// If `values` is non-null it must match the mask dims and is integrated
/// into ComponentInfo::value_sum.
Labeling label_components(const Mask& mask, const VolumeF* values = nullptr);

/// Remove components smaller than `min_voxels` from a mask.
Mask remove_small_components(const Mask& mask, std::size_t min_voxels);

}  // namespace ifet
