file(REMOVE_RECURSE
  "CMakeFiles/predictive_tracker_test.dir/predictive_tracker_test.cpp.o"
  "CMakeFiles/predictive_tracker_test.dir/predictive_tracker_test.cpp.o.d"
  "predictive_tracker_test"
  "predictive_tracker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
