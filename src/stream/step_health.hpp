// Per-step health bookkeeping for fault-tolerant streaming.
//
// When a load exhausts its retries the step enters quarantine and the
// configured FailPolicy decides what consumers see: the original error
// (kThrow), a "no data" answer they can bridge over (kSkipStep), or the
// nearest healthy neighbour (kNearestGood). StepHealth is the report the
// VolumeStore exposes so tools and tests can see which steps verified,
// which loaded without a checksum, and which are quarantined.
// docs/ROBUSTNESS.md has the full policy matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ifet {

/// What a fetch of a quarantined step does (see docs/ROBUSTNESS.md).
enum class FailPolicy : std::uint8_t {
  kThrow,        ///< Rethrow the original load error (default).
  kSkipStep,     ///< Report the step as unavailable (fetch -> nullptr).
  kNearestGood,  ///< Substitute the closest loadable step.
};

/// Human-readable policy name ("throw" / "skip" / "nearest").
const char* fail_policy_name(FailPolicy policy);

/// Parse a policy name as accepted by `ifet_tool track --fail-policy`.
/// Accepts "throw", "skip" (or "skip-step"), "nearest" (or
/// "nearest-good"); throws ifet::Error on anything else.
FailPolicy parse_fail_policy(const std::string& name);

/// Lifecycle state of one timestep, as observed by the store.
enum class StepState : std::uint8_t {
  kUnknown,      ///< Never loaded.
  kVerified,     ///< Loaded with a matching payload checksum.
  kUnverified,   ///< Loaded, but the file carried no checksum.
  kQuarantined,  ///< Load exhausted retries; step is fenced off.
};

/// Snapshot of the whole sequence's health (VolumeStore::step_health()).
struct StepHealth {
  std::vector<StepState> states;  ///< states[t] for each step t.

  /// Steps currently in StepState::kQuarantined, ascending.
  std::vector<int> quarantined() const;
  std::size_t count(StepState state) const;

  /// One-line report, e.g. "steps: 14 verified, 1 unverified,
  /// 1 quarantined [7], 0 unknown".
  std::string summary() const;
};

}  // namespace ifet
