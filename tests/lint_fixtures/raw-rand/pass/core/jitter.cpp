// Fixture (should PASS): explicitly seeded engine, reproducible runs.
#include <random>

int jitter(unsigned seed) {
  std::mt19937 rng(seed);
  return static_cast<int>(rng() % 7);
}
