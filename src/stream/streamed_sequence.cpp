#include "stream/streamed_sequence.hpp"

#include <algorithm>

#include "io/compressed.hpp"
#include "util/error.hpp"
#include "util/io_error.hpp"

namespace ifet {

namespace {
VolumeStoreConfig store_config(const StreamConfig& c) {
  VolumeStoreConfig out;
  out.budget_bytes = c.budget_bytes;
  out.lookahead = c.lookahead;
  out.async_prefetch = c.async_prefetch;
  out.max_retries = c.max_retries;
  out.retry_backoff_ms = c.retry_backoff_ms;
  out.fail_policy = c.fail_policy;
  return out;
}
}  // namespace

StreamedSequence::StreamedSequence(std::shared_ptr<const VolumeSource> source,
                                   const StreamConfig& config)
    : config_(config),
      store_(std::make_unique<VolumeStore>(std::move(source),
                                           store_config(config))) {
  IFET_REQUIRE(config_.histogram_bins > 0,
               "StreamedSequence: need histogram bins");
  IFET_REQUIRE(config_.pin_radius >= 0,
               "StreamedSequence: pin_radius must be >= 0");
  auto [lo, hi] = store_->value_range();
  hist_params_ = hash_combine(
      hash_combine(static_cast<std::uint64_t>(config_.histogram_bins),
                   hash_double(lo)),
      hash_double(hi));
}

std::unique_ptr<StreamedSequence> StreamedSequence::open_cvol(
    const std::string& path, const StreamConfig& config) {
  return std::make_unique<StreamedSequence>(
      std::make_shared<CompressedFileSource>(path), config);
}

std::pair<int, int> StreamedSequence::set_window_locked(
    int lo, int hi, int last_step,
    std::vector<std::shared_ptr<const VolumeF>>& dropped) const {
  lo = std::max(lo, 0);
  hi = std::min(hi, last_step);
  window_lo_ = lo;
  window_hi_ = hi;
  for (auto it = held_.begin(); it != held_.end();) {
    if (it->first < lo || it->first > hi) {
      dropped.push_back(std::move(it->second));
      it = held_.erase(it);
    } else {
      ++it;
    }
  }
  return {lo, hi};
}

const VolumeF& StreamedSequence::step(int step) const {
  const VolumeF* volume = try_step(step);
  if (volume == nullptr) {
    throw CorruptDataError(
        "StreamedSequence: step " + std::to_string(step) +
        " is quarantined and the fail policy skips it (consumers that can "
        "bridge gaps use try_step)");
  }
  return *volume;
}

const VolumeF* StreamedSequence::try_step(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "StreamedSequence: step out of range");
  auto volume = store_->fetch(step);
  if (!volume) return nullptr;  // quarantined under FailPolicy::kSkipStep
  const int last_step = num_steps() - 1;
  bool moved = false;
  std::pair<int, int> window{0, -1};
  const VolumeF* ref = nullptr;
  std::vector<std::shared_ptr<const VolumeF>> dropped;
  {
    OrderedMutexLock lock(mutex_);
    if (step < window_lo_ || step > window_hi_) {
      window = set_window_locked(step - config_.pin_radius,
                                 step + config_.pin_radius, last_step,
                                 dropped);
      moved = true;
    }
    auto& slot = held_[step];
    slot = std::move(volume);
    ref = slot.get();
  }
  // Pinning (and the loads it triggers — synchronous decodes in
  // deterministic test mode) runs with mutex_ released: the store and its
  // loader are call-outs, never callees under this lock. Two racing
  // window moves may pin in either order; held_ keeps every returned
  // reference alive regardless, so the pin order is a residency hint, not
  // a correctness contract.
  if (moved) store_->pin_window(window.first, window.second);
  return ref;
}

std::shared_ptr<const VolumeF> StreamedSequence::fetch_or_substitute(
    int step) const {
  auto volume = store_->fetch(step);
  if (volume) return volume;
  // Skipped step: widen outward until a neighbour answers (fetch never
  // throws under kSkipStep — a failing candidate is skipped too).
  for (int d = 1; d < num_steps(); ++d) {
    const int candidates[2] = {step - d, step + d};
    for (int candidate : candidates) {
      if (candidate < 0 || candidate >= num_steps()) continue;
      auto neighbour = store_->fetch(candidate);
      if (neighbour) return neighbour;
    }
  }
  throw CorruptDataError("StreamedSequence: no loadable step near " +
                         std::to_string(step));
}

const CumulativeHistogram& StreamedSequence::cumulative_histogram(
    int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "StreamedSequence: step out of range");
  auto [lo, hi] = store_->value_range();
  auto cumhist = derived_.cumulative_histogram(
      step, hist_params_, [&]() -> CumulativeHistogram {
        auto volume = fetch_or_substitute(step);
        return CumulativeHistogram(
            Histogram::of(*volume, config_.histogram_bins, lo, hi));
      });
  // DerivedCache never evicts, so the reference outlives any eviction of
  // the source volume.
  return *cumhist;
}

Histogram StreamedSequence::histogram(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "StreamedSequence: step out of range");
  auto [lo, hi] = store_->value_range();
  auto hist =
      derived_.histogram(step, hist_params_, [&]() -> Histogram {
        auto volume = fetch_or_substitute(step);
        return Histogram::of(*volume, config_.histogram_bins, lo, hi);
      });
  return *hist;
}

void StreamedSequence::hint_window(int lo, int hi) const {
  IFET_REQUIRE(lo <= hi, "StreamedSequence::hint_window: inverted window");
  const int last_step = num_steps() - 1;
  std::pair<int, int> window;
  std::vector<std::shared_ptr<const VolumeF>> dropped;
  {
    OrderedMutexLock lock(mutex_);
    window = set_window_locked(lo, hi, last_step, dropped);
  }
  store_->pin_window(window.first, window.second);
}

StreamStats StreamedSequence::stats() const {
  StreamStats out = store_->stats();
  out.merge(derived_.stats());
  return out;
}

}  // namespace ifet
