#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the given
# directories, defaulting to the tier-1 hardened ones (src/util, src/volume).
#
# Degrades gracefully: exits 0 with a notice when clang-tidy is not
# installed, so CI scripts can call it unconditionally.
#
# Usage: tools/run_clang_tidy.sh [dir ...]
#   BUILD_DIR=<path>  compile-commands dir (default: <repo>/build)

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (not an error)" >&2
  exit 0
fi

# clang-tidy needs a compilation database; configure one if missing
# (CMAKE_EXPORT_COMPILE_COMMANDS is on by default in the root CMakeLists).
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: generating compile_commands.json in $BUILD_DIR" >&2
  cmake -S "$ROOT" -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

if [ "$#" -gt 0 ]; then
  DIRS=("$@")
else
  DIRS=("$ROOT/src/util" "$ROOT/src/volume")
fi

FILES=()
while IFS= read -r f; do FILES+=("$f"); done \
  < <(find "${DIRS[@]}" -name '*.cpp' | sort)

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no sources under: ${DIRS[*]}" >&2
  exit 2
fi

echo "run_clang_tidy: checking ${#FILES[@]} files" >&2
exec clang-tidy -p "$BUILD_DIR" --quiet "${FILES[@]}"
