#include "server/pressure.hpp"

#include <utility>
#include <vector>

#include "server/admission.hpp"
#include "stream/cache_manager.hpp"
#include "stream/derived_cache.hpp"
#include "stream/stream_stats.hpp"
#include "util/error.hpp"

namespace ifet {

PressureMonitor::PressureMonitor(CacheManager& cache,
                                 AdmissionController& admission,
                                 DerivedCache& derived,
                                 SharedStreamStats& aggregate,
                                 std::uint64_t keep_params,
                                 std::size_t budget_bytes,
                                 std::size_t step_bytes,
                                 const PressureConfig& config)
    : cache_(cache),
      admission_(admission),
      derived_(derived),
      aggregate_(aggregate),
      keep_params_(keep_params),
      budget_bytes_(budget_bytes),
      step_bytes_(step_bytes),
      config_(config) {
  IFET_REQUIRE(config_.exit_ratio < config_.enter_ratio || !config_.enabled,
               "PressureMonitor: exit_ratio must be below enter_ratio "
               "(the hysteresis band)");
  IFET_REQUIRE(config_.quota_clamp_percent >= 1 || !config_.enabled,
               "PressureMonitor: quota clamp must keep at least 1%");
}

IFET_HOT int PressureMonitor::sample() const {
  if (!config_.enabled || budget_bytes_ == 0) return 0;
  const double demand_bytes =
      static_cast<double>(admission_.demanded_pin_steps()) *
      static_cast<double>(step_bytes_);
  const double ratio = demand_bytes / static_cast<double>(budget_bytes_);
  const bool engaged = engaged_.load(std::memory_order_relaxed);
  if (!engaged && ratio >= config_.enter_ratio) return 1;
  if (engaged && ratio <= config_.exit_ratio) return -1;
  return 0;
}

void PressureMonitor::poll() {
  if (sample() == 0) return;
  OrderedMutexLock lock(mutex_);
  // Re-decide under the lock: another drain loop may have transitioned
  // between our sample and our acquisition.
  const int want = sample();
  if (want > 0) {
    engage_locked();
  } else if (want < 0) {
    release_locked();
  }
}

void PressureMonitor::engage_locked() {
  engaged_.store(true, std::memory_order_relaxed);
  ++report_.enters;
  report_.engaged = true;

  // Cheapest relief first: derived products are KiBs and recomputable.
  if (config_.shed_derived) {
    report_.derived_shed += derived_.shed_except(keep_params_);
  }

  // Revoke the outermost window pins (center-out order keeps each
  // client's current step). The admission lock is NOT held across the
  // cache calls — the delta pattern, as everywhere.
  const std::vector<std::pair<int, WindowDelta>> deltas =
      admission_.set_quota_scale(config_.quota_clamp_percent);
  for (const auto& [client, delta] : deltas) {
    (void)client;
    for (int s : delta.unpin) cache_.unpin(s);
    for (int s : delta.pin) cache_.pin(s);
    report_.pins_clamped += delta.unpin.size();
  }

  // Bluntest last, and only when asked: shrinking the budget evicts.
  if (config_.budget_clamp_percent > 0) {
    cache_.set_budget(budget_bytes_ *
                      static_cast<std::size_t>(config_.budget_clamp_percent) /
                      100);
  }

  aggregate_.count_pressure_transition();
}

void PressureMonitor::release_locked() {
  engaged_.store(false, std::memory_order_relaxed);
  ++report_.exits;
  report_.engaged = false;

  // Undo in reverse: budget back first so the re-admitted pins land in a
  // full-sized cache, then quotas to 100% — the deltas re-admit
  // center-out from each client's remembered window (pins on
  // non-resident steps stay pending until the step loads).
  if (config_.budget_clamp_percent > 0) {
    cache_.set_budget(budget_bytes_);
  }
  const std::vector<std::pair<int, WindowDelta>> deltas =
      admission_.set_quota_scale(100);
  for (const auto& [client, delta] : deltas) {
    (void)client;
    for (int s : delta.unpin) cache_.unpin(s);
    for (int s : delta.pin) cache_.pin(s);
    report_.pins_restored += delta.pin.size();
  }

  aggregate_.count_pressure_transition();
}

PressureReport PressureMonitor::report() const {
  OrderedMutexLock lock(mutex_);
  return report_;
}

}  // namespace ifet
