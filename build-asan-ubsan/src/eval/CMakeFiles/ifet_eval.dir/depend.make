# Empty dependencies file for ifet_eval.
# This may be replaced when dependencies are built.
