// Octree representation of feature masks.
//
// Silver & Wang (cited in paper Sec 2) "extract the features, and organize
// them into an octree structure to reduce the amount of data during
// tracking". Tracked-region masks are sparse and spatially coherent, so an
// octree with collapsed homogeneous nodes stores them in a small fraction
// of the dense bytes; overlap tests between consecutive steps (the
// correspondence primitive of build_feature_history) can run directly on
// two octrees without decompressing.
#pragma once

#include <cstdint>
#include <vector>

#include "volume/volume.hpp"

namespace ifet {

class MaskOctree {
 public:
  /// Build from a dense mask. The tree spans the power-of-two cube
  /// enclosing the dims; out-of-volume space is treated as empty.
  explicit MaskOctree(const Mask& mask);

  const Dims& dims() const { return dims_; }

  /// Voxel membership (false outside the volume).
  bool at(int i, int j, int k) const;

  /// Number of set voxels (computed during build).
  std::size_t voxel_count() const { return voxel_count_; }

  /// Decompress back to a dense mask (exact inverse of the constructor).
  Mask to_mask() const;

  /// Number of voxels set in both trees — the tracking overlap primitive.
  /// Walks both trees simultaneously, skipping disjoint/empty subtrees.
  static std::size_t overlap(const MaskOctree& a, const MaskOctree& b);

  /// Storage accounting (the Silver-Wang reduction).
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t memory_bytes() const { return nodes_.size() * sizeof(Node); }
  /// Bytes of the equivalent dense mask.
  std::size_t dense_bytes() const { return dims_.count(); }

 private:
  // Node child index 0 = "all empty" sentinel, 1 = "all full" sentinel;
  // real nodes start at index 2. Children are indexed by octant bit code
  // (x bit 0, y bit 1, z bit 2).
  struct Node {
    std::uint32_t child[8];
  };
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kFull = 1;

  std::uint32_t build(const Mask& mask, int x0, int y0, int z0, int size);
  void fill_region(Mask& out, std::uint32_t node, int x0, int y0, int z0,
                   int size) const;
  static std::size_t overlap_nodes(const MaskOctree& a, std::uint32_t na,
                                   const MaskOctree& b, std::uint32_t nb,
                                   int x0, int y0, int z0, int size,
                                   const Dims& clip);

  Dims dims_{};
  int root_size_ = 0;
  std::uint32_t root_ = kEmpty;
  std::vector<Node> nodes_;  // nodes_[0], nodes_[1] unused placeholders
  std::size_t voxel_count_ = 0;
};

}  // namespace ifet
