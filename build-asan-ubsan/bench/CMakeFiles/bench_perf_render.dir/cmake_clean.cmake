file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_render.dir/bench_perf_render.cpp.o"
  "CMakeFiles/bench_perf_render.dir/bench_perf_render.cpp.o.d"
  "bench_perf_render"
  "bench_perf_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
