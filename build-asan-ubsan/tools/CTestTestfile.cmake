# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-asan-ubsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ifet_lint "/root/repo/build-asan-ubsan/tools/ifet_lint" "/root/repo/src")
set_tests_properties(ifet_lint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ifet_tool_gen "/root/repo/build-asan-ubsan/tools/ifet_tool" "gen" "--dataset=swirl" "--size=16" "--cvol=/root/repo/build-asan-ubsan/tools/smoke.cvol")
set_tests_properties(ifet_tool_gen PROPERTIES  FIXTURES_SETUP "tool_cvol" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ifet_tool_info "/root/repo/build-asan-ubsan/tools/ifet_tool" "info" "/root/repo/build-asan-ubsan/tools/smoke.cvol")
set_tests_properties(ifet_tool_info PROPERTIES  FIXTURES_REQUIRED "tool_cvol" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ifet_tool_track "/root/repo/build-asan-ubsan/tools/ifet_tool" "track" "/root/repo/build-asan-ubsan/tools/smoke.cvol" "--seed=12,8,8" "--band=0.4:1.0")
set_tests_properties(ifet_tool_track PROPERTIES  FIXTURES_REQUIRED "tool_cvol" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ifet_tool_gen_vol "/root/repo/build-asan-ubsan/tools/ifet_tool" "gen" "--dataset=argon" "--size=16" "--steps=100" "--out=/root/repo/build-asan-ubsan/tools/smoke_argon")
set_tests_properties(ifet_tool_gen_vol PROPERTIES  FIXTURES_SETUP "tool_vol" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ifet_tool_render "/root/repo/build-asan-ubsan/tools/ifet_tool" "render" "/root/repo/build-asan-ubsan/tools/smoke_argon_t100.vol" "--out=/root/repo/build-asan-ubsan/tools/smoke.ppm" "--image=48")
set_tests_properties(ifet_tool_render PROPERTIES  FIXTURES_REQUIRED "tool_vol" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;33;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ifet_tool_usage_error "/root/repo/build-asan-ubsan/tools/ifet_tool")
set_tests_properties(ifet_tool_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;38;add_test;/root/repo/tools/CMakeLists.txt;0;")
