// Per-feature affine input normalization.
//
// Sigmoid units saturate when inputs are far from the unit scale, so every
// feature fed to an Mlp is first mapped to [0, 1] using ranges fitted on the
// training data. The normalizer is stored next to the network so inference
// applies the identical mapping.
#pragma once

#include <span>
#include <vector>

namespace ifet {

class InputNormalizer {
 public:
  InputNormalizer() = default;

  /// Fixed, known feature ranges (e.g. value in [lo,hi], cumhist in [0,1],
  /// time in [0, steps-1]).
  InputNormalizer(std::vector<double> lo, std::vector<double> hi);

  /// Fit ranges from sample inputs (degenerate features map to 0.5).
  static InputNormalizer fit(const std::vector<std::vector<double>>& inputs);

  std::size_t width() const { return lo_.size(); }

  /// Map a raw feature vector into [0,1]^d (clamped).
  std::vector<double> apply(std::span<const double> raw) const;

  /// Allocation-free form: writes width() doubles at `out`. Bitwise
  /// identical to apply() (the batched IATF synthesis path uses this to
  /// fill the inference batch matrix directly).
  void apply_into(std::span<const double> raw, double* out) const;

  double lo(std::size_t feature) const { return lo_[feature]; }
  double hi(std::size_t feature) const { return hi_[feature]; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace ifet
