file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_generalize.dir/bench_fig8_generalize.cpp.o"
  "CMakeFiles/bench_fig8_generalize.dir/bench_fig8_generalize.cpp.o.d"
  "bench_fig8_generalize"
  "bench_fig8_generalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_generalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
