// End-to-end pipeline integration: procedural simulation -> compressed
// on-disk sequence -> out-of-core streaming -> IATF training from key
// frames -> adaptive 4D tracking -> event analysis -> octree storage ->
// highlighted rendering. Every module boundary the paper's system crosses
// is crossed here once, with quantitative checks at each stage.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "core/batch.hpp"
#include "core/iatf.hpp"
#include "core/track_events.hpp"
#include "core/tracking.hpp"
#include "eval/metrics.hpp"
#include "eval/validation.hpp"
#include "flowsim/datasets.hpp"
#include "io/compressed.hpp"
#include "render/raycaster.hpp"
#include "session/session.hpp"
#include "volume/components.hpp"
#include "volume/octree.hpp"
#include "volume/ops.hpp"

namespace ifet {
namespace {

TEST(Integration, FullPipelineOnSwirlingFlow) {
  // 1. Simulate and persist the data set in the compressed container.
  SwirlingFlowConfig sim;
  sim.dims = Dims{32, 32, 32};
  sim.num_steps = 30;
  sim.peak_decay = 0.014;  // decays below a fixed criterion mid-sequence
  auto ground_truth = std::make_shared<SwirlingFlowSource>(sim);
  const std::string path = "/tmp/ifet_integration.cvol";
  write_compressed_sequence(*ground_truth, path);

  // 2. Stream it back from disk with a small out-of-core window.
  auto disk = std::make_shared<CompressedFileSource>(path);
  ASSERT_EQ(disk->num_steps(), sim.num_steps);
  CachedSequence sequence(disk, 6);

  // 3. Key-frame TFs at both ends; train the IATF.
  auto band_tf = [&](int step) {
    TransferFunction1D tf(0.0, 1.0);
    double peak = ground_truth->peak_value(step);
    tf.add_band(peak * 0.55, std::min(1.0, peak * 1.08), 1.0, 0.02);
    return tf;
  };
  IatfConfig icfg;
  icfg.hidden_units = 14;
  Iatf iatf(sequence, icfg);
  iatf.add_key_frame(0, band_tf(0));
  iatf.add_key_frame(sim.num_steps - 1, band_tf(sim.num_steps - 1));
  double mse = iatf.train(6000);
  EXPECT_LT(mse, 0.02);

  // 4. Adaptive 4D tracking from a seed at the feature center.
  Vec3 c = ground_truth->feature_center(0);
  Index3 seed{static_cast<int>(c.x * sim.dims.x),
              static_cast<int>(c.y * sim.dims.y),
              static_cast<int>(c.z * sim.dims.z)};
  AdaptiveTfCriterion criterion(iatf, 0.2);
  Tracker tracker(sequence, criterion);
  TrackResult track = tracker.track(seed, 0);
  ASSERT_FALSE(track.masks.empty());
  EXPECT_EQ(track.first_step(), 0);
  EXPECT_EQ(track.last_step(), sim.num_steps - 1);

  // The fixed criterion must fail on the same data (the Fig 10 contrast).
  double p0 = ground_truth->peak_value(0);
  FixedRangeCriterion fixed(p0 * 0.55, 1.0);
  Tracker fixed_tracker(sequence, fixed);
  TrackResult fixed_track = fixed_tracker.track(seed, 0);
  EXPECT_EQ(fixed_track.voxels_at(sim.num_steps - 1), 0u);

  // 5. The tracked region matches ground truth at first/middle/last steps.
  for (int step : {0, sim.num_steps / 2, sim.num_steps - 1}) {
    ASSERT_TRUE(track.reached(step)) << "step " << step;
    double recall = score_mask(track.masks.at(step),
                               ground_truth->feature_mask(step))
                        .recall();
    EXPECT_GT(recall, 0.5) << "step " << step;
  }

  // 6. Event analysis: a single feature, alive throughout. The adaptive
  // band is slightly loose at its edges (8-bit quantization from the
  // compressed file wobbles boundary voxels), so small satellites can
  // appear in individual steps; filter fragments well below the feature
  // size (~200 voxels) before the
  // component analysis, as any production pipeline would.
  TrackResult filtered = track;
  for (auto& [step, mask] : filtered.masks) {
    mask = remove_small_components(mask, 12);
  }
  FeatureHistory history = build_feature_history(filtered);
  EXPECT_TRUE(history.events_of(EventType::kSplit).empty());
  EXPECT_TRUE(history.events_of(EventType::kDeath).empty());
  for (int step = 0; step < sim.num_steps; ++step) {
    EXPECT_EQ(history.component_count(step), 1) << "step " << step;
  }

  // 7. Octree storage round-trips the masks at a fraction of dense bytes.
  std::size_t dense = 0, compressed = 0;
  for (const auto& [step, mask] : track.masks) {
    MaskOctree tree(mask);
    dense += tree.dense_bytes();
    compressed += tree.memory_bytes();
    EXPECT_EQ(mask_count(tree.to_mask()), mask_count(mask));
  }
  EXPECT_LT(compressed, dense / 2);

  // 8. Render the final step with the tracked feature highlighted red.
  TransferFunction1D context_tf(0.0, 1.0);
  context_tf.add_band(0.1, 1.0, 0.1);
  TransferFunction1D adapted = iatf.evaluate(sim.num_steps - 1);
  HighlightLayer layer{&track.masks.at(sim.num_steps - 1), &adapted,
                       Rgb{1.0, 0.0, 0.0}};
  RenderSettings settings;
  settings.width = 96;
  settings.height = 96;
  settings.shading = false;
  Raycaster caster(settings);
  Camera camera(0.5, 0.4, 2.4);
  ImageRgb8 image = caster.render(sequence.step(sim.num_steps - 1),
                                  context_tf, ColorMap(), camera, &layer);
  int red_pixels = 0;
  for (std::size_t p = 0; p < image.pixels.size(); p += 3) {
    if (image.pixels[p] > 120 && image.pixels[p + 1] < 60 &&
        image.pixels[p + 2] < 60) {
      ++red_pixels;
    }
  }
  EXPECT_GT(red_pixels, 10)
      << "the tracked feature must be visible in red at the last step";

  std::remove(path.c_str());
}


TEST(Integration, DataSpacePipelineOnReionization) {
  // The second end-to-end path: paint on key frames through the session,
  // train in idle slots, extract the full volume, validate the extraction,
  // and verify the trained classifier generalizes to an unseen step.
  ReionizationConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 400;
  cfg.num_small_features = 80;
  auto source = std::make_shared<ReionizationSource>(cfg);
  CachedSequence sequence(source, 4);

  SessionConfig scfg;
  scfg.classifier.spec.shell_radius = 3.0;
  PaintingSession session(sequence, scfg);

  // "Paint": positives from a large structure, negatives from a small blob
  // (via the feature-volume box selection) and empty space.
  const int train_step = 130;
  Mask large = source->large_mask(train_step);
  Mask small = source->small_mask(train_step);
  const VolumeF& volume = sequence.step(train_step);
  int painted = 0;
  for (std::size_t i = 0; i < large.size() && painted < 400; i += 7) {
    if (large[i]) {
      Index3 p = large.coord_of(i);
      PaintStroke stroke;
      stroke.axis = 2;
      stroke.slice = p.z;
      stroke.u = p.x;
      stroke.v = p.y;
      stroke.radius = 0.0;  // single-voxel brush
      stroke.certainty = 1.0;
      painted += static_cast<int>(session.paint(train_step, stroke));
    }
  }
  ASSERT_GT(painted, 100);
  // Box-select a couple of small blobs as unwanted.
  int negatives = 0;
  for (std::size_t i = 0; i < small.size() && negatives < 300; i += 3) {
    if (small[i]) {
      Index3 p = small.coord_of(i);
      Index3 lo{std::max(0, p.x - 1), std::max(0, p.y - 1),
                std::max(0, p.z - 1)};
      Index3 hi{std::min(cfg.dims.x - 1, p.x + 1),
                std::min(cfg.dims.y - 1, p.y + 1),
                std::min(cfg.dims.z - 1, p.z + 1)};
      negatives += static_cast<int>(
          session.select_unwanted_region(train_step, lo, hi));
    }
  }
  ASSERT_GT(negatives, 100);
  // Background negatives.
  PaintStroke bg;
  bg.axis = 2;
  bg.slice = 1;
  bg.u = 2;
  bg.v = 2;
  bg.radius = 3.0;
  bg.certainty = 0.0;
  session.paint(train_step, bg);

  // Idle-loop training until the feedback stabilizes.
  for (int slot = 0; slot < 10; ++slot) session.train_idle(60.0);

  // Extract and validate on the trained step.
  VolumeF certainty = session.feedback_volume(train_step);
  ExtractionValidation validation = validate_extraction(certainty);
  EXPECT_GT(validation.separation(), 0.4);
  EXPECT_LT(validation.boundary_fraction, 0.3);

  Mask extracted = session.classifier().classify_mask(volume, train_step);
  EXPECT_GT(coverage(extracted, large), 0.7);
  EXPECT_LT(coverage(extracted, small), 0.35);

  // Generalize to an unseen step.
  const int test_step = 250;
  const VolumeF& unseen = sequence.step(test_step);
  Mask unseen_extracted =
      session.classifier().classify_mask(unseen, test_step);
  EXPECT_GT(coverage(unseen_extracted, source->large_mask(test_step)), 0.7);
  EXPECT_LT(coverage(unseen_extracted, source->small_mask(test_step)), 0.35);
}

TEST(Integration, BatchExtractionMatchesInteractivePath) {
  // The Sec 8 batch driver must produce the same per-step voxel sets as
  // extracting steps one by one through the sequence.
  ArgonBubbleConfig cfg;
  cfg.dims = Dims{24, 24, 24};
  cfg.num_steps = 12;
  ArgonBubbleSource source(cfg);
  CachedSequence sequence(std::make_shared<ArgonBubbleSource>(cfg), 4);

  auto extract = [&](const VolumeF& v, int step) {
    (void)step;
    auto [lo, hi] = value_range(v);
    return threshold_mask(v, static_cast<float>(lerp(lo, hi, 0.7)), hi);
  };
  BatchReport report = run_batch_extraction(source, 0, 11, extract);
  ASSERT_EQ(report.steps.size(), 12u);
  for (int step = 0; step < 12; ++step) {
    Mask serial = extract(sequence.step(step), step);
    EXPECT_EQ(report.steps[static_cast<std::size_t>(step)].feature_voxels,
              mask_count(serial))
        << "step " << step;
  }
}

}  // namespace
}  // namespace ifet
