// Fixture (should PASS): a one-way include plus a forward declaration.
#pragma once
#include "core/frontier.hpp"

struct Tracker {
  Frontier* frontier;
};
