file(REMOVE_RECURSE
  "CMakeFiles/ifet_tf.dir/transfer_function.cpp.o"
  "CMakeFiles/ifet_tf.dir/transfer_function.cpp.o.d"
  "libifet_tf.a"
  "libifet_tf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_tf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
