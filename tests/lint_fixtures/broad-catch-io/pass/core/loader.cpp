// Fixture (should PASS): typed handlers keep the failure mode visible —
// the load site distinguishes transient faults from corrupt payloads.
#include <string>

int warm(const std::string& path) {
  try {
    auto v = read_vol(path);
    return 0;
  } catch (const TransientIoError&) {
    return 1;
  } catch (const CorruptDataError&) {
    return -1;
  }
}
