#pragma once

struct Tracker;

struct Frontier {
  Tracker* tracker;
};
