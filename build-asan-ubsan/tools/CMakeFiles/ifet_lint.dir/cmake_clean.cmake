file(REMOVE_RECURSE
  "CMakeFiles/ifet_lint.dir/ifet_lint.cpp.o"
  "CMakeFiles/ifet_lint.dir/ifet_lint.cpp.o.d"
  "ifet_lint"
  "ifet_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
