# Empty dependencies file for bench_perf_batch.
# This may be replaced when dependencies are built.
