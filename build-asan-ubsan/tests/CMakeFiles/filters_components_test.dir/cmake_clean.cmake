file(REMOVE_RECURSE
  "CMakeFiles/filters_components_test.dir/filters_components_test.cpp.o"
  "CMakeFiles/filters_components_test.dir/filters_components_test.cpp.o.d"
  "filters_components_test"
  "filters_components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filters_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
