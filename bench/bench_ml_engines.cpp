// Sec 3 / Sec 8 evaluation: "the cost and performance tradeoffs for each of
// these methods remain to be evaluated". We run the three engines (the
// paper's MLP, the "promising" RBF SVM, and a Gaussian naive-Bayes
// baseline) on the identical data-space extraction task — reionization
// small-feature suppression with shell feature vectors — and report
// training time, per-voxel prediction time, and extraction quality.
#include <iostream>

#include "bench_util.hpp"
#include "core/feature_vector.hpp"
#include "flowsim/datasets.hpp"
#include "ml/classifier.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace ifet;

std::vector<Index3> sample_mask(const Mask& mask, std::size_t count,
                                Rng& rng) {
  std::vector<Index3> candidates;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) candidates.push_back(mask.coord_of(i));
  }
  std::vector<Index3> out;
  for (std::size_t s = 0; s < count && !candidates.empty(); ++s) {
    out.push_back(candidates[rng.uniform_index(candidates.size())]);
  }
  return out;
}

}  // namespace

int main() {
  using namespace ifet;
  std::cout << "=== ML-engine tradeoffs on data-space extraction (Sec 3 / "
               "Sec 8) ===\n";

  ReionizationConfig cfg;
  cfg.dims = Dims{40, 40, 40};
  cfg.num_steps = 400;
  auto source = std::make_shared<ReionizationSource>(cfg);
  const int t = 310;
  VolumeF volume = source->generate(t);
  Mask large = source->large_mask(t);
  Mask small = source->small_mask(t);
  Mask background(volume.dims());
  for (std::size_t i = 0; i < background.size(); ++i) {
    background[i] = (!large[i] && !small[i]) ? 1 : 0;
  }

  FeatureVectorSpec spec;
  spec.use_time = false;
  FeatureContext ctx{&volume, t, cfg.num_steps, 0.0, 1.0};

  // The shared painted training set.
  TrainingSet train;
  Rng rng(4242);
  for (const Index3& p : sample_mask(large, 400, rng)) {
    train.add(assemble_feature_vector(spec, ctx, p.x, p.y, p.z), {1.0});
  }
  for (const Index3& p : sample_mask(small, 280, rng)) {
    train.add(assemble_feature_vector(spec, ctx, p.x, p.y, p.z), {0.0});
  }
  for (const Index3& p : sample_mask(background, 280, rng)) {
    train.add(assemble_feature_vector(spec, ctx, p.x, p.y, p.z), {0.0});
  }
  std::cout << train.size() << " painted samples, feature width "
            << spec.width() << "\n\n";

  Table table({"engine", "train_s", "classify_s", "us_per_voxel", "large_f1",
               "small_leakage"});
  CsvWriter csv(bench::output_dir() + "/ml_engines.csv",
                {"engine", "train_s", "classify_s", "f1", "leakage"});

  struct Result {
    double f1;
    double leakage;
    double train_s;
    double classify_s;
  };
  std::vector<Result> results;
  for (EngineKind kind :
       {EngineKind::kMlp, EngineKind::kSvm, EngineKind::kNaiveBayes}) {
    auto clf = make_classifier(kind, spec.width(), 777);
    Stopwatch train_watch;
    clf->fit(train, 400);
    double train_s = train_watch.seconds();

    Stopwatch classify_watch;
    Mask extracted(volume.dims());
    const Dims d = volume.dims();
    for (int k = 0; k < d.z; ++k) {
      for (int j = 0; j < d.y; ++j) {
        for (int i = 0; i < d.x; ++i) {
          double p = clf->predict(
              assemble_feature_vector(spec, ctx, i, j, k));
          extracted[extracted.linear_index(i, j, k)] = p >= 0.5 ? 1 : 0;
        }
      }
    }
    double classify_s = classify_watch.seconds();

    double f1 = score_mask(extracted, large).f1();
    double leak = coverage(extracted, small);
    results.push_back({f1, leak, train_s, classify_s});
    table.add_row({clf->name(), Table::num(train_s, 3),
                   Table::num(classify_s, 3),
                   Table::num(1e6 * classify_s /
                                  static_cast<double>(volume.size()),
                              2),
                   Table::num(f1), Table::num(leak)});
    csv.row(clf->name(), train_s, classify_s, f1, leak);
  }
  table.print(std::cout);
  std::cout << '\n';

  bench::ShapeCheck check;
  check.expect(results[0].f1 > 0.85,
               "the paper's MLP engine extracts the large structures well");
  check.expect(results[1].f1 > 0.85,
               "the SVM engine is a viable alternative (Sec 8: 'promising "
               "results')");
  check.expect(results[0].leakage < 0.2 && results[1].leakage < 0.2,
               "both discriminative engines suppress the tiny features");
  check.expect(results[2].train_s < results[0].train_s,
               "naive Bayes trains fastest (single pass)");
  return check.exit_code();
}
