// Process-wide allocation counting for hot-path enforcement
// (docs/STATIC_ANALYSIS.md "Runtime enforcement: AllocGuard").
//
// A binary opts in by placing IFET_ALLOC_GUARD_INSTALL() at namespace
// scope in exactly one TU; that defines replacement global operator
// new/delete which forward to malloc/free and bump process-wide atomic
// counters. Binaries that do not install the guard still compile against
// DenyAllocScope — the counters simply never move.
//
// DenyAllocScope is a snapshot, not a switch: it records the global
// allocation count at construction and reports the delta. Because the
// counters are global atomics, allocations made by other threads —
// including ThreadPool workers servicing a parallel_for dispatched inside
// the scope — are counted too, which is exactly what a steady-state
// "this region allocates nothing anywhere" bench assertion needs.
// Scopes nest trivially (each holds its own snapshot).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace ifet {
namespace alloc_guard {

/// Total operator-new calls observed since process start (0 until a TU
/// installs the guard). Monotonic; never reset.
inline std::atomic<std::uint64_t>& allocation_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Total operator-delete calls observed. Kept for leak-shaped debugging;
/// DenyAllocScope only reads allocation_count().
inline std::atomic<std::uint64_t>& deallocation_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

inline void note_alloc() {
  allocation_count().fetch_add(1, std::memory_order_relaxed);
}

inline void note_free() {
  deallocation_count().fetch_add(1, std::memory_order_relaxed);
}

}  // namespace alloc_guard

/// RAII allocation probe: `allocations()` is the number of operator-new
/// calls (process-wide, all threads) since this scope was constructed.
/// Steady-state sections assert `scope.allocations() == 0` after a
/// warm-up pass.
class DenyAllocScope {
 public:
  DenyAllocScope()
      : start_(alloc_guard::allocation_count().load(
            std::memory_order_relaxed)) {}

  DenyAllocScope(const DenyAllocScope&) = delete;
  DenyAllocScope& operator=(const DenyAllocScope&) = delete;

  std::uint64_t allocations() const {
    return alloc_guard::allocation_count().load(std::memory_order_relaxed) -
           start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace ifet

// Defines the replacement allocation functions. Use at namespace scope in
// ONE translation unit of the opting-in binary. The operators are noinline:
// once GCC inlines a malloc-backed operator new into a caller it pairs the
// malloc against the library operator delete and emits a bogus
// -Wmismatched-new-delete at the (header) call site, where no pragma in
// this TU can reach; keeping the bodies out of line keeps the diagnostic
// silent and the counters honest under any optimization level.
#define IFET_ALLOC_GUARD_INSTALL()                                        \
  __attribute__((noinline)) void* operator new(std::size_t size) {        \
    ::ifet::alloc_guard::note_alloc();                                    \
    if (void* p = std::malloc(size ? size : 1)) return p;                 \
    throw std::bad_alloc();                                               \
  }                                                                       \
  __attribute__((noinline)) void* operator new[](std::size_t size) {      \
    ::ifet::alloc_guard::note_alloc();                                    \
    if (void* p = std::malloc(size ? size : 1)) return p;                 \
    throw std::bad_alloc();                                               \
  }                                                                       \
  __attribute__((noinline)) void operator delete(void* p) noexcept {      \
    ::ifet::alloc_guard::note_free();                                     \
    std::free(p);                                                         \
  }                                                                       \
  __attribute__((noinline)) void operator delete[](void* p) noexcept {    \
    ::ifet::alloc_guard::note_free();                                     \
    std::free(p);                                                         \
  }                                                                       \
  __attribute__((noinline)) void operator delete(void* p,                 \
                                                 std::size_t) noexcept {  \
    ::ifet::alloc_guard::note_free();                                     \
    std::free(p);                                                         \
  }                                                                       \
  __attribute__((noinline)) void operator delete[](                       \
      void* p, std::size_t) noexcept {                                    \
    ::ifet::alloc_guard::note_free();                                     \
    std::free(p);                                                         \
  }                                                                       \
  static_assert(true, "IFET_ALLOC_GUARD_INSTALL requires a semicolon")
