file(REMOVE_RECURSE
  "CMakeFiles/adaptive_tf_combustion.dir/adaptive_tf_combustion.cpp.o"
  "CMakeFiles/adaptive_tf_combustion.dir/adaptive_tf_combustion.cpp.o.d"
  "adaptive_tf_combustion"
  "adaptive_tf_combustion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_tf_combustion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
