
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/mat4.cpp" "src/math/CMakeFiles/ifet_math.dir/mat4.cpp.o" "gcc" "src/math/CMakeFiles/ifet_math.dir/mat4.cpp.o.d"
  "/root/repo/src/math/stats.cpp" "src/math/CMakeFiles/ifet_math.dir/stats.cpp.o" "gcc" "src/math/CMakeFiles/ifet_math.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
