#include <gtest/gtest.h>

#include <memory>

#include "core/track_events.hpp"
#include "core/tracking.hpp"
#include "flowsim/datasets.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

/// Moving-box sequence: a 4^3 box of value 0.8 whose x position advances by
/// `speed` voxels per step (background 0.1). With speed <= 3 consecutive
/// boxes overlap; with speed >= 5 they do not.
std::shared_ptr<CallbackSource> moving_box_source(int steps, int speed) {
  Dims d{32, 16, 16};
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d, speed](int step) {
        VolumeF v(d, 0.1f);
        int x0 = 2 + speed * step;
        for (int k = 6; k < 10; ++k) {
          for (int j = 6; j < 10; ++j) {
            for (int i = x0; i < x0 + 4 && i < d.x; ++i) {
              v.at(i, j, k) = 0.8f;
            }
          }
        }
        return v;
      });
}

TEST(FixedRangeCriterion, AcceptsInsideRange) {
  FixedRangeCriterion c(0.4, 0.6);
  EXPECT_TRUE(c.accept(0, 0.5));
  EXPECT_TRUE(c.accept(7, 0.4));
  EXPECT_FALSE(c.accept(0, 0.39));
  EXPECT_FALSE(c.accept(0, 0.61));
}

TEST(Tracker, GrowsWithinOneStep) {
  CachedSequence seq(moving_box_source(1, 0), 2);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  TrackResult result = tracker.track(Index3{3, 7, 7}, 0);
  EXPECT_EQ(result.voxels_at(0), 64u);  // the whole 4^3 box
}

TEST(Tracker, SeedNotSatisfyingCriterionGrowsNothing) {
  CachedSequence seq(moving_box_source(1, 0), 2);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  TrackResult result = tracker.track(Index3{0, 0, 0}, 0);  // background
  EXPECT_TRUE(result.masks.empty());
}

TEST(Tracker, FollowsOverlappingFeatureThroughTime) {
  const int steps = 6;
  CachedSequence seq(moving_box_source(steps, 2), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  TrackResult result = tracker.track(Index3{3, 7, 7}, 0);
  for (int s = 0; s < steps; ++s) {
    EXPECT_EQ(result.voxels_at(s), 64u) << "step " << s;
  }
  EXPECT_EQ(result.first_step(), 0);
  EXPECT_EQ(result.last_step(), steps - 1);
}

TEST(Tracker, TracksBackwardFromLateSeed) {
  const int steps = 5;
  CachedSequence seq(moving_box_source(steps, 2), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  // Seed in the feature at the LAST step; 4D growing reaches step 0.
  TrackResult result = tracker.track(Index3{2 + 2 * 4 + 1, 7, 7}, 4);
  EXPECT_EQ(result.voxels_at(0), 64u);
  EXPECT_EQ(result.voxels_at(4), 64u);
}

TEST(Tracker, LosesFeatureWithoutTemporalOverlap) {
  // Speed 6 > box width 4: consecutive masks do not overlap, so the paper's
  // assumption is violated and the track must stop after the seed step.
  const int steps = 4;
  CachedSequence seq(moving_box_source(steps, 6), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  TrackResult result = tracker.track(Index3{3, 7, 7}, 0);
  EXPECT_EQ(result.voxels_at(0), 64u);
  EXPECT_EQ(result.voxels_at(1), 0u);
  EXPECT_FALSE(result.reached(1));
}

TEST(Tracker, RespectsStepWindow) {
  const int steps = 8;
  CachedSequence seq(moving_box_source(steps, 2), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  TrackerConfig cfg;
  cfg.min_step = 2;
  cfg.max_step = 5;
  Tracker tracker(seq, criterion, cfg);
  TrackResult result = tracker.track(Index3{2 + 2 * 3 + 1, 7, 7}, 3);
  EXPECT_FALSE(result.reached(1));
  EXPECT_FALSE(result.reached(6));
  EXPECT_TRUE(result.reached(2));
  EXPECT_TRUE(result.reached(5));
}

TEST(Tracker, MaxVoxelCapStopsGrowth) {
  CachedSequence seq(moving_box_source(3, 0), 4);
  FixedRangeCriterion criterion(0.0, 1.0);  // accepts everything
  TrackerConfig cfg;
  cfg.max_voxels = 100;
  Tracker tracker(seq, criterion, cfg);
  TrackResult result = tracker.track(Index3{3, 7, 7}, 0);
  std::size_t total = 0;
  for (const auto& [step, mask] : result.masks) total += mask_count(mask);
  EXPECT_LE(total, 110u);  // cap plus at most one BFS wave of slack
}

TEST(Tracker, TrackFromMaskValidatesDims) {
  CachedSequence seq(moving_box_source(2, 0), 2);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  Mask wrong(Dims{4, 4, 4});
  EXPECT_THROW(tracker.track_from_mask(wrong, 0), Error);
  EXPECT_THROW(tracker.track(Index3{99, 0, 0}, 0), Error);
}

TEST(Tracker, AdaptiveCriterionFollowsDecayingFeature) {
  // Fig 10 in miniature via the real SwirlingFlow source.
  SwirlingFlowConfig scfg;
  scfg.dims = Dims{24, 24, 24};
  scfg.num_steps = 40;
  // Decay fast enough that by the last step the peak falls below the fixed
  // criterion's lower bound (peak0 * 0.55) while staying above background.
  scfg.peak_decay = 0.012;
  auto source = std::make_shared<SwirlingFlowSource>(scfg);
  CachedSequence seq(source, 6);

  // Key frames: bands around the decaying peak at steps 0 and 39.
  Iatf iatf(seq);
  auto band_at = [&](int step) {
    TransferFunction1D tf(0.0, 1.0);
    double peak = source->peak_value(step);
    tf.add_band(peak * 0.55, std::min(1.0, peak * 1.05), 1.0, 0.02);
    return tf;
  };
  iatf.add_key_frame(0, band_at(0));
  iatf.add_key_frame(39, band_at(39));
  iatf.train(1200);

  // Seed at the feature center at step 0.
  Vec3 c = source->feature_center(0);
  Index3 seed{static_cast<int>(c.x * 24), static_cast<int>(c.y * 24),
              static_cast<int>(c.z * 24)};

  AdaptiveTfCriterion adaptive(iatf, 0.3);
  Tracker tracker(seq, adaptive);
  TrackResult adaptive_result = tracker.track(seed, 0);

  double p0 = source->peak_value(0);
  FixedRangeCriterion fixed(p0 * 0.55, 1.0);
  Tracker fixed_tracker(seq, fixed);
  TrackResult fixed_result = fixed_tracker.track(seed, 0);

  // Fixed criterion loses the feature before the end; adaptive keeps it.
  EXPECT_EQ(fixed_result.voxels_at(39), 0u);
  EXPECT_GT(adaptive_result.voxels_at(39), 0u);
}

TEST(TrackEvents, ContinuationChain) {
  const int steps = 4;
  CachedSequence seq(moving_box_source(steps, 2), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  FeatureHistory history =
      build_feature_history(tracker.track(Index3{3, 7, 7}, 0));
  EXPECT_EQ(static_cast<int>(history.nodes.size()), steps);
  for (int s = 0; s < steps; ++s) {
    EXPECT_EQ(history.component_count(s), 1);
  }
  EXPECT_EQ(history.events_of(EventType::kContinuation).size(),
            static_cast<std::size_t>(steps - 2));
  EXPECT_TRUE(history.events_of(EventType::kSplit).empty());
  EXPECT_TRUE(history.events_of(EventType::kBirth).empty());
  EXPECT_TRUE(history.events_of(EventType::kDeath).empty());
}

TEST(TrackEvents, DetectsSplitOnVortexData) {
  TurbulentVortexConfig vcfg;
  vcfg.dims = Dims{32, 32, 32};
  vcfg.num_steps = 25;
  vcfg.split_step = 18;
  auto source = std::make_shared<TurbulentVortexSource>(vcfg);
  CachedSequence seq(source, 6);
  // The tracked band: above the distractors (0.5), covering the feature.
  FixedRangeCriterion criterion(0.55, 1.0);
  Tracker tracker(seq, criterion);
  auto centers = source->lobe_centers(0);
  Index3 seed{static_cast<int>(centers[0].x * 32),
              static_cast<int>(centers[0].y * 32),
              static_cast<int>(centers[0].z * 32)};
  FeatureHistory history = build_feature_history(tracker.track(seed, 0));

  EXPECT_EQ(history.component_count(17), 1);
  EXPECT_EQ(history.component_count(20), 2);
  auto splits = history.events_of(EventType::kSplit);
  ASSERT_FALSE(splits.empty());
  EXPECT_EQ(splits[0].step, 17);  // the step whose component has 2 children
}

TEST(TrackEvents, DetectsMergeOnApproachingBlobs) {
  // Two blobs drift towards each other and fuse — the mirror image of the
  // Fig 9 split, driven through the full generator/tracker path.
  Dims d{40, 16, 16};
  const int steps = 8;
  auto source = std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d](int step) {
        VolumeF v(d, 0.05f);
        auto blob = [&](double cx) {
          for (int k = 0; k < d.z; ++k) {
            for (int j = 0; j < d.y; ++j) {
              for (int i = 0; i < d.x; ++i) {
                double dx = i - cx, dy = j - 8.0, dz = k - 8.0;
                double r2 = dx * dx + dy * dy + dz * dz;
                float val = static_cast<float>(0.9 * std::exp(-r2 / 18.0));
                std::size_t li = v.linear_index(i, j, k);
                v[li] = std::max(v[li], val);
              }
            }
          }
        };
        blob(10.0 + 1.5 * step);   // left blob moves right
        blob(30.0 - 1.5 * step);   // right blob moves left
        return v;
      });
  CachedSequence seq(source, 4);
  FixedRangeCriterion criterion(0.45, 1.0);
  Tracker tracker(seq, criterion);
  TrackResult track = tracker.track(Index3{10, 8, 8}, 0);
  FeatureHistory history = build_feature_history(track);
  EXPECT_EQ(history.component_count(0), 2);  // 4D growing reaches both
  EXPECT_EQ(history.component_count(steps - 1), 1);
  auto merges = history.events_of(EventType::kMerge);
  ASSERT_GE(merges.size(), 1u);
  // The merge is observed at the first single-component step.
  int merge_step = merges.front().step;
  EXPECT_EQ(history.component_count(merge_step), 1);
  EXPECT_EQ(history.component_count(merge_step - 1), 2);
}

TEST(TrackEvents, FormatTreeListsSteps) {
  CachedSequence seq(moving_box_source(3, 2), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  FeatureHistory history =
      build_feature_history(tracker.track(Index3{3, 7, 7}, 0));
  std::string tree = format_feature_tree(history);
  EXPECT_NE(tree.find("t=0:"), std::string::npos);
  EXPECT_NE(tree.find("t=2:"), std::string::npos);
  EXPECT_NE(tree.find("size=64"), std::string::npos);
}

TEST(TrackEvents, EmptyTrackYieldsEmptyHistory) {
  TrackResult empty;
  FeatureHistory history = build_feature_history(empty);
  EXPECT_TRUE(history.nodes.empty());
  EXPECT_TRUE(history.events.empty());
}

TEST(TrackEvents, MergeDetectedOnConstructedMasks) {
  // Hand-build a track: two components at step 0 merging into one at step 1.
  Dims d{16, 8, 8};
  TrackResult track;
  Mask step0(d);
  for (int i = 2; i < 5; ++i) step0.at(i, 4, 4) = 1;
  for (int i = 9; i < 12; ++i) step0.at(i, 4, 4) = 1;
  Mask step1(d);
  for (int i = 2; i < 12; ++i) step1.at(i, 4, 4) = 1;
  track.masks.emplace(0, std::move(step0));
  track.masks.emplace(1, std::move(step1));

  FeatureHistory history = build_feature_history(track);
  EXPECT_EQ(history.component_count(0), 2);
  EXPECT_EQ(history.component_count(1), 1);
  auto merges = history.events_of(EventType::kMerge);
  ASSERT_EQ(merges.size(), 1u);
  EXPECT_EQ(merges[0].step, 1);
}

TEST(TrackEvents, BirthAndDeathDetected) {
  Dims d{8, 8, 8};
  TrackResult track;
  // Step 0: one blob; step 1: the same blob plus a NEW disjoint blob (birth);
  // step 2: only the new blob (the old one dies at step 1... it has no
  // child at step 2).
  Mask m0(d), m1(d), m2(d);
  m0.at(1, 1, 1) = 1;
  m1.at(1, 1, 1) = 1;
  m1.at(6, 6, 6) = 1;
  m2.at(6, 6, 6) = 1;
  track.masks.emplace(0, m0);
  track.masks.emplace(1, m1);
  track.masks.emplace(2, m2);
  FeatureHistory history = build_feature_history(track);
  auto births = history.events_of(EventType::kBirth);
  auto deaths = history.events_of(EventType::kDeath);
  ASSERT_EQ(births.size(), 1u);
  EXPECT_EQ(births[0].step, 1);
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0].step, 1);
}

}  // namespace
}  // namespace ifet
