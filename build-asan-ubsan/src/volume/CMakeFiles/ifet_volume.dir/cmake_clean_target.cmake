file(REMOVE_RECURSE
  "libifet_volume.a"
)
