#include <gtest/gtest.h>

#include "core/multivariate.hpp"
#include "flowsim/datasets.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

/// Two aligned variables with overlapping regions:
///   var1 high in regions A and B; var2 high in regions B and C.
/// The feature is B — defined only by the JOINT condition var1 AND var2.
struct TwoVarFixture {
  Dims dims{24, 24, 24};
  VolumeF var1, var2;

  TwoVarFixture() : var1(dims, 0.05f), var2(dims, 0.05f) {
    fill(var1, {2, 2, 2}, {9, 9, 9});      // region A: var1 only
    fill(var1, {9, 9, 9}, {16, 16, 16});   // region B: both
    fill(var2, {9, 9, 9}, {16, 16, 16});
    fill(var2, {16, 16, 16}, {22, 22, 22});  // region C: var2 only
  }

  static void fill(VolumeF& v, Index3 lo, Index3 hi) {
    for (int k = lo.z; k < hi.z; ++k) {
      for (int j = lo.y; j < hi.y; ++j) {
        for (int i = lo.x; i < hi.x; ++i) v.at(i, j, k) = 0.9f;
      }
    }
  }

  std::vector<const VolumeF*> variables() const { return {&var1, &var2}; }
};

std::vector<PaintedVoxel> paint_box(Index3 lo, Index3 hi, double certainty) {
  std::vector<PaintedVoxel> out;
  for (int k = lo.z; k <= hi.z; ++k) {
    for (int j = lo.y; j <= hi.y; ++j) {
      for (int i = lo.x; i <= hi.x; ++i) {
        out.push_back({Index3{i, j, k}, 0, certainty});
      }
    }
  }
  return out;
}

MultivariateConfig simple_config() {
  MultivariateConfig cfg;
  cfg.spec.use_shell = false;
  cfg.spec.use_position = false;
  cfg.spec.use_time = false;
  return cfg;
}

TEST(MultivariateSpec, WidthAccounting) {
  MultivariateSpec spec;
  spec.num_variables = 2;
  spec.shell_samples = 6;
  // 2 * (1 value + 6 shell) + 3 position + 1 time.
  EXPECT_EQ(spec.width(), 18);
  spec.use_shell = false;
  EXPECT_EQ(spec.width(), 6);
  spec.num_variables = 3;
  EXPECT_EQ(spec.width(), 7);
}

TEST(MultivariateClassifier, LearnsJointCondition) {
  TwoVarFixture fx;
  MultivariateClassifier clf(1, {{0.0, 1.0}, {0.0, 1.0}}, simple_config());
  // Positive: region B (both variables high). Negative: A, C, background.
  clf.add_samples(fx.variables(), 0, paint_box({10, 10, 10}, {14, 14, 14}, 1.0));
  clf.add_samples(fx.variables(), 0, paint_box({3, 3, 3}, {7, 7, 7}, 0.0));
  clf.add_samples(fx.variables(), 0, paint_box({17, 17, 17}, {21, 21, 21}, 0.0));
  clf.add_samples(fx.variables(), 0, paint_box({0, 0, 20}, {3, 3, 23}, 0.0));
  clf.train(1200);

  EXPECT_GT(clf.classify_voxel(fx.variables(), 0, 12, 12, 12), 0.7);  // B
  EXPECT_LT(clf.classify_voxel(fx.variables(), 0, 5, 5, 5), 0.3);     // A
  EXPECT_LT(clf.classify_voxel(fx.variables(), 0, 19, 19, 19), 0.3);  // C
  EXPECT_LT(clf.classify_voxel(fx.variables(), 0, 1, 1, 22), 0.3);    // bg
}

TEST(MultivariateClassifier, SingleVariableCannotExpressTheJoint) {
  // Using ONLY var1, regions A and B are identical (both 0.9): no
  // classifier keyed on var1 alone can separate them. This is the
  // univariate control for LearnsJointCondition.
  TwoVarFixture fx;
  MultivariateConfig cfg = simple_config();
  cfg.spec.num_variables = 1;
  MultivariateClassifier clf(1, {{0.0, 1.0}}, cfg);
  std::vector<const VolumeF*> only_var1{&fx.var1};
  clf.add_samples(only_var1, 0, paint_box({10, 10, 10}, {14, 14, 14}, 1.0));
  clf.add_samples(only_var1, 0, paint_box({3, 3, 3}, {7, 7, 7}, 0.0));
  clf.train(1200);
  double in_b = clf.classify_voxel(only_var1, 0, 12, 12, 12);
  double in_a = clf.classify_voxel(only_var1, 0, 5, 5, 5);
  // Identical inputs -> identical outputs: A and B are indistinguishable.
  EXPECT_NEAR(in_b, in_a, 1e-9);
}

TEST(MultivariateClassifier, ClassifyVolumeMatchesVoxelPath) {
  TwoVarFixture fx;
  MultivariateClassifier clf(1, {{0.0, 1.0}, {0.0, 1.0}}, simple_config());
  clf.add_samples(fx.variables(), 0, paint_box({10, 10, 10}, {12, 12, 12}, 1.0));
  clf.add_samples(fx.variables(), 0, paint_box({0, 0, 0}, {2, 2, 2}, 0.0));
  clf.train(50);
  VolumeF certainty = clf.classify(fx.variables(), 0);
  for (int k = 0; k < 24; k += 7) {
    for (int j = 0; j < 24; j += 7) {
      for (int i = 0; i < 24; i += 7) {
        EXPECT_NEAR(certainty.at(i, j, k),
                    clf.classify_voxel(fx.variables(), 0, i, j, k), 1e-6);
      }
    }
  }
  Mask m = clf.classify_mask(fx.variables(), 0, 0.5);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(m[i] != 0, certainty[i] >= 0.5f);
  }
}

TEST(MultivariateClassifier, ValidatesInputs) {
  EXPECT_THROW(MultivariateClassifier(0, {{0.0, 1.0}, {0.0, 1.0}}), Error);
  EXPECT_THROW(MultivariateClassifier(1, {{0.0, 1.0}}), Error);  // 1 != 2
  EXPECT_THROW(MultivariateClassifier(1, {{0.0, 1.0}, {1.0, 1.0}}), Error);

  TwoVarFixture fx;
  MultivariateClassifier clf(1, {{0.0, 1.0}, {0.0, 1.0}}, simple_config());
  EXPECT_THROW(clf.train(1), Error);
  std::vector<const VolumeF*> wrong_count{&fx.var1};
  EXPECT_THROW(clf.add_samples(wrong_count, 0, {}), Error);
  VolumeF misaligned(Dims{8, 8, 8});
  std::vector<const VolumeF*> mismatched{&fx.var1, &misaligned};
  EXPECT_THROW(clf.add_samples(mismatched, 0, {}), Error);
}

TEST(MultivariateClassifier, JointVorticityFuelOnRealJet) {
  // The paper's own multivariate scenario: the reacting mixing layer is
  // where fuel meets strong vorticity. Train the joint classifier on the
  // solver's two variables and verify it fires only where BOTH are high.
  CombustionJetConfig cfg;
  cfg.dims = Dims{16, 24, 12};
  cfg.num_steps = 6;
  cfg.solver_steps_per_snapshot = 3;
  CombustionJetSource source(cfg);
  const int step = 5;
  VolumeF vorticity = source.generate(step);
  const VolumeF& fuel = source.fuel_snapshot(step);
  std::vector<const VolumeF*> vars{&vorticity, &fuel};

  // Labels from the joint ground truth: top-quartile vorticity AND fuel
  // above 0.2.
  std::vector<float> sorted(vorticity.data().begin(),
                            vorticity.data().end());
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() * 3 / 4,
                   sorted.end());
  const float vcut = sorted[sorted.size() * 3 / 4];
  std::vector<PaintedVoxel> painted;
  Rng rng(8);
  int positives = 0, negatives = 0;
  while (positives < 150 || negatives < 150) {
    std::size_t pick = rng.uniform_index(vorticity.size());
    Index3 p = vorticity.coord_of(pick);
    bool joint = vorticity[pick] >= vcut && fuel[pick] >= 0.2f;
    if (joint && positives < 150) {
      painted.push_back({p, step, 1.0});
      ++positives;
    } else if (!joint && negatives < 150) {
      painted.push_back({p, step, 0.0});
      ++negatives;
    }
  }
  MultivariateConfig mcfg;
  mcfg.spec.use_position = false;
  mcfg.spec.use_time = false;
  mcfg.spec.shell_samples = 6;
  auto [vlo, vhi] = source.value_range();
  MultivariateClassifier clf(cfg.num_steps, {{vlo, vhi}, {0.0, 1.0}}, mcfg);
  clf.add_samples(vars, step, painted);
  clf.train(500);

  // Evaluate on a grid of unseen voxels.
  int correct = 0, total = 0;
  for (int k = 0; k < cfg.dims.z; k += 2) {
    for (int j = 0; j < cfg.dims.y; j += 2) {
      for (int i = 0; i < cfg.dims.x; i += 2) {
        std::size_t li = vorticity.linear_index(i, j, k);
        bool joint = vorticity[li] >= vcut && fuel[li] >= 0.2f;
        bool predicted = clf.classify_voxel(vars, step, i, j, k) >= 0.5;
        correct += (joint == predicted);
        ++total;
      }
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

}  // namespace
}  // namespace ifet
