#!/usr/bin/env bash
# One-command tier-1 verification (docs/CORRECTNESS.md):
#   1. default preset: configure, build, full ctest (includes ifet_lint)
#   2. asan-ubsan preset: configure, build, full ctest under ASan+UBSan
#      with IFET_DEBUG_ASSERT checks on
#   3. tsan preset: build + run the streaming/concurrency stress tests
#      (the CacheManager/Prefetcher and thread-pool race detectors)
#   4. clang-tidy over the hardened directories (skips if not installed)
#
# Usage: tools/ci_check.sh          # everything
#        JOBS=8 tools/ci_check.sh   # override build parallelism
#        SKIP_ASAN=1 tools/ci_check.sh   # fast local loop, default only
#        SKIP_TSAN=1 tools/ci_check.sh   # skip the TSan stress stage

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
cd "$ROOT"

echo "== ci_check [1/4] default preset: configure + build + ctest =="
cmake --preset default
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

if [ "${SKIP_ASAN:-0}" != "1" ]; then
  echo "== ci_check [2/4] asan-ubsan preset: configure + build + ctest =="
  cmake --preset asan-ubsan
  cmake --build --preset asan-ubsan -j "$JOBS"
  ctest --preset asan-ubsan -j "$JOBS"
else
  echo "== ci_check [2/4] skipped (SKIP_ASAN=1) =="
fi

if [ "${SKIP_TSAN:-0}" != "1" ]; then
  echo "== ci_check [3/4] tsan preset: streaming/concurrency stress =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$JOBS" --target \
    stress_cache_manager_test stress_thread_pool_test flat_mlp_test
  ctest --preset tsan -j "$JOBS" -R \
    'stress_cache_manager_test|stress_thread_pool_test|flat_mlp_test'
else
  echo "== ci_check [3/4] skipped (SKIP_TSAN=1) =="
fi

echo "== ci_check [4/4] clang-tidy (graceful skip when absent) =="
"$ROOT/tools/run_clang_tidy.sh"

echo "ci_check: all green"
