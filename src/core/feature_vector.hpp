// Per-voxel feature vectors for data-space extraction (paper Sec 4.3).
//
// "...the trained network in fact takes as input a feature vector which
// consists of data values of the feature, neighborhood information, and the
// time step number." Neighborhood information is a *shell*: "we do not use
// all the voxel values in the neighborhood; only those voxels a fixed
// distance away from the feature of interest are used, and this distance is
// data dependent and derived according to the characteristics of the
// selected features so far."
//
// FeatureVectorSpec makes every component optional so the user can drop
// properties they judge unimportant (Sec 6); the classifier then shrinks
// its network while transferring the surviving weights.
#pragma once

#include <string>
#include <vector>

#include "volume/volume.hpp"

namespace ifet {

struct FeatureVectorSpec {
  bool use_value = true;       ///< The voxel's own scalar value.
  bool use_shell = true;       ///< Shell of neighborhood samples.
  bool use_position = true;    ///< Normalized (x, y, z).
  bool use_time = true;        ///< Normalized time step.
  bool use_gradient = false;   ///< Gradient magnitude (optional extra).
  double shell_radius = 3.0;   ///< Shell distance in voxels.
  int shell_samples = 14;      ///< 6 axis + 8 diagonal directions by default.

  /// Total feature-vector width for this spec.
  int width() const;

  /// Human-readable component names, index-aligned with assemble()'s output
  /// (used by the session UI when the user toggles properties).
  std::vector<std::string> component_names() const;
};

/// Context needed to assemble a vector: the step's volume, its index, the
/// sequence length (for time normalization) and the global value range.
struct FeatureContext {
  const VolumeF* volume = nullptr;
  int step = 0;
  int num_steps = 1;
  double value_lo = 0.0;
  double value_hi = 1.0;
};

/// Assemble the (already normalized to ~[0,1]) feature vector of voxel
/// (i, j, k). Shell samples use trilinear interpolation at `shell_radius`
/// voxels along fixed directions, clamped at volume borders.
std::vector<double> assemble_feature_vector(const FeatureVectorSpec& spec,
                                            const FeatureContext& context,
                                            int i, int j, int k);

/// The fixed shell directions (unit vectors); first 6 are the axes, the
/// next 8 the cube diagonals, then edge midpoints for larger counts.
std::vector<Vec3> shell_directions(int count);

/// Derive a shell radius from the painted feature voxels "according to the
/// characteristics of the selected features": half the mean feature
/// diameter, estimated from the per-component bounding boxes of the
/// positive samples, clamped to [1.5, 6] voxels.
double derive_shell_radius(const Mask& positive_samples);

}  // namespace ifet
