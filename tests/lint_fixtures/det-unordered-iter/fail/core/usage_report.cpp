// FAIL fixture: an IFET_DETERMINISTIC root range-fors over an
// unordered_map member — iteration order is hash-layout-dependent, so
// the sum's rounding (and any emitted listing) varies run to run.
#include <string>
#include <unordered_map>

#define IFET_DETERMINISTIC

namespace fixture {

class UsageReport {
 public:
  IFET_DETERMINISTIC double total() const {
    double sum = 0.0;
    for (const auto& kv : counts_) {  // hash-order iteration
      sum += kv.second;
    }
    return sum;
  }

 private:
  std::unordered_map<std::string, double> counts_;
};

}  // namespace fixture
