// Multi-tenant extraction/tracking service (docs/SERVER.md).
//
// A SessionManager hosts N concurrent client sessions over ONE shared
// streaming tier. Each session owns the full single-user state — a
// ClientSequenceView (its window, its FailPolicy, its stats), a
// PaintingSession (data-space classifier) and a TfSession (IATF) — while
// the volumes, the byte budget, and the derived-product memoization are
// process-wide, so identical requests from different clients deduplicate
// and no client can pin the shared cache out from under the others.
//
// Execution model: each session is a strand — a FIFO command queue
// drained by at most one task at a time on the manager's command pool.
// Commands of one session are serialized (its classifier and IATF are
// single-user mutable state); commands of different sessions run in
// parallel. The command pool is a DEDICATED ThreadPool instance, never
// the global pool: command execution blocks on fetches that wait for
// prefetch loads, and those loads run on the global pool — strands
// occupying the global pool's workers while waiting on tasks queued
// behind them would deadlock. (Per-voxel parallel_for work inside a
// command still fans out on the global pool; nested drains make that
// safe.)
//
// Shared-DerivedCache hygiene: synthesized TFs are memoized under
// Iatf::params_hash(), which hashes the live network weights — so a
// retrained client simply moves to a new key and can never read another
// client's TFs. The manager refcounts the hash across sessions and
// retires a hash's entries from the cache only when the LAST session at
// that state moves away (tests/server_test.cpp pins the scoping). The
// tier histogram hash is never retired: every client shares it by
// construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>

#include "parallel/thread_pool.hpp"
#include "server/client_view.hpp"
#include "server/command.hpp"
#include "server/stream_tier.hpp"
#include "session/session.hpp"
#include "session/tf_session.hpp"
#include "util/deadline.hpp"
#include "util/ordered_mutex.hpp"

namespace ifet {

/// What a full strand queue does with new work (docs/SERVER.md).
enum class BackpressurePolicy : std::uint8_t {
  kRejectNew,   ///< Refuse the incoming command (typed Overloaded).
  kShedOldest,  ///< Drop the oldest SHEDDABLE queued command to make room;
                ///< reject the incoming command when no queued command is
                ///< sheddable (mutations are never dropped once accepted).
};

/// The admission verdict for one incoming command.
enum class ShedAction : std::uint8_t {
  kAccept,     ///< Enqueue; the bound holds.
  kRejectNew,  ///< Queue full; refuse the incoming command.
  kShedOldest, ///< Queue full; drop the oldest sheddable queued command,
               ///< then enqueue the incoming one.
};

/// The shed/reject decision — a PURE function of queue state (depth,
/// bound, policy, whether a sheddable victim is queued), never wall clock
/// or load averages: under the determinism contract the same submission
/// sequence must shed the same commands on every run. Retry-after hints
/// are computed separately (they are advisory wall-clock estimates and
/// never feed back into this decision).
IFET_DETERMINISTIC ShedAction decide_backpressure(BackpressurePolicy policy,
                                                  std::size_t queue_depth,
                                                  std::size_t max_queue_depth,
                                                  bool queue_has_sheddable);

struct SessionManagerConfig {
  StreamTierConfig tier;
  /// Per-client auto-pinned window half-width.
  int pin_radius = 1;
  /// Classifier configuration applied to every session.
  SessionConfig painting;
  /// IATF configuration applied to every session. Identical configs mean
  /// identical initial weights (seeded init), so freshly created sessions
  /// share one params hash until their training diverges.
  TfSessionConfig tf;
  /// Command pool width; 0 = hardware concurrency.
  std::size_t command_threads = 0;

  // --- Overload resilience (docs/ROBUSTNESS.md, "Overload and deadlines").
  /// Strand queue bound; 0 = unbounded (the legacy cooperative mode).
  std::size_t max_queue_depth = 0;
  /// Full-queue policy; only consulted when max_queue_depth > 0.
  BackpressurePolicy backpressure = BackpressurePolicy::kRejectNew;
  /// Budget stamped on commands that carry deadline_ms == 0; 0 = unlimited.
  double default_deadline_ms = 0.0;
  /// Stuck-strand watchdog sampling period; 0 disables the watchdog thread
  /// (watchdog_scan_now() still works for deterministic tests).
  double watchdog_interval_ms = 0.0;
  /// A running command is reported stuck when its elapsed time exceeds
  /// `watchdog_factor` times its deadline budget (unlimited-budget
  /// commands are never reported).
  double watchdog_factor = 4.0;
};

/// Per-session strand queue gauges (bench_perf_server --overload asserts
/// peak_depth never exceeds the configured bound).
struct SessionQueueStats {
  std::size_t depth = 0;          ///< Commands queued right now.
  std::size_t peak_depth = 0;     ///< High-water mark since creation.
  double ewma_service_ms = 0.0;   ///< Recent service time (the retry-after
                                  ///< hint's base rate).
};

/// Stuck-strand watchdog counters (docs/ROBUSTNESS.md). `stuck_observations`
/// counts scan-sightings, not distinct commands: one command overdue across
/// three scans counts three.
struct WatchdogReport {
  std::uint64_t scans = 0;
  std::uint64_t stuck_observations = 0;
  int last_session = -1;          ///< Session of the most overdue sighting.
  int last_kind = -1;             ///< CommandKind of that sighting.
  double last_overdue_ms = 0.0;   ///< How far past factor x budget it was.
};

class SessionManager {
 public:
  explicit SessionManager(std::shared_ptr<const VolumeSource> source,
                          const SessionManagerConfig& config = {});
  /// Drains every strand, then tears sessions down before the tier.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Create a session with its own fail policy; returns its id.
  int create_session(FailPolicy fail_policy = FailPolicy::kThrow)
      IFET_EXCLUDES(mutex_);

  /// Drain the session's strand, release its derived-cache hash
  /// reference, unpin its window, and forget it.
  void close_session(int id) IFET_EXCLUDES(mutex_);

  /// Run one command synchronously on the calling thread. The
  /// deterministic reference path (isolated runs, tests); must not race
  /// submit() on the SAME session.
  ServerResult execute(int id, const Command& command);

  /// Enqueue a command on the session's strand; `done` (optional) runs on
  /// the command-pool thread right after the command.
  ///
  /// Backpressure contract (docs/SERVER.md): when the strand queue is at
  /// its configured bound the command may be refused — `done` is then
  /// invoked SYNCHRONOUSLY on the calling thread with a typed
  /// ServerStatus::kOverloaded result carrying a retry-after hint. Under
  /// kShedOldest the victim's `done` fires the same way. Every submitted
  /// command therefore gets exactly one completion — never a silent drop.
  /// The command's deadline budget is stamped here (absolute), so queue
  /// time counts against it.
  void submit(int id, Command command,
              std::function<void(const ServerResult&)> done = {});

  /// Block until the session's queue is empty and no command is running.
  void drain(int id);
  /// Drain every session.
  void drain_all();

  StreamTier& tier() { return tier_; }

  /// Per-session counter snapshot (the satellite per-session view of
  /// StreamStats; the process-wide aggregate is tier().stats()).
  StreamStats session_stats(int id) const;
  AdmissionStats session_admission(int id) const;
  std::size_t session_count() const IFET_EXCLUDES(mutex_);

  /// The session's strand queue gauges (depth / peak / service EWMA).
  SessionQueueStats session_queue(int id) const;

  /// One synchronous watchdog scan over every session (no lock held while
  /// the per-session execution atomics are sampled — the kWatchdog
  /// contract); returns the cumulative report. The background thread
  /// (watchdog_interval_ms > 0) calls exactly this.
  WatchdogReport watchdog_scan_now() IFET_EXCLUDES(mutex_);
  WatchdogReport watchdog_report() const IFET_EXCLUDES(watchdog_mutex_);

 private:
  struct ServerSession;

  std::shared_ptr<ServerSession> find(int id) const IFET_EXCLUDES(mutex_);
  /// Absolute deadline for `command` under the manager's default budget.
  Deadline stamp_deadline(const Command& command) const;
  ServerResult run_command(ServerSession& s, const Command& command);
  ServerResult run_command_noexcept(ServerSession& s, const Command& command,
                                    const Deadline& deadline);
  /// After a command: if the session's params hash moved, re-home its
  /// refcount and retire the old hash's cache entries when orphaned.
  void reconcile_tf_hash(ServerSession& s) IFET_EXCLUDES(mutex_);
  /// Drop one reference; returns the hash to invalidate (0 = none).
  std::uint64_t release_hash_locked(std::uint64_t hash)
      IFET_REQUIRES(mutex_);
  void drain_session(ServerSession& s);
  static void drain_wait(ServerSession& s);
  void watchdog_loop();
  void stop_watchdog();

  SessionManagerConfig config_;
  /// Declared before sessions_: views hold tier references, so the tier
  /// must outlive every session.
  StreamTier tier_;

  mutable OrderedMutex mutex_{MutexRank::kSessionManager};
  int next_id_ IFET_GUARDED_BY(mutex_) = 0;
  std::map<int, std::shared_ptr<ServerSession>> sessions_
      IFET_GUARDED_BY(mutex_);
  /// params_hash -> number of sessions whose IATF is at that state.
  std::unordered_map<std::uint64_t, int> tf_hash_refs_
      IFET_GUARDED_BY(mutex_);

  /// Stuck-strand watchdog (kWatchdog rank — a leaf; the scan samples the
  /// per-session atomics with NO lock held and only takes this mutex to
  /// fold its observations into the report).
  mutable OrderedMutex watchdog_mutex_{MutexRank::kWatchdog};
  std::condition_variable_any watchdog_cv_;
  bool watchdog_stop_ IFET_GUARDED_BY(watchdog_mutex_) = false;
  WatchdogReport watchdog_report_ IFET_GUARDED_BY(watchdog_mutex_);
  std::thread watchdog_thread_;

  /// Declared LAST: its destructor drains queued strand tasks, which
  /// reference sessions_ and tier_ above.
  ThreadPool command_pool_;
};

}  // namespace ifet
