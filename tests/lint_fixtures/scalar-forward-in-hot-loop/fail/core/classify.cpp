// Fixture (should FAIL): per-voxel scalar forward inside a loop body.
void classify(Mlp& mlp, const double* in, double* out, int n) {
  for (int i = 0; i < n; ++i) {
    out[i] = mlp.forward(in[i]);
  }
}
