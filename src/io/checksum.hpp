// Payload checksums for the volume file formats (docs/ROBUSTNESS.md).
//
// Both self-describing formats (.vol files and .cvol sequence frames)
// carry a CRC32 over their payload so a bit flip between writer and
// reader surfaces as a typed CorruptDataError instead of silently feeding
// garbage voxels to the classifier. The checksum is backward compatible:
// files written before this scheme simply lack the field and load
// unverified — the readers count verified/unverified/mismatched payloads
// into a thread-local ChecksumCounters so VolumeStore can attribute the
// verification state of each load to its step (loads run on whichever
// thread fetches or prefetches, so a thread-local delta around the decode
// is race-free attribution without a lock).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ifet {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes.
/// Chainable: pass a previous result as `seed` to extend the sum.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Per-thread tallies bumped by the io readers on every payload decode.
struct ChecksumCounters {
  std::uint64_t verified = 0;    ///< Payloads with a matching checksum.
  std::uint64_t unverified = 0;  ///< Legacy payloads without a checksum.
  std::uint64_t mismatches = 0;  ///< Checksum failures (each also throws).
};

/// The calling thread's counters (see header comment for the contract).
ChecksumCounters& checksum_counters();

}  // namespace ifet
