file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shell.dir/bench_ablation_shell.cpp.o"
  "CMakeFiles/bench_ablation_shell.dir/bench_ablation_shell.cpp.o.d"
  "bench_ablation_shell"
  "bench_ablation_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
