#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "core/batch.hpp"
#include "eval/metrics.hpp"
#include "io/image_io.hpp"
#include "io/volume_io.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "volume/ops.hpp"

namespace ifet {
namespace {

using testing::box_mask;
using testing::random_volume;

TEST(Metrics, PerfectPrediction) {
  Dims d{8, 8, 8};
  Mask gt = box_mask(d, {1, 1, 1}, {4, 4, 4});
  MaskScore s = score_mask(gt, gt);
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);
  EXPECT_DOUBLE_EQ(s.jaccard(), 1.0);
}

TEST(Metrics, EmptyPredictionScoresZero) {
  Dims d{8, 8, 8};
  Mask gt = box_mask(d, {1, 1, 1}, {4, 4, 4});
  Mask empty(d);
  MaskScore s = score_mask(empty, gt);
  EXPECT_DOUBLE_EQ(s.precision(), 0.0);
  EXPECT_DOUBLE_EQ(s.recall(), 0.0);
  EXPECT_DOUBLE_EQ(s.f1(), 0.0);
  EXPECT_EQ(s.true_negative, d.count() - 64);
}

TEST(Metrics, HalfOverlapArithmetic) {
  Dims d{8, 8, 8};
  // GT: x in [0,3]; prediction: x in [2,5] of the same y/z rows.
  Mask gt = box_mask(d, {0, 0, 0}, {3, 0, 0});
  Mask pred = box_mask(d, {2, 0, 0}, {5, 0, 0});
  MaskScore s = score_mask(pred, gt);
  EXPECT_EQ(s.true_positive, 2u);
  EXPECT_EQ(s.false_positive, 2u);
  EXPECT_EQ(s.false_negative, 2u);
  EXPECT_DOUBLE_EQ(s.precision(), 0.5);
  EXPECT_DOUBLE_EQ(s.recall(), 0.5);
  EXPECT_DOUBLE_EQ(s.jaccard(), 2.0 / 6.0);
}

TEST(Metrics, DimensionMismatchThrows) {
  EXPECT_THROW(score_mask(Mask(Dims{4, 4, 4}), Mask(Dims{5, 4, 4})), Error);
}

TEST(Metrics, CoverageFractions) {
  Dims d{8, 8, 8};
  Mask region = box_mask(d, {0, 0, 0}, {3, 3, 3});  // 64 voxels
  Mask half = box_mask(d, {0, 0, 0}, {3, 3, 1});    // 32 inside region
  EXPECT_DOUBLE_EQ(coverage(half, region), 0.5);
  EXPECT_DOUBLE_EQ(coverage(Mask(d), region), 0.0);
  EXPECT_DOUBLE_EQ(coverage(half, Mask(d)), 0.0);  // empty region
}

TEST(Metrics, MaskedMeanAbsDifference) {
  Dims d{4, 4, 4};
  VolumeF a(d, 1.0f);
  VolumeF b(d, 1.0f);
  b.at(0, 0, 0) = 3.0f;  // only difference, inside region
  Mask region = box_mask(d, {0, 0, 0}, {1, 1, 1});
  EXPECT_NEAR(masked_mean_abs_difference(a, b, region), 2.0 / 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(masked_mean_abs_difference(a, b, Mask(d)), 0.0);
}

TEST(VolumeIo, RawRoundTrip) {
  VolumeF v = random_volume(Dims{6, 5, 4}, 8);
  const std::string path = "/tmp/ifet_test_raw.bin";
  write_raw(v, path);
  VolumeF r = read_raw(path, v.dims());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FLOAT_EQ(r[i], v[i]);
  // Reading with bigger dims than the payload must fail.
  EXPECT_THROW(read_raw(path, Dims{10, 10, 10}), Error);
  std::remove(path.c_str());
}

TEST(VolumeIo, VolRoundTripSelfDescribing) {
  VolumeF v = random_volume(Dims{7, 3, 9}, 9);
  const std::string path = "/tmp/ifet_test_vol.vol";
  write_vol(v, path);
  VolumeF r = read_vol(path);
  EXPECT_EQ(r.dims(), v.dims());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_FLOAT_EQ(r[i], v[i]);
  std::remove(path.c_str());
}

TEST(VolumeIo, VolRejectsBadHeader) {
  const std::string path = "/tmp/ifet_bad.vol";
  {
    std::ofstream out(path);
    out << "not-a-vol 1 2 3\n";
  }
  EXPECT_THROW(read_vol(path), Error);
  std::remove(path.c_str());
}

TEST(VolumeIo, MissingFileThrows) {
  EXPECT_THROW(read_vol("/tmp/ifet_does_not_exist.vol"), Error);
  EXPECT_THROW(read_raw("/tmp/ifet_does_not_exist.bin", Dims{2, 2, 2}),
               Error);
}

TEST(ImageIo, WritesValidPpm) {
  ImageRgb8 img(4, 3);
  img.set(0, 0, 255, 0, 0);
  img.set(3, 2, 0, 255, 0);
  const std::string path = "/tmp/ifet_test.ppm";
  write_ppm(img, path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 3);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> payload(4 * 3 * 3);
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  EXPECT_EQ(in.gcount(), static_cast<std::streamsize>(payload.size()));
  EXPECT_EQ(static_cast<unsigned char>(payload[0]), 255);
  std::remove(path.c_str());
}

TEST(ImageIo, PgmSizeValidation) {
  std::vector<std::uint8_t> gray(12, 128);
  EXPECT_NO_THROW(write_pgm(gray, 4, 3, "/tmp/ifet_test.pgm"));
  EXPECT_THROW(write_pgm(gray, 5, 3, "/tmp/ifet_test.pgm"), Error);
  std::remove("/tmp/ifet_test.pgm");
}

TEST(Batch, ProcessesEveryStepOnce) {
  Dims d{8, 8, 8};
  CallbackSource source(
      d, 6, {0.0, 1.0}, [d](int step) {
        return VolumeF(d, static_cast<float>(step) * 0.1f);
      });
  BatchReport report = run_batch_extraction(
      source, 0, 5, [](const VolumeF& v, int) {
        return threshold_mask(v, 0.25f, 1.0f);
      });
  ASSERT_EQ(report.steps.size(), 6u);
  for (int s = 0; s < 6; ++s) {
    EXPECT_EQ(report.steps[static_cast<std::size_t>(s)].step, s);
    // Steps 3,4,5 have values >= 0.3 > 0.25 -> whole volume extracted.
    std::size_t expected = s >= 3 ? d.count() : 0;
    EXPECT_EQ(report.steps[static_cast<std::size_t>(s)].feature_voxels,
              expected)
        << "step " << s;
  }
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GE(report.cpu_step_seconds, 0.0);
}

TEST(Batch, SubrangeOnly) {
  Dims d{4, 4, 4};
  CallbackSource source(d, 10, {0.0, 1.0},
                        [d](int) { return VolumeF(d, 0.5f); });
  BatchReport report = run_batch_extraction(
      source, 3, 5, [](const VolumeF& v, int) {
        return threshold_mask(v, 0.0f, 1.0f);
      });
  ASSERT_EQ(report.steps.size(), 3u);
  EXPECT_EQ(report.steps.front().step, 3);
  EXPECT_EQ(report.steps.back().step, 5);
}

TEST(Batch, ValidatesRange) {
  Dims d{4, 4, 4};
  CallbackSource source(d, 5, {0.0, 1.0},
                        [d](int) { return VolumeF(d); });
  auto extract = [](const VolumeF& v, int) { return Mask(v.dims()); };
  EXPECT_THROW(run_batch_extraction(source, -1, 3, extract), Error);
  EXPECT_THROW(run_batch_extraction(source, 0, 5, extract), Error);
  EXPECT_THROW(run_batch_extraction(source, 3, 2, extract), Error);
}

}  // namespace
}  // namespace ifet
