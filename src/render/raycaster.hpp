// Software direct-volume ray caster.
//
// Substitutes the paper's hardware pipeline (Sec 7: fragment programs +
// view-aligned 3D textures on a GeForce 6800) with the same algorithm on
// the CPU: per-sample transfer-function lookup, optional Phong shading from
// central-difference gradient normals, front-to-back compositing with early
// ray termination, and the tracked-feature highlight pass — "when a voxel's
// value in the region growing texture is one, its color is set to red and
// its opacity is set to the opacity in the adaptive transfer function.
// Otherwise, the color and opacity looked up from the user specified 1D
// transfer function are shown."
//
// Color is always assigned from the *original data value* through a
// time-constant color map; the learned methods modulate opacity only
// (Sec 7's caveat about misleading color shifts).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "io/image_io.hpp"
#include "render/camera.hpp"
#include "tf/transfer_function.hpp"
#include "util/hot_path.hpp"
#include "volume/brick_index.hpp"
#include "volume/sequence.hpp"
#include "volume/volume.hpp"

namespace ifet {

/// Ray compositing scheme.
enum class CompositingMode {
  kFrontToBack,       ///< Emission-absorption (the paper's DVR).
  kMaximumIntensity,  ///< MIP: brightest TF-visible sample wins.
};

struct RenderSettings {
  int width = 256;
  int height = 256;
  CompositingMode mode = CompositingMode::kFrontToBack;
  /// Ray-march step as a fraction of a voxel (1.0 = one voxel per sample).
  double step_voxels = 1.0;
  bool shading = true;
  double ambient = 0.3;
  double diffuse = 0.7;
  double specular = 0.25;
  double specular_power = 24.0;
  /// Compositing stops once accumulated alpha exceeds this.
  double early_termination_alpha = 0.98;
  Rgb background{0.0, 0.0, 0.0};
  /// Opacity of TF entries was authored for unit sampling; corrected per
  /// sample distance when true.
  bool opacity_correction = true;
  /// Clip rays against per-brick min/max metadata: bricks the transfer
  /// function maps to zero opacity everywhere are jumped over instead of
  /// marched. Bitwise identical to the unskipped march — skipped samples
  /// are provably transparent (docs/PERFORMANCE.md) — so this is purely a
  /// speed knob; tests that assert sample *counts* turn it off.
  bool empty_space_skipping = true;
};

/// Inputs of a highlight (feature-tracking) overlay pass.
struct HighlightLayer {
  const Mask* mask = nullptr;             ///< Tracked-region texture.
  const TransferFunction1D* tf = nullptr; ///< Adaptive TF giving its opacity.
  Rgb color{0.9, 0.05, 0.05};             ///< Paper renders the feature red.
};

struct RenderStats {
  std::size_t rays = 0;
  std::size_t samples = 0;        ///< TF lookups performed.
  std::size_t terminated_early = 0;
  double seconds = 0.0;
  // Empty-space skipping (zero when the plan carries no brick index).
  std::size_t samples_skipped = 0;  ///< Samples clipped out by brick jumps.
  std::size_t bricks_total = 0;     ///< Bricks in the volume's index.
  std::size_t bricks_active = 0;    ///< Bricks the TF left potentially visible.

  /// Fraction of would-be samples the brick clipping removed.
  double skip_rate() const {
    const std::size_t total = samples + samples_skipped;
    return total == 0 ? 0.0
                      : static_cast<double>(samples_skipped) /
                            static_cast<double>(total);
  }
};

class Raycaster {
 public:
  explicit Raycaster(const RenderSettings& settings = {});

  const RenderSettings& settings() const { return settings_; }

  /// Render `volume` with a transfer function and color map. If `highlight`
  /// is provided its mask voxels are drawn in the highlight color with the
  /// adaptive TF's opacity (the multi-pass feature-tracking display).
  ImageRgb8 render(const VolumeF& volume, const TransferFunction1D& tf,
                   const ColorMap& colors, const Camera& camera,
                   const HighlightLayer* highlight = nullptr,
                   RenderStats* stats = nullptr) const;

  /// Streamed form for animation sweeps: fetch `step` through the sequence
  /// and (when `prefetch_next`) hint step+1 so an out-of-core sequence
  /// decodes the next frame while this one rasterizes.
  ImageRgb8 render_step(const VolumeSequence& sequence, int step,
                        const TransferFunction1D& tf, const ColorMap& colors,
                        const Camera& camera,
                        const HighlightLayer* highlight = nullptr,
                        RenderStats* stats = nullptr,
                        bool prefetch_next = true) const;

  /// Pre-classified render: a per-voxel certainty volume (the data-space
  /// classifier's output, computed once up front rather than per sample)
  /// modulates the transfer-function opacity —
  /// a = tf.opacity(value) * certainty — so only voxels the network deems
  /// part of the feature stay visible. Color still comes from the original
  /// data value. A certainty of one everywhere reproduces render() exactly.
  /// Requires front-to-back compositing; `certainty` must match `volume`'s
  /// dimensions.
  ImageRgb8 render_classified(const VolumeF& volume, const VolumeF& certainty,
                              const TransferFunction1D& tf,
                              const ColorMap& colors, const Camera& camera,
                              RenderStats* stats = nullptr) const;

  /// Per-frame render state, resolved once by prepare_plan: input pointers
  /// (caller-owned, must outlive the plan), the world-space bounding box,
  /// and the derived marching constants. Splitting setup from the ray loop
  /// lets render_rows stay validation- and allocation-free, and lets
  /// benches drive the row kernel directly.
  struct Plan {
    const VolumeF* volume = nullptr;
    const TransferFunction1D* tf = nullptr;
    const ColorMap* colors = nullptr;
    const Camera* camera = nullptr;
    const HighlightLayer* highlight = nullptr;  ///< optional
    const VolumeF* certainty = nullptr;         ///< optional
    Vec3 box_lo, box_hi;  ///< world-space volume bounds
    Vec3 box_scale;       ///< world -> voxel scale per axis
    double dt = 0.0;          ///< world-space step length
    double value_span = 0.0;  ///< tf.value_hi() - tf.value_lo()
    Vec3 light_dir;           ///< headlight direction (unit)

    // --- Empty-space skipping (null/empty when disabled) ---
    /// Brick min/max metadata; ingest-time when the caller supplied it,
    /// built from the volume by prepare_plan otherwise.
    std::shared_ptr<const BrickIndex> bricks;
    /// Per-brick activity under this plan's TF (and highlight layer when
    /// present): 0 = provably transparent, clipped out of every ray.
    std::vector<std::uint8_t> brick_active;

    /// World -> continuous voxel coordinates; voxel i covers
    /// [i-0.5, i+0.5) in sample space (centers at integer coordinates).
    IFET_HOT Vec3 to_voxel(const Vec3& world) const {
      return Vec3{(world.x - box_lo.x) * box_scale.x - 0.5,
                  (world.y - box_lo.y) * box_scale.y - 0.5,
                  (world.z - box_lo.z) * box_scale.z - 0.5};
    }
  };

  /// Per-call counters filled by render_rows (plain integers: the caller
  /// aggregates across workers; the kernel itself stays atomics-free).
  struct RenderRowCounters {
    std::size_t samples = 0;
    std::size_t terminated_early = 0;
    std::size_t samples_skipped = 0;
  };

  /// Validate the inputs and resolve the per-frame constants. Throws on
  /// the same contract violations render() would (highlight needs mask+TF
  /// of matching dims and front-to-back mode; certainty must match dims).
  ///
  /// When empty-space skipping is enabled, `bricks` supplies the volume's
  /// ingest-time brick metadata (e.g. VolumeSequence::brick_index); pass
  /// nullptr to have the plan build it from the volume (one extra pass —
  /// the legacy-file fallback). The active TF (and highlight layer) is
  /// folded into per-brick activity flags here, once per frame.
  Plan prepare_plan(const VolumeF& volume, const TransferFunction1D& tf,
                    const ColorMap& colors, const Camera& camera,
                    const HighlightLayer* highlight = nullptr,
                    const VolumeF* certainty = nullptr,
                    std::shared_ptr<const BrickIndex> bricks = nullptr) const;

  /// March rays for image rows [row0, row1) of a validated plan. The hot
  /// ray loop: no validation, no allocation, no I/O once the plan and the
  /// destination image exist. render() dispatches this across the thread
  /// pool; benches call it directly to prove the zero-allocation contract.
  void render_rows(const Plan& plan, int row0, int row1, ImageRgb8& image,
                   RenderRowCounters& counters) const;

 private:
  ImageRgb8 render_impl(const VolumeF& volume, const TransferFunction1D& tf,
                        const ColorMap& colors, const Camera& camera,
                        const HighlightLayer* highlight,
                        const VolumeF* certainty, RenderStats* stats,
                        std::shared_ptr<const BrickIndex> bricks = nullptr)
      const;

  RenderSettings settings_;
};

/// Render one axis-aligned slice of a volume through a TF + color map
/// (the interface's 2D views, Sec 6). Axis 0=X, 1=Y, 2=Z.
ImageRgb8 render_slice(const VolumeF& volume, int axis, int slice,
                       const TransferFunction1D& tf, const ColorMap& colors);

}  // namespace ifet
