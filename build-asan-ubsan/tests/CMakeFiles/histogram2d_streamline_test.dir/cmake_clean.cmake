file(REMOVE_RECURSE
  "CMakeFiles/histogram2d_streamline_test.dir/histogram2d_streamline_test.cpp.o"
  "CMakeFiles/histogram2d_streamline_test.dir/histogram2d_streamline_test.cpp.o.d"
  "histogram2d_streamline_test"
  "histogram2d_streamline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/histogram2d_streamline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
