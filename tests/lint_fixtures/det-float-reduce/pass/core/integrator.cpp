// PASS fixture: the corrected form folds left-to-right with
// std::accumulate — one fixed association, one rounding, bitwise stable
// at any thread count (parallel callers combine partials in range order).
#include <numeric>
#include <vector>

#define IFET_DETERMINISTIC

namespace fixture {

class Integrator {
 public:
  IFET_DETERMINISTIC double mass(const std::vector<double>& cells) const {
    return std::accumulate(cells.begin(), cells.end(), 0.0);  // fixed order
  }
};

}  // namespace fixture
