#include "ml/svm.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ifet {

SvmClassifier::SvmClassifier(int input_width, std::uint64_t seed,
                             const SvmConfig& config)
    : input_width_(input_width), config_(config), rng_(seed) {
  IFET_REQUIRE(input_width > 0, "SvmClassifier: input width must be > 0");
  IFET_REQUIRE(config.c > 0 && config.gamma > 0,
               "SvmClassifier: C and gamma must be positive");
}

double SvmClassifier::kernel(std::span<const double> a,
                             std::span<const double> b) const {
  double d2 = 0.0;
  for (std::size_t f = 0; f < a.size(); ++f) {
    double d = a[f] - b[f];
    d2 += d * d;
  }
  return std::exp(-config_.gamma * d2);
}

void SvmClassifier::fit(const TrainingSet& set, int /*budget*/) {
  IFET_REQUIRE(!set.empty(), "SvmClassifier::fit: empty training set");
  IFET_REQUIRE(static_cast<int>(set.input_width()) == input_width_,
               "SvmClassifier::fit: input width mismatch");
  const std::size_t n = set.size();
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    IFET_REQUIRE(set[i].target.size() == 1,
                 "SvmClassifier::fit: scalar targets required");
    y[i] = set[i].target[0] >= 0.5 ? 1.0 : -1.0;
  }

  // Precompute the kernel matrix (painted-sample scale keeps this small).
  std::vector<double> K(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double k = kernel(set[i].input, set[j].input);
      K[i * n + j] = k;
      K[j * n + i] = k;
    }
  }

  std::vector<double> alpha(n, 0.0);
  double b = 0.0;
  auto f_of = [&](std::size_t i) {
    double s = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] != 0.0) s += alpha[j] * y[j] * K[j * n + i];
    }
    return s;
  };

  // Simplified SMO (Platt): sweep samples, pair each KKT violator with a
  // random second index, solve the 2-variable subproblem analytically.
  const double C = config_.c;
  const double tol = config_.tolerance;
  int passes = 0;
  int iterations = 0;
  while (passes < config_.max_passes &&
         iterations < config_.max_iterations) {
    int changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double Ei = f_of(i) - y[i];
      bool violates = (y[i] * Ei < -tol && alpha[i] < C) ||
                      (y[i] * Ei > tol && alpha[i] > 0);
      if (!violates) continue;
      std::size_t j = rng_.uniform_index(n - 1);
      if (j >= i) ++j;
      double Ej = f_of(j) - y[j];

      double ai_old = alpha[i], aj_old = alpha[j];
      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(C, C + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - C);
        hi = std::min(C, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      double eta = 2.0 * K[i * n + j] - K[i * n + i] - K[j * n + j];
      if (eta >= 0.0) continue;
      double aj = aj_old - y[j] * (Ei - Ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::fabs(aj - aj_old) < 1e-6) continue;
      double ai = ai_old + y[i] * y[j] * (aj_old - aj);
      alpha[i] = ai;
      alpha[j] = aj;

      double b1 = b - Ei - y[i] * (ai - ai_old) * K[i * n + i] -
                  y[j] * (aj - aj_old) * K[i * n + j];
      double b2 = b - Ej - y[i] * (ai - ai_old) * K[i * n + j] -
                  y[j] * (aj - aj_old) * K[j * n + j];
      if (ai > 0 && ai < C) {
        b = b1;
      } else if (aj > 0 && aj < C) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
      ++iterations;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }

  support_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (alpha[i] > 1e-9) {
      support_.push_back(Support{
          std::vector<double>(set[i].input.begin(), set[i].input.end()),
          alpha[i] * y[i]});
    }
  }
  bias_ = b;
}

double SvmClassifier::decision(std::span<const double> input) const {
  IFET_REQUIRE(static_cast<int>(input.size()) == input_width_,
               "SvmClassifier::decision: input width mismatch");
  double s = bias_;
  for (const Support& sv : support_) {
    s += sv.alpha_y * kernel(sv.x, input);
  }
  return s;
}

double SvmClassifier::predict(std::span<const double> input) const {
  // Logistic link on the margin, so 0.5 sits on the decision boundary.
  return 1.0 / (1.0 + std::exp(-2.0 * decision(input)));
}

}  // namespace ifet
