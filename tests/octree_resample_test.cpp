#include <gtest/gtest.h>

#include "test_helpers.hpp"
#include "util/error.hpp"
#include "volume/octree.hpp"
#include "volume/resample.hpp"

namespace ifet {
namespace {

using testing::box_mask;
using testing::random_volume;

TEST(MaskOctree, RoundTripsExactly) {
  Dims d{20, 17, 9};  // deliberately non-power-of-two
  Rng rng(7);
  Mask m(d);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.uniform() < 0.3 ? 1 : 0;
  }
  MaskOctree tree(m);
  Mask back = tree.to_mask();
  ASSERT_EQ(back.dims(), d);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(back[i], m[i]) << "voxel " << i;
  }
  EXPECT_EQ(tree.voxel_count(), mask_count(m));
}

TEST(MaskOctree, PointQueriesMatchDense) {
  Dims d{16, 16, 16};
  Mask m = box_mask(d, {3, 4, 5}, {10, 11, 12});
  MaskOctree tree(m);
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        EXPECT_EQ(tree.at(i, j, k), m.at(i, j, k) != 0);
      }
    }
  }
  EXPECT_FALSE(tree.at(-1, 0, 0));
  EXPECT_FALSE(tree.at(0, 0, 99));
}

TEST(MaskOctree, CoherentMasksCompressWell) {
  // A solid box (the shape of tracked features) collapses into few nodes,
  // far below the dense footprint — the Silver-Wang reduction.
  Dims d{64, 64, 64};
  Mask m = box_mask(d, {8, 8, 8}, {39, 39, 39});  // an aligned 32^3 block
  MaskOctree tree(m);
  EXPECT_LT(tree.memory_bytes(), tree.dense_bytes() / 10);
}

TEST(MaskOctree, EmptyAndFullDegenerate) {
  Dims d{32, 32, 32};
  MaskOctree empty{Mask(d)};
  EXPECT_EQ(empty.voxel_count(), 0u);
  EXPECT_EQ(mask_count(empty.to_mask()), 0u);
  Mask full(d);
  full.fill(1);
  MaskOctree all(full);
  EXPECT_EQ(all.voxel_count(), d.count());
  EXPECT_EQ(mask_count(all.to_mask()), d.count());
  // A completely full power-of-two mask is a single sentinel — no real
  // nodes beyond the two placeholders.
  EXPECT_EQ(all.node_count(), 2u);
}

TEST(MaskOctree, OverlapMatchesDenseIntersection) {
  Dims d{24, 24, 24};
  Rng rng(9);
  Mask a(d), b(d);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform() < 0.4 ? 1 : 0;
    b[i] = rng.uniform() < 0.4 ? 1 : 0;
  }
  MaskOctree ta(a), tb(b);
  EXPECT_EQ(MaskOctree::overlap(ta, tb), mask_count(mask_and(a, b)));
}

TEST(MaskOctree, OverlapOfDisjointIsZero) {
  Dims d{16, 16, 16};
  MaskOctree a{box_mask(d, {0, 0, 0}, {5, 5, 5})};
  MaskOctree b{box_mask(d, {10, 10, 10}, {15, 15, 15})};
  EXPECT_EQ(MaskOctree::overlap(a, b), 0u);
  MaskOctree self{box_mask(d, {0, 0, 0}, {5, 5, 5})};
  EXPECT_EQ(MaskOctree::overlap(a, self), 216u);
}

TEST(MaskOctree, OverlapRejectsDimMismatch) {
  MaskOctree a{Mask(Dims{8, 8, 8})};
  MaskOctree b{Mask(Dims{16, 8, 8})};
  EXPECT_THROW(MaskOctree::overlap(a, b), Error);
}

// Octree round-trip across random densities (property sweep).
class OctreeDensityTest : public ::testing::TestWithParam<double> {};

TEST_P(OctreeDensityTest, RoundTripAndCount) {
  Dims d{13, 21, 10};
  Rng rng(77);
  Mask m(d);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.uniform() < GetParam() ? 1 : 0;
  }
  MaskOctree tree(m);
  EXPECT_EQ(tree.voxel_count(), mask_count(m));
  Mask back = tree.to_mask();
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_EQ(back[i], m[i]);
}

INSTANTIATE_TEST_SUITE_P(Densities, OctreeDensityTest,
                         ::testing::Values(0.0, 0.02, 0.3, 0.7, 1.0));

TEST(Downsample2, AveragesBlocks) {
  VolumeF v(Dims{4, 4, 4});
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(i % 2);  // alternating 0/1 along x
  }
  VolumeF half = downsample2(v);
  EXPECT_EQ(half.dims(), (Dims{2, 2, 2}));
  for (float x : half.data()) EXPECT_FLOAT_EQ(x, 0.5f);
}

TEST(Downsample2, HandlesOddDims) {
  VolumeF v(Dims{5, 3, 1}, 2.0f);
  VolumeF half = downsample2(v);
  EXPECT_EQ(half.dims(), (Dims{3, 2, 1}));
  for (float x : half.data()) EXPECT_FLOAT_EQ(x, 2.0f);
}

TEST(Downsample2, PreservesMean) {
  VolumeF v = random_volume(Dims{16, 16, 16}, 3);
  VolumeF half = downsample2(v);
  double mean_full = 0.0, mean_half = 0.0;
  for (float x : v.data()) mean_full += x;
  for (float x : half.data()) mean_half += x;
  mean_full /= static_cast<double>(v.size());
  mean_half /= static_cast<double>(half.size());
  EXPECT_NEAR(mean_half, mean_full, 1e-5);
}

TEST(Resample, IdentityWhenSameDims) {
  VolumeF v = random_volume(Dims{8, 8, 8}, 4);
  VolumeF r = resample(v, v.dims());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(r[i], v[i], 1e-5);
  }
}

TEST(Resample, UpsampleOfConstantIsConstant) {
  VolumeF v(Dims{4, 4, 4}, 1.5f);
  VolumeF up = resample(v, Dims{9, 7, 5});
  EXPECT_EQ(up.dims(), (Dims{9, 7, 5}));
  for (float x : up.data()) EXPECT_FLOAT_EQ(x, 1.5f);
}

TEST(Resample, PreservesLinearRamp) {
  VolumeF v(Dims{8, 8, 8});
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 8; ++j) {
      for (int i = 0; i < 8; ++i) v.at(i, j, k) = static_cast<float>(i);
    }
  }
  VolumeF up = resample(v, Dims{15, 8, 8});
  // A linear ramp stays linear under trilinear interpolation: corners pin
  // the range.
  EXPECT_NEAR(up.at(0, 4, 4), 0.0, 1e-5);
  EXPECT_NEAR(up.at(14, 4, 4), 7.0, 1e-5);
  EXPECT_NEAR(up.at(7, 4, 4), 3.5, 1e-5);
}

TEST(Resample, RejectsBadDims) {
  VolumeF v(Dims{4, 4, 4});
  EXPECT_THROW(resample(v, Dims{0, 4, 4}), Error);
}

TEST(LodPyramid, HalvesUntilUnitCube) {
  VolumeF v = random_volume(Dims{16, 16, 16}, 6);
  auto pyramid = build_lod_pyramid(v);
  ASSERT_EQ(pyramid.size(), 5u);  // 16, 8, 4, 2, 1
  EXPECT_EQ(pyramid[0].dims(), (Dims{16, 16, 16}));
  EXPECT_EQ(pyramid[4].dims(), (Dims{1, 1, 1}));
}

TEST(LodPyramid, MaxLevelsCap) {
  VolumeF v = random_volume(Dims{32, 32, 32}, 7);
  auto pyramid = build_lod_pyramid(v, 3);
  ASSERT_EQ(pyramid.size(), 3u);
  EXPECT_EQ(pyramid[2].dims(), (Dims{8, 8, 8}));
}

TEST(LodPyramid, SmallFeaturesVanishAtCoarseLevels) {
  // The Sec 4.3 rationale: at coarser levels tiny features wash out while
  // large structures persist — which is how a user picks sizes visually.
  Dims d{32, 32, 32};
  VolumeF v(d, 0.0f);
  v.at(5, 5, 5) = 1.0f;  // tiny feature
  for (int k = 16; k < 28; ++k) {  // large feature
    for (int j = 16; j < 28; ++j) {
      for (int i = 16; i < 28; ++i) v.at(i, j, k) = 1.0f;
    }
  }
  auto pyramid = build_lod_pyramid(v, 3);
  const VolumeF& coarse = pyramid[2];  // 8^3
  EXPECT_LT(coarse.at(1, 1, 1), 0.1f);   // tiny feature gone
  EXPECT_GT(coarse.at(5, 5, 5), 0.8f);   // large block survives
}

TEST(DownsampleMask, MajorityVote) {
  Dims d{4, 4, 4};
  Mask m(d);
  // Block (0,0,0): 5 of 8 set -> majority; block (1,1,1) (fine 2..3): 1 of
  // 8 -> not.
  m.at(0, 0, 0) = m.at(1, 0, 0) = m.at(0, 1, 0) = m.at(0, 0, 1) =
      m.at(1, 1, 0) = 1;
  m.at(2, 2, 2) = 1;
  Mask half = downsample2_mask(m, 0.5);
  EXPECT_EQ(half.at(0, 0, 0), 1);
  EXPECT_EQ(half.at(1, 1, 1), 0);
  // Threshold 0 keeps any-set blocks.
  Mask any = downsample2_mask(m, 1e-9);
  EXPECT_EQ(any.at(1, 1, 1), 1);
}

}  // namespace
}  // namespace ifet
