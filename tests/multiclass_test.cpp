#include <gtest/gtest.h>

#include "core/multiclass.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

/// Three-material volume: background 0.1, material A 0.5, material B 0.9.
VolumeF three_material_volume(Dims d) {
  VolumeF v(d, 0.1f);
  for (int k = 2; k < 8; ++k) {
    for (int j = 2; j < 8; ++j) {
      for (int i = 2; i < 8; ++i) v.at(i, j, k) = 0.5f;
    }
  }
  for (int k = 10; k < 16; ++k) {
    for (int j = 10; j < 16; ++j) {
      for (int i = 10; i < 16; ++i) v.at(i, j, k) = 0.9f;
    }
  }
  return v;
}

std::vector<ClassSample> paint_box(Index3 lo, Index3 hi, int step, int cls) {
  std::vector<ClassSample> out;
  for (int k = lo.z; k <= hi.z; ++k) {
    for (int j = lo.y; j <= hi.y; ++j) {
      for (int i = lo.x; i <= hi.x; ++i) {
        out.push_back({Index3{i, j, k}, step, cls});
      }
    }
  }
  return out;
}

MultiClassConfig simple_config() {
  MultiClassConfig cfg;
  cfg.spec.use_shell = false;
  cfg.spec.use_position = false;
  cfg.spec.use_time = false;
  return cfg;
}

TEST(MultiClass, ConstructionValidated) {
  EXPECT_THROW(MultiClassClassifier(1, 1, 0.0, 1.0), Error);
  EXPECT_THROW(MultiClassClassifier(3, 0, 0.0, 1.0), Error);
  EXPECT_THROW(MultiClassClassifier(3, 1, 1.0, 1.0), Error);
  MultiClassClassifier clf(3, 1, 0.0, 1.0, simple_config());
  EXPECT_EQ(clf.num_classes(), 3);
}

TEST(MultiClass, SeparatesThreeMaterialsByValue) {
  Dims d{18, 18, 18};
  VolumeF v = three_material_volume(d);
  MultiClassClassifier clf(3, 1, 0.0, 1.0, simple_config());
  // Class-balanced painting (roughly equal voxels per brush).
  clf.add_samples(v, 0, paint_box({0, 0, 9}, {3, 3, 12}, 0, 0));   // bg
  clf.add_samples(v, 0, paint_box({3, 3, 3}, {6, 6, 6}, 0, 1));    // A
  clf.add_samples(v, 0, paint_box({11, 11, 11}, {14, 14, 14}, 0, 2));  // B
  clf.train(1500);

  auto at = [&](int i, int j, int k) {
    auto scores = clf.classify_voxel(v, 0, i, j, k);
    return std::max_element(scores.begin(), scores.end()) - scores.begin();
  };
  EXPECT_EQ(at(17, 17, 0), 0);   // background corner
  EXPECT_EQ(at(5, 5, 5), 1);     // material A interior
  EXPECT_EQ(at(12, 12, 12), 2);  // material B interior
}

TEST(MultiClass, LabelVolumeMatchesArgmax) {
  Dims d{12, 12, 12};
  VolumeF v = testing::random_volume(d, 3);
  MultiClassClassifier clf(3, 1, 0.0, 1.0, simple_config());
  clf.add_samples(v, 0, paint_box({0, 0, 0}, {1, 1, 1}, 0, 0));
  clf.add_samples(v, 0, paint_box({5, 5, 5}, {6, 6, 6}, 0, 1));
  clf.add_samples(v, 0, paint_box({9, 9, 9}, {10, 10, 10}, 0, 2));
  clf.train(50);
  Volume<std::uint8_t> labels = clf.label_volume(v, 0);
  for (int k = 0; k < d.z; k += 4) {
    for (int j = 0; j < d.y; j += 4) {
      for (int i = 0; i < d.x; i += 4) {
        auto scores = clf.classify_voxel(v, 0, i, j, k);
        auto best =
            std::max_element(scores.begin(), scores.end()) - scores.begin();
        EXPECT_EQ(labels.at(i, j, k), best);
      }
    }
  }
}

TEST(MultiClass, ClassMasksPartitionTheVolume) {
  Dims d{14, 14, 14};
  VolumeF v = three_material_volume(Dims{18, 18, 18});
  // Use a view-sized copy to keep dims consistent:
  VolumeF small(d);
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) small.at(i, j, k) = v.at(i, j, k);
    }
  }
  MultiClassClassifier clf(3, 1, 0.0, 1.0, simple_config());
  clf.add_samples(small, 0, paint_box({0, 0, 10}, {1, 1, 12}, 0, 0));
  clf.add_samples(small, 0, paint_box({3, 3, 3}, {6, 6, 6}, 0, 1));
  clf.add_samples(small, 0, paint_box({11, 11, 11}, {12, 12, 12}, 0, 2));
  clf.train(300);
  std::size_t total = 0;
  for (int cls = 0; cls < 3; ++cls) {
    total += mask_count(clf.class_mask(small, 0, cls));
  }
  EXPECT_EQ(total, d.count());  // argmax assigns every voxel exactly once
}

TEST(MultiClass, CertaintyVolumeInUnitRange) {
  Dims d{10, 10, 10};
  VolumeF v = testing::random_volume(d, 5);
  MultiClassClassifier clf(2, 1, 0.0, 1.0, simple_config());
  clf.add_samples(v, 0, paint_box({0, 0, 0}, {1, 1, 1}, 0, 0));
  clf.add_samples(v, 0, paint_box({8, 8, 8}, {9, 9, 9}, 0, 1));
  clf.train(50);
  VolumeF certainty = clf.class_certainty(v, 0, 1);
  for (float x : certainty.data()) {
    EXPECT_GE(x, 0.0f);
    EXPECT_LE(x, 1.0f);
  }
}

TEST(MultiClass, ValidatesSamples) {
  Dims d{8, 8, 8};
  VolumeF v(d);
  MultiClassClassifier clf(3, 2, 0.0, 1.0, simple_config());
  EXPECT_THROW(clf.train(1), Error);
  EXPECT_THROW(clf.add_samples(v, 5, {{Index3{0, 0, 0}, 5, 0}}), Error);
  EXPECT_THROW(clf.add_samples(v, 0, {{Index3{9, 0, 0}, 0, 0}}), Error);
  EXPECT_THROW(clf.add_samples(v, 0, {{Index3{0, 0, 0}, 0, 3}}), Error);
  EXPECT_THROW(clf.class_certainty(v, 0, 7), Error);
}

TEST(MultiClass, ShellSeparatesEqualValueClasses) {
  // Two classes at the SAME value, distinguishable only by context: a
  // large block (class 1) vs scattered single voxels (class 0 among
  // background) — the multi-class analog of the size-selective extraction.
  Dims d{20, 20, 20};
  VolumeF v(d, 0.0f);
  for (int k = 4; k < 14; ++k) {
    for (int j = 4; j < 14; ++j) {
      for (int i = 4; i < 14; ++i) v.at(i, j, k) = 0.8f;
    }
  }
  v.at(17, 17, 17) = 0.8f;
  v.at(17, 2, 17) = 0.8f;
  MultiClassConfig cfg;
  cfg.spec.use_position = false;
  cfg.spec.use_time = false;
  cfg.spec.shell_radius = 2.0;
  MultiClassClassifier clf(2, 1, 0.0, 1.0, cfg);
  clf.add_samples(v, 0, paint_box({6, 6, 6}, {11, 11, 11}, 0, 1));
  clf.add_samples(v, 0, {{Index3{17, 17, 17}, 0, 0},
                         {Index3{17, 2, 17}, 0, 0},
                         {Index3{1, 1, 1}, 0, 0}});
  clf.train(500);
  auto scores_big = clf.classify_voxel(v, 0, 9, 9, 9);
  auto scores_tiny = clf.classify_voxel(v, 0, 17, 17, 17);
  EXPECT_GT(scores_big[1], scores_big[0]);
  EXPECT_GT(scores_tiny[0], scores_tiny[1]);
}

}  // namespace
}  // namespace ifet
