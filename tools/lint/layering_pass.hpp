// Layering pass: enforces the source-tree layer DAG and rejects include
// cycles (rules `layer-violation` and `include-cycle`).
//
// The layer ranks (docs/STATIC_ANALYSIS.md) mirror how the tree actually
// composes, bottom-up:
//
//   0 util        errors, rng, timers, lock-order/thread annotations
//   1 math, parallel
//   2 tf, nn
//   3 volume, ml
//   4 io, flowsim
//   5 stream, render
//   6 core
//   7 eval, session
//   8 server
//   9 tools
//
// A quoted include may only reach a strictly lower-ranked directory;
// same-directory includes are always fine, and peers (math <-> parallel)
// may not include each other — a dependency between peers means one of
// them is no longer the layer it claims to be. Unknown directories are
// skipped rather than guessed at.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lint/tokenizer.hpp"

namespace ifet_lint {

inline const std::map<std::string, int>& layer_ranks() {
  static const std::map<std::string, int> ranks = {
      {"util", 0},   {"math", 1},    {"parallel", 1}, {"tf", 2},
      {"nn", 2},     {"volume", 3},  {"ml", 3},       {"io", 4},
      {"flowsim", 4}, {"stream", 5}, {"render", 5},   {"core", 6},
      {"eval", 7},   {"session", 7}, {"server", 8},   {"tools", 9}};
  return ranks;
}

/// Module (layer directory) of a scanned file: the path component after
/// `src` when present, otherwise the immediate parent directory — the
/// latter keeps fixture trees (tests/lint_fixtures/<rule>/fail/math/x.cpp)
/// working without a src/ root.
inline std::string module_of(const fs::path& p) {
  std::vector<std::string> parts;
  for (const auto& part : p) parts.push_back(part.string());
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (parts[i] == "src") return parts[i + 1];
  }
  return parts.size() >= 2 ? parts[parts.size() - 2] : std::string();
}

/// Node key in the include graph: the path a sibling would include it by
/// ("stream/cache_manager.hpp").
inline std::string include_key(const fs::path& p) {
  return module_of(p) + "/" + p.filename().string();
}

inline void run_layering_pass(const std::vector<SourceFile>& files,
                              std::vector<Finding>& findings) {
  static const std::regex include_re(R"(^\s*#\s*include\s*\"([^\"]+)\")");

  struct IncludeEdge {
    std::string target;  // quoted include path
    std::size_t file_index;
    std::size_t line;  // 1-based
  };
  std::map<std::string, std::vector<IncludeEdge>> graph;  // key -> edges
  const auto& ranks = layer_ranks();

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const SourceFile& file = files[fi];
    if (!file.ok) continue;
    const std::string from_module = module_of(file.path);
    const auto from_rank = ranks.find(from_module);
    auto& edges = graph[include_key(file.path)];

    for (std::size_t i = 0; i < file.code.size(); ++i) {
      std::smatch m;
      // Includes survive in the raw view only (the code view blanks string
      // literals, and the include path is one).
      if (!std::regex_search(file.raw[i], m, include_re)) continue;
      const std::string target = m[1].str();
      edges.push_back({target, fi, i + 1});

      const auto slash = target.find('/');
      if (slash == std::string::npos) continue;  // same-dir relative form
      const std::string to_module = target.substr(0, slash);
      if (to_module == from_module) continue;
      const auto to_rank = ranks.find(to_module);
      if (from_rank == ranks.end() || to_rank == ranks.end()) continue;
      if (to_rank->second >= from_rank->second &&
          !suppressed(file.raw, i, "layer-violation")) {
        findings.push_back(
            {file.path.string(), i + 1, "layer-violation",
             "src/" + from_module + " (layer " +
                 std::to_string(from_rank->second) + ") must not include " +
                 target + " (layer " + std::to_string(to_rank->second) +
                 "); includes may only reach strictly lower layers — " +
                 "move the shared piece down or invert the dependency"});
      }
    }
  }

  // Include-cycle detection over the quoted-include graph, restricted to
  // scanned files (system headers and unscanned targets are absent nodes).
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    const auto git = graph.find(node);
    if (git != graph.end()) {
      for (const auto& e : git->second) {
        if (graph.find(e.target) == graph.end()) continue;
        if (color[e.target] == 1) {
          std::vector<std::string> cycle;
          for (std::size_t s = stack.size(); s-- > 0;) {
            cycle.push_back(stack[s]);
            if (stack[s] == e.target) break;
          }
          std::vector<std::string> key_parts = cycle;
          std::sort(key_parts.begin(), key_parts.end());
          std::string key;
          for (const auto& p : key_parts) key += p + "|";
          const SourceFile& site = files[e.file_index];
          if (reported.count(key) ||
              suppressed(site.raw, e.line - 1, "include-cycle")) {
            continue;
          }
          reported.insert(key);
          std::string path_str = e.target;
          for (auto it = cycle.rbegin(); it != cycle.rend(); ++it) {
            if (*it != e.target || it != cycle.rbegin()) {
              path_str += " -> " + *it;
            }
          }
          path_str += " -> " + e.target;
          findings.push_back({site.path.string(), e.line, "include-cycle",
                              "include cycle: " + path_str +
                                  "; break it with a forward declaration "
                                  "or by splitting the header"});
        } else if (color[e.target] == 0) {
          dfs(e.target);
        }
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, edges] : graph) {
    (void)edges;
    if (color[node] == 0) dfs(node);
  }
}

}  // namespace ifet_lint
