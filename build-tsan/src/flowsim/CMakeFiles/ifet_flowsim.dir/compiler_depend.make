# Empty compiler generated dependencies file for ifet_flowsim.
# This may be replaced when dependencies are built.
