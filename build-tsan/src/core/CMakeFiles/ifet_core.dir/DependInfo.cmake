
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batch.cpp" "src/core/CMakeFiles/ifet_core.dir/batch.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/batch.cpp.o.d"
  "/root/repo/src/core/dataspace.cpp" "src/core/CMakeFiles/ifet_core.dir/dataspace.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/dataspace.cpp.o.d"
  "/root/repo/src/core/feature_vector.cpp" "src/core/CMakeFiles/ifet_core.dir/feature_vector.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/feature_vector.cpp.o.d"
  "/root/repo/src/core/iatf.cpp" "src/core/CMakeFiles/ifet_core.dir/iatf.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/iatf.cpp.o.d"
  "/root/repo/src/core/keyframe_advisor.cpp" "src/core/CMakeFiles/ifet_core.dir/keyframe_advisor.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/keyframe_advisor.cpp.o.d"
  "/root/repo/src/core/multiclass.cpp" "src/core/CMakeFiles/ifet_core.dir/multiclass.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/multiclass.cpp.o.d"
  "/root/repo/src/core/multivariate.cpp" "src/core/CMakeFiles/ifet_core.dir/multivariate.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/multivariate.cpp.o.d"
  "/root/repo/src/core/predictive_tracker.cpp" "src/core/CMakeFiles/ifet_core.dir/predictive_tracker.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/predictive_tracker.cpp.o.d"
  "/root/repo/src/core/track_events.cpp" "src/core/CMakeFiles/ifet_core.dir/track_events.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/track_events.cpp.o.d"
  "/root/repo/src/core/tracking.cpp" "src/core/CMakeFiles/ifet_core.dir/tracking.cpp.o" "gcc" "src/core/CMakeFiles/ifet_core.dir/tracking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/nn/CMakeFiles/ifet_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tf/CMakeFiles/ifet_tf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/volume/CMakeFiles/ifet_volume.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/parallel/CMakeFiles/ifet_parallel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/ifet_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/math/CMakeFiles/ifet_math.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
