#include "io/image_io.hpp"

#include <fstream>

#include "util/error.hpp"

namespace ifet {

void write_ppm(const ImageRgb8& image, const std::string& path) {
  IFET_REQUIRE(image.width > 0 && image.height > 0,
               "write_ppm: empty image");
  std::ofstream out(path, std::ios::binary);
  IFET_REQUIRE(out.good(), "write_ppm: cannot open " + path);
  out << "P6\n" << image.width << ' ' << image.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.pixels.data()),
            static_cast<std::streamsize>(image.pixels.size()));
  IFET_REQUIRE(out.good(), "write_ppm: write failed for " + path);
}

void write_pgm(const std::vector<std::uint8_t>& gray, int width, int height,
               const std::string& path) {
  IFET_REQUIRE(static_cast<std::size_t>(width) *
                       static_cast<std::size_t>(height) ==
                   gray.size(),
               "write_pgm: size mismatch");
  std::ofstream out(path, std::ios::binary);
  IFET_REQUIRE(out.good(), "write_pgm: cannot open " + path);
  out << "P5\n" << width << ' ' << height << "\n255\n";
  out.write(reinterpret_cast<const char*>(gray.data()),
            static_cast<std::streamsize>(gray.size()));
  IFET_REQUIRE(out.good(), "write_pgm: write failed for " + path);
}

}  // namespace ifet
