#include <gtest/gtest.h>

#include <cmath>

#include "flowsim/streamline.hpp"
#include "render/raycaster.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "volume/histogram2d.hpp"

namespace ifet {
namespace {

using testing::blob_volume;

TEST(Histogram2D, CountsSumToVoxelCount) {
  VolumeF v = testing::random_volume(Dims{12, 12, 12}, 4);
  Histogram2D h(v, 16, 8, 0.0, 1.0);
  std::size_t total = 0;
  for (int vb = 0; vb < 16; ++vb) {
    for (int gb = 0; gb < 8; ++gb) total += h.count(vb, gb);
  }
  EXPECT_EQ(total, v.size());
  EXPECT_EQ(h.total(), v.size());
}

TEST(Histogram2D, UniformVolumeIsAllZeroGradient) {
  VolumeF v(Dims{10, 10, 10}, 0.5f);
  Histogram2D h(v, 8, 8, 0.0, 1.0);
  // Every voxel in the 0.5 value bin, zero-gradient column.
  EXPECT_EQ(h.count(4, 0), v.size());
  EXPECT_DOUBLE_EQ(h.mean_gradient_of_value_bin(4), 0.0);
  // The derived TF is fully transparent (no boundaries anywhere).
  TransferFunction1D tf = h.boundary_emphasis_tf();
  for (int e = 0; e < TransferFunction1D::kEntries; ++e) {
    EXPECT_DOUBLE_EQ(tf.opacity_entry(e), 0.0);
  }
}

TEST(Histogram2D, BoundaryValuesCarryHighMeanGradient) {
  // Two-material volume: interiors at 0.2 and 0.8, a sharp interface.
  Dims d{20, 20, 20};
  VolumeF v(d, 0.2f);
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 10; i < d.x; ++i) v.at(i, j, k) = 0.8f;
    }
  }
  Histogram2D h(v, 10, 8, 0.0, 1.0);
  // Interior bins (0.2 -> bin 2, 0.8 -> bin 8): mostly flat.
  // Intermediate values only exist AT the interface (via the gradient
  // estimator they do not exist as voxel values here), so instead compare
  // the interface-adjacent interiors' mean gradient against deep-interior
  // bins via the derived TF: the interface makes the 0.2/0.8 bins carry
  // nonzero mean gradient, and the derived TF opens there.
  TransferFunction1D tf = h.boundary_emphasis_tf(0.8);
  // Probe at bin centers (0.25, 0.85): TF entries map to 0.1-wide bins.
  EXPECT_GT(tf.opacity(0.25), 0.0);
  EXPECT_GT(tf.opacity(0.85), 0.0);
  // Values that occur nowhere have empty bins -> transparent.
  EXPECT_DOUBLE_EQ(tf.opacity(0.5), 0.0);
}

TEST(Histogram2D, GradientAxisDiscriminatesFlatFromEdge) {
  // A smooth blob: its peak-value bin is flat (center), its mid-value
  // bins lie on the slope (high gradient).
  VolumeF v = blob_volume(Dims{24, 24, 24}, {12, 12, 12}, 5.0, 1.0f);
  Histogram2D h(v, 10, 10, 0.0, 1.0);
  double slope_bin = h.mean_gradient_of_value_bin(5);   // mid values
  double peak_bin = h.mean_gradient_of_value_bin(9);    // near the center
  EXPECT_GT(slope_bin, peak_bin);
}

TEST(Histogram2D, Validation) {
  VolumeF v(Dims{4, 4, 4});
  EXPECT_THROW(Histogram2D(v, 0, 8, 0.0, 1.0), Error);
  EXPECT_THROW(Histogram2D(v, 8, 8, 1.0, 1.0), Error);
  Histogram2D h(v, 8, 8, 0.0, 1.0);
  EXPECT_THROW(h.count(8, 0), Error);
  EXPECT_THROW(h.mean_gradient_of_value_bin(-1), Error);
}

// --- Streamlines -------------------------------------------------------------

/// Solid-body rotation about the volume's z-axis center: streamlines are
/// circles.
void rotation_field(Dims d, VolumeF& u, VolumeF& v, VolumeF& w) {
  u = VolumeF(d);
  v = VolumeF(d);
  w = VolumeF(d);
  const double cx = 0.5 * (d.x - 1), cy = 0.5 * (d.y - 1);
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        u.at(i, j, k) = static_cast<float>(-(j - cy) * 0.1);
        v.at(i, j, k) = static_cast<float>((i - cx) * 0.1);
      }
    }
  }
}

TEST(Streamline, CircularOrbitInRotationField) {
  Dims d{32, 32, 8};
  VolumeF u, v, w;
  rotation_field(d, u, v, w);
  Vec3 seed{23.5, 15.5, 3.0};  // radius 8 from the center
  StreamlineConfig cfg;
  cfg.dt = 0.25;
  cfg.max_steps = 3000;
  Streamline line = trace_streamline(u, v, w, seed, cfg);
  ASSERT_GT(line.points.size(), 100u);
  // Every vertex stays at (approximately) the seed radius: RK4 on a linear
  // field is near-exact.
  const Vec3 center{15.5, 15.5, 3.0};
  const double r0 = (seed - center).norm();
  for (const Vec3& p : line.points) {
    EXPECT_NEAR((p - center).norm(), r0, 0.15);
  }
  // And it actually orbits: total arc length exceeds one circumference.
  EXPECT_GT(line.length(), 2 * 3.14159 * r0);
}

TEST(Streamline, UniformFlowExitsDomain) {
  Dims d{16, 8, 8};
  VolumeF u(d, 1.0f), v(d, 0.0f), w(d, 0.0f);
  Streamline line = trace_streamline(u, v, w, Vec3{1, 4, 4});
  EXPECT_TRUE(line.left_domain);
  EXPECT_FALSE(line.stagnated);
  // Path is a straight +x line.
  for (const Vec3& p : line.points) {
    EXPECT_NEAR(p.y, 4.0, 1e-9);
    EXPECT_NEAR(p.z, 4.0, 1e-9);
  }
}

TEST(Streamline, StagnantFlowStopsImmediately) {
  Dims d{8, 8, 8};
  VolumeF u(d), v(d), w(d);
  Streamline line = trace_streamline(u, v, w, Vec3{4, 4, 4});
  EXPECT_TRUE(line.stagnated);
  EXPECT_EQ(line.points.size(), 1u);
}

TEST(Streamline, SeedOutsideDomain) {
  Dims d{8, 8, 8};
  VolumeF u(d, 1.0f), v(d), w(d);
  Streamline line = trace_streamline(u, v, w, Vec3{-5, 4, 4});
  EXPECT_TRUE(line.left_domain);
  EXPECT_TRUE(line.points.empty());
}

TEST(Streamline, MaxStepsCap) {
  Dims d{32, 32, 8};
  VolumeF u, v, w;
  rotation_field(d, u, v, w);
  StreamlineConfig cfg;
  cfg.max_steps = 50;
  Streamline line = trace_streamline(u, v, w, Vec3{23.5, 15.5, 3.0}, cfg);
  EXPECT_LE(line.points.size(), 51u);
  EXPECT_FALSE(line.left_domain);
}

TEST(Streamline, GridSeedsCoverTheDomain) {
  Dims d{16, 16, 16};
  VolumeF u(d, 0.5f), v(d), w(d);
  auto lines = trace_streamline_grid(u, v, w, 3);
  EXPECT_EQ(lines.size(), 27u);
  for (const auto& line : lines) {
    EXPECT_TRUE(line.left_domain);  // uniform flow leaves through +x
  }
  EXPECT_THROW(trace_streamline_grid(u, v, w, 0), Error);
}

TEST(Streamline, ConfigValidated) {
  Dims d{8, 8, 8};
  VolumeF u(d), v(d), w(d);
  StreamlineConfig bad;
  bad.dt = 0.0;
  EXPECT_THROW(trace_streamline(u, v, w, Vec3{4, 4, 4}, bad), Error);
  VolumeF mismatched(Dims{4, 4, 4});
  EXPECT_THROW(trace_streamline(u, v, mismatched, Vec3{2, 2, 2}), Error);
}

// --- MIP compositing ---------------------------------------------------------

TEST(MipRendering, BrightestVisibleSampleWins) {
  // Two blobs along one ray: MIP shows the brighter one regardless of
  // depth order.
  Dims d{32, 16, 16};
  VolumeF v(d, 0.0f);
  v.at(8, 8, 8) = 0.5f;   // nearer (depends on camera) but dimmer
  v.at(24, 8, 8) = 1.0f;  // brighter
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.2, 1.0, 0.5);
  ColorMap ramp({{0.0, Rgb{0, 0, 0}}, {1.0, Rgb{1, 1, 1}}});
  RenderSettings s;
  s.width = 64;
  s.height = 64;
  s.mode = CompositingMode::kMaximumIntensity;
  s.step_voxels = 0.4;
  Raycaster caster(s);
  // Camera along +x so both voxels project near the same pixels.
  Camera camera(0.0, 0.0, 2.5);
  ImageRgb8 image = caster.render(v, tf, ramp, camera);
  std::uint8_t brightest = 0;
  for (std::uint8_t p : image.pixels) brightest = std::max(brightest, p);
  // The brightest pixel reflects the 1.0 voxel (trilinear sampling blunts
  // a single-voxel peak, so well above the 0.5 blob's gray ~128 suffices).
  EXPECT_GT(brightest, 170);
}

TEST(MipRendering, RejectsHighlightLayer) {
  VolumeF v(Dims{8, 8, 8}, 0.5f);
  TransferFunction1D tf(0.0, 1.0);
  Mask mask(Dims{8, 8, 8});
  HighlightLayer layer{&mask, &tf, Rgb{1, 0, 0}};
  RenderSettings s;
  s.width = 8;
  s.height = 8;
  s.mode = CompositingMode::kMaximumIntensity;
  Raycaster caster(s);
  EXPECT_THROW(caster.render(v, tf, ColorMap(), Camera(0.4, 0.3, 2.5),
                             &layer),
               Error);
}

TEST(MipRendering, TransparentTfShowsBackground) {
  VolumeF v = testing::random_volume(Dims{12, 12, 12}, 9);
  TransferFunction1D tf(0.0, 1.0);  // all transparent
  RenderSettings s;
  s.width = 16;
  s.height = 16;
  s.mode = CompositingMode::kMaximumIntensity;
  s.background = Rgb{0.0, 0.0, 1.0};
  Raycaster caster(s);
  ImageRgb8 image = caster.render(v, tf, ColorMap(), Camera(0.4, 0.3, 2.5));
  for (std::size_t p = 0; p < image.pixels.size(); p += 3) {
    EXPECT_EQ(image.pixels[p], 0);
    EXPECT_EQ(image.pixels[p + 2], 255);
  }
}

}  // namespace
}  // namespace ifet
