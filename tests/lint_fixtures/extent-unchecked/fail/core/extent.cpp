// Fixture (should FAIL): Dims parameters with no IFET_REQUIRE anywhere.
struct Dims {
  int x, y, z;
};

int cells(const Dims& d) { return d.x * d.y * d.z; }
