# Empty compiler generated dependencies file for bench_fig4_argon_sequence.
# This may be replaced when dependencies are built.
