// Quickstart: the smallest end-to-end use of the library.
//
//   1. open a time-varying data set (here: the procedural argon bubble),
//   2. author 1D transfer functions for two key frames,
//   3. train the Intelligent Adaptive Transfer Function (IATF),
//   4. synthesize the adapted TF for an intermediate step, and
//   5. volume-render that step to a PPM image.
//
// Run:  ./quickstart [--out=DIR] [--size=48] [--image=256]
#include <filesystem>
#include <iostream>

#include "core/iatf.hpp"
#include "flowsim/datasets.hpp"
#include "io/image_io.hpp"
#include "render/raycaster.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ifet;
  CliArgs args(argc, argv);
  const std::string out_dir = args.get("out", "example_out");
  const int size = args.get_int("size", 48);
  const int image_size = args.get_int("image", 256);
  std::filesystem::create_directories(out_dir);

  // 1. The data set: 4D scalar field, generated on demand, LRU-cached.
  ArgonBubbleConfig config;
  config.dims = Dims{size, size, size};
  config.num_steps = 360;
  auto source = std::make_shared<ArgonBubbleSource>(config);
  CachedSequence sequence(source, 6);
  std::cout << "data set: argon bubble, " << size << "^3 x "
            << sequence.num_steps() << " steps\n";

  // 2. Key-frame transfer functions: opacity bands over the ring's values.
  auto [vlo, vhi] = sequence.value_range();
  auto ring_tf = [&](int step) {
    TransferFunction1D tf(vlo, vhi);
    double c = source->ring_band_center(step);
    double h = source->ring_band_half_width();
    tf.add_band(c - h, c + h, 1.0, 0.5 * h);
    return tf;
  };

  // 3. Train the IATF from the key frames (Sec 4.2 of the paper).
  Iatf iatf(sequence);
  iatf.add_key_frame(195, ring_tf(195));
  iatf.add_key_frame(255, ring_tf(255));
  double mse = iatf.train(2000);
  std::cout << "IATF trained: " << iatf.training_samples()
            << " samples, final MSE " << mse << "\n";

  // 4. The adapted TF for an unseen intermediate step.
  const int step = 225;
  TransferFunction1D adapted = iatf.evaluate(step);
  auto bands = adapted.opaque_intervals(0.25);
  std::cout << "adapted TF at t=" << step << " opens";
  for (auto [lo, hi] : bands) std::cout << " [" << lo << ", " << hi << "]";
  std::cout << "\n";

  // 5. Render.
  RenderSettings settings;
  settings.width = image_size;
  settings.height = image_size;
  Raycaster caster(settings);
  Camera camera(0.6, 0.35, 2.4);
  RenderStats stats;
  ImageRgb8 image =
      caster.render(sequence.step(step), adapted, ColorMap(), camera,
                    nullptr, &stats);
  const std::string path = out_dir + "/quickstart_t225.ppm";
  write_ppm(image, path);
  std::cout << "rendered " << stats.rays << " rays, " << stats.samples
            << " samples in " << stats.seconds << " s -> " << path << "\n";
  return 0;
}
