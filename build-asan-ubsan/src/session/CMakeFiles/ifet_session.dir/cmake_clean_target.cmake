file(REMOVE_RECURSE
  "libifet_session.a"
)
