# Empty dependencies file for bench_fig9_vortex_track.
# This may be replaced when dependencies are built.
