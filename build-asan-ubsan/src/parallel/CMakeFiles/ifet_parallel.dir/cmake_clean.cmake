file(REMOVE_RECURSE
  "CMakeFiles/ifet_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/ifet_parallel.dir/thread_pool.cpp.o.d"
  "libifet_parallel.a"
  "libifet_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
