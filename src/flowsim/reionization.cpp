#include <cmath>

#include "flowsim/datasets.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace ifet {

namespace {

// The large structures are three filaments, each a polyline through the
// domain perturbed by low-frequency noise. Segment count balances fidelity
// against the per-voxel distance cost.
constexpr int kNumFilaments = 3;
constexpr int kFilamentSegments = 14;

// Envelope value at which a voxel counts as belonging to a structure when
// building ground-truth masks.
constexpr double kMaskEnvelope = 0.5;

double point_segment_distance(const Vec3& p, const Vec3& a, const Vec3& b) {
  Vec3 ab = b - a;
  double len2 = ab.norm2();
  if (len2 <= 0.0) return (p - a).norm();
  double t = clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return (p - (a + ab * t)).norm();
}

}  // namespace

ReionizationSource::ReionizationSource(const ReionizationConfig& config)
    : config_(config), noise_(config.seed) {
  IFET_REQUIRE(config_.num_steps > 0, "Reionization: need steps");
  IFET_REQUIRE(config_.num_small_features >= 0,
               "Reionization: negative small-feature count");
  // Small "noise" features: fixed positions, amplitudes drawn from the same
  // value band the large structures occupy — by design a 1D transfer
  // function cannot separate them (the Fig 7 premise).
  Rng rng(config_.seed ^ 0xfeedULL);
  small_centers_.reserve(static_cast<std::size_t>(config_.num_small_features));
  small_amplitudes_.reserve(
      static_cast<std::size_t>(config_.num_small_features));
  for (int s = 0; s < config_.num_small_features; ++s) {
    small_centers_.push_back(Vec3{rng.uniform(0.05, 0.95),
                                  rng.uniform(0.05, 0.95),
                                  rng.uniform(0.05, 0.95)});
    small_amplitudes_.push_back(rng.uniform(0.55, 0.9));
  }
}

double ReionizationSource::large_contribution(const Vec3& p, int step) const {
  const double width =
      config_.filament_width0 + config_.filament_growth * step;
  double best = 0.0;
  for (int f = 0; f < kNumFilaments; ++f) {
    // Filament f: polyline sweeping across the domain, wobbling with noise.
    double min_d = 1e9;
    Vec3 prev;
    for (int s = 0; s <= kFilamentSegments; ++s) {
      double u = static_cast<double>(s) / kFilamentSegments;
      Vec3 node{
          u,
          0.25 + 0.5 * f / (kNumFilaments - 1.0) +
              0.12 * noise_.at(u * 3.0, f * 11.3, 0.0),
          0.3 + 0.4 * std::fmod(f * 0.37 + 0.2, 1.0) +
              0.12 * noise_.at(u * 3.0 + 9.0, f * 7.7, 1.5)};
      if (s > 0) min_d = std::min(min_d, point_segment_distance(p, prev, node));
      prev = node;
    }
    best = std::max(best, std::exp(-(min_d * min_d) / (width * width)));
  }
  return best;
}

double ReionizationSource::small_contribution(const Vec3& p, int step) const {
  (void)step;
  const double r = config_.small_radius;
  double best = 0.0;
  for (std::size_t s = 0; s < small_centers_.size(); ++s) {
    Vec3 d = p - small_centers_[s];
    // Cheap reject: blobs are tiny.
    if (std::fabs(d.x) > 4 * r || std::fabs(d.y) > 4 * r ||
        std::fabs(d.z) > 4 * r) {
      continue;
    }
    double dist2 = d.norm2();
    best = std::max(best,
                    small_amplitudes_[s] * std::exp(-dist2 / (r * r)));
  }
  return best;
}

VolumeF ReionizationSource::generate(int step) const {
  IFET_REQUIRE(step >= 0 && step < config_.num_steps,
               "Reionization: step out of range");
  const Dims d = config_.dims;
  VolumeF out(d);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 p{(i + 0.5) / d.x, (j + 0.5) / d.y, (k + 0.5) / d.z};
        // Large structures carry fine fbm surface detail — the detail the
        // smoothing baseline of Fig 7 destroys.
        double envelope = large_contribution(p, step);
        double detail =
            1.0 + config_.detail_amplitude *
                      noise_.fbm(p.x * 14.0, p.y * 14.0, p.z * 14.0, 4);
        double large = 0.7 * envelope * detail;
        double small = small_contribution(p, step);
        double background =
            0.06 * std::fabs(noise_.fbm(p.x * 3.0, p.y * 3.0, p.z * 3.0, 3));
        out[out.linear_index(i, j, k)] =
            static_cast<float>(std::max({large, small, background}));
      }
    }
  });
  return out;
}

Mask ReionizationSource::large_mask(int step) const {
  const Dims d = config_.dims;
  Mask out(d);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 p{(i + 0.5) / d.x, (j + 0.5) / d.y, (k + 0.5) / d.z};
        out[out.linear_index(i, j, k)] =
            large_contribution(p, step) > kMaskEnvelope ? 1 : 0;
      }
    }
  });
  return out;
}

Mask ReionizationSource::small_mask(int step) const {
  const Dims d = config_.dims;
  Mask out(d);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 p{(i + 0.5) / d.x, (j + 0.5) / d.y, (k + 0.5) / d.z};
        bool small = small_contribution(p, step) >
                     kMaskEnvelope * 0.7;  // relative to blob amplitude band
        bool large = large_contribution(p, step) > kMaskEnvelope;
        out[out.linear_index(i, j, k)] = (small && !large) ? 1 : 0;
      }
    }
  });
  return out;
}

std::pair<double, double> ReionizationSource::value_range() const {
  // Large: 0.7 * (1 + detail) <= 0.7 * 1.35; small <= 0.9.
  return {0.0, 1.0};
}

}  // namespace ifet
