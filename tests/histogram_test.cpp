#include <gtest/gtest.h>

#include <limits>

#include "test_helpers.hpp"
#include "util/error.hpp"
#include "volume/histogram.hpp"

namespace ifet {
namespace {

using testing::random_volume;

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(4, 0.0, 4.0);
  h.add(0.5);   // bin 0
  h.add(1.5);   // bin 1
  h.add(1.9);   // bin 1
  h.add(3.999); // bin 3
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeValuesClampToEndBins) {
  Histogram h(4, 0.0, 4.0);
  h.add(-10.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(Histogram, BinCentersAndBinOfAgree) {
  Histogram h(10, -1.0, 1.0);
  for (int b = 0; b < 10; ++b) {
    EXPECT_EQ(h.bin_of(h.bin_center(b)), b);
  }
}

TEST(Histogram, PeakBinFindsMaximum) {
  Histogram h(8, 0.0, 8.0);
  for (int i = 0; i < 5; ++i) h.add(3.5);
  for (int i = 0; i < 2; ++i) h.add(6.5);
  EXPECT_EQ(h.peak_bin(0, 7), 3);
  EXPECT_EQ(h.peak_bin(5, 7), 6);
}

TEST(Histogram, ExtremeAndNanValuesClampIntoEdgeBins) {
  // Values far outside the range (where the naive double->int cast would
  // be UB) and NaN must land in the edge bins, not corrupt memory.
  Histogram h(8, 0.0, 1.0);
  EXPECT_EQ(h.bin_of(1e300), 7);
  EXPECT_EQ(h.bin_of(-1e300), 0);
  EXPECT_EQ(h.bin_of(std::numeric_limits<double>::infinity()), 7);
  EXPECT_EQ(h.bin_of(-std::numeric_limits<double>::infinity()), 0);
  EXPECT_EQ(h.bin_of(std::numeric_limits<double>::quiet_NaN()), 0);
  h.add(1e300);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 2u);

  CumulativeHistogram c(Histogram::of(
      VolumeF(Dims{4, 4, 4}, 0.5f), 8, 0.0, 1.0));
  EXPECT_DOUBLE_EQ(c.fraction_at(1e300), 1.0);
  EXPECT_DOUBLE_EQ(c.fraction_at(-1e300), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_at(std::numeric_limits<double>::quiet_NaN()),
                   0.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0, 0.0, 1.0), Error);
  EXPECT_THROW(Histogram(8, 1.0, 1.0), Error);
}

#if defined(IFET_CHECKED_ITERATORS) && IFET_CHECKED_ITERATORS
TEST(Histogram, BinIndexingThrowsWhenCheckedIteratorsOn) {
  Histogram h(8, 0.0, 1.0);
  EXPECT_THROW(h.count(-1), Error);
  EXPECT_THROW(h.count(8), Error);
  EXPECT_THROW(h.bin_center(-1), Error);
  EXPECT_THROW(h.bin_center(8), Error);
  EXPECT_NO_THROW(h.count(0));
  EXPECT_NO_THROW(h.bin_center(7));
}
#endif

TEST(CumulativeHistogram, MonotoneNonDecreasingToOne) {
  VolumeF v = random_volume(Dims{16, 16, 16}, 31, 0.0, 2.0);
  CumulativeHistogram ch = CumulativeHistogram::of(v, 64, 0.0, 2.0);
  double prev = 0.0;
  for (int b = 0; b < 64; ++b) {
    double value = 0.0 + (b + 0.5) * (2.0 / 64);
    double f = ch.fraction_at(value);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(CumulativeHistogram, FractionOutsideRange) {
  VolumeF v = random_volume(Dims{8, 8, 8}, 2, 0.0, 1.0);
  CumulativeHistogram ch = CumulativeHistogram::of(v, 32, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(ch.fraction_at(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(ch.fraction_at(5.0), 1.0);
}

TEST(CumulativeHistogram, MedianOfUniformNearHalf) {
  VolumeF v = random_volume(Dims{24, 24, 24}, 8, 0.0, 1.0);
  CumulativeHistogram ch = CumulativeHistogram::of(v, 256, 0.0, 1.0);
  EXPECT_NEAR(ch.fraction_at(0.5), 0.5, 0.03);
}

TEST(CumulativeHistogram, InverseLookupRoundTrips) {
  VolumeF v = random_volume(Dims{16, 16, 16}, 77, 0.0, 1.0);
  CumulativeHistogram ch = CumulativeHistogram::of(v, 128, 0.0, 1.0);
  for (double f : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    double value = ch.value_at_fraction(f);
    // fraction_at(value) is the smallest achievable fraction >= f.
    EXPECT_GE(ch.fraction_at(value) + 1e-12, f);
    // One bin earlier must be below f.
    EXPECT_LT(ch.fraction_at(value - 2.0 / 128), f + 0.05);
  }
}

// THE property the IATF rests on (paper Sec 4.2.1, Fig 2): a global
// monotonic drift of all values moves a feature's raw value but leaves its
// cumulative-histogram coordinate unchanged.
class CumHistDriftTest : public ::testing::TestWithParam<double> {};

TEST_P(CumHistDriftTest, GlobalShiftPreservesCumulativeCoordinate) {
  const double offset = GetParam();
  VolumeF v = random_volume(Dims{16, 16, 16}, 5, 0.0, 1.0);
  const double probe = 0.7;  // a "feature" value in the original field

  CumulativeHistogram before = CumulativeHistogram::of(v, 512, 0.0, 3.0);
  VolumeF shifted(v.dims());
  for (std::size_t i = 0; i < v.size(); ++i) {
    shifted[i] = static_cast<float>(v[i] + offset);
  }
  CumulativeHistogram after = CumulativeHistogram::of(shifted, 512, 0.0, 3.0);

  EXPECT_NEAR(after.fraction_at(probe + offset), before.fraction_at(probe),
              0.02)
      << "offset " << offset;
}

INSTANTIATE_TEST_SUITE_P(Offsets, CumHistDriftTest,
                         ::testing::Values(0.0, 0.1, 0.37, 0.8, 1.5));

// Same invariance under monotone gain.
class CumHistGainTest : public ::testing::TestWithParam<double> {};

TEST_P(CumHistGainTest, GlobalGainPreservesCumulativeCoordinate) {
  const double gain = GetParam();
  VolumeF v = random_volume(Dims{16, 16, 16}, 6, 0.0, 1.0);
  const double probe = 0.6;
  CumulativeHistogram before = CumulativeHistogram::of(v, 512, 0.0, 3.0);
  VolumeF scaled(v.dims());
  for (std::size_t i = 0; i < v.size(); ++i) {
    scaled[i] = static_cast<float>(v[i] * gain);
  }
  CumulativeHistogram after = CumulativeHistogram::of(scaled, 512, 0.0, 3.0);
  EXPECT_NEAR(after.fraction_at(probe * gain), before.fraction_at(probe),
              0.02);
}

INSTANTIATE_TEST_SUITE_P(Gains, CumHistGainTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.7, 2.4));

// The counterpart limitation the paper also names: when a feature keeps its
// value but *grows*, the cumulative coordinate of values above it shifts —
// which is why the raw value must stay in the input vector too.
TEST(CumulativeHistogram, FeatureSizeChangeShiftsCumulativeCoordinate) {
  Dims d{16, 16, 16};
  VolumeF small_feature(d, 0.2f);
  VolumeF big_feature(d, 0.2f);
  // Feature value 0.8; occupies 2^3 voxels vs 8^3 voxels.
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 8; ++j) {
      for (int i = 0; i < 8; ++i) {
        if (i < 2 && j < 2 && k < 2) small_feature.at(i, j, k) = 0.8f;
        big_feature.at(i, j, k) = 0.8f;
      }
    }
  }
  auto before = CumulativeHistogram::of(small_feature, 256, 0.0, 1.0);
  auto after = CumulativeHistogram::of(big_feature, 256, 0.0, 1.0);
  // The probe just below the feature value: its cumulative coordinate drops
  // as the feature displaces background voxels.
  EXPECT_GT(std::fabs(after.fraction_at(0.79) - before.fraction_at(0.79)),
            0.05);
}

}  // namespace
}  // namespace ifet
