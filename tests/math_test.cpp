#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "math/mat4.hpp"
#include "math/stats.hpp"
#include "math/vec.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

TEST(Vec3, Arithmetic) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5);
  EXPECT_DOUBLE_EQ(s.y, 7);
  EXPECT_DOUBLE_EQ(s.z, 9);
  Vec3 d = b - a;
  EXPECT_DOUBLE_EQ(d.x, 3);
  Vec3 m = a * 2.0;
  EXPECT_DOUBLE_EQ(m.z, 6);
  EXPECT_DOUBLE_EQ((2.0 * a).z, 6);
}

TEST(Vec3, DotAndCross) {
  Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  Vec3 c = x.cross(y);
  EXPECT_DOUBLE_EQ(c.x, z.x);
  EXPECT_DOUBLE_EQ(c.y, z.y);
  EXPECT_DOUBLE_EQ(c.z, z.z);
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}.norm()), 5.0);
}

TEST(Vec3, NormalizedHandlesZero) {
  Vec3 zero{0, 0, 0};
  Vec3 n = zero.normalized();
  EXPECT_DOUBLE_EQ(n.norm(), 0.0);
  Vec3 v = Vec3{2, 0, 0}.normalized();
  EXPECT_DOUBLE_EQ(v.x, 1.0);
}

TEST(ScalarHelpers, ClampLerpSmoothstep) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(smoothstep(0.0, 1.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(smoothstep(0.0, 1.0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(smoothstep(0.0, 1.0, 0.5), 0.5);
}

TEST(Mat4, IdentityTransforms) {
  Mat4 id = Mat4::identity();
  Vec3 p{1, 2, 3};
  Vec3 q = id.transform_point(p);
  EXPECT_DOUBLE_EQ(q.x, 1);
  EXPECT_DOUBLE_EQ(q.y, 2);
  EXPECT_DOUBLE_EQ(q.z, 3);
}

TEST(Mat4, TranslationAffectsPointsNotVectors) {
  Mat4 t = Mat4::translation({1, 2, 3});
  Vec3 p = t.transform_point({0, 0, 0});
  EXPECT_DOUBLE_EQ(p.x, 1);
  Vec3 v = t.transform_vector({1, 0, 0});
  EXPECT_DOUBLE_EQ(v.x, 1);
  EXPECT_DOUBLE_EQ(v.y, 0);
}

TEST(Mat4, RotationZQuarterTurn) {
  Mat4 r = Mat4::rotation_z(std::numbers::pi / 2);
  Vec3 p = r.transform_point({1, 0, 0});
  EXPECT_NEAR(p.x, 0.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(Mat4, InverseRoundTrips) {
  Mat4 m = Mat4::translation({1, -2, 0.5}) * Mat4::rotation_x(0.7) *
           Mat4::rotation_y(-0.3) * Mat4::scaling({2, 3, 0.5});
  Mat4 inv = m.inverse();
  Vec3 p{0.3, -1.2, 2.5};
  Vec3 round = inv.transform_point(m.transform_point(p));
  EXPECT_NEAR(round.x, p.x, 1e-9);
  EXPECT_NEAR(round.y, p.y, 1e-9);
  EXPECT_NEAR(round.z, p.z, 1e-9);
}

TEST(Mat4, InverseThrowsOnSingular) {
  Mat4 zero;
  EXPECT_THROW(zero.inverse(), Error);
}

TEST(Mat4, LookAtPlacesEye) {
  Mat4 cam = Mat4::look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  Vec3 eye = cam.transform_point({0, 0, 0});
  EXPECT_NEAR(eye.z, 5.0, 1e-12);
  // Camera -z axis should point towards the target.
  Vec3 view_dir = cam.transform_vector({0, 0, -1});
  EXPECT_NEAR(view_dir.z, -1.0, 1e-12);
}

TEST(Vec4, ConstructionAndOps) {
  Vec4 a{1, 2, 3, 4};
  Vec4 b(Vec3{5, 6, 7}, 8);
  Vec4 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 6);
  EXPECT_DOUBLE_EQ(sum.w, 12);
  Vec4 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.z, 6);
  Vec3 xyz = b.xyz();
  EXPECT_DOUBLE_EQ(xyz.y, 6);
}

TEST(Mat4, ScalingScalesAxes) {
  Mat4 s = Mat4::scaling({2, 3, 4});
  Vec3 p = s.transform_point({1, 1, 1});
  EXPECT_DOUBLE_EQ(p.x, 2);
  EXPECT_DOUBLE_EQ(p.y, 3);
  EXPECT_DOUBLE_EQ(p.z, 4);
}

TEST(Mat4, RotationXAndYQuarterTurns) {
  Vec3 y = Mat4::rotation_x(std::numbers::pi / 2).transform_point({0, 1, 0});
  EXPECT_NEAR(y.z, 1.0, 1e-12);
  EXPECT_NEAR(y.y, 0.0, 1e-12);
  Vec3 z = Mat4::rotation_y(std::numbers::pi / 2).transform_point({0, 0, 1});
  EXPECT_NEAR(z.x, 1.0, 1e-12);
  EXPECT_NEAR(z.z, 0.0, 1e-12);
}

TEST(Mat4, CompositionOrder) {
  // translation * rotation applies rotation first.
  Mat4 m = Mat4::translation({10, 0, 0}) *
           Mat4::rotation_z(std::numbers::pi / 2);
  Vec3 p = m.transform_point({1, 0, 0});
  EXPECT_NEAR(p.x, 10.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> a{1, 2, 3, 4, 5};
  std::vector<double> b{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  std::vector<double> c{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Pearson, DegenerateInputsGiveZero) {
  std::vector<double> a{1, 1, 1};
  std::vector<double> b{2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
  std::vector<double> single{1.0};
  std::vector<double> single2{2.0};
  EXPECT_DOUBLE_EQ(pearson(single, single2), 0.0);
}

TEST(Pearson, SizeMismatchThrows) {
  std::vector<double> a{1, 2};
  std::vector<double> b{1, 2, 3};
  EXPECT_THROW(pearson(a, b), Error);
}

TEST(MeanOf, HandlesEmpty) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
}

}  // namespace
}  // namespace ifet
