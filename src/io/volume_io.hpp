// Volume file I/O.
//
// Two formats:
//  * raw  — headerless float32 stream in x-fastest order (the convention of
//           the public flow data sets the paper uses; caller supplies dims).
//  * .vol — the raw payload preceded by a one-line ASCII header
//           "ifet-vol <dx> <dy> <dz>\n" so files are self-describing.
// Byte order is host order (the library targets a single machine, like the
// paper's workstation pipeline).
#pragma once

#include <string>

#include "volume/volume.hpp"

namespace ifet {

/// Write headerless float32 data.
void write_raw(const VolumeF& volume, const std::string& path);

/// Read headerless float32 data of known dimensions.
VolumeF read_raw(const std::string& path, Dims dims);

/// Write self-describing .vol file.
void write_vol(const VolumeF& volume, const std::string& path);

/// Read self-describing .vol file.
VolumeF read_vol(const std::string& path);

}  // namespace ifet
