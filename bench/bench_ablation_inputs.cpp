// Ablation: why the IATF input vector needs BOTH the raw value and the
// cumulative histogram (plus time). Paper Sec 4.2.1:
//  * value-only TFs fail under global value drift (the Fig 3/4 regime);
//  * cumulative-histogram-only TFs fail for "features that have constant
//    value, but vary in size. Such features could dramatically shift with
//    respect to the cumulative histogram".
//
// Regime A: a feature band drifting *nonlinearly* in time, plus a confuser
// structure in a higher band. Time-based interpolation of the band (what a
// value+time network can do) lands on the confuser at intermediate steps;
// only the cumulative-histogram coordinate tracks the feature exactly
// (global monotone drift).
// Regime B: a feature at a constant value band whose size grows 64x,
// shifting the cumulative histogram around it (nonlinearly in time, since
// volume grows with the cube of the edge) while the raw value stays put.
//
// Each regime trains IATF variants from the same two key frames — full
// inputs, no-cumulative-histogram, no-value — and scores extraction F1 at
// an unseen intermediate step.
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/iatf.hpp"
#include "core/keyframe_advisor.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

using namespace ifet;

constexpr int kSteps = 21;
constexpr Dims kDims{32, 32, 32};

/// Deterministic per-voxel jitter in [0, 1): gives features a value
/// *spread*, so the cumulative histogram is strictly increasing through
/// their band (as in real data) instead of a step function.
double voxel_jitter(int i, int j, int k) {
  std::uint32_t h = static_cast<std::uint32_t>(i * 73856093 ^ j * 19349663 ^
                                               k * 83492791);
  h ^= h >> 13;
  h *= 0x85ebca6bu;
  h ^= h >> 16;
  return static_cast<double>(h) / 4294967296.0;
}

bool in_cube(int i, int j, int k, int lo, int hi) {
  return i >= lo && i < hi && j >= lo && j < hi && k >= lo && k < hi;
}

// --- Regime A: nonlinear global drift -------------------------------------

double drift_offset(int step) {
  double u = static_cast<double>(step) / (kSteps - 1);
  return 0.4 * u * u * u;  // monotone, strongly nonlinear in t
}

std::shared_ptr<CallbackSource> regime_a_source() {
  return std::make_shared<CallbackSource>(
      kDims, kSteps, std::pair<double, double>{0.0, 1.6}, [](int step) {
        VolumeF v(kDims);
        const double off = drift_offset(step);
        for (int k = 0; k < kDims.z; ++k) {
          for (int j = 0; j < kDims.y; ++j) {
            for (int i = 0; i < kDims.x; ++i) {
              double base;
              if (in_cube(i, j, k, 2, 18)) {
                // Feature: ~12.5% of the volume, so its cumulative-
                // histogram interval is wide enough (~0.13) for the
                // network to key on it.
                base = 0.38 + 0.08 * voxel_jitter(i, j, k);
              } else if (in_cube(i, j, k, 19, 31)) {
                base = 0.60 + 0.08 * voxel_jitter(i, j, k);  // confuser
              } else {
                base = 0.30 * (i + j + k) / (3.0 * (kDims.x - 1));
              }
              v.at(i, j, k) = static_cast<float>(base + off);
            }
          }
        }
        return v;
      });
}

Mask regime_a_truth() {
  Mask m(kDims);
  for (int k = 2; k < 18; ++k) {
    for (int j = 2; j < 18; ++j) {
      for (int i = 2; i < 18; ++i) m.at(i, j, k) = 1;
    }
  }
  return m;
}

TransferFunction1D regime_a_key_tf(int step) {
  TransferFunction1D tf(0.0, 1.6);
  const double off = drift_offset(step);
  tf.add_band(0.37 + off, 0.47 + off, 1.0, 0.015);
  return tf;
}

// --- Regime B: constant value, growing size --------------------------------

int regime_b_edge(int step) { return 4 + (12 * step) / (kSteps - 1); }

std::shared_ptr<CallbackSource> regime_b_source() {
  return std::make_shared<CallbackSource>(
      kDims, kSteps, std::pair<double, double>{0.0, 1.0}, [](int step) {
        VolumeF v(kDims);
        const int edge = regime_b_edge(step);
        const int lo = (kDims.x - edge) / 2;
        for (int k = 0; k < kDims.z; ++k) {
          for (int j = 0; j < kDims.y; ++j) {
            for (int i = 0; i < kDims.x; ++i) {
              double value;
              if (i >= lo && i < lo + edge && j >= lo && j < lo + edge &&
                  k >= lo && k < lo + edge) {
                value = 0.70 + 0.08 * voxel_jitter(i, j, k);
              } else {
                value = 0.55 * (i + j + k) / (3.0 * (kDims.x - 1));
              }
              v.at(i, j, k) = static_cast<float>(value);
            }
          }
        }
        return v;
      });
}

Mask regime_b_truth(int step) {
  Mask m(kDims);
  const int edge = regime_b_edge(step);
  const int lo = (kDims.x - edge) / 2;
  for (int k = lo; k < lo + edge; ++k) {
    for (int j = lo; j < lo + edge; ++j) {
      for (int i = lo; i < lo + edge; ++i) m.at(i, j, k) = 1;
    }
  }
  return m;
}

TransferFunction1D regime_b_key_tf(int) {
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.69, 0.81, 1.0, 0.015);
  return tf;
}

// --- Harness ----------------------------------------------------------------

struct Variant {
  const char* name;
  IatfConfig config;
};

std::vector<Variant> variants() {
  IatfConfig full;
  full.hidden_units = 12;
  IatfConfig no_cumhist = full;
  no_cumhist.use_cumulative_histogram = false;
  IatfConfig no_value = full;
  no_value.use_value = false;
  return {{"value+cumhist+time", full},
          {"no-cumhist", no_cumhist},
          {"no-value", no_value}};
}

double run_variant(const VolumeSequence& seq, const IatfConfig& config,
                   const TransferFunction1D& key0,
                   const TransferFunction1D& key1, const Mask& truth,
                   int eval_step) {
  Iatf iatf(seq, config);
  iatf.add_key_frame(0, key0);
  iatf.add_key_frame(kSteps - 1, key1);
  iatf.train(3000);
  if (std::getenv("IFET_DEBUG") != nullptr) {
    auto bands = iatf.evaluate(eval_step).opaque_intervals(0.25);
    std::cout << "    [debug] mse=" << iatf.last_mse() << " bands@mid:";
    for (auto [lo, hi] : bands) std::cout << " [" << lo << "," << hi << "]";
    std::cout << "\n";
  }
  return score_mask(
             bench::tf_extract(seq.step(eval_step), iatf.evaluate(eval_step)),
             truth)
      .f1();
}

}  // namespace

int main() {
  using namespace ifet;
  std::cout << "=== Ablation: IATF input vector (Sec 4.2.1) ===\n"
            << "regime A = nonlinear global drift; regime B = constant "
               "value, growing size; F1 at the unseen middle step\n\n";
  const int eval_step = kSteps / 2;

  Table table({"inputs", "regimeA_drift_f1", "regimeB_size_f1"});
  CsvWriter csv(bench::output_dir() + "/ablation_inputs.csv",
                {"inputs", "regimeA", "regimeB"});

  CachedSequence seq_a(regime_a_source(), 6, 512);
  CachedSequence seq_b(regime_b_source(), 6, 512);
  Mask truth_a = regime_a_truth();
  Mask truth_b = regime_b_truth(eval_step);

  std::vector<double> a_scores, b_scores;
  for (const Variant& v : variants()) {
    double fa = run_variant(seq_a, v.config, regime_a_key_tf(0),
                            regime_a_key_tf(kSteps - 1), truth_a, eval_step);
    double fb = run_variant(seq_b, v.config, regime_b_key_tf(0),
                            regime_b_key_tf(kSteps - 1), truth_b, eval_step);
    a_scores.push_back(fa);
    b_scores.push_back(fb);
    table.add_row({v.name, Table::num(fa), Table::num(fb)});
    csv.row(v.name, fa, fb);
  }
  // The remedy the paper's workflow implies, automated: iterate the
  // key-frame advisor — each round adds a key frame at the step whose
  // value distribution is farthest from every existing key — until the
  // sequence is covered, then check the IATF at every *non-key* step
  // (the user-relevant guarantee: it works everywhere, not just at keys).
  {
    std::vector<int> keys{0, kSteps - 1};
    for (int round = 0; round < 5; ++round) {
      KeyFrameSuggestion advice =
          suggest_key_frame(seq_a, keys, 0, kSteps - 1, 1, 0.04, 0.15);
      if (advice.step < 0) break;
      keys.push_back(advice.step);
    }
    IatfConfig full;
    full.hidden_units = 12;
    Iatf advised(seq_a, full);
    for (int key : keys) advised.add_key_frame(key, regime_a_key_tf(key));
    advised.train(3000);
    double worst = 1.0;
    for (int step = 0; step < kSteps; ++step) {
      if (std::find(keys.begin(), keys.end(), step) != keys.end()) continue;
      double f1 = score_mask(bench::tf_extract(seq_a.step(step),
                                               advised.evaluate(step)),
                             truth_a)
                      .f1();
      if (std::getenv("IFET_DEBUG") != nullptr) {
        std::cout << "    [debug] advised step " << step << " f1=" << f1
                  << "\n";
      }
      worst = std::min(worst, f1);
    }
    if (std::getenv("IFET_DEBUG") != nullptr) {
      std::cout << "    [debug] keys:";
      for (int key : keys) std::cout << ' ' << key;
      std::cout << " mse=" << advised.last_mse() << "\n";
    }
    a_scores.push_back(worst);
    std::string label =
        "full + " + std::to_string(keys.size() - 2) + " advised keys";
    table.add_row({label, Table::num(worst), "-"});
    csv.row(label, worst, -1.0);
  }

  table.print(std::cout);
  std::cout
      << "\nNote: with key frames only at the two sequence ends, the "
         "full-input network can fit them through the (value, time) pair "
         "alone — that shortcut interpolates the band linearly in time and "
         "misses a *nonlinear* drift at unseen steps, just like the "
         "no-cumhist variant. The cumulative-histogram pathway (no-value "
         "row) is what tracks the drift exactly; in the paper's workflow "
         "the user notices a failing step and adds a key frame there.\n\n";

  bench::ShapeCheck check;
  check.expect(a_scores[2] > 0.8,
               "cumulative-histogram-keyed inputs follow the nonlinear "
               "drift exactly (Sec 4.2.1 claim 1)");
  check.expect(a_scores[1] < 0.3,
               "value-keyed inputs cannot follow the drift (claim 1)");
  check.expect(b_scores[0] > 0.8 && b_scores[1] > 0.8,
               "value-keyed inputs handle constant-value size change "
               "(claim 2)");
  check.expect(b_scores[2] < b_scores[0] - 0.1,
               "cumhist-keyed inputs degrade under size change (claim 2)");
  check.expect(a_scores[3] > 0.6,
               "advisor-placed key frames recover the full configuration "
               "at every step under nonlinear drift");
  return check.exit_code();
}
