#include "eval/validation.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ifet {

TrackValidation validate_track(const TrackResult& track,
                               double max_count_jump,
                               double min_overlap_ratio) {
  IFET_REQUIRE(max_count_jump >= 0.0 && min_overlap_ratio >= 0.0 &&
                   min_overlap_ratio <= 1.0,
               "validate_track: bad thresholds");
  TrackValidation report;
  if (track.masks.empty()) return report;

  const int first = track.first_step();
  const int last = track.last_step();
  for (int step = first; step <= last; ++step) {
    if (!track.reached(step)) report.gap_steps.push_back(step);
  }

  const Mask* prev = nullptr;
  std::size_t prev_count = 0;
  for (const auto& [step, mask] : track.masks) {
    TrackStepReport entry;
    entry.step = step;
    entry.voxels = mask_count(mask);
    if (prev != nullptr) {
      entry.count_jump =
          std::fabs(static_cast<double>(entry.voxels) -
                    static_cast<double>(prev_count)) /
          std::max<std::size_t>(prev_count, 1);
      std::size_t overlap = mask_count(mask_and(*prev, mask));
      std::size_t smaller = std::min(prev_count, entry.voxels);
      entry.overlap_ratio =
          smaller > 0 ? static_cast<double>(overlap) / smaller : 0.0;
      if (entry.count_jump > max_count_jump ||
          entry.overlap_ratio < min_overlap_ratio) {
        report.suspicious_steps.push_back(step);
      }
    }
    report.steps.push_back(entry);
    prev = &mask;
    prev_count = entry.voxels;
  }
  return report;
}

ExtractionValidation validate_extraction(const VolumeF& certainty,
                                         double cut, double band) {
  IFET_REQUIRE(!certainty.empty(), "validate_extraction: empty volume");
  IFET_REQUIRE(band >= 0.0, "validate_extraction: negative band");
  ExtractionValidation report;
  double inside_sum = 0.0, outside_sum = 0.0;
  std::size_t inside = 0, outside = 0, boundary = 0;
  for (float v : certainty.data()) {
    if (v >= cut) {
      inside_sum += v;
      ++inside;
    } else {
      outside_sum += v;
      ++outside;
    }
    if (std::fabs(static_cast<double>(v) - cut) <= band) ++boundary;
  }
  report.mean_certainty_inside =
      inside > 0 ? inside_sum / static_cast<double>(inside) : 0.0;
  report.mean_certainty_outside =
      outside > 0 ? outside_sum / static_cast<double>(outside) : 0.0;
  report.boundary_fraction =
      static_cast<double>(boundary) / static_cast<double>(certainty.size());
  return report;
}

}  // namespace ifet
