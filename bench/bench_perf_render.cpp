// Section 7 performance reproduction: rendering rates.
//
// Paper (GeForce 6800 GT): 6 fps for a 256^3 volume into a 512^2 window
// with the adaptive transfer function recalculated every frame and shading
// on; 4 fps when the tracked feature is rendered on top (multi-pass).
//
// Our renderer is a CPU ray caster, so absolute fps differ; what must
// reproduce is the *structure* of the costs: per-frame IATF recalculation
// is negligible next to the rendering itself, and the highlight overlay
// costs a modest constant factor (paper: 6 -> 4 fps, i.e. 1.5x).
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <memory>
#include <string_view>
#include <vector>

#include "core/iatf.hpp"
#include "flowsim/datasets.hpp"
#include "render/raycaster.hpp"
#include "util/alloc_guard.hpp"
#include "volume/ops.hpp"

// Counting operator new/delete for this binary so the steady-state check
// below can assert zero allocations in the ray loop (docs/STATIC_ANALYSIS.md).
IFET_ALLOC_GUARD_INSTALL();

namespace {

using namespace ifet;

struct RenderFixture {
  RenderFixture() {
    ArgonBubbleConfig cfg;
    cfg.dims = Dims{64, 64, 64};
    cfg.num_steps = 360;
    source = std::make_shared<ArgonBubbleSource>(cfg);
    sequence = std::make_unique<CachedSequence>(source, 4, 256);
    volume = source->generate(225);

    auto [vlo, vhi] = sequence->value_range();
    TransferFunction1D key(vlo, vhi);
    double c = source->ring_band_center(195);
    double h = source->ring_band_half_width();
    key.add_band(c - h, c + h, 1.0, 0.5 * h);
    iatf = std::make_unique<Iatf>(*sequence);
    iatf->add_key_frame(195, key);
    TransferFunction1D key2(vlo, vhi);
    c = source->ring_band_center(255);
    key2.add_band(c - h, c + h, 1.0, 0.5 * h);
    iatf->add_key_frame(255, key2);
    iatf->train(300);

    tf = std::make_unique<TransferFunction1D>(iatf->evaluate(225));
    mask = std::make_unique<Mask>(threshold_mask(volume, (float)(c - h),
                                                 (float)(c + h)));
  }

  std::shared_ptr<ArgonBubbleSource> source;
  std::unique_ptr<VolumeSequence> sequence;
  VolumeF volume;
  std::unique_ptr<Iatf> iatf;
  std::unique_ptr<TransferFunction1D> tf;
  std::unique_ptr<Mask> mask;
};

RenderFixture& fixture() {
  static RenderFixture f;
  return f;
}

RenderSettings settings_for(int image_size, bool shading) {
  RenderSettings s;
  s.width = image_size;
  s.height = image_size;
  s.shading = shading;
  return s;
}

/// Paper Sec 7 paragraph 2: shaded rendering, IATF recalculated per frame.
void BM_RenderShadedWithIatfRecalc(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int size = static_cast<int>(state.range(0));
  Raycaster caster(settings_for(size, true));
  Camera camera(0.5, 0.35, 2.4);
  for (auto _ : state) {
    TransferFunction1D frame_tf = f.iatf->evaluate(225);  // per frame!
    ImageRgb8 img =
        caster.render(f.volume, frame_tf, ColorMap(), camera);
    benchmark::DoNotOptimize(img.pixels.data());
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RenderShadedWithIatfRecalc)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// The same frame without the per-frame IATF evaluation: the difference is
/// the cost of the paper's "adaptive transfer function recalculated every
/// frame" — which must be negligible.
void BM_RenderShadedStaticTf(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int size = static_cast<int>(state.range(0));
  Raycaster caster(settings_for(size, true));
  Camera camera(0.5, 0.35, 2.4);
  for (auto _ : state) {
    ImageRgb8 img = caster.render(f.volume, *f.tf, ColorMap(), camera);
    benchmark::DoNotOptimize(img.pixels.data());
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RenderShadedStaticTf)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Paper Sec 7 paragraph 3: the feature-tracking overlay pass (region-
/// growing texture consulted per sample, tracked voxels drawn red).
void BM_RenderWithTrackingOverlay(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int size = static_cast<int>(state.range(0));
  Raycaster caster(settings_for(size, true));
  Camera camera(0.5, 0.35, 2.4);
  HighlightLayer layer{f.mask.get(), f.tf.get(), Rgb{0.9, 0.05, 0.05}};
  for (auto _ : state) {
    ImageRgb8 img =
        caster.render(f.volume, *f.tf, ColorMap(), camera, &layer);
    benchmark::DoNotOptimize(img.pixels.data());
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RenderWithTrackingOverlay)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// IATF evaluation alone (the "sub-seconds per step" claim of Sec 5):
/// synthesizing the 256-entry TF for a step whose cumulative histogram is
/// resident. Cycles over a working set that fits the sequence cache so the
/// measurement isolates network evaluation, not volume regeneration.
void BM_IatfEvaluatePerStep(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int steps[] = {195, 225, 255};
  // Warm the cumulative-histogram cache.
  for (int s : steps) f.iatf->evaluate(s);
  int i = 0;
  for (auto _ : state) {
    TransferFunction1D tf = f.iatf->evaluate(steps[i]);
    benchmark::DoNotOptimize(tf.opacity_entry(0));
    i = (i + 1) % 3;
  }
}
BENCHMARK(BM_IatfEvaluatePerStep)->Unit(benchmark::kMicrosecond);

/// Unshaded rendering, for the shading-cost factor.
void BM_RenderUnshaded(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int size = static_cast<int>(state.range(0));
  Raycaster caster(settings_for(size, false));
  Camera camera(0.5, 0.35, 2.4);
  for (auto _ : state) {
    ImageRgb8 img = caster.render(f.volume, *f.tf, ColorMap(), camera);
    benchmark::DoNotOptimize(img.pixels.data());
  }
}
BENCHMARK(BM_RenderUnshaded)->Arg(128)->Unit(benchmark::kMillisecond);

/// Steady-state contract on the IFET_HOT ray loop: once a frame's Plan and
/// destination image exist, Raycaster::render_rows must march every row
/// with zero heap allocations (render() itself allocates the image and the
/// pool's task plumbing, so the check drives the row kernel directly), and
/// the row-kernel image must be bitwise identical to the render() output.
int check_render_rows_contract() {
  RenderFixture& f = fixture();
  Camera camera(0.5, 0.35, 2.4);
  ColorMap colors;
  HighlightLayer layer{f.mask.get(), f.tf.get(), Rgb{0.9, 0.05, 0.05}};

  RenderSettings shaded = settings_for(96, true);
  RenderSettings mip = settings_for(96, false);
  mip.mode = CompositingMode::kMaximumIntensity;
  struct Variant {
    const char* name;
    const RenderSettings* settings;
    const HighlightLayer* highlight;
  };
  const Variant variants[] = {
      {"front-to-back shaded", &shaded, nullptr},
      {"tracking overlay", &shaded, &layer},
      {"maximum intensity", &mip, nullptr},
  };

  for (const Variant& v : variants) {
    Raycaster caster(*v.settings);
    const ImageRgb8 pooled =
        caster.render(f.volume, *f.tf, colors, camera, v.highlight);
    const Raycaster::Plan plan =
        caster.prepare_plan(f.volume, *f.tf, colors, camera, v.highlight);
    ImageRgb8 direct(v.settings->width, v.settings->height);
    Raycaster::RenderRowCounters warm;
    caster.render_rows(plan, 0, v.settings->height, direct, warm);
    if (pooled.pixels.size() != direct.pixels.size() ||
        std::memcmp(pooled.pixels.data(), direct.pixels.data(),
                    pooled.pixels.size()) != 0) {
      std::cerr << "bench_perf_render: render_rows image for '" << v.name
                << "' is NOT bitwise identical to render()\n";
      return 1;
    }
    if (warm.samples == 0) {
      std::cerr << "bench_perf_render: '" << v.name
                << "' marched no samples; the check is vacuous\n";
      return 1;
    }
    DenyAllocScope guard;
    Raycaster::RenderRowCounters steady;
    caster.render_rows(plan, 0, v.settings->height, direct, steady);
    if (guard.allocations() != 0) {
      std::cerr << "bench_perf_render: warm render_rows for '" << v.name
                << "' performed " << guard.allocations()
                << " heap allocations (expected 0)\n";
      return 1;
    }
  }
  std::cout << "alloc check: warm Raycaster::render_rows made 0 heap "
               "allocations across 3 variants, bitwise equal to render()\n";
  return 0;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): after the google-benchmark run
// (skippable with --render-check-only) the binary always verifies the
// row-kernel allocation contract, so CI gates on the hot ray loop staying
// heap-free and bitwise faithful to the pooled render() path.
int main(int argc, char** argv) {
  bool check_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--render-check-only") {
      check_only = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!check_only) {
    int filtered = static_cast<int>(args.size());
    benchmark::Initialize(&filtered, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered, args.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return check_render_rows_contract();
}
