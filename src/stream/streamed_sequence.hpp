// Out-of-core VolumeSequence: the drop-in streamed counterpart of
// CachedSequence.
//
// Every consumer of VolumeSequence (IATF synthesis, dataspace
// classification, 4D region growing, rendering, the painting session)
// works unchanged on a StreamedSequence; what changes is the residency
// contract: decoded steps live in a byte-budgeted CacheManager, lookahead
// decodes overlap compute via the Prefetcher, and derived products
// (histograms, cumulative histograms) are memoized in a DerivedCache so an
// evicted volume never has to come back just to answer a histogram query.
//
// Reference validity: step(t) auto-pins a window of `pin_radius` steps
// around t (recentring only when t falls outside the current window, so
// the {t-1, t, t+1} access pattern of 4D region growing never thrashes).
// References returned for steps inside the window stay valid until the
// window moves away from them; hint_window() sets the window explicitly.
// Cumulative-histogram references are memoized and stay valid for the
// sequence's lifetime.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "stream/derived_cache.hpp"
#include "stream/volume_store.hpp"
#include "util/ordered_mutex.hpp"
#include "volume/sequence.hpp"

namespace ifet {

struct StreamConfig {
  /// Byte budget for decoded steps; 0 = unlimited (fully resident — the
  /// trivial cache the in-memory path reduces to).
  std::size_t budget_bytes = 0;
  /// Steps prefetched ahead of each access in the scan direction.
  int lookahead = 2;
  /// Auto-pinned window half-width around the last accessed step; 1 keeps
  /// {t-1, t, t+1} resident for 4D region growing.
  int pin_radius = 1;
  /// Overlap prefetch decode with compute on the shared thread pool; off =
  /// synchronous lookahead (deterministic, for tests).
  bool async_prefetch = true;
  int histogram_bins = 256;
  /// Retry/quarantine policy, forwarded to the VolumeStore (see
  /// docs/ROBUSTNESS.md).
  int max_retries = 2;
  double retry_backoff_ms = 0.0;
  FailPolicy fail_policy = FailPolicy::kThrow;
};

class StreamedSequence final : public VolumeSequence {
 public:
  StreamedSequence(std::shared_ptr<const VolumeSource> source,
                   const StreamConfig& config = {});

  /// Stream a compressed .cvol sequence from disk.
  static std::unique_ptr<StreamedSequence> open_cvol(
      const std::string& path, const StreamConfig& config = {});

  Dims dims() const override { return store_->dims(); }
  int num_steps() const override { return store_->num_steps(); }
  std::pair<double, double> value_range() const override {
    return store_->value_range();
  }
  int histogram_bins() const override { return config_.histogram_bins; }

  const VolumeF& step(int step) const override IFET_EXCLUDES(mutex_);
  /// Under FailPolicy::kSkipStep a quarantined step yields nullptr here
  /// (and step() throws the CorruptDataError): tracking needs the exact
  /// voxels or nothing, so it bridges the gap instead of reading a
  /// substitute.
  const VolumeF* try_step(int step) const override IFET_EXCLUDES(mutex_);
  const CumulativeHistogram& cumulative_histogram(int step) const override;
  Histogram histogram(int step) const override;

  /// Source loads so far (demand + prefetch).
  std::size_t generation_count() const override {
    return store_->load_count();
  }

  /// Brick metadata via the store: ingest-time container section when
  /// present (no payload decode), else built from the decoded step;
  /// memoized in the store.
  std::shared_ptr<const BrickIndex> brick_index(int step) const override {
    return store_->brick_index(step);
  }

  void hint_window(int lo, int hi) const override IFET_EXCLUDES(mutex_);
  void prefetch_hint(int step) const override { store_->prefetch(step); }

  /// Combined counters: cache + prefetch + derived memoization.
  StreamStats stats() const;

  VolumeStore& store() const { return *store_; }
  DerivedCache& derived_cache() const { return derived_; }

 private:
  /// Window bookkeeping only: clamp [lo, hi] to [0, last_step], record it,
  /// and move held references outside it into `dropped` (the caller
  /// declares `dropped` before its lock guard, so any final VolumeF
  /// deallocation happens after mutex_ is released). Returns the clamped
  /// window. The caller pins it on the store AFTER unlocking — pinning
  /// triggers loads, and in synchronous-prefetch mode a load is a full
  /// disk decode that must never run under this mutex (that exact defect
  /// is pinned by tests/concurrency_regression_test.cpp).
  std::pair<int, int> set_window_locked(
      int lo, int hi, int last_step,
      std::vector<std::shared_ptr<const VolumeF>>& dropped) const
      IFET_REQUIRES(mutex_);

  /// fetch() that degrades gracefully for derived products: a skipped
  /// (quarantined) step is answered with its nearest loadable neighbour,
  /// so histogram-driven consumers (IATF opacity ramps) keep working over
  /// gaps. Voxel-exact consumers go through try_step instead.
  std::shared_ptr<const VolumeF> fetch_or_substitute(int step) const;

  StreamConfig config_;
  std::uint64_t hist_params_ = 0;  ///< hash(bins, value range)
  mutable std::unique_ptr<VolumeStore> store_;
  mutable DerivedCache derived_;

  mutable OrderedMutex mutex_{MutexRank::kStreamedSequence};
  mutable int window_lo_ IFET_GUARDED_BY(mutex_) = 0;
  mutable int window_hi_ IFET_GUARDED_BY(mutex_) = -1;
  /// Steps of the active window whose references callers may hold; the
  /// shared_ptrs keep the data alive even across eviction.
  mutable std::map<int, std::shared_ptr<const VolumeF>> held_
      IFET_GUARDED_BY(mutex_);
};

}  // namespace ifet
