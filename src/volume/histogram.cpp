#include "volume/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace ifet {

Histogram::Histogram(int bins, double lo, double hi) : lo_(lo), hi_(hi) {
  IFET_REQUIRE(bins > 0, "Histogram requires at least one bin");
  IFET_REQUIRE(hi > lo, "Histogram range must be non-degenerate");
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

Histogram Histogram::of(const VolumeF& volume, int bins, double lo,
                        double hi) {
  Histogram h(bins, lo, hi);
  for (float v : volume.data()) h.add(static_cast<double>(v));
  return h;
}

int Histogram::bin_of(double value) const {
  // Clamp in double before the int cast: for values far outside [lo, hi]
  // (or NaN) the cast itself would be UB, not merely out of range.
  double t = (value - lo_) / (hi_ - lo_);
  double scaled = std::floor(t * bins());
  if (!(scaled > 0.0)) return 0;  // below range or NaN
  if (scaled >= static_cast<double>(bins())) return bins() - 1;
  return static_cast<int>(scaled);
}

double Histogram::bin_center(int bin) const {
  IFET_DEBUG_ASSERT(bin >= 0 && bin < bins(),
                    "Histogram::bin_center bin out of range");
  double width = (hi_ - lo_) / bins();
  return lo_ + (bin + 0.5) * width;
}

void Histogram::add(double value) {
  const int bin = bin_of(value);
  IFET_DEBUG_ASSERT(bin >= 0 && bin < bins(),
                    "Histogram::add produced an out-of-range bin");
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

int Histogram::peak_bin(int bin_lo, int bin_hi) const {
  bin_lo = std::clamp(bin_lo, 0, bins() - 1);
  bin_hi = std::clamp(bin_hi, 0, bins() - 1);
  IFET_REQUIRE(bin_lo <= bin_hi, "peak_bin: empty range");
  int best = bin_lo;
  for (int b = bin_lo + 1; b <= bin_hi; ++b) {
    if (counts_[static_cast<std::size_t>(b)] >
        counts_[static_cast<std::size_t>(best)]) {
      best = b;
    }
  }
  return best;
}

CumulativeHistogram::CumulativeHistogram(const Histogram& histogram)
    : lo_(histogram.lo()),
      hi_(histogram.hi()),
      bin_width_((histogram.hi() - histogram.lo()) / histogram.bins()) {
  cumulative_.resize(static_cast<std::size_t>(histogram.bins()));
  const double total =
      histogram.total() > 0 ? static_cast<double>(histogram.total()) : 1.0;
  std::size_t running = 0;
  for (int b = 0; b < histogram.bins(); ++b) {
    running += histogram.count(b);
    cumulative_[static_cast<std::size_t>(b)] =
        static_cast<double>(running) / total;
  }
}

CumulativeHistogram CumulativeHistogram::of(const VolumeF& volume, int bins,
                                            double lo, double hi) {
  return CumulativeHistogram(Histogram::of(volume, bins, lo, hi));
}

double CumulativeHistogram::fraction_at(double value) const {
  // Same pre-cast clamping as Histogram::bin_of: the int cast is UB for
  // inputs far outside [lo, hi] or NaN.
  double t = (value - lo_) / (hi_ - lo_);
  double scaled = std::floor(t * bins());
  if (!(scaled >= 0.0)) return 0.0;  // below range or NaN
  if (scaled >= static_cast<double>(bins())) return 1.0;
  return cumulative_[static_cast<std::size_t>(static_cast<int>(scaled))];
}

double CumulativeHistogram::value_at_fraction(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), fraction);
  if (it == cumulative_.end()) return hi_;
  auto bin = static_cast<int>(it - cumulative_.begin());
  return lo_ + (bin + 0.5) * bin_width_;
}

}  // namespace ifet
