// Error handling primitives for the ifet library.
//
// Following the C++ Core Guidelines (E.2, I.10) we report errors that cannot
// be handled locally by throwing; precondition violations use IFET_REQUIRE
// which throws ifet::Error with file/line context so library misuse is
// diagnosable in release builds too (the data sets processed here are large
// and rebuilding in debug mode to find a bad extent is not acceptable).
#pragma once

#include <stdexcept>
#include <string>

namespace ifet {

/// Exception type thrown for all recoverable errors raised by ifet libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace detail

}  // namespace ifet

/// Precondition / invariant check that stays on in release builds.
/// Throws ifet::Error with source location on failure.
#define IFET_REQUIRE(expr, message)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::ifet::detail::throw_error(__FILE__, __LINE__, #expr, (message));  \
    }                                                                     \
  } while (false)

/// Internal consistency check for hot paths (unchecked indexing, frontier
/// bookkeeping, layer-shape invariants). Compiled out entirely in ordinary
/// builds; enabled by the IFET_CHECKED_ITERATORS CMake option (on in the
/// asan-ubsan and tsan presets). Failures throw ifet::Error exactly like
/// IFET_REQUIRE, so tests can observe them with EXPECT_THROW.
#if defined(IFET_CHECKED_ITERATORS) && IFET_CHECKED_ITERATORS
#define IFET_DEBUG_ASSERT(expr, message) IFET_REQUIRE(expr, message)
#else
// sizeof keeps the operands syntactically checked (and silences
// "unused variable" warnings for assert-only locals) without evaluating.
#define IFET_DEBUG_ASSERT(expr, message) \
  do {                                   \
    (void)sizeof((expr) ? 1 : 0);        \
    (void)sizeof(message);               \
  } while (false)
#endif
