// Pluggable supervised-learning engines.
//
// The paper commits to the three-layer perceptron "primarily because of its
// simplicity and generality" but names the alternatives — "Support Vector
// Machines, Bayesian networks, and Hidden Markov Models usable for our
// purpose. In the context of intelligent visualization, the cost and
// performance tradeoffs for each of these methods remain to be evaluated"
// (Sec 3), and Sec 8 reports "promising results" with SVMs. This module
// provides that evaluation surface: a common binary-classifier interface
// with MLP, RBF-kernel SVM, and Gaussian naive-Bayes implementations, and
// bench_ml_engines measures the tradeoffs on the data-space extraction
// task.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "nn/training.hpp"

namespace ifet {

/// A supervised binary classifier: fit on (input, certainty in {0,1})
/// samples, then predict a certainty in [0, 1] for new inputs.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  /// (Re)fit on the full training set. Engines with iterative training may
  /// interpret `budget` as epochs; batch engines ignore it.
  virtual void fit(const TrainingSet& set, int budget) = 0;

  /// Certainty in [0, 1] that `input` belongs to the positive class.
  virtual double predict(std::span<const double> input) const = 0;

  virtual std::string name() const = 0;
};

enum class EngineKind {
  kMlp,         ///< Three-layer perceptron (the paper's engine).
  kSvm,         ///< RBF-kernel soft-margin SVM (Sec 8's "promising" one).
  kNaiveBayes,  ///< Gaussian naive Bayes (the Bayesian-network baseline).
};

/// Factory over the three engines. `input_width` is the feature-vector
/// width; `seed` drives any stochastic initialization.
std::unique_ptr<BinaryClassifier> make_classifier(EngineKind kind,
                                                  int input_width,
                                                  std::uint64_t seed);

const char* engine_name(EngineKind kind);

}  // namespace ifet
