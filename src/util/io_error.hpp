// Typed I/O error taxonomy (docs/ROBUSTNESS.md).
//
// The streaming pipeline makes thousands of step fetches over hundreds of
// gigabytes of time-varying data; "something went wrong reading step t" is
// not actionable enough for a long-running service. Every error raised by
// the disk -> cache -> pipeline path therefore carries its recovery
// contract in its type:
//
//   TransientIoError  — the same operation may succeed if repeated
//                       (interrupted read, racing writer, overloaded
//                       filesystem). VolumeStore retries these with
//                       deterministic exponential backoff.
//   CorruptDataError  — the bytes are there but wrong: checksum mismatch,
//                       truncated frame, malformed header, RLE stream that
//                       ends mid-volume. Retried (a torn write may
//                       complete), then quarantined.
//   NotFoundError     — the file or step does not exist at all. Not
//                       retried; quarantined immediately.
//   DeadlineExceeded  — the caller's time budget ran out while waiting
//                       for the data (util/deadline.hpp). The data is NOT
//                       bad: never retried against the budget that just
//                       expired, never quarantines the step, never
//                       triggers a FailPolicy substitution — the same
//                       fetch with a fresh budget is expected to succeed.
//
// All three derive from IoError (itself an ifet::Error), so legacy
// `catch (const Error&)` handlers keep working while new code handles each
// failure mode distinctly. The ifet_lint `broad-catch-io` rule enforces
// typed handling around volume-load call sites outside src/stream.
#pragma once

#include <string>

#include "util/error.hpp"

namespace ifet {

/// Base of every error raised by the volume I/O / streaming path.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Retryable: repeating the same operation may succeed.
class TransientIoError : public IoError {
 public:
  explicit TransientIoError(const std::string& what) : IoError(what) {}
};

/// The payload is damaged (checksum mismatch, truncation, bad header).
class CorruptDataError : public IoError {
 public:
  explicit CorruptDataError(const std::string& what) : IoError(what) {}
};

/// The file / step does not exist; retrying the read cannot help.
class NotFoundError : public IoError {
 public:
  explicit NotFoundError(const std::string& what) : IoError(what) {}
};

/// The caller's time budget (or cancellation token) expired while waiting
/// on the streaming stack. IMPORTANT ordering contract: every
/// `catch (const IoError&)` on the load path must pre-catch and rethrow
/// this type — a timeout must never be retried, quarantined, or
/// substituted like a data failure (the step itself is healthy).
class DeadlineExceeded : public IoError {
 public:
  explicit DeadlineExceeded(const std::string& what) : IoError(what) {}
};

}  // namespace ifet
