// Fixture (should FAIL): <iostream> in a header drags stream static init
// into every TU.
#pragma once
#include <iostream>

void log_line(const char* msg);
