file(REMOVE_RECURSE
  "libifet_core.a"
)
