// Lock-order pass: builds a per-class mutex-acquisition graph across every
// scanned translation unit and fails on cycles and rank inversions
// (rule `lock-order-cycle`).
//
// Model (docs/STATIC_ANALYSIS.md): each class owning a mutex member is a
// node. An edge A -> B means "some method of A calls, while holding A's
// mutex, a method that acquires B's mutex" — resolved through the repo's
// member-naming convention (`recv_->method(...)` with `Type recv_;`
// declared in A's class body) or an unqualified self-call. Lambda bodies
// reset the held-lock context: a lambda defined under a lock runs later,
// when the lock is no longer held (the `Prefetcher::schedule` pattern).
// A cycle in this graph is a deadlock candidate no rank assignment can
// fix; an edge from a higher-ranked OrderedMutex to a lower-ranked one is
// an inversion the runtime validator (util/ordered_mutex.hpp) would throw
// on. Both report as `lock-order-cycle`.
//
// This is a heuristic token-level analysis, not a compiler: it relies on
// the repo conventions that members end in `_`, class types are
// UpperCamelCase, and constructor initializer lists use parentheses. It is
// deliberately edge-conservative — an unresolvable receiver produces no
// edge — so its findings are worth acting on and its silence is not proof.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lint/tokenizer.hpp"

namespace ifet_lint {

struct ClassModel {
  std::set<std::string> mutex_members;              // e.g. "mutex_"
  std::map<std::string, std::string> member_types;  // "pool_" -> "ThreadPool"
  std::set<std::string> locking_methods;
  std::string rank_name;  // "kVolumeStore" when an OrderedMutex declares one
};

struct LockSite {
  std::string cls;
  std::string method;
  std::string mutex;
  std::string path;
  std::size_t line = 0;
};

struct HeldLock {
  int depth = 0;
  int lambda_level = 0;
  std::string cls;    // class context at acquisition
  std::string mutex;  // member name of the locked mutex
};

struct CallSite {
  std::string cls;     // class context of the calling method
  std::string recv;    // "pool_" for pool_->f(); empty for bare f()
  std::string callee;  // method name
  std::string path;
  std::size_t line = 0;
  std::size_t file_index = 0;  // into the scanned-file vector
  std::vector<HeldLock> held;  // locks active at this call
};

struct LockOrderModel {
  std::map<std::string, ClassModel> classes;
  std::map<std::string, int> rank_values;  // "kVolumeStore" -> 20
  std::vector<LockSite> locks;
  std::vector<CallSite> calls;
};

namespace detail {

inline bool is_call_keyword(const std::string& name) {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",  "catch",    "return",
      "sizeof", "new",    "delete", "defined", "decltype", "alignof",
      "throw",  "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "assert"};
  return kw.count(name) != 0 || name.rfind("IFET_", 0) == 0;
}

struct Scope {
  enum Kind { kNamespace, kClass, kMethod, kLambda, kOther };
  Kind kind;
  int depth;
  std::string name;  // class name / method name
  std::string cls;   // owning class for kMethod
};

/// Walks one file, growing `model` with class declarations, lock
/// acquisitions, and held-context call sites.
inline void walk_file(const SourceFile& file, std::size_t file_index,
                      LockOrderModel& model) {
  // `class X final : Base {` with optional attribute macros between the
  // keyword and the name (class IFET_CAPABILITY("mutex") Mutex — the
  // string argument is already blanked in the code view).
  static const std::regex class_head_re(
      R"(\b(class|struct)\s+((IFET_\w+\s*(\(\s*\))?\s*)*)(\w+))");
  static const std::regex namespace_re(R"(\bnamespace\b)");
  static const std::regex enum_head_re(R"(\benum\s+(class\s+)?MutexRank\b)");
  static const std::regex enum_value_re(R"(\b(k\w+)\s*=\s*(\d+))");
  static const std::regex qual_method_re(R"(\b(\w+)\s*::\s*(~?\w+)\s*\()");
  static const std::regex inclass_method_re(R"(\b(~?\w+)\s*\()");
  static const std::regex lambda_re(
      R"(\]\s*(\(([^()]|\([^()]*\))*\))?\s*(mutable\s*)?(noexcept\s*)?(->[^={]*)?\{)");
  // Lock acquisitions: the repo's annotated RAII guards, the std guards,
  // and a direct member .lock() call.
  static const std::regex raii_lock_re(
      R"(\b(OrderedMutexLock|MutexLock|GenericMutexLock\s*<[^>]*>)\s+\w+\s*[({]\s*(\w+)\s*[)}])");
  static const std::regex std_lock_re(
      R"(\bstd\s*::\s*(lock_guard|unique_lock|scoped_lock)\s*<[^>]*>\s+\w+\s*[({]\s*(\w+)\s*[),}])");
  static const std::regex direct_lock_re(R"(\b(\w+)\s*\.\s*lock\s*\(\s*\))");
  static const std::regex member_call_re(
      R"(\b(\w+_)\s*(->|\.)\s*(\w+)\s*\()");
  static const std::regex bare_call_re(R"(\b([A-Za-z_]\w*)\s*\()");
  // Class-body member declarations.
  static const std::regex mutex_rank_decl_re(
      R"(\bOrderedMutex\s+(\w+)\s*\{\s*MutexRank\s*::\s*(\w+)\s*\})");
  static const std::regex mutex_decl_re(
      R"(\b(OrderedMutex|Mutex|std\s*::\s*(mutex|recursive_mutex|shared_mutex|timed_mutex))\s+(\w+)\s*[;{=])");
  static const std::regex smart_member_re(
      R"(\bstd\s*::\s*(unique_ptr|shared_ptr)\s*<\s*(const\s+)?(\w+)\s*>\s+(\w+_)\s*[;={])");
  static const std::regex plain_member_re(
      R"(\b([A-Z]\w*)\s*[&*]?\s+(\w+_)\s*[;={])");

  std::vector<Scope> scopes;
  int depth = 0;
  int lambda_level = 0;
  bool pending_namespace = false;
  std::string pending_class;
  std::string pending_method_cls, pending_method_name;
  bool in_rank_enum = false;
  std::vector<HeldLock> held;

  auto innermost = [&]() -> const Scope* {
    return scopes.empty() ? nullptr : &scopes.back();
  };
  auto current_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kMethod) return it->cls;
      if (it->kind == Scope::kClass) return it->name;
    }
    return {};
  };
  auto current_method = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kMethod) return it->name;
    }
    return {};
  };
  auto at_body_level = [&]() {
    const Scope* s = innermost();
    return s != nullptr &&
           (s->kind == Scope::kMethod || s->kind == Scope::kLambda ||
            s->kind == Scope::kOther);
  };
  auto at_namespace_level = [&]() {
    const Scope* s = innermost();
    return s == nullptr || s->kind == Scope::kNamespace;
  };
  auto active_held = [&]() {
    std::vector<HeldLock> out;
    for (const auto& h : held) {
      if (h.lambda_level == lambda_level) out.push_back(h);
    }
    return out;
  };

  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];

    // MutexRank enum: harvest the numeric rank table so inversions can be
    // checked without hard-coding the ranks into the linter.
    if (!in_rank_enum && std::regex_search(line, enum_head_re)) {
      in_rank_enum = true;
    }
    if (in_rank_enum) {
      for (std::sregex_iterator it(line.begin(), line.end(), enum_value_re),
           end;
           it != end; ++it) {
        model.rank_values[(*it)[1].str()] = std::stoi((*it)[2].str());
      }
      if (line.find('}') != std::string::npos) in_rank_enum = false;
      continue;
    }

    // Class-body member declarations (checked against the scope state at
    // line start; a one-line inline method body does not disturb it).
    const Scope* in = innermost();
    if (in != nullptr && in->kind == Scope::kClass) {
      std::smatch m;
      const std::string& cls = in->name;
      if (std::regex_search(line, m, mutex_rank_decl_re)) {
        model.classes[cls].mutex_members.insert(m[1].str());
        model.classes[cls].rank_name = m[2].str();
      } else if (std::regex_search(line, m, mutex_decl_re)) {
        model.classes[cls].mutex_members.insert(m[3].str());
      } else if (std::regex_search(line, m, smart_member_re)) {
        model.classes[cls].member_types[m[4].str()] = m[3].str();
      } else if (std::regex_search(line, m, plain_member_re)) {
        model.classes[cls].member_types[m[2].str()] = m[1].str();
      }
    }

    // Position-tagged events, interleaved with the brace scan below.
    std::map<std::size_t, std::pair<std::string, std::string>> class_heads;
    std::map<std::size_t, std::pair<std::string, std::string>> method_heads;
    std::set<std::size_t> lambda_braces;
    std::map<std::size_t, std::string> lock_sites;
    struct CallTok {
      std::string recv, callee;
    };
    std::map<std::size_t, CallTok> call_sites;
    std::set<std::size_t> claimed;  // positions consumed by richer matches

    for (std::sregex_iterator it(line.begin(), line.end(), class_head_re),
         end;
         it != end; ++it) {
      const auto pos = static_cast<std::size_t>(it->position(0));
      // `enum class X` is not a class body we model.
      const auto epos = line.rfind("enum", pos);
      if (epos != std::string::npos && pos - epos <= 8) continue;
      class_heads[pos] = {(*it)[1].str(), (*it)[5].str()};
    }
    if (std::regex_search(line, namespace_re)) pending_namespace = true;
    for (std::sregex_iterator it(line.begin(), line.end(), lambda_re), end;
         it != end; ++it) {
      lambda_braces.insert(
          static_cast<std::size_t>(it->position(0) + it->length(0)) - 1);
    }
    if (at_namespace_level()) {
      // Qualified heads (`Foo::bar(...)`) only start definitions at
      // namespace level; inside bodies they are calls, not heads.
      std::smatch m;
      if (std::regex_search(line, m, qual_method_re)) {
        method_heads[static_cast<std::size_t>(m.position(0))] = {m[1].str(),
                                                                 m[2].str()};
      }
    }
    if (in != nullptr && in->kind == Scope::kClass &&
        pending_method_name.empty() && method_heads.empty()) {
      for (std::sregex_iterator it(line.begin(), line.end(),
                                   inclass_method_re),
           end;
           it != end; ++it) {
        const std::string name = (*it)[1].str();
        if (is_call_keyword(name)) continue;
        const auto pos = static_cast<std::size_t>(it->position(0));
        if (pos > 0 && (line[pos - 1] == ':' || line[pos - 1] == '.' ||
                        line[pos - 1] == '>')) {
          continue;
        }
        method_heads[pos] = {in->name, name};
        break;  // first plausible name is the declarator
      }
    }
    for (std::sregex_iterator it(line.begin(), line.end(), raii_lock_re), end;
         it != end; ++it) {
      lock_sites[static_cast<std::size_t>(it->position(0))] = (*it)[2].str();
    }
    for (std::sregex_iterator it(line.begin(), line.end(), std_lock_re), end;
         it != end; ++it) {
      lock_sites[static_cast<std::size_t>(it->position(0))] = (*it)[2].str();
    }
    for (std::sregex_iterator it(line.begin(), line.end(), direct_lock_re),
         end;
         it != end; ++it) {
      lock_sites[static_cast<std::size_t>(it->position(0))] = (*it)[1].str();
    }
    for (std::sregex_iterator it(line.begin(), line.end(), member_call_re),
         end;
         it != end; ++it) {
      const auto pos = static_cast<std::size_t>(it->position(0));
      call_sites[pos] = {(*it)[1].str(), (*it)[3].str()};
      claimed.insert(pos);
      claimed.insert(static_cast<std::size_t>(it->position(3)));
    }
    for (std::sregex_iterator it(line.begin(), line.end(), bare_call_re),
         end;
         it != end; ++it) {
      const auto pos = static_cast<std::size_t>(it->position(0));
      if (claimed.count(pos)) continue;
      const std::string name = (*it)[1].str();
      if (is_call_keyword(name)) continue;
      if (pos > 0 && (line[pos - 1] == '.' || line[pos - 1] == ':' ||
                      line[pos - 1] == '>' || line[pos - 1] == '~')) {
        continue;
      }
      call_sites.emplace(pos, CallTok{std::string(), name});
    }

    // Character scan: fire events in source order so a lock declared
    // mid-line guards only the calls after it.
    for (std::size_t c = 0; c < line.size(); ++c) {
      if (auto ch = class_heads.find(c); ch != class_heads.end()) {
        pending_class = ch->second.second;
      }
      if (auto mh = method_heads.find(c); mh != method_heads.end()) {
        pending_method_cls = mh->second.first;
        pending_method_name = mh->second.second;
      }
      if (auto lk = lock_sites.find(c); lk != lock_sites.end()) {
        const std::string cls = current_class();
        if (!cls.empty()) {
          // Recorded unconditionally: this file may be walked before the
          // header declaring the mutex member, so whether the name is a
          // class mutex (vs. a local like ThreadPool::run_tasks's
          // done_mutex) is decided in the resolution phase.
          model.locks.push_back(
              {cls, current_method(), lk->second, file.path.string(), i + 1});
          held.push_back({depth, lambda_level, cls, lk->second});
        }
      }
      if (auto cs = call_sites.find(c); cs != call_sites.end()) {
        auto active = active_held();
        if (!active.empty() && at_body_level()) {
          model.calls.push_back({current_class(), cs->second.recv,
                                 cs->second.callee, file.path.string(), i + 1,
                                 file_index, std::move(active)});
        }
      }
      if (line[c] == ';') {
        // A `;` ends any declaration without a body: pure virtuals,
        // forward declarations, `namespace x = y;`.
        pending_class.clear();
        pending_namespace = false;
        pending_method_cls.clear();
        pending_method_name.clear();
      } else if (line[c] == '{') {
        ++depth;
        if (lambda_braces.count(c)) {
          scopes.push_back({Scope::kLambda, depth, "", ""});
          ++lambda_level;
        } else if (!pending_class.empty()) {
          scopes.push_back({Scope::kClass, depth, pending_class, ""});
          pending_class.clear();
        } else if (!pending_method_name.empty()) {
          scopes.push_back({Scope::kMethod, depth, pending_method_name,
                            pending_method_cls});
          pending_method_cls.clear();
          pending_method_name.clear();
        } else if (pending_namespace) {
          scopes.push_back({Scope::kNamespace, depth, "", ""});
          pending_namespace = false;
        } else {
          scopes.push_back({Scope::kOther, depth, "", ""});
        }
      } else if (line[c] == '}') {
        for (std::size_t h = held.size(); h-- > 0;) {
          if (held[h].depth == depth) held.erase(held.begin() + h);
        }
        if (!scopes.empty() && scopes.back().depth == depth) {
          if (scopes.back().kind == Scope::kLambda) --lambda_level;
          scopes.pop_back();
        }
        if (depth > 0) --depth;
      }
    }
  }
}

}  // namespace detail

inline void run_lock_order_pass(const std::vector<SourceFile>& files,
                                std::vector<Finding>& findings) {
  LockOrderModel model;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].ok) detail::walk_file(files[i], i, model);
  }

  // Resolve which methods acquire their class's mutex (locks on locals —
  // names that are not declared mutex members — don't count).
  for (const auto& lock : model.locks) {
    const auto cit = model.classes.find(lock.cls);
    if (!lock.method.empty() && cit != model.classes.end() &&
        cit->second.mutex_members.count(lock.mutex) != 0) {
      model.classes[lock.cls].locking_methods.insert(lock.method);
    }
  }

  // Resolve held-context calls into acquisition edges.
  struct Edge {
    std::string to;
    std::string path;
    std::size_t line;
    std::size_t file_index;
    std::string via;  // "B::method"
  };
  std::map<std::string, std::vector<Edge>> graph;
  for (const auto& call : model.calls) {
    const auto cit = model.classes.find(call.cls);
    if (cit == model.classes.end()) continue;
    std::string target;
    if (!call.recv.empty()) {
      const auto mt = cit->second.member_types.find(call.recv);
      if (mt == cit->second.member_types.end()) continue;
      target = mt->second;
    } else {
      target = call.cls;  // unqualified self-call
    }
    const auto tit = model.classes.find(target);
    if (tit == model.classes.end() ||
        tit->second.locking_methods.count(call.callee) == 0) {
      continue;
    }
    for (const auto& h : call.held) {
      if (model.classes[h.cls].mutex_members.count(h.mutex) == 0) continue;
      graph[h.cls].push_back({target, call.path, call.line, call.file_index,
                              target + "::" + call.callee});
    }
  }

  auto edge_suppressed = [&](const Edge& e) {
    const auto& f = files[e.file_index];
    return e.line > 0 && e.line <= f.raw.size() &&
           suppressed(f.raw, e.line - 1, "lock-order-cycle");
  };

  // Rank inversions: an edge from a higher (or equal) rank to a lower one
  // breaks the strict-increase discipline the runtime validator enforces.
  auto rank_of = [&](const std::string& cls) -> int {
    const auto it = model.classes.find(cls);
    if (it == model.classes.end() || it->second.rank_name.empty()) return -1;
    const auto rv = model.rank_values.find(it->second.rank_name);
    return rv == model.rank_values.end() ? -1 : rv->second;
  };
  for (const auto& [from, edges] : graph) {
    for (const auto& e : edges) {
      const int rf = rank_of(from);
      const int rt = rank_of(e.to);
      if (rf >= 0 && rt >= 0 && rf >= rt && from != e.to &&
          !edge_suppressed(e)) {
        findings.push_back(
            {e.path, e.line, "lock-order-cycle",
             "rank inversion: " + e.via + " (rank " + std::to_string(rt) +
                 ") is acquired while holding the " + from +
                 " mutex (rank " + std::to_string(rf) +
                 "); MutexRank acquisition must strictly increase"});
      }
    }
  }

  // Cycle detection over the acquisition graph (self-edges included: a
  // re-entrant acquisition is a length-1 cycle).
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    const auto git = graph.find(node);
    if (git != graph.end()) {
      for (const auto& e : git->second) {
        if (color[e.to] == 1) {
          // Back edge: the cycle is the stack suffix from e.to plus this
          // edge. Normalize (sorted member list) so each cycle reports once.
          std::vector<std::string> cycle;
          for (std::size_t s = stack.size(); s-- > 0;) {
            cycle.push_back(stack[s]);
            if (stack[s] == e.to) break;
          }
          std::vector<std::string> key_parts = cycle;
          std::sort(key_parts.begin(), key_parts.end());
          std::string key;
          for (const auto& p : key_parts) key += p + "|";
          if (reported.count(key) || edge_suppressed(e)) continue;
          reported.insert(key);
          std::string path_str = e.to;
          for (auto it = cycle.rbegin(); it != cycle.rend(); ++it) {
            if (*it != e.to || it != cycle.rbegin()) path_str += " -> " + *it;
          }
          path_str += " -> " + e.to;
          findings.push_back(
              {e.path, e.line, "lock-order-cycle",
               (e.to == node
                    ? "re-entrant acquisition: " + e.via +
                          " is called while the " + node +
                          " mutex is already held (self-deadlock)"
                    : "mutex acquisition cycle: " + path_str +
                          " — no rank assignment can order these locks; " +
                          "release before calling out or split the lock")});
        } else if (color[e.to] == 0) {
          dfs(e.to);
        }
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, edges] : graph) {
    (void)edges;
    if (color[node] == 0) dfs(node);
  }
}

}  // namespace ifet_lint
