#include "stream/prefetcher.hpp"

#include "util/error.hpp"
#include "util/timer.hpp"

namespace ifet {

Prefetcher::Prefetcher(ThreadPool& pool, CacheManager& cache,
                       std::function<VolumeF(int)> load)
    : pool_(pool), cache_(cache), load_(std::move(load)) {
  IFET_REQUIRE(static_cast<bool>(load_), "Prefetcher: empty load function");
}

Prefetcher::~Prefetcher() {
  OrderedMutexLock lock(mutex_);
  while (!in_flight_.empty()) done_cv_.wait(mutex_);
}

void Prefetcher::schedule(int step) {
  if (cache_.resident(step)) return;
  {
    OrderedMutexLock lock(mutex_);
    if (!in_flight_.insert(step).second) return;  // already in flight
    ++issued_;
  }
  auto task = [this, step] {
    // Worker-thread context: errors may not escape (ThreadPool::post tasks
    // must not throw). A failed load leaves no partial volume in the
    // cache; its error is parked in failed_ for take_failure().
    double seconds = 0.0;
    bool loaded = false;
    std::exception_ptr error;
    try {
      Stopwatch timer;
      VolumeF volume = load_(step);
      seconds = timer.seconds();
      cache_.insert(step, std::move(volume), /*from_prefetch=*/true);
      loaded = true;
    } catch (...) {  // ifet-lint: allow(catch-all) — parked for take_failure
      // Any escape — std or not — must still run the erase/notify cleanup
      // below, or every waiter queued on this step blocks forever (the
      // regression tests/stream_test.cpp pins). The exception is parked,
      // not swallowed: take_failure() rethrows it on a fetching thread.
      error = std::current_exception();
    }
    // notify_all must happen under the lock: ~Prefetcher may destroy the
    // condition variable the moment it observes in_flight_ empty, so the
    // erase and the notify have to be atomic with respect to that wait.
    OrderedMutexLock lock(mutex_);
    if (loaded) {
      decode_seconds_ += seconds;
      failed_.erase(step);  // a stale failure must not shadow fresh data
    } else {
      ++failures_;
      failed_[step] = error;
    }
    in_flight_.erase(step);
    done_cv_.notify_all();
  };
  if (!pool_.try_post(task)) {
    // Pool is shutting down: prefetch silently degrades to demand loading.
    OrderedMutexLock lock(mutex_);
    in_flight_.erase(step);
    --issued_;
    done_cv_.notify_all();
  }
}

bool Prefetcher::wait(int step) {
  return wait(step, Deadline::unlimited());
}

bool Prefetcher::wait(int step, const Deadline& deadline) {
  OrderedMutexLock lock(mutex_);
  if (in_flight_.count(step) == 0) return false;
  while (in_flight_.count(step) != 0) {
    // Throws the typed DeadlineExceeded once the budget is gone; the load
    // itself keeps running and lands in the cache for a later retry.
    deadline.check("Prefetcher::wait for in-flight load");
    deadline.wait_once(done_cv_, mutex_);
  }
  return true;
}

bool Prefetcher::in_flight(int step) const {
  OrderedMutexLock lock(mutex_);
  return in_flight_.count(step) != 0;
}

std::exception_ptr Prefetcher::take_failure(int step) {
  OrderedMutexLock lock(mutex_);
  auto it = failed_.find(step);
  if (it == failed_.end()) return nullptr;
  std::exception_ptr error = it->second;
  failed_.erase(it);
  return error;
}

StreamStats Prefetcher::stats() const {
  OrderedMutexLock lock(mutex_);
  StreamStats out;
  out.prefetch_issued = issued_;
  out.prefetch_failures = failures_;
  out.prefetch_decode_seconds = decode_seconds_;
  return out;
}

}  // namespace ifet
