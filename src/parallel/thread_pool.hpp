// Shared-memory work distribution.
//
// The paper (Sec 8) notes that per-time-step feature extraction is
// embarrassingly parallel and proposes a PC cluster for batch processing;
// Sec 7 relies on the GPU for per-voxel work. We provide the shared-memory
// equivalent: a fixed thread pool with static and dynamically-chunked
// parallel loops. All per-voxel passes in the library (classification,
// rendering, region statistics) run through these helpers.
//
// Design notes (per C++ Core Guidelines CP.*): tasks never share mutable
// state except through the caller-provided body; joins are explicit; the
// pool is RAII — destruction drains and joins all workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ifet {

/// Thrown by ThreadPool::post when the pool is shutting down: a task
/// enqueued during shutdown would otherwise be silently dropped, which is
/// exactly the failure mode that loses prefetch work without a trace.
/// Callers that legitimately race shutdown (e.g. the streaming
/// Prefetcher's best-effort lookahead) should use try_post instead.
class PoolShutdownError : public Error {
 public:
  explicit PoolShutdownError(const std::string& what) : Error(what) {}
};

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs `body(begin..end)` split into contiguous ranges, one per worker
  /// (static schedule). Blocks until all ranges complete. Exceptions from
  /// the body are captured and the first one rethrown to the caller.
  void parallel_for_static(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& range_body);

  /// Dynamically-chunked loop: workers grab `chunk`-sized ranges from a
  /// shared counter. Use when per-index cost is irregular (e.g. region
  /// growing fronts, early ray termination).
  void parallel_for_dynamic(
      std::size_t begin, std::size_t end, std::size_t chunk,
      const std::function<void(std::size_t, std::size_t)>& range_body);

  /// Fire-and-forget: enqueue `fn` to run on a worker thread and return
  /// immediately. The destructor drains the queue before joining, so every
  /// posted task runs exactly once even if the pool is destroyed right
  /// after posting. `fn` must not throw — there is no caller to rethrow
  /// to (a throwing fn terminates the process).
  ///
  /// Posting to a pool that is shutting down fails LOUDLY with
  /// PoolShutdownError: accepting the task could never run it. Use
  /// try_post when racing shutdown is expected.
  void post(std::function<void()> fn) IFET_EXCLUDES(mutex_);

  /// Like post, but returns false instead of throwing when the pool is
  /// shutting down (the task is NOT enqueued and will never run).
  [[nodiscard]] bool try_post(std::function<void()> fn) IFET_EXCLUDES(mutex_);

  /// Begin shutdown explicitly: drains already-queued tasks, joins all
  /// workers, and makes further post() calls throw PoolShutdownError.
  /// Idempotent; the destructor calls it.
  void shutdown() IFET_EXCLUDES(mutex_);

  /// Process-wide default pool (lazily constructed, sized to hardware).
  static ThreadPool& global();

  class ScopedGlobalWidth;  // defined after the class: holds a ThreadPool

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop() IFET_EXCLUDES(mutex_);
  void run_tasks(std::vector<std::function<void()>> tasks)
      IFET_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  // Innermost-rank mutex (MutexRank::kThreadPool): tasks always run with
  // the queue lock dropped, so no other ifet mutex is ever acquired while
  // this one is held. condition_variable_any because the annotated
  // OrderedMutex is BasicLockable, not std::mutex.
  OrderedMutex mutex_{MutexRank::kThreadPool};
  std::condition_variable_any cv_;
  std::queue<Task> queue_ IFET_GUARDED_BY(mutex_);
  bool stopping_ IFET_GUARDED_BY(mutex_) = false;
};

/// Bench/replay-harness hook: while an instance is alive,
/// ThreadPool::global() returns a temporary pool with exactly
/// `num_threads` workers instead of the process-wide default. Scopes nest
/// (each restores its predecessor) but must not be constructed from
/// concurrent threads — this is a harness control, not a scheduling
/// primitive. The default global pool is never destroyed; the temporary
/// pool drains and joins at scope exit. Used by util/determinism.hpp's
/// ReplayCheck runners to replay a kernel at perturbed widths.
class ThreadPool::ScopedGlobalWidth {
 public:
  explicit ScopedGlobalWidth(std::size_t num_threads);
  ~ScopedGlobalWidth();

  ScopedGlobalWidth(const ScopedGlobalWidth&) = delete;
  ScopedGlobalWidth& operator=(const ScopedGlobalWidth&) = delete;

 private:
  ThreadPool pool_;
  ThreadPool* previous_;
};

/// Convenience: per-index parallel loop on the global pool, static schedule.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Convenience: range-based parallel loop on the global pool.
void parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& range_body);

/// Parallel reduction: each worker folds its range into a local accumulator
/// seeded with `identity`; partials are combined with `combine` in
/// deterministic (range-order) sequence.
template <typename T, typename Fold, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Fold fold,
                  Combine combine) {
  ThreadPool& pool = ThreadPool::global();
  const std::size_t n = end > begin ? end - begin : 0;
  if (n == 0) return identity;
  const std::size_t num_parts =
      std::min<std::size_t>(pool.size() == 0 ? 1 : pool.size(), n);
  std::vector<T> partials(num_parts, identity);
  pool.parallel_for_static(0, num_parts, [&](std::size_t p0, std::size_t p1) {
    for (std::size_t p = p0; p < p1; ++p) {
      std::size_t lo = begin + n * p / num_parts;
      std::size_t hi = begin + n * (p + 1) / num_parts;
      T acc = identity;
      for (std::size_t i = lo; i < hi; ++i) acc = fold(acc, i);
      partials[p] = acc;
    }
  });
  T result = identity;
  for (const T& p : partials) result = combine(result, p);
  return result;
}

}  // namespace ifet
