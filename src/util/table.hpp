// Fixed-width console table printer. The figure-reproduction benches print
// the series a paper figure plots as aligned rows; this keeps that output
// readable without dragging in a formatting library.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ifet {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row of already-formatted cells. Short rows are padded.
  void add_row(std::vector<std::string> cells);

  /// Format a double with fixed precision (helper for row building).
  static std::string num(double v, int precision = 3);

  /// Render with column alignment to `os`.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ifet
