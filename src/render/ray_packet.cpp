#include "render/ray_packet.hpp"

#include <cmath>

#include "volume/ops.hpp"

namespace ifet {

// Every stage below is a verbatim restaging of the scalar march body in
// Raycaster::render_rows: same double expressions, same per-sample order
// where order matters (the sequential composite), no cross-lane math. With
// -ffp-contract=off this keeps the packet path bitwise identical to the
// scalar path on any optimization level or ISA the build selects.
IFET_HOT int composite_packet(const Raycaster::Plan& plan,
                              const RenderSettings& settings, const Ray& ray,
                              double t0, long i0, int count,
                              RayPacket& scratch, double& alpha, Rgb& accum,
                              bool& terminated) {
  const VolumeF& volume = *plan.volume;
  const TransferFunction1D& tf = *plan.tf;
  const ColorMap& colors = *plan.colors;
  const HighlightLayer* highlight = plan.highlight;
  const VolumeF* certainty = plan.certainty;
  const double dt = plan.dt;
  const double value_span = plan.value_span;
  const Vec3 light_dir = plan.light_dir;

  // Stage 1: sample positions (indexed t, never accumulated — the skip
  // jumps that produced this run land on the same grid).
  for (int l = 0; l < count; ++l) {
    const double t = t0 + static_cast<double>(i0 + l) * dt;
    const Vec3 world = ray.origin + ray.direction * t;
    const Vec3 vox = plan.to_voxel(world);
    scratch.t[l] = t;
    scratch.vx[l] = vox.x;
    scratch.vy[l] = vox.y;
    scratch.vz[l] = vox.z;
  }

  // Stage 2: gather the trilinear taps.
  for (int l = 0; l < count; ++l) {
    scratch.value[l] =
        volume.sample(Vec3{scratch.vx[l], scratch.vy[l], scratch.vz[l]});
  }

  // Stage 3: nearest-voxel hits in the region-growing texture.
  if (highlight != nullptr) {
    for (int l = 0; l < count; ++l) {
      const int hi_i = static_cast<int>(std::lround(scratch.vx[l]));
      const int hi_j = static_cast<int>(std::lround(scratch.vy[l]));
      const int hi_k = static_cast<int>(std::lround(scratch.vz[l]));
      scratch.lit[l] = highlight->mask->clamped(hi_i, hi_j, hi_k) != 0;
    }
  }

  // Stage 4: TF opacity and color per lane.
  for (int l = 0; l < count; ++l) {
    const double value = scratch.value[l];
    if (highlight != nullptr && scratch.lit[l] != 0) {
      scratch.opacity[l] = highlight->tf->opacity(value);
      scratch.r[l] = highlight->color.r;
      scratch.g[l] = highlight->color.g;
      scratch.b[l] = highlight->color.b;
    } else {
      double a = tf.opacity(value);
      if (certainty != nullptr) {
        a *= certainty->sample(
            Vec3{scratch.vx[l], scratch.vy[l], scratch.vz[l]});
      }
      const double norm =
          value_span > 0.0
              ? clamp((value - tf.value_lo()) / value_span, 0.0, 1.0)
              : 0.0;
      const Rgb color = colors.at(norm);
      scratch.opacity[l] = a;
      scratch.r[l] = color.r;
      scratch.g[l] = color.g;
      scratch.b[l] = color.b;
    }
  }

  // Stage 5: gradient shading for the visible lanes (the scalar path
  // shades only samples that survive the a <= 0 cull; pre-correction
  // opacity gates the same set).
  if (settings.shading) {
    for (int l = 0; l < count; ++l) {
      if (scratch.opacity[l] <= 0.0) continue;
      const int gi = static_cast<int>(std::lround(scratch.vx[l]));
      const int gj = static_cast<int>(std::lround(scratch.vy[l]));
      const int gk = static_cast<int>(std::lround(scratch.vz[l]));
      const Vec3 g = gradient_at(volume, gi, gj, gk);
      const double gn = g.norm();
      double shade = settings.ambient;
      if (gn > 1e-9) {
        const Vec3 normal = g / gn;
        const double ndotl = std::fabs(normal.dot(light_dir));
        shade += settings.diffuse * ndotl;
        // Headlight specular (view == light direction).
        const double spec = std::pow(ndotl, settings.specular_power);
        shade += settings.specular * spec;
      } else {
        shade += settings.diffuse * 0.5;
      }
      scratch.r[l] *= shade;
      scratch.g[l] *= shade;
      scratch.b[l] *= shade;
    }
  }

  // Stage 6: sequential front-to-back compositing (inherently serial).
  int consumed = 0;
  for (int l = 0; l < count; ++l) {
    ++consumed;
    double a = scratch.opacity[l];
    if (a <= 0.0) continue;
    if (settings.opacity_correction) {
      a = 1.0 - std::pow(1.0 - a, settings.step_voxels);
    }
    const double w = (1.0 - alpha) * a;
    accum.r += w * scratch.r[l];
    accum.g += w * scratch.g[l];
    accum.b += w * scratch.b[l];
    alpha += w;
    if (alpha >= settings.early_termination_alpha) {
      terminated = true;
      break;
    }
  }
  return consumed;
}

}  // namespace ifet
