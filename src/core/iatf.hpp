// Intelligent Adaptive Transfer Function (paper Sec 4.2).
//
// The user pins ordinary 1D transfer functions to a few key frames. For
// every entry of every key-frame TF we form one training vector
//     < data value, cumulative-histogram(value) at that step, t >  ->  opacity
// (Sec 4.2.2: "the training data is collected from the transfer functions
// user specified... each entry in the IATF has the same amount of
// training"), train a three-layer perceptron on it, and then synthesize a
// 1D TF for *any* time step by evaluating the network at each of the 256
// entry values with that step's cumulative histogram.
//
// Training is incremental — train_for() is meant to be called from the
// application idle loop while the user keeps interacting; key frames can be
// added at any time and simply extend the training set.
#pragma once

#include <memory>
#include <optional>

#include "nn/flat_mlp.hpp"
#include "nn/mlp.hpp"
#include "nn/normalizer.hpp"
#include "nn/training.hpp"
#include "tf/transfer_function.hpp"
#include "volume/sequence.hpp"

namespace ifet {

struct IatfConfig {
  int hidden_units = 10;
  BackpropConfig backprop{0.25, 0.8};
  std::uint64_t seed = 1234;
  /// Input ablation switches (bench_ablation_inputs): the paper argues all
  /// three inputs are required; turning one off reproduces its failure mode.
  bool use_value = true;
  bool use_cumulative_histogram = true;
  bool use_time = true;
};

class Iatf {
 public:
  /// The sequence provides per-step cumulative histograms and the global
  /// value range the key-frame TFs are defined over.
  Iatf(const VolumeSequence& sequence, const IatfConfig& config = {});

  // The trainer references the Iatf's own network, so the object must stay
  // put; hold it by unique_ptr where reseating is needed.
  Iatf(const Iatf&) = delete;
  Iatf& operator=(const Iatf&) = delete;

  /// Add a user-authored key frame; its 256 entries join the training set.
  void add_key_frame(int step, const TransferFunction1D& tf);

  /// Upsert a key frame: replace the TF at `step` if present (the user
  /// revising a key frame mid-session), otherwise add it. On replacement
  /// the training set is rebuilt from all key frames; the network keeps
  /// its weights and continues training from them.
  void set_key_frame(int step, const TransferFunction1D& tf);

  /// Remove a key frame and rebuild the training set; returns false if no
  /// key frame exists at `step`.
  bool remove_key_frame(int step);

  /// All key frames added so far.
  const KeyFrameSet& key_frames() const { return key_frames_; }

  /// Run exactly `epochs` training epochs; returns final epoch MSE.
  double train(int epochs);

  /// Idle-loop form: run whole epochs until `budget_ms` elapses.
  double train_for(double budget_ms);

  /// Synthesize the adaptive 1D transfer function for `step`: each entry is
  /// the network's opacity for <entry value, cumhist_step(value), step>.
  TransferFunction1D evaluate(int step) const;

  /// Network opacity for one (value, step) pair.
  double opacity(double value, int step) const;

  /// Training-set size (256 per key frame).
  std::size_t training_samples() const { return training_set_.size(); }
  int epochs_run() const { return trainer_.epochs_run(); }
  double last_mse() const { return trainer_.last_mse(); }

  /// Hash of everything evaluate() depends on besides the step: network
  /// configuration and training state. Two Iatfs with equal hashes
  /// synthesize the same TFs; further training changes the hash, so
  /// DerivedCache entries keyed by it invalidate naturally.
  std::uint64_t params_hash() const;

  /// Serialize the trained IATF — network, input configuration, and
  /// normalization — so it can be shipped to other machines: the paper's
  /// Sec 4.2.3 workflow is to "create an IATF that is suitable for all the
  /// time steps, and send the IATF to parallel systems or remote machines
  /// for rendering". Key frames are not serialized (they are only needed
  /// for further training).
  void save(std::ostream& os) const;

  /// Load a serialized IATF against a (possibly different) sequence of the
  /// same data set. The sequence must span the same value range and step
  /// count the IATF was trained for.
  static std::unique_ptr<Iatf> load(std::istream& is,
                                    const VolumeSequence& sequence);

  /// Serialize the trained network only (not the key frames).
  void save_network(std::ostream& os) const { network_.save(os); }

 private:
  std::vector<double> make_input(double value, double cumhist_fraction,
                                 int step) const;
  void rebuild_training_set();

  const VolumeSequence& sequence_;
  IatfConfig config_;
  int input_width_;
  Mlp network_;
  InputNormalizer normalizer_;
  TrainingSet training_set_;
  Trainer trainer_;
  KeyFrameSet key_frames_;
  // Flat inference engine rebuilt on weight change; evaluate() runs all
  // 256 TF entries as one batch through it. (Scratch is stack-local per
  // evaluate() call so concurrent const evaluations stay race-free.)
  FlatMlpCache flat_cache_;
};

}  // namespace ifet
