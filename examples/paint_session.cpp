// Interactive-interface demo (paper Sec 6 / Fig 11), scripted headlessly:
// the "scientist" paints feature and background strokes on axis-aligned
// slices, training runs in the idle loop with live feedback, a small
// unwanted feature is box-selected as negative, and finally a data
// property is dropped — the network shrinks while keeping its learned
// weights ("the user interface hides all these").
//
// Run:  ./paint_session [--out=DIR]
#include <filesystem>
#include <iostream>

#include "flowsim/datasets.hpp"
#include "session/session.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace ifet;
  CliArgs args(argc, argv);
  const std::string out_dir = args.get("out", "example_out");
  std::filesystem::create_directories(out_dir);

  // A reionization step: large structures worth keeping, tiny ones not.
  ReionizationConfig config;
  config.dims = Dims{48, 48, 48};
  config.num_steps = 400;
  config.num_small_features = 80;
  auto source = std::make_shared<ReionizationSource>(config);
  CachedSequence sequence(source, 4);
  PaintingSession session(sequence);
  const int t = 310;

  // The scientist looks at slice z=24 and brushes over a large structure
  // (feature class) and over empty space (background class).
  PaintStroke feature_brush;
  feature_brush.axis = 2;
  feature_brush.slice = 24;
  feature_brush.certainty = 1.0;
  feature_brush.radius = 2.5;
  // Find a bright in-slice spot to paint (the GUI user just sees it).
  const VolumeF& volume = sequence.step(t);
  int bu = 0, bv = 0;
  float best = -1.0f;
  for (int j = 4; j < 44; ++j) {
    for (int i = 4; i < 44; ++i) {
      if (volume.at(i, j, 24) > best) {
        best = volume.at(i, j, 24);
        bu = i;
        bv = j;
      }
    }
  }
  feature_brush.u = bu;
  feature_brush.v = bv;
  std::size_t painted = session.paint(t, feature_brush);
  std::cout << "painted " << painted << " feature voxels at (" << bu << ","
            << bv << ") on slice z=24 (value " << best << ")\n";

  PaintStroke background_brush = feature_brush;
  background_brush.certainty = 0.0;
  float darkest = 2.0f;
  for (int j = 4; j < 44; ++j) {
    for (int i = 4; i < 44; ++i) {
      if (volume.at(i, j, 24) < darkest) {
        darkest = volume.at(i, j, 24);
        background_brush.u = i;
        background_brush.v = j;
      }
    }
  }
  painted = session.paint(t, background_brush);
  std::cout << "painted " << painted << " background voxels\n";

  // Idle-loop training with feedback after each slot (Sec 6: "the user is
  // able to interactively view the feature extraction results").
  for (int slot = 0; slot < 3; ++slot) {
    double mse = session.train_idle(50.0);
    ImageRgb8 feedback = session.feedback_image(t, 2, 24);
    std::string path = out_dir + "/paint_feedback_" +
                       std::to_string(slot) + ".ppm";
    write_ppm(feedback, path);
    std::cout << "idle slot " << slot << ": MSE " << mse << " -> " << path
              << "\n";
  }

  // A small unwanted blob is easier to select in the feature-volume window
  // than to find on a slice; box-select it as negative (Sec 6).
  std::size_t negatives =
      session.select_unwanted_region(t, Index3{2, 2, 2}, Index3{5, 5, 5});
  std::cout << "box-selected " << negatives << " unwanted voxels\n";
  session.train_idle(50.0);

  // The scientist decides position is irrelevant for this feature and
  // drops it; the network is resized with weight transfer and all painted
  // samples are replayed automatically.
  std::cout << "network inputs before: "
            << session.classifier().network().num_inputs() << "\n";
  FeatureVectorSpec reduced = session.classifier().spec();
  reduced.use_position = false;
  session.set_properties(reduced);
  std::cout << "network inputs after dropping position: "
            << session.classifier().network().num_inputs() << "\n";
  double mse = session.train_idle(100.0);
  std::cout << "retrained after property change, MSE " << mse << "\n";
  return 0;
}
