# Empty compiler generated dependencies file for denoise_reionization.
# This may be replaced when dependencies are built.
