#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/error.hpp"

namespace ifet {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    OrderedMutexLock lock(mutex_);
    if (stopping_) return;  // idempotent; workers already joined or joining
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      OrderedMutexLock lock(mutex_);
      // Explicit wait loop (not the predicate overload): the condition
      // reads guarded state, and this form keeps those reads visibly
      // inside the guarded scope for the thread-safety analysis.
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) return;  // woken for shutdown with nothing queued
      task = std::move(queue_.front());
      queue_.pop();
    }
    task.fn();
  }
}

void ThreadPool::run_tasks(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::atomic<std::size_t> remaining(tasks.size());
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mutex;

  {
    OrderedMutexLock lock(mutex_);
    for (auto& t : tasks) {
      queue_.push(Task{[&, fn = std::move(t)] {
        try {
          fn();
        } catch (...) {  // ifet-lint: allow(catch-all) — captured for rethrow
          std::lock_guard<std::mutex> elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> dlock(done_mutex);
          done_cv.notify_all();
        }
      }});
    }
  }
  cv_.notify_all();

  // The calling thread also drains the queue so that nested parallel calls
  // from within a worker cannot deadlock on an exhausted pool.
  for (;;) {
    Task task;
    {
      OrderedMutexLock lock(mutex_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
      }
    }
    if (task.fn) {
      task.fn();
    } else {
      break;
    }
  }

  std::unique_lock<std::mutex> dlock(done_mutex);
  done_cv.wait(dlock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::post(std::function<void()> fn) {
  IFET_REQUIRE(static_cast<bool>(fn), "ThreadPool::post: empty task");
  if (!try_post(std::move(fn))) {
    throw PoolShutdownError(
        "ThreadPool::post: pool is shutting down; the task was rejected "
        "and will not run (use try_post to race shutdown tolerantly)");
  }
}

bool ThreadPool::try_post(std::function<void()> fn) {
  IFET_REQUIRE(static_cast<bool>(fn), "ThreadPool::try_post: empty task");
  {
    OrderedMutexLock lock(mutex_);
    if (stopping_) return false;
    queue_.push(Task{std::move(fn)});
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::parallel_for_static(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& range_body) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  const std::size_t parts = std::min(workers_.size() + 1, n);
  if (parts <= 1) {
    range_body(begin, end);
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t lo = begin + n * p / parts;
    const std::size_t hi = begin + n * (p + 1) / parts;
    tasks.push_back([lo, hi, &range_body] { range_body(lo, hi); });
  }
  run_tasks(std::move(tasks));
}

void ThreadPool::parallel_for_dynamic(
    std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& range_body) {
  IFET_REQUIRE(chunk > 0, "parallel_for_dynamic requires chunk > 0");
  if (end <= begin) return;
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t workers = workers_.size() + 1;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    tasks.push_back([next, begin, end, chunk, &range_body] {
      (void)begin;
      for (;;) {
        std::size_t lo = next->fetch_add(chunk);
        if (lo >= end) return;
        std::size_t hi = std::min(end, lo + chunk);
        range_body(lo, hi);
      }
    });
  }
  run_tasks(std::move(tasks));
}

namespace {
// ScopedGlobalWidth override: global() consults this before the default
// pool. Plain atomic pointer — scopes are created from one thread only.
std::atomic<ThreadPool*> g_global_override{nullptr};
}  // namespace

ThreadPool& ThreadPool::global() {
  if (ThreadPool* o = g_global_override.load(std::memory_order_acquire)) {
    return *o;
  }
  static ThreadPool pool;
  return pool;
}

ThreadPool::ScopedGlobalWidth::ScopedGlobalWidth(std::size_t num_threads)
    : pool_(num_threads),
      previous_(
          g_global_override.exchange(&pool_, std::memory_order_acq_rel)) {}

ThreadPool::ScopedGlobalWidth::~ScopedGlobalWidth() {
  g_global_override.store(previous_, std::memory_order_release);
  // ~ThreadPool drains and joins pool_ after the override is lifted, so a
  // task that itself calls global() mid-drain sees the restored pool.
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for_static(
      begin, end, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
}

void parallel_for_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& range_body) {
  ThreadPool::global().parallel_for_static(begin, end, range_body);
}

}  // namespace ifet
