#include "util/csv.hpp"

#include "util/error.hpp"

namespace ifet {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  IFET_REQUIRE(out_.good(), "cannot open CSV file for writing: " + path);
  std::string line;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) line += ',';
    line += header[i];
  }
  out_ << line << '\n';
}

void CsvWriter::write_line(const std::string& line) {
  out_ << line << '\n';
  ++rows_;
}

}  // namespace ifet
