// Data-space extraction demo (paper Sec 4.3 / Figs 7-8): suppress hundreds
// of tiny "noise" features whose values overlap the large structures, by
// training a per-voxel classifier on shell feature vectors — something no
// 1D transfer function can do.
//
// Run:  ./denoise_reionization [--out=DIR] [--size=48]
#include <filesystem>
#include <iostream>

#include "core/dataspace.hpp"
#include "eval/metrics.hpp"
#include "flowsim/datasets.hpp"
#include "io/image_io.hpp"
#include "render/raycaster.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {
using namespace ifet;

std::vector<PaintedVoxel> sample_mask(const Mask& mask, int step,
                                      double certainty, std::size_t count,
                                      Rng& rng) {
  std::vector<Index3> candidates;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) candidates.push_back(mask.coord_of(i));
  }
  std::vector<PaintedVoxel> out;
  for (std::size_t s = 0; s < count && !candidates.empty(); ++s) {
    out.push_back(
        {candidates[rng.uniform_index(candidates.size())], step, certainty});
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace ifet;
  CliArgs args(argc, argv);
  const std::string out_dir = args.get("out", "example_out");
  const int size = args.get_int("size", 48);
  std::filesystem::create_directories(out_dir);

  ReionizationConfig config;
  config.dims = Dims{size, size, size};
  config.num_steps = 400;
  auto source = std::make_shared<ReionizationSource>(config);
  const int t = 310;
  VolumeF volume = source->generate(t);
  std::cout << "reionization step " << t << ": "
            << mask_count(source->small_mask(t))
            << " voxels of tiny features, "
            << mask_count(source->large_mask(t))
            << " voxels of large structures\n";

  // "Paint" training samples (in the GUI this is brushing on slices; here
  // we sample the ground-truth masks to stand in for the scientist).
  DataSpaceConfig classifier_config;
  classifier_config.spec.use_time = false;
  DataSpaceClassifier classifier(config.num_steps, 0.0, 1.0,
                                 classifier_config);
  Rng rng(17);
  Mask large = source->large_mask(t);
  Mask small = source->small_mask(t);
  Mask background(volume.dims());
  for (std::size_t i = 0; i < background.size(); ++i) {
    background[i] = (!large[i] && !small[i]) ? 1 : 0;
  }
  std::vector<PaintedVoxel> painted;
  auto append = [&](std::vector<PaintedVoxel> v) {
    painted.insert(painted.end(), v.begin(), v.end());
  };
  append(sample_mask(large, t, 1.0, 500, rng));
  append(sample_mask(small, t, 0.0, 350, rng));
  append(sample_mask(background, t, 0.0, 350, rng));
  classifier.add_samples(volume, t, painted);
  double mse = classifier.train(400);
  std::cout << "classifier trained on " << classifier.training_samples()
            << " painted voxels (shell radius "
            << classifier.shell_radius() << "), MSE " << mse << "\n";

  Mask extracted = classifier.classify_mask(volume, t, 0.5);
  std::cout << "small-feature leakage: " << coverage(extracted, small)
            << ", large-structure recall: " << coverage(extracted, large)
            << "\n";

  // Render before/after: opacity from a plain TF vs the same TF gated by
  // the classifier (certainty as an opacity mask, per Sec 7).
  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.35, 1.0, 0.7);
  RenderSettings settings;
  settings.width = 220;
  settings.height = 220;
  Raycaster caster(settings);
  Camera camera(0.5, 0.4, 2.4);

  write_ppm(caster.render(volume, tf, ColorMap(), camera),
            out_dir + "/reionization_before.ppm");
  // After: zero out unclassified voxels (the extraction, as a volume).
  VolumeF extracted_field(volume.dims());
  for (std::size_t i = 0; i < volume.size(); ++i) {
    extracted_field[i] = extracted[i] ? volume[i] : 0.0f;
  }
  write_ppm(caster.render(extracted_field, tf, ColorMap(), camera),
            out_dir + "/reionization_after.ppm");
  std::cout << "wrote " << out_dir << "/reionization_{before,after}.ppm\n";
  return 0;
}
