// Smoothing filters. Repeated Gaussian smoothing is the "conventional
// filtering method" baseline of Fig 7: it removes small features but
// destroys fine detail on the large structures — exactly the failure mode
// the learning-based extraction avoids.
#pragma once

#include "volume/volume.hpp"

namespace ifet {

/// Separable Gaussian blur with the given standard deviation (in voxels).
/// Kernel radius is ceil(3*sigma); edges clamp.
VolumeF gaussian_blur(const VolumeF& volume, double sigma);

/// Apply `iterations` rounds of Gaussian smoothing (the Fig 7 baseline of
/// "repeatedly smooth the data").
VolumeF repeated_smooth(const VolumeF& volume, double sigma, int iterations);

/// 3x3x3 box blur (cheap pre-filter used by some generators).
VolumeF box_blur3(const VolumeF& volume);

}  // namespace ifet
