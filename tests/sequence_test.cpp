#include <gtest/gtest.h>

#include <memory>

#include "test_helpers.hpp"
#include "util/error.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

std::shared_ptr<CallbackSource> counter_source(Dims d, int steps) {
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d](int step) {
        VolumeF v(d);
        v.fill(static_cast<float>(step) /
               100.0f);  // distinct content per step
        return v;
      });
}

TEST(VolumeSequence, GeneratesRequestedStep) {
  CachedSequence seq(counter_source(Dims{4, 4, 4}, 10), 2);
  EXPECT_FLOAT_EQ(seq.step(3).at(0, 0, 0), 0.03f);
  EXPECT_FLOAT_EQ(seq.step(7).at(1, 2, 3), 0.07f);
  EXPECT_EQ(seq.num_steps(), 10);
}

TEST(VolumeSequence, StepOutOfRangeThrows) {
  CachedSequence seq(counter_source(Dims{4, 4, 4}, 5), 2);
  EXPECT_THROW(seq.step(-1), Error);
  EXPECT_THROW(seq.step(5), Error);
}

TEST(VolumeSequence, CacheHitAvoidsRegeneration) {
  CachedSequence seq(counter_source(Dims{4, 4, 4}, 10), 3);
  seq.step(0);
  seq.step(1);
  EXPECT_EQ(seq.generation_count(), 2u);
  seq.step(0);
  seq.step(1);
  EXPECT_EQ(seq.generation_count(), 2u);
}

TEST(VolumeSequence, LruEvictsLeastRecentlyUsed) {
  CachedSequence seq(counter_source(Dims{4, 4, 4}, 10), 2);
  seq.step(0);
  seq.step(1);
  seq.step(0);  // 0 is now most recent
  seq.step(2);  // evicts 1
  EXPECT_EQ(seq.generation_count(), 3u);
  seq.step(0);  // still cached
  EXPECT_EQ(seq.generation_count(), 3u);
  seq.step(1);  // was evicted -> regenerated
  EXPECT_EQ(seq.generation_count(), 4u);
}

TEST(VolumeSequence, CapacityOfOneStillWorks) {
  CachedSequence seq(counter_source(Dims{4, 4, 4}, 4), 1);
  for (int s = 0; s < 4; ++s) {
    EXPECT_FLOAT_EQ(seq.step(s).at(0, 0, 0), 0.01f * s);
  }
  EXPECT_EQ(seq.generation_count(), 4u);
}

TEST(VolumeSequence, CumulativeHistogramPerStep) {
  auto source = std::make_shared<CallbackSource>(
      Dims{8, 8, 8}, 2, std::pair<double, double>{0.0, 1.0}, [](int step) {
        // Step 0: all 0.25; step 1: all 0.75.
        return VolumeF(Dims{8, 8, 8}, step == 0 ? 0.25f : 0.75f);
      });
  CachedSequence seq(source, 2, 64);
  EXPECT_NEAR(seq.cumulative_histogram(0).fraction_at(0.5), 1.0, 1e-12);
  EXPECT_NEAR(seq.cumulative_histogram(1).fraction_at(0.5), 0.0, 1e-12);
}

TEST(VolumeSequence, HistogramUsesGlobalRange) {
  CachedSequence seq(counter_source(Dims{4, 4, 4}, 3), 2, 32);
  Histogram h = seq.histogram(1);
  EXPECT_EQ(h.total(), 64u);
  EXPECT_DOUBLE_EQ(h.lo(), 0.0);
  EXPECT_DOUBLE_EQ(h.hi(), 1.0);
}

TEST(VolumeSequence, RejectsNullAndEmptySources) {
  EXPECT_THROW(CachedSequence(nullptr, 2), Error);
  auto empty = std::make_shared<CallbackSource>(
      Dims{4, 4, 4}, 0, std::pair<double, double>{0.0, 1.0},
      [](int) { return VolumeF(Dims{4, 4, 4}); });
  EXPECT_THROW(CachedSequence(empty, 2), Error);
}

TEST(VolumeSequence, DetectsWrongSourceDims) {
  auto liar = std::make_shared<CallbackSource>(
      Dims{4, 4, 4}, 3, std::pair<double, double>{0.0, 1.0},
      [](int) { return VolumeF(Dims{5, 5, 5}); });
  CachedSequence seq(liar, 2);
  EXPECT_THROW(seq.step(0), Error);
}

}  // namespace
}  // namespace ifet
