// Fixture (should FAIL): only src/io and src/stream may decode directly.
#include <string>

void warm(const std::string& path) { auto v = read_vol(path); }
