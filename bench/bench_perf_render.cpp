// Section 7 performance reproduction: rendering rates.
//
// Paper (GeForce 6800 GT): 6 fps for a 256^3 volume into a 512^2 window
// with the adaptive transfer function recalculated every frame and shading
// on; 4 fps when the tracked feature is rendered on top (multi-pass).
//
// Our renderer is a CPU ray caster, so absolute fps differ; what must
// reproduce is the *structure* of the costs: per-frame IATF recalculation
// is negligible next to the rendering itself, and the highlight overlay
// costs a modest constant factor (paper: 6 -> 4 fps, i.e. 1.5x).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <string_view>
#include <thread>
#include <vector>

#include "core/iatf.hpp"
#include "flowsim/datasets.hpp"
#include "parallel/thread_pool.hpp"
#include "render/raycaster.hpp"
#include "util/alloc_guard.hpp"
#include "util/determinism.hpp"
#include "util/timer.hpp"
#include "volume/ops.hpp"

// Counting operator new/delete for this binary so the steady-state check
// below can assert zero allocations in the ray loop (docs/STATIC_ANALYSIS.md).
IFET_ALLOC_GUARD_INSTALL();

namespace {

using namespace ifet;

struct RenderFixture {
  RenderFixture() {
    ArgonBubbleConfig cfg;
    cfg.dims = Dims{64, 64, 64};
    cfg.num_steps = 360;
    source = std::make_shared<ArgonBubbleSource>(cfg);
    sequence = std::make_unique<CachedSequence>(source, 4, 256);
    volume = source->generate(225);

    auto [vlo, vhi] = sequence->value_range();
    TransferFunction1D key(vlo, vhi);
    double c = source->ring_band_center(195);
    double h = source->ring_band_half_width();
    key.add_band(c - h, c + h, 1.0, 0.5 * h);
    iatf = std::make_unique<Iatf>(*sequence);
    iatf->add_key_frame(195, key);
    TransferFunction1D key2(vlo, vhi);
    c = source->ring_band_center(255);
    key2.add_band(c - h, c + h, 1.0, 0.5 * h);
    iatf->add_key_frame(255, key2);
    iatf->train(300);

    tf = std::make_unique<TransferFunction1D>(iatf->evaluate(225));
    mask = std::make_unique<Mask>(threshold_mask(volume, (float)(c - h),
                                                 (float)(c + h)));
  }

  std::shared_ptr<ArgonBubbleSource> source;
  std::unique_ptr<VolumeSequence> sequence;
  VolumeF volume;
  std::unique_ptr<Iatf> iatf;
  std::unique_ptr<TransferFunction1D> tf;
  std::unique_ptr<Mask> mask;
};

RenderFixture& fixture() {
  static RenderFixture f;
  return f;
}

RenderSettings settings_for(int image_size, bool shading) {
  RenderSettings s;
  s.width = image_size;
  s.height = image_size;
  s.shading = shading;
  return s;
}

/// Paper Sec 7 paragraph 2: shaded rendering, IATF recalculated per frame.
void BM_RenderShadedWithIatfRecalc(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int size = static_cast<int>(state.range(0));
  Raycaster caster(settings_for(size, true));
  Camera camera(0.5, 0.35, 2.4);
  for (auto _ : state) {
    TransferFunction1D frame_tf = f.iatf->evaluate(225);  // per frame!
    ImageRgb8 img =
        caster.render(f.volume, frame_tf, ColorMap(), camera);
    benchmark::DoNotOptimize(img.pixels.data());
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RenderShadedWithIatfRecalc)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// The same frame without the per-frame IATF evaluation: the difference is
/// the cost of the paper's "adaptive transfer function recalculated every
/// frame" — which must be negligible.
void BM_RenderShadedStaticTf(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int size = static_cast<int>(state.range(0));
  Raycaster caster(settings_for(size, true));
  Camera camera(0.5, 0.35, 2.4);
  for (auto _ : state) {
    ImageRgb8 img = caster.render(f.volume, *f.tf, ColorMap(), camera);
    benchmark::DoNotOptimize(img.pixels.data());
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RenderShadedStaticTf)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Paper Sec 7 paragraph 3: the feature-tracking overlay pass (region-
/// growing texture consulted per sample, tracked voxels drawn red).
void BM_RenderWithTrackingOverlay(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int size = static_cast<int>(state.range(0));
  Raycaster caster(settings_for(size, true));
  Camera camera(0.5, 0.35, 2.4);
  HighlightLayer layer{f.mask.get(), f.tf.get(), Rgb{0.9, 0.05, 0.05}};
  for (auto _ : state) {
    ImageRgb8 img =
        caster.render(f.volume, *f.tf, ColorMap(), camera, &layer);
    benchmark::DoNotOptimize(img.pixels.data());
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RenderWithTrackingOverlay)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// IATF evaluation alone (the "sub-seconds per step" claim of Sec 5):
/// synthesizing the 256-entry TF for a step whose cumulative histogram is
/// resident. Cycles over a working set that fits the sequence cache so the
/// measurement isolates network evaluation, not volume regeneration.
void BM_IatfEvaluatePerStep(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int steps[] = {195, 225, 255};
  // Warm the cumulative-histogram cache.
  for (int s : steps) f.iatf->evaluate(s);
  int i = 0;
  for (auto _ : state) {
    TransferFunction1D tf = f.iatf->evaluate(steps[i]);
    benchmark::DoNotOptimize(tf.opacity_entry(0));
    i = (i + 1) % 3;
  }
}
BENCHMARK(BM_IatfEvaluatePerStep)->Unit(benchmark::kMicrosecond);

/// Unshaded rendering, for the shading-cost factor.
void BM_RenderUnshaded(benchmark::State& state) {
  RenderFixture& f = fixture();
  const int size = static_cast<int>(state.range(0));
  Raycaster caster(settings_for(size, false));
  Camera camera(0.5, 0.35, 2.4);
  for (auto _ : state) {
    ImageRgb8 img = caster.render(f.volume, *f.tf, ColorMap(), camera);
    benchmark::DoNotOptimize(img.pixels.data());
  }
}
BENCHMARK(BM_RenderUnshaded)->Arg(128)->Unit(benchmark::kMillisecond);

/// Steady-state contract on the IFET_HOT ray loop: once a frame's Plan and
/// destination image exist, Raycaster::render_rows must march every row
/// with zero heap allocations (render() itself allocates the image and the
/// pool's task plumbing, so the check drives the row kernel directly), and
/// the row-kernel image must be bitwise identical to the render() output.
int check_render_rows_contract() {
  RenderFixture& f = fixture();
  Camera camera(0.5, 0.35, 2.4);
  ColorMap colors;
  HighlightLayer layer{f.mask.get(), f.tf.get(), Rgb{0.9, 0.05, 0.05}};

  RenderSettings shaded = settings_for(96, true);
  RenderSettings mip = settings_for(96, false);
  mip.mode = CompositingMode::kMaximumIntensity;
  struct Variant {
    const char* name;
    const RenderSettings* settings;
    const HighlightLayer* highlight;
  };
  const Variant variants[] = {
      {"front-to-back shaded", &shaded, nullptr},
      {"tracking overlay", &shaded, &layer},
      {"maximum intensity", &mip, nullptr},
  };

  for (const Variant& v : variants) {
    Raycaster caster(*v.settings);
    const ImageRgb8 pooled =
        caster.render(f.volume, *f.tf, colors, camera, v.highlight);
    const Raycaster::Plan plan =
        caster.prepare_plan(f.volume, *f.tf, colors, camera, v.highlight);
    ImageRgb8 direct(v.settings->width, v.settings->height);
    Raycaster::RenderRowCounters warm;
    caster.render_rows(plan, 0, v.settings->height, direct, warm);
    if (pooled.pixels.size() != direct.pixels.size() ||
        std::memcmp(pooled.pixels.data(), direct.pixels.data(),
                    pooled.pixels.size()) != 0) {
      std::cerr << "bench_perf_render: render_rows image for '" << v.name
                << "' is NOT bitwise identical to render()\n";
      return 1;
    }
    if (warm.samples == 0) {
      std::cerr << "bench_perf_render: '" << v.name
                << "' marched no samples; the check is vacuous\n";
      return 1;
    }
    DenyAllocScope guard;
    Raycaster::RenderRowCounters steady;
    caster.render_rows(plan, 0, v.settings->height, direct, steady);
    if (guard.allocations() != 0) {
      std::cerr << "bench_perf_render: warm render_rows for '" << v.name
                << "' performed " << guard.allocations()
                << " heap allocations (expected 0)\n";
      return 1;
    }
  }
  std::cout << "alloc check: warm Raycaster::render_rows made 0 heap "
               "allocations across 3 variants, bitwise equal to render()\n";
  return 0;
}

/// One skip-vs-scalar comparison: renders the scene with empty-space
/// skipping on and off and memcmps the images. Returns false (and prints)
/// on any pixel difference.
bool skip_matches_scalar(const RenderSettings& base, const VolumeF& volume,
                         const TransferFunction1D& tf, const ColorMap& colors,
                         const Camera& camera, const HighlightLayer* highlight,
                         const char* name, RenderStats* skip_stats = nullptr) {
  RenderSettings with = base, without = base;
  with.empty_space_skipping = true;
  without.empty_space_skipping = false;
  const ImageRgb8 skipped = Raycaster(with).render(volume, tf, colors, camera,
                                                   highlight, skip_stats);
  const ImageRgb8 scalar =
      Raycaster(without).render(volume, tf, colors, camera, highlight);
  if (skipped.pixels.size() != scalar.pixels.size() ||
      std::memcmp(skipped.pixels.data(), scalar.pixels.data(),
                  skipped.pixels.size()) != 0) {
    std::cerr << "bench_perf_render: brick-skipping image for '" << name
              << "' is NOT bitwise identical to the scalar march\n";
    return false;
  }
  return true;
}

/// Brick-skipping equivalence across all three compositing variants on the
/// 64^3 fixture (fast enough for a sanitizer stage): the SoA packet +
/// empty-space-skip path must reproduce the scalar march bit for bit.
int check_skip_equivalence() {
  RenderFixture& f = fixture();
  Camera camera(0.5, 0.35, 2.4);
  ColorMap colors;
  HighlightLayer layer{f.mask.get(), f.tf.get(), Rgb{0.9, 0.05, 0.05}};

  RenderSettings shaded = settings_for(96, true);
  RenderSettings mip = settings_for(96, false);
  mip.mode = CompositingMode::kMaximumIntensity;
  if (!skip_matches_scalar(shaded, f.volume, *f.tf, colors, camera, nullptr,
                           "front-to-back shaded") ||
      !skip_matches_scalar(shaded, f.volume, *f.tf, colors, camera, &layer,
                           "tracking overlay") ||
      !skip_matches_scalar(mip, f.volume, *f.tf, colors, camera, nullptr,
                           "maximum intensity")) {
    return 1;
  }
  std::cout << "equivalence check: empty-space skipping is bitwise equal to "
               "the scalar march across 3 variants\n";
  return 0;
}

/// Perturbed-replay check on the IFET_DETERMINISTIC render kernels
/// (util/determinism.hpp): all three compositing variants (front-to-back
/// shaded, tracking overlay, maximum intensity) must produce
/// bitwise-identical frames across pool widths {1, 4, hardware}, cold and
/// warm caches, and shuffled row-chunk submission through render_rows.
int run_replay_check() {
  RenderFixture& f = fixture();
  Camera camera(0.5, 0.35, 2.4);
  ColorMap colors;
  HighlightLayer layer{f.mask.get(), f.tf.get(), Rgb{0.9, 0.05, 0.05}};

  RenderSettings shaded = settings_for(96, true);
  RenderSettings mip = settings_for(96, false);
  mip.mode = CompositingMode::kMaximumIntensity;
  struct Variant {
    const RenderSettings* settings;
    const HighlightLayer* highlight;
  };
  const Variant variants[] = {
      {&shaded, nullptr}, {&shaded, &layer}, {&mip, nullptr}};

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  ReplayCheck check("raycaster_variants", {1, 4, hw});
  ReplayReport report = check.run([&](const ReplayTrial& trial) {
    ThreadPool::ScopedGlobalWidth width(trial.threads);
    DigestSink sink;
    for (const Variant& v : variants) {
      Raycaster caster(*v.settings);
      // Pooled frame: the global pool splits rows differently at every
      // width; the pixels must not notice.
      const ImageRgb8 pooled =
          caster.render(f.volume, *f.tf, colors, camera, v.highlight);
      sink.span(pooled.pixels.data(), pooled.pixels.size());
      // Row-kernel frame, chunks marched in a deterministic shuffle when
      // the trial asks for it: rows only write their own pixels, so the
      // visit order must be invisible.
      const Raycaster::Plan plan =
          caster.prepare_plan(f.volume, *f.tf, colors, camera, v.highlight);
      constexpr int kChunkRows = 8;
      const std::size_t chunks =
          (static_cast<std::size_t>(v.settings->height) + kChunkRows - 1) /
          kChunkRows;
      std::vector<std::size_t> order(chunks);
      std::iota(order.begin(), order.end(), std::size_t{0});
      if (trial.shuffled) order = replay_permutation(chunks, 0xCA57);
      ImageRgb8 direct(v.settings->width, v.settings->height);
      Raycaster::RenderRowCounters counters;
      for (const std::size_t c : order) {
        const int lo = static_cast<int>(c) * kChunkRows;
        const int hi = std::min(lo + kChunkRows, v.settings->height);
        caster.render_rows(plan, lo, hi, direct, counters);
      }
      sink.span(direct.pixels.data(), direct.pixels.size());
    }
    return sink.value();
  });
  std::cout << report.summary();
  return report.ok ? 0 : 1;
}

/// Median frame time over `reps` full render_step() calls against a warm
/// sequence: the product configuration, where brick metadata comes from
/// ingest (or the sequence memo), never a per-frame volume pass. Per-frame
/// TF classification IS included — it recurs every frame.
double frame_time_p50(const Raycaster& caster, const VolumeSequence& sequence,
                      const TransferFunction1D& tf, const ColorMap& colors,
                      const Camera& camera) {
  constexpr int kReps = 7;
  std::vector<double> seconds;
  seconds.reserve(kReps);
  for (int r = 0; r < kReps; ++r) {
    Stopwatch timer;
    ImageRgb8 img = caster.render_step(sequence, 0, tf, colors, camera,
                                       nullptr, nullptr,
                                       /*prefetch_next=*/false);
    benchmark::DoNotOptimize(img.pixels.data());
    seconds.push_back(timer.seconds());
  }
  std::sort(seconds.begin(), seconds.end());
  return seconds[kReps / 2];
}

/// The perf contract of the brick overhaul, on a TF-sparse 128^3 scene
/// (the argon ring occupies a thin shell, so most bricks classify empty):
/// bitwise-identical frames across all variants AND a >= 2x median
/// frame-time speedup, reported machine-readably. Nonzero exit on image
/// mismatch, like bench_perf_classify's parity gate.
int write_render_report(const char* path) {
  ArgonBubbleConfig cfg;
  cfg.dims = Dims{128, 128, 128};
  cfg.num_steps = 360;
  ArgonBubbleSource source(cfg);
  const VolumeF volume = source.generate(225);
  auto [vlo, vhi] = source.value_range();
  TransferFunction1D tf(vlo, vhi);
  const double c = source.ring_band_center(225);
  const double h = source.ring_band_half_width();
  tf.add_band(c - h, c + h, 1.0, 0.5 * h);
  const Mask mask = threshold_mask(volume, (float)(c - h), (float)(c + h));
  const ColorMap colors;
  const Camera camera(0.5, 0.35, 2.4);

  RenderSettings shaded = settings_for(128, true);
  // Half-voxel sampling: the quality setting for shaded stills. The skip
  // condition is step-size independent (bricks are clipped analytically),
  // so finer marching only grows the work the clip removes.
  shaded.step_voxels = 0.5;
  RenderSettings mip = settings_for(128, false);
  mip.mode = CompositingMode::kMaximumIntensity;
  mip.step_voxels = 0.5;
  HighlightLayer layer{&mask, &tf, Rgb{0.9, 0.05, 0.05}};
  RenderStats stats;
  if (!skip_matches_scalar(shaded, volume, tf, colors, camera, nullptr,
                           "front-to-back shaded 128^3", &stats) ||
      !skip_matches_scalar(shaded, volume, tf, colors, camera, &layer,
                           "tracking overlay 128^3") ||
      !skip_matches_scalar(mip, volume, tf, colors, camera, nullptr,
                           "maximum intensity 128^3")) {
    return 1;
  }

  // The steady-state frame loop renders through a sequence, as the session
  // layer does: the decoded step and its brick index are resident after the
  // first frame (on v2 containers the index additionally arrives from disk
  // without a payload decode), so per-frame work is classification +
  // marching — not index construction.
  auto frame_source = std::make_shared<CallbackSource>(
      cfg.dims, 1, source.value_range(),
      [&volume](int) { return volume; });
  CachedSequence sequence(frame_source, 1);
  RenderSettings scalar_settings = shaded;
  scalar_settings.empty_space_skipping = false;
  const Raycaster skip_caster(shaded);
  const Raycaster scalar_caster(scalar_settings);
  // One warm-up pass each (decodes the step, memoizes the brick index),
  // then the medians.
  (void)frame_time_p50(scalar_caster, sequence, tf, colors, camera);
  (void)frame_time_p50(skip_caster, sequence, tf, colors, camera);
  const double scalar_p50 =
      frame_time_p50(scalar_caster, sequence, tf, colors, camera);
  const double skip_p50 =
      frame_time_p50(skip_caster, sequence, tf, colors, camera);
  const double speedup = scalar_p50 / skip_p50;

  std::ofstream json(path);
  json << "{\n"
       << "  \"case\": \"argon_bubble_128_tf_sparse\",\n"
       << "  \"grid\": [128, 128, 128],\n"
       << "  \"image_size\": 128,\n"
       << "  \"step_voxels\": 0.5,\n"
       << "  \"frame_ms_p50_scalar\": " << scalar_p50 * 1e3 << ",\n"
       << "  \"frame_ms_p50_skip\": " << skip_p50 * 1e3 << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"skip_rate\": " << stats.skip_rate() << ",\n"
       << "  \"bricks_total\": " << stats.bricks_total << ",\n"
       << "  \"bricks_active\": " << stats.bricks_active << ",\n"
       << "  \"threads\": " << ThreadPool::global().size() << ",\n"
       << "  \"bitwise_identical\": true\n"
       << "}\n";
  std::cout << "render report: scalar " << scalar_p50 * 1e3 << " ms, skip "
            << skip_p50 * 1e3 << " ms, speedup " << speedup << "x, skip rate "
            << stats.skip_rate() << " -> " << path << "\n";
  return 0;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): after the google-benchmark run
// (skippable with --render-check-only; --equiv-check-only runs just the
// fast skip-vs-scalar parity gate, --replay-check-only just the perturbed
// determinism replay) the binary verifies the row-kernel allocation
// contract, the perturbed-replay determinism contract, and the
// empty-space-skipping bitwise contract, then writes BENCH_render.json —
// so CI gates on the hot ray loop staying heap-free, the brick path
// staying bitwise faithful, and the speedup.
int main(int argc, char** argv) {
  bool check_only = false;
  bool equiv_only = false;
  bool replay_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--render-check-only") {
      check_only = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--equiv-check-only") {
      equiv_only = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--replay-check-only") {
      replay_only = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (replay_only) return run_replay_check();
  if (equiv_only) return check_skip_equivalence();
  if (!check_only) {
    int filtered = static_cast<int>(args.size());
    benchmark::Initialize(&filtered, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered, args.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  const int rows_rc = check_render_rows_contract();
  if (rows_rc != 0) return rows_rc;
  const int replay_rc = run_replay_check();
  if (replay_rc != 0) return replay_rc;
  const int equiv_rc = check_skip_equivalence();
  if (check_only || equiv_rc != 0) return equiv_rc;
  return write_render_report("BENCH_render.json");
}
