# Empty compiler generated dependencies file for bench_tracking_methods.
# This may be replaced when dependencies are built.
