// Deterministic, branch-free exponential for neural-network activations.
//
// std::exp dominates per-voxel classification cost (a sigmoid per network
// unit, ~13 calls per voxel for the default data-space topology), and the
// libm call cannot be vectorized across a batch. fast_exp is a fixed
// sequence of IEEE-754 double operations — clamp, Cody–Waite range
// reduction, degree-11 Taylor polynomial, exponent-bit scaling — with no
// data-dependent branches, so the compiler can evaluate it lane-parallel
// inside batched loops while the scalar reference path computes the very
// same bits one value at a time.
//
// Determinism contract: every operation below is an IEEE basic operation
// (+, -, *, /, min, max) or a bit-level reinterpretation, so the result is
// bit-identical across scalar and SIMD evaluation of the same input — as
// long as the translation unit does not contract a*b + c into fused
// multiply-adds (build with -ffp-contract=off when targeting FMA-capable
// ISAs; see src/nn/CMakeLists.txt and docs/PERFORMANCE.md).
//
// Accuracy: |fast_exp(x)/exp(x) - 1| < 1e-13 over the non-saturated range
// (Cody–Waite reduction to |r| <= ln(2)/2; the degree-11 Taylor tail is
// ~6e-15 there). This is an activation-function exponential, NOT a libm
// replacement: inputs are clamped to ±700 first, so fast_exp(x) saturates
// at exp(±700) (~9.9e-305 / 1.0e304) instead of reaching subnormals or
// infinity. Sigmoids built on it are exact to ~1 ulp of 0/1 at the clamp,
// which is far below any effect on training or classification.
#pragma once

#include <bit>
#include <cstdint>

namespace ifet {

/// Branch-free exp(x) clamped to x in [-700, 700]; NaN propagates.
inline double fast_exp(double x) {
  // Saturate so the 2^k exponent scaling below stays in the normal range
  // (|k| <= 1010 < 1022). Value ternaries rather than std::min/max: the
  // reference-returning forms block the vectorizer's if-conversion, these
  // compile to minsd/maxsd. NaN fails both comparisons and propagates.
  x = x > 700.0 ? 700.0 : x;
  x = x < -700.0 ? -700.0 : x;

  // Round x/ln(2) to the nearest integer k with the shift trick: adding
  // 1.5*2^52 forces round-to-nearest into the mantissa's low bits, and the
  // integer drops out of the bit pattern by subtraction.
  constexpr double kLog2e = 1.4426950408889634074;  // 1/ln(2)
  constexpr double kShift = 6755399441055744.0;     // 1.5 * 2^52
  const double t = x * kLog2e + kShift;
  const double k = t - kShift;
  const std::int64_t ki =
      std::bit_cast<std::int64_t>(t) - std::bit_cast<std::int64_t>(kShift);

  // Cody–Waite: r = x - k*ln(2) in two exact-ish steps. kLn2Hi has enough
  // trailing zero bits that k*kLn2Hi is exact for |k| <= 2^20.
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  double r = x - k * kLn2Hi;
  r = r - k * kLn2Lo;

  // exp(r) via degree-11 Taylor (Horner), |r| <= ln(2)/2 = 0.3466.
  double p = 1.0 / 39916800.0;            // 1/11!
  p = p * r + 1.0 / 3628800.0;            // 1/10!
  p = p * r + 1.0 / 362880.0;             // 1/9!
  p = p * r + 1.0 / 40320.0;              // 1/8!
  p = p * r + 1.0 / 5040.0;               // 1/7!
  p = p * r + 1.0 / 720.0;                // 1/6!
  p = p * r + 1.0 / 120.0;                // 1/5!
  p = p * r + 1.0 / 24.0;                 // 1/4!
  p = p * r + 1.0 / 6.0;                  // 1/3!
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;

  // Scale by 2^k through the exponent field (k is in the normal range by
  // the clamp above, so no subnormal handling is needed).
  const double scale = std::bit_cast<double>((ki + 1023) << 52);
  return p * scale;
}

/// Logistic sigmoid built on fast_exp; shared by the scalar Mlp forward
/// pass and the batched FlatMlp engine so both produce identical bits.
inline double fast_sigmoid(double x) { return 1.0 / (1.0 + fast_exp(-x)); }

}  // namespace ifet
