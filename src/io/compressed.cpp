#include "io/compressed.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace ifet {

namespace {

constexpr char kMagic[] = "ifet-cseq";

inline std::uint32_t quant_levels(QuantBits bits) {
  return bits == QuantBits::k8 ? 255u : 65535u;
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) out.push_back((v >> (8 * b)) & 0xff);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<std::uint64_t>(p[b]) << (8 * b);
  return v;
}

}  // namespace

CompressedVolume compress_volume(const VolumeF& volume, QuantBits bits) {
  IFET_REQUIRE(!volume.empty(), "compress_volume: empty volume");
  CompressedVolume out;
  out.dims = volume.dims();
  out.bits = bits;
  float lo = volume[0], hi = volume[0];
  for (float v : volume.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  out.value_lo = lo;
  out.value_hi = hi;
  const double span = hi > lo ? hi - lo : 1.0;
  const std::uint32_t levels = quant_levels(bits);

  // Quantize, then run-length encode (run byte 1..255 + sample).
  auto quantize = [&](float v) {
    double t = (v - lo) / span;
    return static_cast<std::uint32_t>(std::lround(t * levels));
  };
  std::uint32_t current = quantize(volume[0]);
  std::uint32_t run = 0;
  auto flush = [&]() {
    while (run > 0) {
      std::uint8_t chunk = static_cast<std::uint8_t>(std::min(run, 255u));
      out.payload.push_back(chunk);
      out.payload.push_back(static_cast<std::uint8_t>(current & 0xff));
      if (bits == QuantBits::k16) {
        out.payload.push_back(static_cast<std::uint8_t>(current >> 8));
      }
      run -= chunk;
    }
  };
  for (float v : volume.data()) {
    std::uint32_t q = quantize(v);
    if (q == current) {
      ++run;
    } else {
      flush();
      current = q;
      run = 1;
    }
  }
  flush();
  return out;
}

VolumeF decompress_volume(const CompressedVolume& compressed) {
  VolumeF out(compressed.dims);
  const double span = compressed.value_hi > compressed.value_lo
                          ? compressed.value_hi - compressed.value_lo
                          : 1.0;
  const std::uint32_t levels = quant_levels(compressed.bits);
  const int sample_bytes = compressed.bits == QuantBits::k8 ? 1 : 2;
  std::size_t cursor = 0;
  std::size_t voxel = 0;
  const auto& payload = compressed.payload;
  while (voxel < out.size()) {
    IFET_REQUIRE(cursor + 1 + sample_bytes <= payload.size(),
                 "decompress_volume: truncated payload");
    std::uint32_t run = payload[cursor++];
    std::uint32_t q = payload[cursor++];
    if (sample_bytes == 2) {
      q |= static_cast<std::uint32_t>(payload[cursor++]) << 8;
    }
    float value = static_cast<float>(
        compressed.value_lo + span * q / static_cast<double>(levels));
    IFET_REQUIRE(voxel + run <= out.size(),
                 "decompress_volume: run overflows volume");
    for (std::uint32_t r = 0; r < run; ++r) out[voxel++] = value;
  }
  IFET_REQUIRE(cursor == payload.size(),
               "decompress_volume: trailing payload bytes");
  return out;
}

double quantization_error_bound(const CompressedVolume& compressed) {
  double span = compressed.value_hi - compressed.value_lo;
  if (span <= 0.0) return 0.0;
  return 0.5 * span / quant_levels(compressed.bits);
}

// --- Sequence container ------------------------------------------------------

struct CompressedSequenceWriter::Impl {
  std::ofstream out;
  std::streampos index_pos;
  std::vector<std::uint8_t> index_bytes;
  int num_steps;
};

CompressedSequenceWriter::CompressedSequenceWriter(
    const std::string& path, Dims dims, int num_steps,
    std::pair<double, double> value_range)
    : impl_(std::make_unique<Impl>()) {
  IFET_REQUIRE(num_steps > 0, "CompressedSequenceWriter: need steps");
  impl_->out.open(path, std::ios::binary);
  IFET_REQUIRE(impl_->out.good(),
               "CompressedSequenceWriter: cannot open " + path);
  impl_->num_steps = num_steps;
  impl_->out << kMagic << ' ' << dims.x << ' ' << dims.y << ' ' << dims.z
             << ' ' << num_steps << ' ' << value_range.first << ' '
             << value_range.second << '\n';
  impl_->index_pos = impl_->out.tellp();
  // Reserve the index region (16 bytes per step), filled in close().
  std::vector<char> zeros(static_cast<std::size_t>(num_steps) * 16, 0);
  impl_->out.write(zeros.data(),
                   static_cast<std::streamsize>(zeros.size()));
}

CompressedSequenceWriter::~CompressedSequenceWriter() {
  if (impl_ && impl_->out.is_open()) {
    if (steps_written_ == impl_->num_steps) {
      close();
    } else {
      // Incomplete sequence: never throw from a destructor; the file is
      // left with a zeroed index, which the reader rejects.
      impl_->out.close();
    }
  }
}

void CompressedSequenceWriter::append(const CompressedVolume& volume) {
  IFET_REQUIRE(steps_written_ < impl_->num_steps,
               "CompressedSequenceWriter: too many steps appended");
  // Per-step record: bits u8, lo f32, hi f32, payload u64 + bytes.
  std::vector<std::uint8_t> record;
  record.push_back(static_cast<std::uint8_t>(volume.bits));
  std::uint8_t fbytes[4];
  std::memcpy(fbytes, &volume.value_lo, 4);
  record.insert(record.end(), fbytes, fbytes + 4);
  std::memcpy(fbytes, &volume.value_hi, 4);
  record.insert(record.end(), fbytes, fbytes + 4);
  append_u64(record, volume.payload.size());
  record.insert(record.end(), volume.payload.begin(), volume.payload.end());

  auto offset = static_cast<std::uint64_t>(impl_->out.tellp());
  impl_->out.write(reinterpret_cast<const char*>(record.data()),
                   static_cast<std::streamsize>(record.size()));
  IFET_REQUIRE(impl_->out.good(), "CompressedSequenceWriter: write failed");
  append_u64(impl_->index_bytes, offset);
  append_u64(impl_->index_bytes, record.size());
  ++steps_written_;
}

void CompressedSequenceWriter::close() {
  IFET_REQUIRE(steps_written_ == impl_->num_steps,
               "CompressedSequenceWriter: closed before all steps appended");
  impl_->out.seekp(impl_->index_pos);
  impl_->out.write(reinterpret_cast<const char*>(impl_->index_bytes.data()),
                   static_cast<std::streamsize>(impl_->index_bytes.size()));
  impl_->out.close();
}

CompressedFileSource::CompressedFileSource(const std::string& path)
    : path_(path) {
  std::ifstream in(path, std::ios::binary);
  IFET_REQUIRE(in.good(), "CompressedFileSource: cannot open " + path);
  std::string line;
  std::getline(in, line);
  std::istringstream header(line);
  std::string magic;
  header >> magic >> dims_.x >> dims_.y >> dims_.z >> num_steps_ >>
      range_.first >> range_.second;
  IFET_REQUIRE(magic == kMagic && header && num_steps_ > 0,
               "CompressedFileSource: bad header in " + path);
  std::vector<std::uint8_t> raw(static_cast<std::size_t>(num_steps_) * 16);
  in.read(reinterpret_cast<char*>(raw.data()),
          static_cast<std::streamsize>(raw.size()));
  IFET_REQUIRE(in.gcount() == static_cast<std::streamsize>(raw.size()),
               "CompressedFileSource: truncated index in " + path);
  index_.resize(static_cast<std::size_t>(num_steps_));
  for (int s = 0; s < num_steps_; ++s) {
    index_[static_cast<std::size_t>(s)].offset =
        read_u64(raw.data() + 16 * s);
    index_[static_cast<std::size_t>(s)].size =
        read_u64(raw.data() + 16 * s + 8);
    IFET_REQUIRE(index_[static_cast<std::size_t>(s)].size > 0,
                 "CompressedFileSource: empty index entry (file not "
                 "finalized?)");
  }
}

VolumeF CompressedFileSource::generate(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps_,
               "CompressedFileSource: step out of range");
  const IndexEntry& entry = index_[static_cast<std::size_t>(step)];
  std::ifstream in(path_, std::ios::binary);
  IFET_REQUIRE(in.good(), "CompressedFileSource: cannot reopen " + path_);
  in.seekg(static_cast<std::streamoff>(entry.offset));
  std::vector<std::uint8_t> record(entry.size);
  in.read(reinterpret_cast<char*>(record.data()),
          static_cast<std::streamsize>(record.size()));
  IFET_REQUIRE(in.gcount() == static_cast<std::streamsize>(record.size()),
               "CompressedFileSource: truncated record");
  IFET_REQUIRE(record.size() >= 17, "CompressedFileSource: record too small");
  CompressedVolume volume;
  volume.dims = dims_;
  volume.bits = static_cast<QuantBits>(record[0]);
  std::memcpy(&volume.value_lo, record.data() + 1, 4);
  std::memcpy(&volume.value_hi, record.data() + 5, 4);
  std::uint64_t payload_size = read_u64(record.data() + 9);
  IFET_REQUIRE(17 + payload_size == record.size(),
               "CompressedFileSource: payload size mismatch");
  volume.payload.assign(record.begin() + 17, record.end());
  return decompress_volume(volume);
}

std::size_t CompressedFileSource::total_payload_bytes() const {
  std::size_t total = 0;
  for (const auto& entry : index_) total += entry.size;
  return total;
}

void write_compressed_sequence(const VolumeSource& source,
                               const std::string& path, QuantBits bits) {
  CompressedSequenceWriter writer(path, source.dims(), source.num_steps(),
                                  source.value_range());
  for (int s = 0; s < source.num_steps(); ++s) {
    writer.append(compress_volume(source.generate(s), bits));
  }
  writer.close();
}

}  // namespace ifet
