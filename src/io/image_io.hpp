// PPM/PGM image output for rendered frames and slice views. Binary
// (P6/P5) variants; enough to inspect every figure reproduction without an
// image library dependency.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ifet {

/// Simple 8-bit RGB image.
struct ImageRgb8 {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> pixels;  // 3 bytes per pixel, row-major

  ImageRgb8() = default;
  ImageRgb8(int w, int h)
      : width(w), height(h),
        pixels(static_cast<std::size_t>(w) * static_cast<std::size_t>(h) * 3,
               0) {}

  void set(int x, int y, std::uint8_t r, std::uint8_t g, std::uint8_t b) {
    std::size_t o = 3 * (static_cast<std::size_t>(y) *
                             static_cast<std::size_t>(width) +
                         static_cast<std::size_t>(x));
    pixels[o] = r;
    pixels[o + 1] = g;
    pixels[o + 2] = b;
  }
};

/// Write binary PPM (P6).
void write_ppm(const ImageRgb8& image, const std::string& path);

/// Write binary PGM (P5) from grayscale bytes.
void write_pgm(const std::vector<std::uint8_t>& gray, int width, int height,
               const std::string& path);

}  // namespace ifet
