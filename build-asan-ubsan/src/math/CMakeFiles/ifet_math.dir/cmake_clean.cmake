file(REMOVE_RECURSE
  "CMakeFiles/ifet_math.dir/mat4.cpp.o"
  "CMakeFiles/ifet_math.dir/mat4.cpp.o.d"
  "CMakeFiles/ifet_math.dir/stats.cpp.o"
  "CMakeFiles/ifet_math.dir/stats.cpp.o.d"
  "libifet_math.a"
  "libifet_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
