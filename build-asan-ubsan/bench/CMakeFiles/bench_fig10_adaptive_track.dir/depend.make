# Empty dependencies file for bench_fig10_adaptive_track.
# This may be replaced when dependencies are built.
