#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

TEST(ThreadPool, RunsAllIndicesExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, StaticRangesCoverWithoutOverlap) {
  ThreadPool pool(4);
  const std::size_t n = 1003;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_static(0, n, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DynamicChunksCoverWithoutOverlap) {
  ThreadPool pool(3);
  const std::size_t n = 777;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_dynamic(0, n, 10, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(hi - lo, 10u);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DynamicRejectsZeroChunk) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_dynamic(0, 10, 0, [](std::size_t, std::size_t) {}),
      Error);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_static(0, 100,
                                        [&](std::size_t lo, std::size_t) {
                                          if (lo == 0) {
                                            throw Error("worker failure");
                                          }
                                        }),
               Error);
}

TEST(ThreadPool, NestedParallelismDoesNotDeadlock) {
  std::atomic<int> total{0};
  parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 50, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 200);
}

TEST(ParallelReduce, SumsCorrectly) {
  const std::size_t n = 100000;
  auto result = parallel_reduce<long long>(
      0, n, 0LL,
      [](long long acc, std::size_t i) {
        return acc + static_cast<long long>(i);
      },
      [](long long a, long long b) { return a + b; });
  EXPECT_EQ(result, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeGivesIdentity) {
  auto result = parallel_reduce<int>(
      10, 10, 42, [](int acc, std::size_t) { return acc + 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(ParallelReduce, MaxReduction) {
  std::vector<double> values(5000);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 2654435761u) % 10007);
  }
  auto result = parallel_reduce<double>(
      0, values.size(), -1.0,
      [&](double acc, std::size_t i) { return std::max(acc, values[i]); },
      [](double a, double b) { return std::max(a, b); });
  EXPECT_EQ(result, *std::max_element(values.begin(), values.end()));
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, ShutdownWhileBusyDrainsPostedTasks) {
  // Destroy the pool while posted tasks are still queued and mid-flight;
  // the destructor contract is that every accepted task runs exactly once
  // before the workers join.
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.post([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, PostRejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.post(std::function<void()>{}), Error);
}

TEST(ThreadPool, PostAfterShutdownThrowsLoudly) {
  // Tasks enqueued during/after shutdown must fail loudly, not vanish: a
  // silently dropped task is a lost prefetch or a hung waiter.
  ThreadPool pool(2);
  pool.shutdown();
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.post([&ran] { ran.fetch_add(1); }), PoolShutdownError);
  EXPECT_EQ(ran.load(), 0);
  // PoolShutdownError is an Error, so existing catch sites stay correct.
  EXPECT_THROW(pool.post([] {}), Error);
}

TEST(ThreadPool, TryPostReportsShutdownWithoutThrowing) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.try_post([&ran] { ran.fetch_add(1); }));
  pool.shutdown();
  EXPECT_FALSE(pool.try_post([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 1);  // accepted task ran, rejected one did not
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // second call is a no-op, not a crash
  EXPECT_THROW(pool.post([] {}), PoolShutdownError);
}

TEST(ThreadPool, DynamicPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_dynamic(0, 100, 5,
                                [&](std::size_t lo, std::size_t) {
                                  if (lo >= 50) throw Error("dynamic failure");
                                }),
      Error);
}

TEST(ThreadPool, ExceptionMessageSurvivesPropagation) {
  ThreadPool pool(2);
  try {
    pool.parallel_for_static(0, 10, [](std::size_t, std::size_t) {
      throw Error("specific failure detail");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("specific failure detail"),
              std::string::npos);
  }
}

TEST(ThreadPool, FirstOfManyExceptionsIsRethrown) {
  // Every range throws; exactly one Error must reach the caller and the
  // pool must swallow the rest without terminating.
  ThreadPool pool(4);
  std::atomic<int> throws{0};
  EXPECT_THROW(pool.parallel_for_static(0, 64,
                                        [&](std::size_t, std::size_t) {
                                          throws.fetch_add(1);
                                          throw Error("range failure");
                                        }),
               Error);
  EXPECT_GT(throws.load(), 0);
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_static(
                   0, 8, [](std::size_t, std::size_t) { throw Error("boom"); }),
               Error);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for_static(0, hits.size(),
                           [&](std::size_t lo, std::size_t hi) {
                             for (std::size_t i = lo; i < hi; ++i) {
                               hits[i].fetch_add(1);
                             }
                           });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedExceptionPropagatesThroughOuterLoop) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for_static(0, 4,
                               [&](std::size_t, std::size_t) {
                                 pool.parallel_for_static(
                                     0, 4, [](std::size_t, std::size_t) {
                                       throw Error("inner failure");
                                     });
                               }),
      Error);
}

}  // namespace
}  // namespace ifet
