#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/ordered_mutex.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ifet {
namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    IFET_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
  }
}

TEST(Error, RequirePassesSilently) {
  EXPECT_NO_THROW(IFET_REQUIRE(2 + 2 == 4, "math works"));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(10);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng a(5);
  Rng b = a.split();
  // The split stream should not replay the parent stream.
  Rng c(5);
  c.next_u64();  // advance past the state consumed by split()
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (b.next_u64() == c.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/ifet_csv_test.csv";
  {
    CsvWriter csv(path, {"a", "b", "c"});
    csv.row(1, 2.5, "x");
    csv.row(3, 4.5, "y");
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b,c");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5,x");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4.5,y");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), Error);
}

TEST(Cli, ParsesOptionsAndPositionals) {
  const char* argv[] = {"prog", "--steps=12", "--verbose", "input.vol",
                        "--rate=0.5"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.has("steps"));
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_FALSE(args.has("missing"));
  EXPECT_EQ(args.get_int("steps", 0), 12);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.vol");
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  std::string text = os.str();
  EXPECT_NE(text.find("longer-name"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
  // Header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Timer, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(w.seconds(), 0.0);
  EXPECT_GE(w.milliseconds(), w.seconds() * 1000.0 * 0.99);
}

// Runtime lock-order validator (docs/STATIC_ANALYSIS.md). The checks live
// behind IFET_CHECKED_ITERATORS (on in the asan-ubsan / tsan presets), so
// plain builds only verify the mutex still locks.
#if defined(IFET_CHECKED_ITERATORS) && IFET_CHECKED_ITERATORS
constexpr bool kRankChecksOn = true;
#else
constexpr bool kRankChecksOn = false;
#endif

TEST(OrderedMutex, AscendingRanksNest) {
  OrderedMutex outer(MutexRank::kStreamedSequence);
  OrderedMutex inner(MutexRank::kThreadPool);
  OrderedMutexLock lock_outer(outer);
  OrderedMutexLock lock_inner(inner);  // 10 -> 90: legal strict increase
  EXPECT_EQ(outer.rank(), MutexRank::kStreamedSequence);
  EXPECT_EQ(inner.rank(), MutexRank::kThreadPool);
}

TEST(OrderedMutex, RankInversionThrows) {
  if (!kRankChecksOn) GTEST_SKIP() << "needs IFET_CHECKED_ITERATORS";
  OrderedMutex outer(MutexRank::kThreadPool);
  OrderedMutex inner(MutexRank::kCacheManager);
  OrderedMutexLock lock_outer(outer);
  EXPECT_THROW({ OrderedMutexLock lock_inner(inner); }, Error);
}

TEST(OrderedMutex, ReentrantAcquisitionThrows) {
  if (!kRankChecksOn) GTEST_SKIP() << "needs IFET_CHECKED_ITERATORS";
  // Equal ranks never nest, so self-re-entry (a guaranteed std::mutex
  // deadlock) reports deterministically instead of hanging.
  OrderedMutex mutex(MutexRank::kDerivedCache);
  OrderedMutex peer(MutexRank::kDerivedCache);
  OrderedMutexLock lock(mutex);
  EXPECT_THROW({ OrderedMutexLock again(peer); }, Error);
}

TEST(OrderedMutex, NonLifoUnlockThrows) {
  if (!kRankChecksOn) GTEST_SKIP() << "needs IFET_CHECKED_ITERATORS";
  OrderedMutex outer(MutexRank::kVolumeStore);
  OrderedMutex inner(MutexRank::kPrefetcher);
  outer.lock();
  inner.lock();
  EXPECT_THROW(outer.unlock(), Error);  // inner is still held
  inner.unlock();
  outer.unlock();
}

TEST(OrderedMutex, HeldStackIsPerThread) {
  // A rank held on this thread must not constrain another thread.
  OrderedMutex low(MutexRank::kStreamedSequence);
  OrderedMutex high(MutexRank::kThreadPool);
  OrderedMutexLock lock_high(high);
  std::thread other([&] {
    OrderedMutexLock lock_low(low);  // fresh thread, empty held stack
  });
  other.join();
}

}  // namespace
}  // namespace ifet
