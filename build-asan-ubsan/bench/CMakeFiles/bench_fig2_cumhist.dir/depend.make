# Empty dependencies file for bench_fig2_cumhist.
# This may be replaced when dependencies are built.
