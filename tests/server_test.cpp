// Multi-tenant server tier (docs/SERVER.md): concurrent sessions over a
// shared streaming tier must be bitwise-indistinguishable from isolated
// single-user runs, derived products must dedup across clients without
// ever leaking across training states, admission must clamp pins (never
// data), and per-client fail policies must compose independently.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "io/checksum.hpp"
#include "server/client_view.hpp"
#include "server/session_manager.hpp"
#include "server/stream_tier.hpp"
#include "stream/fault_injection.hpp"
#include "util/error.hpp"
#include "util/io_error.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

constexpr Dims kDims{8, 8, 8};
constexpr std::size_t kStepBytes =
    static_cast<std::size_t>(8 * 8 * 8) * sizeof(float);

/// A blob drifting +x one voxel per step: structure for IATF synthesis,
/// classification, and tracking alike.
std::shared_ptr<CallbackSource> blob_source(int steps) {
  return std::make_shared<CallbackSource>(
      kDims, steps, std::pair<double, double>{0.0, 1.0}, [](int step) {
        VolumeF v(kDims);
        for (int k = 0; k < kDims.z; ++k) {
          for (int j = 0; j < kDims.y; ++j) {
            for (int i = 0; i < kDims.x; ++i) {
              const double dx = i - (kDims.x / 4 + step);
              const double dy = j - kDims.y / 2;
              const double dz = k - kDims.z / 2;
              const double r2 = dx * dx + dy * dy + dz * dz;
              v.at(i, j, k) =
                  static_cast<float>(clamp(1.0 - r2 / 9.0, 0.0, 1.0));
            }
          }
        }
        return v;
      });
}

std::uint32_t volume_crc(const VolumeF& v) {
  auto data = v.data();
  return crc32(data.data(), data.size() * sizeof(float));
}

/// The canonical scripted client: window, key frame, TF training, TF and
/// histogram queries, painting, classifier training, classification,
/// adaptive tracking, rendering. Deterministic end to end (epoch-counted
/// training only).
std::vector<Command> canonical_script(int steps) {
  std::vector<Command> script;
  Command c;

  c.kind = CommandKind::kHintWindow;
  c.window_lo = 0;
  c.window_hi = 2;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kSetKeyFrame;
  c.step = 0;
  c.band_lo = 0.55;
  c.band_hi = 1.0;
  c.band_peak = 0.95;
  c.band_skirt = 0.05;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kTrainTf;
  c.epochs = 20;
  script.push_back(c);

  for (int s = 0; s < steps; ++s) {
    c = Command{};
    c.kind = CommandKind::kQueryTf;
    c.step = s;
    script.push_back(c);
    c.kind = CommandKind::kHistogram;
    script.push_back(c);
  }

  c = Command{};
  c.kind = CommandKind::kPaint;
  c.step = 1;
  c.stroke.axis = 2;
  c.stroke.slice = kDims.z / 2;
  c.stroke.u = kDims.x / 4 + 1;
  c.stroke.v = kDims.y / 2;
  c.stroke.radius = 1.5;
  c.stroke.certainty = 1.0;
  script.push_back(c);

  c.stroke.u = kDims.x - 1;
  c.stroke.v = kDims.y - 1;
  c.stroke.radius = 1.0;
  c.stroke.certainty = 0.0;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kTrainClassifier;
  c.epochs = 10;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kClassify;
  c.step = 1;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kTrack;
  c.step = 1;
  c.seed = Index3{kDims.x / 4 + 1, kDims.y / 2, kDims.z / 2};
  c.opacity_cut = 0.25;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kRender;
  c.step = 1;
  c.image_size = 24;
  script.push_back(c);

  return script;
}

// ---------------------------------------------------------------------------
// The headline contract: N concurrent clients on one tight-budget tier
// produce results bitwise identical to each client running alone on an
// unlimited-budget tier. Admission shapes residency, never data.

TEST(SessionManager, TwoClientsBitwiseMatchIsolated) {
  const int steps = 6;
  const std::vector<Command> script = canonical_script(steps);

  SessionManagerConfig shared_config;
  shared_config.tier.budget_bytes = 3 * kStepBytes;  // tight: 3 of 6 steps
  shared_config.tier.pin_quota_bytes = 2 * kStepBytes;
  shared_config.tier.async_prefetch = true;
  shared_config.command_threads = 4;

  std::vector<std::vector<ServerResult>> shared(
      2, std::vector<ServerResult>(script.size()));
  {
    SessionManager manager(blob_source(steps), shared_config);
    const int a = manager.create_session();
    const int b = manager.create_session();
    for (std::size_t i = 0; i < script.size(); ++i) {
      manager.submit(a, script[i], [&shared, i](const ServerResult& r) {
        shared[0][i] = r;
      });
      manager.submit(b, script[i], [&shared, i](const ServerResult& r) {
        shared[1][i] = r;
      });
    }
    manager.drain_all();
  }

  // Isolated references: one manager per client, unlimited budget, serial.
  for (int client = 0; client < 2; ++client) {
    SessionManagerConfig iso_config;  // budget 0 = fully resident
    SessionManager manager(blob_source(steps), iso_config);
    const int id = manager.create_session();
    for (std::size_t i = 0; i < script.size(); ++i) {
      const ServerResult reference = manager.execute(id, script[i]);
      SCOPED_TRACE("client " + std::to_string(client) + " command " +
                   std::to_string(i));
      EXPECT_EQ(shared[static_cast<std::size_t>(client)][i].ok, reference.ok);
      EXPECT_EQ(shared[static_cast<std::size_t>(client)][i].digest,
                reference.digest);
      EXPECT_EQ(shared[static_cast<std::size_t>(client)][i].value,
                reference.value);
      EXPECT_TRUE(reference.ok) << reference.error;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-client dedup: identical sessions share derived products.

TEST(SessionManager, CrossClientDedupTfRequests) {
  const int steps = 4;
  SessionManager manager(blob_source(steps), {});
  const int a = manager.create_session();
  const int b = manager.create_session();

  Command key;
  key.kind = CommandKind::kSetKeyFrame;
  key.step = 0;
  Command query;
  query.kind = CommandKind::kQueryTf;

  // Same state (identical seeds, no training): one computes, one hits.
  ASSERT_TRUE(manager.execute(a, key).ok);
  ASSERT_TRUE(manager.execute(b, key).ok);
  const std::uint64_t a_misses_before = manager.session_stats(a).derived_misses;
  const std::uint64_t b_hits_before = manager.session_stats(b).derived_hits;
  for (int s = 0; s < steps; ++s) {
    query.step = s;
    const ServerResult ra = manager.execute(a, query);
    const ServerResult rb = manager.execute(b, query);
    ASSERT_TRUE(ra.ok && rb.ok);
    EXPECT_EQ(ra.digest, rb.digest);
  }
  // b's TF requests were all served from a's computed entries (b never
  // runs a compute lambda, so its delta is exactly the TF hits); a paid
  // at least one derived miss per step (the TF itself, plus whatever
  // cumulative histograms its compute lambdas pulled in).
  EXPECT_EQ(manager.session_stats(b).derived_hits,
            b_hits_before + static_cast<std::uint64_t>(steps));
  EXPECT_GE(manager.session_stats(a).derived_misses,
            a_misses_before + static_cast<std::uint64_t>(steps));

  // Histograms dedup across clients too (tier-global params hash).
  Command hist;
  hist.kind = CommandKind::kHistogram;
  hist.step = 1;
  ASSERT_TRUE(manager.execute(a, hist).ok);
  const std::uint64_t before = manager.session_stats(b).derived_hits;
  ASSERT_TRUE(manager.execute(b, hist).ok);
  EXPECT_EQ(manager.session_stats(b).derived_hits, before + 1);
}

// ---------------------------------------------------------------------------
// Satellite: DerivedCache invalidation is scoped to the retiring hash.

TEST(DerivedCache, InvalidateIsScopedToParamsHash) {
  DerivedCache cache;
  auto make_hist = [] { return Histogram(4, 0.0, 1.0); };
  auto h_a = cache.histogram(0, 111, make_hist);
  auto h_a1 = cache.histogram(1, 111, make_hist);
  auto h_b = cache.histogram(0, 222, make_hist);
  ASSERT_EQ(cache.size(), 3u);

  EXPECT_EQ(cache.invalidate(111), 2u);
  EXPECT_EQ(cache.size(), 1u);

  // Outstanding references stay valid after their entries were dropped.
  EXPECT_EQ(h_a->bins(), 4);
  EXPECT_EQ(h_a1->bins(), 4);

  // Hash 222 was never touched: still a hit.
  const StreamStats before = cache.stats();
  auto again = cache.histogram(0, 222, make_hist);
  EXPECT_EQ(cache.stats().derived_hits, before.derived_hits + 1);
  EXPECT_EQ(again.get(), h_b.get());
}

TEST(SessionManager, RetrainingInvalidatesOnlyOwnEntries) {
  const int steps = 3;
  SessionManager manager(blob_source(steps), {});
  const int a = manager.create_session();
  const int b = manager.create_session();

  Command key;
  key.kind = CommandKind::kSetKeyFrame;
  key.step = 0;
  ASSERT_TRUE(manager.execute(a, key).ok);
  ASSERT_TRUE(manager.execute(b, key).ok);

  Command query;
  query.kind = CommandKind::kQueryTf;
  for (int s = 0; s < steps; ++s) {
    query.step = s;
    ASSERT_TRUE(manager.execute(a, query).ok);
  }

  // a retrains and moves to a new params hash. b still sits at the shared
  // initial hash, so the entries must NOT be invalidated: b keeps hitting.
  Command train;
  train.kind = CommandKind::kTrainTf;
  train.epochs = 3;
  ASSERT_TRUE(manager.execute(a, train).ok);

  const std::uint64_t before_hits = manager.session_stats(b).derived_hits;
  for (int s = 0; s < steps; ++s) {
    query.step = s;
    ASSERT_TRUE(manager.execute(b, query).ok);
  }
  EXPECT_EQ(manager.session_stats(b).derived_hits,
            before_hits + static_cast<std::uint64_t>(steps));

  // a re-derives its TFs under the new hash...
  for (int s = 0; s < steps; ++s) {
    query.step = s;
    ASSERT_TRUE(manager.execute(a, query).ok);
  }
  const std::size_t entries_both = manager.tier().derived().size();

  // ...and when b finally moves off the initial hash (different training,
  // so a different destination hash), the initial-state TF entries are
  // orphaned and retired — while a's entries survive untouched.
  train.epochs = 5;
  ASSERT_TRUE(manager.execute(b, train).ok);
  EXPECT_LT(manager.tier().derived().size(), entries_both);

  const std::uint64_t a_hits = manager.session_stats(a).derived_hits;
  for (int s = 0; s < steps; ++s) {
    query.step = s;
    ASSERT_TRUE(manager.execute(a, query).ok);
  }
  EXPECT_EQ(manager.session_stats(a).derived_hits,
            a_hits + static_cast<std::uint64_t>(steps));
}

// ---------------------------------------------------------------------------
// Satellite: per-client fail policies compose on one shared tier.

TEST(SessionManager, PerClientFailPolicyComposes) {
  const int steps = 5;
  auto faulty = std::make_shared<FaultInjectingSource>(
      blob_source(steps), std::vector<FaultSpec>{parse_fault_spec("corrupt@2")});

  SessionManagerConfig config;
  config.tier.max_retries = 0;
  config.tier.lookahead = 0;
  config.tier.async_prefetch = false;
  // Drop the time feature so the nearest-good substitution (step 1's
  // voxels classified AT step 2) is comparable to classifying step 1.
  config.painting.classifier.spec.use_time = false;
  SessionManager manager(faulty, config);

  const int skipper = manager.create_session(FailPolicy::kSkipStep);
  const int nearest = manager.create_session(FailPolicy::kNearestGood);
  const int thrower = manager.create_session(FailPolicy::kThrow);

  Command classify;
  classify.kind = CommandKind::kClassify;
  classify.step = 2;

  // The nearest-good client bridges the quarantined step with step 1.
  const ServerResult near_first = manager.execute(nearest, classify);
  ASSERT_TRUE(near_first.ok) << near_first.error;
  Command classify1 = classify;
  classify1.step = 1;
  const ServerResult near_ref = manager.execute(nearest, classify1);
  ASSERT_TRUE(near_ref.ok);
  EXPECT_EQ(near_first.digest, near_ref.digest);
  EXPECT_GE(manager.session_stats(nearest).nearest_good_substitutions, 1u);

  // The skip client fails its request (classification needs exact voxels)...
  const ServerResult skipped = manager.execute(skipper, classify);
  EXPECT_FALSE(skipped.ok);
  EXPECT_GE(manager.session_stats(skipper).skipped_fetches, 1u);

  // ...as does the throwing client, with the quarantine surfaced.
  const ServerResult thrown = manager.execute(thrower, classify);
  EXPECT_FALSE(thrown.ok);
  EXPECT_NE(thrown.error.find("quarantined"), std::string::npos);

  // And neither altered the nearest-good client's view.
  const ServerResult near_again = manager.execute(nearest, classify);
  ASSERT_TRUE(near_again.ok);
  EXPECT_EQ(near_again.digest, near_first.digest);
  EXPECT_EQ(manager.session_stats(skipper).nearest_good_substitutions, 0u);
}

// ---------------------------------------------------------------------------
// Admission control: quotas clamp pins, never data.

TEST(StreamTier, AdmissionQuotaClampsPinsNotData) {
  const int steps = 8;
  StreamTierConfig config;
  config.budget_bytes = 3 * kStepBytes;
  config.pin_quota_bytes = 1 * kStepBytes;
  config.lookahead = 0;
  config.async_prefetch = false;
  StreamTier tier(blob_source(steps), config);

  ClientSequenceView view(tier);
  view.hint_window(0, 5);

  const AdmissionStats admission = view.admission_stats();
  EXPECT_EQ(admission.pinned_steps, 1u);
  EXPECT_EQ(admission.pinned_bytes, kStepBytes);
  EXPECT_EQ(admission.denied_pins, 5u);

  // Every step still returns exact bytes despite the denied pins.
  auto source = blob_source(steps);
  for (int s = 0; s < 6; ++s) {
    EXPECT_EQ(volume_crc(view.step(s)), volume_crc(source->generate(s)));
  }

  // The one admitted pin (window center, step 2) survived the scan.
  EXPECT_TRUE(tier.store().cache().resident(2));
}

TEST(StreamTier, OverlappingClientPinsCompose) {
  const int steps = 8;
  StreamTierConfig config;
  config.budget_bytes = 4 * kStepBytes;
  config.lookahead = 0;
  config.async_prefetch = false;
  StreamTier tier(blob_source(steps), config);

  auto view_a = std::make_unique<ClientSequenceView>(tier);
  auto view_b = std::make_unique<ClientSequenceView>(tier);
  view_a->hint_window(2, 2);
  view_b->hint_window(2, 2);
  (void)view_a->step(2);

  // a releases its pin; b's counted pin keeps the step resident through a
  // third client's full scan (scanning through b itself would recenter
  // b's own window and release the very pin under test).
  view_a.reset();
  ClientSequenceView scanner(tier);
  for (int s = 0; s < steps; ++s) (void)scanner.step(s);
  EXPECT_TRUE(tier.store().cache().resident(2));
}

// ---------------------------------------------------------------------------
// Satellite: SharedStreamStats is safe for concurrent multi-session use.

TEST(SharedStreamStats, ConcurrentCountersSumExactly) {
  SharedStreamStats stats;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        stats.count_access(i % 2 == 0);
        stats.count_derived(t % 2 == 0);
        if (i % 100 == 0) {
          // Readers interleave with writers; the snapshot must be a
          // plain value copy, never torn.
          (void)stats.snapshot();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  const StreamStats snap = stats.snapshot();
  EXPECT_EQ(snap.hits + snap.misses, kThreads * kPerThread);
  EXPECT_EQ(snap.hits, kThreads * kPerThread / 2);
  EXPECT_EQ(snap.derived_hits + snap.derived_misses, kThreads * kPerThread);

  StreamStats delta;
  delta.skipped_fetches = 3;
  stats.add(delta);
  EXPECT_EQ(stats.snapshot().skipped_fetches, 3u);
  EXPECT_NE(stats.summary().find("hit rate"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Strand semantics: per-session FIFO, submit-after-close rejected.

TEST(SessionManager, StrandPreservesPerSessionOrder) {
  const int steps = 4;
  SessionManager manager(blob_source(steps), {});
  const int id = manager.create_session();

  std::vector<int> order;
  Command hint;
  hint.kind = CommandKind::kHintWindow;
  for (int i = 0; i < 64; ++i) {
    hint.window_lo = i % steps;
    hint.window_hi = i % steps;
    // Callbacks of one session are serialized by the strand, so the
    // unsynchronized push_back is race-free by construction (TSan agrees).
    manager.submit(id, hint,
                   [&order, i](const ServerResult&) { order.push_back(i); });
  }
  manager.drain(id);
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);

  manager.close_session(id);
  EXPECT_EQ(manager.session_count(), 0u);
  EXPECT_THROW(manager.execute(id, hint), Error);
}

}  // namespace
}  // namespace ifet
