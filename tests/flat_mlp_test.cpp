// Contract tests of the flat batched inference engine (nn/flat_mlp.hpp):
//  * forward_batch is BITWISE identical to Mlp::forward per row, across
//    topologies, activations, batch sizes, and scratch reuse;
//  * FlatMlpCache rebuilds exactly when Mlp::params_hash changes;
//  * a save/load round-trip of the source Mlp reproduces an identical
//    flat engine;
//  * every ported consumer (dataspace, multiclass, multivariate, IATF)
//    matches its scalar reference path exactly;
//  * steady-state inference performs zero heap allocations (shared
//    AllocGuard interposer, util/alloc_guard.hpp).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/dataspace.hpp"
#include "core/feature_vector.hpp"
#include "core/iatf.hpp"
#include "core/multiclass.hpp"
#include "core/multivariate.hpp"
#include "flowsim/datasets.hpp"
#include "nn/flat_mlp.hpp"
#include "nn/mlp.hpp"
#include "parallel/thread_pool.hpp"
#include "test_helpers.hpp"
#include "util/alloc_guard.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

// Counting operator new/delete for this binary; DenyAllocScope below
// brackets the regions of interest.
IFET_ALLOC_GUARD_INSTALL();

namespace ifet {
namespace {

std::vector<double> random_input(Rng& rng, int width) {
  std::vector<double> in(static_cast<std::size_t>(width));
  for (double& x : in) x = rng.uniform(-1.5, 1.5);
  return in;
}

// -------------------------------------------------------------------------
// Bitwise forward parity.

struct Topology {
  std::vector<int> sizes;
  Activation hidden;
};

class FlatMlpParityTest : public ::testing::TestWithParam<Topology> {};

TEST_P(FlatMlpParityTest, MatchesMlpForwardBitwise) {
  const Topology& topo = GetParam();
  Rng rng(0x5eedULL + static_cast<std::uint64_t>(topo.sizes.front()));
  Mlp net(topo.sizes, rng, topo.hidden);
  FlatMlp flat(net);
  EXPECT_EQ(flat.num_inputs(), net.num_inputs());
  EXPECT_EQ(flat.num_outputs(), net.num_outputs());

  FlatMlp::Scratch scratch;
  std::vector<double> out(static_cast<std::size_t>(net.num_outputs()));
  for (int trial = 0; trial < 16; ++trial) {
    const auto in = random_input(rng, net.num_inputs());
    const auto ref = net.forward(in);
    flat.forward_batch(in.data(), 1, out.data(), scratch);
    ASSERT_EQ(out.size(), ref.size());
    for (std::size_t j = 0; j < ref.size(); ++j) {
      // EXPECT_EQ on doubles: exact (bitwise) equality, not a tolerance.
      EXPECT_EQ(out[j], ref[j]) << "unit " << j << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, FlatMlpParityTest,
    ::testing::Values(Topology{{1, 2, 1}, Activation::kSigmoid},
                      Topology{{5, 8, 1}, Activation::kSigmoid},
                      Topology{{19, 12, 1}, Activation::kSigmoid},
                      Topology{{3, 10, 4, 2}, Activation::kTanh},
                      Topology{{7, 16, 16, 3}, Activation::kTanh}));

TEST(FlatMlp, BatchMatchesPerRowEvaluation) {
  Rng rng(77);
  Mlp net({9, 11, 2}, rng);
  FlatMlp flat(net);
  // 257 rows: crosses several kTileRows tiles plus a ragged tail.
  const int n = 4 * FlatMlp::kTileRows + 1;
  const int in_w = net.num_inputs();
  const int out_w = net.num_outputs();
  std::vector<double> in(static_cast<std::size_t>(n) * in_w);
  for (double& x : in) x = rng.uniform(-2.0, 2.0);
  std::vector<double> out(static_cast<std::size_t>(n) * out_w);
  FlatMlp::Scratch scratch;
  flat.forward_batch(in.data(), n, out.data(), scratch);
  for (int r = 0; r < n; ++r) {
    const auto ref = net.forward(std::span<const double>(
        in.data() + static_cast<std::size_t>(r) * in_w,
        static_cast<std::size_t>(in_w)));
    for (int j = 0; j < out_w; ++j) {
      EXPECT_EQ(out[static_cast<std::size_t>(r) * out_w + j],
                ref[static_cast<std::size_t>(j)])
          << "row " << r;
    }
  }
}

TEST(FlatMlp, ColsMatchesRowMajorBitwise) {
  Rng rng(123);
  Mlp net({19, 12, 1}, rng);
  FlatMlp flat(net);
  const int in_w = net.num_inputs();
  const int out_w = net.num_outputs();
  FlatMlp::Scratch scratch;
  // Ragged batch sizes and an ld larger than n: the column-major entry
  // point must match forward_batch (and hence Mlp::forward) bit for bit.
  for (int n : {1, 7, FlatMlp::kTileRows, FlatMlp::kTileRows + 5, 200}) {
    const int ld = n + 13;
    std::vector<double> rows(static_cast<std::size_t>(n) * in_w);
    for (double& x : rows) x = rng.uniform(-2.0, 2.0);
    std::vector<double> cols(static_cast<std::size_t>(ld) * in_w, 0.0);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < in_w; ++c) {
        cols[static_cast<std::size_t>(c) * ld + r] =
            rows[static_cast<std::size_t>(r) * in_w + c];
      }
    }
    std::vector<double> out_rows(static_cast<std::size_t>(n) * out_w);
    std::vector<double> out_cols(static_cast<std::size_t>(n) * out_w);
    flat.forward_batch(rows.data(), n, out_rows.data(), scratch);
    flat.forward_batch_cols(cols.data(), ld, n, out_cols.data(), scratch);
    for (std::size_t i = 0; i < out_rows.size(); ++i) {
      EXPECT_EQ(out_cols[i], out_rows[i]) << "n=" << n << " idx " << i;
    }
  }
}

TEST(FlatMlp, ScratchReusableAcrossBatchSizes) {
  Rng rng(31);
  Mlp net({6, 9, 5, 1}, rng, Activation::kTanh);
  FlatMlp flat(net);
  FlatMlp::Scratch scratch;  // one scratch across every size below
  for (int n : {1, 200, 7, FlatMlp::kTileRows, FlatMlp::kTileRows + 1, 3}) {
    std::vector<double> in(static_cast<std::size_t>(n) * 6);
    for (double& x : in) x = rng.uniform(-1.0, 1.0);
    std::vector<double> out(static_cast<std::size_t>(n));
    flat.forward_batch(in.data(), n, out.data(), scratch);
    for (int r = 0; r < n; ++r) {
      const auto ref = net.forward(std::span<const double>(
          in.data() + static_cast<std::size_t>(r) * 6, 6));
      EXPECT_EQ(out[static_cast<std::size_t>(r)], ref[0])
          << "n=" << n << " row " << r;
    }
  }
}

TEST(FlatMlp, ValidatesArguments) {
  FlatMlp uninitialized;
  FlatMlp::Scratch scratch;
  double x = 0.0;
  EXPECT_FALSE(uninitialized.valid());
  EXPECT_THROW(uninitialized.forward_batch(&x, 1, &x, scratch), Error);
  EXPECT_THROW(Mlp uninit_net; FlatMlp flat(uninit_net), Error);

  Rng rng(1);
  Mlp net({2, 3, 1}, rng);
  FlatMlp flat(net);
  EXPECT_TRUE(flat.valid());
  EXPECT_THROW(flat.forward_batch(nullptr, 1, &x, scratch), Error);
  EXPECT_THROW(flat.forward_batch(&x, -1, &x, scratch), Error);
  flat.forward_batch(nullptr, 0, nullptr, scratch);  // empty batch is a no-op
}

// -------------------------------------------------------------------------
// Cache rebuild policy.

TEST(FlatMlpCache, RebuildsOnlyOnParamsHashChange) {
  Rng rng(5);
  Mlp net({4, 6, 1}, rng);
  FlatMlpCache cache;
  EXPECT_EQ(cache.rebuilds(), 0u);

  auto first = cache.get(net);
  EXPECT_EQ(cache.rebuilds(), 1u);
  EXPECT_EQ(first->source_params_hash(), net.params_hash());

  // Unchanged weights: same engine, no rebuild.
  auto again = cache.get(net);
  EXPECT_EQ(cache.rebuilds(), 1u);
  EXPECT_EQ(first.get(), again.get());

  // Training changes params_hash -> rebuild with the new weights.
  const std::uint64_t before = net.params_hash();
  std::vector<double> in{0.2, 0.4, 0.6, 0.8}, target{0.9};
  net.train_sample(in, target, BackpropConfig{0.5, 0.0});
  EXPECT_NE(net.params_hash(), before);
  auto rebuilt = cache.get(net);
  EXPECT_EQ(cache.rebuilds(), 2u);
  EXPECT_NE(first.get(), rebuilt.get());
  EXPECT_EQ(rebuilt->source_params_hash(), net.params_hash());
  // The old shared_ptr stays usable (DerivedCache lifetime rule).
  FlatMlp::Scratch scratch;
  double old_out = 0.0, new_out = 0.0;
  first->forward_batch(in.data(), 1, &old_out, scratch);
  rebuilt->forward_batch(in.data(), 1, &new_out, scratch);
  EXPECT_NE(old_out, new_out);
  EXPECT_EQ(new_out, net.forward_scalar(in));
}

TEST(FlatMlp, SaveLoadRoundTripReproducesIdenticalEngine) {
  Rng rng(13);
  Mlp net({5, 7, 2}, rng, Activation::kTanh);
  std::vector<double> in{0.1, -0.3, 0.5, 0.7, -0.9}, target{0.8, 0.2};
  for (int i = 0; i < 25; ++i) {
    net.train_sample(in, target, BackpropConfig{0.3, 0.5});
  }

  std::stringstream stream;
  net.save(stream);
  Mlp reloaded = Mlp::load(stream);
  EXPECT_EQ(reloaded.params_hash(), net.params_hash());

  FlatMlp flat_orig(net);
  FlatMlp flat_loaded(reloaded);
  FlatMlp::Scratch scratch;
  Rng input_rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    const auto probe = random_input(input_rng, 5);
    double a[2], b[2];
    flat_orig.forward_batch(probe.data(), 1, a, scratch);
    flat_loaded.forward_batch(probe.data(), 1, b, scratch);
    EXPECT_EQ(a[0], b[0]);
    EXPECT_EQ(a[1], b[1]);
  }
}

// -------------------------------------------------------------------------
// Consumer parity: every ported per-voxel pass against its scalar reference.

std::vector<PaintedVoxel> paint_box(Index3 lo, Index3 hi, int step,
                                    double certainty) {
  std::vector<PaintedVoxel> out;
  for (int k = lo.z; k <= hi.z; ++k) {
    for (int j = lo.y; j <= hi.y; ++j) {
      for (int i = lo.x; i <= hi.x; ++i) {
        out.push_back(PaintedVoxel{Index3{i, j, k}, step, certainty});
      }
    }
  }
  return out;
}

TEST(ConsumerParity, AssembleColsMatchesRowBlockBitwise) {
  const Dims d{13, 11, 9};
  VolumeF v = testing::random_volume(d, 37);
  FeatureVectorSpec spec;  // defaults: value + 14-shell + position + time
  spec.use_gradient = true;
  FeatureContext ctx{&v, 2, 5, 0.0, 1.0};
  const FeatureBlockAssembler assembler(spec, ctx);
  const int w = assembler.width();

  // Voxel list with heavy border coverage (every corner/edge region).
  std::vector<Index3> voxels;
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; j += 2) {
      for (int i = 0; i < d.x; i += 3) voxels.push_back({i, j, k});
    }
  }
  const int n = static_cast<int>(voxels.size());
  const int ld = n + 5;
  std::vector<double> rows(static_cast<std::size_t>(n) * w);
  std::vector<double> cols(static_cast<std::size_t>(ld) * w, -1.0);
  assembler.assemble_feature_block(voxels.data(), n, rows.data());
  assembler.assemble_feature_cols(voxels.data(), n, cols.data(), ld);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < w; ++c) {
      ASSERT_EQ(cols[static_cast<std::size_t>(c) * ld + r],
                rows[static_cast<std::size_t>(r) * w + c])
          << "voxel " << r << " component " << c;
    }
  }
}

TEST(ConsumerParity, ClassifyMatchesScalarReferenceBitwise) {
  const Dims d{13, 11, 9};  // odd dims: ragged batches at every seam
  VolumeF v = testing::random_volume(d, 21);
  DataSpaceConfig cfg;
  cfg.spec.use_gradient = true;
  DataSpaceClassifier clf(3, 0.0, 1.0, cfg);
  clf.add_samples(v, 1, paint_box({1, 1, 1}, {3, 3, 3}, 1, 1.0));
  clf.add_samples(v, 1, paint_box({8, 8, 6}, {10, 10, 8}, 1, 0.0));
  clf.train(40);

  const VolumeF batched = clf.classify(v, 1);
  const VolumeF scalar = clf.classify_scalar(v, 1);
  ASSERT_EQ(batched.size(), scalar.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ASSERT_EQ(batched[i], scalar[i]) << "voxel " << i;
  }
  // Spot-check the public single-voxel probe as well.
  for (int k = 0; k < d.z; k += 4) {
    EXPECT_EQ(batched.at(2, 3, k),
              static_cast<float>(clf.classify_voxel(v, 1, 2, 3, k)));
  }
}

TEST(ConsumerParity, ClassifySliceMatchesVoxelProbe) {
  const Dims d{8, 10, 12};
  VolumeF v = testing::random_volume(d, 16);
  DataSpaceClassifier clf(1, 0.0, 1.0);
  clf.add_samples(v, 0, paint_box({0, 0, 0}, {1, 1, 1}, 0, 1.0));
  clf.train(10);
  for (int axis : {0, 1, 2}) {
    const int slice = 2;
    auto img = clf.classify_slice(v, 0, axis, slice);
    int width = 0, height = 0;
    switch (axis) {
      case 0: width = d.y; height = d.z; break;
      case 1: width = d.x; height = d.z; break;
      default: width = d.x; height = d.y; break;
    }
    ASSERT_EQ(img.size(), static_cast<std::size_t>(width) * height);
    for (int row = 0; row < height; row += 3) {
      for (int col = 0; col < width; col += 3) {
        int i = 0, j = 0, k = 0;
        switch (axis) {
          case 0: i = slice; j = col; k = row; break;
          case 1: i = col; j = slice; k = row; break;
          default: i = col; j = row; k = slice; break;
        }
        EXPECT_EQ(img[static_cast<std::size_t>(row) * width + col],
                  static_cast<float>(clf.classify_voxel(v, 0, i, j, k)))
            << "axis " << axis << " (" << i << "," << j << "," << k << ")";
      }
    }
  }
}

TEST(ConsumerParity, ClassifySliceValidatesUpFront) {
  const Dims d{8, 10, 12};
  VolumeF v = testing::random_volume(d, 16);
  DataSpaceClassifier clf(1, 0.0, 1.0);
  clf.add_samples(v, 0, paint_box({0, 0, 0}, {1, 1, 1}, 0, 1.0));
  clf.train(5);
  EXPECT_THROW(clf.classify_slice(v, 0, 3, 0), Error);
  EXPECT_THROW(clf.classify_slice(v, 0, -1, 0), Error);
  // Slice index checked against the *selected axis* extent, before any
  // worker runs: d.x=8, d.y=10, d.z=12.
  EXPECT_THROW(clf.classify_slice(v, 0, 0, 8), Error);
  EXPECT_THROW(clf.classify_slice(v, 0, 1, 10), Error);
  EXPECT_THROW(clf.classify_slice(v, 0, 2, 12), Error);
  EXPECT_THROW(clf.classify_slice(v, 0, 2, -1), Error);
  EXPECT_EQ(clf.classify_slice(v, 0, 0, 7).size(),
            static_cast<std::size_t>(d.y) * d.z);
}

TEST(ConsumerParity, MultiClassMatchesVoxelProbe) {
  const Dims d{9, 9, 9};
  VolumeF v = testing::random_volume(d, 33);
  MultiClassConfig cfg;
  cfg.spec.shell_samples = 6;
  MultiClassClassifier clf(3, 1, 0.0, 1.0, cfg);
  auto paint_class = [](Index3 lo, Index3 hi, int class_id) {
    std::vector<ClassSample> out;
    for (int k = lo.z; k <= hi.z; ++k) {
      for (int j = lo.y; j <= hi.y; ++j) {
        for (int i = lo.x; i <= hi.x; ++i) {
          out.push_back(ClassSample{Index3{i, j, k}, 0, class_id});
        }
      }
    }
    return out;
  };
  clf.add_samples(v, 0, paint_class({0, 0, 0}, {1, 1, 1}, 0));
  clf.add_samples(v, 0, paint_class({4, 4, 4}, {5, 5, 5}, 1));
  clf.add_samples(v, 0, paint_class({7, 7, 7}, {8, 8, 8}, 2));
  clf.train(30);

  std::vector<VolumeF> certainty;
  for (int c = 0; c < 3; ++c) certainty.push_back(clf.class_certainty(v, 0, c));
  const Volume<std::uint8_t> labels = clf.label_volume(v, 0);
  for (int k = 0; k < d.z; k += 2) {
    for (int j = 0; j < d.y; j += 2) {
      for (int i = 0; i < d.x; i += 2) {
        const auto scores = clf.classify_voxel(v, 0, i, j, k);
        int best = 0;
        for (int c = 0; c < 3; ++c) {
          EXPECT_EQ(certainty[static_cast<std::size_t>(c)].at(i, j, k),
                    static_cast<float>(scores[static_cast<std::size_t>(c)]));
          if (scores[static_cast<std::size_t>(c)] >
              scores[static_cast<std::size_t>(best)]) {
            best = c;
          }
        }
        EXPECT_EQ(labels.at(i, j, k), static_cast<std::uint8_t>(best));
      }
    }
  }
}

TEST(ConsumerParity, MultivariateMatchesVoxelProbe) {
  const Dims d{10, 8, 6};
  VolumeF a = testing::random_volume(d, 41);
  VolumeF b = testing::random_volume(d, 42);
  std::vector<const VolumeF*> vars{&a, &b};
  MultivariateConfig cfg;
  cfg.spec.num_variables = 2;
  cfg.spec.shell_samples = 6;
  MultivariateClassifier clf(1, {{0.0, 1.0}, {0.0, 1.0}}, cfg);
  clf.add_samples(vars, 0, paint_box({1, 1, 1}, {2, 2, 2}, 0, 1.0));
  clf.add_samples(vars, 0, paint_box({6, 5, 3}, {8, 6, 4}, 0, 0.0));
  clf.train(30);

  const VolumeF certainty = clf.classify(vars, 0);
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; j += 2) {
      for (int i = 0; i < d.x; i += 2) {
        EXPECT_EQ(certainty.at(i, j, k),
                  static_cast<float>(clf.classify_voxel(vars, 0, i, j, k)));
      }
    }
  }
}

TEST(ConsumerParity, IatfEvaluateMatchesScalarOpacity) {
  Dims d{12, 12, 12};
  auto source = std::make_shared<CallbackSource>(
      d, 6, std::pair<double, double>{0.0, 1.0}, [d](int step) {
        return testing::random_volume(d, 100 + static_cast<std::uint64_t>(step));
      });
  CachedSequence seq(source, 3);
  Iatf iatf(seq);
  TransferFunction1D key(0.0, 1.0);
  key.add_band(0.3, 0.6, 0.9, 0.05);
  iatf.add_key_frame(0, key);
  iatf.add_key_frame(5, key);
  iatf.train(25);

  for (int step : {0, 2, 5}) {
    const TransferFunction1D tf = iatf.evaluate(step);
    for (int e = 0; e < TransferFunction1D::kEntries; e += 7) {
      // opacity() is the scalar forward_scalar reference path.
      EXPECT_EQ(tf.opacity_entry(e), iatf.opacity(tf.entry_value(e), step))
          << "step " << step << " entry " << e;
    }
  }
}

// -------------------------------------------------------------------------
// Allocation contract.

TEST(AllocationContract, WarmForwardBatchAllocatesNothing) {
  Rng rng(61);
  Mlp net({19, 12, 1}, rng);
  FlatMlp flat(net);
  FlatMlp::Scratch scratch;
  const int n = 300;
  std::vector<double> in(static_cast<std::size_t>(n) * 19);
  for (double& x : in) x = rng.uniform(0.0, 1.0);
  std::vector<double> out(static_cast<std::size_t>(n));
  flat.forward_batch(in.data(), n, out.data(), scratch);  // warm the scratch

  DenyAllocScope guard;
  for (int pass = 0; pass < 4; ++pass) {
    flat.forward_batch(in.data(), n, out.data(), scratch);
  }
  EXPECT_EQ(guard.allocations(), 0u);
}

TEST(AllocationContract, WarmClassifyAllocationsAreBoundedPerCall) {
  const Dims d{16, 16, 16};
  VolumeF v = testing::random_volume(d, 55);
  DataSpaceClassifier clf(1, 0.0, 1.0);
  clf.add_samples(v, 0, paint_box({2, 2, 2}, {4, 4, 4}, 0, 1.0));
  clf.train(20);
  (void)clf.classify(v, 0);  // warm: builds the flat engine into the cache

  DenyAllocScope guard;
  (void)clf.classify(v, 0);
  const std::size_t per_call = guard.allocations();
  // Per call: the output volume, the assembler's direction table, a handful
  // of per-worker batch buffers, and the pool's task plumbing — all
  // independent of the 4096 voxels classified. The bound scales with the
  // worker count, never with the voxel count.
  const std::size_t bound = 128 + 64 * ThreadPool::global().size();
  EXPECT_LE(per_call, bound);
}

}  // namespace
}  // namespace ifet
