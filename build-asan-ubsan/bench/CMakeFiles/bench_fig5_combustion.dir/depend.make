# Empty dependencies file for bench_fig5_combustion.
# This may be replaced when dependencies are built.
