// Extraction-quality metrics shared by the tests and the figure benches.
//
// The paper evaluates by rendered images; our synthetic data sets carry
// analytic ground-truth masks, so every figure reproduction scores the
// extracted voxel set against ground truth with the standard set-overlap
// metrics below.
#pragma once

#include <cstddef>

#include "volume/volume.hpp"

namespace ifet {

struct MaskScore {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;
  std::size_t true_negative = 0;

  double precision() const;
  double recall() const;
  double f1() const;
  double jaccard() const;
};

/// Compare a predicted mask with ground truth (same dims required).
MaskScore score_mask(const Mask& predicted, const Mask& ground_truth);

/// Fraction of `mask` voxels that are set within `region` (0 if region
/// empty). Used e.g. for "how much of the small-feature region leaked
/// through" in the Fig 7 reproduction.
double coverage(const Mask& mask, const Mask& region);

/// Mean absolute difference of two volumes restricted to `region`; the
/// Fig 7 "fine detail preserved on the large structures" metric (smoothing
/// scores poorly, classification-based masking scores well).
double masked_mean_abs_difference(const VolumeF& a, const VolumeF& b,
                                  const Mask& region);

}  // namespace ifet
