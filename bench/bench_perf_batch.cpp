// Section 8 reproduction: batch extraction over independent time steps.
//
// Paper: "the processing of each time step is completely independent of
// other time steps [so] it is feasible and desirable to employ a large PC
// cluster to conduct the final feature extraction ... concurrently." This
// bench runs the shared-memory batch driver over a step range and reports
// step throughput; on a many-core host wall time is a fraction of the
// per-step sum (on this single-core CI box the numbers coincide — the
// decomposition and accounting are what is exercised).
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/batch.hpp"
#include "flowsim/datasets.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"
#include "volume/ops.hpp"

namespace {

using namespace ifet;

void BM_BatchExtraction(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  SwirlingFlowConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = steps;
  SwirlingFlowSource source(cfg);
  for (auto _ : state) {
    BatchReport report = run_batch_extraction(
        source, 0, steps - 1, [&](const VolumeF& v, int step) {
          float lo = static_cast<float>(source.peak_value(step) * 0.5);
          return threshold_mask(v, lo, 1.0f);
        });
    benchmark::DoNotOptimize(report.steps.data());
    state.counters["speedup_sum_over_wall"] =
        report.cpu_step_seconds / std::max(1e-9, report.wall_seconds);
  }
  state.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * steps,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchExtraction)->Arg(4)->Arg(16)->Arg(48)
    ->Unit(benchmark::kMillisecond);

/// Fixed training-set fixture for the evaluate_mse micro-benchmarks: a
/// paint-scale set (hundreds of samples) on a shell-sized network.
struct MseFixture {
  Mlp net;
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> targets;
};

MseFixture make_mse_fixture(int samples) {
  Rng rng(1234);
  MseFixture f;
  f.net = Mlp({19, 12, 1}, rng);
  f.inputs.reserve(samples);
  f.targets.reserve(samples);
  for (int s = 0; s < samples; ++s) {
    std::vector<double> in(19);
    for (double& x : in) x = rng.uniform(0.0, 1.0);
    f.inputs.push_back(std::move(in));
    f.targets.push_back({s % 2 == 0 ? 1.0 : 0.0});
  }
  return f;
}

/// Scratch-reusing path: Mlp::evaluate_mse keeps one ForwardState across
/// every sample in the set.
void BM_EvaluateMse(benchmark::State& state) {
  MseFixture f = make_mse_fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.net.evaluate_mse(f.inputs, f.targets));
  }
  state.counters["samples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(f.inputs.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EvaluateMse)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

/// Allocating baseline: the pre-scratch implementation, one full
/// activation-vector allocation chain per sample via Mlp::forward(). The
/// gap against BM_EvaluateMse is the scratch-reuse delta.
void BM_EvaluateMseAllocating(benchmark::State& state) {
  MseFixture f = make_mse_fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    double total = 0.0;
    std::size_t terms = 0;
    for (std::size_t s = 0; s < f.inputs.size(); ++s) {
      std::vector<double> out = f.net.forward(f.inputs[s]);
      for (std::size_t j = 0; j < out.size(); ++j) {
        double err = out[j] - f.targets[s][j];
        total += err * err;
        ++terms;
      }
    }
    benchmark::DoNotOptimize(total / static_cast<double>(terms));
  }
  state.counters["samples_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(f.inputs.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EvaluateMseAllocating)->Arg(128)->Arg(512)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
