// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates the quantitative analog of one paper figure
// (see DESIGN.md Sec 4): it prints the series the figure plots as an
// aligned table, writes the same rows to CSV under bench_out/, and exits
// nonzero if the qualitative "shape" of the paper's result does not hold
// (so a regression in the method is caught by running the bench).
#pragma once

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "eval/metrics.hpp"
#include "tf/transfer_function.hpp"
#include "volume/volume.hpp"

namespace ifet::bench {

/// Directory CSV series are written to (created on demand).
inline std::string output_dir() {
  const char* env = std::getenv("IFET_BENCH_OUT");
  std::string dir = env != nullptr ? env : "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Voxels a transfer function makes visible: opacity(value) >= cut.
/// This is the extraction a TF performs during rendering, reduced to a
/// mask so it can be scored against ground truth.
inline Mask tf_extract(const VolumeF& volume, const TransferFunction1D& tf,
                       double opacity_cut = 0.25) {
  Mask out(volume.dims());
  for (std::size_t i = 0; i < volume.size(); ++i) {
    out[i] = tf.opacity(volume[i]) >= opacity_cut ? 1 : 0;
  }
  return out;
}

/// Tracks whether every claimed property held; drives the exit status.
class ShapeCheck {
 public:
  void expect(bool condition, const std::string& claim) {
    if (condition) {
      std::cout << "  [shape OK]   " << claim << "\n";
    } else {
      std::cout << "  [shape FAIL] " << claim << "\n";
      failed_ = true;
    }
  }

  /// Exit status for main(): 0 when all shape claims held.
  int exit_code() const { return failed_ ? 1 : 0; }

 private:
  bool failed_ = false;
};

}  // namespace ifet::bench
