// Fixture (should PASS): the extents are contract-checked.
struct Dims {
  int x, y, z;
};

int cells(const Dims& d) {
  IFET_REQUIRE(d.x > 0 && d.y > 0 && d.z > 0, "degenerate extent");
  return d.x * d.y * d.z;
}
