// Streaming statistics helpers shared by evaluation code, the cumulative
// histogram and the data generators.
#pragma once

#include <cstddef>
#include <span>

namespace ifet {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (0 when fewer than 2 samples).
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a span (0 for empty spans).
double mean_of(std::span<const double> values);

/// Pearson correlation of two equal-length spans; 0 if degenerate.
double pearson(std::span<const double> a, std::span<const double> b);

}  // namespace ifet
