#include <gtest/gtest.h>

#include <memory>

#include "core/predictive_tracker.hpp"
#include "flowsim/datasets.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

/// Moving-box sequence (same fixture family as tracking_test).
std::shared_ptr<CallbackSource> moving_box_source(int steps, int speed) {
  Dims d{40, 16, 16};
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d, speed](int step) {
        VolumeF v(d, 0.1f);
        int x0 = 2 + speed * step;
        for (int k = 6; k < 10; ++k) {
          for (int j = 6; j < 10; ++j) {
            for (int i = x0; i < x0 + 4 && i < d.x; ++i) {
              v.at(i, j, k) = 0.8f;
            }
          }
        }
        return v;
      });
}

TEST(PredictiveTracker, FollowsUniformMotion) {
  const int steps = 8;
  CachedSequence seq(moving_box_source(steps, 3), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  PredictiveTracker tracker(seq, criterion);
  PredictiveTrack track = tracker.track(Index3{3, 7, 7}, 0, steps - 1);
  ASSERT_TRUE(track.reached_end(steps - 1));
  EXPECT_EQ(track.lost_at, -1);
  ASSERT_EQ(track.steps.size(), static_cast<std::size_t>(steps));
  // Centroid advances ~3 voxels per step in x.
  for (std::size_t s = 1; s < track.steps.size(); ++s) {
    double dx = track.steps[s].component.centroid.x -
                track.steps[s - 1].component.centroid.x;
    EXPECT_NEAR(dx, 3.0, 0.75);
  }
  // After the motion model locks in, prediction error is small.
  for (std::size_t s = 2; s < track.steps.size(); ++s) {
    EXPECT_LT(track.steps[s].prediction_error, 1.5);
  }
}

TEST(PredictiveTracker, FollowsFastFeatureThatRegionGrowingLoses) {
  // Speed 6 > box width 4: NO spatial overlap between consecutive steps, so
  // 4D region growing stops after the seed step (tracking_test covers
  // that); prediction-verification follows it anyway — the complementary
  // strength of the cited scheme.
  const int steps = 6;
  CachedSequence seq(moving_box_source(steps, 6), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  PredictiveTracker tracker(seq, criterion);
  PredictiveTrack track = tracker.track(Index3{3, 7, 7}, 0, steps - 1);
  EXPECT_TRUE(track.reached_end(steps - 1));
}

TEST(PredictiveTracker, SeedOutsideFeatureIsLostImmediately) {
  CachedSequence seq(moving_box_source(3, 2), 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  PredictiveTracker tracker(seq, criterion);
  PredictiveTrack track = tracker.track(Index3{30, 2, 2}, 0, 2);
  EXPECT_TRUE(track.steps.empty());
  EXPECT_EQ(track.lost_at, 0);
}

TEST(PredictiveTracker, LosesFeatureWhenItDisappears) {
  // Feature exists only for the first 3 steps.
  Dims d{24, 16, 16};
  auto source = std::make_shared<CallbackSource>(
      d, 6, std::pair<double, double>{0.0, 1.0}, [d](int step) {
        VolumeF v(d, 0.1f);
        if (step < 3) {
          for (int k = 6; k < 10; ++k) {
            for (int j = 6; j < 10; ++j) {
              for (int i = 4; i < 8; ++i) v.at(i, j, k) = 0.8f;
            }
          }
        }
        return v;
      });
  CachedSequence seq(source, 4);
  FixedRangeCriterion criterion(0.5, 1.0);
  PredictiveTracker tracker(seq, criterion);
  PredictiveTrack track = tracker.track(Index3{5, 7, 7}, 0, 5);
  EXPECT_EQ(track.lost_at, 3);
  EXPECT_EQ(track.steps.back().step, 2);
}

TEST(PredictiveTracker, SizeToleranceRejectsWrongFeature) {
  // At step 1 the real feature vanishes and a much larger impostor appears
  // nearby: the size verification must reject it.
  Dims d{24, 24, 24};
  auto source = std::make_shared<CallbackSource>(
      d, 2, std::pair<double, double>{0.0, 1.0}, [d](int step) {
        VolumeF v(d, 0.1f);
        if (step == 0) {
          for (int k = 10; k < 12; ++k) {
            for (int j = 10; j < 12; ++j) {
              for (int i = 10; i < 12; ++i) v.at(i, j, k) = 0.8f;
            }
          }
        } else {
          for (int k = 6; k < 18; ++k) {  // 12^3 = 216x bigger
            for (int j = 6; j < 18; ++j) {
              for (int i = 6; i < 18; ++i) v.at(i, j, k) = 0.8f;
            }
          }
        }
        return v;
      });
  CachedSequence seq(source, 2);
  FixedRangeCriterion criterion(0.5, 1.0);
  PredictiveTrackerConfig config;
  config.size_ratio_tolerance = 2.0;
  PredictiveTracker tracker(seq, criterion, config);
  PredictiveTrack track = tracker.track(Index3{10, 10, 10}, 0, 1);
  EXPECT_EQ(track.lost_at, 1);
}

TEST(PredictiveTracker, ReportsAmbiguityAtSplit) {
  TurbulentVortexConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 25;
  cfg.split_step = 18;
  auto source = std::make_shared<TurbulentVortexSource>(cfg);
  CachedSequence seq(source, 6);
  FixedRangeCriterion criterion(0.48, 1.0);
  PredictiveTrackerConfig config;
  config.centroid_tolerance = 10.0;
  PredictiveTracker tracker(seq, criterion, config);
  Vec3 c = source->lobe_centers(0)[0];
  Index3 seed{static_cast<int>(c.x * 48), static_cast<int>(c.y * 48),
              static_cast<int>(c.z * 48)};
  PredictiveTrack track = tracker.track(seed, 0, 24);
  ASSERT_FALSE(track.steps.empty());
  // Either the track reaches the end following one lobe, or verification
  // fails at the split; in the former case the split shows as >= 2
  // verified candidates at some step at/after the split.
  if (track.reached_end(24)) {
    auto ambiguous = track.ambiguous_steps();
    bool seen_after_split = false;
    for (int s : ambiguous) seen_after_split |= s >= cfg.split_step;
    EXPECT_TRUE(seen_after_split);
  } else {
    EXPECT_GE(track.lost_at, cfg.split_step);
  }
}

TEST(PredictiveTracker, ComponentsAtFiltersNoise) {
  CachedSequence seq(moving_box_source(2, 0), 2);
  FixedRangeCriterion criterion(0.5, 1.0);
  PredictiveTrackerConfig config;
  config.min_component_voxels = 100;  // bigger than the 64-voxel box
  PredictiveTracker tracker(seq, criterion, config);
  EXPECT_TRUE(tracker.components_at(0).empty());
  config.min_component_voxels = 4;
  PredictiveTracker loose(seq, criterion, config);
  EXPECT_EQ(loose.components_at(0).size(), 1u);
}

TEST(PredictiveTracker, ValidatesConfigAndRange) {
  CachedSequence seq(moving_box_source(3, 1), 2);
  FixedRangeCriterion criterion(0.5, 1.0);
  PredictiveTrackerConfig bad;
  bad.centroid_tolerance = -1.0;
  EXPECT_THROW(PredictiveTracker(seq, criterion, bad), Error);
  PredictiveTracker tracker(seq, criterion);
  EXPECT_THROW(tracker.track(Index3{3, 7, 7}, 2, 1), Error);
  EXPECT_THROW(tracker.track(Index3{3, 7, 7}, 0, 99), Error);
}

}  // namespace
}  // namespace ifet
