// Ablation: the data-space feature vector (paper Sec 4.3).
//
// The shell of neighborhood samples is what encodes feature *size* — a
// voxel's own value cannot distinguish a tiny blob from the interior of a
// large structure when their values overlap (the reionization premise).
// We train the classifier with (a) value only, (b) value+shell, and
// (c) value+shell+position, on the same painted samples, and score
// large-structure extraction and small-feature leakage.
#include <iostream>

#include "bench_util.hpp"
#include "core/dataspace.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace ifet;

std::vector<PaintedVoxel> sample_mask(const Mask& mask, int step,
                                      double certainty, std::size_t count,
                                      Rng& rng) {
  std::vector<Index3> candidates;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) candidates.push_back(mask.coord_of(i));
  }
  std::vector<PaintedVoxel> out;
  for (std::size_t s = 0; s < count && !candidates.empty(); ++s) {
    out.push_back(
        {candidates[rng.uniform_index(candidates.size())], step, certainty});
  }
  return out;
}

struct Variant {
  const char* name;
  FeatureVectorSpec spec;
};

}  // namespace

int main() {
  using namespace ifet;
  std::cout << "=== Ablation: data-space feature vector (Sec 4.3) ===\n";

  ReionizationConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 400;
  auto source = std::make_shared<ReionizationSource>(cfg);
  const int t = 310;
  VolumeF volume = source->generate(t);
  Mask large = source->large_mask(t);
  Mask small = source->small_mask(t);
  Mask background(volume.dims());
  for (std::size_t i = 0; i < background.size(); ++i) {
    background[i] = (!large[i] && !small[i]) ? 1 : 0;
  }

  FeatureVectorSpec value_only;
  value_only.use_shell = false;
  value_only.use_position = false;
  value_only.use_time = false;
  FeatureVectorSpec value_shell = value_only;
  value_shell.use_shell = true;
  FeatureVectorSpec value_shell_pos = value_shell;
  value_shell_pos.use_position = true;

  std::vector<Variant> variants = {{"value-only", value_only},
                                   {"value+shell", value_shell},
                                   {"value+shell+position", value_shell_pos}};

  Table table({"inputs", "large_f1", "small_leakage", "large_recall"});
  CsvWriter csv(bench::output_dir() + "/ablation_shell.csv",
                {"inputs", "f1", "leakage", "recall"});

  std::vector<double> f1s, leaks;
  for (const Variant& v : variants) {
    DataSpaceConfig dcfg;
    dcfg.spec = v.spec;
    DataSpaceClassifier clf(cfg.num_steps, 0.0, 1.0, dcfg);
    Rng rng(7);  // identical painted samples for every variant
    std::vector<PaintedVoxel> painted;
    auto append = [&](std::vector<PaintedVoxel> s) {
      painted.insert(painted.end(), s.begin(), s.end());
    };
    append(sample_mask(large, t, 1.0, 500, rng));
    append(sample_mask(small, t, 0.0, 350, rng));
    append(sample_mask(background, t, 0.0, 350, rng));
    clf.add_samples(volume, t, painted);
    clf.train(400);
    Mask extracted = clf.classify_mask(volume, t, 0.5);
    double f1 = score_mask(extracted, large).f1();
    double leak = coverage(extracted, small);
    double recall = coverage(extracted, large);
    f1s.push_back(f1);
    leaks.push_back(leak);
    table.add_row({v.name, Table::num(f1), Table::num(leak),
                   Table::num(recall)});
    csv.row(v.name, f1, leak, recall);
  }
  table.print(std::cout);
  std::cout << '\n';

  bench::ShapeCheck check;
  check.expect(leaks[0] > 0.4,
               "value-only cannot suppress the small features (overlapping "
               "values)");
  check.expect(leaks[1] < leaks[0] * 0.6,
               "adding the shell cuts small-feature leakage substantially");
  check.expect(f1s[1] > f1s[0] + 0.05,
               "shell improves large-structure extraction F1");
  check.expect(f1s[2] >= f1s[1] - 0.05,
               "position input does not hurt (and may help locality)");
  return check.exit_code();
}
