# Empty compiler generated dependencies file for ifet_tool.
# This may be replaced when dependencies are built.
