// Transfer-function-space session (the Fig 1 loop of the paper).
//
// Wraps the Iatf in the interaction protocol of Sec 4.2: the user assigns
// 1D transfer functions to key frames (and may revise or remove them),
// training proceeds in idle-loop slots, the current adaptive TF for any
// step is always available for rendering, and the session can advise which
// step to key next (the automated form of "add new key frames when
// needed"). The paired render helper produces the frame the user would see
// — volume rendered through the current adaptive TF.
#pragma once

#include <memory>

#include "core/iatf.hpp"
#include "core/keyframe_advisor.hpp"
#include "io/image_io.hpp"
#include "render/raycaster.hpp"
#include "volume/sequence.hpp"

namespace ifet {

struct TfSessionConfig {
  IatfConfig iatf;
  /// Advisor scan stride (1 = every step; raise for long sequences).
  int advisor_stride = 1;
  /// Advisor stops suggesting below this distance.
  double advisor_threshold = 0.02;
  /// Advisor weight for temporal coverage (see keyframe_advisor.hpp).
  double advisor_time_weight = 0.1;
};

class TfSession {
 public:
  explicit TfSession(const VolumeSequence& sequence,
                     const TfSessionConfig& config = {});

  /// Upsert a key frame (add, or revise an existing one).
  void set_key_frame(int step, const TransferFunction1D& tf);
  /// Remove a key frame; returns false if absent.
  bool remove_key_frame(int step);
  std::size_t key_frame_count() const { return iatf_.key_frames().size(); }

  /// Idle-loop training slot; returns current training MSE.
  double idle(double budget_ms);
  /// Deterministic alternative for scripted runs.
  double train_epochs(int epochs);

  /// The adaptive TF for any step under the current network.
  TransferFunction1D current_tf(int step) const { return iatf_.evaluate(step); }

  /// Where to key next; step = -1 when the sequence is covered. Requires
  /// at least one key frame.
  KeyFrameSuggestion advise() const;

  /// Render `step` through the current adaptive TF (the user's preview).
  /// Brick metadata comes from the sequence (ingest-time for v2 .cvol
  /// containers); `stats`, when given, reports the frame's sample and
  /// empty-space-skipping counters.
  ImageRgb8 preview(int step, const Camera& camera,
                    const RenderSettings& settings = {},
                    const ColorMap& colors = {},
                    RenderStats* stats = nullptr) const;

  const Iatf& iatf() const { return iatf_; }

 private:
  const VolumeSequence& sequence_;
  TfSessionConfig config_;
  Iatf iatf_;
};

}  // namespace ifet
