// Section 7 performance reproduction: data-space classification cost.
//
// Paper: "it takes 10 seconds to classify a 256x256x256 data set" with the
// trained network, vs 6 fps rendering — i.e. whole-volume classification is
// ~two orders of magnitude more expensive than a rendered frame and is done
// once, not per frame. We measure per-voxel classification cost across
// volume sizes (linear scaling) and shell sizes (vector-width scaling), and
// time single-slice classification (the interface's interactive feedback
// path, which must be far cheaper than the full volume).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "core/dataspace.hpp"
#include "flowsim/datasets.hpp"
#include "nn/flat_mlp.hpp"
#include "nn/mlp.hpp"
#include "parallel/thread_pool.hpp"
#include "util/alloc_guard.hpp"
#include "util/determinism.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

// Counting operator new/delete for this binary so the steady-state
// sections below can assert zero allocations (docs/STATIC_ANALYSIS.md).
IFET_ALLOC_GUARD_INSTALL();

namespace {

using namespace ifet;

std::unique_ptr<DataSpaceClassifier> make_trained_classifier(
    const VolumeF& volume, int shell_samples) {
  DataSpaceConfig cfg;
  cfg.spec.shell_samples = shell_samples;
  auto clf = std::make_unique<DataSpaceClassifier>(1, 0.0, 1.0, cfg);
  std::vector<PaintedVoxel> painted;
  const Dims d = volume.dims();
  for (int s = 0; s < 200; ++s) {
    Index3 p{(s * 7) % d.x, (s * 13) % d.y, (s * 29) % d.z};
    painted.push_back({p, 0, s % 2 == 0 ? 1.0 : 0.0});
  }
  clf->add_samples(volume, 0, painted);
  clf->train(50);
  return clf;
}

/// Whole-volume classification across grid sizes (expect linear scaling in
/// voxel count; the paper's 10 s for 256^3 is this operation).
void BM_ClassifyVolume(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ReionizationConfig cfg;
  cfg.dims = Dims{n, n, n};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, 14);
  for (auto _ : state) {
    VolumeF certainty = clf->classify(volume, 0);
    benchmark::DoNotOptimize(certainty.data().data());
  }
  state.counters["voxels_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(volume.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClassifyVolume)->Arg(16)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Scalar baseline: one Mlp forward per voxel (the pre-flat-engine path,
/// kept as classify_scalar). The ratio against BM_ClassifyVolume is the
/// speedup of the batched FlatMlp engine.
void BM_ClassifyVolumeScalar(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ReionizationConfig cfg;
  cfg.dims = Dims{n, n, n};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, 14);
  for (auto _ : state) {
    VolumeF certainty = clf->classify_scalar(volume, 0);
    benchmark::DoNotOptimize(certainty.data().data());
  }
  state.counters["voxels_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(volume.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClassifyVolumeScalar)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Shell-size ablation of the classification cost (Sec 6: fewer properties
/// -> smaller network -> faster extraction).
void BM_ClassifyShellWidth(benchmark::State& state) {
  const int shell = static_cast<int>(state.range(0));
  ReionizationConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, shell);
  for (auto _ : state) {
    VolumeF certainty = clf->classify(volume, 0);
    benchmark::DoNotOptimize(certainty.data().data());
  }
}
BENCHMARK(BM_ClassifyShellWidth)->Arg(6)->Arg(14)->Arg(26)
    ->Unit(benchmark::kMillisecond);

/// Single-slice feedback (Sec 6's interactive path).
void BM_ClassifySlice(benchmark::State& state) {
  ReionizationConfig cfg;
  cfg.dims = Dims{64, 64, 64};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, 14);
  for (auto _ : state) {
    auto slice = clf->classify_slice(volume, 0, 2, 32);
    benchmark::DoNotOptimize(slice.data());
  }
}
BENCHMARK(BM_ClassifySlice)->Unit(benchmark::kMillisecond);

/// Training epoch cost on a paint-scale training set (runs in the idle
/// loop; must be interactive).
void BM_TrainEpoch(benchmark::State& state) {
  ReionizationConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf->train(1));
  }
}
BENCHMARK(BM_TrainEpoch)->Unit(benchmark::kMicrosecond);

/// Direct scalar-vs-flat comparison on the 64^3 reionization case. Verifies
/// the batched classify() is bit-comparable with the classify_scalar()
/// reference (nonzero exit on mismatch) and writes a machine-readable
/// summary with both throughputs, the speedup, and the engine parameters.
int write_classify_report(const char* path) {
  ReionizationConfig cfg;
  cfg.dims = Dims{64, 64, 64};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, 14);

  // Bit-comparability first; this also warms the FlatMlp cache so the
  // timed passes below measure steady-state throughput.
  VolumeF scalar_out = clf->classify_scalar(volume, 0);
  VolumeF flat_out = clf->classify(volume, 0);
  const bool identical =
      scalar_out.size() == flat_out.size() &&
      std::memcmp(scalar_out.data().data(), flat_out.data().data(),
                  scalar_out.size() * sizeof(float)) == 0;
  if (!identical) {
    std::cerr << "bench_perf_classify: batched classify() is NOT bitwise "
                 "identical to classify_scalar() on the 64^3 case\n";
    return 1;
  }

  const double voxels = static_cast<double>(volume.size());
  Stopwatch timer;
  VolumeF warm = clf->classify_scalar(volume, 0);
  benchmark::DoNotOptimize(warm.data().data());
  const double scalar_s = timer.seconds();

  constexpr int kFlatReps = 5;
  timer.reset();
  for (int r = 0; r < kFlatReps; ++r) {
    VolumeF out = clf->classify(volume, 0);
    benchmark::DoNotOptimize(out.data().data());
  }
  const double flat_s = timer.seconds() / kFlatReps;

  const double scalar_rate = voxels / scalar_s;
  const double flat_rate = voxels / flat_s;
  const double speedup = scalar_s / flat_s;

  std::ofstream json(path);
  json << "{\n"
       << "  \"case\": \"reionization_64\",\n"
       << "  \"voxels\": " << volume.size() << ",\n"
       << "  \"voxels_per_s_scalar\": " << scalar_rate << ",\n"
       << "  \"voxels_per_s_flat\": " << flat_rate << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"batch_size\": " << DataSpaceClassifier::kClassifyBatchSize
       << ",\n"
       << "  \"threads\": " << ThreadPool::global().size() << ",\n"
       << "  \"bitwise_identical\": true\n"
       << "}\n";
  std::cout << "classify report: scalar " << scalar_rate << " voxels/s, flat "
            << flat_rate << " voxels/s, speedup " << speedup << "x -> " << path
            << "\n";
  return 0;
}

/// Steady-state allocation contract on the IFET_HOT inference kernel: a
/// warm FlatMlp::forward_batch with a caller-owned Scratch must touch the
/// heap zero times (the lint-side guarantee, proven at runtime by the
/// shared AllocGuard), while staying bitwise identical to Mlp::forward.
int check_steady_state_allocations() {
  Rng rng(0x90df);
  Mlp net({19, 16, 1}, rng);
  FlatMlp flat(net);
  FlatMlp::Scratch scratch;
  const int n = 6 * FlatMlp::kTileRows + 7;  // several tiles + ragged tail
  std::vector<double> in(static_cast<std::size_t>(n) * 19);
  for (double& x : in) x = rng.uniform(-1.5, 1.5);
  std::vector<double> out(static_cast<std::size_t>(n));
  flat.forward_batch(in.data(), n, out.data(), scratch);  // warm the scratch

  for (int r = 0; r < n; ++r) {
    const auto ref = net.forward(std::span<const double>(
        in.data() + static_cast<std::size_t>(r) * 19, 19));
    if (out[static_cast<std::size_t>(r)] != ref[0]) {
      std::cerr << "bench_perf_classify: forward_batch row " << r
                << " is NOT bitwise identical to Mlp::forward\n";
      return 1;
    }
  }

  ifet::DenyAllocScope guard;
  for (int pass = 0; pass < 8; ++pass) {
    flat.forward_batch(in.data(), n, out.data(), scratch);
  }
  benchmark::DoNotOptimize(out.data());
  if (guard.allocations() != 0) {
    std::cerr << "bench_perf_classify: warm forward_batch performed "
              << guard.allocations() << " heap allocations (expected 0)\n";
    return 1;
  }
  std::cout << "alloc check: warm FlatMlp::forward_batch made 0 heap "
               "allocations over 8 passes, bitwise equal to Mlp::forward\n";
  return 0;
}

/// Perturbed-replay check on the IFET_DETERMINISTIC classification
/// kernels (util/determinism.hpp): the whole-volume classify and a
/// chunked FlatMlp::forward_batch must produce bitwise-identical outputs
/// across pool widths {1, 4, hardware}, cold and warm caches, and
/// shuffled chunk submission order. This is the dynamic counterpart of
/// ifet_lint's det-* pass: the lint proves no code reachable from the
/// annotation observes an ordering source, this proves the schedule
/// cannot tell the difference either.
int run_replay_check() {
  ReionizationConfig cfg;
  cfg.dims = Dims{32, 32, 32};
  cfg.num_steps = 400;
  cfg.num_small_features = 60;
  ReionizationSource source(cfg);
  VolumeF volume = source.generate(310);
  auto clf = make_trained_classifier(volume, 14);

  Rng rng(0x90df);
  Mlp net({19, 16, 1}, rng);
  FlatMlp flat(net);
  const int rows = 6 * FlatMlp::kTileRows + 7;
  std::vector<double> in(static_cast<std::size_t>(rows) * 19);
  for (double& x : in) x = rng.uniform(-1.5, 1.5);

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  ReplayCheck check("flat_mlp_classify", {1, 4, hw});
  ReplayReport report = check.run([&](const ReplayTrial& trial) {
    ThreadPool::ScopedGlobalWidth width(trial.threads);
    DigestSink sink;

    // Whole-volume classify: the pool partitions voxel rows differently
    // at every width; the certainty field must not notice.
    VolumeF certainty = clf->classify(volume, 0);
    sink.span(certainty.data().data(), certainty.size());

    // Chunked forward_batch into one output buffer, chunks visited in a
    // deterministic shuffle when the trial asks for it: the batched
    // engine's per-row results must not depend on submission order.
    constexpr int kChunk = 48;
    const std::size_t chunks =
        (static_cast<std::size_t>(rows) + kChunk - 1) / kChunk;
    std::vector<std::size_t> order(chunks);
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (trial.shuffled) order = replay_permutation(chunks, 0x1FE7);
    std::vector<double> out(static_cast<std::size_t>(rows));
    FlatMlp::Scratch scratch;
    for (const std::size_t c : order) {
      const std::size_t lo = c * kChunk;
      const int cnt = static_cast<int>(
          std::min<std::size_t>(kChunk, static_cast<std::size_t>(rows) - lo));
      flat.forward_batch(in.data() + lo * 19, cnt, out.data() + lo, scratch);
    }
    sink.span(out.data(), out.size());
    return sink.value();
  });
  std::cout << report.summary();
  return report.ok ? 0 : 1;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): after the google-benchmark run
// (skippable with --classify-report-only; --alloc-check-only and
// --replay-check-only also skip the report) the binary performs the
// scalar-vs-flat parity check, the zero-allocation steady-state check,
// the perturbed-replay determinism check, and writes BENCH_classify.json,
// so CI can gate on the speedup, the bit-comparability contract, the
// hot-path allocation contract, and the determinism contract at once.
int main(int argc, char** argv) {
  bool report_only = false;
  bool alloc_check_only = false;
  bool replay_check_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--classify-report-only") {
      report_only = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--alloc-check-only") {
      alloc_check_only = true;
      continue;
    }
    if (std::string_view(argv[i]) == "--replay-check-only") {
      replay_check_only = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (replay_check_only) return run_replay_check();
  if (!report_only && !alloc_check_only) {
    int filtered = static_cast<int>(args.size());
    benchmark::Initialize(&filtered, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered, args.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  const int alloc_rc = check_steady_state_allocations();
  if (alloc_check_only || alloc_rc != 0) return alloc_rc;
  const int replay_rc = run_replay_check();
  if (replay_rc != 0) return replay_rc;
  return write_classify_report("BENCH_classify.json");
}
