// Regression tests for the lock-held-while-calling-out defects fixed in
// the concurrency static-analysis PR (docs/STATIC_ANALYSIS.md).
//
// Each test pins a call-out contract: user code (a VolumeSource loader, a
// DerivedCache compute callback, an Mlp weight snapshot) must run with the
// owning class's mutex RELEASED. Before the fixes these were
// self-deadlocks waiting for the right re-entrant caller; with std::mutex
// a regression hangs the suite, and in checked builds (asan-ubsan / tsan
// presets) the OrderedMutex re-entry validator turns the hang into an
// immediate ifet::Error — so these tests fail loudly either way.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "nn/flat_mlp.hpp"
#include "nn/mlp.hpp"
#include "stream/derived_cache.hpp"
#include "stream/streamed_sequence.hpp"
#include "util/rng.hpp"
#include "volume/sequence.hpp"

namespace ifet {
namespace {

constexpr Dims kDims{4, 4, 4};

VolumeF step_volume(int step) {
  VolumeF v(kDims);
  v.fill(static_cast<float>(step) / 100.0f);
  return v;
}

// StreamedSequence::step() used to pin the window (and, in synchronous-
// prefetch mode, run the full decode of every window step) while holding
// the window mutex. A loader that touches the sequence — here via
// hint_window, the pattern of a source that logs progress through the
// owning pipeline — then re-enters the held mutex and deadlocks. The fix
// moved pinning after the unlock; this test drives exactly that loader.
TEST(ConcurrencyRegressionTest, SyncPrefetchLoaderMayReenterSequence) {
  StreamedSequence* seq_handle = nullptr;
  std::atomic<bool> reentered{false};
  auto source = std::make_shared<CallbackSource>(
      kDims, 6, std::pair<double, double>{0.0, 1.0}, [&](int step) {
        if (seq_handle != nullptr &&
            !reentered.exchange(true)) {  // re-enter exactly once
          seq_handle->hint_window(step, step);
        }
        return step_volume(step);
      });
  StreamConfig config;
  config.async_prefetch = false;  // decodes run on the calling thread
  config.lookahead = 1;
  config.pin_radius = 1;
  StreamedSequence seq(source, config);
  seq_handle = &seq;

  const VolumeF& v = seq.step(2);
  EXPECT_TRUE(reentered.load());
  EXPECT_FLOAT_EQ(v.at(0, 0, 0), 0.02f);
  // The re-entrant hint_window survived; windowed access still works.
  seq.hint_window(1, 3);
  EXPECT_FLOAT_EQ(seq.step(3).at(0, 0, 0), 0.03f);
}

// DerivedCache::get_or_compute used to run `compute` under the memo-map
// mutex. Synthesis of one derived product routinely consults another (an
// IATF transfer function reads the step's cumulative histogram through
// the same cache), which re-enters the mutex. The fix computes outside
// the lock; both products must land in the cache.
TEST(ConcurrencyRegressionTest, DerivedCacheComputeMayReenterCache) {
  DerivedCache cache;
  const VolumeF volume = step_volume(42);
  const std::uint64_t params = 7;

  auto hist = cache.histogram(0, params, [&] {
    auto cum = cache.cumulative_histogram(0, params, [&] {
      return CumulativeHistogram(Histogram::of(volume, 16, 0.0, 1.0));
    });
    EXPECT_NE(cum, nullptr);
    return Histogram::of(volume, 16, 0.0, 1.0);
  });

  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(cache.size(), 2u);  // histogram + cumulative histogram
  EXPECT_EQ(cache.stats().derived_misses, 2u);
}

// FlatMlpCache::get used to copy the network's weights while holding the
// cache mutex, stalling every concurrent classify thread behind a rebuild
// and nesting caller-owned state inside the cache's lock. The snapshot
// now runs unlocked with a double-checked publish: racing getters may all
// copy, but exactly one rebuild is published and everyone returns it.
TEST(ConcurrencyRegressionTest, FlatMlpCacheConcurrentGetPublishesOnce) {
  Rng rng(99);
  Mlp network({4, 8, 2}, rng);
  FlatMlpCache cache;

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const FlatMlp>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[static_cast<std::size_t>(t)] = cache.get(network); });
  }
  for (auto& th : threads) th.join();

  ASSERT_NE(results[0], nullptr);
  for (const auto& r : results) EXPECT_EQ(r, results[0]);
  EXPECT_EQ(cache.rebuilds(), 1u);
  EXPECT_EQ(cache.get(network), results[0]);  // warm hit, no rebuild
  EXPECT_EQ(cache.rebuilds(), 1u);
}

// CachedSequence::generation_count() used to read the guarded counter
// without the lock — a data race against concurrent fetches (the tsan
// preset sees the unsynchronized read; here we pin the synchronized
// count's correctness under contention).
TEST(ConcurrencyRegressionTest, CachedSequenceGenerationCountSynchronized) {
  constexpr int kSteps = 12;
  auto source = std::make_shared<CallbackSource>(
      kDims, kSteps, std::pair<double, double>{0.0, 1.0},
      [](int step) { return step_volume(step); });
  CachedSequence seq(source, /*cache_capacity=*/kSteps);

  std::vector<std::thread> threads;
  std::atomic<std::size_t> observed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int s = 0; s < kSteps; ++s) {
        (void)seq.step(s);
        observed.fetch_add(seq.generation_count() > 0 ? 1 : 0);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(observed.load(), 4u * kSteps);
  // Capacity covers every step, so each step was generated exactly once
  // no matter how the threads interleaved.
  EXPECT_EQ(seq.generation_count(), static_cast<std::size_t>(kSteps));
}

}  // namespace
}  // namespace ifet
