# Empty compiler generated dependencies file for ifet_parallel.
# This may be replaced when dependencies are built.
