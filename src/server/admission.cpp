#include "server/admission.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "util/error.hpp"

namespace ifet {

AdmissionController::AdmissionController(std::size_t step_bytes,
                                         std::size_t pin_quota_bytes,
                                         int num_steps)
    : step_bytes_(step_bytes),
      pin_quota_bytes_(pin_quota_bytes),
      num_steps_(num_steps) {
  IFET_REQUIRE(step_bytes_ > 0, "AdmissionController: step_bytes must be > 0");
  IFET_REQUIRE(num_steps_ > 0, "AdmissionController: need at least one step");
}

std::size_t AdmissionController::quota_steps() const {
  if (pin_quota_bytes_ == 0) return static_cast<std::size_t>(num_steps_);
  return std::min(static_cast<std::size_t>(num_steps_),
                  pin_quota_bytes_ / step_bytes_);
}

int AdmissionController::register_client() {
  OrderedMutexLock lock(mutex_);
  // Reuse a retired slot so long-running servers with session churn keep
  // the ledger vector (and note_access's index range) bounded.
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (!clients_[i].active) {
      clients_[i] = Ledger{};
      clients_[i].active = true;
      clients_[i].seen.assign(static_cast<std::size_t>(num_steps_), 0);
      return static_cast<int>(i);
    }
  }
  Ledger ledger;
  ledger.active = true;
  ledger.seen.assign(static_cast<std::size_t>(num_steps_), 0);
  clients_.push_back(std::move(ledger));
  return static_cast<int>(clients_.size() - 1);
}

std::vector<int> AdmissionController::release_client(int client) {
  OrderedMutexLock lock(mutex_);
  IFET_REQUIRE(client >= 0 &&
                   client < static_cast<int>(clients_.size()) &&
                   clients_[static_cast<std::size_t>(client)].active,
               "AdmissionController::release_client: unknown client");
  Ledger& c = clients_[static_cast<std::size_t>(client)];
  std::vector<int> unpin = std::move(c.admitted);
  c = Ledger{};  // active = false; slot reusable
  return unpin;
}

WindowDelta AdmissionController::set_window(int client, int lo, int hi,
                                            int center) {
  lo = std::max(lo, 0);
  hi = std::min(hi, num_steps_ - 1);
  center = std::clamp(center, lo, hi);

  // Desired steps nearest-center first: the current step must be the last
  // pin the quota ever refuses (ties resolve to the earlier step so the
  // order — and thus the admitted set — is deterministic).
  std::vector<int> desired;
  for (int s = lo; s <= hi; ++s) desired.push_back(s);
  std::stable_sort(desired.begin(), desired.end(), [center](int a, int b) {
    const int da = std::abs(a - center);
    const int db = std::abs(b - center);
    return da != db ? da < db : a < b;
  });

  const std::size_t admit = std::min(desired.size(), quota_steps());

  WindowDelta delta;
  delta.denied.assign(desired.begin() + static_cast<std::ptrdiff_t>(admit),
                      desired.end());
  std::vector<int> admitted(desired.begin(),
                            desired.begin() + static_cast<std::ptrdiff_t>(admit));
  std::sort(admitted.begin(), admitted.end());
  std::sort(delta.denied.begin(), delta.denied.end());

  OrderedMutexLock lock(mutex_);
  IFET_REQUIRE(client >= 0 &&
                   client < static_cast<int>(clients_.size()) &&
                   clients_[static_cast<std::size_t>(client)].active,
               "AdmissionController::set_window: unknown client");
  Ledger& c = clients_[static_cast<std::size_t>(client)];
  std::set_difference(admitted.begin(), admitted.end(), c.admitted.begin(),
                      c.admitted.end(), std::back_inserter(delta.pin));
  std::set_difference(c.admitted.begin(), c.admitted.end(), admitted.begin(),
                      admitted.end(), std::back_inserter(delta.unpin));
  c.admitted = std::move(admitted);
  c.stats.denied_pins += delta.denied.size();
  c.stats.pinned_steps = c.admitted.size();
  c.stats.pinned_bytes = c.admitted.size() * step_bytes_;
  return delta;
}

IFET_HOT void AdmissionController::note_access(int client, int step,
                                               bool resident) {
  OrderedMutexLock lock(mutex_);
  IFET_DEBUG_ASSERT(client >= 0 &&
                        client < static_cast<int>(clients_.size()) &&
                        clients_[static_cast<std::size_t>(client)].active,
                    "AdmissionController::note_access: unknown client");
  IFET_DEBUG_ASSERT(step >= 0 && step < num_steps_,
                    "AdmissionController::note_access: step out of range");
  Ledger& c = clients_[static_cast<std::size_t>(client)];
  ++c.stats.accesses;
  std::uint8_t& seen = c.seen[static_cast<std::size_t>(step)];
  if (!resident && seen != 0) ++c.stats.reloads;
  seen = 1;
}

AdmissionStats AdmissionController::client_stats(int client) const {
  OrderedMutexLock lock(mutex_);
  IFET_REQUIRE(client >= 0 &&
                   client < static_cast<int>(clients_.size()) &&
                   clients_[static_cast<std::size_t>(client)].active,
               "AdmissionController::client_stats: unknown client");
  return clients_[static_cast<std::size_t>(client)].stats;
}

}  // namespace ifet
