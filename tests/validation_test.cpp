#include <gtest/gtest.h>

#include <memory>

#include "eval/validation.hpp"
#include "flowsim/datasets.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

using testing::box_mask;

TrackResult make_track(std::initializer_list<std::pair<int, Mask>> masks) {
  TrackResult track;
  for (auto& [step, mask] : masks) track.masks.emplace(step, mask);
  return track;
}

TEST(ValidateTrack, CleanContinuousTrack) {
  Dims d{16, 16, 16};
  // A box moving 1 voxel per step: strong overlap, constant size.
  TrackResult track = make_track({
      {0, box_mask(d, {2, 2, 2}, {5, 5, 5})},
      {1, box_mask(d, {3, 2, 2}, {6, 5, 5})},
      {2, box_mask(d, {4, 2, 2}, {7, 5, 5})},
  });
  TrackValidation report = validate_track(track);
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.steps.size(), 3u);
  EXPECT_DOUBLE_EQ(report.steps[0].overlap_ratio, 1.0);
  EXPECT_NEAR(report.steps[1].overlap_ratio, 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(report.steps[1].count_jump, 0.0);
}

TEST(ValidateTrack, FlagsCountJump) {
  Dims d{16, 16, 16};
  TrackResult track = make_track({
      {0, box_mask(d, {2, 2, 2}, {5, 5, 5})},        // 64 voxels
      {1, box_mask(d, {2, 2, 2}, {9, 9, 9})},        // 512 voxels (8x)
  });
  TrackValidation report = validate_track(track, 0.6, 0.0);
  ASSERT_EQ(report.suspicious_steps.size(), 1u);
  EXPECT_EQ(report.suspicious_steps[0], 1);
}

TEST(ValidateTrack, FlagsOverlapLoss) {
  Dims d{24, 8, 8};
  // Same size, but the feature teleports: zero overlap.
  TrackResult track = make_track({
      {0, box_mask(d, {0, 0, 0}, {3, 3, 3})},
      {1, box_mask(d, {12, 0, 0}, {15, 3, 3})},
  });
  TrackValidation report = validate_track(track, 10.0, 0.25);
  ASSERT_EQ(report.suspicious_steps.size(), 1u);
  EXPECT_EQ(report.suspicious_steps[0], 1);
}

TEST(ValidateTrack, ReportsGaps) {
  Dims d{8, 8, 8};
  TrackResult track = make_track({
      {0, box_mask(d, {0, 0, 0}, {2, 2, 2})},
      {3, box_mask(d, {0, 0, 0}, {2, 2, 2})},
  });
  TrackValidation report = validate_track(track);
  ASSERT_EQ(report.gap_steps.size(), 2u);
  EXPECT_EQ(report.gap_steps[0], 1);
  EXPECT_EQ(report.gap_steps[1], 2);
  EXPECT_FALSE(report.clean());
}

TEST(ValidateTrack, EmptyTrackIsTriviallyClean) {
  TrackValidation report = validate_track(TrackResult{});
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.steps.empty());
}

TEST(ValidateTrack, ThresholdsValidated) {
  EXPECT_THROW(validate_track(TrackResult{}, -1.0, 0.5), Error);
  EXPECT_THROW(validate_track(TrackResult{}, 1.0, 2.0), Error);
}

TEST(ValidateExtraction, DecisiveClassifierScoresWell) {
  Dims d{8, 8, 8};
  VolumeF certainty(d, 0.02f);
  for (int k = 0; k < 4; ++k) {
    for (int j = 0; j < 4; ++j) {
      for (int i = 0; i < 4; ++i) certainty.at(i, j, k) = 0.97f;
    }
  }
  ExtractionValidation report = validate_extraction(certainty);
  EXPECT_GT(report.separation(), 0.9);
  EXPECT_DOUBLE_EQ(report.boundary_fraction, 0.0);
}

TEST(ValidateExtraction, IndecisiveClassifierFlagged) {
  Dims d{8, 8, 8};
  Rng rng(3);
  VolumeF certainty(d);
  for (std::size_t i = 0; i < certainty.size(); ++i) {
    certainty[i] = static_cast<float>(rng.uniform(0.4, 0.6));
  }
  ExtractionValidation report = validate_extraction(certainty, 0.5, 0.15);
  EXPECT_LT(report.separation(), 0.2);
  EXPECT_GT(report.boundary_fraction, 0.95);
}

TEST(ValidateExtraction, BoundaryBandCountsCorrectly) {
  Dims d{4, 4, 4};
  VolumeF certainty(d, 0.0f);
  certainty.at(0, 0, 0) = 0.5f;   // exactly on the cut
  certainty.at(1, 0, 0) = 0.64f;  // inside band (0.15)
  certainty.at(2, 0, 0) = 0.66f;  // outside band
  ExtractionValidation report = validate_extraction(certainty, 0.5, 0.15);
  EXPECT_NEAR(report.boundary_fraction, 2.0 / 64.0, 1e-12);
}

TEST(ValidateExtraction, InputsValidated) {
  EXPECT_THROW(validate_extraction(VolumeF{}), Error);
  VolumeF v(Dims{2, 2, 2});
  EXPECT_THROW(validate_extraction(v, 0.5, -0.1), Error);
}

// Integration with the real tracker: a well-tracked swirling-flow feature
// passes validation; the same track with an injected teleport does not.
TEST(ValidateTrack, RealTrackerOutputIsClean) {
  SwirlingFlowConfig cfg;
  cfg.dims = Dims{24, 24, 24};
  cfg.num_steps = 15;
  auto source = std::make_shared<SwirlingFlowSource>(cfg);
  CachedSequence seq(source, 6);
  FixedRangeCriterion criterion(0.5, 1.0);
  Tracker tracker(seq, criterion);
  Vec3 c = source->feature_center(0);
  TrackResult track = tracker.track(
      Index3{static_cast<int>(c.x * 24), static_cast<int>(c.y * 24),
             static_cast<int>(c.z * 24)},
      0);
  ASSERT_FALSE(track.masks.empty());
  TrackValidation report = validate_track(track);
  EXPECT_TRUE(report.clean());

  // Sabotage one step: replace it with a disjoint far-away blob.
  track.masks.at(7) = box_mask(cfg.dims, {0, 0, 0}, {3, 3, 3});
  TrackValidation sabotaged = validate_track(track);
  EXPECT_FALSE(sabotaged.clean());
}

}  // namespace
}  // namespace ifet
