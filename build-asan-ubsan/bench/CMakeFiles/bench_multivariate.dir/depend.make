# Empty dependencies file for bench_multivariate.
# This may be replaced when dependencies are built.
