// Time-varying volume sequences (the "4D" in the paper's title).
//
// Terascale sequences do not fit in core (paper Sec 4.2.2: "when the volume
// size is large or many time steps are used, it can be time consuming to
// load the volumes for training since not all the data can fit in core").
// A VolumeSequence therefore produces steps on demand from a source
// (procedural generator or file reader) and keeps only a small LRU-cached
// working set resident — mirroring the out-of-core constraint that
// motivates training from key frames only.
#pragma once

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "volume/histogram.hpp"
#include "volume/volume.hpp"

namespace ifet {

/// Abstract producer of the volume for a given time step.
class VolumeSource {
 public:
  virtual ~VolumeSource() = default;

  virtual Dims dims() const = 0;
  virtual int num_steps() const = 0;
  /// Global scalar range across all steps (used to fix histogram binning so
  /// cumulative coordinates are comparable between time steps).
  virtual std::pair<double, double> value_range() const = 0;
  virtual VolumeF generate(int step) const = 0;
};

/// Adapts a lambda to a VolumeSource.
class CallbackSource final : public VolumeSource {
 public:
  CallbackSource(Dims dims, int num_steps, std::pair<double, double> range,
                 std::function<VolumeF(int)> generate)
      : dims_(dims),
        num_steps_(num_steps),
        range_(range),
        generate_(std::move(generate)) {}

  Dims dims() const override { return dims_; }
  int num_steps() const override { return num_steps_; }
  std::pair<double, double> value_range() const override { return range_; }
  VolumeF generate(int step) const override { return generate_(step); }

 private:
  Dims dims_;
  int num_steps_;
  std::pair<double, double> range_;
  std::function<VolumeF(int)> generate_;
};

/// LRU-cached view over a VolumeSource, plus per-step histogram access.
///
/// Thread safety: cache bookkeeping is internally synchronized, so
/// concurrent step()/cumulative_histogram() calls are safe — but the
/// returned references stay valid only until the entry is evicted. When
/// reading from several threads (e.g. run_batch_render with a shared
/// sequence), size `cache_capacity` to at least the number of concurrent
/// readers, or have each worker generate() its own volume.
class VolumeSequence {
 public:
  /// Keeps at most `cache_capacity` decoded steps in memory.
  VolumeSequence(std::shared_ptr<const VolumeSource> source,
                 std::size_t cache_capacity = 4, int histogram_bins = 256);

  Dims dims() const { return source_->dims(); }
  int num_steps() const { return source_->num_steps(); }
  std::pair<double, double> value_range() const {
    return source_->value_range();
  }
  int histogram_bins() const { return histogram_bins_; }

  /// Volume at `step` (generated on miss; cached).
  const VolumeF& step(int step) const;

  /// Cumulative histogram of `step` over the sequence-global value range.
  const CumulativeHistogram& cumulative_histogram(int step) const;

  /// Histogram of `step` over the sequence-global value range.
  Histogram histogram(int step) const;

  /// Number of generate() calls so far (cache-miss count; for tests).
  std::size_t generation_count() const { return generations_; }

 private:
  struct Entry {
    VolumeF volume;
    std::unique_ptr<CumulativeHistogram> cumhist;
  };

  Entry& fetch(int step) const;

  std::shared_ptr<const VolumeSource> source_;
  std::size_t capacity_;
  int histogram_bins_;
  mutable std::mutex mutex_;
  mutable std::list<int> lru_;  // front = most recent
  mutable std::unordered_map<int, Entry> cache_;
  mutable std::size_t generations_ = 0;
};

}  // namespace ifet
