file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_argon_sequence.dir/bench_fig4_argon_sequence.cpp.o"
  "CMakeFiles/bench_fig4_argon_sequence.dir/bench_fig4_argon_sequence.cpp.o.d"
  "bench_fig4_argon_sequence"
  "bench_fig4_argon_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_argon_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
