// Callgraph pass: hot-path escape analysis (docs/STATIC_ANALYSIS.md).
//
// Builds a function-level call graph across every scanned TU, takes the
// functions annotated IFET_HOT (src/util/hot_path.hpp) as roots, and
// propagates reachability: any reachable function that heap-allocates,
// throws, performs stream I/O, or acquires a mutex ranked below the
// hot-path floor is reported, with the call chain from the root that
// reaches it. Rules (all under exit bit 8):
//   hot-path-alloc  new / make_shared / make_unique, container growth
//                   (push_back, resize, reserve, ...), std::string and
//                   stream construction, to_string.
//   hot-path-throw  throw / IFET_REQUIRE. IFET_DEBUG_ASSERT is exempt:
//                   it compiles away outside IFET_CHECKED_ITERATORS
//                   builds, so it is the sanctioned hot-path assert.
//   hot-path-io     iostream / stdio calls.
//   hot-path-lock   locking a mutex member that is unranked, or ranked
//                   below MutexRank::kCacheManager (30) — the ranks
//                   below the floor are the streaming coordination locks
//                   that can block behind disk I/O.
//
// Resolution is edge-conservative, like the lock-order pass: an edge is
// added only when the callee is resolvable (member type, local/param
// type, Class::method qualification, self-call, or a unique free
// function). Unresolvable receivers produce no edge — silence is not
// proof, but every emitted chain is real at the syntactic level. Known
// limitations (documented in docs/STATIC_ANALYSIS.md): virtual dispatch
// does not fan out to overrides, lambda bodies are isolated (a lambda
// defined in a hot function may legitimately be deferred to a cold
// thread), operator overloads are invisible, and out-of-class template
// method definitions are not recognized as definitions.
//
// Waivers: `IFET_HOT_ALLOW("reason")` on the offending line or the line
// above (compiled, reviewable), or the ordinary
// `// ifet-lint: allow(<rule>)` marker.
#pragma once

#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "lint/tokenizer.hpp"

namespace ifet_lint {

namespace cg_detail {

/// Mutex ranks below this may block behind streaming I/O; hot paths must
/// not take them. 30 == MutexRank::kCacheManager, the fetch fast path's
/// own lock.
constexpr int kHotPathMinRank = 30;

inline bool is_keyword(const std::string& name) {
  static const std::set<std::string> kw = {
      "if",         "for",         "while",      "switch",
      "catch",      "return",      "sizeof",     "new",
      "delete",     "defined",     "decltype",   "alignof",
      "alignas",    "throw",       "static_cast", "dynamic_cast",
      "reinterpret_cast", "const_cast", "assert", "static_assert",
      "noexcept",   "requires",    "operator",   "explicit",
      "constexpr",  "inline",      "virtual",    "else",
      "do",         "case",        "default",    "using",
      "typename",   "template"};
  if (kw.count(name) != 0) return true;
  if (name.rfind("__", 0) == 0) return true;  // reserved (__attribute__...)
  // Macro-ish names (TEST, EXPECT_EQ, IFET_REQUIRE, BENCHMARK...): no
  // lowercase letter at all.
  for (const char c : name) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

struct Violation {
  std::string rule;     // hot-path-{alloc,throw,io,lock} or det-*
  std::string what;     // short human description of the escape
  std::string cls;      // enclosing class at the site (lock resolution)
  std::string mutex;    // hot-path-lock: the mutex member name;
                        // det-unordered-iter: the range-for receiver
  std::size_t line = 0;  // 1-based
  std::size_t file_index = 0;
};

struct CallRef {
  enum Kind { kBare, kMember, kObj, kQualified } kind = kBare;
  std::string recv;    // member/obj receivers
  std::string callee;
  std::string cls;     // enclosing class at the call site, or the
                       // qualifying class for kQualified
};

struct FnNode {
  std::string cls;   // empty for free functions
  std::string name;
  std::string path;
  std::size_t line = 0;  // first definition head, 1-based
  bool hot = false;
  bool det = false;  // IFET_DETERMINISTIC root
  std::vector<Violation> violations;
  std::vector<CallRef> calls;
  std::map<std::string, std::string> local_types;  // var -> type
  std::set<std::string> unordered_locals;  // unordered_map/set locals
};

struct ClassInfo {
  std::map<std::string, std::string> member_types;  // name_ -> Type
  std::map<std::string, std::string> mutex_ranks;   // mutex_ -> rank ("" = unranked)
  std::set<std::string> methods_defined;
  std::set<std::string> unordered_members;  // unordered_map/set members
};

struct Model {
  std::map<std::string, FnNode> fns;  // "Cls::name" or "name"
  std::map<std::string, ClassInfo> classes;
  std::map<std::string, std::string> aliases;  // VolumeF -> Volume
  std::map<std::string, int> rank_values;      // kCacheManager -> 30
  std::set<std::string> unordered_aliases;     // MemoMap -> unordered_map
};

inline std::string fn_key(const std::string& cls, const std::string& name) {
  return cls.empty() ? name : cls + "::" + name;
}

// One position-tagged event per regex hit; the applier decides meaning
// from the scope it fires in (a `name(` token is a definition head at
// namespace or class scope but a call inside a method body).
struct Event {
  enum Kind {
    kClassHead,
    kNamespaceHead,
    kQualName,    // a=class, b=name  (head at namespace scope, call in body)
    kNameParen,   // a=name; b="1" when a return type precedes it
    kMemberCall,  // a=recv_, b=callee
    kObjCall,     // a=recv, b=callee
    kLocalDecl,   // a=Type, b=var
    kMemberDecl,  // a=Type, b=member_
    kMutexDecl,   // a=mutex member, b=rank name ("" = unranked)
    kViolation,   // rule/what filled
    kLock,        // a=mutex name
    kUnorderedDecl,  // a=var declared as std::unordered_{map,set,...}
    kRangeFor,    // a=range-for receiver identifier
  } kind;
  std::string a, b;
  std::string rule, what;
};

struct Scope {
  enum Kind { kNamespace, kClass, kMethod, kLambda, kOther } kind;
  std::string cls;     // kClass: class name; kMethod: enclosing class
  std::string fn;      // kMethod: function key
};

inline bool line_has_hot_marker(const std::vector<std::string>& code,
                                std::size_t i) {
  static const std::regex hot_re(R"(\bIFET_HOT\b)");
  if (std::regex_search(code[i], hot_re)) return true;
  return i > 0 && std::regex_search(code[i - 1], hot_re);
}

inline bool line_has_det_marker(const std::vector<std::string>& code,
                                std::size_t i) {
  static const std::regex det_re(R"(\bIFET_DETERMINISTIC\b)");
  if (std::regex_search(code[i], det_re)) return true;
  return i > 0 && std::regex_search(code[i - 1], det_re);
}

inline bool hot_allow_waived(const std::vector<std::string>& code,
                             std::size_t i) {
  if (code[i].find("IFET_HOT_ALLOW") != std::string::npos) return true;
  return i > 0 && code[i - 1].find("IFET_HOT_ALLOW") != std::string::npos;
}

inline bool det_allow_waived(const std::vector<std::string>& code,
                             std::size_t i) {
  if (code[i].find("IFET_DET_ALLOW") != std::string::npos) return true;
  return i > 0 && code[i - 1].find("IFET_DET_ALLOW") != std::string::npos;
}

inline void scan_line_events(const std::string& line,
                             std::map<std::size_t, std::vector<Event>>& ev) {
  static const std::regex class_head_re(
      R"(\b(class|struct)\s+((IFET_\w+\s*(\(\s*\))?\s*)*)(\w+))");
  static const std::regex namespace_re(R"(\bnamespace\b)");
  static const std::regex qual_re(R"(\b([A-Z]\w*)\s*::\s*(~?\w+)\s*\()");
  static const std::regex name_paren_re(R"(\b([A-Za-z_~][\w]*)\s*\()");
  static const std::regex member_call_re(R"(\b(\w+_)\s*(->|\.)\s*(\w+)\s*\()");
  static const std::regex obj_call_re(
      R"(\b([a-z]\w*)\s*(->|\.)\s*(\w+)\s*\()");
  static const std::regex local_decl_re(
      R"(\b(?:const\s+)?([A-Z]\w*)(?:\s*<[^;{}()=]*>)?\s*([&*]?)\s*([a-z]\w*)\s*[,)=;({])");
  static const std::regex mutex_rank_decl_re(
      R"(\bOrderedMutex\s+(\w+)\s*\{\s*MutexRank\s*::\s*(\w+)\s*\})");
  static const std::regex mutex_plain_decl_re(
      R"(\b(?:std\s*::\s*)?(?:mutex|shared_mutex|Mutex)\s+(\w+_)\s*[;{=])");
  static const std::regex smart_member_re(
      R"(\b(?:std\s*::\s*)?(?:unique_ptr|shared_ptr)\s*<\s*(?:const\s+)?(\w+)[^;]*>\s+(\w+_)\s*[;={])");
  static const std::regex plain_member_re(R"(\b([A-Z]\w*)\s*[&*]?\s+(\w+_)\s*[;={])");
  // Violation sites.
  static const std::regex alloc_new_re(R"(\bnew\b)");
  static const std::regex alloc_make_re(R"(\bmake_(shared|unique)\s*<)");
  static const std::regex alloc_grow_re(
      R"((\.|->)\s*(push_back|emplace_back|push_front|emplace_front|emplace|resize|reserve|insert)\s*\()");
  static const std::regex alloc_ctor_re(
      R"(\bstd\s*::\s*(string|vector|deque|list|map|multimap|set|unordered_map|unordered_set|function|[io]?stringstream)\b(\s*<[^;=]*>)?\s+\w+\s*[({;=])");
  static const std::regex alloc_tostring_re(R"(\bto_string\s*\()");
  static const std::regex throw_re(R"(\bthrow\b)");
  static const std::regex require_re(R"(\bIFET_REQUIRE\s*\()");
  static const std::regex io_re(
      R"(\b(std\s*::\s*)?(cout|cerr|clog|cin|ifstream|ofstream|fstream|getline|printf|fprintf|fscanf|fopen|fread|fwrite)\b)");
  static const std::regex raii_lock_re(
      R"(\b(OrderedMutexLock|MutexLock|GenericMutexLock\s*<[^>]*>)\s+\w+\s*[({]\s*(\w+)\s*[)}])");
  static const std::regex std_lock_re(
      R"(\bstd\s*::\s*(lock_guard|unique_lock|scoped_lock)\s*<[^>]*>\s+\w+\s*[({]\s*(\w+))");
  // Determinism-contract sites (rules det-*, reported only when reachable
  // from an IFET_DETERMINISTIC root; see determinism_pass.hpp).
  static const std::regex unordered_decl_re(
      R"(\bunordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)\s*[;={(])");
  static const std::regex range_for_re(
      R"(\bfor\s*\(([^()]*[^:\s])\s*:\s*(\w+)\s*\))");
  // Seeded engines (mt19937 with a fixed seed) are reproducible and NOT
  // flagged; random_device and the C rand() state are the escapes.
  static const std::regex det_rand_re(
      R"(\b(?:rand\s*\(\s*\)|srand\s*\(|random_device\b))");
  static const std::regex det_time_re(
      R"(\b(?:(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\(|gettimeofday\s*\(|clock_gettime\s*\(|clock\s*\(\s*\)|time\s*\(\s*(?:NULL|nullptr|0|&)))");
  static const std::regex det_ptr_hash_re(
      R"(\bstd\s*::\s*(?:hash|less|greater)\s*<\s*[^<>]*\*\s*>)");
  static const std::regex det_ptr_cast_re(
      R"(\breinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\s*>)");
  static const std::regex det_reduce_re(
      R"(\bstd\s*::\s*(?:reduce|transform_reduce)\s*\()");
  static const std::regex det_policy_re(
      R"(\bexecution\s*::\s*(?:par_unseq|par|unseq)\b)");
  static const std::regex det_atomic_float_re(
      R"(\batomic\s*<\s*(?:float|double|long\s+double)\s*>)");
  static const std::regex det_env_re(
      R"(\b(?:getenv\s*\(|secure_getenv\s*\(|setlocale\s*\(|std\s*::\s*locale\b))");

  std::vector<std::pair<std::size_t, std::size_t>> claimed;
  auto claim = [&](std::size_t pos, std::size_t len) {
    claimed.emplace_back(pos, pos + len);
  };
  auto is_claimed = [&](std::size_t pos) {
    for (const auto& [b, e] : claimed) {
      if (pos >= b && pos < e) return true;
    }
    return false;
  };
  auto add = [&](std::size_t pos, Event e) { ev[pos].push_back(std::move(e)); };

  std::smatch m;
  std::string::const_iterator begin = line.begin();

  for (auto it = std::sregex_iterator(line.begin(), line.end(), class_head_re);
       it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position(0));
    // `enum class X` is not a class head.
    const std::string before = line.substr(0, pos);
    if (std::regex_search(before, std::regex(R"(\benum\s*$)"))) continue;
    add(pos, {Event::kClassHead, (*it)[5].str(), "", "", ""});
    claim(pos, static_cast<std::size_t>(it->length(0)));
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), namespace_re);
       it != std::sregex_iterator(); ++it) {
    add(static_cast<std::size_t>(it->position(0)),
        {Event::kNamespaceHead, "", "", "", ""});
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), qual_re);
       it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position(0));
    // Skip `Outer::Inner::f(`'s middle segment mismatches: only take the
    // final Class::name pair; a preceding `::` means `pos` starts mid-chain.
    if (pos >= 2 && line[pos - 1] == ':' && line[pos - 2] == ':') continue;
    add(pos, {Event::kQualName, (*it)[1].str(), (*it)[2].str(), "", ""});
    claim(pos, static_cast<std::size_t>(it->length(0)));
  }
  for (auto it =
           std::sregex_iterator(line.begin(), line.end(), member_call_re);
       it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position(0));
    if (is_claimed(pos)) continue;
    add(pos, {Event::kMemberCall, (*it)[1].str(), (*it)[3].str(), "", ""});
    claim(pos, static_cast<std::size_t>(it->length(0)));
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), obj_call_re);
       it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position(0));
    if (is_claimed(pos)) continue;
    add(pos, {Event::kObjCall, (*it)[1].str(), (*it)[3].str(), "", ""});
    claim(pos, static_cast<std::size_t>(it->length(0)));
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), name_paren_re);
       it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position(0));
    if (is_claimed(pos)) continue;
    const std::string name = (*it)[1].str();
    if (is_keyword(name)) continue;
    // Previous non-space character decides plausibility: `.x(`, `::x(`,
    // `>x(`, `~x(` are handled by other events or uninteresting.
    std::size_t p = pos;
    while (p > 0 && std::isspace(static_cast<unsigned char>(line[p - 1]))) {
      --p;
    }
    const char prev = p > 0 ? line[p - 1] : '\0';
    if (prev == '.' || prev == ':' || prev == '>' || prev == '~') continue;
    const bool typed_before =
        prev == '&' || prev == '*' ||
        std::isalnum(static_cast<unsigned char>(prev)) || prev == '_';
    add(pos, {Event::kNameParen, name, typed_before ? "1" : "", "", ""});
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), local_decl_re);
       it != std::sregex_iterator(); ++it) {
    // rule carries the `&`/`*` declarator marker: reference and pointer
    // locals bind to an existing object and run no constructor.
    add(static_cast<std::size_t>(it->position(0)),
        {Event::kLocalDecl, (*it)[1].str(), (*it)[3].str(), (*it)[2].str(),
         ""});
  }
  for (auto it =
           std::sregex_iterator(line.begin(), line.end(), mutex_rank_decl_re);
       it != std::sregex_iterator(); ++it) {
    add(static_cast<std::size_t>(it->position(0)),
        {Event::kMutexDecl, (*it)[1].str(), (*it)[2].str(), "", ""});
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                      mutex_plain_decl_re);
       it != std::sregex_iterator(); ++it) {
    add(static_cast<std::size_t>(it->position(0)),
        {Event::kMutexDecl, (*it)[1].str(), "", "", ""});
  }
  for (auto it =
           std::sregex_iterator(line.begin(), line.end(), smart_member_re);
       it != std::sregex_iterator(); ++it) {
    add(static_cast<std::size_t>(it->position(0)),
        {Event::kMemberDecl, (*it)[1].str(), (*it)[2].str(), "", ""});
  }
  for (auto it =
           std::sregex_iterator(line.begin(), line.end(), plain_member_re);
       it != std::sregex_iterator(); ++it) {
    add(static_cast<std::size_t>(it->position(0)),
        {Event::kMemberDecl, (*it)[1].str(), (*it)[2].str(), "", ""});
  }

  auto add_violation = [&](std::size_t pos, const char* rule,
                           const std::string& what) {
    Event e{Event::kViolation, "", "", rule, what};
    ev[pos].push_back(std::move(e));
  };
  for (auto it = std::sregex_iterator(line.begin(), line.end(), alloc_new_re);
       it != std::sregex_iterator(); ++it) {
    const auto pos = static_cast<std::size_t>(it->position(0));
    // `operator new` definitions are the allocator itself, not a use.
    const std::string before = line.substr(0, pos);
    if (std::regex_search(before, std::regex(R"(\boperator\s*$)"))) continue;
    add_violation(pos, "hot-path-alloc", "operator new expression");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), alloc_make_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "hot-path-alloc",
                  "make_" + (*it)[1].str() + " allocation");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), alloc_grow_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "hot-path-alloc",
                  "container growth call " + (*it)[2].str() + "()");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), alloc_ctor_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "hot-path-alloc",
                  "constructs an owning std::" + (*it)[1].str());
  }
  for (auto it =
           std::sregex_iterator(line.begin(), line.end(), alloc_tostring_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "hot-path-alloc",
                  "to_string builds a heap string");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), throw_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "hot-path-throw",
                  "throw expression");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), require_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "hot-path-throw",
                  "IFET_REQUIRE throws on failure (IFET_DEBUG_ASSERT is the "
                  "hot-path assert)");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), io_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "hot-path-io",
                  "stream/stdio call " + (*it)[2].str());
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), raii_lock_re);
       it != std::sregex_iterator(); ++it) {
    Event e{Event::kLock, (*it)[2].str(), "", "", ""};
    ev[static_cast<std::size_t>(it->position(0))].push_back(std::move(e));
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), std_lock_re);
       it != std::sregex_iterator(); ++it) {
    Event e{Event::kLock, (*it)[2].str(), "", "", ""};
    ev[static_cast<std::size_t>(it->position(0))].push_back(std::move(e));
  }
  for (auto it =
           std::sregex_iterator(line.begin(), line.end(), unordered_decl_re);
       it != std::sregex_iterator(); ++it) {
    add(static_cast<std::size_t>(it->position(0)),
        {Event::kUnorderedDecl, (*it)[1].str(), "", "", ""});
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), range_for_re);
       it != std::sregex_iterator(); ++it) {
    add(static_cast<std::size_t>(it->position(0)),
        {Event::kRangeFor, (*it)[2].str(), "", "", ""});
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), det_rand_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "det-rand-time",
                  "non-deterministic random source");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), det_time_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "det-rand-time",
                  "wall-clock read");
  }
  for (auto it =
           std::sregex_iterator(line.begin(), line.end(), det_ptr_hash_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)),
                  "det-pointer-order", "hashing/ordering by pointer value");
  }
  for (auto it =
           std::sregex_iterator(line.begin(), line.end(), det_ptr_cast_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)),
                  "det-pointer-order", "pointer-to-integer cast");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), det_reduce_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)),
                  "det-float-reduce",
                  "std::reduce reassociates floating-point sums");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), det_policy_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)),
                  "det-float-reduce", "parallel execution policy");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                      det_atomic_float_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)),
                  "det-float-reduce",
                  "atomic float accumulation is timing-ordered");
  }
  for (auto it = std::sregex_iterator(line.begin(), line.end(), det_env_re);
       it != std::sregex_iterator(); ++it) {
    add_violation(static_cast<std::size_t>(it->position(0)), "det-env",
                  "environment/locale dependence");
  }
  (void)m;
  (void)begin;
}

/// Harvests `using Alias = Type<...>;` and the MutexRank enum values;
/// these are scope-independent.
inline void harvest_line_globals(const std::string& code_line,
                                 bool& in_rank_enum, Model& model) {
  static const std::regex using_alias_re(
      R"(\busing\s+(\w+)\s*=\s*(?:ifet\s*::\s*)?(\w+))");
  static const std::regex unordered_alias_re(
      R"(\busing\s+(\w+)\s*=\s*(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\b)");
  static const std::regex enum_head_re(R"(\benum\s+(class\s+)?MutexRank\b)");
  static const std::regex enum_value_re(R"(\b(k\w+)\s*=\s*(\d+))");

  for (auto it = std::sregex_iterator(code_line.begin(), code_line.end(),
                                      using_alias_re);
       it != std::sregex_iterator(); ++it) {
    if ((*it)[1].str() != (*it)[2].str()) {
      model.aliases[(*it)[1].str()] = (*it)[2].str();
    }
  }
  for (auto it = std::sregex_iterator(code_line.begin(), code_line.end(),
                                      unordered_alias_re);
       it != std::sregex_iterator(); ++it) {
    model.unordered_aliases.insert((*it)[1].str());
  }
  if (std::regex_search(code_line, enum_head_re)) in_rank_enum = true;
  if (in_rank_enum) {
    for (auto it = std::sregex_iterator(code_line.begin(), code_line.end(),
                                        enum_value_re);
         it != std::sregex_iterator(); ++it) {
      model.rank_values[(*it)[1].str()] = std::stoi((*it)[2].str());
    }
    if (code_line.find("};") != std::string::npos) in_rank_enum = false;
  }
}

inline void walk_file(const SourceFile& file, std::size_t file_index,
                      Model& model) {
  struct Pending {
    bool active = false;
    std::string cls, name;
    std::size_t head_line = 0;
    bool hot = false;
    bool det = false;
  };
  std::vector<Scope> scopes;
  Pending pending_fn;
  bool pending_class = false, pending_namespace = false;
  std::string pending_class_name;
  bool in_rank_enum = false;

  auto innermost = [&]() -> const Scope* {
    return scopes.empty() ? nullptr : &scopes.back();
  };
  auto enclosing_class = [&]() -> std::string {
    // Out-of-class definitions (`int Table::total() {...}`) have no kClass
    // scope; the method scope carries the qualifying class, so self-calls
    // and member lookups resolve there too.
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->cls;
      if (it->kind == Scope::kMethod && !it->cls.empty()) return it->cls;
    }
    return "";
  };
  auto current_fn = [&]() -> std::string {
    // Lambda isolation: a lambda body is attributed to nothing.
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kLambda) return "";
      if (it->kind == Scope::kMethod) return it->fn;
    }
    return "";
  };

  static const std::regex lambda_re(
      R"(\]\s*(\([^)]*\))?\s*(mutable\s*)?(noexcept\s*)?(->[^={]*)?\{)");

  bool in_preproc = false;  // '#' line or a backslash continuation of one
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    // Preprocessor directives (and macro-body continuations) are not
    // statements: a `#define X __attribute__((hot))` must not register a
    // function, and macro-body braces must not disturb scope depth.
    if (!in_preproc) {
      const auto first = file.raw[i].find_first_not_of(" \t");
      in_preproc = first != std::string::npos && file.raw[i][first] == '#';
    }
    if (in_preproc) {
      in_preproc = !file.raw[i].empty() && file.raw[i].back() == '\\';
      continue;
    }
    harvest_line_globals(line, in_rank_enum, model);

    std::map<std::size_t, std::vector<Event>> events;
    scan_line_events(line, events);
    std::set<std::size_t> lambda_braces;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), lambda_re);
         it != std::sregex_iterator(); ++it) {
      lambda_braces.insert(static_cast<std::size_t>(it->position(0)) +
                           static_cast<std::size_t>(it->length(0)) - 1);
    }

    auto register_pending = [&]() {
      const std::string key = fn_key(pending_fn.cls, pending_fn.name);
      FnNode& node = model.fns[key];
      if (node.name.empty()) {
        node.cls = pending_fn.cls;
        node.name = pending_fn.name;
        node.path = file.path.string();
        node.line = pending_fn.head_line + 1;
      }
      node.hot = node.hot || pending_fn.hot;
      node.det = node.det || pending_fn.det;
      if (!pending_fn.cls.empty()) {
        model.classes[pending_fn.cls].methods_defined.insert(pending_fn.name);
      }
      // Params from the head line(s) feed local type resolution.
      static const std::regex param_decl_re(
          R"(\b(?:const\s+)?([A-Z]\w*)(?:\s*<[^;{}()=]*>)?\s*[&*]?\s+([a-z]\w*)\s*[,)=])");
      for (std::size_t h = pending_fn.head_line; h <= i; ++h) {
        const std::string& hl = file.code[h];
        for (auto it =
                 std::sregex_iterator(hl.begin(), hl.end(), param_decl_re);
             it != std::sregex_iterator(); ++it) {
          node.local_types[(*it)[2].str()] = (*it)[1].str();
        }
      }
      scopes.push_back({Scope::kMethod, pending_fn.cls, key});
      pending_fn = Pending{};
    };

    for (std::size_t c = 0; c < line.size(); ++c) {
      auto evit = events.find(c);
      if (evit != events.end()) {
        const Scope* top = innermost();
        const bool in_class = top && top->kind == Scope::kClass;
        const bool at_ns =
            !top || top->kind == Scope::kNamespace || top->kind == Scope::kOther;
        const std::string fn = current_fn();
        for (const Event& e : evit->second) {
          switch (e.kind) {
            case Event::kClassHead:
              if (!fn.empty()) break;  // local structs inside fns: ignore
              pending_class = true;
              pending_class_name = e.a;
              break;
            case Event::kNamespaceHead:
              pending_namespace = true;
              break;
            case Event::kQualName:
              if (at_ns && !pending_fn.active) {
                pending_fn = {true, e.a, e.b, i,
                              line_has_hot_marker(file.code, i),
                              line_has_det_marker(file.code, i)};
              } else if (!fn.empty()) {
                model.fns[fn].calls.push_back(
                    {CallRef::kQualified, "", e.b, e.a});
              }
              break;
            case Event::kNameParen:
              if (!fn.empty()) {
                model.fns[fn].calls.push_back(
                    {CallRef::kBare, "", e.a, enclosing_class()});
              } else if (in_class && !pending_fn.active) {
                pending_fn = {true, enclosing_class(), e.a, i,
                              line_has_hot_marker(file.code, i),
                              line_has_det_marker(file.code, i)};
              } else if (at_ns && !pending_fn.active && e.b == "1") {
                pending_fn = {true, "", e.a, i,
                              line_has_hot_marker(file.code, i),
                              line_has_det_marker(file.code, i)};
              }
              break;
            case Event::kMemberCall:
              if (!fn.empty()) {
                model.fns[fn].calls.push_back(
                    {CallRef::kMember, e.a, e.b, enclosing_class()});
              }
              break;
            case Event::kObjCall:
              if (!fn.empty()) {
                model.fns[fn].calls.push_back(
                    {CallRef::kObj, e.a, e.b, enclosing_class()});
              }
              break;
            case Event::kLocalDecl:
              if (!fn.empty()) {
                model.fns[fn].local_types.emplace(e.b, e.a);
                // A declared-by-value local also runs Type's ctor;
                // reference/pointer declarators only bind.
                if (e.rule.empty()) {
                  model.fns[fn].calls.push_back(
                      {CallRef::kQualified, "", e.a, e.a});
                }
              }
              break;
            case Event::kMemberDecl:
              if (in_class) {
                model.classes[top->cls].member_types.emplace(e.b, e.a);
              }
              break;
            case Event::kMutexDecl:
              if (in_class) {
                model.classes[top->cls].mutex_ranks[e.a] = e.b;
              }
              break;
            case Event::kViolation:
              if (!fn.empty()) {
                model.fns[fn].violations.push_back(
                    {e.rule, e.what, enclosing_class(), "", i + 1,
                     file_index});
              }
              break;
            case Event::kLock:
              if (!fn.empty()) {
                model.fns[fn].violations.push_back(
                    {"hot-path-lock", "", enclosing_class(), e.a, i + 1,
                     file_index});
              }
              break;
            case Event::kUnorderedDecl:
              if (!fn.empty()) {
                model.fns[fn].unordered_locals.insert(e.a);
              } else if (in_class) {
                model.classes[top->cls].unordered_members.insert(e.a);
              }
              break;
            case Event::kRangeFor:
              // Candidate only: the determinism pass resolves the receiver
              // against the unordered members/locals and drops the rest
              // (edge-conservative, like hot-path-lock).
              if (!fn.empty()) {
                model.fns[fn].violations.push_back(
                    {"det-unordered-iter", "", enclosing_class(), e.a, i + 1,
                     file_index});
              }
              break;
          }
        }
      }
      const char ch = line[c];
      if (ch == ';') {
        pending_fn = Pending{};
        pending_class = false;
        pending_namespace = false;
      } else if (ch == '{') {
        if (lambda_braces.count(c) != 0) {
          scopes.push_back({Scope::kLambda, "", ""});
        } else if (pending_class) {
          scopes.push_back({Scope::kClass, pending_class_name, ""});
          pending_class = false;
        } else if (pending_fn.active) {
          register_pending();
        } else if (pending_namespace) {
          scopes.push_back({Scope::kNamespace, "", ""});
          pending_namespace = false;
        } else {
          scopes.push_back({Scope::kOther, "", ""});
        }
      } else if (ch == '}') {
        if (!scopes.empty()) scopes.pop_back();
      }
    }
  }
}

inline std::string resolve_type(const Model& model, std::string type) {
  for (int hop = 0; hop < 4; ++hop) {
    auto it = model.aliases.find(type);
    if (it == model.aliases.end()) break;
    type = it->second;
  }
  return type;
}

/// Resolves one call to a defined function key, or "" when the receiver
/// cannot be determined (edge-conservative: no edge).
inline std::string resolve_call(const Model& model, const FnNode& from,
                                const CallRef& call) {
  auto defined = [&](const std::string& key) {
    return model.fns.count(key) != 0 ? key : std::string();
  };
  switch (call.kind) {
    case CallRef::kQualified:
      return defined(fn_key(resolve_type(model, call.cls), call.callee));
    case CallRef::kMember: {
      auto cit = model.classes.find(call.cls);
      if (cit == model.classes.end()) return "";
      auto mit = cit->second.member_types.find(call.recv);
      if (mit == cit->second.member_types.end()) return "";
      return defined(fn_key(resolve_type(model, mit->second), call.callee));
    }
    case CallRef::kObj: {
      auto lit = from.local_types.find(call.recv);
      if (lit == from.local_types.end()) return "";
      return defined(fn_key(resolve_type(model, lit->second), call.callee));
    }
    case CallRef::kBare: {
      if (!call.cls.empty()) {
        auto cit = model.classes.find(call.cls);
        if (cit != model.classes.end() &&
            cit->second.methods_defined.count(call.callee) != 0) {
          return fn_key(call.cls, call.callee);
        }
      }
      if (!defined(call.callee).empty()) return call.callee;
      // Constructor of a locally-visible class: `FlatMlp(...)`.
      const std::string t = resolve_type(model, call.callee);
      return defined(fn_key(t, t));
    }
  }
  return "";
}

/// The call graph built once per run and shared between the hot-path and
/// determinism passes (both walk the same edges, from different roots).
struct Analysis {
  Model model;
  std::map<std::string, std::set<std::string>> edges;
};

/// fn -> {owning root, parent on the chain from that root}.
using ReachMap = std::map<std::string, std::pair<std::string, std::string>>;

inline Analysis build_analysis(const std::vector<SourceFile>& files) {
  Analysis a;
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (files[i].ok) walk_file(files[i], i, a.model);
  }
  // Edges, resolved once.
  for (const auto& [key, node] : a.model.fns) {
    for (const CallRef& call : node.calls) {
      const std::string target = resolve_call(a.model, node, call);
      if (!target.empty() && target != key) a.edges[key].insert(target);
    }
  }
  return a;
}

/// Reachability from every root where `flag` is set; the first root (in
/// sorted order) to reach a function owns its report chain.
inline ReachMap reach_from_roots(const Analysis& a, bool FnNode::*flag) {
  ReachMap reached;
  for (const auto& [key, node] : a.model.fns) {
    if (!(node.*flag) || reached.count(key) != 0) continue;
    reached[key] = {key, ""};
    std::vector<std::string> queue{key};
    while (!queue.empty()) {
      const std::string cur = queue.back();
      queue.pop_back();
      auto eit = a.edges.find(cur);
      if (eit == a.edges.end()) continue;
      for (const std::string& next : eit->second) {
        if (reached.count(next) != 0) continue;
        reached[next] = {key, cur};
        queue.push_back(next);
      }
    }
  }
  return reached;
}

inline std::string chain_of(ReachMap& reached, const std::string& fn) {
  std::vector<std::string> rev;
  std::string cur = fn;
  while (!cur.empty()) {
    rev.push_back(cur);
    cur = reached[cur].second;
  }
  std::string out;
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += *it;
  }
  return out;
}

}  // namespace cg_detail

/// Builds the shared cross-TU call graph once; ifet_lint hands the result
/// to both run_callgraph_pass and run_determinism_pass.
inline cg_detail::Analysis build_callgraph_analysis(
    const std::vector<SourceFile>& files) {
  return cg_detail::build_analysis(files);
}

/// Runs the hot-path escape analysis over a prebuilt call graph.
inline void run_callgraph_pass(const std::vector<SourceFile>& files,
                               const cg_detail::Analysis& analysis,
                               std::vector<Finding>& findings) {
  using namespace cg_detail;
  const Model& model = analysis.model;
  ReachMap reached = reach_from_roots(analysis, &FnNode::hot);

  std::set<std::string> emitted;
  for (const auto& [key, node] : model.fns) {
    auto rit = reached.find(key);
    if (rit == reached.end()) continue;
    const std::string& root = rit->second.first;
    for (const Violation& v : node.violations) {
      std::string rule = v.rule;
      std::string what = v.what;
      // det-* sites belong to the determinism pass, whose roots differ.
      if (rule.rfind("det-", 0) == 0) continue;
      if (rule == "hot-path-lock") {
        // Only mutex members of the enclosing class are judged; locals
        // and unresolvable names produce no finding.
        auto cit = model.classes.find(v.cls);
        if (cit == model.classes.end()) continue;
        auto mit = cit->second.mutex_ranks.find(v.mutex);
        if (mit == cit->second.mutex_ranks.end()) continue;
        if (mit->second.empty()) {
          what = "locks unranked mutex '" + v.mutex + "'";
        } else {
          auto vit = model.rank_values.find(mit->second);
          const int rank = vit == model.rank_values.end() ? -1 : vit->second;
          if (rank >= kHotPathMinRank) continue;
          what = "locks mutex '" + v.mutex + "' (rank " + mit->second +
                 ") below the hot-path floor";
        }
      }
      const SourceFile& file = files[v.file_index];
      const std::size_t idx = v.line - 1;
      if (suppressed(file.raw, idx, rule)) continue;
      if (hot_allow_waived(file.code, idx)) continue;
      const std::string dedup_key =
          rule + "|" + file.path.string() + "|" + std::to_string(v.line);
      if (!emitted.insert(dedup_key).second) continue;
      Finding f;
      f.path = file.path.string();
      f.line = v.line;
      f.rule = rule;
      f.symbol = key;
      f.chain = chain_of(reached, key);
      f.message = what + " in '" + key + "', reachable from IFET_HOT root '" +
                  root + "' via " + f.chain +
                  "; hot paths must stay allocation/throw/IO-free once warm "
                  "(waive with IFET_HOT_ALLOW(reason))";
      findings.push_back(std::move(f));
    }
  }
}

/// Compatibility entry point: builds the graph itself (fixture drivers).
inline void run_callgraph_pass(const std::vector<SourceFile>& files,
                               std::vector<Finding>& findings) {
  run_callgraph_pass(files, cg_detail::build_analysis(files), findings);
}

}  // namespace ifet_lint
