// ThreadPool stress tests, written for ThreadSanitizer (the tsan preset).
//
// The sizes are deliberately small-but-hostile: many tiny work items, many
// concurrent client threads, chunk sizes of 1 — the schedules that maximize
// contention on the queue mutex, the dynamic-chunk counter, and the
// done-notification path. Under TSan any unsynchronized access in those
// paths fails the test; in plain builds these are fast correctness checks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace ifet {
namespace {

TEST(ThreadPoolStress, ManyClientsShareOnePool) {
  ThreadPool pool(4);
  constexpr int kClients = 6;
  constexpr std::size_t kPerClient = 2000;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &total] {
      pool.parallel_for_static(0, kPerClient,
                               [&](std::size_t lo, std::size_t hi) {
                                 total.fetch_add(hi - lo);
                               });
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(total.load(), kClients * kPerClient);
}

TEST(ThreadPoolStress, DynamicChunkOneStorm) {
  ThreadPool pool(4);
  constexpr std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for_dynamic(0, n, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolStress, ConcurrentClientsWriteDisjointRanges) {
  // Disjoint plain (non-atomic) writes through the pool must be race-free:
  // each client owns a slice of the output vector.
  ThreadPool pool(3);
  constexpr int kClients = 4;
  constexpr std::size_t kSlice = 4096;
  std::vector<int> out(kClients * kSlice, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&pool, &out, c] {
      const std::size_t base = static_cast<std::size_t>(c) * kSlice;
      pool.parallel_for_dynamic(base, base + kSlice, 64,
                                [&](std::size_t lo, std::size_t hi) {
                                  for (std::size_t i = lo; i < hi; ++i) {
                                    out[i] = static_cast<int>(i);
                                  }
                                });
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i));
  }
}

TEST(ThreadPoolStress, PostStormThenImmediateDestruction) {
  constexpr int kTasks = 512;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.post([&ran] { ran.fetch_add(1); });
    }
    // Destructor must drain the queue: every posted task runs exactly once.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolStress, RepeatedConstructDestroyWithPendingWork) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    auto pool = std::make_unique<ThreadPool>(3);
    for (int i = 0; i < 16; ++i) {
      pool->post([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ran.fetch_add(1);
      });
    }
    pool.reset();
    ASSERT_EQ(ran.load(), 16) << "round " << round;
  }
}

TEST(ThreadPoolStress, NestedParallelismUnderContention) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_static(0, 8, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallel_for_dynamic(0, 200, 7,
                                [&](std::size_t l, std::size_t h) {
                                  total.fetch_add(h - l);
                                });
    }
  });
  EXPECT_EQ(total.load(), 8u * 200u);
}

}  // namespace
}  // namespace ifet
