// Multi-tenant extraction/tracking service (docs/SERVER.md).
//
// A SessionManager hosts N concurrent client sessions over ONE shared
// streaming tier. Each session owns the full single-user state — a
// ClientSequenceView (its window, its FailPolicy, its stats), a
// PaintingSession (data-space classifier) and a TfSession (IATF) — while
// the volumes, the byte budget, and the derived-product memoization are
// process-wide, so identical requests from different clients deduplicate
// and no client can pin the shared cache out from under the others.
//
// Execution model: each session is a strand — a FIFO command queue
// drained by at most one task at a time on the manager's command pool.
// Commands of one session are serialized (its classifier and IATF are
// single-user mutable state); commands of different sessions run in
// parallel. The command pool is a DEDICATED ThreadPool instance, never
// the global pool: command execution blocks on fetches that wait for
// prefetch loads, and those loads run on the global pool — strands
// occupying the global pool's workers while waiting on tasks queued
// behind them would deadlock. (Per-voxel parallel_for work inside a
// command still fans out on the global pool; nested drains make that
// safe.)
//
// Shared-DerivedCache hygiene: synthesized TFs are memoized under
// Iatf::params_hash(), which hashes the live network weights — so a
// retrained client simply moves to a new key and can never read another
// client's TFs. The manager refcounts the hash across sessions and
// retires a hash's entries from the cache only when the LAST session at
// that state moves away (tests/server_test.cpp pins the scoping). The
// tier histogram hash is never retired: every client shares it by
// construction.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "parallel/thread_pool.hpp"
#include "server/client_view.hpp"
#include "server/command.hpp"
#include "server/stream_tier.hpp"
#include "session/session.hpp"
#include "session/tf_session.hpp"
#include "util/ordered_mutex.hpp"

namespace ifet {

struct SessionManagerConfig {
  StreamTierConfig tier;
  /// Per-client auto-pinned window half-width.
  int pin_radius = 1;
  /// Classifier configuration applied to every session.
  SessionConfig painting;
  /// IATF configuration applied to every session. Identical configs mean
  /// identical initial weights (seeded init), so freshly created sessions
  /// share one params hash until their training diverges.
  TfSessionConfig tf;
  /// Command pool width; 0 = hardware concurrency.
  std::size_t command_threads = 0;
};

class SessionManager {
 public:
  explicit SessionManager(std::shared_ptr<const VolumeSource> source,
                          const SessionManagerConfig& config = {});
  /// Drains every strand, then tears sessions down before the tier.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Create a session with its own fail policy; returns its id.
  int create_session(FailPolicy fail_policy = FailPolicy::kThrow)
      IFET_EXCLUDES(mutex_);

  /// Drain the session's strand, release its derived-cache hash
  /// reference, unpin its window, and forget it.
  void close_session(int id) IFET_EXCLUDES(mutex_);

  /// Run one command synchronously on the calling thread. The
  /// deterministic reference path (isolated runs, tests); must not race
  /// submit() on the SAME session.
  ServerResult execute(int id, const Command& command);

  /// Enqueue a command on the session's strand; `done` (optional) runs on
  /// the command-pool thread right after the command.
  void submit(int id, Command command,
              std::function<void(const ServerResult&)> done = {});

  /// Block until the session's queue is empty and no command is running.
  void drain(int id);
  /// Drain every session.
  void drain_all();

  StreamTier& tier() { return tier_; }

  /// Per-session counter snapshot (the satellite per-session view of
  /// StreamStats; the process-wide aggregate is tier().stats()).
  StreamStats session_stats(int id) const;
  AdmissionStats session_admission(int id) const;
  std::size_t session_count() const IFET_EXCLUDES(mutex_);

 private:
  struct ServerSession;

  std::shared_ptr<ServerSession> find(int id) const IFET_EXCLUDES(mutex_);
  ServerResult run_command(ServerSession& s, const Command& command);
  ServerResult run_command_noexcept(ServerSession& s, const Command& command);
  /// After a command: if the session's params hash moved, re-home its
  /// refcount and retire the old hash's cache entries when orphaned.
  void reconcile_tf_hash(ServerSession& s) IFET_EXCLUDES(mutex_);
  /// Drop one reference; returns the hash to invalidate (0 = none).
  std::uint64_t release_hash_locked(std::uint64_t hash)
      IFET_REQUIRES(mutex_);
  void drain_session(ServerSession& s);
  static void drain_wait(ServerSession& s);

  SessionManagerConfig config_;
  /// Declared before sessions_: views hold tier references, so the tier
  /// must outlive every session.
  StreamTier tier_;

  mutable OrderedMutex mutex_{MutexRank::kSessionManager};
  int next_id_ IFET_GUARDED_BY(mutex_) = 0;
  std::map<int, std::shared_ptr<ServerSession>> sessions_
      IFET_GUARDED_BY(mutex_);
  /// params_hash -> number of sessions whose IATF is at that state.
  std::unordered_map<std::uint64_t, int> tf_hash_refs_
      IFET_GUARDED_BY(mutex_);

  /// Declared LAST: its destructor drains queued strand tasks, which
  /// reference sessions_ and tier_ above.
  ThreadPool command_pool_;
};

}  // namespace ifet
