#include "stream/layered.hpp"

void Worker::kick() {
  OrderedMutexLock lock(mutex_);
}

void Worker::done() {
  auto finish = [this] {
    OrderedMutexLock lock(mutex_);
  };
  finish();
}

void Owner::run() {
  OrderedMutexLock lock(mutex_);
  worker_->kick();
}
