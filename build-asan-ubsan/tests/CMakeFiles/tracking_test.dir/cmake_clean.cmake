file(REMOVE_RECURSE
  "CMakeFiles/tracking_test.dir/tracking_test.cpp.o"
  "CMakeFiles/tracking_test.dir/tracking_test.cpp.o.d"
  "tracking_test"
  "tracking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
