file(REMOVE_RECURSE
  "CMakeFiles/stress_thread_pool_test.dir/stress_thread_pool_test.cpp.o"
  "CMakeFiles/stress_thread_pool_test.dir/stress_thread_pool_test.cpp.o.d"
  "stress_thread_pool_test"
  "stress_thread_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_thread_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
