// Headless interactive visualization session (paper Sec 6, Fig 11).
//
// The paper's interface lets the scientist (a) paint sample data of
// different classes with colored brushes directly on three axis-aligned
// slices, (b) select small unwanted features from the feature-volume window
// as negative examples, (c) watch live feedback — the current network
// applied to slices or the whole volume — while training proceeds in the
// idle loop, and (d) drop data properties judged unimportant, transparently
// shrinking the network while transferring learned weights.
//
// This module implements those semantics without a windowing toolkit; the
// examples script user interactions against it, and the GUI of a downstream
// application would be a thin layer over this class.
#pragma once

#include <vector>

#include "core/dataspace.hpp"
#include "io/image_io.hpp"
#include "render/raycaster.hpp"
#include "tf/transfer_function.hpp"
#include "volume/sequence.hpp"

namespace ifet {

/// One brush stroke on an axis-aligned slice. `axis` 0=X, 1=Y, 2=Z;
/// (u, v) is the in-slice center in the slice's (col, row) coordinates.
struct PaintStroke {
  int axis = 2;
  int slice = 0;
  double u = 0.0;
  double v = 0.0;
  double radius = 2.0;     ///< Brush radius in voxels.
  double certainty = 1.0;  ///< 1 = feature brush, 0 = background brush.
};

struct SessionConfig {
  DataSpaceConfig classifier;
  /// Feedback slices re-classified after each idle training slot.
  int feedback_axis = 2;
};

class PaintingSession {
 public:
  PaintingSession(const VolumeSequence& sequence,
                  const SessionConfig& config = {});

  const DataSpaceClassifier& classifier() const { return *classifier_; }

  /// Convert a stroke on `step`'s slice into painted voxels and add them to
  /// the training set. Returns how many voxels the brush covered.
  std::size_t paint(int step, const PaintStroke& stroke);

  /// Sec 6: "the system also allows the user to select small features from
  /// the window of feature volume, and consider the selected regions as
  /// part of the unwanted feature." Marks every voxel of the box as a
  /// negative sample. Returns the number of voxels added.
  std::size_t select_unwanted_region(int step, Index3 box_lo, Index3 box_hi);

  /// Idle-loop training slot; returns the training MSE after the slot.
  double train_idle(double budget_ms);
  double train_epochs(int epochs);

  /// Live feedback: certainty image of one slice under the current network.
  std::vector<float> feedback_slice(int step, int axis, int slice) const;

  /// Live feedback: full certainty volume of a step.
  VolumeF feedback_volume(int step) const;

  /// Feedback rendered to an 8-bit image (certainty as grayscale with the
  /// painted samples overlaid in green/red).
  ImageRgb8 feedback_image(int step, int axis, int slice) const;

  /// 3D feedback: classify the step with the current network (the batched
  /// pre-classification pass), then volume-render it with the certainty
  /// modulating the transfer function's opacity (Sec 7: learned methods
  /// modulate opacity only; color stays tied to the data value).
  ImageRgb8 render_classified(int step, const TransferFunction1D& tf,
                              const ColorMap& colors, const Camera& camera,
                              const RenderSettings& settings = {},
                              RenderStats* stats = nullptr) const;

  /// Sec 6 property toggling: rebuild the classifier for `spec` (weights of
  /// shared inputs transferred) and replay all recorded paint samples under
  /// the new spec. "The user interface hides all these."
  void set_properties(const FeatureVectorSpec& spec);

  /// Re-derive the shell radius from the positive samples painted so far.
  void derive_shell_radius();

  std::size_t samples_painted() const { return painted_.size(); }

 private:
  void add_to_classifier(int step, const std::vector<PaintedVoxel>& painted);

  const VolumeSequence& sequence_;
  SessionConfig config_;
  std::unique_ptr<DataSpaceClassifier> classifier_;
  std::vector<PaintedVoxel> painted_;  ///< Full stroke history (for replay).
};

}  // namespace ifet
