file(REMOVE_RECURSE
  "CMakeFiles/tf_session_test.dir/tf_session_test.cpp.o"
  "CMakeFiles/tf_session_test.dir/tf_session_test.cpp.o.d"
  "tf_session_test"
  "tf_session_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tf_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
