// Figure 3 reproduction: IATF vs linear interpolation of key-frame TFs.
//
// Two key frames (t=195, t=255) carry 1D TFs that capture the argon ring.
// For the intermediate step t=225 the paper shows linear interpolation
// smearing opacity over two disjoint value bands (losing the ring), while
// the IATF follows the drifted band and preserves the single ring
// structure. We score both extractions against the analytic ring mask.
#include <iostream>

#include "bench_util.hpp"
#include "core/iatf.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace ifet;
  std::cout << "=== Fig 3: IATF vs linear TF interpolation (argon bubble, "
               "keys t=195,255, test t=225) ===\n";

  ArgonBubbleConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 360;
  // Fig 3 captures the ring "within a small range of data value" whose
  // position moves by more than its width between the two key frames; a
  // faster global drift than the Fig 2/4 default puts the sequence in that
  // regime (the key-frame bands are disjoint).
  cfg.drift_per_step = 0.004;
  auto source = std::make_shared<ArgonBubbleSource>(cfg);
  CachedSequence seq(source, 6, 256);
  auto [vlo, vhi] = seq.value_range();

  auto ring_tf = [&](int step) {
    TransferFunction1D tf(vlo, vhi);
    const double c = source->ring_band_center(step);
    const double h = source->ring_band_half_width();
    tf.add_band(c - h, c + h, 1.0, 0.5 * h);
    return tf;
  };

  const int key_a = 195, key_b = 255, test = 225;
  Iatf iatf(seq);
  iatf.add_key_frame(key_a, ring_tf(key_a));
  iatf.add_key_frame(key_b, ring_tf(key_b));
  iatf.train(3000);

  TransferFunction1D adaptive = iatf.evaluate(test);
  const double u = static_cast<double>(test - key_a) / (key_b - key_a);
  TransferFunction1D lerped =
      TransferFunction1D::interpolate(ring_tf(key_a), ring_tf(key_b), u);

  const VolumeF& volume = seq.step(test);
  Mask truth = source->feature_mask(test);

  // Two opacity cuts expose the two failure modes the paper describes:
  // at 0.25 the lerped TF's bands are simply in the wrong place; at 0.55
  // the lerped TF fails outright because interpolating disjoint bands
  // halves their opacity ("combines two separated features ... with
  // reduced opacity").
  Table table({"method", "cut", "recall", "precision", "f1",
               "opaque_bands"});
  CsvWriter csv(bench::output_dir() + "/fig3_iatf_vs_lerp.csv",
                {"method", "cut", "recall", "precision", "f1", "bands"});
  auto evaluate = [&](const std::string& name, const TransferFunction1D& tf,
                      double cut) {
    MaskScore s = score_mask(bench::tf_extract(volume, tf, cut), truth);
    const auto bands = tf.opaque_intervals(cut);
    table.add_row({name, Table::num(cut, 2), Table::num(s.recall()),
                   Table::num(s.precision()), Table::num(s.f1()),
                   std::to_string(bands.size())});
    csv.row(name, cut, s.recall(), s.precision(), s.f1(), bands.size());
    return s;
  };
  MaskScore iatf_lo = evaluate("IATF", adaptive, 0.25);
  MaskScore lerp_lo = evaluate("linear-interp", lerped, 0.25);
  MaskScore iatf_hi = evaluate("IATF", adaptive, 0.55);
  MaskScore lerp_hi = evaluate("linear-interp", lerped, 0.55);
  table.print(std::cout);
  std::cout << '\n';

  bench::ShapeCheck check;
  check.expect(iatf_lo.recall() > 0.8 && iatf_hi.recall() > 0.7,
               "IATF captures the ring at the intermediate step");
  check.expect(iatf_lo.f1() > lerp_lo.f1() + 0.15,
               "IATF's opaque band sits on the drifted ring; lerp's do not");
  check.expect(lerp_hi.recall() < 0.1,
               "lerped TF fades out (disjoint bands at half opacity)");
  check.expect(lerp_lo.recall() < 0.75,
               "even at a permissive cut the lerped bands miss ring voxels");
  return check.exit_code();
}
