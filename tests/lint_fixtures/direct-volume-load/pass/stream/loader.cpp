// Fixture (should PASS): src/stream is the sanctioned caller of the raw
// decode functions.
#include <string>

void warm(const std::string& path) { auto v = read_vol(path); }
