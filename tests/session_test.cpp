#include <gtest/gtest.h>

#include <memory>

#include "session/session.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

/// One-step sequence with a bright 6^3 cube in a dark background.
std::shared_ptr<CallbackSource> cube_source() {
  Dims d{24, 24, 24};
  return std::make_shared<CallbackSource>(
      d, 1, std::pair<double, double>{0.0, 1.0}, [d](int) {
        VolumeF v(d, 0.1f);
        for (int k = 9; k < 15; ++k) {
          for (int j = 9; j < 15; ++j) {
            for (int i = 9; i < 15; ++i) v.at(i, j, k) = 0.9f;
          }
        }
        return v;
      });
}

TEST(PaintingSession, PaintCoversBrushDisk) {
  CachedSequence seq(cube_source(), 2);
  PaintingSession session(seq);
  PaintStroke stroke;
  stroke.axis = 2;
  stroke.slice = 12;
  stroke.u = 12;
  stroke.v = 12;
  stroke.radius = 2.0;
  std::size_t n = session.paint(0, stroke);
  EXPECT_EQ(n, 13u);  // discrete disk of radius 2
  EXPECT_EQ(session.samples_painted(), 13u);
  EXPECT_EQ(session.classifier().training_samples(), 13u);
}

TEST(PaintingSession, PaintClipsAtVolumeBorder) {
  CachedSequence seq(cube_source(), 2);
  PaintingSession session(seq);
  PaintStroke stroke;
  stroke.axis = 2;
  stroke.slice = 0;
  stroke.u = 0;
  stroke.v = 0;
  stroke.radius = 2.0;
  std::size_t n = session.paint(0, stroke);
  EXPECT_LT(n, 13u);  // clipped at the corner
  EXPECT_GT(n, 0u);
}

TEST(PaintingSession, PaintValidatesAxis) {
  CachedSequence seq(cube_source(), 2);
  PaintingSession session(seq);
  PaintStroke stroke;
  stroke.axis = 7;
  EXPECT_THROW(session.paint(0, stroke), Error);
}

TEST(PaintingSession, SelectUnwantedRegionAddsNegatives) {
  CachedSequence seq(cube_source(), 2);
  PaintingSession session(seq);
  std::size_t n = session.select_unwanted_region(0, {0, 0, 0}, {2, 2, 2});
  EXPECT_EQ(n, 27u);
  EXPECT_THROW(session.select_unwanted_region(0, {5, 5, 5}, {2, 2, 2}),
               Error);
  EXPECT_THROW(session.select_unwanted_region(0, {0, 0, 0}, {99, 2, 2}),
               Error);
}

TEST(PaintingSession, TrainingImprovesFeedback) {
  CachedSequence seq(cube_source(), 2);
  SessionConfig cfg;
  cfg.classifier.spec.use_position = false;
  cfg.classifier.spec.use_time = false;
  PaintingSession session(seq, cfg);

  // Feature brush inside the cube; background brush outside.
  PaintStroke feature;
  feature.axis = 2;
  feature.slice = 12;
  feature.u = 12;
  feature.v = 12;
  feature.radius = 2.0;
  feature.certainty = 1.0;
  session.paint(0, feature);
  PaintStroke background;
  background.axis = 2;
  background.slice = 12;
  background.u = 3;
  background.v = 3;
  background.radius = 2.0;
  background.certainty = 0.0;
  session.paint(0, background);

  session.train_epochs(300);
  VolumeF feedback = session.feedback_volume(0);
  EXPECT_GT(feedback.at(12, 12, 12), 0.7f);
  EXPECT_LT(feedback.at(3, 3, 12), 0.3f);
}

TEST(PaintingSession, TrainIdleRunsAtLeastOneEpoch) {
  CachedSequence seq(cube_source(), 2);
  PaintingSession session(seq);
  PaintStroke s;
  s.axis = 2;
  s.slice = 12;
  s.u = 12;
  s.v = 12;
  session.paint(0, s);
  EXPECT_NO_THROW(session.train_idle(1.0));
}

TEST(PaintingSession, FeedbackImageHasOverlay) {
  CachedSequence seq(cube_source(), 2);
  PaintingSession session(seq);
  PaintStroke s;
  s.axis = 2;
  s.slice = 12;
  s.u = 12;
  s.v = 12;
  s.radius = 1.0;
  s.certainty = 1.0;
  session.paint(0, s);
  session.train_epochs(5);
  ImageRgb8 img = session.feedback_image(0, 2, 12);
  EXPECT_EQ(img.width, 24);
  EXPECT_EQ(img.height, 24);
  // The painted center pixel is drawn green.
  std::size_t o = 3 * (12u * 24u + 12u);
  EXPECT_EQ(img.pixels[o + 1], 220);
}

TEST(PaintingSession, RenderClassifiedProducesImage) {
  CachedSequence seq(cube_source(), 2);
  PaintingSession session(seq);
  PaintStroke feature;
  feature.axis = 2;
  feature.slice = 12;
  feature.u = 12;
  feature.v = 12;
  feature.radius = 2.0;
  session.paint(0, feature);
  PaintStroke background = feature;
  background.slice = 2;
  background.u = 3;
  background.v = 3;
  background.certainty = 0.0;
  session.paint(0, background);
  session.train_epochs(20);

  TransferFunction1D tf(0.0, 1.0);
  tf.add_band(0.5, 1.0, 0.9);
  RenderSettings settings;
  settings.width = 32;
  settings.height = 32;
  Camera cam(0.4, 0.3, 2.5);
  RenderStats stats;
  ImageRgb8 img =
      session.render_classified(0, tf, ColorMap(), cam, settings, &stats);
  EXPECT_EQ(img.width, 32);
  EXPECT_EQ(img.height, 32);
  EXPECT_EQ(stats.rays, 32u * 32u);
}

TEST(PaintingSession, SetPropertiesReplaysSamples) {
  CachedSequence seq(cube_source(), 2);
  PaintingSession session(seq);
  PaintStroke s;
  s.axis = 2;
  s.slice = 12;
  s.u = 12;
  s.v = 12;
  s.radius = 2.0;
  session.paint(0, s);
  std::size_t before = session.classifier().training_samples();
  FeatureVectorSpec smaller;
  smaller.use_position = false;
  session.set_properties(smaller);
  EXPECT_EQ(session.classifier().training_samples(), before);
  EXPECT_EQ(session.classifier().network().num_inputs(), smaller.width());
  EXPECT_NO_THROW(session.train_epochs(5));
}

TEST(PaintingSession, DeriveShellRadiusUsesPaintedFeatures) {
  CachedSequence seq(cube_source(), 2);
  PaintingSession session(seq);
  PaintStroke wide;
  wide.axis = 2;
  wide.slice = 12;
  wide.u = 12;
  wide.v = 12;
  wide.radius = 5.0;
  wide.certainty = 1.0;
  session.paint(0, wide);
  session.derive_shell_radius();
  // An 11-voxel-wide painted disk yields a radius above the default floor.
  EXPECT_GT(session.classifier().shell_radius(), 1.5);
}

}  // namespace
}  // namespace ifet
