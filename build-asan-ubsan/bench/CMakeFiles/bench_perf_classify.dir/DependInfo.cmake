
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_perf_classify.cpp" "bench/CMakeFiles/bench_perf_classify.dir/bench_perf_classify.cpp.o" "gcc" "bench/CMakeFiles/bench_perf_classify.dir/bench_perf_classify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan-ubsan/src/ml/CMakeFiles/ifet_ml.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/core/CMakeFiles/ifet_core.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/flowsim/CMakeFiles/ifet_flowsim.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/render/CMakeFiles/ifet_render.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/session/CMakeFiles/ifet_session.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/eval/CMakeFiles/ifet_eval.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/io/CMakeFiles/ifet_io.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/nn/CMakeFiles/ifet_nn.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/tf/CMakeFiles/ifet_tf.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/volume/CMakeFiles/ifet_volume.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/math/CMakeFiles/ifet_math.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/parallel/CMakeFiles/ifet_parallel.dir/DependInfo.cmake"
  "/root/repo/build-asan-ubsan/src/util/CMakeFiles/ifet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
