# Empty compiler generated dependencies file for ifet_util.
# This may be replaced when dependencies are built.
