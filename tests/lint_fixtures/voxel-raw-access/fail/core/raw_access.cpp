// Fixture (should FAIL): raw voxel indexing outside src/volume.
#include <vector>

float peek(const std::vector<float>& voxels) { return voxels.data()[3]; }
