# Empty compiler generated dependencies file for bench_fig7_dataspace.
# This may be replaced when dependencies are built.
