# Empty compiler generated dependencies file for ifet_nn.
# This may be replaced when dependencies are built.
