file(REMOVE_RECURSE
  "CMakeFiles/track_vortex.dir/track_vortex.cpp.o"
  "CMakeFiles/track_vortex.dir/track_vortex.cpp.o.d"
  "track_vortex"
  "track_vortex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
