#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/keyframe_advisor.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace ifet {
namespace {

/// Sequence whose distribution shifts with a cubic offset — the nonlinear
/// drift regime where end-only key frames leave the middle uncovered.
std::shared_ptr<CallbackSource> cubic_drift_source(int steps) {
  Dims d{16, 16, 16};
  return std::make_shared<CallbackSource>(
      d, steps, std::pair<double, double>{0.0, 1.0}, [d, steps](int step) {
        double u = static_cast<double>(step) / (steps - 1);
        double off = 0.5 * u * u * u;
        VolumeF v(d);
        Rng rng(99);  // same base field every step; only the offset moves
        for (std::size_t i = 0; i < v.size(); ++i) {
          v[i] = static_cast<float>(rng.uniform(0.0, 0.4) + off);
        }
        return v;
      });
}

TEST(CumHistDistance, ZeroForIdenticalDistributions) {
  VolumeF v = testing::random_volume(Dims{12, 12, 12}, 3);
  CumulativeHistogram a = CumulativeHistogram::of(v, 128, 0.0, 1.0);
  CumulativeHistogram b = CumulativeHistogram::of(v, 128, 0.0, 1.0);
  EXPECT_NEAR(cumulative_histogram_distance(a, b), 0.0, 1e-12);
}

TEST(CumHistDistance, EqualsShiftForTranslatedDistributions) {
  // The 1D Wasserstein distance between X and X+delta is exactly delta;
  // normalized by the range it is delta / range.
  VolumeF v = testing::random_volume(Dims{16, 16, 16}, 4, 0.0, 0.4);
  VolumeF shifted(v.dims());
  const double delta = 0.3;
  for (std::size_t i = 0; i < v.size(); ++i) {
    shifted[i] = static_cast<float>(v[i] + delta);
  }
  auto a = CumulativeHistogram::of(v, 512, 0.0, 1.0);
  auto b = CumulativeHistogram::of(shifted, 512, 0.0, 1.0);
  EXPECT_NEAR(cumulative_histogram_distance(a, b), delta / 1.0, 0.01);
}

TEST(CumHistDistance, SymmetricAndNonNegative) {
  VolumeF x = testing::random_volume(Dims{12, 12, 12}, 5, 0.0, 0.6);
  VolumeF y = testing::random_volume(Dims{12, 12, 12}, 6, 0.3, 1.0);
  auto a = CumulativeHistogram::of(x, 128, 0.0, 1.0);
  auto b = CumulativeHistogram::of(y, 128, 0.0, 1.0);
  double ab = cumulative_histogram_distance(a, b);
  double ba = cumulative_histogram_distance(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GT(ab, 0.0);
}

TEST(CumHistDistance, IncompatibleHistogramsThrow) {
  VolumeF v = testing::random_volume(Dims{8, 8, 8}, 7);
  auto a = CumulativeHistogram::of(v, 128, 0.0, 1.0);
  auto b = CumulativeHistogram::of(v, 64, 0.0, 1.0);
  EXPECT_THROW(cumulative_histogram_distance(a, b), Error);
}

TEST(SuggestKeyFrame, PicksTheUncoveredMiddleOfNonlinearDrift) {
  const int steps = 21;
  CachedSequence seq(cubic_drift_source(steps), 24, 512);
  KeyFrameSuggestion s =
      suggest_key_frame(seq, {0, steps - 1}, 0, steps - 1);
  // Cubic offset: the step farthest (in distribution) from both ends has
  // off ~= 0.25, i.e. u = (0.5)^(1/3) ~= 0.79 -> step ~16.
  EXPECT_GE(s.step, 12);
  EXPECT_LE(s.step, 19);
  EXPECT_GT(s.distance, 0.05);
}

TEST(SuggestKeyFrame, CoveredSequenceNeedsNothing) {
  // A statistically static sequence: every step matches the key frame.
  Dims d{12, 12, 12};
  auto source = std::make_shared<CallbackSource>(
      d, 8, std::pair<double, double>{0.0, 1.0},
      [d](int) { return testing::random_volume(d, 11); });
  CachedSequence seq(source, 8, 256);
  KeyFrameSuggestion s = suggest_key_frame(seq, {0}, 0, 7, 1, 0.01);
  EXPECT_EQ(s.step, -1);
}

TEST(SuggestKeyFrame, SkipsExistingKeys) {
  const int steps = 5;
  CachedSequence seq(cubic_drift_source(steps), 8, 256);
  std::vector<int> all{0, 1, 2, 3, 4};
  KeyFrameSuggestion s = suggest_key_frame(seq, all, 0, steps - 1);
  EXPECT_EQ(s.step, -1);  // every step is already a key
}

TEST(SuggestKeyFrame, StrideAndRangeValidated) {
  CachedSequence seq(cubic_drift_source(5), 8, 256);
  EXPECT_THROW(suggest_key_frame(seq, {0}, 0, 4, 0), Error);
  EXPECT_THROW(suggest_key_frame(seq, {0}, 0, 99), Error);
  EXPECT_THROW(distance_to_nearest_key(seq, 0, {}), Error);
}

TEST(SuggestKeyFrame, AddedKeyReducesMaxDistance) {
  const int steps = 21;
  CachedSequence seq(cubic_drift_source(steps), 24, 512);
  std::vector<int> keys{0, steps - 1};
  KeyFrameSuggestion first = suggest_key_frame(seq, keys, 0, steps - 1);
  ASSERT_GE(first.step, 0);
  keys.push_back(first.step);
  KeyFrameSuggestion second = suggest_key_frame(seq, keys, 0, steps - 1);
  if (second.step >= 0) {
    EXPECT_LT(second.distance, first.distance);
  }
}

}  // namespace
}  // namespace ifet
