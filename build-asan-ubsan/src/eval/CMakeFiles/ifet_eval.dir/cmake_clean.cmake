file(REMOVE_RECURSE
  "CMakeFiles/ifet_eval.dir/metrics.cpp.o"
  "CMakeFiles/ifet_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/ifet_eval.dir/validation.cpp.o"
  "CMakeFiles/ifet_eval.dir/validation.cpp.o.d"
  "libifet_eval.a"
  "libifet_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifet_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
