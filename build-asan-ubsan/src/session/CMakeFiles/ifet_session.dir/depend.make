# Empty dependencies file for ifet_session.
# This may be replaced when dependencies are built.
