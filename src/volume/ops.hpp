// Whole-volume operators: range queries, normalization, gradients,
// thresholding. Gradients use central differences — the same estimator the
// paper's renderer uses to obtain shading normals on the GPU.
#pragma once

#include <utility>

#include "math/vec.hpp"
#include "volume/volume.hpp"

namespace ifet {

/// Minimum and maximum voxel value.
std::pair<float, float> value_range(const VolumeF& volume);

/// Rescale all voxels so the value range maps onto [0, 1].
/// Constant volumes map to all-zero.
VolumeF normalized(const VolumeF& volume);

/// Central-difference gradient at a voxel (clamp-to-edge).
Vec3 gradient_at(const VolumeF& volume, int i, int j, int k);

/// Gradient-magnitude volume (parallel over z-slabs).
VolumeF gradient_magnitude(const VolumeF& volume);

/// Mask of voxels with value in [lo, hi].
Mask threshold_mask(const VolumeF& volume, float lo, float hi);

/// Linear blend (1-t)*a + t*b of two same-sized volumes.
VolumeF blend(const VolumeF& a, const VolumeF& b, double t);

/// Mean absolute voxel-wise difference.
double mean_abs_difference(const VolumeF& a, const VolumeF& b);

}  // namespace ifet
