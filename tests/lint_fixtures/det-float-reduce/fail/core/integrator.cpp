// FAIL fixture: an IFET_DETERMINISTIC root sums cell masses with
// std::reduce, which may reassociate the floating-point additions —
// different partitions give different rounding, so the total is not
// bitwise stable.
#include <numeric>
#include <vector>

#define IFET_DETERMINISTIC

namespace fixture {

class Integrator {
 public:
  IFET_DETERMINISTIC double mass(const std::vector<double>& cells) const {
    return std::reduce(cells.begin(), cells.end(), 0.0);  // reassociates
  }
};

}  // namespace fixture
