file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_iatf_vs_lerp.dir/bench_fig3_iatf_vs_lerp.cpp.o"
  "CMakeFiles/bench_fig3_iatf_vs_lerp.dir/bench_fig3_iatf_vs_lerp.cpp.o.d"
  "bench_fig3_iatf_vs_lerp"
  "bench_fig3_iatf_vs_lerp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_iatf_vs_lerp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
