#include "core/keyframe_advisor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ifet {

double cumulative_histogram_distance(const CumulativeHistogram& a,
                                     const CumulativeHistogram& b) {
  IFET_REQUIRE(a.bins() == b.bins() && a.lo() == b.lo() && a.hi() == b.hi(),
               "cumulative_histogram_distance: incompatible histograms");
  const int bins = a.bins();
  const double width = (a.hi() - a.lo()) / bins;
  double area = 0.0;
  for (int bin = 0; bin < bins; ++bin) {
    double value = a.lo() + (bin + 0.5) * width;
    area += std::fabs(a.fraction_at(value) - b.fraction_at(value)) * width;
  }
  // Normalize by the range so the distance is range-independent (0..1-ish).
  return area / (a.hi() - a.lo());
}

double distance_to_nearest_key(const VolumeSequence& sequence, int step,
                               const std::vector<int>& key_steps) {
  IFET_REQUIRE(!key_steps.empty(),
               "distance_to_nearest_key: no key frames given");
  const CumulativeHistogram& probe = sequence.cumulative_histogram(step);
  double best = 1e30;
  for (int key : key_steps) {
    best = std::min(best, cumulative_histogram_distance(
                              probe, sequence.cumulative_histogram(key)));
  }
  return best;
}

KeyFrameSuggestion suggest_key_frame(const VolumeSequence& sequence,
                                     const std::vector<int>& key_steps,
                                     int first, int last, int stride,
                                     double threshold, double time_weight) {
  IFET_REQUIRE(stride > 0, "suggest_key_frame: stride must be positive");
  IFET_REQUIRE(first >= 0 && last < sequence.num_steps() && first <= last,
               "suggest_key_frame: bad step range");
  IFET_REQUIRE(!key_steps.empty(), "suggest_key_frame: no key frames given");
  const double span = std::max(1, last - first);
  KeyFrameSuggestion suggestion;
  for (int step = first; step <= last; step += stride) {
    if (std::find(key_steps.begin(), key_steps.end(), step) !=
        key_steps.end()) {
      continue;
    }
    const CumulativeHistogram& probe = sequence.cumulative_histogram(step);
    double score = 1e30;
    for (int key : key_steps) {
      double d = cumulative_histogram_distance(
          probe, sequence.cumulative_histogram(key));
      d += time_weight * std::abs(step - key) / span;
      score = std::min(score, d);
    }
    if (score > suggestion.distance) {
      suggestion.distance = score;
      suggestion.step = step;
    }
  }
  if (suggestion.distance <= threshold) {
    suggestion.step = -1;
  }
  return suggestion;
}

}  // namespace ifet
