// Memory-budgeted, pinned-aware LRU cache over decoded timesteps.
//
// The residency policy of the out-of-core subsystem lives here and only
// here: VolumeStore decides *what* to load, CacheManager decides *what
// stays*. Entries are shared_ptr<const VolumeF> so an eviction never
// invalidates data a reader still holds — the bytes leave the budget
// accounting when evicted and are freed when the last reader drops its
// reference (the StreamedSequence window holds at most a few steps).
//
// Pinning has two forms:
//  * pin(step)/unpin(step)   — explicit, counted; an entry with a nonzero
//    pin count is never evicted.
//  * pin_window(lo, hi)      — the sliding window of 4D region growing:
//    steps in [lo, hi] are protected as a group and the window is replaced
//    wholesale by the next call, so {t-1, t, t+1} stays put while the rest
//    of the sequence evicts.
//
// Thread safety: every method is internally synchronized; the stress suite
// (tests/stress/stress_cache_manager_test.cpp) hammers it under TSan, the
// Clang thread-safety annotations prove the locking discipline at compile
// time (docs/STATIC_ANALYSIS.md), and the mutex is a leaf in the rank
// order — evicted payloads are destroyed after the lock is released, so
// no multi-megabyte deallocation (or anything else) ever runs under it.
#pragma once

#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stream/stream_stats.hpp"
#include "util/ordered_mutex.hpp"
#include "volume/volume.hpp"

namespace ifet {

class CacheManager {
 public:
  /// `budget_bytes` caps the decoded payload bytes held by *unpinned +
  /// pinned* entries together; 0 means unlimited (the fully-resident
  /// path). Pinned entries are never evicted, so a window wider than the
  /// budget temporarily overshoots it — by design, loudly visible in
  /// stats().
  explicit CacheManager(std::size_t budget_bytes = 0);

  /// Resident volume for `step`, or nullptr. A hit refreshes LRU order and
  /// counts toward stats; entries inserted by prefetch count a prefetch
  /// hit on their first lookup.
  std::shared_ptr<const VolumeF> lookup(int step) IFET_EXCLUDES(mutex_);

  /// Like lookup, but does not count a hit/miss — used by VolumeStore when
  /// re-checking after waiting on an in-flight prefetch, so one fetch never
  /// counts as both a miss and a hit. Still refreshes LRU order and
  /// consumes the prefetched flag (counting the prefetch hit).
  std::shared_ptr<const VolumeF> lookup_quiet(int step)
      IFET_EXCLUDES(mutex_);

  /// True when `step` is resident; no LRU/stat side effects (tests).
  bool resident(int step) const IFET_EXCLUDES(mutex_);

  /// Admit a decoded step (most-recently-used position) and evict LRU
  /// unpinned entries until the budget holds. Returns the (shared) stored
  /// volume — when `step` was concurrently inserted by another thread the
  /// existing entry wins and `volume` is discarded.
  std::shared_ptr<const VolumeF> insert(int step, VolumeF volume,
                                        bool from_prefetch = false)
      IFET_EXCLUDES(mutex_);

  /// Explicit pin: `step` survives eviction until unpinned. Pinning a
  /// non-resident step is remembered (applies when it is inserted).
  void pin(int step) IFET_EXCLUDES(mutex_);
  void unpin(int step) IFET_EXCLUDES(mutex_);

  /// Replace the pinned window with [lo, hi] (inclusive; lo > hi clears).
  void pin_window(int lo, int hi) IFET_EXCLUDES(mutex_);
  std::pair<int, int> pinned_window() const IFET_EXCLUDES(mutex_);

  void set_budget(std::size_t budget_bytes) IFET_EXCLUDES(mutex_);
  std::size_t budget_bytes() const IFET_EXCLUDES(mutex_);
  std::size_t resident_bytes() const IFET_EXCLUDES(mutex_);
  std::size_t resident_steps() const IFET_EXCLUDES(mutex_);

  /// Steps in most-recently-used -> least-recently-used order (tests).
  std::vector<int> lru_order() const IFET_EXCLUDES(mutex_);

  /// Drop every unpinned entry (budget debugging; stats count evictions).
  void clear() IFET_EXCLUDES(mutex_);

  /// Counter snapshot (cache-level fields only).
  StreamStats stats() const IFET_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::shared_ptr<const VolumeF> volume;
    std::size_t bytes = 0;
    int pin_count = 0;
    bool prefetched = false;  ///< Set by prefetch insert, cleared on first
                              ///< lookup (counts one prefetch hit).
    std::list<int>::iterator lru_it;
  };

  /// Payloads evicted while the lock was held; the vector is always a
  /// local in the caller's frame declared BEFORE its lock guard, so the
  /// shared_ptrs (and any final VolumeF deallocation) are released after
  /// the mutex — destroying megabytes under a hot lock stalls every
  /// concurrent fetch.
  using EvictedPayloads = std::vector<std::shared_ptr<const VolumeF>>;

  bool pinned_locked(int step, const Entry& e) const IFET_REQUIRES(mutex_);
  void evict_over_budget_locked(EvictedPayloads& evicted)
      IFET_REQUIRES(mutex_);

  mutable OrderedMutex mutex_{MutexRank::kCacheManager};
  std::size_t budget_bytes_ IFET_GUARDED_BY(mutex_);
  std::size_t resident_bytes_ IFET_GUARDED_BY(mutex_) = 0;
  // Pinned window [window_lo_, window_hi_]; empty when lo > hi.
  int window_lo_ IFET_GUARDED_BY(mutex_) = 0;
  int window_hi_ IFET_GUARDED_BY(mutex_) = -1;
  std::list<int> lru_ IFET_GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<int, Entry> entries_ IFET_GUARDED_BY(mutex_);
  /// Pins on non-resident steps (applied on insert).
  std::unordered_map<int, int> pending_pins_ IFET_GUARDED_BY(mutex_);
  StreamStats stats_ IFET_GUARDED_BY(mutex_);
};

}  // namespace ifet
