// Per-client VolumeSequence view over the shared StreamTier.
//
// Every client session of the multi-tenant server reads the sequence
// through its own ClientSequenceView: the view keeps the client's pinned
// window ({t-1, t, t+1} recentred as the client scans), applies the
// client's OWN FailPolicy over the tier's policy-free store, and
// attributes accesses to the client's SharedStreamStats and admission
// ledger. The existing single-tenant pipelines (PaintingSession,
// TfSession, Tracker, the renderer) run unchanged on top — a view IS a
// VolumeSequence.
//
// Window pins go through the AdmissionController, so a client whose
// window exceeds its pin quota gets the excess steps admitted-denied:
// they still load and still return exact bytes, they are just evictable.
// Residency is per-client shaped; data never is.
//
// Reference validity matches StreamedSequence: step() references stay
// valid while the step is inside the client's window (held_ keeps the
// shared_ptr), cumulative-histogram references for the view's lifetime
// (the view memoizes the shared_ptr from the tier's DerivedCache, so even
// a cache invalidation cannot dangle them).
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "server/stream_tier.hpp"
#include "stream/step_health.hpp"
#include "util/ordered_mutex.hpp"
#include "volume/sequence.hpp"

namespace ifet {

struct ClientViewConfig {
  /// Auto-pinned window half-width around the last accessed step.
  int pin_radius = 1;
  /// This client's policy for quarantined steps — independent of every
  /// other client's (the tier store is policy-free; see stream_tier.hpp).
  FailPolicy fail_policy = FailPolicy::kThrow;
};

class ClientSequenceView final : public VolumeSequence {
 public:
  ClientSequenceView(StreamTier& tier, const ClientViewConfig& config = {});
  /// Unpins the client's window and retires its admission ledger.
  ~ClientSequenceView() override;

  Dims dims() const override { return tier_.dims(); }
  int num_steps() const override { return tier_.num_steps(); }
  std::pair<double, double> value_range() const override {
    return tier_.value_range();
  }
  int histogram_bins() const override { return tier_.histogram_bins(); }

  const VolumeF& step(int step) const override IFET_EXCLUDES(mutex_);
  /// nullptr for a quarantined step under this CLIENT's kSkipStep policy;
  /// under kNearestGood the substitute is returned, under kThrow the
  /// original failure surfaces as CorruptDataError.
  const VolumeF* try_step(int step) const override IFET_EXCLUDES(mutex_);
  const CumulativeHistogram& cumulative_histogram(int step) const override
      IFET_EXCLUDES(mutex_);
  Histogram histogram(int step) const override;

  std::size_t generation_count() const override {
    return tier_.store().load_count();
  }

  void hint_window(int lo, int hi) const override IFET_EXCLUDES(mutex_);
  void prefetch_hint(int step) const override { tier_.store().prefetch(step); }

  /// This client's access/derived/fault counters (lock-free to read).
  SharedStreamStats& stats() const { return stats_; }
  /// This client's admission ledger snapshot (pins, denials, reloads).
  AdmissionStats admission_stats() const {
    return tier_.admission().client_stats(client_);
  }
  int client_id() const { return client_; }

 private:
  /// Tier fetch + this client's FailPolicy: nullptr only under kSkipStep.
  std::shared_ptr<const VolumeF> fetch_with_policy(int step) const;

  /// Policy-independent nearest-good fetch for derived products: every
  /// client's histograms bridge quarantined steps the same deterministic
  /// way, so the memoized product is shareable across clients.
  std::shared_ptr<const VolumeF> fetch_or_substitute(int step) const;

  /// Window bookkeeping only (mirrors StreamedSequence::set_window_locked);
  /// the admission/pin delta is applied by the caller AFTER unlocking.
  std::pair<int, int> set_window_locked(
      int lo, int hi,
      std::vector<std::shared_ptr<const VolumeF>>& dropped) const
      IFET_REQUIRES(mutex_);

  /// Push the new window through admission and apply the resulting
  /// pin/unpin delta to the shared cache. Runs with mutex_ released: the
  /// admission mutex is a leaf and cache pins trigger loads.
  void apply_window(int lo, int hi, int center) const;

  StreamTier& tier_;
  ClientViewConfig config_;
  int client_ = -1;
  mutable SharedStreamStats stats_;

  mutable OrderedMutex mutex_{MutexRank::kClientView};
  mutable int window_lo_ IFET_GUARDED_BY(mutex_) = 0;
  mutable int window_hi_ IFET_GUARDED_BY(mutex_) = -1;
  /// Steps of the active window whose references callers may hold.
  mutable std::map<int, std::shared_ptr<const VolumeF>> held_
      IFET_GUARDED_BY(mutex_);
  /// Per-view memo of tier cumulative histograms: keeps the shared_ptr so
  /// returned references outlive any DerivedCache invalidation.
  mutable std::map<int, std::shared_ptr<const CumulativeHistogram>>
      cumhists_ IFET_GUARDED_BY(mutex_);
};

}  // namespace ifet
