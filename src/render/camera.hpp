// Pinhole camera for the ray caster. The volume is rendered in a world
// frame where its largest axis spans [-0.5, 0.5] and the camera orbits the
// origin — the view-aligned setup of the paper's 3D-texture renderer.
#pragma once

#include "math/mat4.hpp"
#include "math/vec.hpp"

namespace ifet {

struct Ray {
  Vec3 origin;
  Vec3 direction;  ///< Unit length.
};

class Camera {
 public:
  /// Orbit camera: azimuth/elevation in radians around the origin at
  /// `distance`, vertical field of view `fov_y` in radians.
  Camera(double azimuth, double elevation, double distance,
         double fov_y = 0.9);

  const Vec3& position() const { return position_; }

  /// Ray through pixel (x, y) of a width*height image (pixel centers).
  Ray pixel_ray(int x, int y, int width, int height) const;

 private:
  Vec3 position_;
  Vec3 forward_, right_, up_;
  double fov_y_;
};

/// Slab intersection of a ray with the axis-aligned box [lo, hi].
/// Returns false if the ray misses; otherwise [t_near, t_far] with
/// t_far >= max(t_near, 0).
bool intersect_box(const Ray& ray, const Vec3& lo, const Vec3& hi,
                   double& t_near, double& t_far);

}  // namespace ifet
