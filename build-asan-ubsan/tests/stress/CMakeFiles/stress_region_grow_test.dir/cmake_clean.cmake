file(REMOVE_RECURSE
  "CMakeFiles/stress_region_grow_test.dir/stress_region_grow_test.cpp.o"
  "CMakeFiles/stress_region_grow_test.dir/stress_region_grow_test.cpp.o.d"
  "stress_region_grow_test"
  "stress_region_grow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_region_grow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
