#include "flowsim/streamline.hpp"

#include "util/error.hpp"

namespace ifet {

double Streamline::length() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    total += (points[i] - points[i - 1]).norm();
  }
  return total;
}

Vec3 sample_velocity(const VolumeF& u, const VolumeF& v, const VolumeF& w,
                     const Vec3& position) {
  return Vec3{u.sample(position), v.sample(position), w.sample(position)};
}

namespace {
bool inside(const Dims& d, const Vec3& p) {
  return p.x >= 0.0 && p.x <= d.x - 1.0 && p.y >= 0.0 &&
         p.y <= d.y - 1.0 && p.z >= 0.0 && p.z <= d.z - 1.0;
}
}  // namespace

Streamline trace_streamline(const VolumeF& u, const VolumeF& v,
                            const VolumeF& w, const Vec3& seed,
                            const StreamlineConfig& config) {
  IFET_REQUIRE(u.dims() == v.dims() && u.dims() == w.dims(),
               "trace_streamline: component grids must match");
  IFET_REQUIRE(config.dt > 0.0 && config.max_steps > 0,
               "trace_streamline: invalid config");
  const Dims d = u.dims();
  Streamline line;
  if (!inside(d, seed)) {
    line.left_domain = true;
    return line;
  }
  Vec3 p = seed;
  line.points.push_back(p);
  for (int step = 0; step < config.max_steps; ++step) {
    // Classic RK4 on the interpolated field.
    Vec3 k1 = sample_velocity(u, v, w, p);
    if (k1.norm() < config.min_speed) {
      line.stagnated = true;
      break;
    }
    Vec3 k2 = sample_velocity(u, v, w, p + k1 * (0.5 * config.dt));
    Vec3 k3 = sample_velocity(u, v, w, p + k2 * (0.5 * config.dt));
    Vec3 k4 = sample_velocity(u, v, w, p + k3 * config.dt);
    Vec3 next =
        p + (k1 + k2 * 2.0 + k3 * 2.0 + k4) * (config.dt / 6.0);
    if (!inside(d, next)) {
      line.left_domain = true;
      break;
    }
    p = next;
    line.points.push_back(p);
  }
  return line;
}

std::vector<Streamline> trace_streamline_grid(
    const VolumeF& u, const VolumeF& v, const VolumeF& w,
    int seeds_per_axis, const StreamlineConfig& config) {
  IFET_REQUIRE(seeds_per_axis > 0,
               "trace_streamline_grid: need at least one seed per axis");
  const Dims d = u.dims();
  std::vector<Streamline> lines;
  lines.reserve(static_cast<std::size_t>(seeds_per_axis) * seeds_per_axis *
                seeds_per_axis);
  for (int a = 0; a < seeds_per_axis; ++a) {
    for (int b = 0; b < seeds_per_axis; ++b) {
      for (int c = 0; c < seeds_per_axis; ++c) {
        Vec3 seed{(a + 0.5) * (d.x - 1.0) / seeds_per_axis,
                  (b + 0.5) * (d.y - 1.0) / seeds_per_axis,
                  (c + 0.5) * (d.z - 1.0) / seeds_per_axis};
        lines.push_back(trace_streamline(u, v, w, seed, config));
      }
    }
  }
  return lines;
}

}  // namespace ifet
