file(REMOVE_RECURSE
  "CMakeFiles/compressed_io_test.dir/compressed_io_test.cpp.o"
  "CMakeFiles/compressed_io_test.dir/compressed_io_test.cpp.o.d"
  "compressed_io_test"
  "compressed_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compressed_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
