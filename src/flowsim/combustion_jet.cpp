#include <algorithm>
#include <cmath>

#include "flowsim/datasets.hpp"

namespace ifet {

CombustionJetSource::CombustionJetSource(const CombustionJetConfig& config)
    : config_(config) {
  IFET_REQUIRE(config_.num_steps > 0, "CombustionJet: need steps");
  IFET_REQUIRE(config_.solver_steps_per_snapshot > 0,
               "CombustionJet: need solver steps per snapshot");
  IFET_REQUIRE(config_.feature_fraction > 0.0 &&
                   config_.feature_fraction < 1.0,
               "CombustionJet: feature_fraction must be in (0,1)");

  FluidConfig fluid;
  fluid.dims = config_.dims;
  fluid.dt = 0.35;
  fluid.viscosity = 5e-5;
  fluid.vorticity_confinement = 0.30;
  FluidSolver solver(fluid);
  ValueNoise perturbation(config_.seed);

  const Dims d = config_.dims;
  // The temporally evolving plane jet: fuel flows +y in a central slab in z,
  // air counter-flows -y above and below (paper Sec 4.2.3). The inflow rows
  // (small j) are re-imposed every step; lateral noise seeds the
  // Kelvin–Helmholtz rollup that distorts the mixing layer.
  auto forcing = [&](VolumeF& u, VolumeF& v, VolumeF& w, VolumeF& scalar) {
    const int step = solver.steps_completed();
    const double ramp = 1.0 + config_.inflow_ramp * step;
    const int slab_half = std::max(2, d.z / 6);
    for (int k = 0; k < d.z; ++k) {
      const bool fuel = std::abs(k - d.z / 2) <= slab_half;
      for (int j = 0; j < 3; ++j) {
        for (int i = 0; i < d.x; ++i) {
          const std::size_t c = v.linear_index(i, j, k);
          if (fuel) {
            v[c] = static_cast<float>(config_.inflow_speed * ramp);
            scalar[c] = 1.0f;
          } else {
            v[c] = static_cast<float>(-config_.counterflow_speed * ramp);
          }
          // Lateral perturbation that grows the shear instability.
          double n1 = perturbation.at(i * 0.37, k * 0.41, step * 0.23);
          double n2 = perturbation.at(i * 0.29 + 7.0, k * 0.31, step * 0.19);
          u[c] += static_cast<float>(0.12 * ramp * n1);
          w[c] += static_cast<float>(0.12 * ramp * n2);
        }
      }
    }
  };

  snapshots_.reserve(static_cast<std::size_t>(config_.num_steps));
  thresholds_.reserve(static_cast<std::size_t>(config_.num_steps));
  maxima_.reserve(static_cast<std::size_t>(config_.num_steps));
  for (int s = 0; s < config_.num_steps; ++s) {
    for (int sub = 0; sub < config_.solver_steps_per_snapshot; ++sub) {
      solver.step(forcing);
    }
    VolumeF vort = solver.vorticity_magnitude();
    const double hi = static_cast<double>(
        *std::max_element(vort.data().begin(), vort.data().end()));
    global_max_ = std::max(global_max_, hi);
    maxima_.push_back(hi);

    // Ground-truth feature: the strongest `feature_fraction` of voxels.
    std::vector<float> copy(vort.data().begin(), vort.data().end());
    auto nth = copy.begin() +
               static_cast<std::ptrdiff_t>(
                   (1.0 - config_.feature_fraction) * copy.size());
    std::nth_element(copy.begin(), nth, copy.end());
    thresholds_.push_back(static_cast<double>(*nth));

    snapshots_.push_back(std::move(vort));
    fuel_snapshots_.push_back(solver.scalar());
  }
}

std::pair<double, double> CombustionJetSource::value_range() const {
  return {0.0, global_max_ * 1.01 + 1e-6};
}

VolumeF CombustionJetSource::generate(int step) const {
  IFET_REQUIRE(step >= 0 && step < config_.num_steps,
               "CombustionJet: step out of range");
  return snapshots_[static_cast<std::size_t>(step)];
}

Mask CombustionJetSource::feature_mask(int step) const {
  IFET_REQUIRE(step >= 0 && step < config_.num_steps,
               "CombustionJet: step out of range");
  const VolumeF& vort = snapshots_[static_cast<std::size_t>(step)];
  const auto threshold =
      static_cast<float>(thresholds_[static_cast<std::size_t>(step)]);
  Mask out(vort.dims());
  for (std::size_t i = 0; i < vort.size(); ++i) {
    out[i] = vort[i] >= threshold ? 1 : 0;
  }
  return out;
}

double CombustionJetSource::feature_threshold(int step) const {
  IFET_REQUIRE(step >= 0 && step < config_.num_steps,
               "CombustionJet: step out of range");
  return thresholds_[static_cast<std::size_t>(step)];
}

const VolumeF& CombustionJetSource::fuel_snapshot(int step) const {
  IFET_REQUIRE(step >= 0 && step < config_.num_steps,
               "CombustionJet: step out of range");
  return fuel_snapshots_[static_cast<std::size_t>(step)];
}

double CombustionJetSource::max_vorticity(int step) const {
  IFET_REQUIRE(step >= 0 && step < config_.num_steps,
               "CombustionJet: step out of range");
  return maxima_[static_cast<std::size_t>(step)];
}

}  // namespace ifet
