#!/usr/bin/env bash
# One-command tier-1 verification (docs/CORRECTNESS.md):
#   1. default preset: configure, build, full ctest (includes ifet_lint
#      and the lint fixture regressions)
#   2. fault injection: the fault_injection_test binary, then an
#      ifet_tool track over a fixture with injected faults under
#      --fail-policy=skip, asserting retries happened and the run exits
#      cleanly (docs/ROBUSTNESS.md)
#   3. hot-path lint: the cross-TU callgraph pass (ifet_lint --only=hot-path)
#      over src/ with the checked-in baseline, publishing the JSON report
#      as build/ci_hot_path_lint.json (docs/STATIC_ANALYSIS.md)
#   3b. determinism lint: the IFET_DETERMINISTIC contract pass
#      (ifet_lint --only=det) over src/, publishing
#      build/ci_determinism_lint.json (docs/STATIC_ANALYSIS.md)
#   4. asan-ubsan preset: configure, build, full ctest under ASan+UBSan
#      with IFET_DEBUG_ASSERT checks and the OrderedMutex lock-order
#      validator on
#   5. tsan preset: build + run the streaming/concurrency stress tests
#      (the CacheManager/Prefetcher, fault-storm, thread-pool, and
#      multi-tenant-server race detectors) plus the bench AllocGuard
#      steady-state checks (FlatMlp forward_batch, Raycaster row kernel,
#      CacheManager hit path) in their fast check-only modes, the
#      render-equivalence smoke (brick empty-space skipping vs the scalar
#      march, bitwise, all compositing variants), one ReplayCheck smoke
#      (bench_perf_classify --replay-check-only: FlatMlp classify digests
#      across perturbed thread counts), and the bench_perf_server --smoke
#      load generator (deterministic small fleet, bitwise-equivalence
#      gate) under TSan
#   5b. overload harness: bench_perf_server --overload --smoke under TSan
#      (bounded queues, typed refusals, deadlines, pressure, watchdog;
#      docs/ROBUSTNESS.md "Overload and deadlines"), archiving the
#      shed/latency JSON as build-tsan/ci_overload_bench.json
#   6. thread-safety: clang build with -Wthread-safety promoted to errors
#      over the IFET_GUARDED_BY annotations (docs/STATIC_ANALYSIS.md);
#      skips if clang is not installed
#   7. clang-tidy over the hardened directories (skips if not installed)
#
# Each stage records pass/fail/skip and the script prints a summary table
# before exiting; the exit status is non-zero if ANY stage failed, so one
# broken stage no longer hides the results of the others.
#
# Usage: tools/ci_check.sh          # everything
#        JOBS=8 tools/ci_check.sh   # override build parallelism
#        SKIP_ASAN=1 tools/ci_check.sh   # fast local loop, default only
#        SKIP_FAULT=1 tools/ci_check.sh  # skip the fault-injection stage
#        SKIP_TSAN=1 tools/ci_check.sh   # skip the TSan stress stage
#        SKIP_THREAD_SAFETY=1 tools/ci_check.sh  # skip the clang stage

set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
cd "$ROOT"

STAGE_NAMES=()
STAGE_RESULTS=()
FAILED=0

record() {  # record <name> <pass|FAIL|skip>
  STAGE_NAMES+=("$1")
  STAGE_RESULTS+=("$2")
  if [ "$2" = "FAIL" ]; then FAILED=1; fi
}

run_stage() {  # run_stage <name> <command...>
  local name="$1"
  shift
  echo "== ci_check stage: $name =="
  if "$@"; then
    record "$name" "pass"
  else
    record "$name" "FAIL"
  fi
}

stage_default() {
  cmake --preset default &&
    cmake --build --preset default -j "$JOBS" &&
    ctest --preset default -j "$JOBS"
}

stage_fault() {
  # Fault-injection pass (docs/ROBUSTNESS.md): the dedicated test binary,
  # then the CLI driven over a fixture with one transient fault per step
  # plus a permanently corrupt step under --fail-policy=skip. The run must
  # exit 0 AND report nonzero retries — a clean exit that never retried
  # would mean the schedule silently stopped injecting.
  local build_dir="$ROOT/build"
  local fixture="$build_dir/ci_fault_fixture.cvol"
  "$build_dir/tests/fault_injection_test" &&
    "$build_dir/tools/ifet_tool" gen --dataset=swirl --size=16 \
      --cvol="$fixture" &&
    "$build_dir/tools/ifet_tool" track "$fixture" \
      --seed=12,8,8 --band=0.4:1.0 --budget-mb=1 --lookahead=2 \
      --inject-faults=transient@all:1,corrupt@7 \
      --max-retries=2 --backoff-ms=0 --fail-policy=skip \
      >"$build_dir/ci_fault_track.out" 2>&1 &&
    grep -E 'faults: [1-9][0-9]* retries' "$build_dir/ci_fault_track.out" &&
    grep -E '1 quarantined' "$build_dir/ci_fault_track.out"
}

stage_hot_path_lint() {
  # Cross-TU hot-path escape analysis (docs/STATIC_ANALYSIS.md): the
  # callgraph pass over src/ against the checked-in baseline. The default
  # preset's ctest already gates on the all-pass text run; this stage
  # re-runs the hot-path family in JSON mode and leaves the report as a
  # build artifact for dashboards and baseline review.
  local build_dir="$ROOT/build"
  local artifact="$build_dir/ci_hot_path_lint.json"
  "$build_dir/tools/ifet_lint" --format=json --only=hot-path \
    --baseline="$ROOT/tools/lint_baseline.txt" "$ROOT/src" >"$artifact"
  local rc=$?
  echo "hot-path lint report: $artifact"
  cat "$artifact"
  return "$rc"
}

stage_determinism_lint() {
  # Determinism-contract escape analysis (docs/STATIC_ANALYSIS.md): the
  # det-* family over src/ against the same baseline, JSON report kept as
  # a build artifact. Exit bit 16 is the family's own, so this stage
  # fails independently of the hot-path stage.
  local build_dir="$ROOT/build"
  local artifact="$build_dir/ci_determinism_lint.json"
  "$build_dir/tools/ifet_lint" --format=json --only=det \
    --baseline="$ROOT/tools/lint_baseline.txt" "$ROOT/src" >"$artifact"
  local rc=$?
  echo "determinism lint report: $artifact"
  cat "$artifact"
  return "$rc"
}

stage_asan() {
  cmake --preset asan-ubsan &&
    cmake --build --preset asan-ubsan -j "$JOBS" &&
    ctest --preset asan-ubsan -j "$JOBS"
}

stage_tsan() {
  # Stress detectors + the bench AllocGuard steady-state contracts: the
  # check-only modes skip google-benchmark timing and assert the IFET_HOT
  # kernels (FlatMlp::forward_batch, Raycaster::render_rows, CacheManager
  # hits) touch the heap zero times when warm — under TSan, so the same
  # run also races the guard's atomics against the thread pool. The
  # render-equivalence smoke (--equiv-check-only) memcmps the brick
  # empty-space-skipping path against the scalar march across all three
  # compositing variants, with the row pool racing under TSan. The
  # multi-tenant server rides along twice: its dedicated stress storm and
  # the deterministic bench_perf_server load generator in --smoke mode
  # (small fleet, bitwise tight-vs-infinite-budget equivalence gate).
  cmake --preset tsan &&
    cmake --build --preset tsan -j "$JOBS" --target \
      stress_cache_manager_test stress_fault_storm_test \
      stress_thread_pool_test stress_server_test flat_mlp_test \
      bench_perf_classify bench_perf_render bench_perf_stream \
      bench_perf_server &&
    ctest --preset tsan -j "$JOBS" -R \
      'stress_cache_manager_test|stress_fault_storm_test|stress_thread_pool_test|stress_server_test|flat_mlp_test' &&
    "$ROOT/build-tsan/bench/bench_perf_classify" --alloc-check-only &&
    "$ROOT/build-tsan/bench/bench_perf_classify" --replay-check-only &&
    "$ROOT/build-tsan/bench/bench_perf_render" --render-check-only &&
    "$ROOT/build-tsan/bench/bench_perf_render" --equiv-check-only &&
    "$ROOT/build-tsan/bench/bench_perf_stream" &&
    (cd "$ROOT/build-tsan/bench" && ./bench_perf_server --smoke)
}

stage_overload() {
  # Overload harness under TSan (docs/ROBUSTNESS.md, "Overload and
  # deadlines"): scripted clients racing an open-loop flood over a slow
  # device, gating bounded queue depth, bounded p99, typed refusals only,
  # visible shed/deadline/pressure/watchdog activity, and the
  # bitwise-identical non-shed results — while TSan watches the deadline
  # scopes, the watchdog's lock-free samples, and the pressure
  # transitions race the strands. The shed/latency JSON is archived next
  # to the storm bench's BENCH_server.json.
  (cd "$ROOT/build-tsan/bench" && ./bench_perf_server --overload --smoke) &&
    cp "$ROOT/build-tsan/bench/BENCH_server_overload.json" \
      "$ROOT/build-tsan/ci_overload_bench.json" &&
    echo "overload bench artifact: $ROOT/build-tsan/ci_overload_bench.json"
}

stage_thread_safety() {
  # A dedicated build tree: the analysis only exists under clang, and the
  # default preset tree is configured for the host's default compiler.
  local build_dir="$ROOT/build-thread-safety"
  cmake -S "$ROOT" -B "$build_dir" \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DIFET_THREAD_SAFETY=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo &&
    cmake --build "$build_dir" -j "$JOBS"
}

run_stage "default preset (build + ctest)" stage_default
run_stage "hot-path lint (callgraph pass + JSON artifact)" stage_hot_path_lint
run_stage "determinism lint (det-* pass + JSON artifact)" stage_determinism_lint

if [ "${SKIP_FAULT:-0}" != "1" ]; then
  run_stage "fault injection (test + faulted CLI track)" stage_fault
else
  record "fault injection (test + faulted CLI track)" "skip"
fi

if [ "${SKIP_ASAN:-0}" != "1" ]; then
  run_stage "asan-ubsan preset (build + ctest)" stage_asan
else
  record "asan-ubsan preset (build + ctest)" "skip"
fi

if [ "${SKIP_TSAN:-0}" != "1" ]; then
  run_stage "tsan preset (concurrency stress)" stage_tsan
  run_stage "overload harness (bench_perf_server --overload, TSan)" \
    stage_overload
else
  record "tsan preset (concurrency stress)" "skip"
  record "overload harness (bench_perf_server --overload, TSan)" "skip"
fi

if [ "${SKIP_THREAD_SAFETY:-0}" = "1" ]; then
  record "clang thread-safety analysis" "skip"
elif command -v clang++ >/dev/null 2>&1; then
  run_stage "clang thread-safety analysis" stage_thread_safety
else
  echo "== ci_check: clang++ not installed, thread-safety stage skipped =="
  record "clang thread-safety analysis" "skip"
fi

echo "== ci_check stage: clang-tidy (graceful skip when absent) =="
if "$ROOT/tools/run_clang_tidy.sh"; then
  record "clang-tidy" "pass"
else
  record "clang-tidy" "FAIL"
fi

echo
echo "== ci_check summary =="
for i in "${!STAGE_NAMES[@]}"; do
  printf '  %-40s %s\n' "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}"
done

if [ "$FAILED" != "0" ]; then
  echo "ci_check: FAILED"
  exit 1
fi
echo "ci_check: all green"
