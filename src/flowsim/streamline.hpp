// Streamline tracing through the solver's velocity field.
//
// The library's subject is flow simulations; beyond scalar volume
// rendering, the standard flow-visualization primitive is the streamline
// (Post et al.'s survey, cited in paper Sec 2, catalogs it as the basic
// geometric flow-vis technique). Fourth-order Runge-Kutta integration of
// the trilinearly interpolated velocity; tracing stops at the domain
// border, after `max_steps`, or when the flow stagnates.
#pragma once

#include <vector>

#include "math/vec.hpp"
#include "volume/volume.hpp"

namespace ifet {

struct StreamlineConfig {
  double dt = 0.5;            ///< Integration step (voxel units).
  int max_steps = 1000;       ///< Hard cap on vertices.
  double min_speed = 1e-5;    ///< Stagnation cutoff (|u| below ends trace).
};

/// A traced streamline: ordered vertex positions in voxel coordinates.
struct Streamline {
  std::vector<Vec3> points;
  bool left_domain = false;  ///< Ended by crossing the border.
  bool stagnated = false;    ///< Ended below min_speed.

  /// Total arc length (voxel units).
  double length() const;
};

/// Velocity sample (trilinear) at a voxel-space position.
Vec3 sample_velocity(const VolumeF& u, const VolumeF& v, const VolumeF& w,
                     const Vec3& position);

/// Trace a streamline from `seed` (voxel coordinates) through (u, v, w).
Streamline trace_streamline(const VolumeF& u, const VolumeF& v,
                            const VolumeF& w, const Vec3& seed,
                            const StreamlineConfig& config = {});

/// Trace from a grid of seeds spread uniformly through the volume
/// (`seeds_per_axis`^3 seeds).
std::vector<Streamline> trace_streamline_grid(
    const VolumeF& u, const VolumeF& v, const VolumeF& w,
    int seeds_per_axis, const StreamlineConfig& config = {});

}  // namespace ifet
