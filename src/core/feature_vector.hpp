// Per-voxel feature vectors for data-space extraction (paper Sec 4.3).
//
// "...the trained network in fact takes as input a feature vector which
// consists of data values of the feature, neighborhood information, and the
// time step number." Neighborhood information is a *shell*: "we do not use
// all the voxel values in the neighborhood; only those voxels a fixed
// distance away from the feature of interest are used, and this distance is
// data dependent and derived according to the characteristics of the
// selected features so far."
//
// FeatureVectorSpec makes every component optional so the user can drop
// properties they judge unimportant (Sec 6); the classifier then shrinks
// its network while transferring the surviving weights.
#pragma once

#include <string>
#include <vector>

#include "volume/volume.hpp"

namespace ifet {

struct FeatureVectorSpec {
  bool use_value = true;       ///< The voxel's own scalar value.
  bool use_shell = true;       ///< Shell of neighborhood samples.
  bool use_position = true;    ///< Normalized (x, y, z).
  bool use_time = true;        ///< Normalized time step.
  bool use_gradient = false;   ///< Gradient magnitude (optional extra).
  double shell_radius = 3.0;   ///< Shell distance in voxels.
  int shell_samples = 14;      ///< 6 axis + 8 diagonal directions by default.

  /// Total feature-vector width for this spec.
  int width() const;

  /// Human-readable component names, index-aligned with assemble()'s output
  /// (used by the session UI when the user toggles properties).
  std::vector<std::string> component_names() const;
};

/// Context needed to assemble a vector: the step's volume, its index, the
/// sequence length (for time normalization) and the global value range.
struct FeatureContext {
  const VolumeF* volume = nullptr;
  int step = 0;
  int num_steps = 1;
  double value_lo = 0.0;
  double value_hi = 1.0;
};

/// Assemble the (already normalized to ~[0,1]) feature vector of voxel
/// (i, j, k). Shell samples use trilinear interpolation at `shell_radius`
/// voxels along fixed directions, clamped at volume borders.
std::vector<double> assemble_feature_vector(const FeatureVectorSpec& spec,
                                            const FeatureContext& context,
                                            int i, int j, int k);

/// The fixed shell directions (unit vectors); first 6 are the axes, the
/// next 8 the cube diagonals, then edge midpoints for larger counts.
std::vector<Vec3> shell_directions(int count);

/// Shell sample offsets: radius * shell_directions(count), quantized to
/// 1/256 voxel (an exact binary fraction). The quantization error is at
/// most 0.2% of a voxel — far below the trilinear reconstruction error —
/// and it makes `voxel_index + offset` exact in double for any volume that
/// fits in memory, so the fractional interpolation weights are the same
/// constants for every voxel. That constancy is what lets the batched
/// assembler hoist the weights and run clamp-free over a padded copy while
/// staying bitwise identical to the scalar path.
std::vector<Vec3> shell_offsets(double radius, int count);

/// Batched feature assembly for the flat inference engine.
///
/// Construction hoists everything assemble_feature_vector recomputes per
/// voxel out of the voxel loop: the value span, position denominators and
/// normalized time, and — for the shell — the per-direction interpolation
/// weights plus an edge-replicated padded copy of the volume. Because the
/// quantized shell_offsets() make `voxel + offset` exact, each direction's
/// trilinear weights are voxel-independent constants and every sample
/// reduces to eight direct loads from the padded grid and the same lerp
/// chain Volume::sample runs — no coordinate clamping, flooring, or bounds
/// logic left per voxel. assemble_feature_block then writes feature rows
/// straight into the caller's batch matrix with no per-voxel allocations.
///
/// Numerical contract: each written row is bitwise identical to
/// assemble_feature_vector(spec, context, v.x, v.y, v.z) for the same
/// voxel. Out-of-range samples hit edge-replicated padding, where both
/// trilinear operands are equal and lerp(a, a, t) == a exactly — the same
/// value the scalar path's clamp-to-edge produces.
///
/// The assembler borrows `context.volume`; it must outlive the assembler.
/// Safe to share across threads (assemble_feature_block is const and
/// touches no mutable state).
class FeatureBlockAssembler {
 public:
  FeatureBlockAssembler(const FeatureVectorSpec& spec,
                        const FeatureContext& context);

  int width() const { return width_; }

  /// Assemble `count` voxels into `out`, a count x width() row-major
  /// block (the inference batch matrix).
  void assemble_feature_block(const Index3* voxels, int count,
                              double* out) const;

  /// Column-major variant for FlatMlp::forward_batch_cols: component c of
  /// voxel v lands at out[c*ld + v] (ld >= count). Shell directions become
  /// the OUTER loop, so each inner loop runs one fixed tap across many
  /// voxels — constant weights in registers, contiguous stores — and the
  /// inference engine consumes the columns without a transpose. Values are
  /// bitwise identical to assemble_feature_block's (same expressions, just
  /// reordered across independent voxels).
  void assemble_feature_cols(const Index3* voxels, int count, double* out,
                             int ld) const;

 private:
  /// One shell direction, resolved against the padded grid: the linear
  /// offset of its (floor) corner for voxel (0,0,0) plus the constant
  /// trilinear weights.
  struct ShellTap {
    std::ptrdiff_t base = 0;
    double fx = 0.0, fy = 0.0, fz = 0.0;
  };

  FeatureVectorSpec spec_;
  FeatureContext context_;
  std::vector<ShellTap> taps_;    ///< hoisted per-direction sample plan
  std::vector<float> padded_;     ///< edge-replicated volume copy
  std::ptrdiff_t pdx_ = 0, pdxy_ = 0;  ///< padded row/slab strides
  int width_ = 0;
  double span_ = 1.0;
  double den_x_ = 1.0, den_y_ = 1.0, den_z_ = 1.0;
  double time_value_ = 0.0;
};

/// Derive a shell radius from the painted feature voxels "according to the
/// characteristics of the selected features": half the mean feature
/// diameter, estimated from the per-component bounding boxes of the
/// positive samples, clamped to [1.5, 6] voxels.
double derive_shell_radius(const Mask& positive_samples);

}  // namespace ifet
