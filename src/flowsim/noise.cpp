#include "flowsim/noise.hpp"

#include <cmath>

namespace ifet {

namespace {
inline double fade(double t) { return t * t * (3.0 - 2.0 * t); }

inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

double ValueNoise::lattice(std::int64_t i, std::int64_t j, std::int64_t k,
                           std::int64_t l) const {
  std::uint64_t h = seed_;
  h = mix64(h ^ static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
  h = mix64(h ^ static_cast<std::uint64_t>(j) * 0xc2b2ae3d27d4eb4fULL);
  h = mix64(h ^ static_cast<std::uint64_t>(k) * 0x165667b19e3779f9ULL);
  h = mix64(h ^ static_cast<std::uint64_t>(l) * 0xd6e8feb86659fd93ULL);
  // Map to [-1, 1].
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

double ValueNoise::at(double x, double y, double z) const {
  return at(x, y, z, 0.0);
}

double ValueNoise::at(double x, double y, double z, double w) const {
  auto i0 = static_cast<std::int64_t>(std::floor(x));
  auto j0 = static_cast<std::int64_t>(std::floor(y));
  auto k0 = static_cast<std::int64_t>(std::floor(z));
  auto l0 = static_cast<std::int64_t>(std::floor(w));
  double fx = fade(x - static_cast<double>(i0));
  double fy = fade(y - static_cast<double>(j0));
  double fz = fade(z - static_cast<double>(k0));
  double fw = fade(w - static_cast<double>(l0));

  double acc_w[2];
  for (int dl = 0; dl < 2; ++dl) {
    double acc_z[2];
    for (int dk = 0; dk < 2; ++dk) {
      double acc_y[2];
      for (int dj = 0; dj < 2; ++dj) {
        double a = lattice(i0, j0 + dj, k0 + dk, l0 + dl);
        double b = lattice(i0 + 1, j0 + dj, k0 + dk, l0 + dl);
        acc_y[dj] = lerp(a, b, fx);
      }
      acc_z[dk] = lerp(acc_y[0], acc_y[1], fy);
    }
    acc_w[dl] = lerp(acc_z[0], acc_z[1], fz);
  }
  return lerp(acc_w[0], acc_w[1], fw);
}

double ValueNoise::fbm(double x, double y, double z, int octaves,
                       double gain) const {
  return fbm(x, y, z, 0.0, octaves, gain);
}

double ValueNoise::fbm(double x, double y, double z, double w, int octaves,
                       double gain) const {
  double amplitude = 1.0;
  double total_amplitude = 0.0;
  double sum = 0.0;
  double fx = x, fy = y, fz = z, fw = w;
  for (int o = 0; o < octaves; ++o) {
    sum += amplitude * at(fx, fy, fz, fw);
    total_amplitude += amplitude;
    amplitude *= gain;
    fx *= 2.0;
    fy *= 2.0;
    fz *= 2.0;
    fw *= 2.0;
  }
  return total_amplitude > 0.0 ? sum / total_amplitude : 0.0;
}

}  // namespace ifet
