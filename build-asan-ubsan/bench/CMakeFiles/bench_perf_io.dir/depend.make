# Empty dependencies file for bench_perf_io.
# This may be replaced when dependencies are built.
