// Multi-tenant server load generator (docs/SERVER.md): N concurrent
// scripted clients over ONE tight-budget shared streaming tier, measured
// against each client running alone on an unlimited-budget tier.
//
// Each client is a closed loop on its session's strand: the completion
// callback of command i submits command i+1, so the recorded latency is
// service time (no self-inflicted queueing), while the N strands contend
// for the shared cache, the admission quotas, and the derived-product
// memoization the whole time.
//
// Shape claims (exit nonzero on failure):
//   - every scripted command succeeds on every concurrent client;
//   - the concurrent tight-budget results are bitwise identical to the
//     isolated unlimited-budget serial reference (admission shapes
//     residency, never data);
//   - the cross-client dedup hit rate on derived products is > 0 and the
//     shared cache holds fewer unique entries than requests served;
//   - the tight budget actually evicts;
//   - no client's pinned bytes ever exceed its admission quota, and the
//     quota visibly denied pins.
//
// Outputs: BENCH_server.json (p50/p99 latency, dedup rate, per-client
// eviction fairness) plus CSV series under bench_out/ — the per-command
// latency distribution and the cache-hit / dedup-hit trajectory sampled
// while the storm ran.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <numeric>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "server/session_manager.hpp"
#include "stream/fault_injection.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "volume/sequence.hpp"

namespace {

using namespace ifet;

/// A blob drifting +x one voxel per step: enough structure for IATF
/// synthesis, classification, and tracking alike. Deterministic.
std::shared_ptr<CallbackSource> blob_source(Dims dims, int steps) {
  return std::make_shared<CallbackSource>(
      dims, steps, std::pair<double, double>{0.0, 1.0}, [dims](int step) {
        VolumeF v(dims);
        for (int k = 0; k < dims.z; ++k) {
          for (int j = 0; j < dims.y; ++j) {
            for (int i = 0; i < dims.x; ++i) {
              const double dx = i - (dims.x / 4 + step);
              const double dy = j - dims.y / 2;
              const double dz = k - dims.z / 2;
              const double r2 = dx * dx + dy * dy + dz * dz;
              v.at(i, j, k) =
                  static_cast<float>(clamp(1.0 - r2 / 9.0, 0.0, 1.0));
            }
          }
        }
        return v;
      });
}

/// The canonical scripted client (the full extraction workflow): window
/// hint, key frame, TF training, per-step TF + histogram queries,
/// painting, classifier training, classification, adaptive tracking,
/// rendering. Epoch-counted training only — deterministic end to end.
/// Every client runs the SAME script, which makes the isolated reference
/// shared across clients and maximizes the derived-product overlap the
/// dedup metric measures.
std::vector<Command> canonical_script(Dims dims, int steps) {
  std::vector<Command> script;
  Command c;

  c.kind = CommandKind::kHintWindow;
  c.window_lo = 0;
  c.window_hi = 2;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kSetKeyFrame;
  c.step = 0;
  c.band_lo = 0.55;
  c.band_hi = 1.0;
  c.band_peak = 0.95;
  c.band_skirt = 0.05;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kTrainTf;
  c.epochs = 20;
  script.push_back(c);

  for (int s = 0; s < steps; ++s) {
    c = Command{};
    c.kind = CommandKind::kQueryTf;
    c.step = s;
    script.push_back(c);
    c.kind = CommandKind::kHistogram;
    script.push_back(c);
  }

  c = Command{};
  c.kind = CommandKind::kPaint;
  c.step = 1;
  c.stroke.axis = 2;
  c.stroke.slice = dims.z / 2;
  c.stroke.u = dims.x / 4 + 1;
  c.stroke.v = dims.y / 2;
  c.stroke.radius = 1.5;
  c.stroke.certainty = 1.0;
  script.push_back(c);

  c.stroke.u = dims.x - 1;
  c.stroke.v = dims.y - 1;
  c.stroke.radius = 1.0;
  c.stroke.certainty = 0.0;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kTrainClassifier;
  c.epochs = 10;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kClassify;
  c.step = 1;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kTrack;
  c.step = 1;
  c.seed = Index3{dims.x / 4 + 1, dims.y / 2, dims.z / 2};
  c.opacity_cut = 0.25;
  script.push_back(c);

  c = Command{};
  c.kind = CommandKind::kRender;
  c.step = 1;
  c.image_size = 24;
  script.push_back(c);

  return script;
}

/// One concurrent client's recorded run.
struct ClientRun {
  int id = -1;
  std::vector<ServerResult> results;
  std::vector<double> latency_ms;
};

/// Shared state of the closed-loop load generator.
struct LoadGen {
  SessionManager& manager;
  const std::vector<Command>& script;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t finished = 0;
};

/// Submit command `index` of `run`'s script; the completion callback
/// records the result and service latency, then chains the next command.
/// The submit happens inside the strand's drain loop, so the queue never
/// holds more than the in-flight command — recorded latency is service
/// time, not queueing.
void submit_from(LoadGen& gen, ClientRun& run, std::size_t index) {
  if (index == gen.script.size()) {
    std::lock_guard<std::mutex> lock(gen.done_mutex);
    ++gen.finished;
    gen.done_cv.notify_all();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  gen.manager.submit(
      run.id, gen.script[index],
      [&gen, &run, index, t0](const ServerResult& r) {
        run.results[index] = r;
        run.latency_ms[index] =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        submit_from(gen, run, index + 1);
      });
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

// ---------------------------------------------------------------------------
// --overload: the deterministic overload harness (docs/ROBUSTNESS.md,
// "Overload and deadlines").
//
// Same canonical script, but the tier now sits on a uniformly SLOW device
// (FaultInjectingSource slow@all), the strand queues are bounded with
// kShedOldest, the pressure monitor is live, and every session is
// simultaneously flooded by an open-loop spam thread of read-only
// commands — a quarter of them carrying a deliberately impossible
// deadline. Script clients retry on kOverloaded (shed commands never
// executed, so the retry preserves exactly-once); spam NEVER resubmits,
// which bounds shed-callback recursion and keeps the flood finite.
//
// Shape claims (exit nonzero on failure):
//   - exactly-once: completions == submissions for scripts and spam alike
//     (no silent drop, no double completion);
//   - every script command eventually succeeds AND is bitwise identical to
//     the unloaded serial reference — overload sheds work, never data;
//   - spam outcomes are only kOk / kOverloaded / kDeadlineExceeded — an
//     overloaded server refuses work with types, it does not error;
//   - per-session peak queue depth never exceeds the configured bound;
//   - the storm visibly shed (commands_shed > 0), timed out work
//     (deadline_exceeded > 0), handed out a retry-after hint, engaged the
//     pressure monitor, and the watchdog scanned;
//   - latency p99 stays bounded (no command waited unbounded behind the
//     flood).
struct OverloadClient {
  int id = -1;
  std::vector<ServerResult> results;  ///< Script results, post-retry.
  std::vector<double> latency_ms;     ///< First submit -> final completion.
  std::vector<std::chrono::steady_clock::time_point> start;
  std::vector<std::uint8_t> spam_status;
  std::vector<double> spam_latency_ms;
};

struct OverloadGen {
  SessionManager& manager;
  const std::vector<Command>& script;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t finished = 0;
  std::atomic<std::uint64_t> script_submits{0};
  std::atomic<std::uint64_t> script_callbacks{0};
  std::atomic<std::uint64_t> script_retries{0};
  std::atomic<std::uint64_t> spam_submits{0};
  std::atomic<std::uint64_t> spam_callbacks{0};
  std::atomic<bool> retry_hint_seen{false};
};

/// Submit script command `index`; on kOverloaded (shed by newer spam —
/// the command never ran) resubmit the SAME index, otherwise record and
/// chain. Retries are bounded: each shed consumes one finite spam
/// arrival, so the chain always terminates once the flood drains.
void submit_overload_script(OverloadGen& gen, OverloadClient& run,
                            std::size_t index) {
  if (index == gen.script.size()) {
    std::lock_guard<std::mutex> lock(gen.done_mutex);
    ++gen.finished;
    gen.done_cv.notify_all();
    return;
  }
  if (run.start[index] == std::chrono::steady_clock::time_point{}) {
    run.start[index] = std::chrono::steady_clock::now();
  }
  gen.script_submits.fetch_add(1, std::memory_order_relaxed);
  gen.manager.submit(
      run.id, gen.script[index],
      [&gen, &run, index](const ServerResult& r) {
        gen.script_callbacks.fetch_add(1, std::memory_order_relaxed);
        if (r.status == ServerStatus::kOverloaded) {
          if (r.retry_after_ms > 0.0) {
            gen.retry_hint_seen.store(true, std::memory_order_relaxed);
          }
          gen.script_retries.fetch_add(1, std::memory_order_relaxed);
          submit_overload_script(gen, run, index);
          return;
        }
        run.results[index] = r;
        run.latency_ms[index] =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - run.start[index])
                .count();
        submit_overload_script(gen, run, index + 1);
      });
}

/// Open-loop flood of one session: read-only sheddable kinds only
/// (kQueryTf / kHistogram / kRender), every 4th carrying an impossible
/// deadline so the typed kDeadlineExceeded path fires under load. Never
/// resubmits — a shed spam command just records its typed refusal.
void spam_session(OverloadGen& gen, OverloadClient& run, int steps,
                  std::size_t total) {
  for (std::size_t i = 0; i < total; ++i) {
    Command cmd;
    if (i % 8 == 7) {
      cmd.kind = CommandKind::kRender;
      cmd.image_size = 16;
    } else if (i % 2 == 0) {
      cmd.kind = CommandKind::kHistogram;
    } else {
      cmd.kind = CommandKind::kQueryTf;
    }
    cmd.step = static_cast<int>(i) % steps;
    const bool tranche = (i % 4) == 3;
    if (tranche) cmd.deadline_ms = 0.01;
    const auto t0 = std::chrono::steady_clock::now();
    gen.spam_submits.fetch_add(1, std::memory_order_relaxed);
    gen.manager.submit(
        run.id, cmd, [&gen, &run, i, t0](const ServerResult& r) {
          gen.spam_callbacks.fetch_add(1, std::memory_order_relaxed);
          run.spam_status[i] = static_cast<std::uint8_t>(r.status);
          run.spam_latency_ms[i] =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          if (r.status == ServerStatus::kOverloaded &&
              r.retry_after_ms > 0.0) {
            gen.retry_hint_seen.store(true, std::memory_order_relaxed);
          }
        });
    if (tranche) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

int run_overload(int clients, Dims dims, int steps) {
  const std::size_t step_bytes =
      static_cast<std::size_t>(dims.count()) * sizeof(float);
  const std::vector<Command> script = canonical_script(dims, steps);
  const std::size_t kQueueBound = 4;
  const int kSlowMs = 3;

  std::cout << "=== perf: overload harness, " << clients << " clients, "
            << steps << " steps of " << dims.x << "^3, " << script.size()
            << " script commands + flood ===\n";

  bench::ShapeCheck check;

  // Slow device + tight budget + bounded queues + live pressure monitor.
  SessionManagerConfig config;
  config.tier.budget_bytes = 4 * step_bytes;
  config.tier.pin_quota_bytes = 2 * step_bytes;
  config.tier.async_prefetch = true;
  config.tier.pressure.enabled = true;
  config.max_queue_depth = kQueueBound;
  config.backpressure = BackpressurePolicy::kShedOldest;
  config.watchdog_interval_ms = 5.0;

  std::vector<std::unique_ptr<OverloadClient>> runs;
  std::vector<StreamStats> client_stats;
  std::vector<SessionQueueStats> queue_stats;
  StreamStats storm_stats;
  PressureReport pressure;
  WatchdogReport watchdog;
  double storm_seconds = 0.0;
  const std::size_t spam_total = 2 * script.size();
  std::uint64_t script_submits = 0, script_callbacks = 0, script_retries = 0;
  std::uint64_t spam_submits = 0, spam_callbacks = 0;
  bool retry_hint_seen = false;
  {
    SessionManager manager(
        std::make_shared<FaultInjectingSource>(
            blob_source(dims, steps),
            std::vector<FaultSpec>{
                parse_fault_spec("slow@all:" + std::to_string(kSlowMs))}),
        config);
    OverloadGen gen{manager, script, {}, {}, 0};
    for (int c = 0; c < clients; ++c) {
      auto run = std::make_unique<OverloadClient>();
      run->id = manager.create_session();
      run->results.resize(script.size());
      run->latency_ms.resize(script.size(), 0.0);
      run->start.resize(script.size());
      run->spam_status.resize(spam_total, 0);
      run->spam_latency_ms.resize(spam_total, 0.0);
      runs.push_back(std::move(run));
    }

    Stopwatch storm_watch;
    for (auto& run : runs) submit_overload_script(gen, *run, 0);
    std::vector<std::thread> floods;
    for (auto& run : runs) {
      floods.emplace_back([&gen, &run, steps, spam_total] {
        spam_session(gen, *run, steps, spam_total);
      });
    }
    for (auto& t : floods) t.join();
    {
      std::unique_lock<std::mutex> lock(gen.done_mutex);
      gen.done_cv.wait(lock, [&gen, &runs] {
        return gen.finished == runs.size();
      });
    }
    manager.drain_all();
    storm_seconds = storm_watch.seconds();

    script_submits = gen.script_submits.load();
    script_callbacks = gen.script_callbacks.load();
    script_retries = gen.script_retries.load();
    spam_submits = gen.spam_submits.load();
    spam_callbacks = gen.spam_callbacks.load();
    retry_hint_seen = gen.retry_hint_seen.load();
    storm_stats = manager.tier().stats();
    pressure = manager.tier().pressure().report();
    watchdog = manager.watchdog_report();
    for (const auto& run : runs) {
      client_stats.push_back(manager.session_stats(run->id));
      queue_stats.push_back(manager.session_queue(run->id));
    }
  }

  // --- Exactly-once: every submit got exactly one completion.
  check.expect(script_callbacks == script_submits &&
                   spam_callbacks == spam_submits,
               "exactly one completion per submitted command");

  // --- Unloaded serial reference (no faults, unlimited budget): the
  // surviving script results must match it bitwise — shedding and
  // pressure shape latency and residency, never data.
  bool script_ok = true;
  bool bitwise = true;
  {
    SessionManagerConfig iso;  // budget 0 = fully resident, no overload
    SessionManager manager(blob_source(dims, steps), iso);
    const int id = manager.create_session();
    for (std::size_t i = 0; i < script.size(); ++i) {
      const ServerResult reference = manager.execute(id, script[i]);
      if (!reference.ok) script_ok = false;
      for (const auto& run : runs) {
        if (!run->results[i].ok) {
          std::cout << "  client " << run->id << " command " << i
                    << " failed: " << run->results[i].error << "\n";
          script_ok = false;
        }
        if (run->results[i].ok != reference.ok ||
            run->results[i].digest != reference.digest ||
            run->results[i].value != reference.value) {
          std::cout << "  mismatch: client " << run->id << " command " << i
                    << "\n";
          bitwise = false;
        }
      }
    }
  }
  check.expect(script_ok, "every script command succeeds despite the flood");
  check.expect(bitwise,
               "script results under overload are bitwise identical to the "
               "unloaded serial reference");

  // --- Typed refusals only: a flooded server sheds and times out with
  // types; it never converts overload into kError.
  bool spam_typed = true;
  std::uint64_t spam_ok = 0, spam_overloaded = 0, spam_deadline = 0;
  std::vector<double> spam_latencies;
  for (const auto& run : runs) {
    for (std::size_t i = 0; i < spam_total; ++i) {
      const auto status = static_cast<ServerStatus>(run->spam_status[i]);
      switch (status) {
        case ServerStatus::kOk:
          ++spam_ok;
          break;
        case ServerStatus::kOverloaded:
          ++spam_overloaded;
          break;
        case ServerStatus::kDeadlineExceeded:
          ++spam_deadline;
          break;
        case ServerStatus::kError:
          spam_typed = false;
          break;
      }
      spam_latencies.push_back(run->spam_latency_ms[i]);
    }
  }
  check.expect(spam_typed,
               "flood outcomes are typed (kOk / kOverloaded / "
               "kDeadlineExceeded), never kError");

  // --- Bounded queues, visible shedding, live deadlines and monitors.
  std::size_t peak_depth_max = 0;
  bool depth_bounded = true;
  for (const auto& q : queue_stats) {
    peak_depth_max = std::max(peak_depth_max, q.peak_depth);
    if (q.peak_depth > kQueueBound) depth_bounded = false;
  }
  check.expect(depth_bounded,
               "peak strand queue depth never exceeds the configured bound");
  check.expect(storm_stats.commands_shed > 0,
               "the flood visibly shed queued commands");
  check.expect(storm_stats.deadline_exceeded > 0,
               "the impossible-deadline tranche visibly timed out");
  check.expect(retry_hint_seen,
               "at least one kOverloaded refusal carried a retry-after hint");
  check.expect(storm_stats.pressure_transitions > 0 && pressure.enters > 0,
               "the pressure monitor engaged under the pinned-window demand");
  check.expect(watchdog.scans > 0, "the stuck-strand watchdog scanned");

  std::vector<double> script_latencies;
  for (const auto& run : runs) {
    script_latencies.insert(script_latencies.end(), run->latency_ms.begin(),
                            run->latency_ms.end());
  }
  const double script_p50 = percentile(script_latencies, 0.50);
  const double script_p99 = percentile(script_latencies, 0.99);
  const double spam_p50 = percentile(spam_latencies, 0.50);
  const double spam_p99 = percentile(spam_latencies, 0.99);
  check.expect(script_p99 < 10000.0 && spam_p99 < 10000.0,
               "p99 latency stays bounded under the flood (< 10 s)");

  Table table({"metric", "value"});
  table.add_row({"clients", std::to_string(clients)});
  table.add_row({"storm_seconds", Table::num(storm_seconds, 3)});
  table.add_row({"script_submits", std::to_string(script_submits)});
  table.add_row({"script_retries", std::to_string(script_retries)});
  table.add_row({"spam_submits", std::to_string(spam_submits)});
  table.add_row({"spam_ok", std::to_string(spam_ok)});
  table.add_row({"spam_overloaded", std::to_string(spam_overloaded)});
  table.add_row({"spam_deadline", std::to_string(spam_deadline)});
  table.add_row({"commands_shed", std::to_string(storm_stats.commands_shed)});
  table.add_row(
      {"commands_rejected", std::to_string(storm_stats.commands_rejected)});
  table.add_row(
      {"deadline_exceeded", std::to_string(storm_stats.deadline_exceeded)});
  table.add_row({"pressure_enters", std::to_string(pressure.enters)});
  table.add_row({"pressure_exits", std::to_string(pressure.exits)});
  table.add_row({"derived_shed", std::to_string(pressure.derived_shed)});
  table.add_row({"pins_clamped", std::to_string(pressure.pins_clamped)});
  table.add_row({"watchdog_scans", std::to_string(watchdog.scans)});
  table.add_row(
      {"watchdog_stuck", std::to_string(watchdog.stuck_observations)});
  table.add_row({"peak_queue_depth", std::to_string(peak_depth_max)});
  table.add_row({"script_p50_ms", Table::num(script_p50, 3)});
  table.add_row({"script_p99_ms", Table::num(script_p99, 3)});
  table.add_row({"spam_p50_ms", Table::num(spam_p50, 3)});
  table.add_row({"spam_p99_ms", Table::num(spam_p99, 3)});
  table.print(std::cout);

  // Ascending session id — the same observable-order contract as the
  // storm bench's fairness table.
  std::vector<std::size_t> by_id(runs.size());
  std::iota(by_id.begin(), by_id.end(), std::size_t{0});
  std::sort(by_id.begin(), by_id.end(), [&](std::size_t a, std::size_t b) {
    return runs[a]->id < runs[b]->id;
  });
  Table fair({"client", "shed", "rejected", "deadline_exceeded",
              "peak_depth"});
  for (const std::size_t c : by_id) {
    fair.add_row({std::to_string(runs[c]->id),
                  std::to_string(client_stats[c].commands_shed),
                  std::to_string(client_stats[c].commands_rejected),
                  std::to_string(client_stats[c].deadline_exceeded),
                  std::to_string(queue_stats[c].peak_depth)});
  }
  fair.print(std::cout);

  std::ofstream json("BENCH_server_overload.json");
  json << "{\n"
       << "  \"clients\": " << clients << ",\n"
       << "  \"steps\": " << steps << ",\n"
       << "  \"storm_seconds\": " << storm_seconds << ",\n"
       << "  \"script_submits\": " << script_submits << ",\n"
       << "  \"script_retries\": " << script_retries << ",\n"
       << "  \"spam_submits\": " << spam_submits << ",\n"
       << "  \"spam_ok\": " << spam_ok << ",\n"
       << "  \"spam_overloaded\": " << spam_overloaded << ",\n"
       << "  \"spam_deadline\": " << spam_deadline << ",\n"
       << "  \"commands_shed\": " << storm_stats.commands_shed << ",\n"
       << "  \"commands_rejected\": " << storm_stats.commands_rejected
       << ",\n"
       << "  \"deadline_exceeded\": " << storm_stats.deadline_exceeded
       << ",\n"
       << "  \"pressure_enters\": " << pressure.enters << ",\n"
       << "  \"pressure_exits\": " << pressure.exits << ",\n"
       << "  \"derived_shed\": " << pressure.derived_shed << ",\n"
       << "  \"pins_clamped\": " << pressure.pins_clamped << ",\n"
       << "  \"pins_restored\": " << pressure.pins_restored << ",\n"
       << "  \"watchdog_scans\": " << watchdog.scans << ",\n"
       << "  \"watchdog_stuck\": " << watchdog.stuck_observations << ",\n"
       << "  \"peak_queue_depth\": " << peak_depth_max << ",\n"
       << "  \"script_p50_ms\": " << script_p50 << ",\n"
       << "  \"script_p99_ms\": " << script_p99 << ",\n"
       << "  \"spam_p50_ms\": " << spam_p50 << ",\n"
       << "  \"spam_p99_ms\": " << spam_p99 << ",\n"
       << "  \"bitwise_identical\": " << (bitwise ? "true" : "false")
       << ",\n"
       << "  \"per_client\": [\n";
  for (std::size_t k = 0; k < by_id.size(); ++k) {
    const std::size_t c = by_id[k];
    json << "    {\"client\": " << runs[c]->id
         << ", \"shed\": " << client_stats[c].commands_shed
         << ", \"rejected\": " << client_stats[c].commands_rejected
         << ", \"deadline_exceeded\": " << client_stats[c].deadline_exceeded
         << ", \"peak_depth\": " << queue_stats[c].peak_depth << "}"
         << (k + 1 < by_id.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "overload report: shed " << storm_stats.commands_shed
            << ", script p99 " << script_p99
            << " ms -> BENCH_server_overload.json\n";

  return check.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  // Defaults: 8 clients, 24^3 voxels, 12 steps. --smoke shrinks to the CI
  // load (4 clients, 16^3, 8 steps — sized to stay quick under TSan);
  // --clients=N overrides the fleet width either way.
  int clients = 8;
  Dims dims{24, 24, 24};
  int steps = 12;
  bool overload = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      clients = 4;
      dims = Dims{16, 16, 16};
      steps = 8;
    } else if (arg == "--overload") {
      overload = true;
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = std::max(1, std::atoi(arg.substr(10).data()));
    } else {
      std::cerr << "usage: bench_perf_server [--smoke] [--overload] "
                   "[--clients=N]\n";
      return 2;
    }
  }
  if (overload) return run_overload(clients, dims, steps);

  const std::size_t step_bytes =
      static_cast<std::size_t>(dims.count()) * sizeof(float);
  const std::vector<Command> script = canonical_script(dims, steps);

  std::cout << "=== perf: multi-tenant server, " << clients
            << " concurrent clients, " << steps << " steps of " << dims.x
            << "^3, " << script.size() << " commands each ===\n";

  bench::ShapeCheck check;

  // --- Concurrent storm: one shared tier, tight budget, 1-step pin quota.
  SessionManagerConfig shared_config;
  shared_config.tier.budget_bytes = 3 * step_bytes;
  shared_config.tier.pin_quota_bytes = 1 * step_bytes;
  shared_config.tier.async_prefetch = true;

  std::vector<std::unique_ptr<ClientRun>> runs;
  std::vector<AdmissionStats> fairness;
  std::vector<std::size_t> quota_violations;
  StreamStats storm_stats;
  std::size_t unique_entries = 0;
  std::size_t quota_steps = 0;
  double storm_seconds = 0.0;
  // Trajectory rows sampled while the storm runs: (ms, hits, misses,
  // derived_hits, derived_misses).
  std::vector<std::vector<double>> trajectory;
  {
    SessionManager manager(blob_source(dims, steps), shared_config);
    quota_steps = manager.tier().admission().quota_steps();
    LoadGen gen{manager, script, {}, {}, 0};
    for (int c = 0; c < clients; ++c) {
      auto run = std::make_unique<ClientRun>();
      run->id = manager.create_session();
      run->results.resize(script.size());
      run->latency_ms.resize(script.size(), 0.0);
      runs.push_back(std::move(run));
    }

    std::atomic<bool> sampling{true};
    Stopwatch storm_watch;
    std::thread sampler([&manager, &sampling, &trajectory, &storm_watch] {
      while (sampling.load(std::memory_order_relaxed)) {
        const StreamStats s = manager.tier().stats();
        trajectory.push_back({storm_watch.milliseconds(),
                              static_cast<double>(s.hits),
                              static_cast<double>(s.misses),
                              static_cast<double>(s.derived_hits),
                              static_cast<double>(s.derived_misses)});
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    for (auto& run : runs) submit_from(gen, *run, 0);
    {
      std::unique_lock<std::mutex> lock(gen.done_mutex);
      gen.done_cv.wait(lock, [&gen, &runs] {
        return gen.finished == runs.size();
      });
    }
    storm_seconds = storm_watch.seconds();
    sampling.store(false, std::memory_order_relaxed);
    sampler.join();
    manager.drain_all();

    storm_stats = manager.tier().stats();
    unique_entries = manager.tier().derived().size();
    for (const auto& run : runs) {
      const AdmissionStats a = manager.session_admission(run->id);
      fairness.push_back(a);
      quota_violations.push_back(
          a.pinned_bytes > manager.tier().admission().pin_quota_bytes() ? 1
                                                                        : 0);
    }
  }

  bool all_ok = true;
  std::vector<double> latencies;
  for (const auto& run : runs) {
    for (std::size_t i = 0; i < script.size(); ++i) {
      if (!run->results[i].ok) {
        std::cout << "  client " << run->id << " command " << i
                  << " failed: " << run->results[i].error << "\n";
        all_ok = false;
      }
      latencies.push_back(run->latency_ms[i]);
    }
  }
  check.expect(all_ok, "every command succeeds on every concurrent client");

  // --- Isolated reference: the same script, one client alone, unlimited
  // budget, serial execute(). Every concurrent client must match it
  // bitwise (they all ran the identical script).
  bool bitwise = true;
  std::vector<double> iso_latency_ms(script.size(), 0.0);
  {
    SessionManagerConfig iso_config;  // budget 0 = fully resident
    SessionManager manager(blob_source(dims, steps), iso_config);
    const int id = manager.create_session();
    for (std::size_t i = 0; i < script.size(); ++i) {
      Stopwatch cmd_watch;
      const ServerResult reference = manager.execute(id, script[i]);
      iso_latency_ms[i] = cmd_watch.milliseconds();
      if (!reference.ok) bitwise = false;
      for (const auto& run : runs) {
        if (run->results[i].ok != reference.ok ||
            run->results[i].digest != reference.digest ||
            run->results[i].value != reference.value) {
          std::cout << "  mismatch: client " << run->id << " command " << i
                    << "\n";
          bitwise = false;
        }
      }
    }
  }
  check.expect(bitwise,
               "concurrent tight-budget results are bitwise identical to "
               "the isolated unlimited-budget reference");

  // --- Metrics.
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double iso_p50 = percentile(iso_latency_ms, 0.50);
  const double iso_p99 = percentile(iso_latency_ms, 0.99);
  const std::uint64_t derived_requests =
      storm_stats.derived_hits + storm_stats.derived_misses;
  const double dedup_rate =
      derived_requests == 0
          ? 0.0
          : static_cast<double>(storm_stats.derived_hits) /
                static_cast<double>(derived_requests);
  const double entry_collapse =
      derived_requests == 0
          ? 0.0
          : 1.0 - static_cast<double>(unique_entries) /
                      static_cast<double>(derived_requests);

  Table table({"metric", "value"});
  table.add_row({"clients", std::to_string(clients)});
  table.add_row({"commands_total", std::to_string(latencies.size())});
  table.add_row({"storm_seconds", Table::num(storm_seconds, 3)});
  table.add_row({"p50_ms", Table::num(p50, 3)});
  table.add_row({"p99_ms", Table::num(p99, 3)});
  table.add_row({"isolated_p50_ms", Table::num(iso_p50, 3)});
  table.add_row({"isolated_p99_ms", Table::num(iso_p99, 3)});
  table.add_row({"dedup_hit_rate", Table::num(dedup_rate, 3)});
  table.add_row({"derived_entries", std::to_string(unique_entries)});
  table.add_row({"entry_collapse", Table::num(entry_collapse, 3)});
  table.add_row({"evictions", std::to_string(storm_stats.evictions)});
  table.add_row({"quota_steps", std::to_string(quota_steps)});
  table.print(std::cout);
  std::cout << storm_stats.summary() << "\n\n";

  // Per-client reporting iterates in ascending session id, never creation
  // or completion order: the fairness table, CSV, and JSON are part of the
  // determinism contract's observable surface (two runs of the same storm
  // must emit byte-identical client listings).
  std::vector<std::size_t> by_id(runs.size());
  std::iota(by_id.begin(), by_id.end(), std::size_t{0});
  std::sort(by_id.begin(), by_id.end(), [&](std::size_t a, std::size_t b) {
    return runs[a]->id < runs[b]->id;
  });

  Table fair({"client", "accesses", "reloads", "denied_pins",
              "pinned_steps"});
  for (const std::size_t c : by_id) {
    fair.add_row({std::to_string(runs[c]->id),
                  std::to_string(fairness[c].accesses),
                  std::to_string(fairness[c].reloads),
                  std::to_string(fairness[c].denied_pins),
                  std::to_string(fairness[c].pinned_steps)});
  }
  fair.print(std::cout);

  check.expect(storm_stats.derived_hits > 0 && dedup_rate > 0.0,
               "cross-client dedup hit rate > 0 on the shared tier");
  check.expect(unique_entries < derived_requests,
               "shared cache holds fewer unique entries than requests");
  check.expect(storm_stats.evictions > 0,
               "the 3-step budget evicts under the concurrent load");
  std::uint64_t denied_total = 0;
  bool quota_held = true;
  for (std::size_t c = 0; c < fairness.size(); ++c) {
    denied_total += fairness[c].denied_pins;
    if (quota_violations[c] != 0) quota_held = false;
  }
  check.expect(quota_held,
               "no client's pinned bytes exceed its admission quota");
  check.expect(denied_total > 0,
               "the pin quota visibly denied window pins");

  // --- Persist: latency distribution, trajectory, fairness, JSON summary.
  CsvWriter lat_csv(bench::output_dir() + "/perf_server_latency.csv",
                    {"client", "command", "latency_ms"});
  for (const std::size_t c : by_id) {
    for (std::size_t i = 0; i < script.size(); ++i) {
      lat_csv.row(runs[c]->id, i, runs[c]->latency_ms[i]);
    }
  }
  CsvWriter traj_csv(
      bench::output_dir() + "/perf_server_trajectory.csv",
      {"ms", "hits", "misses", "derived_hits", "derived_misses"});
  for (const auto& row : trajectory) {
    traj_csv.row(row[0], row[1], row[2], row[3], row[4]);
  }
  CsvWriter fair_csv(
      bench::output_dir() + "/perf_server_fairness.csv",
      {"client", "accesses", "reloads", "denied_pins", "pinned_steps"});
  for (const std::size_t c : by_id) {
    fair_csv.row(runs[c]->id, fairness[c].accesses, fairness[c].reloads,
                 fairness[c].denied_pins, fairness[c].pinned_steps);
  }

  std::ofstream json("BENCH_server.json");
  json << "{\n"
       << "  \"clients\": " << clients << ",\n"
       << "  \"steps\": " << steps << ",\n"
       << "  \"commands_total\": " << latencies.size() << ",\n"
       << "  \"storm_seconds\": " << storm_seconds << ",\n"
       << "  \"p50_ms\": " << p50 << ",\n"
       << "  \"p99_ms\": " << p99 << ",\n"
       << "  \"isolated_p50_ms\": " << iso_p50 << ",\n"
       << "  \"isolated_p99_ms\": " << iso_p99 << ",\n"
       << "  \"dedup_hit_rate\": " << dedup_rate << ",\n"
       << "  \"derived_entries\": " << unique_entries << ",\n"
       << "  \"entry_collapse\": " << entry_collapse << ",\n"
       << "  \"evictions\": " << storm_stats.evictions << ",\n"
       << "  \"bitwise_identical\": " << (bitwise ? "true" : "false")
       << ",\n"
       << "  \"per_client\": [\n";
  for (std::size_t k = 0; k < by_id.size(); ++k) {
    const std::size_t c = by_id[k];
    json << "    {\"client\": " << runs[c]->id
         << ", \"accesses\": " << fairness[c].accesses
         << ", \"reloads\": " << fairness[c].reloads
         << ", \"denied_pins\": " << fairness[c].denied_pins
         << ", \"pinned_steps\": " << fairness[c].pinned_steps << "}"
         << (k + 1 < by_id.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "server report: p50 " << p50 << " ms, p99 " << p99
            << " ms, dedup " << dedup_rate << " -> BENCH_server.json\n";

  return check.exit_code();
}
