// FAIL fixture: an IFET_HOT root reaches a container-growth allocation
// through a cross-function call chain. The helper itself is not
// annotated — only reachability from the root flags it.
#include <vector>

#define IFET_HOT __attribute__((hot))

namespace fixture {

class Engine {
 public:
  IFET_HOT double step(double x) {
    record(x);
    return accumulate(x);
  }

 private:
  void record(double x) {
    history_.push_back(x);  // reachable allocation: must be flagged
  }
  double accumulate(double x) { return total_ += x; }

  std::vector<double> history_;
  double total_ = 0.0;
};

}  // namespace fixture
