#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace ifet {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) == 0) {
      arg.remove_prefix(2);
      auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        options_[std::string(arg)] = "";
      } else {
        options_[std::string(arg.substr(0, eq))] =
            std::string(arg.substr(eq + 1));
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : std::atoi(it->second.c_str());
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : std::atof(it->second.c_str());
}

}  // namespace ifet
