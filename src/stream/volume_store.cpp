#include "stream/volume_store.hpp"

#include <algorithm>

#include "io/compressed.hpp"
#include "io/volume_io.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"
#include "volume/ops.hpp"

namespace ifet {

VolFileSetSource::VolFileSetSource(std::vector<std::string> paths)
    : paths_(std::move(paths)) {
  IFET_REQUIRE(!paths_.empty(), "VolFileSetSource: no files");
  float lo = 0.0f, hi = 0.0f;
  bool first = true;
  for (const auto& path : paths_) {
    VolumeF v = read_vol(path);
    if (first) {
      dims_ = v.dims();
    } else {
      IFET_REQUIRE(v.dims() == dims_,
                   "VolFileSetSource: inconsistent dims in " + path);
    }
    auto [flo, fhi] = ifet::value_range(v);
    lo = first ? flo : std::min(lo, flo);
    hi = first ? fhi : std::max(hi, fhi);
    first = false;
  }
  range_ = {static_cast<double>(lo), static_cast<double>(hi)};
}

VolFileSetSource::VolFileSetSource(std::vector<std::string> paths,
                                   std::pair<double, double> value_range)
    : paths_(std::move(paths)), range_(value_range) {
  IFET_REQUIRE(!paths_.empty(), "VolFileSetSource: no files");
  IFET_REQUIRE(range_.second > range_.first,
               "VolFileSetSource: degenerate value range");
  VolumeF first = read_vol(paths_.front());
  dims_ = first.dims();
}

VolumeF VolFileSetSource::generate(int step) const {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "VolFileSetSource: step out of range");
  VolumeF v = read_vol(paths_[static_cast<std::size_t>(step)]);
  IFET_REQUIRE(v.dims() == dims_,
               "VolFileSetSource: file changed dims on re-read: " +
                   paths_[static_cast<std::size_t>(step)]);
  return v;
}

VolumeStore::VolumeStore(std::shared_ptr<const VolumeSource> source,
                         const VolumeStoreConfig& config)
    : source_(std::move(source)),
      config_(config),
      cache_(config.budget_bytes),
      prefetcher_(ThreadPool::global(), cache_,
                  [this](int step) {
                    return timed_load(step, /*prefetch_context=*/true);
                  }) {
  IFET_REQUIRE(source_ != nullptr, "VolumeStore requires a source");
  IFET_REQUIRE(source_->num_steps() > 0, "VolumeStore: empty source");
  IFET_REQUIRE(config_.lookahead >= 0,
               "VolumeStore: lookahead must be >= 0");
}

std::unique_ptr<VolumeStore> VolumeStore::open_cvol(
    const std::string& path, const VolumeStoreConfig& config) {
  return std::make_unique<VolumeStore>(
      std::make_shared<CompressedFileSource>(path), config);
}

std::unique_ptr<VolumeStore> VolumeStore::open_vol_files(
    std::vector<std::string> paths, const VolumeStoreConfig& config) {
  return std::make_unique<VolumeStore>(
      std::make_shared<VolFileSetSource>(std::move(paths)), config);
}

VolumeF VolumeStore::timed_load(int step, bool prefetch_context) {
  Stopwatch timer;
  VolumeF v = source_->generate(step);
  IFET_REQUIRE(v.dims() == source_->dims(),
               "VolumeStore: source produced wrong dimensions");
  const double seconds = timer.seconds();
  OrderedMutexLock lock(mutex_);
  ++total_loads_;
  if (!prefetch_context) {
    ++demand_loads_;
    demand_decode_seconds_ += seconds;
  }
  return v;
}

std::shared_ptr<const VolumeF> VolumeStore::fetch(int step) {
  IFET_REQUIRE(step >= 0 && step < num_steps(),
               "VolumeStore::fetch: step out of range");
  auto volume = cache_.lookup(step);
  if (!volume && prefetcher_.wait(step)) {
    // An in-flight prefetch covered this step; don't re-count hit/miss.
    volume = cache_.lookup_quiet(step);
  }
  if (!volume) {
    volume = cache_.insert(step, timed_load(step, /*prefetch_context=*/false),
                           /*from_prefetch=*/false);
  }

  int direction;
  {
    OrderedMutexLock lock(mutex_);
    direction = step >= last_fetched_step_ ? 1 : -1;
    last_fetched_step_ = step;
  }
  for (int k = 1; k <= config_.lookahead; ++k) {
    prefetch(step + direction * k);
  }
  return volume;
}

void VolumeStore::prefetch(int step) {
  if (step < 0 || step >= num_steps()) return;
  if (config_.async_prefetch) {
    prefetcher_.schedule(step);
    return;
  }
  // Synchronous lookahead: deterministic single-threaded path for tests.
  if (cache_.resident(step)) return;
  cache_.insert(step, timed_load(step, /*prefetch_context=*/true),
                /*from_prefetch=*/true);
}

void VolumeStore::pin_window(int lo, int hi) {
  lo = std::max(lo, 0);
  hi = std::min(hi, num_steps() - 1);
  cache_.pin_window(lo, hi);
  if (lo > hi) return;
  for (int s = lo; s <= hi; ++s) {
    if (!cache_.resident(s)) prefetch(s);
  }
}

std::size_t VolumeStore::load_count() const {
  OrderedMutexLock lock(mutex_);
  return total_loads_;
}

StreamStats VolumeStore::stats() const {
  StreamStats out = cache_.stats();
  out.merge(prefetcher_.stats());
  OrderedMutexLock lock(mutex_);
  out.demand_loads = demand_loads_;
  out.demand_decode_seconds = demand_decode_seconds_;
  return out;
}

}  // namespace ifet
