# Empty dependencies file for ifet_math.
# This may be replaced when dependencies are built.
