// FAIL fixture: a hot brick-traversal loop that gathers each ray's
// surviving sample run into a freshly grown vector — a per-ray, per-brick
// allocation inside the innermost render loop, the exact anti-pattern the
// SoA ray-packet scratch exists to prevent.
#include <vector>

#define IFET_HOT __attribute__((hot))

namespace fixture {

class BrickMarcher {
 public:
  IFET_HOT double march(int bricks) {
    double total = 0.0;
    for (int b = 0; b < bricks; ++b) {
      total += composite_run(b);
    }
    return total;
  }

 private:
  double composite_run(int brick) {
    run_.clear();
    for (int i = 0; i < 8; ++i) {
      run_.push_back(static_cast<double>(brick * 8 + i));  // grows per brick
    }
    double sum = 0.0;
    for (double t : run_) sum += t;
    return sum;
  }

  std::vector<double> run_;
};

}  // namespace fixture
