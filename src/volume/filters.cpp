#include "volume/filters.hpp"

#include <cmath>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace ifet {

namespace {

std::vector<double> gaussian_kernel(double sigma) {
  IFET_REQUIRE(sigma > 0.0, "gaussian_blur requires sigma > 0");
  int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    double w = std::exp(-0.5 * (i * i) / (sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = w;
    sum += w;
  }
  for (auto& w : kernel) w /= sum;
  return kernel;
}

enum class Axis { X, Y, Z };

VolumeF convolve_axis(const VolumeF& in, const std::vector<double>& kernel,
                      Axis axis) {
  const Dims d = in.dims();
  const int radius = (static_cast<int>(kernel.size()) - 1) / 2;
  VolumeF out(d);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        double acc = 0.0;
        for (int o = -radius; o <= radius; ++o) {
          double w = kernel[static_cast<std::size_t>(o + radius)];
          switch (axis) {
            case Axis::X: acc += w * in.clamped(i + o, j, k); break;
            case Axis::Y: acc += w * in.clamped(i, j + o, k); break;
            case Axis::Z: acc += w * in.clamped(i, j, k + o); break;
          }
        }
        out[out.linear_index(i, j, k)] = static_cast<float>(acc);
      }
    }
  });
  return out;
}

}  // namespace

VolumeF gaussian_blur(const VolumeF& volume, double sigma) {
  auto kernel = gaussian_kernel(sigma);
  VolumeF tmp = convolve_axis(volume, kernel, Axis::X);
  tmp = convolve_axis(tmp, kernel, Axis::Y);
  return convolve_axis(tmp, kernel, Axis::Z);
}

VolumeF repeated_smooth(const VolumeF& volume, double sigma, int iterations) {
  IFET_REQUIRE(iterations >= 0, "repeated_smooth: negative iterations");
  VolumeF out = volume;
  for (int it = 0; it < iterations; ++it) out = gaussian_blur(out, sigma);
  return out;
}

VolumeF box_blur3(const VolumeF& volume) {
  const std::vector<double> kernel{1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
  VolumeF tmp = convolve_axis(volume, kernel, Axis::X);
  tmp = convolve_axis(tmp, kernel, Axis::Y);
  return convolve_axis(tmp, kernel, Axis::Z);
}

}  // namespace ifet
