// Memory-pressure monitor for the shared streaming tier (docs/ROBUSTNESS.md,
// "Overload and deadlines").
//
// Under multi-tenant load the quantity eviction cannot relieve is PINNED
// bytes: every client's admitted window is exempt from LRU, so enough
// concurrent wide windows can pin the whole budget and leave demand loads
// thrashing in whatever sliver remains. The monitor watches the ratio of
// pin DEMAND to the cache budget and, past a threshold, renegotiates the
// tier's allocations in a fixed cheapest-first order:
//
//   1. shed non-pinned derived products (recomputable, a few KiB each;
//      the tier histogram hash is exempt — every client shares it),
//   2. clamp every client's AdmissionController quota to a fraction,
//      revoking pins center-out-last (each client keeps its current step),
//   3. optionally renegotiate the CacheManager budget itself downward
//      (off by default: shrinking the budget evicts, which is the
//      bluntest relief and the first to cause reload storms).
//
// Release is HYSTERETIC: pressure engages at `enter_ratio` and releases
// only below `exit_ratio`, and the signal is the demand at FULL quota —
// deliberately not the post-clamp pinned bytes, which the clamp itself
// shrinks (a monitor that measured its own relief would oscillate).
// On release every clamp is undone: the budget is restored first, then
// quotas return to 100% and the revoked pins are re-admitted center-out
// from each client's remembered window.
//
// Locking: transitions serialize on a kPressure (rank 15) mutex held
// ACROSS the admission (35) / cache (30) / derived (50) calls they make —
// legal, ascending — so enter/exit are atomic with respect to each other.
// The hot sample() takes no lock of its own: an atomic engaged flag plus
// one admission-leaf read.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/hot_path.hpp"
#include "util/ordered_mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ifet {

class AdmissionController;
class CacheManager;
class DerivedCache;
class SharedStreamStats;

struct PressureConfig {
  /// Master switch; disabled, the monitor is a cheap no-op and the tier
  /// behaves exactly as before (existing tests and benches stay bitwise).
  bool enabled = false;
  /// Engage when demanded_pin_bytes / budget_bytes >= enter_ratio.
  double enter_ratio = 0.85;
  /// Release only when the ratio falls back <= exit_ratio (< enter_ratio).
  double exit_ratio = 0.65;
  /// Per-client quota scale applied while engaged (percent, >= 1).
  int quota_clamp_percent = 50;
  /// Shed non-pinned derived products on engage.
  bool shed_derived = true;
  /// Cache-budget scale applied while engaged (percent); 0 leaves the
  /// budget alone (default — eviction churn is the bluntest relief).
  int budget_clamp_percent = 0;
};

/// Transition counters and gauges (tests and the overload bench).
struct PressureReport {
  bool engaged = false;
  std::uint64_t enters = 0;
  std::uint64_t exits = 0;
  std::uint64_t derived_shed = 0;    ///< Derived entries dropped on engages.
  std::uint64_t pins_clamped = 0;    ///< Pins revoked by quota clamps.
  std::uint64_t pins_restored = 0;   ///< Pins re-admitted on releases.
};

class PressureMonitor {
 public:
  /// `keep_params` is the derived-product hash shedding must spare (the
  /// tier histogram hash); `budget_bytes` is the tier's configured cache
  /// budget (0 = unlimited, which disables the signal); `step_bytes` the
  /// decoded payload of one step. `aggregate` gets one
  /// count_pressure_transition() per enter/exit.
  PressureMonitor(CacheManager& cache, AdmissionController& admission,
                  DerivedCache& derived, SharedStreamStats& aggregate,
                  std::uint64_t keep_params, std::size_t budget_bytes,
                  std::size_t step_bytes, const PressureConfig& config);

  PressureMonitor(const PressureMonitor&) = delete;
  PressureMonitor& operator=(const PressureMonitor&) = delete;

  /// The hot fast path: compare the current demand ratio against the
  /// hysteresis band. Returns +1 (should engage), -1 (should release) or
  /// 0 (no transition) without taking the transition lock — the common
  /// steady-state answer is 0 and costs one atomic read plus one
  /// admission-leaf lock.
  IFET_HOT int sample() const;

  /// Sample, then apply any indicated transition (the cold path, under
  /// the kPressure mutex). Safe to call from every command-drain loop.
  void poll() IFET_EXCLUDES(mutex_);

  bool engaged() const {
    return engaged_.load(std::memory_order_relaxed);
  }
  PressureReport report() const IFET_EXCLUDES(mutex_);

 private:
  void engage_locked() IFET_REQUIRES(mutex_);
  void release_locked() IFET_REQUIRES(mutex_);

  CacheManager& cache_;
  AdmissionController& admission_;
  DerivedCache& derived_;
  SharedStreamStats& aggregate_;
  const std::uint64_t keep_params_;
  const std::size_t budget_bytes_;
  const std::size_t step_bytes_;
  const PressureConfig config_;

  /// Read by the hot sample(); written only inside transitions.
  std::atomic<bool> engaged_{false};

  mutable OrderedMutex mutex_{MutexRank::kPressure};
  PressureReport report_ IFET_GUARDED_BY(mutex_);
};

}  // namespace ifet
