// Figure 10 reproduction: tracking a feature whose data values decrease
// over time (swirling flow; paper shows t = 23, 41, 62).
//
// Top row of the figure: with a conventional fixed criterion the feature's
// values eventually "fall below this fixed criterion and [are] no longer
// tracked". Bottom row: with the adaptive transfer function built from two
// key frames (the second with a lowered value range) the feature is tracked
// across all steps. We reproduce both rows as tracked-voxel series.
#include <iostream>

#include "bench_util.hpp"
#include "core/iatf.hpp"
#include "core/tracking.hpp"
#include "flowsim/datasets.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace ifet;
  std::cout << "=== Fig 10: fixed vs adaptive tracking criterion (swirling "
               "flow) ===\n";

  SwirlingFlowConfig cfg;
  cfg.dims = Dims{48, 48, 48};
  cfg.num_steps = 63;
  auto source = std::make_shared<SwirlingFlowSource>(cfg);
  CachedSequence seq(source, 6, 256);

  // Key-frame TFs: the user marks the feature's value band at the first and
  // last step — "by decreasing the tracked value range for the last
  // key-frame" (paper Sec 5.1).
  auto band_tf = [&](int step) {
    TransferFunction1D tf(0.0, 1.0);
    double peak = source->peak_value(step);
    tf.add_band(peak * 0.55, std::min(1.0, peak * 1.08), 1.0, 0.02);
    return tf;
  };
  IatfConfig icfg;
  icfg.hidden_units = 14;
  Iatf iatf(seq, icfg);
  iatf.add_key_frame(0, band_tf(0));
  iatf.add_key_frame(62, band_tf(62));
  iatf.train(8000);

  Vec3 c = source->feature_center(0);
  Index3 seed{static_cast<int>(c.x * cfg.dims.x),
              static_cast<int>(c.y * cfg.dims.y),
              static_cast<int>(c.z * cfg.dims.z)};

  const double p0 = source->peak_value(0);
  FixedRangeCriterion fixed(p0 * 0.55, 1.0);
  Tracker fixed_tracker(seq, fixed);
  TrackResult fixed_track = fixed_tracker.track(seed, 0);

  AdaptiveTfCriterion adaptive(iatf, 0.25);
  Tracker adaptive_tracker(seq, adaptive);
  TrackResult adaptive_track = adaptive_tracker.track(seed, 0);

  Table table({"t", "feature_peak", "fixed_voxels", "adaptive_voxels",
               "adaptive_overlap"});
  CsvWriter csv(bench::output_dir() + "/fig10_adaptive_track.csv",
                {"t", "peak", "fixed", "adaptive", "overlap"});
  int fixed_lost_at = -1;
  bool adaptive_all_steps = true;
  for (int t = 0; t < cfg.num_steps; t += (t < 20 || t > 55 ? 1 : 3)) {
    std::size_t fv = fixed_track.voxels_at(t);
    std::size_t av = adaptive_track.voxels_at(t);
    if (fv == 0 && fixed_lost_at < 0) fixed_lost_at = t;
    if (av == 0) adaptive_all_steps = false;
    double overlap = 0.0;
    if (adaptive_track.reached(t)) {
      overlap = score_mask(adaptive_track.masks.at(t),
                           source->feature_mask(t))
                    .recall();
    }
    table.add_row({std::to_string(t), Table::num(source->peak_value(t)),
                   std::to_string(fv), std::to_string(av),
                   Table::num(overlap)});
    csv.row(t, source->peak_value(t), fv, av, overlap);
  }
  table.print(std::cout);

  std::size_t fixed_end = fixed_track.voxels_at(62);
  std::size_t adaptive_end = adaptive_track.voxels_at(62);
  std::cout << "\nfixed criterion loses the feature at t="
            << (fixed_lost_at < 0 ? -1 : fixed_lost_at)
            << "; voxels at t=62: fixed=" << fixed_end
            << " adaptive=" << adaptive_end << "\n\n";

  bench::ShapeCheck check;
  check.expect(fixed_lost_at > 0,
               "fixed criterion tracks the feature initially");
  check.expect(fixed_end == 0,
               "fixed criterion has lost the feature by the last step");
  check.expect(adaptive_all_steps && adaptive_end > 0,
               "adaptive criterion tracks the feature to the last step");
  double final_overlap =
      adaptive_track.reached(62)
          ? score_mask(adaptive_track.masks.at(62), source->feature_mask(62))
                .recall()
          : 0.0;
  check.expect(final_overlap > 0.5,
               "adaptively tracked region still covers the true feature");
  return check.exit_code();
}
