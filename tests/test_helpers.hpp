// Shared helpers for the ifet test suites.
#pragma once

#include <cmath>

#include "util/rng.hpp"
#include "volume/volume.hpp"

namespace ifet::testing {

/// Volume filled with deterministic pseudo-random values in [lo, hi).
inline VolumeF random_volume(Dims dims, std::uint64_t seed, double lo = 0.0,
                             double hi = 1.0) {
  Rng rng(seed);
  VolumeF v(dims);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<float>(rng.uniform(lo, hi));
  }
  return v;
}

/// Volume with a single solid axis-aligned box of `value`.
inline VolumeF box_volume(Dims dims, Index3 lo, Index3 hi, float value,
                          float background = 0.0f) {
  VolumeF v(dims, background);
  for (int k = lo.z; k <= hi.z; ++k) {
    for (int j = lo.y; j <= hi.y; ++j) {
      for (int i = lo.x; i <= hi.x; ++i) {
        v.at(i, j, k) = value;
      }
    }
  }
  return v;
}

/// Mask with a single solid axis-aligned box.
inline Mask box_mask(Dims dims, Index3 lo, Index3 hi) {
  Mask m(dims);
  for (int k = lo.z; k <= hi.z; ++k) {
    for (int j = lo.y; j <= hi.y; ++j) {
      for (int i = lo.x; i <= hi.x; ++i) {
        m.at(i, j, k) = 1;
      }
    }
  }
  return m;
}

/// Gaussian blob volume centered at `c` (voxel coords) with sigma voxels.
inline VolumeF blob_volume(Dims dims, Vec3 c, double sigma, float peak) {
  VolumeF v(dims);
  for (int k = 0; k < dims.z; ++k) {
    for (int j = 0; j < dims.y; ++j) {
      for (int i = 0; i < dims.x; ++i) {
        double dx = i - c.x, dy = j - c.y, dz = k - c.z;
        v.at(i, j, k) = static_cast<float>(
            peak * std::exp(-(dx * dx + dy * dy + dz * dz) /
                            (2.0 * sigma * sigma)));
      }
    }
  }
  return v;
}

}  // namespace ifet::testing
