// Hot-path annotation macros (docs/STATIC_ANALYSIS.md, docs/PERFORMANCE.md).
//
// IFET_HOT marks a function as a steady-state hot path: once warm it must
// not heap-allocate, must not throw, must not do stream I/O, and must not
// acquire a mutex ranked below the hot-path floor. The ifet_lint
// callgraph pass treats every IFET_HOT function as a root, propagates
// reachability over the cross-TU call graph, and fails CI when reachable
// code escapes the contract. At runtime the same contract is enforced by
// util/alloc_guard.hpp's DenyAllocScope in the perf benches.
//
// IFET_HOT_ALLOW(reason) acknowledges an intentional, reviewed escape on
// the next (or same) line — e.g. a one-time warm-up buffer grow, or a
// batch-entry precondition that throws before the steady-state loop
// starts. It compiles to nothing but is part of the code (not a comment),
// so the waiver survives reformatting and shows up in review diffs.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define IFET_HOT __attribute__((hot))
#else
#define IFET_HOT
#endif

// The reason must be a string literal; sizeof keeps it syntactically
// checked without generating code.
#define IFET_HOT_ALLOW(reason) \
  do {                         \
    (void)sizeof(reason);      \
  } while (false)

// IFET_DETERMINISTIC marks a function as a reproducibility contract root:
// its results must be bitwise identical regardless of thread count, work
// submission order, cache temperature, hash-table layout, or pointer
// values. The ifet_lint determinism pass treats every annotated function
// as a root, walks the same cross-TU call graph as the hot-path pass, and
// flags reachable escapes (det-unordered-iter, det-rand-time,
// det-pointer-order, det-float-reduce, det-env). At runtime the same
// contract is enforced by util/determinism.hpp's ReplayCheck in the perf
// benches: the annotated computation is replayed under perturbed
// conditions and its digests must match bitwise.
//
// The macro expands to nothing — it exists for the analyzer and for the
// reader; place it on the definition head line like IFET_HOT.
#define IFET_DETERMINISTIC

// IFET_DET_ALLOW(reason) acknowledges an intentional, reviewed
// determinism escape on the next (or same) line — e.g. iterating an
// unordered map to compute an order-independent count, or a diagnostics
// timestamp that never reaches the result bytes. Compiled (not a
// comment), so the waiver survives reformatting and shows up in review.
#define IFET_DET_ALLOW(reason) \
  do {                         \
    (void)sizeof(reason);      \
  } while (false)
