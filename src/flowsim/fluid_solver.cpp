#include "flowsim/fluid_solver.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/thread_pool.hpp"

namespace ifet {

FluidSolver::FluidSolver(const FluidConfig& config)
    : config_(config),
      u_(config.dims),
      v_(config.dims),
      w_(config.dims),
      scalar_(config.dims) {
  IFET_REQUIRE(config.dims.x >= 4 && config.dims.y >= 4 && config.dims.z >= 4,
               "FluidSolver grids must be at least 4^3");
  IFET_REQUIRE(config.dt > 0.0, "FluidSolver requires dt > 0");
}

void FluidSolver::diffuse(VolumeF& field, double coeff) {
  if (coeff <= 0.0) return;
  const Dims d = config_.dims;
  const double a = config_.dt * coeff * d.x * d.y * d.z;
  const double denom = 1.0 + 6.0 * a;
  VolumeF prev = field;
  for (int iter = 0; iter < config_.diffusion_iterations; ++iter) {
    for (int k = 1; k < d.z - 1; ++k) {
      for (int j = 1; j < d.y - 1; ++j) {
        for (int i = 1; i < d.x - 1; ++i) {
          const std::size_t c = field.linear_index(i, j, k);
          double neighbors = field[field.linear_index(i - 1, j, k)] +
                             field[field.linear_index(i + 1, j, k)] +
                             field[field.linear_index(i, j - 1, k)] +
                             field[field.linear_index(i, j + 1, k)] +
                             field[field.linear_index(i, j, k - 1)] +
                             field[field.linear_index(i, j, k + 1)];
          field[c] = static_cast<float>((prev[c] + a * neighbors) / denom);
        }
      }
    }
  }
}

void FluidSolver::advect(VolumeF& out, const VolumeF& field, const VolumeF& u,
                         const VolumeF& v, const VolumeF& w) const {
  const Dims d = config_.dims;
  const double dt = config_.dt;
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const std::size_t c = field.linear_index(i, j, k);
        // Trace the particle backwards through the velocity field.
        double x = i - dt * u[c];
        double y = j - dt * v[c];
        double z = k - dt * w[c];
        x = clamp(x, 0.0, d.x - 1.0);
        y = clamp(y, 0.0, d.y - 1.0);
        z = clamp(z, 0.0, d.z - 1.0);
        out[c] = static_cast<float>(field.sample(x, y, z));
      }
    }
  });
}

void FluidSolver::project() {
  const Dims d = config_.dims;
  VolumeF divergence(d);
  VolumeF pressure(d);
  const double h = 1.0;  // unit voxel spacing
  for (int k = 1; k < d.z - 1; ++k) {
    for (int j = 1; j < d.y - 1; ++j) {
      for (int i = 1; i < d.x - 1; ++i) {
        const std::size_t c = u_.linear_index(i, j, k);
        double div = (u_[u_.linear_index(i + 1, j, k)] -
                      u_[u_.linear_index(i - 1, j, k)] +
                      v_[v_.linear_index(i, j + 1, k)] -
                      v_[v_.linear_index(i, j - 1, k)] +
                      w_[w_.linear_index(i, j, k + 1)] -
                      w_[w_.linear_index(i, j, k - 1)]) *
                     0.5 / h;
        divergence[c] = static_cast<float>(div);
      }
    }
  }
  for (int iter = 0; iter < config_.pressure_iterations; ++iter) {
    for (int k = 1; k < d.z - 1; ++k) {
      for (int j = 1; j < d.y - 1; ++j) {
        for (int i = 1; i < d.x - 1; ++i) {
          const std::size_t c = pressure.linear_index(i, j, k);
          double sum = pressure[pressure.linear_index(i - 1, j, k)] +
                       pressure[pressure.linear_index(i + 1, j, k)] +
                       pressure[pressure.linear_index(i, j - 1, k)] +
                       pressure[pressure.linear_index(i, j + 1, k)] +
                       pressure[pressure.linear_index(i, j, k - 1)] +
                       pressure[pressure.linear_index(i, j, k + 1)];
          pressure[c] =
              static_cast<float>((sum - h * h * divergence[c]) / 6.0);
        }
      }
    }
  }
  for (int k = 1; k < d.z - 1; ++k) {
    for (int j = 1; j < d.y - 1; ++j) {
      for (int i = 1; i < d.x - 1; ++i) {
        const std::size_t c = u_.linear_index(i, j, k);
        u_[c] -= static_cast<float>(
            0.5 / h *
            (pressure[pressure.linear_index(i + 1, j, k)] -
             pressure[pressure.linear_index(i - 1, j, k)]));
        v_[c] -= static_cast<float>(
            0.5 / h *
            (pressure[pressure.linear_index(i, j + 1, k)] -
             pressure[pressure.linear_index(i, j - 1, k)]));
        w_[c] -= static_cast<float>(
            0.5 / h *
            (pressure[pressure.linear_index(i, j, k + 1)] -
             pressure[pressure.linear_index(i, j, k - 1)]));
      }
    }
  }
}

Vec3 FluidSolver::vorticity_at(int i, int j, int k) const {
  double dwdy = 0.5 * (w_.clamped(i, j + 1, k) - w_.clamped(i, j - 1, k));
  double dvdz = 0.5 * (v_.clamped(i, j, k + 1) - v_.clamped(i, j, k - 1));
  double dudz = 0.5 * (u_.clamped(i, j, k + 1) - u_.clamped(i, j, k - 1));
  double dwdx = 0.5 * (w_.clamped(i + 1, j, k) - w_.clamped(i - 1, j, k));
  double dvdx = 0.5 * (v_.clamped(i + 1, j, k) - v_.clamped(i - 1, j, k));
  double dudy = 0.5 * (u_.clamped(i, j + 1, k) - u_.clamped(i, j - 1, k));
  return {dwdy - dvdz, dudz - dwdx, dvdx - dudy};
}

void FluidSolver::confine_vorticity() {
  if (config_.vorticity_confinement <= 0.0) return;
  const Dims d = config_.dims;
  VolumeF mag(d);
  std::vector<Vec3> omega(mag.size());
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        Vec3 o = vorticity_at(i, j, k);
        const std::size_t c = mag.linear_index(i, j, k);
        omega[c] = o;
        mag[c] = static_cast<float>(o.norm());
      }
    }
  }
  const double eps = config_.vorticity_confinement;
  for (int k = 1; k < d.z - 1; ++k) {
    for (int j = 1; j < d.y - 1; ++j) {
      for (int i = 1; i < d.x - 1; ++i) {
        Vec3 grad{
            0.5 * (mag.clamped(i + 1, j, k) - mag.clamped(i - 1, j, k)),
            0.5 * (mag.clamped(i, j + 1, k) - mag.clamped(i, j - 1, k)),
            0.5 * (mag.clamped(i, j, k + 1) - mag.clamped(i, j, k - 1))};
        double n = grad.norm();
        if (n < 1e-9) continue;
        Vec3 nvec = grad / n;
        const std::size_t c = mag.linear_index(i, j, k);
        Vec3 force = nvec.cross(omega[c]) * eps;
        u_[c] += static_cast<float>(config_.dt * force.x);
        v_[c] += static_cast<float>(config_.dt * force.y);
        w_[c] += static_cast<float>(config_.dt * force.z);
      }
    }
  }
}

void FluidSolver::step(const ForcingFn& forcing) {
  if (forcing) forcing(u_, v_, w_, scalar_);
  confine_vorticity();

  diffuse(u_, config_.viscosity);
  diffuse(v_, config_.viscosity);
  diffuse(w_, config_.viscosity);
  project();

  VolumeF nu(config_.dims), nv(config_.dims), nw(config_.dims);
  advect(nu, u_, u_, v_, w_);
  advect(nv, v_, u_, v_, w_);
  advect(nw, w_, u_, v_, w_);
  u_ = std::move(nu);
  v_ = std::move(nv);
  w_ = std::move(nw);
  project();

  diffuse(scalar_, config_.scalar_diffusion);
  VolumeF ns(config_.dims);
  advect(ns, scalar_, u_, v_, w_);
  scalar_ = std::move(ns);

  ++steps_;
}

VolumeF FluidSolver::vorticity_magnitude() const {
  const Dims d = config_.dims;
  VolumeF out(d);
  parallel_for(0, static_cast<std::size_t>(d.z), [&](std::size_t kz) {
    int k = static_cast<int>(kz);
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        out[out.linear_index(i, j, k)] =
            static_cast<float>(vorticity_at(i, j, k).norm());
      }
    }
  });
  return out;
}

double FluidSolver::max_divergence() const {
  const Dims d = config_.dims;
  double worst = 0.0;
  for (int k = 1; k < d.z - 1; ++k) {
    for (int j = 1; j < d.y - 1; ++j) {
      for (int i = 1; i < d.x - 1; ++i) {
        double div = 0.5 * (u_.clamped(i + 1, j, k) - u_.clamped(i - 1, j, k) +
                            v_.clamped(i, j + 1, k) - v_.clamped(i, j - 1, k) +
                            w_.clamped(i, j, k + 1) - w_.clamped(i, j, k - 1));
        worst = std::max(worst, std::fabs(div));
      }
    }
  }
  return worst;
}

}  // namespace ifet
