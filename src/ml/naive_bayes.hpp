// Gaussian naive Bayes — the Bayesian baseline of paper Sec 3's list.
//
// Per class, each feature is modeled as an independent Gaussian; predict()
// returns the posterior of the positive class. Training is a single pass
// (moment accumulation) making this by far the cheapest engine — and the
// independence assumption is exactly what the shell feature vectors
// violate, which bench_ml_engines makes visible.
#pragma once

#include <span>
#include <vector>

#include "ml/classifier.hpp"

namespace ifet {

class NaiveBayesClassifier final : public BinaryClassifier {
 public:
  explicit NaiveBayesClassifier(int input_width);

  void fit(const TrainingSet& set, int budget) override;
  double predict(std::span<const double> input) const override;
  std::string name() const override { return "gaussian-nb"; }

 private:
  struct ClassModel {
    double log_prior = 0.0;
    std::vector<double> mean;
    std::vector<double> variance;
  };
  double log_likelihood(const ClassModel& model,
                        std::span<const double> input) const;

  int input_width_;
  ClassModel positive_;
  ClassModel negative_;
  bool fitted_ = false;
};

}  // namespace ifet
