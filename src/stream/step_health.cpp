#include "stream/step_health.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace ifet {

const char* fail_policy_name(FailPolicy policy) {
  switch (policy) {
    case FailPolicy::kThrow:
      return "throw";
    case FailPolicy::kSkipStep:
      return "skip";
    case FailPolicy::kNearestGood:
      return "nearest";
  }
  return "?";
}

FailPolicy parse_fail_policy(const std::string& name) {
  if (name == "throw") return FailPolicy::kThrow;
  if (name == "skip" || name == "skip-step") return FailPolicy::kSkipStep;
  if (name == "nearest" || name == "nearest-good") {
    return FailPolicy::kNearestGood;
  }
  throw Error("unknown fail policy '" + name +
              "' (expected throw, skip, or nearest)");
}

std::vector<int> StepHealth::quarantined() const {
  std::vector<int> out;
  for (std::size_t t = 0; t < states.size(); ++t) {
    if (states[t] == StepState::kQuarantined) out.push_back(static_cast<int>(t));
  }
  return out;
}

std::size_t StepHealth::count(StepState state) const {
  return static_cast<std::size_t>(
      std::count(states.begin(), states.end(), state));
}

std::string StepHealth::summary() const {
  std::ostringstream os;
  os << "steps: " << count(StepState::kVerified) << " verified, "
     << count(StepState::kUnverified) << " unverified, "
     << count(StepState::kQuarantined) << " quarantined";
  const std::vector<int> bad = quarantined();
  if (!bad.empty()) {
    os << " [";
    for (std::size_t i = 0; i < bad.size(); ++i) {
      if (i != 0) os << ", ";
      os << bad[i];
    }
    os << "]";
  }
  os << ", " << count(StepState::kUnknown) << " unknown";
  return os.str();
}

}  // namespace ifet
