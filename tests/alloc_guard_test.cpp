// Contract tests of the shared allocation guard (util/alloc_guard.hpp):
// counting through the installed operator new/delete, snapshot semantics
// of DenyAllocScope (nesting, zero-allocation regions), and cross-thread
// visibility — explicit std::threads and ThreadPool workers both land in
// the same process-wide counters.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "util/alloc_guard.hpp"

IFET_ALLOC_GUARD_INSTALL();

namespace ifet {
namespace {

TEST(AllocGuard, CountsAllocationsInScope) {
  DenyAllocScope scope;
  EXPECT_EQ(scope.allocations(), 0u);
  auto p = std::make_unique<int>(7);
  EXPECT_GE(scope.allocations(), 1u);
  const auto after_one = scope.allocations();
  auto q = std::make_unique<int>(9);
  EXPECT_GT(scope.allocations(), after_one);
}

TEST(AllocGuard, ZeroWhenNothingAllocates) {
  // A pre-sized buffer written in place must not move the counter.
  std::vector<double> buf(1024);
  DenyAllocScope scope;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<double>(i) * 0.5;
  }
  EXPECT_EQ(scope.allocations(), 0u);
}

TEST(AllocGuard, DeallocationDoesNotCountAsAllocation) {
  auto p = std::make_unique<std::vector<int>>(64);
  DenyAllocScope scope;
  p.reset();
  EXPECT_EQ(scope.allocations(), 0u);
}

TEST(AllocGuard, NestedScopesSeeTheirOwnWindows) {
  DenyAllocScope outer;
  auto a = std::make_unique<int>(1);
  const auto outer_before_inner = outer.allocations();
  {
    DenyAllocScope inner;
    EXPECT_EQ(inner.allocations(), 0u);
    auto b = std::make_unique<int>(2);
    // The inner window is a subset of the outer one.
    EXPECT_GE(inner.allocations(), 1u);
    EXPECT_GE(outer.allocations(), outer_before_inner + inner.allocations());
  }
  EXPECT_GE(outer.allocations(), 2u);
}

TEST(AllocGuard, CountsAllocationsFromOtherThreads) {
  DenyAllocScope scope;
  std::thread worker([] {
    auto p = std::make_unique<std::vector<double>>(256);
    (void)p;
  });
  worker.join();
  // The std::thread itself allocates too; the point is the window saw
  // work done off the constructing thread.
  EXPECT_GE(scope.allocations(), 1u);
}

TEST(AllocGuard, CountsAllocationsFromThreadPoolWorkers) {
  // Warm the pool outside the window so its own lazy setup isn't counted.
  parallel_for(0, std::size_t{8}, [](std::size_t) {});

  DenyAllocScope scope;
  std::atomic<std::uint64_t> made{0};
  parallel_for(0, std::size_t{16}, [&](std::size_t) {
    auto p = std::make_unique<int>(3);
    made.fetch_add(1, std::memory_order_relaxed);
    (void)p;
  });
  EXPECT_EQ(made.load(), 16u);
  EXPECT_GE(scope.allocations(), 16u);
}

TEST(AllocGuard, GlobalCountersAreMonotonic) {
  const auto before = alloc_guard::allocation_count().load();
  auto p = std::make_unique<int>(5);
  const auto after = alloc_guard::allocation_count().load();
  EXPECT_GT(after, before);
  p.reset();
  EXPECT_GE(alloc_guard::deallocation_count().load(), 1u);
  // allocation_count never decreases on free.
  EXPECT_GE(alloc_guard::allocation_count().load(), after);
}

}  // namespace
}  // namespace ifet
